package rpc

import (
	"bytes"
	"errors"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// errConn is a net.Conn whose Writes can be gated and then made to
// fail: the first Write blocks on gate, and once failAfter writes have
// happened every Write returns werr. Reads block until Close.
type errConn struct {
	mu        sync.Mutex
	writes    int
	gate      chan struct{} // first write blocks here (nil: no gate)
	gated     bool
	failAfter int // fail writes numbered > failAfter (0: fail all)
	werr      error

	closeOnce sync.Once
	closed    chan struct{}
}

func newErrConn(gate chan struct{}, failAfter int, werr error) *errConn {
	return &errConn{gate: gate, failAfter: failAfter, werr: werr, closed: make(chan struct{})}
}

func (c *errConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	if c.gate != nil && !c.gated {
		c.gated = true
		gate := c.gate
		c.mu.Unlock()
		<-gate
		c.mu.Lock()
	}
	c.writes++
	n := c.writes
	c.mu.Unlock()
	if n > c.failAfter {
		return 0, c.werr
	}
	return len(p), nil
}

func (c *errConn) Read([]byte) (int, error) {
	<-c.closed
	return 0, io.EOF
}

func (c *errConn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return nil
}
func (c *errConn) LocalAddr() net.Addr              { return nil }
func (c *errConn) RemoteAddr() net.Addr             { return nil }
func (c *errConn) SetDeadline(time.Time) error      { return nil }
func (c *errConn) SetReadDeadline(time.Time) error  { return nil }
func (c *errConn) SetWriteDeadline(time.Time) error { return nil }
func (c *errConn) entered() bool                    { c.mu.Lock(); defer c.mu.Unlock(); return c.gated }
func (c *errConn) wroteAtLeast(n int) bool          { c.mu.Lock(); defer c.mu.Unlock(); return c.writes >= n }

// TestWriterTeardownFailsQueuedCallsWithRootCause is the connWriter
// teardown regression test: frames queued behind an in-flight write
// whose batch then fails mid-drain must fail their pending Calls
// promptly, carrying the root-cause write error — not strand them
// until a ctx deadline, and not a bare "connection closed".
func TestWriterTeardownFailsQueuedCallsWithRootCause(t *testing.T) {
	rootCause := errors.New("simulated NIC fire")
	gate := make(chan struct{})
	conn := newErrConn(gate, 1, rootCause) // write 1 succeeds (after gate), rest fail
	c := NewClient(conn, 16)
	defer c.Close()

	// Call 1's frame claims the writer and blocks inside Write. The
	// inline flush happens on the enqueueing goroutine, so issue it off
	// the test goroutine.
	firstDone := make(chan *Call, 1)
	go c.Go("echo", []byte("a"), firstDone)
	deadline := time.Now().Add(5 * time.Second)
	for !conn.entered() {
		if time.Now().After(deadline) {
			t.Fatal("first write never reached the conn")
		}
		time.Sleep(100 * time.Microsecond)
	}

	// Calls 2..5 queue behind the in-flight write; their batch's write
	// will fail.
	queued := make([]*Call, 0, 4)
	for i := 0; i < 4; i++ {
		queued = append(queued, c.Go("echo", []byte("q"), make(chan *Call, 1)))
	}

	close(gate) // write 1 completes; the queued batch then fails

	// The first call's frame hit the wire before the failure; with the
	// conn torn down it fails with a close error (no reply can arrive).
	select {
	case res := <-firstDone:
		if res.Err == nil {
			t.Fatal("call on dead conn succeeded")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("first call stranded after teardown")
	}

	// The queued-but-unflushed calls must fail promptly AND carry the
	// root cause.
	for i, call := range queued {
		select {
		case res := <-call.Done:
			if res.Err == nil {
				t.Fatalf("queued call %d succeeded although its frame never hit the wire", i)
			}
			if !strings.Contains(res.Err.Error(), rootCause.Error()) {
				t.Fatalf("queued call %d lost the root cause: %v", i, res.Err)
			}
			if !errors.Is(res.Err, ErrClosed) {
				t.Fatalf("queued call %d error is not a close error: %v", i, res.Err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("queued call %d stranded: teardown did not fail pending calls", i)
		}
	}

	// New calls on the dead client fail immediately with the same cause.
	if _, err := c.CallSync("echo", nil); err == nil || !strings.Contains(err.Error(), rootCause.Error()) {
		t.Fatalf("post-teardown call lost the root cause: %v", err)
	}
}

// TestWriterTeardownImmediateFailure covers the inline path: when the
// very first write fails (no gate, no queue), the caller gets the root
// cause synchronously.
func TestWriterTeardownImmediateFailure(t *testing.T) {
	rootCause := errors.New("broken pipe on first write")
	conn := newErrConn(nil, 0, rootCause)
	c := NewClient(conn, 4)
	defer c.Close()

	_, err := c.CallSync("echo", []byte("x"))
	if err == nil {
		t.Fatal("call over failing conn succeeded")
	}
	if !strings.Contains(err.Error(), rootCause.Error()) {
		t.Fatalf("inline write failure lost the root cause: %v", err)
	}
}

// TestPutBufSizeClasses pins the pool-hygiene fix: buffers are filed
// by size class, so the small-frame hot path can never be handed a
// megabyte buffer that a bulk burst left behind, and anything above
// maxPooledBuf is dropped entirely.
func TestPutBufSizeClasses(t *testing.T) {
	if got := classFor(64); got != 0 {
		t.Fatalf("classFor(64) = %d, want 0", got)
	}
	if got := classFor(bufClasses[0] + 1); got != 1 {
		t.Fatalf("classFor(%d) = %d, want 1", bufClasses[0]+1, got)
	}
	if got := classFor(maxPooledBuf); got != len(bufClasses)-1 {
		t.Fatalf("classFor(maxPooledBuf) = %d, want %d", got, len(bufClasses)-1)
	}
	if got := classFor(maxPooledBuf + 1); got != -1 {
		t.Fatalf("classFor(maxPooledBuf+1) = %d, want -1 (unpooled)", got)
	}

	// Flood the pool with 1 MiB-capacity buffers, then draw for small
	// frames: every returned buffer must come from the smallest class —
	// cap below the next class bound — proving big buffers no longer
	// sit under the small-frame path.
	for i := 0; i < 64; i++ {
		big := make([]byte, 0, maxPooledBuf)
		putBuf(&big)
	}
	for i := 0; i < 64; i++ {
		b := getBufFor(64)
		if cap(*b) >= bufClasses[1] {
			t.Fatalf("small-frame get returned a %d-cap buffer (class >= 1): big buffers pin the hot path", cap(*b))
		}
	}

	// Oversized buffers are never pooled.
	huge := make([]byte, 0, maxPooledBuf*2)
	putBuf(&huge) // must be dropped, not filed
	b := getBufFor(maxPooledBuf)
	if cap(*b) > maxPooledBuf {
		t.Fatalf("pool returned an over-cap buffer (%d > %d)", cap(*b), maxPooledBuf)
	}
}

// TestSmallFrameAllocCeiling is the alloc-ceiling regression: after a
// burst of bulk frames, encoding small frames must not allocate per
// call (the size-classed pool keeps the small class hot regardless of
// what the bulk path did).
func TestSmallFrameAllocCeiling(t *testing.T) {
	// Bulk burst: 1 MiB frames cycle through the pool's largest class.
	bulk := make([]byte, 1<<20)
	for i := 0; i < 8; i++ {
		buf, err := encodeFrame(kindRequest, uint64(i), "bulk", bulk)
		if err != nil {
			t.Fatal(err)
		}
		putBuf(buf)
	}
	small := make([]byte, 64)
	allocs := testing.AllocsPerRun(200, func() {
		buf, err := encodeFrame(kindRequest, 1, "echo", small)
		if err != nil {
			t.Fatal(err)
		}
		putBuf(buf)
	})
	// One steady-state allocation budget: the pooled buffer round-trips
	// with zero allocs; allow a little slack for pool internals.
	if allocs > 1 {
		t.Fatalf("small-frame encode allocates %.1f/op after bulk burst; want <= 1", allocs)
	}
}

// TestLentBuffersNeverPooled pins the lending contract on the writer:
// a payload lent via enqueueVec must never be handed back by the frame
// pool — the writer only reads it, and the pool only ever recycles
// writer-owned header buffers.
func TestLentBuffersNeverPooled(t *testing.T) {
	sink := &sinkConn{}
	w := newConnWriter(sink)
	defer w.close()

	lent := make([]byte, lendMin)
	for i := range lent {
		lent[i] = byte(i)
	}
	hdr, err := encodeLent(kindRequest, 7, "m", 0, lent)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.enqueueVec(hdr, lent, true); err != nil {
		t.Fatal(err)
	}

	// Drain settled: the full frame (header || payload) must be on the
	// conn, intact.
	deadline := time.Now().Add(5 * time.Second)
	for {
		sink.mu.Lock()
		n := sink.buf.Len()
		sink.mu.Unlock()
		if n >= frameHdrLen+1+len(lent) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("lent frame never fully written")
		}
		time.Sleep(100 * time.Microsecond)
	}
	sink.mu.Lock()
	f, err := readFrame(bytes.NewReader(sink.buf.Bytes()))
	sink.mu.Unlock()
	if err != nil {
		t.Fatalf("gathered frame corrupt: %v", err)
	}
	if !bytes.Equal(f.payload, lent) {
		t.Fatal("lent payload corrupted in gather write")
	}

	// The pool must never surface the lent backing array.
	for i := 0; i < 256; i++ {
		b := getBufFor(lendMin)
		grown := (*b)[:1]
		if &grown[0] == &lent[0] {
			t.Fatal("pool returned the lent payload's backing array")
		}
		putBuf(b)
	}
}

// TestLendingRoundTrip pins end-to-end lending over a live server: a
// large request payload and a large response both travel the lent
// path (client request lend, server response lend) and arrive intact.
func TestLendingRoundTrip(t *testing.T) {
	srv := NewServer()
	srv.Register("echo", func(p []byte) ([]byte, error) { return p, nil })
	cc, sc := Pair()
	srv.ServeConn(sc)
	defer srv.Close()
	c := NewClient(cc, 4)
	defer c.Close()

	payload := make([]byte, 256<<10) // well above lendMin
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	got, err := c.CallSync("echo", payload)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("lent payload corrupted over live round trip")
	}
}
