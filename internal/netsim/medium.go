// Package netsim models the network substrate between edge devices and
// the backend cloud: a shared wireless medium (the paper's two 867 Mbps
// MU-MIMO routers), the cloud fabric (10 GbE NICs into a 40 Gbps ToR),
// per-message protocol-processing overheads, and the FPGA RPC
// acceleration fabric of §4.5 that removes almost all of the processing
// overhead (2.1 µs RTT between servers on the same ToR).
//
// Transfers are modelled with a max-min fair-share fluid model: all
// active flows on a medium share its capacity equally (subject to an
// optional per-flow cap), so congestion, saturation knees (Fig. 3b) and
// bandwidth time-series (Fig. 14b) emerge from the flow dynamics rather
// than being scripted.
//
// Because every active flow drains at the same instantaneous rate, the
// model admits an O(log n) implementation: track the cumulative
// per-flow drain D(t) = ∫ rate dt; a flow arriving when the drain is d0
// with size s completes when D reaches d0 + s. Completions pop from a
// heap keyed by that virtual finish value, so the medium stays fast
// even with tens of thousands of backlogged flows (the saturated
// centralized configurations at 1000-drone scale).
package netsim

import (
	"container/heap"
	"math"

	"hivemind/internal/sim"
	"hivemind/internal/stats"
)

// completionSlackBytes is the sub-byte residue below which a flow counts
// as delivered. Transfers are sized in whole bytes, so anything under a
// thousandth of a byte is floating-point noise.
const completionSlackBytes = 1e-3

// Medium is a shared transmission resource with max-min fair sharing
// among active flows.
type Medium struct {
	eng        *sim.Engine
	capacity   float64 // bytes per second, aggregate
	perFlowCap float64 // bytes per second per flow (0 = unlimited)

	drain      float64 // cumulative per-flow bytes drained since t=0
	flows      flowHeap
	seq        uint64
	lastUpdate sim.Time
	alarm      *sim.Alarm // next-completion timer, re-armed allocation-free

	meter *stats.Meter // bytes delivered, for bandwidth reporting
}

// Flow is an in-flight transfer on a medium.
type Flow struct {
	medium    *Medium
	vfinish   float64 // drain value at which the flow completes
	size      float64
	started   sim.Time
	done      func(f *Flow)
	cancelled bool
	finished  sim.Time
	completed bool
	seq       uint64
	index     int // heap index, -1 once popped
}

type flowHeap []*Flow

func (h flowHeap) Len() int { return len(h) }
func (h flowHeap) Less(i, j int) bool {
	if h[i].vfinish != h[j].vfinish {
		return h[i].vfinish < h[j].vfinish
	}
	return h[i].seq < h[j].seq
}
func (h flowHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *flowHeap) Push(x any) {
	f := x.(*Flow)
	f.index = len(*h)
	*h = append(*h, f)
}
func (h *flowHeap) Pop() any {
	old := *h
	n := len(old)
	f := old[n-1]
	old[n-1] = nil
	f.index = -1
	*h = old[:n-1]
	return f
}

// Size returns the flow's total size in bytes.
func (f *Flow) Size() float64 { return f.size }

// Duration returns how long the transfer took (valid after completion).
func (f *Flow) Duration() sim.Time { return f.finished - f.started }

// NewMedium creates a medium with aggregate capacity capacityBps
// (bytes/s) and optional per-flow cap (0 disables). Bandwidth is metered
// in 1-second buckets.
func NewMedium(eng *sim.Engine, capacityBps, perFlowCapBps float64) *Medium {
	if capacityBps <= 0 {
		panic("netsim: medium capacity must be positive")
	}
	m := &Medium{
		eng:        eng,
		capacity:   capacityBps,
		perFlowCap: perFlowCapBps,
		meter:      stats.NewMeter(1.0),
		lastUpdate: eng.Now(),
	}
	m.alarm = eng.NewAlarm(func() {
		m.advance()
		m.reschedule()
	})
	return m
}

// Capacity returns the aggregate capacity in bytes/s.
func (m *Medium) Capacity() float64 { return m.capacity }

// SetCapacity rescales the medium (used by the scalability experiments,
// which "scale up the network links proportionately"). Active flows
// adopt the new rate immediately.
func (m *Medium) SetCapacity(capacityBps float64) {
	if capacityBps <= 0 {
		panic("netsim: medium capacity must be positive")
	}
	m.advance()
	m.capacity = capacityBps
	m.reschedule()
}

// ActiveFlows returns the number of in-flight transfers.
func (m *Medium) ActiveFlows() int { return len(m.flows) }

// Meter exposes the delivered-bytes meter (1 s buckets).
func (m *Medium) Meter() *stats.Meter { return m.meter }

// rate returns the current per-flow rate in bytes/s.
func (m *Medium) rate() float64 {
	n := len(m.flows)
	if n == 0 {
		return 0
	}
	r := m.capacity / float64(n)
	if m.perFlowCap > 0 && r > m.perFlowCap {
		r = m.perFlowCap
	}
	return r
}

// advance moves cumulative drain forward for the elapsed interval and
// completes every flow whose virtual finish has been reached.
func (m *Medium) advance() {
	now := m.eng.Now()
	dt := now - m.lastUpdate
	m.lastUpdate = now
	if dt > 0 && len(m.flows) > 0 {
		perFlow := m.rate() * dt
		m.drain += perFlow
		// Aggregate delivered bytes over the interval (all flows drain
		// at the same rate; flows that finish mid-interval deliver only
		// their remainder, which the pop below accounts for by clamping).
		m.meter.AddSpread(now-dt, now, perFlow*float64(len(m.flows)))
	}
	for len(m.flows) > 0 && m.flows[0].vfinish <= m.drain+completionSlackBytes {
		f := heap.Pop(&m.flows).(*Flow)
		// Clamp the meter: bytes past the flow's size were never real.
		if over := m.drain - f.vfinish; over > 0 {
			m.meter.Add(now, -math.Min(over, f.size))
		}
		f.completed = true
		f.finished = now
		if !f.cancelled && f.done != nil {
			f.done(f)
		}
	}
}

// reschedule arms the completion alarm for the next flow.
func (m *Medium) reschedule() {
	if len(m.flows) == 0 {
		m.alarm.Stop()
		return
	}
	// Aim slightly past the exact completion instant so floating-point
	// residue cannot leave a flow with an un-completable sliver.
	eta := (m.flows[0].vfinish - m.drain + completionSlackBytes/2) / m.rate()
	if eta < 0 {
		eta = 0
	}
	m.alarm.Set(eta)
}

// Transfer starts a flow of the given size. done (may be nil) fires when
// the last byte is delivered. Zero-size transfers complete immediately.
func (m *Medium) Transfer(bytes float64, done func(*Flow)) *Flow {
	f := &Flow{medium: m, size: bytes, started: m.eng.Now(), done: done, index: -1}
	if bytes <= 0 {
		f.completed = true
		f.finished = m.eng.Now()
		if done != nil {
			done(f)
		}
		return f
	}
	m.advance()
	f.vfinish = m.drain + bytes
	f.seq = m.seq
	m.seq++
	heap.Push(&m.flows, f)
	m.reschedule()
	return f
}

// Cancel aborts an in-flight flow; its callback will not fire. Reports
// whether the flow was still active.
func (f *Flow) Cancel() bool {
	if f.cancelled || f.completed {
		return false
	}
	m := f.medium
	m.advance()
	if f.completed || f.index < 0 {
		return false
	}
	f.cancelled = true
	// No meter adjustment: the flow consumed its fair share of the
	// medium until this instant, and only that consumption was metered.
	heap.Remove(&m.flows, f.index)
	m.reschedule()
	return true
}
