package chaos_test

import (
	"context"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hivemind/internal/chaos"
	"hivemind/internal/controller"
	"hivemind/internal/rpc"
	"hivemind/internal/runtime"
	"hivemind/internal/store"
)

// TestFailoverE2EMuxedStreamsAcrossPrimaryKill runs the §4.7 failover
// acceptance over the multiplexed transport: one TCP connection to the
// primary carries many logical streams. The doomed chain call rides one
// stream and is held hostage mid-tier; sibling streams on the same
// connection must keep completing their own chains (no head-of-line
// coupling through the shared socket or the bounded worker pool). The
// chaos kill then takes the primary down — every stream on the shared
// connection fails with the connection's teardown error, and the
// hostage task completes through the standby's orphan re-dispatch with
// exactly-once step effects.
func TestFailoverE2EMuxedStreamsAcrossPrimaryKill(t *testing.T) {
	mon := controller.NewMonitor()
	inj := chaos.NewInjector(1123, chaos.Config{})
	db := store.NewDB()
	midEntered := make(chan struct{}, 1)
	chain, fns := blockingMid(midEntered)
	var denyRecover atomic.Int64
	denyRecover.Store(-1)
	nodes := startFailoverCluster(t, 3, 1123, mon, inj, db, chain, fns, &denyRecover)
	primary := waitPrimary(t, nodes, 3*time.Second)

	conn, err := net.Dial("tcp", primary.gwAddr)
	if err != nil {
		t.Fatal(err)
	}
	cl := rpc.NewClient(conn, 16)
	defer cl.Close()

	// The doomed chain rides its own logical stream.
	doomed := cl.Stream(2)
	callDone := make(chan error, 1)
	go func() {
		_, cerr := doomed.Call(context.Background(), "pipeline",
			runtime.EncodeTask("task-mux-e2e", []byte("x")))
		callDone <- cerr
	}()
	select {
	case <-midEntered:
	case <-time.After(5 * time.Second):
		t.Fatal("chain never reached the mid tier")
	}

	// Sibling streams on the SAME connection complete their own chains
	// while the doomed stream's call is held hostage: per-stream
	// dispatch means the hostage occupies one worker, not the socket.
	const siblings = 4
	var wg sync.WaitGroup
	for i := 0; i < siblings; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := cl.Stream(2)
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			out, serr := s.Call(ctx, "pipeline", nil)
			if serr != nil {
				t.Errorf("sibling stream blocked behind hostage call: %v", serr)
				return
			}
			if string(out) != ".h.m.t" {
				t.Errorf("sibling chain output = %q, want .h.m.t", out)
			}
		}()
	}
	wg.Wait()
	select {
	case cerr := <-callDone:
		t.Fatalf("hostage call finished before the kill: %v", cerr)
	default:
	}

	// Kill the primary. The shared connection dies; the doomed stream's
	// in-flight call must surface the teardown, not hang.
	killAt := time.Now()
	denyRecover.Store(int64(primary.id))
	inj.At(controller.KillControllerOp(primary.id), 0)

	select {
	case cerr := <-callDone:
		if cerr == nil {
			t.Fatal("call to the killed primary reported success")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("muxed stream call never failed after the primary died")
	}
	// Post-teardown, every stream on the connection is dead with
	// ErrClosed semantics — new calls fail fast instead of queueing.
	if _, serr := cl.Stream(1).CallSync("pipeline", nil); serr == nil {
		t.Fatal("new stream on dead connection succeeded")
	}

	// The hostage chain completes through the standby's Recover.
	log := store.NewCheckpointLog(db)
	deadline := time.Now().Add(5 * time.Second)
	for {
		orphans, oerr := log.Orphans()
		if oerr == nil && len(orphans) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("orphan task never completed; remaining: %v", orphans)
		}
		time.Sleep(10 * time.Millisecond)
	}
	completedIn := time.Since(killAt)

	want := []string{"x.h", "x.h.m", "x.h.m.t"}
	for step := 0; step < 3; step++ {
		doc, gerr := db.Get(store.StepOutputKey("task-mux-e2e", step))
		if gerr != nil {
			t.Fatalf("step %d output missing: %v", step, gerr)
		}
		if g := store.RevGen(doc.Rev); g != 1 {
			t.Fatalf("step %d committed %d times, want exactly once", step, g)
		}
		if string(doc.Body) != want[step] {
			t.Fatalf("step %d output = %q, want %q", step, doc.Body, want[step])
		}
	}
	if fo := mon.Failover(); fo.Failovers < 1 {
		t.Fatalf("failovers = %d, want >= 1", fo.Failovers)
	}
	cfg := fastCtrlConfig(0, 3, 0)
	bound := (2*cfg.ElectionTimeoutMax + 4*cfg.VoteTimeout + gwRespawnDelay).Seconds() + 2.0
	if completedIn.Seconds() > bound {
		t.Fatalf("orphan completed in %v, want under %.1fs", completedIn, bound)
	}
}
