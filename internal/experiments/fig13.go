package experiments

import (
	"hivemind/internal/platform"
	"hivemind/internal/scenario"
	"hivemind/internal/stats"
	"hivemind/internal/store"
)

func init() {
	register("fig13", "Ablation: disabling HiveMind components one at a time", fig13)
	register("fig14", "Battery and wireless bandwidth across the three platforms", fig14)
}

// ablation builds the six Fig. 13 configurations.
func ablationConfigs(seed int64) []struct {
	name string
	opts platform.Options
} {
	mk := func(name string, f func(*platform.Options)) struct {
		name string
		opts platform.Options
	} {
		o := platform.Preset(platform.HiveMind, defaultDevices, seed)
		f(&o)
		return struct {
			name string
			opts platform.Options
		}{name, o}
	}
	return []struct {
		name string
		opts platform.Options
	}{
		mk("hivemind", func(o *platform.Options) {}),
		// Centralized with network acceleration only.
		mk("centr-netaccel", func(o *platform.Options) {
			o.HybridPlacement = false
			o.RemoteMemAccel = false
			o.FaasCfg.Protocol = store.ProtoCouchDB
			o.FaasCfg.Fabric = nil
		}),
		// Centralized with network + remote-memory acceleration.
		mk("centr-net+rmem", func(o *platform.Options) {
			o.HybridPlacement = false
		}),
		// Fully distributed, no acceleration.
		mk("distributed", func(o *platform.Options) {
			o.Kind = platform.DistributedEdge
			o.NetAccel = false
			o.RemoteMemAccel = false
			o.HybridPlacement = false
		}),
		// Distributed with RPC acceleration for result upload.
		mk("distr-netaccel", func(o *platform.Options) {
			o.Kind = platform.DistributedEdge
			o.RemoteMemAccel = false
			o.HybridPlacement = false
		}),
		// HiveMind software-only: hybrid execution without the FPGA.
		mk("hivemind-noaccel", func(o *platform.Options) {
			o.NetAccel = false
			o.RemoteMemAccel = false
			o.FaasCfg.Protocol = store.ProtoCouchDB
			o.FaasCfg.Fabric = nil
		}),
	}
}

// fig13 reproduces Fig. 13: median and p99 latency per job as
// HiveMind's techniques are disabled individually.
func fig13(cfg RunConfig) *Report {
	rep := &Report{ID: "fig13", Title: "Component ablation (Fig. 13)"}
	tb := stats.NewTable("Fig. 13: task latency (s)", "job", "config", "p50", "p99")
	configs := ablationConfigs(cfg.Seed)
	ps := suite(cfg)
	// Rebuild the config set inside each point: Options carries shared
	// pointers (the RPC fabric), so concurrent systems must not reuse
	// one ablationConfigs slice.
	runs := mapPar(cfg, len(ps)*len(configs), func(i int) platform.JobResult {
		p := ps[i/len(configs)]
		c := ablationConfigs(cfg.Seed)[i%len(configs)]
		return platform.NewSystem(c.opts).RunJob(p, jobDuration(cfg))
	})
	for pi, p := range ps {
		for ci, c := range configs {
			res := runs[pi*len(configs)+ci]
			tb.AddRow(string(p.ID), c.name, res.Latency.Median(), res.Latency.Percentile(99))
			rep.SetValue(c.name+"_p50_"+string(p.ID), res.Latency.Median())
		}
	}
	rep.Tables = append(rep.Tables, tb)
	rep.AddNote("no single technique matches the full stack: HiveMind ≤ every ablation for the heavy jobs (paper §5.1)")
	return rep
}

// fig14 reproduces Fig. 14: consumed battery and wireless bandwidth for
// the three platforms across jobs and scenarios.
func fig14(cfg RunConfig) *Report {
	rep := &Report{ID: "fig14", Title: "Battery and bandwidth (Fig. 14)"}
	tb := stats.NewTable("Fig. 14: battery (mean %) and bandwidth (MB/s)",
		"job", "system", "battery_%", "battery_max_%", "bw_MBps", "bw_p99_MBps")
	kinds := []platform.SystemKind{platform.CentralizedFaaS, platform.DistributedEdge, platform.HiveMind}
	ps := suite(cfg)
	scens := []scenario.Kind{scenario.ScenarioA, scenario.ScenarioB}
	jobRes := mapPar(cfg, len(ps)*len(kinds), func(i int) platform.JobResult {
		return runJobOn(kinds[i%len(kinds)], ps[i/len(kinds)], cfg, defaultDevices)
	})
	scenRes := mapPar(cfg, len(scens)*len(kinds), func(i int) scenario.Result {
		return runScenarioOn(scens[i/len(kinds)], kinds[i%len(kinds)], cfg, defaultDevices)
	})
	for pi, p := range ps {
		for ki, k := range kinds {
			res := jobRes[pi*len(kinds)+ki]
			tb.AddRow(string(p.ID), k.String(), res.BatteryMean*100, res.BatteryMax*100, res.BWMeanMBps, res.BWp99MBps)
			rep.SetValue("battery_"+k.String()+"_"+string(p.ID), res.BatteryMean)
			rep.SetValue("bw_"+k.String()+"_"+string(p.ID), res.BWMeanMBps)
		}
	}
	for si, sk := range scens {
		for ki, k := range kinds {
			r := scenRes[si*len(kinds)+ki]
			tb.AddRow(sk.String(), k.String(), r.BatteryMean*100, r.BatteryMax*100, r.BWMeanMBps, r.BWp99MBps)
			rep.SetValue("battery_"+k.String()+"_"+sk.String(), r.BatteryMean)
			rep.SetValue("bw_"+k.String()+"_"+sk.String(), r.BWMeanMBps)
		}
	}
	rep.Tables = append(rep.Tables, tb)
	rep.AddNote("distributed drains batteries fastest; HiveMind sits lowest except the light jobs; HiveMind bandwidth is between distributed and centralized (paper §5.2–5.3)")
	return rep
}
