// Package device models the swarm's edge devices: the Parrot AR-class
// drones of §2.1 (1 GHz single-core ARM, front + bottom cameras, sensor
// suite, 4 m/s cruise, ~6.7 m × 8.75 m camera footprint per frame, 8 fps
// × 2 MB default capture) and the Raspberry Pi robotic cars of §5.5.
// A Device integrates mobility, sensor-data generation, a bounded
// on-board executor (one core, drop-on-overflow), battery accounting,
// heartbeats (1 s period, §4.6) and failure injection.
package device

import (
	"fmt"

	"hivemind/internal/energy"
	"hivemind/internal/geo"
	"hivemind/internal/sim"
)

// Kind distinguishes device classes.
type Kind int

const (
	Drone Kind = iota
	Rover
	// TinyBot is a BittyBuzz-class micro-robot (Kilobot/Zooid scale):
	// coin-cell battery, centimeters-per-second motion, short-range
	// low-rate radio — the third fleet class of the mega-swarm
	// scenarios.
	TinyBot
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Rover:
		return "rover"
	case TinyBot:
		return "tinybot"
	default:
		return "drone"
	}
}

// Config describes a device class.
type Config struct {
	Kind        Kind
	Power       energy.PowerProfile
	SpeedMps    float64 // cruise speed
	FrameMB     float64 // camera frame size
	FPS         float64 // capture rate
	SwathWidthM float64 // camera ground footprint width (sweep swath)
	QueueLimit  int     // on-board task queue bound (drop beyond)
	HeartbeatS  float64 // heartbeat period (§4.6: once per second)
}

// DroneConfig returns the paper's drone calibration.
func DroneConfig() Config {
	return Config{
		Kind:        Drone,
		Power:       energy.DroneProfile(),
		SpeedMps:    4,
		FrameMB:     2,
		FPS:         8,
		SwathWidthM: 6.7,
		QueueLimit:  3,
		HeartbeatS:  1,
	}
}

// TinyBotConfig returns the BittyBuzz-class micro-robot calibration:
// a Kilobot/Zooid-scale device with vibration-slide motion, an ambient
// light/IR sensor instead of a camera, and a short-range low-rate
// radio. Everything is three orders of magnitude below the drone.
func TinyBotConfig() Config {
	return Config{
		Kind:        TinyBot,
		Power:       energy.TinyBotProfile(),
		SpeedMps:    0.01, // ~1 cm/s vibration slide
		FrameMB:     0.002,
		FPS:         2,
		SwathWidthM: 0.1,
		QueueLimit:  1,
		HeartbeatS:  2,
	}
}

// RoverConfig returns the robotic-car calibration (§5.5): slower, bigger
// battery, same camera class.
func RoverConfig() Config {
	return Config{
		Kind:        Rover,
		Power:       energy.RoverProfile(),
		SpeedMps:    1.2,
		FrameMB:     2,
		FPS:         8,
		SwathWidthM: 3.0,
		QueueLimit:  4,
		HeartbeatS:  1,
	}
}

// Device is one swarm member.
type Device struct {
	eng *sim.Engine
	ID  int
	cfg Config

	Battery *energy.Battery
	integ   *energy.Integrator

	cpu     *sim.Resource
	queued  int
	dropped int

	region geo.Rect
	pos    geo.Point

	failed   bool
	onFailed func(*Device)

	lastBeat sim.Time
	tick     *sim.Ticker
}

// New creates a device. onFailed (may be nil) fires once when the device
// fails — battery depletion or injected fault.
func New(eng *sim.Engine, id int, cfg Config, onFailed func(*Device)) *Device {
	d := &Device{eng: eng, ID: id, cfg: cfg, onFailed: onFailed}
	d.Battery = energy.NewBattery(cfg.Power, func() { d.Fail() })
	d.integ = energy.NewIntegrator(d.Battery, eng.Now())
	d.cpu = sim.NewResource(eng, 1)
	d.lastBeat = eng.Now()
	// Periodic integration so slow drains (hover, idle CPU) register and
	// can deplete the battery between discrete events; doubles as the
	// heartbeat emitter.
	d.tick = eng.Every(cfg.HeartbeatS, 0, func() {
		if d.failed {
			return
		}
		d.integ.Advance(eng.Now())
		if !d.failed {
			d.lastBeat = eng.Now()
		}
	})
	return d
}

// Config returns the device's configuration.
func (d *Device) Config() Config { return d.cfg }

// Failed reports whether the device is down.
func (d *Device) Failed() bool { return d.failed }

// LastHeartbeat returns when the device last emitted a heartbeat.
func (d *Device) LastHeartbeat() sim.Time { return d.lastBeat }

// Region returns the device's assigned coverage region.
func (d *Device) Region() geo.Rect { return d.region }

// AssignRegion gives the device a coverage region and starts it moving.
func (d *Device) AssignRegion(r geo.Rect) {
	d.integ.Advance(d.eng.Now())
	d.region = r
	d.pos = r.Center()
	d.integ.Moving = r.Valid()
	d.integ.Hovering = !r.Valid() && d.cfg.Kind == Drone
}

// SetMoving toggles motion (drones hover when not moving).
func (d *Device) SetMoving(moving bool) {
	d.integ.Advance(d.eng.Now())
	d.integ.Moving = moving
	d.integ.Hovering = !moving && d.cfg.Kind == Drone
}

// SweepTimeS returns how long covering the assigned region takes.
func (d *Device) SweepTimeS() float64 {
	return geo.SweepTime(d.region, d.cfg.SwathWidthM, d.cfg.SpeedMps)
}

// SensorRateMBps returns the raw capture data rate.
func (d *Device) SensorRateMBps() float64 { return d.cfg.FrameMB * d.cfg.FPS }

// Fail marks the device as failed (battery or injected fault) exactly
// once, accounts pending energy, and notifies the owner.
func (d *Device) Fail() {
	if d.failed {
		return
	}
	d.integ.Advance(d.eng.Now())
	d.failed = true
	d.integ.Moving = false
	d.integ.Hovering = false
	d.integ.CPUBusy = false
	d.tick.Stop()
	if d.onFailed != nil {
		d.onFailed(d)
	}
}

// TaskOutcome reports an on-board execution.
type TaskOutcome struct {
	Dropped bool
	QueueS  float64
	ExecS   float64
}

// RunTask executes a task on the on-board core. If the bounded queue is
// full the task is dropped (sensor batches are skipped when the device
// cannot keep up) and done is called immediately with Dropped=true.
func (d *Device) RunTask(execS float64, done func(TaskOutcome)) {
	if d.failed {
		done(TaskOutcome{Dropped: true})
		return
	}
	if d.queued >= d.cfg.QueueLimit {
		d.dropped++
		done(TaskOutcome{Dropped: true})
		return
	}
	d.queued++
	enq := d.eng.Now()
	d.cpu.Grab(func() {
		start := d.eng.Now()
		if d.failed {
			d.queued--
			d.cpu.Release()
			done(TaskOutcome{Dropped: true, QueueS: start - enq})
			return
		}
		d.integ.Advance(start)
		d.integ.CPUBusy = true
		d.eng.Defer(execS, func() {
			d.integ.Advance(d.eng.Now())
			d.queued--
			d.cpu.Release() // may synchronously start the next queued task
			d.integ.CPUBusy = d.cpu.InUse() > 0
			done(TaskOutcome{QueueS: start - enq, ExecS: execS})
		})
	})
}

// QueueLen returns queued-plus-running on-board tasks.
func (d *Device) QueueLen() int { return d.queued }

// Dropped returns how many tasks overflowed the on-board queue.
func (d *Device) Dropped() int { return d.dropped }

// Transmit accounts radio energy for sending megabytes to the cloud.
func (d *Device) Transmit(mb float64) {
	d.integ.Advance(d.eng.Now())
	d.Battery.ConsumeTx(mb)
}

// Receive accounts radio energy for receiving megabytes.
func (d *Device) Receive(mb float64) {
	d.integ.Advance(d.eng.Now())
	d.Battery.ConsumeRx(mb)
}

// FinishMission stops motion and settles the energy account.
func (d *Device) FinishMission() {
	d.SetMoving(false)
	d.integ.Advance(d.eng.Now())
}

// Settle forces energy integration up to now (call before reading the
// battery at the end of an experiment).
func (d *Device) Settle() {
	if !d.failed {
		d.integ.Advance(d.eng.Now())
	}
}

// String implements fmt.Stringer.
func (d *Device) String() string {
	return fmt.Sprintf("%s-%d (battery %.0f%%, %s)", d.cfg.Kind, d.ID,
		(1-d.Battery.ConsumedFraction())*100,
		map[bool]string{true: "failed", false: "ok"}[d.failed])
}

// Fleet is a convenience collection.
type Fleet []*Device

// NewFleet builds n devices with ids 0..n-1.
func NewFleet(eng *sim.Engine, n int, cfg Config, onFailed func(*Device)) Fleet {
	fleet := make(Fleet, n)
	for i := range fleet {
		fleet[i] = New(eng, i, cfg, onFailed)
	}
	return fleet
}

// Alive returns the number of working devices.
func (f Fleet) Alive() int {
	n := 0
	for _, d := range f {
		if !d.Failed() {
			n++
		}
	}
	return n
}

// Settle settles all devices' energy accounts.
func (f Fleet) Settle() {
	for _, d := range f {
		d.Settle()
	}
}

// MeanBatteryConsumed returns the average consumed fraction [0,1].
func (f Fleet) MeanBatteryConsumed() float64 {
	if len(f) == 0 {
		return 0
	}
	var sum float64
	for _, d := range f {
		sum += d.Battery.ConsumedFraction()
	}
	return sum / float64(len(f))
}

// MaxBatteryConsumed returns the worst-case consumed fraction.
func (f Fleet) MaxBatteryConsumed() float64 {
	var max float64
	for _, d := range f {
		if c := d.Battery.ConsumedFraction(); c > max {
			max = c
		}
	}
	return max
}

// StopAll halts device periodic work (end of experiment).
func (f Fleet) StopAll() {
	for _, d := range f {
		d.tick.Stop()
	}
}
