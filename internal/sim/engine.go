// Package sim implements a deterministic discrete-event simulation kernel.
//
// The kernel is callback-based: model code schedules closures at virtual
// times on an Engine, and the Engine executes them in time order (ties
// broken by scheduling order, which makes runs with the same seed fully
// deterministic). On top of the raw event loop the package provides
// cancellable timers and multi-server FIFO resources with queueing
// statistics — the building blocks for the queueing-network swarm
// simulator described in Section 5.6 of the HiveMind paper.
//
// The event loop is the hot path under the entire evaluation sweep
// (every figure re-runs the swarm simulator), so it is tuned to shed
// allocations: event structs are recycled through a per-engine free
// list (safe because Cancel drops the callback and recycling bumps a
// generation counter that stale Timer handles check), and the priority
// queue is a hand-rolled binary heap with inlined comparisons rather
// than container/heap's interface-dispatched one.
package sim

import (
	"fmt"
	"math/rand"
)

// Time is virtual simulation time in seconds.
type Time = float64

// Infinity is a time later than any event the simulator will ever reach.
const Infinity Time = 1e18

// event is a scheduled closure. seq breaks ties between events scheduled
// for the same instant so execution order matches scheduling order. gen
// counts recycles: a Timer binds to (event, gen) and goes inert once the
// event is returned to the pool, so handle reuse cannot cancel an
// unrelated later event.
type event struct {
	at     Time
	seq    uint64
	fn     func()
	cancel bool
	index  int    // heap index, -1 once popped
	gen    uint32 // bumped on every recycle
}

// Engine is a discrete-event simulation executive. It is not safe for
// concurrent use; all model code runs on the caller's goroutine inside
// Run / RunUntil.
type Engine struct {
	now    Time
	events []*event // binary min-heap on (at, seq)
	seq    uint64
	rng    *rand.Rand
	// free recycles event structs. It is deliberately per-engine rather
	// than a shared sync.Pool: the evaluation runner executes many
	// engines on concurrent goroutines, and a cross-engine pool would
	// let a stale Timer in one engine read an event another engine is
	// rewriting. Engines are single-goroutine, so this list needs no
	// synchronization at all.
	free    []*event
	stopped bool
	steps   uint64
}

// NewEngine returns an engine at time zero with a deterministic RNG
// seeded by seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Steps reports how many events have been executed so far.
func (e *Engine) Steps() uint64 { return e.steps }

// less orders events by time, ties broken by scheduling order.
func less(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push inserts ev into the heap. The common case — an event scheduled
// later than everything pending — is a single append plus one parent
// comparison; out-of-order inserts sift up as usual.
func (e *Engine) push(ev *event) {
	h := append(e.events, ev)
	i := len(h) - 1
	ev.index = i
	for i > 0 {
		p := (i - 1) / 2
		if !less(ev, h[p]) {
			break
		}
		h[i] = h[p]
		h[i].index = i
		i = p
	}
	h[i] = ev
	ev.index = i
	e.events = h
}

// pop removes and returns the earliest event. It sifts a hole down and
// drops the displaced tail element in once, halving pointer writes
// versus swap-based sift.
func (e *Engine) pop() *event {
	h := e.events
	top := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = nil
	h = h[:n]
	if n > 0 {
		i := 0
		for {
			c := 2*i + 1
			if c >= n {
				break
			}
			if r := c + 1; r < n && less(h[r], h[c]) {
				c = r
			}
			if !less(h[c], last) {
				break
			}
			h[i] = h[c]
			h[i].index = i
			i = c
		}
		h[i] = last
		last.index = i
	}
	e.events = h
	top.index = -1
	return top
}

// recycle returns a popped event to the free list. The generation bump
// makes any Timer still holding the event inert.
func (e *Engine) recycle(ev *event) {
	ev.fn = nil
	ev.gen++
	e.free = append(e.free, ev)
}

// schedule is the allocation-lean core of At/After/Defer: it takes an
// event from the free list and enqueues it without creating a Timer
// handle.
func (e *Engine) schedule(t Time, fn func()) *event {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %g before now %g", t, e.now))
	}
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = new(event)
	}
	ev.at = t
	ev.seq = e.seq
	ev.fn = fn
	ev.cancel = false
	e.seq++
	e.push(ev)
	return ev
}

// Timer is a handle to a scheduled event that can be cancelled before it
// fires.
type Timer struct {
	ev        *event
	gen       uint32
	cancelled bool
}

// Cancel prevents the timer's callback from running. Cancelling an
// already-fired or already-cancelled timer is a no-op. It reports whether
// the callback was actually prevented.
func (t *Timer) Cancel() bool {
	if t == nil || t.ev == nil || t.cancelled {
		return false
	}
	ev := t.ev
	if ev.gen != t.gen || ev.fn == nil {
		// The event fired (and was recycled, possibly into a new life)
		// or is mid-dispatch; nothing to prevent.
		return false
	}
	ev.cancel = true
	// Release the closure immediately: a cancelled event can sit in the
	// heap until popped, and fn may capture large model state.
	ev.fn = nil
	t.cancelled = true
	return ev.index != -1
}

// Stopped reports whether the timer has been cancelled.
func (t *Timer) Stopped() bool { return t == nil || t.ev == nil || t.cancelled }

// At schedules fn to run at absolute time t. Scheduling in the past
// panics: it indicates a model bug that would silently corrupt causality.
func (e *Engine) At(t Time, fn func()) *Timer {
	ev := e.schedule(t, fn)
	return &Timer{ev: ev, gen: ev.gen}
}

// After schedules fn to run d seconds from now. Negative delays are
// clamped to zero.
func (e *Engine) After(d Time, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// Defer schedules fn to run d seconds from now, like After, but without
// materialising a Timer handle. It is the right call in hot model loops
// that never cancel: the event struct itself is pool-recycled, so a
// Defer round trip is allocation-free at steady state.
func (e *Engine) Defer(d Time, fn func()) {
	if d < 0 {
		d = 0
	}
	e.schedule(e.now+d, fn)
}

// DeferAt is Defer with an absolute deadline.
func (e *Engine) DeferAt(t Time, fn func()) {
	e.schedule(t, fn)
}

// Alarm is a reusable one-shot timer for model components that re-arm
// the same callback over and over (flow-completion timers, keep-alive
// expirations). Unlike After, re-arming an Alarm allocates nothing: the
// callback is bound once and the Alarm tracks its pending event through
// the engine's recycling generations.
type Alarm struct {
	eng *Engine
	fn  func()
	ev  *event
	gen uint32
}

// NewAlarm binds fn to a reusable timer. The alarm starts unarmed.
func (e *Engine) NewAlarm(fn func()) *Alarm {
	return &Alarm{eng: e, fn: fn}
}

// armed reports whether the alarm's event is still pending and its own
// (not recycled into a new life, not cancelled, not mid-dispatch).
func (a *Alarm) armed() bool {
	return a.ev != nil && a.ev.gen == a.gen && a.ev.fn != nil
}

// Set arms the alarm to fire d seconds from now (clamped at zero),
// replacing any pending firing.
func (a *Alarm) Set(d Time) {
	if d < 0 {
		d = 0
	}
	a.SetAt(a.eng.now + d)
}

// SetAt arms the alarm to fire at absolute time t, replacing any
// pending firing.
func (a *Alarm) SetAt(t Time) {
	a.Stop()
	a.ev = a.eng.schedule(t, a.fn)
	a.gen = a.ev.gen
}

// Stop cancels the pending firing, if any. Safe to call when unarmed.
func (a *Alarm) Stop() {
	if a.armed() {
		a.ev.cancel = true
		a.ev.fn = nil
	}
	a.ev = nil
}

// Stop makes the current Run/RunUntil call return after the in-flight
// event completes. Pending events remain queued.
func (e *Engine) Stop() { e.stopped = true }

// Pending reports the number of events still queued (including cancelled
// ones that have not yet been popped).
func (e *Engine) Pending() int { return len(e.events) }

// Run executes events until the queue is empty or Stop is called.
func (e *Engine) Run() { e.RunUntil(Infinity) }

// RunUntil executes events with timestamps <= limit and then advances
// the clock to limit, even when the queue emptied earlier — callers
// stepping a simulation in fixed windows rely on Now() landing exactly
// on each window boundary. The two exceptions leave the clock at the
// last executed event: Stop (the run was interrupted mid-window) and
// Run, whose limit of Infinity is a horizon, not a boundary. It returns
// the number of events executed during this call.
func (e *Engine) RunUntil(limit Time) uint64 {
	e.stopped = false
	var executed uint64
	for len(e.events) > 0 && !e.stopped {
		if e.events[0].at > limit {
			e.now = limit
			return executed
		}
		next := e.pop()
		if next.cancel {
			e.recycle(next)
			continue
		}
		e.now = next.at
		fn := next.fn
		next.fn = nil
		e.recycle(next)
		fn()
		e.steps++
		executed++
	}
	if !e.stopped && limit < Infinity && limit > e.now {
		e.now = limit
	}
	return executed
}

// Every schedules fn to run every period seconds starting at now+period,
// until the returned Ticker is stopped. Jitter, if positive, offsets
// each firing by a zero-mean uniform phase drawn from
// [-jitter/2, jitter/2), desynchronizing periodic processes
// (heartbeats, monitors) without biasing the mean period: firings stay
// anchored to the ideal k*period grid, so the long-run firing rate is
// exactly 1/period regardless of jitter.
func (e *Engine) Every(period, jitter Time, fn func()) *Ticker {
	t := &Ticker{eng: e, period: period, jitter: jitter, fn: fn, base: e.now}
	// One closure for the ticker's whole life; each firing re-arms the
	// same reusable alarm, so steady-state ticking allocates nothing.
	t.next = e.NewAlarm(func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.arm()
		}
	})
	t.arm()
	return t
}

// Ticker repeatedly schedules a callback. Stop it to end the cycle.
type Ticker struct {
	eng    *Engine
	period Time
	jitter Time
	fn     func()
	next   *Alarm
	// base is the unjittered anchor of the last scheduled firing; each
	// arm advances it by exactly period so jitter perturbs the phase of
	// individual firings without accumulating into the period.
	base    Time
	stopped bool
}

func (t *Ticker) arm() {
	t.base += t.period
	at := t.base
	if t.jitter > 0 {
		at += (t.eng.Rand().Float64() - 0.5) * t.jitter
	}
	// A large jitter (> period) can draw a phase behind the clock;
	// clamp rather than schedule in the past.
	if at < t.eng.now {
		at = t.eng.now
	}
	t.next.SetAt(at)
}

// Stop ends the ticker. Safe to call multiple times.
func (t *Ticker) Stop() {
	if t.stopped {
		return
	}
	t.stopped = true
	t.next.Stop()
}
