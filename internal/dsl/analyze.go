package dsl

import (
	"fmt"
	"strconv"
	"strings"
)

// Analyze validates a parsed Program and produces the TaskGraph the
// synthesis stage consumes. It checks referential integrity, completes
// symmetric parent/child links, rejects cycles and contradictory
// relations, and interprets directives.
func Analyze(prog *Program) (*TaskGraph, error) {
	g := &TaskGraph{byName: make(map[string]*Task), Streams: map[string]Stream{}}
	var declared []string // names listed in TaskGraph(list=...)
	sawGraph := false

	for _, st := range prog.Statements {
		switch st.Op {
		case "TaskGraph":
			if sawGraph {
				return nil, fmt.Errorf("line %d: duplicate TaskGraph", st.Line)
			}
			sawGraph = true
			for _, a := range st.Args {
				switch a.Key {
				case "list":
					declared = a.Value.Strings()
				case "constraint", "constraints":
					if err := parseConstraints(a.Value, &g.Constraints); err != nil {
						return nil, fmt.Errorf("line %d: %w", st.Line, err)
					}
				case "name":
					g.Name = a.Value.Text()
				case "":
					return nil, fmt.Errorf("line %d: TaskGraph takes named arguments (list=, constraint=)", st.Line)
				default:
					return nil, fmt.Errorf("line %d: unknown TaskGraph argument %q", st.Line, a.Key)
				}
			}
		case "Task":
			t, err := parseTask(st)
			if err != nil {
				return nil, err
			}
			if _, dup := g.byName[t.Name]; dup {
				return nil, fmt.Errorf("line %d: task %q declared twice", st.Line, t.Name)
			}
			g.byName[t.Name] = t
			g.Tasks = append(g.Tasks, t)
		case "Stream":
			st2, err := parseStream(st)
			if err != nil {
				return nil, err
			}
			if _, dup := g.Streams[st2.Name]; dup {
				return nil, fmt.Errorf("line %d: stream %q declared twice", st.Line, st2.Name)
			}
			g.Streams[st2.Name] = st2
		case "Parallel", "Overlap", "Serial":
			if len(st.Args) != 2 {
				return nil, fmt.Errorf("line %d: %s takes two tasks", st.Line, st.Op)
			}
			kind := map[string]RelationKind{"Parallel": RelParallel, "Overlap": RelOverlap, "Serial": RelSerial}[st.Op]
			g.Relations = append(g.Relations, Relation{
				Kind: kind, A: st.Args[0].Value.Text(), B: st.Args[1].Value.Text(),
			})
		default:
			// Directive statements handled after tasks exist.
		}
	}
	if !sawGraph {
		return nil, fmt.Errorf("dsl: program has no TaskGraph declaration")
	}
	if len(g.Tasks) == 0 {
		return nil, fmt.Errorf("dsl: program declares no tasks")
	}

	// Every name in the TaskGraph list must be declared, and vice versa.
	declSet := map[string]bool{}
	for _, n := range declared {
		declSet[n] = true
		if _, ok := g.byName[n]; !ok {
			return nil, fmt.Errorf("dsl: TaskGraph lists %q but no Task(%s,...) is declared", n, n)
		}
	}
	if len(declared) > 0 {
		for _, t := range g.Tasks {
			if !declSet[t.Name] {
				return nil, fmt.Errorf("dsl: task %q is declared but missing from the TaskGraph list", t.Name)
			}
		}
	}

	if err := linkEdges(g); err != nil {
		return nil, err
	}
	if err := applyDirectives(g, prog); err != nil {
		return nil, err
	}
	if err := validateRelations(g); err != nil {
		return nil, err
	}
	if err := checkAcyclic(g); err != nil {
		return nil, err
	}
	return g, nil
}

// ParseAndAnalyze is the one-call front door.
func ParseAndAnalyze(src string) (*TaskGraph, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Analyze(prog)
}

// parseStream handles Stream(name, rate='8Hz', item='2MB').
func parseStream(st Statement) (Stream, error) {
	out := Stream{}
	positional := 0
	for _, a := range st.Args {
		if a.Key == "" {
			if positional == 0 {
				out.Name = a.Value.Text()
			}
			positional++
			continue
		}
		switch a.Key {
		case "rate":
			v := strings.TrimSuffix(a.Value.Text(), "Hz")
			n, err := strconv.ParseFloat(v, 64)
			if err != nil || n <= 0 {
				return out, fmt.Errorf("line %d: bad stream rate %q", st.Line, a.Value.Text())
			}
			out.RateHz = n
		case "item":
			v := strings.TrimSuffix(a.Value.Text(), "MB")
			n, err := strconv.ParseFloat(v, 64)
			if err != nil || n <= 0 {
				return out, fmt.Errorf("line %d: bad stream item size %q", st.Line, a.Value.Text())
			}
			out.ItemMB = n
		default:
			return out, fmt.Errorf("line %d: unknown Stream argument %q", st.Line, a.Key)
		}
	}
	if out.Name == "" {
		return out, fmt.Errorf("line %d: Stream requires a name", st.Line)
	}
	if out.RateHz == 0 {
		return out, fmt.Errorf("line %d: Stream %q requires rate=", st.Line, out.Name)
	}
	return out, nil
}

func parseTask(st Statement) (*Task, error) {
	t := &Task{Params: map[string]string{}}
	positional := 0
	for _, a := range st.Args {
		if a.Key == "" {
			switch positional {
			case 0:
				t.Name = a.Value.Text()
			case 1:
				if !a.Value.IsNone {
					t.DataIn = a.Value.Text()
				}
			case 2:
				if !a.Value.IsNone {
					t.DataOut = a.Value.Text()
				}
			case 3:
				t.CodePath = a.Value.Text()
			default:
				return nil, fmt.Errorf("line %d: too many positional Task arguments", st.Line)
			}
			positional++
			continue
		}
		switch a.Key {
		case "parentTask":
			if !a.Value.IsNone {
				t.Parents = a.Value.Strings()
			}
		case "childTask":
			if !a.Value.IsNone {
				t.Children = a.Value.Strings()
			}
		case "sync":
			t.SyncCond = a.Value.Text()
		case "colocatable":
			t.Colocatable = a.Value.Text() == "true" || a.Value.Num == 1
		default:
			if a.Value.Kind == ValNumber {
				t.Params[a.Key] = strconv.FormatFloat(a.Value.Num, 'g', -1, 64)
			} else {
				t.Params[a.Key] = a.Value.Text()
			}
		}
	}
	if t.Name == "" {
		return nil, fmt.Errorf("line %d: Task requires a name", st.Line)
	}
	return t, nil
}

// linkEdges verifies referential integrity and completes symmetric
// parent/child links.
func linkEdges(g *TaskGraph) error {
	for _, t := range g.Tasks {
		for _, p := range t.Parents {
			pt, ok := g.byName[p]
			if !ok {
				return fmt.Errorf("dsl: task %q references unknown parent %q", t.Name, p)
			}
			if !contains(pt.Children, t.Name) {
				pt.Children = append(pt.Children, t.Name)
			}
		}
		for _, c := range t.Children {
			ct, ok := g.byName[c]
			if !ok {
				return fmt.Errorf("dsl: task %q references unknown child %q", t.Name, c)
			}
			if !contains(ct.Parents, t.Name) {
				ct.Parents = append(ct.Parents, t.Name)
			}
		}
		if contains(t.Parents, t.Name) || contains(t.Children, t.Name) {
			return fmt.Errorf("dsl: task %q references itself", t.Name)
		}
	}
	return nil
}

func applyDirectives(g *TaskGraph, prog *Program) error {
	taskArg := func(st Statement) (*Task, error) {
		if len(st.Args) < 1 {
			return nil, fmt.Errorf("line %d: %s requires a task", st.Line, st.Op)
		}
		name := st.Args[0].Value.Text()
		t, ok := g.byName[name]
		if !ok {
			return nil, fmt.Errorf("line %d: %s references unknown task %q", st.Line, st.Op, name)
		}
		return t, nil
	}
	for _, st := range prog.Statements {
		switch st.Op {
		case "Place":
			t, err := taskArg(st)
			if err != nil {
				return err
			}
			if len(st.Args) < 2 {
				return fmt.Errorf("line %d: Place requires a location", st.Line)
			}
			loc := st.Args[1].Value.Text()
			base, _, found := strings.Cut(loc, ":")
			switch strings.ToLower(base) {
			case "edge":
				t.Pin = PlaceEdge
			case "cloud":
				t.Pin = PlaceCloud
			default:
				return fmt.Errorf("line %d: Place location %q must be Edge or Cloud (optionally ':all')", st.Line, loc)
			}
			if found {
				t.PinAll = true
			}
		case "Learn":
			t, err := taskArg(st)
			if err != nil {
				return err
			}
			mode := "Global"
			if len(st.Args) >= 2 {
				mode = st.Args[1].Value.Text()
			}
			switch mode {
			case "Global", "Self", "Off":
				t.Learn = mode
			default:
				return fmt.Errorf("line %d: Learn mode %q must be Global, Self or Off", st.Line, mode)
			}
		case "Persist":
			t, err := taskArg(st)
			if err != nil {
				return err
			}
			t.Persist = true
		case "Isolate":
			t, err := taskArg(st)
			if err != nil {
				return err
			}
			t.Isolated = true
		case "Restore":
			t, err := taskArg(st)
			if err != nil {
				return err
			}
			policy := "respawn"
			if len(st.Args) >= 2 {
				policy = st.Args[1].Value.Text()
			}
			t.Restore = policy
		case "Schedule":
			t, err := taskArg(st)
			if err != nil {
				return err
			}
			for _, a := range st.Args[1:] {
				if a.Key == "priority" {
					t.Priority = int(a.Value.Num)
				}
			}
		case "Synchronize":
			t, err := taskArg(st)
			if err != nil {
				return err
			}
			cond := "all"
			if len(st.Args) >= 2 {
				cond = st.Args[1].Value.Text()
			}
			if cond != "all" && cond != "any" {
				return fmt.Errorf("line %d: Synchronize condition %q must be all or any", st.Line, cond)
			}
			t.SyncCond = cond
		}
	}
	return nil
}

func validateRelations(g *TaskGraph) error {
	seen := map[[2]string]RelationKind{}
	for _, r := range g.Relations {
		if _, ok := g.byName[r.A]; !ok {
			return fmt.Errorf("dsl: %s relation references unknown task %q", r.Kind, r.A)
		}
		if _, ok := g.byName[r.B]; !ok {
			return fmt.Errorf("dsl: %s relation references unknown task %q", r.Kind, r.B)
		}
		if r.A == r.B {
			return fmt.Errorf("dsl: %s relation on task %q with itself", r.Kind, r.A)
		}
		key := [2]string{r.A, r.B}
		if r.B < r.A {
			key = [2]string{r.B, r.A}
		}
		if prev, dup := seen[key]; dup && prev != r.Kind {
			return fmt.Errorf("dsl: tasks %q and %q have contradictory relations %s and %s",
				r.A, r.B, prev, r.Kind)
		}
		seen[key] = r.Kind
	}
	return nil
}

func checkAcyclic(g *TaskGraph) error {
	if ordered := g.TopoOrder(); len(ordered) != len(g.Tasks) {
		inOrder := map[string]bool{}
		for _, t := range ordered {
			inOrder[t.Name] = true
		}
		var cyclic []string
		for _, t := range g.Tasks {
			if !inOrder[t.Name] {
				cyclic = append(cyclic, t.Name)
			}
		}
		return fmt.Errorf("dsl: task graph has a cycle involving %s", strings.Join(cyclic, ", "))
	}
	return nil
}

func parseConstraints(v Value, c *Constraints) error {
	for _, item := range v.Strings() {
		key, val, ok := strings.Cut(item, "=")
		if !ok {
			return fmt.Errorf("constraint %q must be key=value", item)
		}
		switch key {
		case "execTime":
			d, err := parseDuration(val)
			if err != nil {
				return err
			}
			c.ExecTimeS = d
		case "latency":
			d, err := parseDuration(val)
			if err != nil {
				return err
			}
			c.LatencyS = d
		case "throughput":
			n, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return fmt.Errorf("bad throughput %q", val)
			}
			c.ThroughputTps = n
		case "cost":
			n, err := strconv.ParseFloat(strings.TrimPrefix(val, "$"), 64)
			if err != nil {
				return fmt.Errorf("bad cost %q", val)
			}
			c.MaxCostUSD = n
		case "power":
			n, err := strconv.ParseFloat(strings.TrimSuffix(val, "W"), 64)
			if err != nil {
				return fmt.Errorf("bad power %q", val)
			}
			c.MaxPowerW = n
		default:
			return fmt.Errorf("unknown constraint %q", key)
		}
	}
	return nil
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
