//go:build !race

package netsim

// raceEnabled gates wall-clock assertions (the neighbour-index ceiling
// test): under the race detector both sides run an order of magnitude
// slower and the ratio stops measuring the data structure.
const raceEnabled = false
