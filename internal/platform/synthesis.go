package platform

import (
	"hivemind/internal/apps"
	"hivemind/internal/dsl"
	"hivemind/internal/synth"
)

// SynthesizePlacement runs the real placement explorer (§4.2) over a
// single-tier application expressed as the canonical two-task graph
// (on-device sensor collection → processing tier) and returns where the
// processing tier should run. This is the programmatic path behind
// System.PlaceFor: the hand-written placement rules and the
// synthesizer's choices must agree (asserted by tests), so systems can
// use either.
//
// The returned placement is TierEdge when the explorer keeps the
// processing on-device, and TierHybrid when it offloads (HiveMind
// always pairs offload with on-board preprocessing).
func SynthesizePlacement(p apps.Profile, devices int) (TierPlacement, error) {
	b := dsl.NewGraph(string(p.ID)).
		Task("collect").
		Task("process", dsl.WithParents("collect"))
	if p.PinEdge {
		b.Place("process", dsl.PlaceEdge, true)
	}
	g, err := b.Build()
	if err != nil {
		return TierCloud, err
	}
	costs := map[string]synth.TaskCost{
		"collect": {
			CloudExecS: 0.001, EdgeExecS: 0.001, Parallelism: 1,
			OutputMB: p.InputMB, RatePerDev: p.TaskRatePerDevice, Sensor: true,
		},
		"process": {
			CloudExecS: p.CloudExecS, EdgeExecS: p.EdgeExecS,
			Parallelism: p.Parallelism, InputMB: p.InputMB,
			OutputMB: p.OutputMB, RatePerDev: p.TaskRatePerDevice,
		},
	}
	cands, err := synth.Explore(g, costs, synth.DefaultEnv(devices))
	if err != nil {
		return TierCloud, err
	}
	// Choose the best candidate under the swarm-scalability preference:
	// when a candidate stays within 1.4x of the best latency, prefer the
	// one that puts less traffic on the shared wireless medium — the
	// scarce resource that caps swarm size (§2.2, §5.6). This is why
	// light tasks like drone detection and weather analytics stay
	// on-board even though offloading them would be battery-neutral.
	best := cands[0]
	for _, c := range cands[1:] {
		if !c.Metrics.Feasible {
			continue
		}
		if c.Metrics.LatencyS <= best.Metrics.LatencyS*1.4 &&
			c.Metrics.NetworkMBps < best.Metrics.NetworkMBps {
			best = c
		}
	}
	if best.Assignment["process"] == synth.LocEdge {
		return TierEdge, nil
	}
	return TierHybrid, nil
}
