package faas

import (
	"testing"
	"time"

	"hivemind/internal/runtime"
	"hivemind/internal/sim"
)

// The model measures the respawn pause in seconds
// (Config.RespawnDelayS), the live gateway in time.Duration
// (runtime.GatewayConfig.RespawnDelay). This calibration test pins the
// two substrates to the same 120 ms default through the sim unit
// converters, so neither side can drift silently.
func TestRespawnDelayUnitsAgreeAcrossSubstrates(t *testing.T) {
	model := DefaultConfig()
	live := runtime.DefaultGatewayConfig()

	if got := model.RespawnDelayDuration(); got != live.RespawnDelay {
		t.Fatalf("model respawn delay %v != live gateway respawn delay %v", got, live.RespawnDelay)
	}
	if model.RespawnDelayDuration() != 120*time.Millisecond {
		t.Fatalf("model respawn delay = %v, want the 120 ms default", model.RespawnDelayDuration())
	}
	if got := sim.SecondsOf(live.RespawnDelay); got != model.RespawnDelayS {
		t.Fatalf("live respawn delay converts to %.6fs, model says %.6fs", got, model.RespawnDelayS)
	}
}

func TestSimTimeConvertersRoundTrip(t *testing.T) {
	for _, d := range []time.Duration{0, time.Millisecond, 120 * time.Millisecond, 3 * time.Second} {
		if got := sim.DurationOf(sim.SecondsOf(d)); got != d {
			t.Fatalf("round trip %v -> %v", d, got)
		}
	}
	if sim.DurationOf(0.5) != 500*time.Millisecond {
		t.Fatalf("DurationOf(0.5) = %v", sim.DurationOf(0.5))
	}
}
