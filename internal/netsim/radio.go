package netsim

import (
	"fmt"
	"math"
	"slices"
	"sort"

	"hivemind/internal/geo"
	"hivemind/internal/sim"
)

// NeighborIndex precomputes, for a static device layout, which devices
// each transmitter reaches: the neighbour sets a swarm broadcast
// delivers to. Construction bins positions on a uniform grid sized by
// the largest radio range, so building all n lists costs O(n · local
// density) instead of the O(n²) all-pairs scan — and a Neighbors query
// afterwards is a zero-allocation slice lookup. The same index serves
// the single-engine path and every cell of a sharded run: range
// queries never scan the whole fleet again.
type NeighborIndex struct {
	pos []geo.Point
	nbr [][]int32 // per device, ascending ids within the device's range
}

// BuildNeighborIndex computes per-device neighbour sets: e is a
// neighbour of d when dist(d,e) <= rangeM[d] (transmitter-ranged, so
// asymmetric mixes of long-range drones and short-range tiny robots
// work naturally). Positions are treated as static for the index's
// lifetime.
func BuildNeighborIndex(pts []geo.Point, rangeM []float64) *NeighborIndex {
	if len(pts) != len(rangeM) {
		panic("netsim: positions and ranges must align")
	}
	ix := &NeighborIndex{pos: pts, nbr: make([][]int32, len(pts))}
	if len(pts) == 0 {
		return ix
	}
	// Grid cell side = the largest range: any neighbour of d lies in
	// d's bin or one of the 8 surrounding it... for d's own range; we
	// size conservatively by the global maximum so one grid serves all
	// classes.
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	side := 0.0
	for i, p := range pts {
		minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
		minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
		side = math.Max(side, rangeM[i])
	}
	if side <= 0 {
		return ix // no device can reach anything
	}
	cols := int((maxX-minX)/side) + 1
	rows := int((maxY-minY)/side) + 1
	binOf := func(p geo.Point) (int, int) {
		return int((p.X - minX) / side), int((p.Y - minY) / side)
	}
	bins := make([][]int32, cols*rows)
	for i, p := range pts {
		bx, by := binOf(p)
		bi := by*cols + bx
		bins[bi] = append(bins[bi], int32(i))
	}
	for d, p := range pts {
		r := rangeM[d]
		if r <= 0 {
			continue
		}
		r2 := r * r
		bx, by := binOf(p)
		span := int(r/side) + 1
		var out []int32
		for y := by - span; y <= by+span; y++ {
			if y < 0 || y >= rows {
				continue
			}
			for x := bx - span; x <= bx+span; x++ {
				if x < 0 || x >= cols {
					continue
				}
				for _, e := range bins[y*cols+x] {
					if int(e) == d {
						continue
					}
					q := pts[e]
					dx, dy := q.X-p.X, q.Y-p.Y
					if dx*dx+dy*dy <= r2 {
						out = append(out, e)
					}
				}
			}
		}
		slices.Sort(out)
		ix.nbr[d] = out
	}
	return ix
}

// buildNeighborsNaive is the reference all-pairs scan the index
// replaces; tests assert set equality and the bench measures what the
// binning buys.
func buildNeighborsNaive(pts []geo.Point, rangeM []float64) [][]int32 {
	out := make([][]int32, len(pts))
	for d, p := range pts {
		r2 := rangeM[d] * rangeM[d]
		if r2 <= 0 {
			continue
		}
		for e, q := range pts {
			if e == d {
				continue
			}
			dx, dy := q.X-p.X, q.Y-p.Y
			if dx*dx+dy*dy <= r2 {
				out[d] = append(out[d], int32(e))
			}
		}
	}
	return out
}

// Neighbors returns device d's neighbour set (read-only; shared). The
// lookup allocates nothing.
func (ix *NeighborIndex) Neighbors(d int) []int32 { return ix.nbr[d] }

// Position returns device d's static position.
func (ix *NeighborIndex) Position(d int) geo.Point { return ix.pos[d] }

// AvgDegree reports the mean neighbour count (diagnostics/tests).
func (ix *NeighborIndex) AvgDegree() float64 {
	if len(ix.nbr) == 0 {
		return 0
	}
	n := 0
	for _, l := range ix.nbr {
		n += len(l)
	}
	return float64(n) / float64(len(ix.nbr))
}

// RadioStats aggregates broadcast accounting across cells.
type RadioStats struct {
	Broadcasts  uint64 // transmissions
	Deliveries  uint64 // per-receiver payload deliveries
	CrossEvents uint64 // cross-cell delivery events emitted (≤ one per neighbour cell per broadcast)
}

// Radio is the sharded wireless medium: per-cell local delivery plus
// boundary channels into neighbouring cells, with the medium's MAC +
// propagation latency declared as the executive's cross-cell lookahead.
// A broadcast delivers its payload to every neighbour of the sender
// after exactly that latency; in-cell receivers get a local event,
// receivers in other cells get one grouped delivery event per
// destination cell through the window barrier. Built over a one-cell
// executive it degenerates to a plain indexed broadcast medium — the
// single-engine path shares every code path but the mailbox.
type Radio struct {
	se      *sim.ShardedEngine
	ix      *NeighborIndex
	cellOf  []int
	latency sim.Time

	// nbrCells[d] lists the distinct cells d's neighbours occupy,
	// ascending. Static, so each broadcast emits exactly the events it
	// needs without scanning or allocating per-cell grouping state.
	nbrCells [][]int32

	// Counters are per-cell slices written only by the owning cell's
	// events, so the hot path needs no atomics; Stats sums at read.
	sent      []uint64
	delivered []uint64
	crossed   []uint64
}

// NewRadio wires a radio over the executive. latencyS is the medium's
// one-way MAC+propagation delay; it must be at least the executive's
// declared lookahead or the conservative windows would be unsound —
// a violation reports the executive's typed *sim.LookaheadError.
// cellOf maps each device to its owning cell (geo.CellIndex.CellOwners
// of the same cut the executive was built with).
func NewRadio(se *sim.ShardedEngine, ix *NeighborIndex, cellOf []int, latencyS float64) (*Radio, error) {
	if latencyS < se.Lookahead() {
		return nil, fmt.Errorf("netsim: radio latency %g below executive lookahead: %w",
			latencyS, &sim.LookaheadError{LookaheadS: latencyS})
	}
	for d, c := range cellOf {
		if c < 0 || c >= se.Cells() {
			return nil, fmt.Errorf("netsim: device %d assigned to unknown cell %d", d, c)
		}
	}
	r := &Radio{
		se: se, ix: ix, cellOf: cellOf, latency: latencyS,
		nbrCells:  make([][]int32, len(ix.nbr)),
		sent:      make([]uint64, se.Cells()),
		delivered: make([]uint64, se.Cells()),
		crossed:   make([]uint64, se.Cells()),
	}
	for d, nbrs := range ix.nbr {
		var cs []int32
		for _, n := range nbrs {
			c := int32(cellOf[n])
			found := false
			for _, have := range cs {
				if have == c {
					found = true
					break
				}
			}
			if !found {
				cs = append(cs, c)
			}
		}
		sort.Slice(cs, func(i, j int) bool { return cs[i] < cs[j] })
		r.nbrCells[d] = cs
	}
	return r, nil
}

// LatencyS returns the one-way delivery latency.
func (r *Radio) LatencyS() float64 { return r.latency }

// Neighbors exposes the underlying index lookup (zero-allocation).
func (r *Radio) Neighbors(d int) []int32 { return r.ix.Neighbors(d) }

// Broadcast transmits from src to every neighbour in range. deliver
// runs once per receiver after the medium latency, on the receiver's
// owning cell — so it may freely mutate receiver state. It must be
// called from src's own cell (an event executing there, or setup code
// before Run).
func (r *Radio) Broadcast(src int, deliver func(dst int)) {
	srcCell := r.cellOf[src]
	c := r.se.Cell(srcCell)
	at := c.Engine().Now() + r.latency
	nbrs := r.ix.nbr[src]
	r.sent[srcCell]++
	for _, dc32 := range r.nbrCells[src] {
		dc := int(dc32)
		if dc == srcCell {
			c.Engine().DeferAt(at, func() { r.deliverIn(dc, nbrs, deliver) })
		} else {
			r.crossed[srcCell]++
			c.Send(dc, at, func() { r.deliverIn(dc, nbrs, deliver) })
		}
	}
}

// deliverIn runs the payload for every neighbour owned by cell dc.
func (r *Radio) deliverIn(dc int, nbrs []int32, deliver func(dst int)) {
	for _, n := range nbrs {
		if r.cellOf[n] == dc {
			r.delivered[dc]++
			deliver(int(n))
		}
	}
}

// Stats sums the per-cell counters. Call between Run windows (or after
// the run), not from inside concurrently-executing model code.
func (r *Radio) Stats() RadioStats {
	var s RadioStats
	for i := range r.sent {
		s.Broadcasts += r.sent[i]
		s.Deliveries += r.delivered[i]
		s.CrossEvents += r.crossed[i]
	}
	return s
}
