package netsim

import (
	"math"
	"testing"
	"testing/quick"

	"hivemind/internal/sim"
)

func TestMediumSingleFlowRate(t *testing.T) {
	e := sim.NewEngine(1)
	m := NewMedium(e, 100, 0) // 100 B/s
	var done sim.Time
	m.Transfer(500, func(f *Flow) { done = e.Now() })
	e.Run()
	if math.Abs(done-5.0) > 1e-4 {
		t.Fatalf("500B at 100B/s finished at %g, want 5", done)
	}
}

func TestMediumFairSharing(t *testing.T) {
	e := sim.NewEngine(1)
	m := NewMedium(e, 100, 0)
	var t1, t2 sim.Time
	m.Transfer(300, func(f *Flow) { t1 = e.Now() })
	m.Transfer(300, func(f *Flow) { t2 = e.Now() })
	e.Run()
	// Two equal flows at 50 B/s each: both finish at 6s.
	if math.Abs(t1-6) > 1e-4 || math.Abs(t2-6) > 1e-4 {
		t.Fatalf("finish times %g, %g; want 6, 6", t1, t2)
	}
}

func TestMediumShortFlowFinishesFirstThenLongSpeedsUp(t *testing.T) {
	e := sim.NewEngine(1)
	m := NewMedium(e, 100, 0)
	var tShort, tLong sim.Time
	m.Transfer(100, func(f *Flow) { tShort = e.Now() })
	m.Transfer(300, func(f *Flow) { tLong = e.Now() })
	e.Run()
	// Shared at 50B/s until short (100B) done at t=2; long has 200B left
	// at full 100B/s: done at t=4.
	if math.Abs(tShort-2) > 1e-4 {
		t.Fatalf("short finished at %g, want 2", tShort)
	}
	if math.Abs(tLong-4) > 1e-4 {
		t.Fatalf("long finished at %g, want 4", tLong)
	}
}

func TestMediumPerFlowCap(t *testing.T) {
	e := sim.NewEngine(1)
	m := NewMedium(e, 1000, 10) // huge capacity, 10 B/s per flow
	var done sim.Time
	m.Transfer(100, func(f *Flow) { done = e.Now() })
	e.Run()
	if math.Abs(done-10) > 1e-4 {
		t.Fatalf("capped flow finished at %g, want 10", done)
	}
}

func TestMediumLateArrival(t *testing.T) {
	e := sim.NewEngine(1)
	m := NewMedium(e, 100, 0)
	var tA, tB sim.Time
	m.Transfer(400, func(f *Flow) { tA = e.Now() })
	e.At(2, func() { m.Transfer(100, func(f *Flow) { tB = e.Now() }) })
	e.Run()
	// A alone 0-2s: 200B done. Then sharing at 50B/s: B(100B) done at t=4.
	// A has 200-100=100B left at t=4, alone again: done at t=5.
	if math.Abs(tB-4) > 1e-4 || math.Abs(tA-5) > 1e-4 {
		t.Fatalf("tA=%g (want 5), tB=%g (want 4)", tA, tB)
	}
}

func TestMediumZeroSizeCompletesImmediately(t *testing.T) {
	e := sim.NewEngine(1)
	m := NewMedium(e, 100, 0)
	fired := false
	m.Transfer(0, func(f *Flow) { fired = true })
	if !fired {
		t.Fatal("zero-size transfer did not complete synchronously")
	}
}

func TestMediumCancel(t *testing.T) {
	e := sim.NewEngine(1)
	m := NewMedium(e, 100, 0)
	var tA sim.Time
	fired := false
	m.Transfer(400, func(f *Flow) { tA = e.Now() })
	var fB *Flow
	fB = m.Transfer(400, func(f *Flow) { fired = true })
	e.At(2, func() {
		if !fB.Cancel() {
			t.Error("cancel returned false on active flow")
		}
		if fB.Cancel() {
			t.Error("second cancel returned true")
		}
	})
	e.Run()
	if fired {
		t.Fatal("cancelled flow callback fired")
	}
	// A: shared 0-2s (100B), alone after: 300B at 100B/s → done at 5.
	if math.Abs(tA-5) > 1e-4 {
		t.Fatalf("tA=%g, want 5", tA)
	}
	if m.ActiveFlows() != 0 {
		t.Fatalf("active flows = %d", m.ActiveFlows())
	}
}

func TestMediumSetCapacityMidFlow(t *testing.T) {
	e := sim.NewEngine(1)
	m := NewMedium(e, 100, 0)
	var done sim.Time
	m.Transfer(400, func(f *Flow) { done = e.Now() })
	e.At(2, func() { m.SetCapacity(200) }) // 200B left, now at 200B/s
	e.Run()
	if math.Abs(done-3) > 1e-4 {
		t.Fatalf("done at %g, want 3", done)
	}
}

func TestMediumMeterConservation(t *testing.T) {
	e := sim.NewEngine(1)
	m := NewMedium(e, 100, 0)
	total := 0.0
	for _, sz := range []float64{100, 250, 300} {
		sz := sz
		m.Transfer(sz, nil)
		total += sz
	}
	e.Run()
	if math.Abs(m.Meter().Total()-total) > 1 {
		t.Fatalf("metered %g bytes, want %g", m.Meter().Total(), total)
	}
}

// Property: total transfer time for n equal simultaneous flows equals
// n*size/capacity (work conservation under fair sharing).
func TestMediumWorkConservationProperty(t *testing.T) {
	prop := func(nRaw, szRaw uint8) bool {
		n := int(nRaw%10) + 1
		size := float64(szRaw%100+1) * 10
		e := sim.NewEngine(1)
		m := NewMedium(e, 100, 0)
		var last sim.Time
		for i := 0; i < n; i++ {
			m.Transfer(size, func(f *Flow) { last = e.Now() })
		}
		e.Run()
		want := float64(n) * size / 100
		return math.Abs(last-want) < 1e-3
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMediumDeterministic(t *testing.T) {
	run := func() []sim.Time {
		e := sim.NewEngine(9)
		m := NewMedium(e, 1000, 0)
		var finishes []sim.Time
		for i := 0; i < 50; i++ {
			at := e.Rand().Float64() * 5
			size := e.Rand().Float64()*1000 + 1
			e.At(at, func() {
				m.Transfer(size, func(f *Flow) { finishes = append(finishes, e.Now()) })
			})
		}
		e.Run()
		return finishes
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("different completion counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %g vs %g", i, a[i], b[i])
		}
	}
}

func TestNetworkEdgeToCloudBreakdown(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := DefaultConfig()
	n := NewNetwork(e, cfg)
	var info TransferInfo
	n.EdgeToCloud(2e6, func(ti TransferInfo) { info = ti }) // 2MB frame
	e.Run()
	if info.Bytes != 2e6 {
		t.Fatalf("bytes = %g", info.Bytes)
	}
	wantProc := (cfg.ProcPerMsgS + cfg.ProcPerMBS*2) * 2
	if math.Abs(info.ProcS-wantProc) > 1e-12 {
		t.Fatalf("proc = %g, want %g", info.ProcS, wantProc)
	}
	// Uncontended 2MB at the 50MB/s per-device cap = 40ms of queueing.
	if math.Abs(info.QueueingS-0.04) > 1e-4 {
		t.Fatalf("queueing = %g, want 0.04", info.QueueingS)
	}
	if math.Abs(info.TotalS-(info.ProcS+info.QueueingS+info.PropS)) > 1e-4 {
		t.Fatalf("total %g != sum of parts", info.TotalS)
	}
}

func TestNetworkAccelReducesProcessing(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := DefaultConfig()
	n := NewNetwork(e, cfg)
	var sw, hw TransferInfo
	n.CloudToCloud(64, func(ti TransferInfo) { sw = ti })
	e.Run()
	n.SetRPCAccel(true)
	n.CloudToCloud(64, func(ti TransferInfo) { hw = ti })
	e.Run()
	if hw.ProcS >= sw.ProcS/100 {
		t.Fatalf("accel proc %g not ≪ software proc %g", hw.ProcS, sw.ProcS)
	}
	if hw.TotalS >= sw.TotalS {
		t.Fatal("accel did not reduce total latency")
	}
}

func TestRPCRoundTripCalibration(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := DefaultConfig()
	cfg.RPCAccel = true
	n := NewNetwork(e, cfg)
	rtt := n.RPCRoundTrip(64, 64)
	// §4.5: 2.1us RTT between servers on the same ToR for 64B RPCs.
	if rtt < 1.5e-6 || rtt > 3.0e-6 {
		t.Fatalf("accelerated 64B RTT = %g s, want ~2.1µs", rtt)
	}
	n.SetRPCAccel(false)
	if sw := n.RPCRoundTrip(64, 64); sw < 100*rtt {
		t.Fatalf("software RTT %g should be ≫ accelerated %g", sw, rtt)
	}
}

func TestScaleWireless(t *testing.T) {
	e := sim.NewEngine(1)
	n := NewNetwork(e, DefaultConfig())
	base := n.Wireless.Capacity()
	n.ScaleWireless(4)
	if n.Wireless.Capacity() != base*4 {
		t.Fatalf("scaled capacity = %g", n.Wireless.Capacity())
	}
}

func TestWirelessSaturationKnee(t *testing.T) {
	// Reproduces the Fig. 3b mechanism in miniature: per-device offered
	// load beyond the shared capacity should inflate transfer latency.
	latency := func(devices int) float64 {
		e := sim.NewEngine(1)
		n := NewNetwork(e, DefaultConfig())
		var worst sim.Time
		for d := 0; d < devices; d++ {
			for i := 0; i < 10; i++ {
				at := float64(i) * 0.125 // 8 fps
				e.At(at, func() {
					start := e.Now()
					n.EdgeToCloud(8e6, func(ti TransferInfo) { // 8MB frames
						if l := e.Now() - start; l > worst {
							worst = l
						}
					})
				})
			}
		}
		e.Run()
		return worst
	}
	low, high := latency(2), latency(16)
	if high < 5*low {
		t.Fatalf("no saturation knee: 2 drones %.3gs vs 16 drones %.3gs", low, high)
	}
}
