package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// This file makes DB durable: mutations are written ahead to a WAL
// (wal.go) as post-state records, periodic snapshots capture the full
// live state, and compaction truncates the log so recovery cost is
// bounded by live state, not history. Recover(dir) rebuilds a DB from
// snapshot + WAL suffix — a restarted controller process re-opens its
// directory and finds every acknowledged checkpoint still there, which
// is what lets CheckpointLog.Orphans feed the gateway's exactly-once
// re-dispatch after a crash instead of only after a failover.
//
// Records are post-state, not operations: a set record carries the
// resulting (id, rev, body) rather than "apply this Put", so replay is
// idempotent and a WAL suffix can safely be replayed over a snapshot
// that already contains some of its effects (the crash window between
// snapshot rename and log truncation).

// Monitor is the metrics sink the store reports into. Both
// controller.Monitor and metrics.Registry satisfy it.
type Monitor interface {
	CountEvent(name string)
	Observe(name string, v float64)
}

// Store metric names.
const (
	// MetricWALAppend counts records appended to the WAL.
	MetricWALAppend = "store-wal-append"
	// MetricWALFsync counts fsync calls the WAL issued.
	MetricWALFsync = "store-wal-fsync"
	// MetricWALTruncatedTail counts torn/corrupt WAL tails cut on open.
	MetricWALTruncatedTail = "store-wal-truncated-tail"
	// MetricSnapshot counts snapshot+compaction cycles.
	MetricSnapshot = "store-snapshot"
	// MetricSnapshotLatency observes snapshot+compaction seconds.
	MetricSnapshotLatency = "store-snapshot-latency"
	// MetricRecoverLatency observes Recover(dir) seconds.
	MetricRecoverLatency = "store-recover-latency"
	// MetricFencedWrite counts mutations rejected for a stale fence
	// token (a deposed primary scribbling after a partition healed).
	MetricFencedWrite = "store-fenced-write"
	// MetricCorruptCheckpoint counts checkpoint records Orphans
	// quarantined instead of recovering (corrupt JSON under ckpt/).
	MetricCorruptCheckpoint = "store-corrupt-checkpoints"
)

// Durable-directory file names.
const (
	walFileName      = "wal.log"
	snapshotFileName = "snapshot.db"
	snapshotTmpName  = "snapshot.db.tmp"
)

// record opcodes (first payload byte of every WAL/snapshot record).
const (
	recSet    = 1 // post-state of a created/updated document
	recDel    = 2 // document removal
	recFence  = 3 // fence raised without a document write (promotion)
	recHeader = 4 // snapshot header: seq + fence at snapshot time
)

// snapshotMagic guards the snapshot header record.
var snapshotMagic = []byte("HMSNAP1")

// DurableOptions tunes a durable store directory.
type DurableOptions struct {
	// Fsync is the WAL durability policy (default FsyncAlways).
	Fsync FsyncPolicy
	// SyncEvery is the FsyncBatch batch size (<=0: 64).
	SyncEvery int
	// CompactEvery triggers snapshot+compaction after this many WAL
	// records (<=0: 4096; negative via NoAutoCompact for manual-only).
	CompactEvery int
	// Monitor, when non-nil, receives the store-* counters and
	// latency observations from open onward.
	Monitor Monitor
}

// NoAutoCompact disables record-count-triggered compaction; only
// explicit CompactNow calls snapshot.
const NoAutoCompact = -1

// DefaultDurableOptions returns the safe defaults: fsync every append,
// compact every 4096 records.
func DefaultDurableOptions() DurableOptions {
	return DurableOptions{Fsync: FsyncAlways, CompactEvery: 4096}
}

// RecoverStats reports what rebuilding a DB from a directory cost —
// the quantities the snapshot-mid-traffic acceptance test asserts are
// bounded by live state, not history.
type RecoverStats struct {
	// SnapshotDocs is how many documents the snapshot restored.
	SnapshotDocs int
	// WALRecords is how many log records were replayed on top.
	WALRecords int
	// TruncatedTail reports whether a torn/corrupt WAL tail was cut.
	TruncatedTail bool
	// Elapsed is the wall-clock recovery time.
	Elapsed time.Duration
}

// OpenDurable opens (creating if needed) a durable store rooted at
// dir: the snapshot is loaded, the WAL suffix replayed (torn tails
// truncated), and every subsequent mutation is write-ahead logged.
func OpenDurable(dir string, opts DurableOptions) (*DB, RecoverStats, error) {
	start := time.Now()
	if opts.CompactEvery == 0 {
		opts.CompactEvery = 4096
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, RecoverStats{}, err
	}
	db := NewDB()
	db.dir = dir
	db.dopts = opts
	db.SetMonitor(opts.Monitor)

	var stats RecoverStats
	n, err := db.loadSnapshot(filepath.Join(dir, snapshotFileName))
	if err != nil {
		return nil, RecoverStats{}, err
	}
	stats.SnapshotDocs = n

	wal, truncated, err := OpenWAL(filepath.Join(dir, walFileName), WALOptions{
		Fsync:     opts.Fsync,
		SyncEvery: opts.SyncEvery,
		Monitor:   opts.Monitor,
	}, db.applyRecord)
	if err != nil {
		return nil, RecoverStats{}, err
	}
	stats.WALRecords = wal.Records()
	stats.TruncatedTail = truncated
	db.wal = wal
	db.sinceCompact = wal.Records()

	stats.Elapsed = time.Since(start)
	if opts.Monitor != nil {
		opts.Monitor.Observe(MetricRecoverLatency, stats.Elapsed.Seconds())
	}
	return db, stats, nil
}

// Recover rebuilds a DB from a durable directory with the default
// options — the crash-restart path a controller process takes when it
// comes back up on its old state.
func Recover(dir string) (*DB, RecoverStats, error) {
	return OpenDurable(dir, DefaultDurableOptions())
}

// applyRecord replays one WAL record into the in-memory state.
func (db *DB) applyRecord(rec []byte) error {
	if len(rec) == 0 {
		return fmt.Errorf("%w: empty record", ErrCorruptRecord)
	}
	switch rec[0] {
	case recSet:
		doc, token, err := decodeSet(rec)
		if err != nil {
			return err
		}
		db.docs[doc.ID] = doc
		db.seq++
		if token > db.fenceTerm {
			db.fenceTerm = token
		}
	case recDel:
		id, token, err := decodeDel(rec)
		if err != nil {
			return err
		}
		delete(db.docs, id)
		db.seq++
		if token > db.fenceTerm {
			db.fenceTerm = token
		}
	case recFence:
		if len(rec) != 9 {
			return fmt.Errorf("%w: fence record length %d", ErrCorruptRecord, len(rec))
		}
		if token := binary.BigEndian.Uint64(rec[1:9]); token > db.fenceTerm {
			db.fenceTerm = token
		}
	case recHeader:
		// Snapshot headers only belong in snapshot files; tolerate one
		// in the WAL (it restores seq/fence idempotently).
		seq, fence, err := decodeHeader(rec)
		if err != nil {
			return err
		}
		if seq > db.seq {
			db.seq = seq
		}
		if fence > db.fenceTerm {
			db.fenceTerm = fence
		}
	default:
		return fmt.Errorf("%w: unknown opcode %d", ErrCorruptRecord, rec[0])
	}
	return nil
}

// encodeSet builds a post-state set record.
func encodeSet(doc Doc, token uint64) []byte {
	rec := make([]byte, 0, 1+4+len(doc.ID)+4+len(doc.Rev)+4+len(doc.Body)+8)
	rec = append(rec, recSet)
	rec = appendBytes(rec, []byte(doc.ID))
	rec = appendBytes(rec, []byte(doc.Rev))
	rec = appendBytes(rec, doc.Body)
	return binary.BigEndian.AppendUint64(rec, token)
}

// decodeSet parses a set record into the stored document and token.
func decodeSet(rec []byte) (Doc, uint64, error) {
	p := rec[1:]
	id, p, err := takeBytes(p)
	if err != nil {
		return Doc{}, 0, err
	}
	rev, p, err := takeBytes(p)
	if err != nil {
		return Doc{}, 0, err
	}
	body, p, err := takeBytes(p)
	if err != nil {
		return Doc{}, 0, err
	}
	if len(p) != 8 {
		return Doc{}, 0, fmt.Errorf("%w: set record trailer", ErrCorruptRecord)
	}
	return Doc{ID: string(id), Rev: string(rev), Body: append([]byte(nil), body...)},
		binary.BigEndian.Uint64(p), nil
}

// encodeDel builds a removal record.
func encodeDel(id string, token uint64) []byte {
	rec := make([]byte, 0, 1+4+len(id)+8)
	rec = append(rec, recDel)
	rec = appendBytes(rec, []byte(id))
	return binary.BigEndian.AppendUint64(rec, token)
}

// decodeDel parses a removal record.
func decodeDel(rec []byte) (string, uint64, error) {
	id, p, err := takeBytes(rec[1:])
	if err != nil {
		return "", 0, err
	}
	if len(p) != 8 {
		return "", 0, fmt.Errorf("%w: del record trailer", ErrCorruptRecord)
	}
	return string(id), binary.BigEndian.Uint64(p), nil
}

// encodeFence builds a fence-raise record (a promotion with no write).
func encodeFence(token uint64) []byte {
	rec := make([]byte, 9)
	rec[0] = recFence
	binary.BigEndian.PutUint64(rec[1:9], token)
	return rec
}

// encodeHeader builds the snapshot header record.
func encodeHeader(seq, fence uint64) []byte {
	rec := make([]byte, 0, 1+len(snapshotMagic)+16)
	rec = append(rec, recHeader)
	rec = append(rec, snapshotMagic...)
	rec = binary.BigEndian.AppendUint64(rec, seq)
	return binary.BigEndian.AppendUint64(rec, fence)
}

// decodeHeader parses the snapshot header record.
func decodeHeader(rec []byte) (seq, fence uint64, err error) {
	p := rec[1:]
	if len(p) != len(snapshotMagic)+16 || string(p[:len(snapshotMagic)]) != string(snapshotMagic) {
		return 0, 0, fmt.Errorf("%w: snapshot header", ErrCorruptRecord)
	}
	p = p[len(snapshotMagic):]
	return binary.BigEndian.Uint64(p[:8]), binary.BigEndian.Uint64(p[8:16]), nil
}

// appendBytes appends a u32 length prefix + bytes.
func appendBytes(dst, b []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(b)))
	return append(dst, b...)
}

// takeBytes splits a u32-length-prefixed field off p.
func takeBytes(p []byte) (field, rest []byte, err error) {
	if len(p) < 4 {
		return nil, nil, fmt.Errorf("%w: short field prefix", ErrCorruptRecord)
	}
	n := binary.BigEndian.Uint32(p[:4])
	if uint32(len(p)-4) < n {
		return nil, nil, fmt.Errorf("%w: short field", ErrCorruptRecord)
	}
	return p[4 : 4+n], p[4+n:], nil
}

// loadSnapshot restores the snapshot file into the (empty) DB,
// returning how many documents it held. A missing file is a fresh
// directory, not an error.
func (db *DB) loadSnapshot(path string) (int, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	defer f.Close()
	docs := 0
	sawHeader := false
	apply := func(rec []byte) error {
		if !sawHeader {
			if len(rec) == 0 || rec[0] != recHeader {
				return fmt.Errorf("%w: snapshot missing header", ErrCorruptRecord)
			}
			seq, fence, herr := decodeHeader(rec)
			if herr != nil {
				return herr
			}
			db.seq, db.fenceTerm = seq, fence
			sawHeader = true
			return nil
		}
		doc, _, derr := decodeSet(rec)
		if derr != nil {
			return derr
		}
		db.docs[doc.ID] = doc
		docs++
		return nil
	}
	// The snapshot was fsynced before its atomic rename, so a torn tail
	// here is real corruption, not a crash artifact.
	if _, _, truncated, serr := scanWAL(f, apply); serr != nil {
		return 0, serr
	} else if truncated {
		return 0, fmt.Errorf("%w: snapshot tail", ErrCorruptRecord)
	}
	return docs, nil
}

// CompactNow snapshots the full live state and truncates the WAL, so
// the next recovery replays live documents instead of history. Safe to
// call concurrently with mutations (it holds the store lock).
func (db *DB) CompactNow() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.compactLocked()
}

// compactLocked writes the snapshot (tmp + fsync + atomic rename) and
// resets the WAL. Caller holds db.mu.
func (db *DB) compactLocked() error {
	if db.wal == nil {
		return errors.New("store: not a durable store")
	}
	start := time.Now()
	tmp := filepath.Join(db.dir, snapshotTmpName)
	final := filepath.Join(db.dir, snapshotFileName)
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	write := func(rec []byte) error {
		_, werr := f.Write(frame(rec))
		return werr
	}
	if err := write(encodeHeader(db.seq, db.fenceTerm)); err != nil {
		f.Close()
		return err
	}
	for _, doc := range db.docs {
		if err := write(encodeSet(doc, 0)); err != nil {
			f.Close()
			return err
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		return err
	}
	// Crash window: snapshot renamed but WAL not yet truncated. Replay
	// of the old WAL over the new snapshot is harmless — records are
	// post-state, so re-applying them reproduces the same documents.
	if err := db.wal.Reset(); err != nil {
		return err
	}
	db.sinceCompact = 0
	if m := db.monitor(); m != nil {
		m.CountEvent(MetricSnapshot)
		m.Observe(MetricSnapshotLatency, time.Since(start).Seconds())
	}
	return nil
}

// maybeCompactLocked runs auto-compaction when the WAL has grown past
// the configured record budget. Caller holds db.mu.
func (db *DB) maybeCompactLocked() error {
	if db.wal == nil || db.dopts.CompactEvery <= 0 {
		return nil
	}
	if db.sinceCompact < db.dopts.CompactEvery {
		return nil
	}
	return db.compactLocked()
}

// appendRecordLocked writes one record ahead of the in-memory apply.
// Caller holds db.mu; a nil WAL (pure in-memory store) is a no-op.
func (db *DB) appendRecordLocked(rec []byte) error {
	if db.wal == nil {
		return nil
	}
	if err := db.wal.Append(rec); err != nil {
		return err
	}
	db.sinceCompact++
	return nil
}

// WALRecords returns how many records the WAL holds since the last
// compaction (0 for an in-memory store).
func (db *DB) WALRecords() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.wal == nil {
		return 0
	}
	return db.wal.Records()
}

// WALSize returns the WAL's byte length (0 for an in-memory store).
func (db *DB) WALSize() int64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.wal == nil {
		return 0
	}
	return db.wal.Size()
}

// Dir returns the durable directory ("" for an in-memory store).
func (db *DB) Dir() string { return db.dir }

// Sync forces outstanding WAL appends to stable storage regardless of
// the fsync policy.
func (db *DB) Sync() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.wal == nil {
		return nil
	}
	return db.wal.Sync()
}

// Close syncs and closes the WAL (no-op for an in-memory store). The
// DB must not be used after Close.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.wal == nil {
		return nil
	}
	err := db.wal.Close()
	db.wal = nil
	return err
}
