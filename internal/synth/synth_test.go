package synth

import (
	"go/format"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"hivemind/internal/dsl"
)

// scenarioB mirrors the paper's Listing 3 graph.
func scenarioB(t *testing.T) *dsl.TaskGraph {
	t.Helper()
	g, err := dsl.NewGraph("scenarioB").
		Task("createRoute").
		Task("collectImage", dsl.WithParents("createRoute")).
		Task("obstacleAvoidance", dsl.WithParents("collectImage")).
		Task("faceRecognition", dsl.WithParents("collectImage")).
		Task("deduplication", dsl.WithParents("faceRecognition")).
		Place("obstacleAvoidance", dsl.PlaceEdge, true).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func scenarioBCosts() map[string]TaskCost {
	return map[string]TaskCost{
		"createRoute":       {CloudExecS: 0.05, EdgeExecS: 0.2, Parallelism: 1, OutputMB: 0.01, RatePerDev: 0.02},
		"collectImage":      {CloudExecS: 0.01, EdgeExecS: 0.01, Parallelism: 1, OutputMB: 8, RatePerDev: 1, Sensor: true},
		"obstacleAvoidance": {CloudExecS: 0.06, EdgeExecS: 0.1, Parallelism: 1, InputMB: 0.4, OutputMB: 0.005, RatePerDev: 4},
		"faceRecognition":   {CloudExecS: 0.8, EdgeExecS: 3.5, Parallelism: 8, InputMB: 8, OutputMB: 0.05, RatePerDev: 1},
		"deduplication":     {CloudExecS: 1.0, EdgeExecS: 4.5, Parallelism: 8, InputMB: 0.05, OutputMB: 0.1, RatePerDev: 0.5},
	}
}

func TestEnumerateRespectsPins(t *testing.T) {
	g := scenarioB(t)
	cands, err := Enumerate(g, scenarioBCosts())
	if err != nil {
		t.Fatal(err)
	}
	// 5 tasks, obstacleAvoidance pinned edge, collectImage sensor-pinned
	// edge: 2^3 = 8 candidates.
	if len(cands) != 8 {
		t.Fatalf("candidates = %d, want 8", len(cands))
	}
	for _, c := range cands {
		if c.Assignment["obstacleAvoidance"] != LocEdge {
			t.Fatal("pin violated")
		}
		if c.Assignment["collectImage"] != LocEdge {
			t.Fatal("sensor task placed in cloud")
		}
	}
}

func TestEnumerateSimpleGraphMatchesPaperExample(t *testing.T) {
	// §4.2: a 2-tier graph A→B without constraints yields 4 models.
	g := dsl.NewGraph("ab").Task("A").Task("B", dsl.WithParents("A")).MustBuild()
	costs := map[string]TaskCost{
		"A": {CloudExecS: 0.1, EdgeExecS: 0.3, Parallelism: 1, OutputMB: 1, RatePerDev: 1},
		"B": {CloudExecS: 0.1, EdgeExecS: 0.3, Parallelism: 1, InputMB: 1, OutputMB: 0.1, RatePerDev: 1},
	}
	cands, err := Enumerate(g, costs)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 4 {
		t.Fatalf("candidates = %d, want 4 (Acloud→Bcloud, Aedge→Bcloud, Acloud→Bedge, Aedge→Bedge)", len(cands))
	}
	seen := map[string]bool{}
	for _, c := range cands {
		seen[c.Name()] = true
	}
	if len(seen) != 4 {
		t.Fatalf("duplicate candidates: %v", seen)
	}
}

func TestEnumerateErrors(t *testing.T) {
	g := dsl.NewGraph("g").Task("a").MustBuild()
	if _, err := Enumerate(g, map[string]TaskCost{}); err == nil {
		t.Fatal("missing cost accepted")
	}
	// Contradiction: sensor task pinned to cloud.
	g2 := dsl.NewGraph("g").Task("a").Place("a", dsl.PlaceCloud, false).MustBuild()
	if _, err := Enumerate(g2, map[string]TaskCost{"a": {Sensor: true, CloudExecS: 1, EdgeExecS: 1, RatePerDev: 1}}); err == nil {
		t.Fatal("impossible constraints accepted")
	}
}

func TestBindingKindsFollowPlacement(t *testing.T) {
	g := scenarioB(t)
	cands, _ := Enumerate(g, scenarioBCosts())
	for _, c := range cands {
		for _, b := range c.Bindings {
			from, to := c.Assignment[b.From], c.Assignment[b.To]
			switch {
			case from == LocCloud && to == LocCloud:
				if b.Kind != BindFaaS {
					t.Fatalf("cloud-cloud edge %s->%s got %s", b.From, b.To, b.Kind)
				}
			case from == LocEdge && to == LocEdge:
				if b.Kind != BindLocal {
					t.Fatalf("edge-edge %s->%s got %s", b.From, b.To, b.Kind)
				}
			default:
				if b.Kind != BindRPC {
					t.Fatalf("cross %s->%s got %s", b.From, b.To, b.Kind)
				}
			}
		}
	}
}

func TestExploreRanksFeasibleFirst(t *testing.T) {
	g := scenarioB(t)
	cands, err := Explore(g, scenarioBCosts(), DefaultEnv(16))
	if err != nil {
		t.Fatal(err)
	}
	if !cands[0].Metrics.Feasible {
		t.Fatal("best candidate infeasible")
	}
	for i := 1; i < len(cands); i++ {
		a, b := cands[i-1].Metrics, cands[i].Metrics
		if a.Feasible == b.Feasible && a.LatencyS > b.LatencyS {
			t.Fatalf("ranking broken at %d: %g > %g", i, a.LatencyS, b.LatencyS)
		}
	}
	// The all-edge assignment should be infeasible: face recognition
	// saturates the on-board core (util 3.5 > 1).
	for _, c := range cands {
		if c.Assignment["faceRecognition"] == LocEdge && c.Assignment["deduplication"] == LocEdge {
			if c.Metrics.Feasible {
				t.Fatal("overloaded all-edge candidate marked feasible")
			}
		}
	}
}

func TestHeavyTierPrefersCloud(t *testing.T) {
	g := scenarioB(t)
	cands, _ := Explore(g, scenarioBCosts(), DefaultEnv(16))
	best := cands[0]
	if best.Assignment["faceRecognition"] != LocCloud {
		t.Fatalf("best placement puts face recognition on %s", best.Assignment["faceRecognition"])
	}
}

func TestSelectHonoursConstraints(t *testing.T) {
	g := scenarioB(t)
	cands, _ := Explore(g, scenarioBCosts(), DefaultEnv(16))
	// Loose constraints: pick the fastest feasible.
	got, ok := Select(cands, dsl.Constraints{ExecTimeS: 1000}, 0)
	if !ok {
		t.Fatal("loose constraints unmet")
	}
	if got.Name() != cands[0].Name() {
		t.Fatal("did not pick the ranked best")
	}
	// Impossible latency: falls back with ok=false.
	_, ok = Select(cands, dsl.Constraints{LatencyS: 1e-9}, 0)
	if ok {
		t.Fatal("impossible constraint reported satisfied")
	}
	// Power cap forces heavy work off the devices: 30 W admits the
	// cloud-recognition candidates (radio + light edge tasks) but not
	// on-board recognition (≈100 W of compute).
	sel, ok := Select(cands, dsl.Constraints{}, 30)
	if !ok {
		t.Fatal("power-capped selection failed")
	}
	if sel.Assignment["faceRecognition"] != LocCloud {
		t.Fatalf("power cap not respected: %s", sel.Name())
	}
	if sel.Metrics.DevicePowerW > 30 {
		t.Fatalf("selected power %g exceeds cap", sel.Metrics.DevicePowerW)
	}
}

func TestSelectEmpty(t *testing.T) {
	if _, ok := Select(nil, dsl.Constraints{}, 0); ok {
		t.Fatal("empty selection succeeded")
	}
}

func TestEstimateTradeoffShape(t *testing.T) {
	g := scenarioB(t)
	costs := scenarioBCosts()
	env := DefaultEnv(16)
	cands, _ := Enumerate(g, costs)
	var allCloud, faceEdge *Candidate
	for i := range cands {
		c := &cands[i]
		if c.Assignment["faceRecognition"] == LocCloud && c.Assignment["deduplication"] == LocCloud && c.Assignment["createRoute"] == LocCloud {
			allCloud = c
		}
		if c.Assignment["faceRecognition"] == LocEdge && c.Assignment["deduplication"] == LocCloud {
			faceEdge = c
		}
	}
	if allCloud == nil || faceEdge == nil {
		t.Fatal("candidates missing")
	}
	mc := Estimate(g, allCloud, costs, env)
	me := Estimate(g, faceEdge, costs, env)
	// Offloading recognition transfers the sensor payload: more network,
	// less device power; running it on-device is the reverse.
	if mc.NetworkMBps <= me.NetworkMBps {
		t.Fatalf("cloud network %g should exceed edge-heavy %g", mc.NetworkMBps, me.NetworkMBps)
	}
	if mc.DevicePowerW >= me.DevicePowerW {
		t.Fatalf("cloud device power %g should be below edge-heavy %g", mc.DevicePowerW, me.DevicePowerW)
	}
	if mc.CloudUSDps <= 0 {
		t.Fatal("cloud cost should be positive")
	}
}

func TestGenerateAPIs(t *testing.T) {
	g := scenarioB(t)
	cands, _ := Explore(g, scenarioBCosts(), DefaultEnv(16))
	best := cands[0]
	files := GenerateAPIs(g, best, "scenariob")
	if _, ok := files["placement.go"]; !ok {
		t.Fatal("placement file missing")
	}
	var rpcSeen, faasSeen bool
	for name, src := range files {
		if !strings.HasPrefix(src, "// Code generated") {
			t.Fatalf("%s missing generation header", name)
		}
		if !strings.Contains(src, "package scenariob") {
			t.Fatalf("%s wrong package", name)
		}
		if name == "rpc_bindings.go" {
			rpcSeen = true
			if !strings.Contains(src, "rpc.Client") || !strings.Contains(src, "Register") {
				t.Fatalf("rpc bindings incomplete:\n%s", src)
			}
		}
		if name == "faas_bindings.go" {
			faasSeen = true
			if !strings.Contains(src, "FaaSChain") {
				t.Fatalf("faas bindings incomplete:\n%s", src)
			}
		}
	}
	// Best placement mixes edge (collect, obstacle) and cloud (face,
	// dedup), so both binding kinds must be generated.
	if !rpcSeen || !faasSeen {
		t.Fatalf("bindings missing: rpc=%v faas=%v", rpcSeen, faasSeen)
	}
	// API count grows with the number of phases (§4.1): every graph
	// edge appears in exactly one generated file.
	edges := 0
	for _, task := range g.Tasks {
		edges += len(task.Children)
	}
	if len(best.Bindings) != edges {
		t.Fatalf("bindings = %d, edges = %d", len(best.Bindings), edges)
	}
	if files["placement.go"] == "" || !strings.Contains(files["placement.go"], "faceRecognition") {
		t.Fatal("placement map incomplete")
	}
}

func TestCandidateName(t *testing.T) {
	c := Candidate{Assignment: map[string]Loc{"b": LocEdge, "a": LocCloud}}
	if c.Name() != "a=cloud,b=edge" {
		t.Fatalf("name = %q", c.Name())
	}
	if LocEdge.String() != "edge" || LocCloud.String() != "cloud" {
		t.Fatal("loc strings")
	}
	if BindLocal.String() != "local" || BindRPC.String() != "rpc" || BindFaaS.String() != "faas" {
		t.Fatal("binding strings")
	}
}

func TestGeneratedCodeIsValidGo(t *testing.T) {
	g := scenarioB(t)
	cands, _ := Explore(g, scenarioBCosts(), DefaultEnv(16))
	for i := range cands {
		files := GenerateAPIs(g, cands[i], "bindings")
		for name, src := range files {
			fset := token.NewFileSet()
			if _, err := parser.ParseFile(fset, name, src, parser.AllErrors); err != nil {
				t.Fatalf("candidate %d: %s does not parse: %v\n%s", i, name, err, src)
			}
			formatted, err := format.Source([]byte(src))
			if err != nil {
				t.Fatalf("%s does not format: %v", name, err)
			}
			if string(formatted) != src {
				t.Errorf("%s is not gofmt-clean", name)
			}
		}
	}
}

func TestExploreUsesStreamRates(t *testing.T) {
	// A task fed by an 8 Hz × 2 MB stream inherits that load when its
	// cost profile leaves rate/input unset.
	g := dsl.NewGraph("s").
		Stream("cameraFeed", 8, 2).
		Task("collect", dsl.WithIO("", "cameraFeed")).
		Task("recognize", dsl.WithParents("collect"), dsl.WithIO("cameraFeed", "stats")).
		MustBuild()
	costs := map[string]TaskCost{
		"collect":   {CloudExecS: 0.001, EdgeExecS: 0.001, Parallelism: 1, OutputMB: 16, RatePerDev: 8, Sensor: true},
		"recognize": {CloudExecS: 0.1, EdgeExecS: 0.45, Parallelism: 2, OutputMB: 0.01},
	}
	cands, err := Explore(g, costs, DefaultEnv(16))
	if err != nil {
		t.Fatal(err)
	}
	// The stream-driven rate (8/s × 0.45s = 3.6 utilization) must make
	// every on-device recognition placement infeasible.
	for _, c := range cands {
		if c.Assignment["recognize"] == LocEdge && c.Metrics.Feasible {
			t.Fatalf("stream rate ignored: edge placement feasible (%s)", c.Name())
		}
	}
}
