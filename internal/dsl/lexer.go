package dsl

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// tokenKind enumerates lexical token types.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokString
	tokNumber
	tokLParen
	tokRParen
	tokLBracket
	tokRBracket
	tokComma
	tokEquals
)

type token struct {
	kind tokenKind
	text string
	num  float64
	line int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "EOF"
	case tokString:
		return fmt.Sprintf("%q", t.text)
	case tokNumber:
		return strconv.FormatFloat(t.num, 'g', -1, 64)
	default:
		return t.text
	}
}

// lexer tokenizes DSL source. Comments run from '#' to end of line.
type lexer struct {
	src  []rune
	pos  int
	line int
}

func newLexer(src string) *lexer {
	return &lexer{src: []rune(src), line: 1}
}

func (l *lexer) peek() rune {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) advance() rune {
	r := l.peek()
	l.pos++
	if r == '\n' {
		l.line++
	}
	return r
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '.' || r == '/' || r == ':'
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	for {
		r := l.peek()
		switch {
		case r == 0:
			return token{kind: tokEOF, line: l.line}, nil
		case r == '#':
			for l.peek() != '\n' && l.peek() != 0 {
				l.advance()
			}
		case unicode.IsSpace(r):
			l.advance()
		default:
			goto scan
		}
	}
scan:
	line := l.line
	r := l.peek()
	switch {
	case r == '(':
		l.advance()
		return token{kind: tokLParen, text: "(", line: line}, nil
	case r == ')':
		l.advance()
		return token{kind: tokRParen, text: ")", line: line}, nil
	case r == '[':
		l.advance()
		return token{kind: tokLBracket, text: "[", line: line}, nil
	case r == ']':
		l.advance()
		return token{kind: tokRBracket, text: "]", line: line}, nil
	case r == ',':
		l.advance()
		return token{kind: tokComma, text: ",", line: line}, nil
	case r == '=':
		l.advance()
		return token{kind: tokEquals, text: "=", line: line}, nil
	case r == '\'' || r == '"':
		quote := l.advance()
		var sb strings.Builder
		for {
			c := l.peek()
			if c == 0 || c == '\n' {
				return token{}, fmt.Errorf("line %d: unterminated string", line)
			}
			l.advance()
			if c == quote {
				return token{kind: tokString, text: sb.String(), line: line}, nil
			}
			if c == '\\' {
				esc := l.advance()
				switch esc {
				case 'n':
					sb.WriteByte('\n')
				case 't':
					sb.WriteByte('\t')
				case '\\', '\'', '"':
					sb.WriteRune(esc)
				default:
					return token{}, fmt.Errorf("line %d: bad escape \\%c", line, esc)
				}
				continue
			}
			sb.WriteRune(c)
		}
	case unicode.IsDigit(r) || r == '-' || r == '+':
		var sb strings.Builder
		sb.WriteRune(l.advance())
		for unicode.IsDigit(l.peek()) || l.peek() == '.' || l.peek() == 'e' || l.peek() == 'E' {
			sb.WriteRune(l.advance())
		}
		// Numbers may carry unit suffixes ("10s", "250ms"): lex the
		// suffix into the text and let the analyzer interpret it.
		for isIdentStart(l.peek()) {
			sb.WriteRune(l.advance())
		}
		text := sb.String()
		if n, err := strconv.ParseFloat(text, 64); err == nil {
			return token{kind: tokNumber, text: text, num: n, line: line}, nil
		}
		// Unit-suffixed: return as string-ish number token.
		return token{kind: tokString, text: text, line: line}, nil
	case isIdentStart(r):
		var sb strings.Builder
		for isIdentRune(l.peek()) {
			sb.WriteRune(l.advance())
		}
		return token{kind: tokIdent, text: sb.String(), line: line}, nil
	default:
		return token{}, fmt.Errorf("line %d: unexpected character %q", line, r)
	}
}

// lexAll tokenizes the whole source.
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}
