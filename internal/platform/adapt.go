package platform

import (
	"hivemind/internal/apps"
	"hivemind/internal/device"
	"hivemind/internal/stats"
)

// Adapter implements HiveMind's runtime re-mapping (§4.2): "At runtime,
// HiveMind can change its task mapping if the user-provided goals are
// not met. Changes to task placement currently only happen at task
// granularity." It watches a job's recent latencies against the user's
// goal and walks the placement ladder — cloud → hybrid → edge when the
// cloud path misses the goal (congestion, backend overload), and back
// toward the cloud when the on-board path is the violator.
type Adapter struct {
	sys     *System
	profile apps.Profile
	goalS   float64

	current   TierPlacement
	window    *stats.Sample
	minWindow int
	switches  []AdaptSwitch
}

// AdaptSwitch records one placement change.
type AdaptSwitch struct {
	AtS      float64
	From, To TierPlacement
	P95      float64
}

// NewAdapter starts adaptive placement for one application with a p95
// latency goal. The initial placement is the system's static decision.
func NewAdapter(sys *System, p apps.Profile, goalS float64) *Adapter {
	return &Adapter{
		sys: sys, profile: p, goalS: goalS,
		current:   sys.PlaceFor(p),
		window:    &stats.Sample{},
		minWindow: 20,
	}
}

// Placement returns the placement currently in force.
func (a *Adapter) Placement() TierPlacement { return a.current }

// Switches returns the adaptation history.
func (a *Adapter) Switches() []AdaptSwitch { return a.switches }

// Submit runs one task under the adapter's current placement and feeds
// the observation back into the adaptation loop.
func (a *Adapter) Submit(dev *device.Device, done func(TaskMetrics)) {
	forced := a.current
	a.sys.SubmitTask(a.profile, dev, SubmitOpts{ForcePlacement: &forced}, func(m TaskMetrics) {
		if !m.Dropped {
			a.observe(m)
		} else {
			// Drops are goal violations too: an overloaded edge placement
			// sheds tasks, which must push the adapter off the edge.
			a.window.Add(a.goalS * 2)
			a.maybeAdapt()
		}
		if done != nil {
			done(m)
		}
	})
}

func (a *Adapter) observe(m TaskMetrics) {
	a.window.Add(m.TotalS())
	a.maybeAdapt()
}

func (a *Adapter) maybeAdapt() {
	if a.goalS <= 0 || a.window.N() < a.minWindow {
		return
	}
	p95 := a.window.Percentile(95)
	var next TierPlacement
	switch {
	case p95 <= a.goalS:
		return // goal met
	case a.current == TierCloud:
		next = TierHybrid // shed network pressure
	case a.current == TierHybrid:
		// Hybrid missing the goal: heavy on-board work would be worse;
		// only go to the edge if the device can actually absorb it.
		if a.profile.EdgeUtilization() < 0.8 && a.profile.EdgeExecS < a.goalS {
			next = TierEdge
		} else {
			return // no better mapping exists at task granularity
		}
	case a.current == TierEdge:
		next = TierHybrid // on-board path is the violator: offload again
	default:
		return
	}
	a.switches = append(a.switches, AdaptSwitch{
		AtS: a.sys.Eng.Now(), From: a.current, To: next, P95: p95,
	})
	a.current = next
	a.window = &stats.Sample{} // fresh observation window after a switch
}
