module hivemind

go 1.22
