package platform

import (
	"testing"

	"hivemind/internal/apps"
)

func mustProfile(t *testing.T, id apps.ID) apps.Profile {
	t.Helper()
	p, ok := apps.ByID(id)
	if !ok {
		t.Fatalf("missing profile %s", id)
	}
	return p
}

func TestPresetKinds(t *testing.T) {
	for _, k := range []SystemKind{CentralizedIaaS, CentralizedFaaS, DistributedEdge, HiveMind} {
		o := Preset(k, 16, 1)
		s := NewSystem(o)
		if len(s.Fleet) != 16 {
			t.Fatalf("%s: fleet = %d", k, len(s.Fleet))
		}
		if k.String() == "" {
			t.Fatal("empty kind string")
		}
	}
	if SystemKind(99).String() == "" {
		t.Fatal("unknown kind string empty")
	}
}

func TestHiveMindPresetEnablesStack(t *testing.T) {
	o := Preset(HiveMind, 16, 1)
	if !o.NetAccel || !o.RemoteMemAccel || !o.HybridPlacement || !o.IntraTaskPar {
		t.Fatalf("hivemind preset incomplete: %+v", o)
	}
	s := NewSystem(o)
	// Net accel frees the network-stack cores.
	if s.Cluster.TotalCores() != 12*40 {
		t.Fatalf("cores = %d, want all 480 with offload", s.Cluster.TotalCores())
	}
	// Baseline FaaS loses 4 cores per server to the software stack.
	base := NewSystem(Preset(CentralizedFaaS, 16, 1))
	if base.Cluster.TotalCores() != 12*36 {
		t.Fatalf("baseline cores = %d", base.Cluster.TotalCores())
	}
}

func TestPlacementDecisions(t *testing.T) {
	hm := NewSystem(Preset(HiveMind, 16, 1))
	cen := NewSystem(Preset(CentralizedFaaS, 16, 1))
	dist := NewSystem(Preset(DistributedEdge, 16, 1))

	face := mustProfile(t, apps.S1FaceRecognition)
	obstacle := mustProfile(t, apps.S4ObstacleAvoid)
	weather := mustProfile(t, apps.S7Weather)
	droneRec := mustProfile(t, apps.S3DroneDetection)

	if got := cen.PlaceFor(face); got != TierCloud {
		t.Fatalf("centralized face = %s", got)
	}
	if got := dist.PlaceFor(face); got != TierEdge {
		t.Fatalf("distributed face = %s", got)
	}
	if got := hm.PlaceFor(face); got != TierHybrid {
		t.Fatalf("hivemind face = %s", got)
	}
	// §2.1: obstacle avoidance always on-board under HiveMind.
	if got := hm.PlaceFor(obstacle); got != TierEdge {
		t.Fatalf("hivemind obstacle = %s", got)
	}
	// Light tasks stay local under HiveMind (§2.3 exceptions S3, S7).
	if got := hm.PlaceFor(weather); got != TierEdge {
		t.Fatalf("hivemind weather = %s", got)
	}
	if got := hm.PlaceFor(droneRec); got != TierEdge {
		t.Fatalf("hivemind drone detection = %s", got)
	}
	if TierCloud.String() != "cloud" || TierEdge.String() != "edge" || TierHybrid.String() != "hybrid" {
		t.Fatal("placement strings")
	}
}

func TestSubmitTaskCloudPath(t *testing.T) {
	s := NewSystem(Preset(CentralizedFaaS, 4, 1))
	face := mustProfile(t, apps.S1FaceRecognition)
	var m TaskMetrics
	got := false
	s.SubmitTask(face, s.Fleet[0], SubmitOpts{}, func(tm TaskMetrics) { m = tm; got = true })
	s.Eng.RunUntil(30)
	if !got {
		t.Fatal("task did not complete")
	}
	if m.Network <= 0 || m.Mgmt <= 0 || m.Exec <= 0 || m.DataIO <= 0 {
		t.Fatalf("missing stages: %+v", m)
	}
	if m.Placement != TierCloud || m.Dropped {
		t.Fatalf("metrics: %+v", m)
	}
	if m.TotalS() < m.Network+m.Exec {
		t.Fatalf("total %g below component sum", m.TotalS())
	}
}

func TestSubmitTaskEdgePath(t *testing.T) {
	s := NewSystem(Preset(DistributedEdge, 4, 1))
	weather := mustProfile(t, apps.S7Weather)
	var m TaskMetrics
	s.SubmitTask(weather, s.Fleet[0], SubmitOpts{}, func(tm TaskMetrics) { m = tm })
	s.Eng.RunUntil(30)
	if m.Placement != TierEdge || m.Mgmt != 0 || m.DataIO != 0 {
		t.Fatalf("edge task metrics: %+v", m)
	}
	if m.Exec < weather.EdgeExecS/2 {
		t.Fatalf("edge exec = %g", m.Exec)
	}
	// Only the small output crosses the network.
	if m.Network <= 0 || m.Network > 0.1 {
		t.Fatalf("edge network = %g", m.Network)
	}
}

func TestSubmitTaskHybridPath(t *testing.T) {
	s := NewSystem(Preset(HiveMind, 4, 1))
	face := mustProfile(t, apps.S1FaceRecognition)
	var m TaskMetrics
	s.SubmitTask(face, s.Fleet[0], SubmitOpts{}, func(tm TaskMetrics) { m = tm })
	s.Eng.RunUntil(30)
	if m.Placement != TierHybrid {
		t.Fatalf("placement = %s", m.Placement)
	}
	// Hybrid must ship less than the full payload: compare with the
	// centralized network time for the same task under an idle network.
	cen := NewSystem(Preset(CentralizedFaaS, 4, 1))
	var cm TaskMetrics
	cen.SubmitTask(face, cen.Fleet[0], SubmitOpts{}, func(tm TaskMetrics) { cm = tm })
	cen.Eng.RunUntil(30)
	if m.Network >= cm.Network {
		t.Fatalf("hybrid network %g not below centralized %g", m.Network, cm.Network)
	}
}

func TestForcePlacementOverride(t *testing.T) {
	s := NewSystem(Preset(CentralizedFaaS, 4, 1))
	face := mustProfile(t, apps.S1FaceRecognition)
	edge := TierEdge
	var m TaskMetrics
	s.SubmitTask(face, s.Fleet[0], SubmitOpts{ForcePlacement: &edge}, func(tm TaskMetrics) { m = tm })
	s.Eng.RunUntil(60)
	if m.Placement != TierEdge {
		t.Fatalf("override ignored: %s", m.Placement)
	}
}

func TestRunJobProducesAggregates(t *testing.T) {
	s := NewSystem(Preset(CentralizedFaaS, 8, 3))
	res := s.RunJob(mustProfile(t, apps.S7Weather), 30)
	if res.Completed == 0 || res.Latency.N() != res.Completed {
		t.Fatalf("completed=%d latencies=%d", res.Completed, res.Latency.N())
	}
	if res.Submitted < res.Completed {
		t.Fatalf("submitted %d < completed %d", res.Submitted, res.Completed)
	}
	if res.BatteryMean <= 0 || res.BatteryMax < res.BatteryMean {
		t.Fatalf("battery mean=%g max=%g", res.BatteryMean, res.BatteryMax)
	}
	if res.BWMeanMBps <= 0 {
		t.Fatalf("bandwidth = %g", res.BWMeanMBps)
	}
	if res.Breakdown.N() != res.Completed {
		t.Fatalf("breakdown n = %d", res.Breakdown.N())
	}
}

func TestDistributedOverloadDropsHeavyTasks(t *testing.T) {
	s := NewSystem(Preset(DistributedEdge, 8, 3))
	res := s.RunJob(mustProfile(t, apps.S1FaceRecognition), 60)
	if res.Dropped == 0 {
		t.Fatal("overloaded edge devices should drop tasks")
	}
	if res.Completed == 0 {
		t.Fatal("some tasks should still complete")
	}
}

func TestCentralizedVsDistributedLatencyShape(t *testing.T) {
	// Fig. 4: centralized beats distributed for heavy jobs; obstacle
	// avoidance is better at the edge.
	face := mustProfile(t, apps.S1FaceRecognition)
	cen := NewSystem(Preset(CentralizedFaaS, 16, 5)).RunJob(face, 60)
	dist := NewSystem(Preset(DistributedEdge, 16, 5)).RunJob(face, 60)
	if cen.Latency.Median() >= dist.Latency.Median() {
		t.Fatalf("centralized face median %g not below distributed %g",
			cen.Latency.Median(), dist.Latency.Median())
	}
	obstacle := mustProfile(t, apps.S4ObstacleAvoid)
	cenO := NewSystem(Preset(CentralizedFaaS, 16, 5)).RunJob(obstacle, 60)
	distO := NewSystem(Preset(DistributedEdge, 16, 5)).RunJob(obstacle, 60)
	if distO.Latency.Median() >= cenO.Latency.Median() {
		t.Fatalf("edge obstacle median %g not below centralized %g",
			distO.Latency.Median(), cenO.Latency.Median())
	}
}

func TestHiveMindBeatsCentralizedOnHeavyJob(t *testing.T) {
	face := mustProfile(t, apps.S1FaceRecognition)
	hm := NewSystem(Preset(HiveMind, 16, 7)).RunJob(face, 60)
	cen := NewSystem(Preset(CentralizedFaaS, 16, 7)).RunJob(face, 60)
	if hm.Latency.Median() >= cen.Latency.Median() {
		t.Fatalf("hivemind median %g not below centralized %g",
			hm.Latency.Median(), cen.Latency.Median())
	}
	// Fig. 14b: HiveMind uses less wireless bandwidth than centralized.
	if hm.BWMeanMBps >= cen.BWMeanMBps {
		t.Fatalf("hivemind bandwidth %g not below centralized %g",
			hm.BWMeanMBps, cen.BWMeanMBps)
	}
	// Fig. 14a: and less battery.
	if hm.BatteryMean >= cen.BatteryMean {
		t.Fatalf("hivemind battery %g not below centralized %g",
			hm.BatteryMean, cen.BatteryMean)
	}
}

func TestDistributedDrainsBatteryFastest(t *testing.T) {
	face := mustProfile(t, apps.S1FaceRecognition)
	dist := NewSystem(Preset(DistributedEdge, 16, 9)).RunJob(face, 60)
	cen := NewSystem(Preset(CentralizedFaaS, 16, 9)).RunJob(face, 60)
	if dist.BatteryMean <= cen.BatteryMean {
		t.Fatalf("distributed battery %g not above centralized %g",
			dist.BatteryMean, cen.BatteryMean)
	}
}

func TestReservedJobBaseline(t *testing.T) {
	s := NewSystem(Preset(CentralizedIaaS, 8, 3))
	res := s.ReservedJob(mustProfile(t, apps.S1FaceRecognition), 40, 0)
	if res.Completed == 0 {
		t.Fatal("no completions")
	}
	if res.Latency.N() == 0 || res.BWMeanMBps <= 0 {
		t.Fatalf("result = %+v", res)
	}
	// Serverless (with intra-task parallelism) should beat the fixed
	// pool (Fig. 5a shape).
	sf := NewSystem(Preset(CentralizedFaaS, 8, 3))
	fr := sf.RunJob(mustProfile(t, apps.S1FaceRecognition), 40)
	if fr.Latency.Median() >= res.Latency.Median() {
		t.Fatalf("serverless median %g not below reserved %g",
			fr.Latency.Median(), res.Latency.Median())
	}
}

func TestWirelessScaleOption(t *testing.T) {
	o := Preset(HiveMind, 16, 1)
	o.WirelessScale = 4
	s := NewSystem(o)
	if got := s.Net.Wireless.Capacity(); got != o.NetCfg.WirelessBps*4 {
		t.Fatalf("capacity = %g", got)
	}
}

func TestDeterministicRunJob(t *testing.T) {
	run := func() float64 {
		s := NewSystem(Preset(HiveMind, 8, 42))
		return s.RunJob(mustProfile(t, apps.S3DroneDetection), 30).Latency.Mean()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %g vs %g", a, b)
	}
}

func TestZeroDevicesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	NewSystem(Options{Devices: 0})
}

func TestPublicCloudModeDegradesGracefully(t *testing.T) {
	// §4.8: without control of physical machines HiveMind loses
	// colocation and acceleration but keeps hybrid placement; it should
	// land between the full system and the centralized baseline.
	face := mustProfile(t, apps.S1FaceRecognition)
	full := NewSystem(Preset(HiveMind, 16, 17)).RunJob(face, 60)
	pub := func() JobResult {
		o := Preset(HiveMind, 16, 17)
		o.PublicCloud = true
		return NewSystem(o).RunJob(face, 60)
	}()
	cen := NewSystem(Preset(CentralizedFaaS, 16, 17)).RunJob(face, 60)
	if pub.Latency.Median() <= full.Latency.Median() {
		t.Fatalf("public cloud %.3f should be slower than full hivemind %.3f",
			pub.Latency.Median(), full.Latency.Median())
	}
	if pub.Latency.Median() >= cen.Latency.Median() {
		t.Fatalf("public cloud %.3f should still beat centralized %.3f",
			pub.Latency.Median(), cen.Latency.Median())
	}
}

func TestPublicCloudDisablesHardwareFeatures(t *testing.T) {
	o := Preset(HiveMind, 4, 1)
	o.PublicCloud = true
	s := NewSystem(o)
	// Network-stack cores are not freed without the FPGA offload.
	if s.Cluster.TotalCores() != 12*36 {
		t.Fatalf("cores = %d, want 432 (no offload)", s.Cluster.TotalCores())
	}
	if s.Net.Config().RPCAccel {
		t.Fatal("RPC accel should be off in public cloud mode")
	}
}

func TestMultiTenantJobs(t *testing.T) {
	// §2.1: "the platform supports multi-tenancy". Run a heavy and a
	// light job concurrently; both must complete and contend for shared
	// resources.
	s := NewSystem(Preset(HiveMind, 8, 23))
	face := mustProfile(t, apps.S1FaceRecognition)
	weather := mustProfile(t, apps.S7Weather)
	results := s.RunJobs([]apps.Profile{face, weather}, 40)
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	for i, r := range results {
		if r.Completed == 0 {
			t.Fatalf("job %d had no completions", i)
		}
	}
	if results[0].App != apps.S1FaceRecognition || results[1].App != apps.S7Weather {
		t.Fatal("result order broken")
	}
	// Contention check: weather under multi-tenancy should not beat its
	// isolated run by much, and must be slower or equal on average.
	iso := NewSystem(Preset(HiveMind, 8, 23)).RunJob(weather, 40)
	if results[1].Latency.Median() < iso.Latency.Median()*0.8 {
		t.Fatalf("shared run faster than isolated: %.3f vs %.3f",
			results[1].Latency.Median(), iso.Latency.Median())
	}
}

func TestSynthesizedPlacementMatchesRules(t *testing.T) {
	// The programmatic synthesis path (§4.2 explorer over the canonical
	// collect→process graph) must agree with the encoded placement rules
	// HiveMind systems use, across the whole benchmark suite.
	hm := NewSystem(Preset(HiveMind, 16, 1))
	for _, p := range apps.All() {
		want := hm.PlaceFor(p)
		got, err := SynthesizePlacement(p, 16)
		if err != nil {
			t.Fatalf("%s: %v", p.ID, err)
		}
		if got != want {
			t.Errorf("%s: synthesis says %s, rules say %s", p.ID, got, want)
		}
	}
}
