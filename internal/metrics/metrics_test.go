package metrics

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"hivemind/internal/trace"
)

func TestCountersAndGauges(t *testing.T) {
	r := NewRegistry()
	r.Inc("a")
	r.Add("a", 2)
	r.CountEvent("a")
	r.SetGauge("q", 3.5)
	r.SetGauge("q", 1.5)
	if got := r.Counter("a"); got != 4 {
		t.Fatalf("counter = %g, want 4", got)
	}
	if got := r.Gauge("q"); got != 1.5 {
		t.Fatalf("gauge = %g, want 1.5", got)
	}
	if r.Counter("missing") != 0 || r.Gauge("missing") != 0 {
		t.Fatal("missing metrics not zero")
	}
}

func TestHistogramSnapshotIsolated(t *testing.T) {
	r := NewRegistry()
	r.Observe("lat", 1)
	r.Observe("lat", 3)
	h := r.Histogram("lat")
	if h.N() != 2 || h.Mean() != 2 {
		t.Fatalf("histogram n=%d mean=%g", h.N(), h.Mean())
	}
	h.Add(100) // mutating the snapshot must not leak back
	if r.Histogram("lat").N() != 2 {
		t.Fatal("snapshot aliases registry state")
	}
	if r.Histogram("missing").N() != 0 {
		t.Fatal("missing histogram not empty")
	}
}

func TestMeterRates(t *testing.T) {
	r := NewRegistry()
	r.MeterAdd("reqs", 1)
	r.MeterAdd("reqs", 1)
	rates := r.MeterRates("reqs")
	if rates.N() < 1 || rates.Sum() <= 0 {
		t.Fatalf("rates n=%d sum=%g", rates.N(), rates.Sum())
	}
	if r.MeterRates("missing").N() != 0 {
		t.Fatal("missing meter not empty")
	}
}

func TestWriteTextDeterministicAndSorted(t *testing.T) {
	r := NewRegistry()
	r.Inc("z-count")
	r.Inc("a-count")
	r.SetGauge("depth", 2)
	r.Observe("lat", 0.5)
	var b1, b2 strings.Builder
	if err := r.WriteText(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteText(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Fatalf("exposition not deterministic:\n%s\nvs\n%s", b1.String(), b2.String())
	}
	out := b1.String()
	if !strings.Contains(out, "counter a-count 1\n") ||
		!strings.Contains(out, "gauge depth 2\n") ||
		!strings.Contains(out, "histogram lat count 1") {
		t.Fatalf("exposition missing lines:\n%s", out)
	}
	if strings.Index(out, "counter a-count") > strings.Index(out, "counter z-count") {
		t.Fatalf("counters not sorted:\n%s", out)
	}
}

func TestHandlerServesText(t *testing.T) {
	r := NewRegistry()
	r.Inc("hits")
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 256)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "counter hits 1") {
		t.Fatalf("body = %q", buf[:n])
	}
}

func TestDebugMuxRoutes(t *testing.T) {
	r := NewRegistry()
	r.Inc("hits")
	rec := trace.NewRecorder(0)
	rec.Add(trace.Span{Name: "s", Track: "t", StartS: 0, EndS: 1})
	srv := httptest.NewServer(DebugMux(r, rec))
	defer srv.Close()
	for path, want := range map[string]string{
		"/metrics": "counter hits 1",
		"/trace":   `"thread_name"`,
	} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 4096)
		n, _ := resp.Body.Read(buf)
		resp.Body.Close()
		if resp.StatusCode != 200 || !strings.Contains(string(buf[:n]), want) {
			t.Fatalf("%s -> %d %q", path, resp.StatusCode, buf[:n])
		}
	}
}

// Rides the race detector: one registry absorbing concurrent gateway
// events is the production configuration.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Inc("events")
				r.SetGauge("depth", float64(i))
				r.Observe("lat", float64(i))
				r.MeterAdd("reqs", 1)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			var b strings.Builder
			if err := r.WriteText(&b); err != nil {
				t.Errorf("WriteText: %v", err)
			}
		}
	}()
	wg.Wait()
	if got := r.Counter("events"); got != 1600 {
		t.Fatalf("events = %g, want 1600", got)
	}
	if r.Histogram("lat").N() != 1600 {
		t.Fatalf("lat n = %d, want 1600", r.Histogram("lat").N())
	}
}

func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	depth := 3
	r.GaugeFunc("queue-depth", func() float64 { return float64(depth) })
	if got := r.Gauge("queue-depth"); got != 3 {
		t.Fatalf("lazy gauge = %g, want 3", got)
	}
	depth = 7
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "gauge queue-depth 7\n") {
		t.Fatalf("exposition missing sampled lazy gauge:\n%s", b.String())
	}
	// SetGauge under the same name replaces the lazy sampler.
	r.SetGauge("queue-depth", 1)
	depth = 99
	if got := r.Gauge("queue-depth"); got != 1 {
		t.Fatalf("replaced gauge = %g, want 1", got)
	}
}
