package trace

import (
	"sync/atomic"
	"time"
)

// SpanContext is the propagated identity of a distributed trace: the
// task's trace id plus the span id of the caller's open span. It rides
// in the gateway task envelope (runtime.EncodeTaskTraced), never in the
// RPC wire format, so every layer of the live stack — gateway,
// controller, RPC hop, runtime — can hang its spans off one shared id.
type SpanContext struct {
	// TraceID groups every span of one end-to-end task. Empty means
	// "untraced"; receivers then mint their own id (usually the task id).
	TraceID string
	// Parent is the span id of the nearest enclosing span (0: root).
	Parent uint64
}

// Valid reports whether the context carries a trace id.
func (sc SpanContext) Valid() bool { return sc.TraceID != "" }

// Live adapts a Recorder to wall-clock instrumentation: the sim side
// records spans at virtual timestamps, the live substrate records them
// at seconds-since-epoch so both land in the same Chrome trace format.
// All methods are nil-receiver safe, so instrumented code paths need no
// "is tracing on?" branches.
type Live struct {
	rec    *Recorder
	epoch  time.Time
	nextID atomic.Uint64
}

// NewLive anchors a live tracer at the current wall clock. rec may be
// shared with other tracers and with direct Recorder users.
func NewLive(rec *Recorder) *Live {
	return &Live{rec: rec, epoch: time.Now()}
}

// Recorder returns the underlying recorder (nil for a nil tracer).
func (l *Live) Recorder() *Recorder {
	if l == nil {
		return nil
	}
	return l.rec
}

// Now returns seconds since the tracer's epoch.
func (l *Live) Now() float64 {
	if l == nil {
		return 0
	}
	return time.Since(l.epoch).Seconds()
}

// LiveSpan is one in-progress wall-clock span. End records it.
type LiveSpan struct {
	l     *Live
	span  Span
	id    uint64
	start time.Time
	ended atomic.Bool
}

// Start opens a span on the given lane. sc links the span into a
// distributed trace: its trace id and the parent span id are recorded
// as args ("trace", "span", "parent") so viewers and tests can group
// every layer's spans under one task. Returns nil on a nil tracer; all
// LiveSpan methods tolerate a nil receiver.
func (l *Live) Start(name, category, track string, sc SpanContext) *LiveSpan {
	if l == nil {
		return nil
	}
	s := &LiveSpan{l: l, start: time.Now()}
	s.id = l.nextID.Add(1)
	s.span = Span{
		Name:     name,
		Category: category,
		Track:    track,
		StartS:   s.start.Sub(l.epoch).Seconds(),
		Args:     map[string]string{"span": formatID(s.id)},
	}
	if sc.TraceID != "" {
		s.span.Args["trace"] = sc.TraceID
	}
	if sc.Parent != 0 {
		s.span.Args["parent"] = formatID(sc.Parent)
	}
	return s
}

// ID returns the span's id (0 for nil), used as Parent in child
// contexts.
func (s *LiveSpan) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// Context returns the SpanContext children of this span should carry.
func (s *LiveSpan) Context(traceID string) SpanContext {
	if s == nil {
		return SpanContext{TraceID: traceID}
	}
	return SpanContext{TraceID: traceID, Parent: s.id}
}

// SetArg attaches a key/value shown in the trace viewer.
func (s *LiveSpan) SetArg(k, v string) {
	if s == nil || s.ended.Load() {
		return
	}
	s.span.Args[k] = v
}

// End closes the span and records it. Safe to call more than once; only
// the first call records.
func (s *LiveSpan) End() {
	if s == nil || !s.ended.CompareAndSwap(false, true) {
		return
	}
	s.span.EndS = time.Since(s.l.epoch).Seconds()
	if s.span.EndS < s.span.StartS {
		s.span.EndS = s.span.StartS
	}
	s.l.rec.Add(s.span)
}

// Mark records a wall-clock instant (election won, device failed, ...).
func (l *Live) Mark(name, track string, args map[string]string, global bool) {
	if l == nil {
		return
	}
	l.rec.Mark(Instant{Name: name, Track: track, AtS: l.Now(), Args: args, Global: global})
}

// formatID renders span ids compactly without fmt on the hot path.
func formatID(id uint64) string {
	var buf [20]byte
	i := len(buf)
	for {
		i--
		buf[i] = byte('0' + id%10)
		id /= 10
		if id == 0 {
			return string(buf[i:])
		}
	}
}
