package stats

import "testing"

// BenchmarkPercentile measures sorted-percentile queries over a large
// latency sample (the hot path of every experiment report).
func BenchmarkPercentile(b *testing.B) {
	var s Sample
	for i := 0; i < 100000; i++ {
		s.Add(float64((i * 2654435761) % 1000000))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(float64(i)) // invalidates the sort
		_ = s.Percentile(99)
	}
}

// BenchmarkBreakdownRecord measures per-task stage accounting.
func BenchmarkBreakdownRecord(b *testing.B) {
	bd := NewBreakdown()
	parts := map[Stage]float64{
		StageNetwork: 0.1, StageManagement: 0.05,
		StageDataIO: 0.02, StageExecution: 0.2,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bd.Record(parts)
	}
}
