package energy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBatteryConsumeAndAttribution(t *testing.T) {
	b := NewBattery(PowerProfile{CapacityJ: 100}, nil)
	b.Consume(LoadMotion, 30)
	b.Consume(LoadCompute, 20)
	if b.ConsumedJ() != 50 || b.ConsumedFraction() != 0.5 || b.RemainingJ() != 50 {
		t.Fatalf("state: %s", b)
	}
	if b.ConsumedBy(LoadMotion) != 30 || b.ConsumedBy(LoadCompute) != 20 {
		t.Fatal("attribution wrong")
	}
	if b.Empty() {
		t.Fatal("not empty yet")
	}
}

func TestBatteryEmptyCallbackFiresOnce(t *testing.T) {
	fires := 0
	b := NewBattery(PowerProfile{CapacityJ: 10}, func() { fires++ })
	b.Consume(LoadMotion, 8)
	b.Consume(LoadMotion, 5) // crosses capacity
	b.Consume(LoadMotion, 5) // already empty: no-op
	if fires != 1 {
		t.Fatalf("onEmpty fired %d times", fires)
	}
	if !b.Empty() || b.ConsumedJ() != 10 {
		t.Fatalf("consumed %g, empty=%v", b.ConsumedJ(), b.Empty())
	}
	if b.ConsumedFraction() != 1.0 {
		t.Fatalf("fraction = %g", b.ConsumedFraction())
	}
}

func TestBatteryClampsAtCapacity(t *testing.T) {
	b := NewBattery(PowerProfile{CapacityJ: 10}, nil)
	b.Consume(LoadRadio, 25)
	if b.ConsumedJ() != 10 || b.ConsumedBy(LoadRadio) != 10 {
		t.Fatalf("overdrain: %g", b.ConsumedJ())
	}
}

func TestBatteryNegativeAndZeroNoop(t *testing.T) {
	b := NewBattery(PowerProfile{CapacityJ: 10}, nil)
	b.Consume(LoadMotion, 0)
	b.Consume(LoadMotion, -5)
	if b.ConsumedJ() != 0 {
		t.Fatalf("consumed %g from no-op drains", b.ConsumedJ())
	}
}

func TestConsumeTxRxUseProfileRates(t *testing.T) {
	p := PowerProfile{CapacityJ: 1000, TxJPerMB: 2, RxJPerMB: 0.5}
	b := NewBattery(p, nil)
	b.ConsumeTx(10)
	b.ConsumeRx(10)
	if b.ConsumedBy(LoadRadio) != 25 {
		t.Fatalf("radio energy = %g, want 25", b.ConsumedBy(LoadRadio))
	}
}

func TestConsumePower(t *testing.T) {
	b := NewBattery(PowerProfile{CapacityJ: 1000}, nil)
	b.ConsumePower(LoadCompute, 5, 4)
	if b.ConsumedBy(LoadCompute) != 20 {
		t.Fatalf("compute energy = %g", b.ConsumedBy(LoadCompute))
	}
}

func TestIntegratorChargesByActivity(t *testing.T) {
	p := PowerProfile{CapacityJ: 1e6, MoveW: 50, HoverW: 45, ComputeBusyW: 30, ComputeIdleW: 2, BaseW: 4, RadioW: 1}
	b := NewBattery(p, nil)
	it := NewIntegrator(b, 0)
	it.Moving = true
	it.CPUBusy = false
	it.Advance(10) // 10s moving, idle cpu
	wantMotion := 500.0
	wantCompute := 20.0
	wantBase := 50.0
	if b.ConsumedBy(LoadMotion) != wantMotion {
		t.Fatalf("motion = %g", b.ConsumedBy(LoadMotion))
	}
	if b.ConsumedBy(LoadCompute) != wantCompute {
		t.Fatalf("compute = %g", b.ConsumedBy(LoadCompute))
	}
	if b.ConsumedBy(LoadBase) != wantBase {
		t.Fatalf("base = %g", b.ConsumedBy(LoadBase))
	}
	it.Moving = false
	it.Hovering = true
	it.CPUBusy = true
	it.Advance(20) // 10s hover + busy
	if got := b.ConsumedBy(LoadMotion); got != wantMotion+450 {
		t.Fatalf("motion after hover = %g", got)
	}
	if got := b.ConsumedBy(LoadCompute); got != wantCompute+300 {
		t.Fatalf("compute after busy = %g", got)
	}
}

func TestIntegratorIgnoresTimeTravel(t *testing.T) {
	b := NewBattery(PowerProfile{CapacityJ: 100, MoveW: 10}, nil)
	it := NewIntegrator(b, 5)
	it.Moving = true
	it.Advance(3) // before start: no-op
	if b.ConsumedJ() != 0 {
		t.Fatalf("consumed %g for negative interval", b.ConsumedJ())
	}
}

func TestProfilesShapeMatchesPaper(t *testing.T) {
	d, r := DroneProfile(), RoverProfile()
	// Drones are power constrained: flying dominates, small battery.
	if d.MoveW <= d.ComputeBusyW {
		t.Fatal("drone motion should dominate compute")
	}
	// Rovers are less power-constrained (§5.5): bigger battery, cheaper
	// motion relative to capacity.
	droneBudget := d.CapacityJ / d.MoveW // seconds of motion
	roverBudget := r.CapacityJ / r.MoveW
	if roverBudget <= droneBudget {
		t.Fatalf("rover endurance (%gs) should exceed drone endurance (%gs)", roverBudget, droneBudget)
	}
	// On-board compute must be expensive relative to radio for heavy
	// data rates to reproduce Fig. 14a's distributed-vs-centralized gap:
	// at the default 16 MB/s sensor rate, radio energy/s must be below
	// busy-compute watts so distributed drains faster for heavy jobs.
	radioWattsAt16MBps := 16 * d.TxJPerMB
	if radioWattsAt16MBps >= d.ComputeBusyW {
		t.Fatalf("radio %gW at 16MB/s should be below busy compute %gW",
			radioWattsAt16MBps, d.ComputeBusyW)
	}
}

// Property: consumption is monotone non-decreasing and never exceeds
// capacity regardless of the drain sequence.
func TestBatteryInvariantProperty(t *testing.T) {
	prop := func(drains []float64) bool {
		b := NewBattery(PowerProfile{CapacityJ: 50}, nil)
		prev := 0.0
		for i, d := range drains {
			if math.IsNaN(d) || math.IsInf(d, 0) {
				continue
			}
			b.Consume(AllLoads[i%len(AllLoads)], d)
			if b.ConsumedJ() < prev || b.ConsumedJ() > 50+1e-9 {
				return false
			}
			prev = b.ConsumedJ()
		}
		var byLoad float64
		for _, l := range AllLoads {
			byLoad += b.ConsumedBy(l)
		}
		return math.Abs(byLoad-b.ConsumedJ()) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
