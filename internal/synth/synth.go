// Package synth implements HiveMind's program synthesis and task
// placement exploration (§4.2, Fig. 8). Starting from a validated DSL
// task graph it enumerates every *meaningful* assignment of tasks to
// edge or cloud (pruning assignments that violate Place pins or put
// device-bound sensing in the cloud), composes the cross-tier API
// bindings each assignment needs (RPC for edge<->cloud, the serverless
// data-sharing protocol intra-cloud, in-process for same-device
// chains), predicts each candidate's latency / power / network / cost
// with a queueing-informed cost model, and selects the best candidate
// that satisfies the user's constraints.
package synth

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"hivemind/internal/dsl"
)

// Loc is a task's assigned location in a candidate.
type Loc int

const (
	LocCloud Loc = iota
	LocEdge
)

// String implements fmt.Stringer.
func (l Loc) String() string {
	if l == LocEdge {
		return "edge"
	}
	return "cloud"
}

// TaskCost carries the per-task profile the cost model needs. The
// caller maps tasks to measured profiles (e.g. internal/apps).
type TaskCost struct {
	CloudExecS  float64 // single-core service time in the cloud
	EdgeExecS   float64 // service time on the device
	Parallelism int     // serverless fan-out
	InputMB     float64 // data consumed per invocation
	OutputMB    float64 // data produced per invocation
	RatePerDev  float64 // invocations/s per device
	Sensor      bool    // collects device sensor data (must run on-device)
}

// Env describes the deployment the candidates are scored against.
type Env struct {
	Devices        int
	WirelessMBps   float64 // aggregate edge<->cloud bandwidth
	CloudCores     int
	EdgePowerW     float64 // device busy-compute watts
	RadioJPerMB    float64
	CloudUSDPerCPU float64 // $ per core-second (FaaS pricing)
	FaaSOverheadS  float64 // per-invocation management cost
	ExchangeCloudS float64 // intra-cloud data-sharing base cost
	RPCBaseS       float64 // edge<->cloud RPC base cost
}

// DefaultEnv matches the paper's testbed scale.
func DefaultEnv(devices int) Env {
	return Env{
		Devices:        devices,
		WirelessMBps:   216.75,
		CloudCores:     480,
		EdgePowerW:     30,
		RadioJPerMB:    1.5,
		CloudUSDPerCPU: 2.4e-5, // ~AWS Lambda GB-s pricing ballpark
		FaaSOverheadS:  0.05,
		ExchangeCloudS: 0.03,
		RPCBaseS:       0.006,
	}
}

// BindingKind is the API flavour synthesized for one graph edge.
type BindingKind int

const (
	BindLocal BindingKind = iota // same device, in-process call
	BindRPC                      // edge<->cloud (or device<->device) RPC
	BindFaaS                     // intra-cloud serverless data sharing
)

// String implements fmt.Stringer.
func (b BindingKind) String() string {
	switch b {
	case BindLocal:
		return "local"
	case BindRPC:
		return "rpc"
	default:
		return "faas"
	}
}

// Binding is a synthesized cross-task API.
type Binding struct {
	From, To string
	Kind     BindingKind
}

// Candidate is one execution model: a complete assignment plus the API
// bindings it requires.
type Candidate struct {
	Assignment map[string]Loc
	Bindings   []Binding
	Metrics    Metrics // filled by Estimate
}

// Name renders a compact signature like "route=cloud,collect=edge,...".
func (c Candidate) Name() string {
	keys := make([]string, 0, len(c.Assignment))
	for k := range c.Assignment {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%s", k, c.Assignment[k])
	}
	return strings.Join(parts, ",")
}

// Metrics is the cost model's prediction for a candidate.
type Metrics struct {
	LatencyS     float64 // end-to-end critical-path latency per task-graph instance
	DevicePowerW float64 // average per-device power above baseline
	NetworkMBps  float64 // aggregate edge<->cloud traffic
	CloudUSDps   float64 // cloud cost per second
	Feasible     bool    // network not oversubscribed, edge not overloaded
}

// model is the indexed form of (graph, costs) the exploration hot path
// works over: tasks in topo order, cost profiles and edge lists resolved
// to integer indices, so candidate generation and scoring touch no maps
// and no string keys. Exported entry points build a model internally and
// translate back to the map-keyed Candidate at the boundary.
type model struct {
	tasks []*dsl.Task
	index map[string]int
	cost  []TaskCost
	// parents holds t.Parents resolved to indices (critical-path max);
	// inEdges holds the parent of every incoming graph edge in global
	// binding order (binding-cost walk). The two agree on membership for
	// a validated graph but are kept separate so the accumulation order
	// of the cost arithmetic matches the original map-based walk exactly.
	parents [][]int
	inEdges [][]int
}

func newModel(g *dsl.TaskGraph, costs map[string]TaskCost) *model {
	tasks := g.TopoOrder()
	m := &model{
		tasks:   tasks,
		index:   make(map[string]int, len(tasks)),
		cost:    make([]TaskCost, len(tasks)),
		parents: make([][]int, len(tasks)),
		inEdges: make([][]int, len(tasks)),
	}
	for i, t := range tasks {
		m.index[t.Name] = i
		m.cost[i] = costs[t.Name]
	}
	for i, t := range tasks {
		if len(t.Parents) > 0 {
			ps := make([]int, len(t.Parents))
			for j, p := range t.Parents {
				ps[j] = m.index[p]
			}
			m.parents[i] = ps
		}
		for _, c := range t.Children {
			j := m.index[c]
			m.inEdges[j] = append(m.inEdges[j], i)
		}
	}
	return m
}

func (m *model) validate(costs map[string]TaskCost) error {
	if len(m.tasks) == 0 {
		return fmt.Errorf("synth: empty graph")
	}
	for _, t := range m.tasks {
		if _, ok := costs[t.Name]; !ok {
			return fmt.Errorf("synth: no cost profile for task %q", t.Name)
		}
	}
	if len(m.tasks) > 20 {
		return fmt.Errorf("synth: %d tasks exceeds the exploration limit (20)", len(m.tasks))
	}
	return nil
}

// enumerate generates every meaningful assignment as an indexed []Loc.
// Instead of expanding all 2^n masks and filtering, it resolves each
// pinned or sensor-bound task to its forced location up front and only
// enumerates the 2^free remaining combinations — branch-and-bound
// rather than generate-then-filter. Spreading ascending free-bit masks
// into ascending task positions is monotone, so candidates come out in
// the same order the full-mask scan produced.
func (m *model) enumerate() ([][]Loc, error) {
	n := len(m.tasks)
	template := make([]Loc, n)
	free := make([]int, 0, n)
	for i, t := range m.tasks {
		sensor := m.cost[i].Sensor
		switch {
		case sensor && t.Pin == dsl.PlaceCloud:
			// Collecting sensor data in the cloud is meaningless; a cloud
			// pin on a sensing task leaves no legal placement at all.
			return nil, fmt.Errorf("synth: constraints eliminate every placement")
		case sensor || t.Pin == dsl.PlaceEdge:
			template[i] = LocEdge
		case t.Pin == dsl.PlaceCloud:
			template[i] = LocCloud
		default:
			free = append(free, i)
		}
	}
	count := 1 << len(free)
	flat := make([]Loc, count*n) // one block, sliced per candidate
	out := make([][]Loc, count)
	for fm := 0; fm < count; fm++ {
		locs := flat[fm*n : (fm+1)*n : (fm+1)*n]
		copy(locs, template)
		for j, idx := range free {
			if fm&(1<<j) != 0 {
				locs[idx] = LocEdge
			}
		}
		out[fm] = locs
	}
	return out, nil
}

func bindKind(from, to Loc) BindingKind {
	switch {
	case from == LocCloud && to == LocCloud:
		return BindFaaS
	case from == LocEdge && to == LocEdge:
		return BindLocal
	default:
		return BindRPC
	}
}

// candidate materialises the exported map-keyed Candidate for one
// indexed assignment, composing the APIs it needs (§4.1: Thrift-style
// RPC for computation that may run at the edge, the serverless function
// interface for tasks on the cluster).
func (m *model) candidate(locs []Loc, metrics Metrics) Candidate {
	assign := make(map[string]Loc, len(locs))
	nb := 0
	for i, t := range m.tasks {
		assign[t.Name] = locs[i]
		nb += len(t.Children)
	}
	bindings := make([]Binding, 0, nb)
	for i, t := range m.tasks {
		for _, c := range t.Children {
			bindings = append(bindings, Binding{
				From: t.Name, To: c, Kind: bindKind(locs[i], locs[m.index[c]]),
			})
		}
	}
	return Candidate{Assignment: assign, Bindings: bindings, Metrics: metrics}
}

// estimate scores one indexed assignment. lat is caller-owned scratch of
// length len(m.tasks), so a tight loop over candidates reuses it. The
// arithmetic visits tasks and edges in exactly the order the original
// map-based walk did, keeping predictions bit-identical.
func (m *model) estimate(locs []Loc, env Env, lat []float64) Metrics {
	var mtr Metrics
	mtr.Feasible = true

	// Aggregate offered loads.
	var edgeUtil float64 // per-device core utilization
	var netMBps float64  // aggregate edge<->cloud
	var cloudCoreS float64
	devs := float64(env.Devices)

	// Critical path latency: longest root→leaf chain of per-task
	// latencies plus binding costs.
	for i := range m.tasks {
		cost := m.cost[i]
		var taskLat float64
		if locs[i] == LocEdge {
			util := cost.RatePerDev * cost.EdgeExecS
			edgeUtil += util
			if util >= 1 {
				// Overloaded device: the bounded on-board queue stays full,
				// so completed tasks see ~queue-length service times.
				taskLat = cost.EdgeExecS * 4
			} else {
				// Median-latency inflation from queueing (light at typical
				// utilizations; the mean-value M/M/1 formula overstates the
				// median the placement decision cares about).
				taskLat = cost.EdgeExecS * (1 + 0.5*util*util)
			}
		} else {
			par := math.Max(1, float64(cost.Parallelism))
			taskLat = cost.CloudExecS/par + env.FaaSOverheadS
			cloudCoreS += cost.RatePerDev * devs * cost.CloudExecS
		}
		// Binding (incoming edge) costs: charged on the child.
		var bindLat float64
		for _, p := range m.inEdges[i] {
			parentOut := m.cost[p].OutputMB
			switch bindKind(locs[p], locs[i]) {
			case BindRPC:
				bindLat = math.Max(bindLat, env.RPCBaseS+parentOut/(env.WirelessMBps/devs))
				netMBps += m.cost[p].RatePerDev * devs * parentOut
			case BindFaaS:
				bindLat = math.Max(bindLat, env.ExchangeCloudS)
			case BindLocal:
				bindLat = math.Max(bindLat, 0.0005)
			}
		}
		// Sensor input arriving at a cloud task crosses the wireless hop.
		if locs[i] == LocCloud && cost.InputMB > 0 && len(m.inEdges[i]) == 0 {
			netMBps += cost.RatePerDev * devs * cost.InputMB
			bindLat = math.Max(bindLat, cost.InputMB/(env.WirelessMBps/devs))
		}
		best := 0.0
		for _, p := range m.parents[i] {
			if lat[p] > best {
				best = lat[p]
			}
		}
		lat[i] = best + taskLat + bindLat
	}
	for i := range m.tasks {
		if lat[i] > mtr.LatencyS {
			mtr.LatencyS = lat[i]
		}
	}
	if edgeUtil >= 1 {
		mtr.Feasible = false
	}
	if netMBps >= env.WirelessMBps {
		mtr.Feasible = false
	}
	if cloudCoreS > float64(env.CloudCores) {
		mtr.Feasible = false
	}
	mtr.NetworkMBps = netMBps
	mtr.DevicePowerW = edgeUtil*env.EdgePowerW + (netMBps/devs)*env.RadioJPerMB
	mtr.CloudUSDps = cloudCoreS * env.CloudUSDPerCPU
	return mtr
}

// estimateChunk is the grain of the parallel estimation fan-out: big
// enough to amortize goroutine handoff, small enough to balance load
// across uneven chunks.
const estimateChunk = 256

// estimateAll scores every assignment into metrics (index-aligned with
// locsList). Candidates are independent, so they are fanned across
// GOMAXPROCS workers in chunks; each worker writes disjoint indices,
// which keeps the result deterministic regardless of scheduling.
func (m *model) estimateAll(locsList [][]Loc, env Env, metrics []Metrics) {
	workers := runtime.GOMAXPROCS(0)
	if max := (len(locsList) + estimateChunk - 1) / estimateChunk; workers > max {
		workers = max
	}
	if workers <= 1 {
		lat := make([]float64, len(m.tasks))
		for i, locs := range locsList {
			metrics[i] = m.estimate(locs, env, lat)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lat := make([]float64, len(m.tasks))
			for {
				start := int(next.Add(estimateChunk)) - estimateChunk
				if start >= len(locsList) {
					return
				}
				end := start + estimateChunk
				if end > len(locsList) {
					end = len(locsList)
				}
				for i := start; i < end; i++ {
					metrics[i] = m.estimate(locsList[i], env, lat)
				}
			}
		}()
	}
	wg.Wait()
}

// Enumerate generates all meaningful candidates for the graph.
// Meaningful (§4.2): Place pins are honoured, sensing tasks never run
// in the cloud.
func Enumerate(g *dsl.TaskGraph, costs map[string]TaskCost) ([]Candidate, error) {
	m := newModel(g, costs)
	if err := m.validate(costs); err != nil {
		return nil, err
	}
	locsList, err := m.enumerate()
	if err != nil {
		return nil, err
	}
	out := make([]Candidate, len(locsList))
	for i, locs := range locsList {
		out[i] = m.candidate(locs, Metrics{})
	}
	return out, nil
}

// Estimate fills in a candidate's predicted metrics.
func Estimate(g *dsl.TaskGraph, c *Candidate, costs map[string]TaskCost, env Env) Metrics {
	m := newModel(g, costs)
	locs := make([]Loc, len(m.tasks))
	for i, t := range m.tasks {
		locs[i] = c.Assignment[t.Name]
	}
	mtr := m.estimate(locs, env, make([]float64, len(m.tasks)))
	c.Metrics = mtr
	return mtr
}

// Explore enumerates, estimates and ranks all candidates. Tasks fed by
// a declared data stream inherit its rate (and item size, when the cost
// profile leaves them unset).
func Explore(g *dsl.TaskGraph, costs map[string]TaskCost, env Env) ([]Candidate, error) {
	// Patch stream-derived rates into a copy: the costs map belongs to
	// the caller, who may reuse it across runs or share it between
	// concurrent Explore calls.
	patched := make(map[string]TaskCost, len(costs))
	for k, v := range costs {
		patched[k] = v
	}
	for _, t := range g.Tasks {
		if st, ok := g.StreamFor(t); ok {
			c := patched[t.Name]
			if c.RatePerDev == 0 {
				c.RatePerDev = st.RateHz
			}
			if c.InputMB == 0 {
				c.InputMB = st.ItemMB
			}
			patched[t.Name] = c
		}
	}
	m := newModel(g, patched)
	if err := m.validate(patched); err != nil {
		return nil, err
	}
	locsList, err := m.enumerate()
	if err != nil {
		return nil, err
	}
	metrics := make([]Metrics, len(locsList))
	m.estimateAll(locsList, env, metrics)
	// Rank by index so the map-keyed Candidates are only materialised
	// once, in final order.
	order := make([]int, len(locsList))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		a, b := metrics[order[i]], metrics[order[j]]
		if a.Feasible != b.Feasible {
			return a.Feasible
		}
		return a.LatencyS < b.LatencyS
	})
	out := make([]Candidate, len(order))
	for rank, idx := range order {
		out[rank] = m.candidate(locsList[idx], metrics[idx])
	}
	return out, nil
}

// Select returns the best candidate satisfying the user's constraints
// (§4.1: performance, power, cost, or a combination). Zero-valued
// constraint fields are unconstrained. If nothing satisfies them, the
// feasible latency-optimal candidate is returned with ok=false.
func Select(cands []Candidate, cons dsl.Constraints, maxPowerW float64) (Candidate, bool) {
	meets := func(m Metrics) bool {
		if !m.Feasible {
			return false
		}
		if cons.LatencyS > 0 && m.LatencyS > cons.LatencyS {
			return false
		}
		if cons.ExecTimeS > 0 && m.LatencyS > cons.ExecTimeS {
			return false
		}
		if cons.MaxCostUSD > 0 && m.CloudUSDps*3600 > cons.MaxCostUSD {
			return false
		}
		if maxPowerW > 0 && m.DevicePowerW > maxPowerW {
			return false
		}
		if cons.MaxPowerW > 0 && m.DevicePowerW > cons.MaxPowerW {
			return false
		}
		return true
	}
	for _, c := range cands {
		if meets(c.Metrics) {
			return c, true
		}
	}
	for _, c := range cands {
		if c.Metrics.Feasible {
			return c, false
		}
	}
	if len(cands) > 0 {
		return cands[0], false
	}
	return Candidate{}, false
}
