// End-to-end chaos suite: the hardened substrate (rpc retries +
// breaker + heartbeat, gateway respawn, store degradation) is driven
// through seeded fault injection on real TCP and in-process transports,
// and its qualitative behaviour is cross-checked against the
// internal/faas queueing model's §3.2 respawn-on-failure predictions.
// Every test is deterministic under -race: faults come from scripted
// decisions or per-connection injectors with fixed seeds.
package chaos_test

import (
	"context"
	"errors"
	"net"
	"sort"
	"sync"
	"testing"
	"time"

	"hivemind/internal/chaos"
	"hivemind/internal/cluster"
	"hivemind/internal/controller"
	"hivemind/internal/faas"
	"hivemind/internal/rpc"
	"hivemind/internal/runtime"
	"hivemind/internal/sim"
)

// serveTCP starts an RPC server on a loopback listener and returns its
// address.
func serveTCP(t *testing.T, srv *rpc.Server) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { ln.Close() })
	return ln.Addr().String()
}

func echoServer(t *testing.T) *rpc.Server {
	t.Helper()
	srv := rpc.NewServer()
	srv.Register("echo", func(p []byte) ([]byte, error) { return p, nil })
	t.Cleanup(srv.Close)
	return srv
}

// flakyDial wraps the first `bad` dialed connections with an injector
// that deterministically kills them, then hands out clean connections.
func flakyDial(dial func() (net.Conn, error), bad int, cfg chaos.Config) func() (net.Conn, error) {
	var mu sync.Mutex
	dials := 0
	return func() (net.Conn, error) {
		c, err := dial()
		if err != nil {
			return nil, err
		}
		mu.Lock()
		dials++
		n := dials
		mu.Unlock()
		if n <= bad {
			return chaos.NewInjector(int64(n), cfg).WrapConn(c), nil
		}
		return c, nil
	}
}

// fastRetry keeps backoff small so chaos tests stay quick while still
// exercising the schedule.
func fastRetry(max int) rpc.RetryPolicy {
	return rpc.RetryPolicy{Max: max, Base: 5 * time.Millisecond, Cap: 40 * time.Millisecond, Multiplier: 2, Jitter: 0.2}
}

// Acceptance (a), TCP: the hardened client retries through connections
// that drop every frame and completes within the caller's deadline.
func TestChaosRetrySurvivesDroppedConnectionsTCP(t *testing.T) {
	addr := serveTCP(t, echoServer(t))
	opts := rpc.ReliableOptions{Callers: 4, Retry: fastRetry(4), Seed: 1}
	rc := rpc.NewReliableClient(flakyDial(func() (net.Conn, error) {
		return net.Dial("tcp", addr)
	}, 2, chaos.Config{DropProb: 1}), opts)
	defer rc.Close()
	rc.MarkIdempotent("echo")

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	out, err := rc.Call(ctx, "echo", []byte("swarm"))
	if err != nil {
		t.Fatalf("call over dropping transport = %v", err)
	}
	if string(out) != "swarm" {
		t.Fatalf("out = %q", out)
	}
	if st := rc.Stats(); st.Retries < 2 {
		t.Fatalf("retries = %d, want >= 2 (two poisoned connections)", st.Retries)
	}
}

// Acceptance (a), in-process: the same recovery works over net.Pipe
// transports, so chaos tests do not depend on a TCP stack.
func TestChaosRetrySurvivesDroppedConnectionsInProcess(t *testing.T) {
	srv := echoServer(t)
	dial := func() (net.Conn, error) {
		cc, sc := rpc.Pair()
		srv.ServeConn(sc)
		return cc, nil
	}
	opts := rpc.ReliableOptions{Callers: 4, Retry: fastRetry(4), Seed: 1}
	rc := rpc.NewReliableClient(flakyDial(dial, 2, chaos.Config{DropProb: 1}), opts)
	defer rc.Close()
	rc.MarkIdempotent("echo")

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	out, err := rc.Call(ctx, "echo", []byte("pipe"))
	if err != nil || string(out) != "pipe" {
		t.Fatalf("out=%q err=%v", out, err)
	}
	if st := rc.Stats(); st.Retries < 2 {
		t.Fatalf("retries = %d, want >= 2", st.Retries)
	}
}

// Acceptance (a), one-way partition: requests vanish into an outbound
// blackhole; per-attempt timeouts convert the silence into retryable
// failures, and once the partition heals a retry completes within the
// caller's deadline.
func TestChaosRetrySurvivesOneWayPartition(t *testing.T) {
	addr := serveTCP(t, echoServer(t))
	inj := chaos.NewInjector(7, chaos.Config{})
	inj.Partition(chaos.Outbound)
	opts := rpc.ReliableOptions{
		Callers:     4,
		CallTimeout: 50 * time.Millisecond,
		Retry:       fastRetry(6),
		Seed:        1,
	}
	rc := rpc.NewReliableClient(func() (net.Conn, error) {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		return inj.WrapConn(c), nil
	}, opts)
	defer rc.Close()
	rc.MarkIdempotent("echo")

	// Heal as soon as the first attempt has been swallowed and retried.
	go func() {
		for rc.Stats().Retries == 0 {
			time.Sleep(time.Millisecond)
		}
		inj.Heal()
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	out, err := rc.Call(ctx, "echo", []byte("healed"))
	if err != nil {
		t.Fatalf("call across healed partition = %v", err)
	}
	if string(out) != "healed" {
		t.Fatalf("out = %q", out)
	}
	if rc.Stats().Retries == 0 {
		t.Fatal("partition injected no retries")
	}
}

// Torn frames: a write that truncates mid-frame kills the connection;
// the reader's framing detects it and the client recovers by redialing.
func TestChaosTruncatedFrameRecovered(t *testing.T) {
	addr := serveTCP(t, echoServer(t))
	opts := rpc.ReliableOptions{Callers: 4, Retry: fastRetry(4), Seed: 1}
	rc := rpc.NewReliableClient(flakyDial(func() (net.Conn, error) {
		return net.Dial("tcp", addr)
	}, 1, chaos.Config{TruncateProb: 1}), opts)
	defer rc.Close()
	rc.MarkIdempotent("echo")

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	out, err := rc.Call(ctx, "echo", []byte("frame"))
	if err != nil || string(out) != "frame" {
		t.Fatalf("out=%q err=%v", out, err)
	}
	if rc.Stats().Retries == 0 {
		t.Fatal("truncated frame did not force a retry")
	}
}

// Acceptance (c): consecutive failures against a dead server open the
// breaker (shedding further load instantly); once the server is back
// and the cooldown passes, a half-open probe closes it again.
func TestChaosBreakerOpensThenRecovers(t *testing.T) {
	srv := rpc.NewServer()
	srv.Register("echo", func(p []byte) ([]byte, error) { return p, nil })
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	go srv.Serve(ln)

	const cooldown = 100 * time.Millisecond
	opts := rpc.ReliableOptions{
		Callers: 4,
		Retry:   rpc.RetryPolicy{Max: 0}, // isolate the breaker from retries
		Breaker: rpc.BreakerConfig{Threshold: 3, Cooldown: cooldown},
		Seed:    1,
	}
	rc := rpc.DialReliable(addr, opts)
	defer rc.Close()
	rc.MarkIdempotent("echo")

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := rc.Call(ctx, "echo", []byte("up")); err != nil {
		t.Fatalf("healthy call = %v", err)
	}

	// Kill the server: the live connection dies and redials fail.
	ln.Close()
	srv.Close()
	for i := 0; i < 3; i++ {
		if _, err := rc.Call(ctx, "echo", nil); err == nil {
			t.Fatal("call succeeded against a dead server")
		}
	}
	if got := rc.Breaker().State(); got != rpc.BreakerOpen {
		t.Fatalf("state after %d failures = %v, want open", 3, got)
	}
	if _, err := rc.Call(ctx, "echo", nil); !errors.Is(err, rpc.ErrCircuitOpen) {
		t.Fatalf("open breaker err = %v, want ErrCircuitOpen", err)
	}
	if rc.Stats().Rejected == 0 {
		t.Fatal("open breaker shed nothing")
	}

	// Revive the server on the same address, wait out the cooldown, and
	// let the half-open probe through.
	srv2 := echoServer(t)
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("relisten: %v", err)
	}
	defer ln2.Close()
	go srv2.Serve(ln2)
	time.Sleep(cooldown + 20*time.Millisecond)

	out, err := rc.Call(ctx, "echo", []byte("probe"))
	if err != nil {
		t.Fatalf("half-open probe = %v", err)
	}
	if string(out) != "probe" {
		t.Fatalf("out = %q", out)
	}
	if got := rc.Breaker().State(); got != rpc.BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", got)
	}
	if rc.Breaker().Opens() != 1 {
		t.Fatalf("opens = %d, want 1", rc.Breaker().Opens())
	}
}

// Acceptance (b): a function killed mid-chain is respawned once by the
// gateway and the chain completes — over real TCP, reported into the
// controller's monitor, exactly the §3.2 respawn-and-continue path.
func TestChaosKilledFunctionMidChainRespawns(t *testing.T) {
	inj := chaos.NewInjector(3, chaos.Config{})
	// head ok, mid killed, mid respawn ok, tail ok.
	inj.Script(false, true, false, false)

	cfg := runtime.DefaultConfig()
	cfg.Retries = 0 // the gateway, not the runtime, must do the respawn
	cfg.Injector = inj
	rt := runtime.New(cfg, nil)
	defer rt.Close()
	for _, name := range []string{"head", "mid", "tail"} {
		rt.Register(name, func(ctx context.Context, in []byte) ([]byte, error) {
			return append(in, '|'), nil
		})
	}

	gcfg := runtime.DefaultGatewayConfig()
	gcfg.Timeout = 5 * time.Second
	gcfg.RespawnDelay = time.Millisecond
	g := runtime.NewGatewayConfig(rt, gcfg)
	mon := controller.NewMonitor()
	g.SetMonitor(mon)
	g.ExposeChain("pipeline", []string{"head", "mid", "tail"})
	defer g.Close()
	addr := serveTCP(t, g.Server())

	rc := rpc.DialReliable(addr, rpc.ReliableOptions{Callers: 4, Retry: fastRetry(2), Seed: 1})
	defer rc.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	out, err := rc.Call(ctx, "pipeline", []byte("x"))
	if err != nil {
		t.Fatalf("chain with killed step = %v", err)
	}
	if string(out) != "x|||" {
		t.Fatalf("out = %q", out)
	}
	if rt.Stats().Killed != 1 {
		t.Fatalf("killed = %d, want 1", rt.Stats().Killed)
	}
	if mon.Count("gateway-respawn") != 1 {
		t.Fatalf("gateway-respawn = %d, want 1", mon.Count("gateway-respawn"))
	}
	if inj.FaultCount("invoke/mid") != 1 {
		t.Fatalf("injected mid kills = %d", inj.FaultCount("invoke/mid"))
	}
}

// Tail latency under faults, cross-checked against the faas model: the
// live substrate completes every request despite seeded drops and
// latency spikes (retries hide the failures, inflating only the tail),
// and the queueing model predicts the same shape — 100% completion with
// failures respawned, per §3.2 / Fig. 5c.
func TestChaosTailLatencyCrossCheckedAgainstModel(t *testing.T) {
	// --- Live substrate under seeded transport chaos.
	addr := serveTCP(t, echoServer(t))
	inj := chaos.NewInjector(42, chaos.Config{
		DropProb:  0.03,
		DelayProb: 0.25,
		DelayMin:  time.Millisecond,
		DelayMax:  4 * time.Millisecond,
	})
	opts := rpc.ReliableOptions{
		Callers:     8,
		CallTimeout: 500 * time.Millisecond,
		Retry:       fastRetry(5),
		Seed:        42,
	}
	rc := rpc.NewReliableClient(func() (net.Conn, error) {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		return inj.WrapConn(c), nil
	}, opts)
	defer rc.Close()
	rc.MarkIdempotent("echo")

	const n = 60
	latencies := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		start := time.Now()
		_, err := rc.Call(ctx, "echo", []byte{byte(i)})
		cancel()
		if err != nil {
			t.Fatalf("call %d failed under chaos: %v", i, err)
		}
		latencies = append(latencies, time.Since(start).Seconds())
	}
	sort.Float64s(latencies)
	p50 := latencies[n/2]
	worst := latencies[n-1]
	// Chaos must actually bite (drops and delays injected) and the
	// client must actually recover (a retry mid-call or a reconnect
	// after a between-call drop).
	if st, is := rc.Stats(), inj.Stats(); st.Retries+st.Reconnects == 0 || is.Drops == 0 || is.Delays == 0 {
		t.Fatalf("chaos was a no-op: client=%+v injector=%+v", st, is)
	}
	if worst < p50 {
		t.Fatalf("tail %.4fs below median %.4fs", worst, p50)
	}

	// --- Queueing model with the matching failure regime.
	e := sim.NewEngine(42)
	mcfg := faas.DefaultConfig()
	mcfg.InterferenceCoef = 0
	mcfg.StragglerProb = 0
	mcfg.MonitoringOverhead = 0
	mcfg.FailureProb = 0.2
	cls := cluster.New(e, cluster.Config{Servers: 4, CoresPerServer: 8, MemGBPerServer: 64})
	p := faas.New(e, cls, mcfg)
	completed, respawns := 0, 0
	for i := 0; i < n; i++ {
		at := float64(i) * 0.01
		e.At(at, func() {
			p.Invoke(faas.FunctionSpec{Name: "echo", ExecS: 0.05, Parallelism: 1, MemGB: 1},
				func(r faas.Result) {
					completed++
					respawns += r.Respawns
				})
		})
	}
	e.Run()

	// Cross-check: both layers absorb failures without losing work.
	if completed != n {
		t.Fatalf("model completed %d/%d", completed, n)
	}
	if p.Failures() == 0 || respawns == 0 {
		t.Fatalf("model injected no failures (failures=%d respawns=%d)", p.Failures(), respawns)
	}
}
