// Sharded execution: one simulation partitioned across per-geo-cell
// Engines that advance concurrently under a conservative time-window
// protocol.
//
// The decomposition exploits the structure of the swarm model: devices
// interact with devices in other cells only through the wireless
// medium, and the medium has a minimum latency (MAC + propagation) it
// declares as its *lookahead* L. Any event a cell executes at virtual
// time t can therefore influence another cell no earlier than t+L.
// That bound makes the following window protocol safe:
//
//	w1 = min over cells of (earliest pending event time) + L
//
// Every cell runs independently up to w1 — no locks, no rollback —
// buffering cross-cell deliveries in a per-cell outbox. At the window
// barrier the outboxes are exchanged: because every send happened at
// some t >= minNext and was stamped at least L in the future, every
// delivery lands at or after w1, i.e. in a window nobody has simulated
// yet. Causality holds without ever peeking into a neighbour's queue.
//
// Determinism is by construction and independent of the worker count:
//
//   - the cell decomposition is fixed by the scenario, not by the
//     machine, and each cell's Engine seeds its RNG from
//     SeedFor(rootSeed, cellID) (a splitmix64 hash), so a cell draws
//     the same random stream whether one worker or sixteen advance
//     the cells;
//   - window boundaries depend only on queue minima, which are the
//     same under any scheduling of the independent cells;
//   - outboxes are drained in (source cell, send order) at the
//     barrier, so tie-breaking seq numbers in the destination engine
//     are assigned identically on every run.
//
// The -shards knob therefore only changes wall-clock time; reports are
// byte-identical at every setting, which is what the shard-parity CI
// lane asserts.
package sim

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// SeedFor derives the deterministic RNG seed for one cell of a sharded
// run from the root seed, using a splitmix64-style hash so nearby
// (seed, cell) pairs produce uncorrelated streams. Cell 0 of a 1-cell
// run and cell 0 of a 64-cell run see the same stream: a run's
// randomness depends on the decomposition, never on the worker count.
func SeedFor(root int64, cell int) int64 {
	z := uint64(root) + 0x9e3779b97f4a7c15*(uint64(cell)+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// LookaheadError reports a sharded configuration whose declared
// cross-cell lookahead cannot make the window protocol safe. A zero
// (or negative) lookahead would collapse every window to a point and
// let a cell influence a neighbour "now" — conservative synchronization
// is impossible, so the configuration is rejected up front.
type LookaheadError struct {
	LookaheadS Time
}

// Error implements error.
func (e *LookaheadError) Error() string {
	return fmt.Sprintf("sim: cross-cell lookahead must be positive, got %g s", e.LookaheadS)
}

// crossEvent is one buffered cross-cell delivery.
type crossEvent struct {
	to int
	at Time
	fn func()
}

// Cell is one shard of a sharded simulation: an Engine plus the outbox
// for cross-cell sends. Model code running inside a cell's events may
// use the cell's Engine freely and must route any interaction with
// state owned by another cell through Send.
type Cell struct {
	se  *ShardedEngine
	id  int
	eng *Engine
	out []crossEvent
	// executed accumulates events run by this cell; written only by
	// whichever worker holds the cell during a window.
	executed uint64
}

// ID returns the cell's index.
func (c *Cell) ID() int { return c.id }

// Engine returns the cell's private engine. Scheduling on it is only
// legal from the cell's own events (or before Run starts).
func (c *Cell) Engine() *Engine { return c.eng }

// Send schedules fn at absolute time at inside cell to. It must be
// called from within the sending cell's own event execution (or before
// Run starts). Cross-cell sends must respect the declared lookahead:
// at >= now + lookahead. Violating that bound is a model bug that
// would corrupt causality under parallel execution, so it panics just
// like scheduling in the past does on a plain Engine. Sends to the own
// cell are unconstrained — they are ordinary local events.
func (c *Cell) Send(to int, at Time, fn func()) {
	if to == c.id {
		c.eng.DeferAt(at, fn)
		return
	}
	if to < 0 || to >= len(c.se.cells) {
		panic(fmt.Sprintf("sim: send to unknown cell %d of %d", to, len(c.se.cells)))
	}
	if horizon := c.eng.now + c.se.lookahead; at < horizon {
		panic(fmt.Sprintf("sim: cross-cell send at %g violates lookahead horizon %g (now %g, lookahead %g)",
			at, horizon, c.eng.now, c.se.lookahead))
	}
	c.out = append(c.out, crossEvent{to: to, at: at, fn: fn})
}

// ShardedEngine executes one simulation partitioned into per-cell
// Engines under conservative time-window synchronization. Construct
// with NewSharded, populate the cells' engines, then Run.
type ShardedEngine struct {
	cells     []*Cell
	lookahead Time
	workers   int

	// Per-window scheduling state: windowEnd is published to workers
	// via the work channel send (happens-before), cursor hands out
	// cells to whichever worker is free.
	windowEnd Time
	cursor    atomic.Int64

	windows uint64
	crossed uint64
}

// NewSharded builds a sharded executive with the given number of cells.
// lookaheadS is the declared minimum cross-cell latency in seconds and
// must be positive (a zero lookahead makes conservative windows
// impossible; the typed *LookaheadError reports it). workers bounds how
// many OS goroutines advance cells concurrently — 0 means NumCPU. Each
// cell's engine is seeded from SeedFor(rootSeed, cell).
func NewSharded(rootSeed int64, cells int, lookaheadS Time, workers int) (*ShardedEngine, error) {
	if cells <= 0 {
		return nil, fmt.Errorf("sim: sharded run needs at least one cell, got %d", cells)
	}
	if lookaheadS <= 0 {
		return nil, &LookaheadError{LookaheadS: lookaheadS}
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > cells {
		workers = cells
	}
	se := &ShardedEngine{lookahead: lookaheadS, workers: workers}
	se.cells = make([]*Cell, cells)
	for i := range se.cells {
		se.cells[i] = &Cell{se: se, id: i, eng: NewEngine(SeedFor(rootSeed, i))}
	}
	return se, nil
}

// Cells returns the number of cells.
func (s *ShardedEngine) Cells() int { return len(s.cells) }

// Cell returns cell i.
func (s *ShardedEngine) Cell(i int) *Cell { return s.cells[i] }

// Workers returns the worker-goroutine bound.
func (s *ShardedEngine) Workers() int { return s.workers }

// Lookahead returns the declared cross-cell lookahead in seconds.
func (s *ShardedEngine) Lookahead() Time { return s.lookahead }

// Windows returns how many synchronization windows have executed.
func (s *ShardedEngine) Windows() uint64 { return s.windows }

// CrossMessages returns how many cross-cell deliveries have been
// exchanged at barriers so far.
func (s *ShardedEngine) CrossMessages() uint64 { return s.crossed }

// Steps sums executed events across cells.
func (s *ShardedEngine) Steps() uint64 {
	var n uint64
	for _, c := range s.cells {
		n += c.eng.Steps()
	}
	return n
}

// Now returns the synchronized virtual time. Between Run calls every
// cell's clock sits on the same window boundary.
func (s *ShardedEngine) Now() Time { return s.cells[0].eng.Now() }

// minNext returns the earliest pending event time across all cells
// (Infinity when every queue is empty). Cancelled events still count —
// a too-early window is merely a shorter safe window, never an unsafe
// one — and an empty cell contributes nothing, so it can never stall
// the protocol.
func (s *ShardedEngine) minNext() Time {
	min := Infinity
	for _, c := range s.cells {
		if h := c.eng.events; len(h) > 0 && h[0].at < min {
			min = h[0].at
		}
	}
	return min
}

// sweep advances cells to the current window end until none remain.
// Cells are handed out through an atomic cursor, so any number of
// workers can share the sweep without coordinating beyond the barrier.
func (s *ShardedEngine) sweep() {
	end := s.windowEnd
	n := len(s.cells)
	for {
		i := int(s.cursor.Add(1)) - 1
		if i >= n {
			return
		}
		c := s.cells[i]
		c.executed += c.eng.RunUntil(end)
	}
}

// exchange drains every outbox into the destination engines. Iteration
// order (source cell ascending, send order within a cell) is fixed, so
// the seq tie-breakers the destination engine assigns are identical on
// every run regardless of how the preceding window was scheduled. It
// reports how many messages moved.
func (s *ShardedEngine) exchange() int {
	moved := 0
	for _, c := range s.cells {
		for _, m := range c.out {
			dst := s.cells[m.to]
			// The lookahead bound guarantees at >= the window boundary
			// every clock now sits on, so this never schedules in the
			// destination's past.
			dst.eng.DeferAt(m.at, m.fn)
			moved++
		}
		c.out = c.out[:0]
	}
	s.crossed += uint64(moved)
	return moved
}

// Run executes events with timestamps <= limit across all cells and
// advances every cell's clock to exactly limit (mirroring
// Engine.RunUntil's window-stepping contract). It returns the number
// of events executed during this call.
func (s *ShardedEngine) Run(limit Time) uint64 {
	before := s.Steps()

	// Persistent workers for this Run call: each window hands them one
	// token; they sweep and hit the barrier. Spawned only when the
	// configuration actually allows parallelism.
	nw := s.workers
	if nw > len(s.cells) {
		nw = len(s.cells)
	}
	var (
		work    chan struct{}
		barrier sync.WaitGroup
	)
	if nw > 1 {
		work = make(chan struct{})
		for i := 0; i < nw-1; i++ {
			go func() {
				for range work {
					s.sweep()
					barrier.Done()
				}
			}()
		}
		defer close(work)
	}

	runWindow := func(end Time) {
		s.windowEnd = end
		s.cursor.Store(0)
		if nw > 1 {
			barrier.Add(nw - 1)
			for i := 0; i < nw-1; i++ {
				work <- struct{}{}
			}
		}
		s.sweep()
		if nw > 1 {
			barrier.Wait()
		}
		s.windows++
	}

	for {
		minNext := s.minNext()
		if minNext > limit || minNext >= Infinity {
			break
		}
		end := minNext + s.lookahead
		if end > limit {
			end = limit
		}
		runWindow(end)
		s.exchange()
	}

	// Land every clock exactly on limit, like RunUntil does for a
	// window boundary (queues may still hold events beyond limit).
	if limit < Infinity {
		for _, c := range s.cells {
			if c.eng.Now() < limit {
				c.eng.RunUntil(limit)
			}
		}
	}
	return s.Steps() - before
}
