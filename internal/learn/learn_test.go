package learn

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestClassifierPredictNearest(t *testing.T) {
	c := NewClassifier(2)
	c.Seed(0, []float64{0, 0}, 1)
	c.Seed(1, []float64{10, 10}, 1)
	if got := c.Predict([]float64{1, 1}); got != 0 {
		t.Fatalf("predict = %d", got)
	}
	if got := c.Predict([]float64{9, 9}); got != 1 {
		t.Fatalf("predict = %d", got)
	}
	if c.Classes() != 2 {
		t.Fatalf("classes = %d", c.Classes())
	}
}

func TestClassifierEmptyPredicts(t *testing.T) {
	c := NewClassifier(3)
	if got := c.Predict([]float64{1, 2, 3}); got != -1 {
		t.Fatalf("empty model predicted %d", got)
	}
}

func TestClassifierUpdateMovesCentroid(t *testing.T) {
	c := NewClassifier(1)
	c.Seed(0, []float64{0}, 1)
	for i := 0; i < 200; i++ {
		c.Update([]float64{4}, 0)
	}
	if got := c.Predict([]float64{3.5}); got != 0 {
		t.Fatal("centroid did not track updates")
	}
	// Centroid should be near 4 now; a fresh class far away.
	c.Update([]float64{-10}, 1)
	if got := c.Predict([]float64{-9}); got != 1 {
		t.Fatal("new class not learned from single update")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	a := NewClassifier(1)
	a.Seed(0, []float64{0}, 1)
	b := a.Clone()
	for i := 0; i < 100; i++ {
		b.Update([]float64{10}, 0)
	}
	a.Seed(1, []float64{100}, 1)
	if b.Classes() != 1 {
		t.Fatal("clone shares class map")
	}
	// a's class-0 centroid must be unmoved.
	if got := a.Predict([]float64{0.2}); got != 0 {
		t.Fatal("original centroid moved by clone updates")
	}
}

func TestInvalidDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	NewClassifier(0)
}

func TestSeedDimensionMismatchPanics(t *testing.T) {
	c := NewClassifier(2)
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	c.Seed(0, []float64{1}, 1)
}

func TestDomainShiftCausesErrors(t *testing.T) {
	domain, model := NewDomain(8, 3.0, 1.6, 1.0)
	rng := rand.New(rand.NewSource(5))
	var wrong, total float64
	for i := 0; i < 2000; i++ {
		label := i % 2
		x := domain.Observe(rng, label)
		if model.Predict(x) != label {
			wrong++
		}
		total++
	}
	errRate := wrong / total
	if errRate < 0.05 {
		t.Fatalf("domain shift too mild: error rate %.3f", errRate)
	}
	if errRate > 0.6 {
		t.Fatalf("domain shift too harsh: error rate %.3f", errRate)
	}
}

func TestFig15ShapeNoneVsSelfVsSwarm(t *testing.T) {
	cfg := DefaultTrial(16, 42)
	none, _ := RunTrial(ModeNone, cfg)
	self, _ := RunTrial(ModeSelf, cfg)
	swarm, _ := RunTrial(ModeSwarm, cfg)

	// Fig. 15 ordering: None < Self < Swarm on correctness; swarm-wide
	// retraining "quickly resolves any remaining false negatives and
	// false positives".
	if !(none.Correct < self.Correct && self.Correct < swarm.Correct) {
		t.Fatalf("ordering broken: none=%.3f self=%.3f swarm=%.3f",
			none.Correct, self.Correct, swarm.Correct)
	}
	if swarm.Correct < 0.97 {
		t.Fatalf("swarm retraining final accuracy %.3f, want ≥0.97", swarm.Correct)
	}
	if none.FalsePositives+none.FalseNegatives < 0.05 {
		t.Fatalf("none mode should show non-trivial errors, got %s", none)
	}
	if swarm.FalsePositives+swarm.FalseNegatives > 0.03 {
		t.Fatalf("swarm errors too high: %s", swarm)
	}
}

func TestSwarmConvergesFasterThanSelf(t *testing.T) {
	cfg := DefaultTrial(16, 7)
	_, selfTraj := RunTrial(ModeSelf, cfg)
	_, swarmTraj := RunTrial(ModeSwarm, cfg)
	// Compare accuracy at an early round: pooled data learns faster.
	round := 2
	if swarmTraj[round].Correct <= selfTraj[round].Correct {
		t.Fatalf("round %d: swarm %.3f not above self %.3f",
			round, swarmTraj[round].Correct, selfTraj[round].Correct)
	}
}

func TestTrajectoryLengthAndMonotoneImprovement(t *testing.T) {
	cfg := DefaultTrial(8, 11)
	_, traj := RunTrial(ModeSwarm, cfg)
	if len(traj) != cfg.Rounds {
		t.Fatalf("trajectory length = %d", len(traj))
	}
	if traj[len(traj)-1].Correct <= traj[0].Correct {
		t.Fatalf("no improvement: first %.3f last %.3f",
			traj[0].Correct, traj[len(traj)-1].Correct)
	}
}

func TestModeStrings(t *testing.T) {
	if ModeNone.String() != "none" || ModeSelf.String() != "self" || ModeSwarm.String() != "swarm" {
		t.Fatal("mode strings")
	}
	a := Accuracy{Correct: 0.9, FalsePositives: 0.06, FalseNegatives: 0.04}
	if a.String() == "" {
		t.Fatal("accuracy string")
	}
}

func TestTrialDeterminism(t *testing.T) {
	cfg := DefaultTrial(8, 99)
	a, _ := RunTrial(ModeSwarm, cfg)
	b, _ := RunTrial(ModeSwarm, cfg)
	if a != b {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}

// Property: accuracy components always sum to 1 and lie in [0,1].
func TestAccuracyInvariantProperty(t *testing.T) {
	prop := func(seed int64, devRaw uint8) bool {
		cfg := DefaultTrial(int(devRaw%8)+1, seed)
		cfg.Rounds = 3
		for _, mode := range []Mode{ModeNone, ModeSelf, ModeSwarm} {
			a, _ := RunTrial(mode, cfg)
			sum := a.Correct + a.FalsePositives + a.FalseNegatives
			if sum < 0.999 || sum > 1.001 {
				return false
			}
			if a.Correct < 0 || a.Correct > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
