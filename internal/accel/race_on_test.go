//go:build race

package accel_test

// raceEnabled gates the strict latency-ordering invariants in the
// fast-path validation; see race_off_test.go.
const raceEnabled = true
