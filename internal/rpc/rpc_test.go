package rpc

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func pipeClientServer(t *testing.T, srv *Server, callers int) *Client {
	t.Helper()
	cc, sc := Pair()
	srv.ServeConn(sc)
	c := NewClient(cc, callers)
	t.Cleanup(func() { c.Close(); srv.Close() })
	return c
}

func echoServer() *Server {
	s := NewServer()
	s.Register("echo", func(p []byte) ([]byte, error) { return p, nil })
	s.Register("fail", func(p []byte) ([]byte, error) { return nil, errors.New("boom") })
	return s
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := frame{kind: kindRequest, callID: 42, method: "faceRecognition", payload: []byte("payload")}
	if err := writeFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.kind != in.kind || out.callID != in.callID || out.method != in.method || string(out.payload) != "payload" {
		t.Fatalf("round trip mismatch: %+v", out)
	}
}

func TestFrameRejectsOversize(t *testing.T) {
	err := writeFrame(&bytes.Buffer{}, frame{payload: make([]byte, maxFrame)})
	if err == nil {
		t.Fatal("oversize frame accepted")
	}
	// Corrupt length prefix on read side.
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := readFrame(&buf); err == nil {
		t.Fatal("corrupt length accepted")
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, frame{kind: kindResponse, callID: 7}); err != nil {
		t.Fatal(err)
	}
	f, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if f.callID != 7 || len(f.payload) != 0 || f.method != "" {
		t.Fatalf("frame = %+v", f)
	}
}

func TestCallSyncEcho(t *testing.T) {
	c := pipeClientServer(t, echoServer(), 4)
	reply, err := c.CallSync("echo", []byte("hello swarm"))
	if err != nil {
		t.Fatal(err)
	}
	if string(reply) != "hello swarm" {
		t.Fatalf("reply = %q", reply)
	}
}

func TestCallHandlerError(t *testing.T) {
	c := pipeClientServer(t, echoServer(), 4)
	_, err := c.CallSync("fail", nil)
	if err == nil || err.Error() != "boom" {
		t.Fatalf("err = %v", err)
	}
}

func TestCallMethodNotFound(t *testing.T) {
	c := pipeClientServer(t, echoServer(), 4)
	_, err := c.CallSync("nope", nil)
	if err == nil || !strings.Contains(err.Error(), "method not found") {
		t.Fatalf("err = %v", err)
	}
}

func TestAsyncCallsComplete(t *testing.T) {
	c := pipeClientServer(t, echoServer(), 8)
	const n = 50
	done := make(chan *Call, n)
	for i := 0; i < n; i++ {
		c.Go("echo", []byte(fmt.Sprintf("msg-%d", i)), done)
	}
	seen := map[string]bool{}
	for i := 0; i < n; i++ {
		call := <-done
		if call.Err != nil {
			t.Fatal(call.Err)
		}
		seen[string(call.Reply)] = true
	}
	if len(seen) != n {
		t.Fatalf("distinct replies = %d", len(seen))
	}
}

func TestConcurrentCallersMultiplex(t *testing.T) {
	srv := NewServer()
	srv.Register("slow", func(p []byte) ([]byte, error) {
		time.Sleep(10 * time.Millisecond)
		return p, nil
	})
	c := pipeClientServer(t, srv, 16)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.CallSync("slow", []byte("x")); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	// 16 concurrent 10ms calls should overlap, not serialize to 160ms.
	if elapsed := time.Since(start); elapsed > 120*time.Millisecond {
		t.Fatalf("calls serialized: %v", elapsed)
	}
}

func TestClientCloseFailsPending(t *testing.T) {
	srv := NewServer()
	block := make(chan struct{})
	srv.Register("block", func(p []byte) ([]byte, error) {
		<-block
		return nil, nil
	})
	cc, sc := Pair()
	srv.ServeConn(sc)
	c := NewClient(cc, 4)
	call := c.Go("block", nil, nil)
	time.Sleep(5 * time.Millisecond)
	c.Close()
	select {
	case <-call.Done:
		if !errors.Is(call.Err, ErrClosed) {
			t.Fatalf("err = %v", call.Err)
		}
	case <-time.After(time.Second):
		t.Fatal("pending call not failed on close")
	}
	close(block)
	srv.Close()
}

func TestCallAfterCloseFailsFast(t *testing.T) {
	c := pipeClientServer(t, echoServer(), 4)
	c.Close()
	if _, err := c.CallSync("echo", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v", err)
	}
}

func TestServerOverTCP(t *testing.T) {
	srv := echoServer()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()
	c, err := Dial(ln.Addr().String(), 8)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	reply, err := c.CallSync("echo", []byte("over tcp"))
	if err != nil || string(reply) != "over tcp" {
		t.Fatalf("reply=%q err=%v", reply, err)
	}
}

func TestServerCloseUnblocksServe(t *testing.T) {
	srv := echoServer()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ln) }()
	time.Sleep(10 * time.Millisecond)
	srv.Close()
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("Serve returned %v after Close", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Serve did not return after Close")
	}
}

func TestServeConnAfterCloseRejected(t *testing.T) {
	srv := echoServer()
	srv.Close()
	cc, sc := Pair()
	srv.ServeConn(sc)
	c := NewClient(cc, 1)
	defer c.Close()
	if _, err := c.CallSync("echo", nil); err == nil {
		t.Fatal("call succeeded on closed server")
	}
}

func TestRegisterReplacesHandler(t *testing.T) {
	srv := NewServer()
	srv.Register("m", func(p []byte) ([]byte, error) { return []byte("v1"), nil })
	srv.Register("m", func(p []byte) ([]byte, error) { return []byte("v2"), nil })
	c := pipeClientServer(t, srv, 2)
	reply, err := c.CallSync("m", nil)
	if err != nil || string(reply) != "v2" {
		t.Fatalf("reply=%q err=%v", reply, err)
	}
	if got := srv.Methods(); len(got) != 1 || got[0] != "m" {
		t.Fatalf("methods = %v", got)
	}
}

// Property: arbitrary binary payloads echo back unchanged over the full
// client/server stack.
func TestEchoPayloadFidelityProperty(t *testing.T) {
	c := pipeClientServer(t, echoServer(), 8)
	prop := func(payload []byte) bool {
		reply, err := c.CallSync("echo", payload)
		return err == nil && bytes.Equal(reply, payload)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
