package rpc

import (
	"sync"
	"testing"
)

func benchPair(b *testing.B, callers int) *Client {
	b.Helper()
	srv := NewServer()
	srv.Register("echo", func(p []byte) ([]byte, error) { return p, nil })
	cc, sc := Pair()
	srv.ServeConn(sc)
	c := NewClient(cc, callers)
	b.Cleanup(func() { c.Close(); srv.Close() })
	return c
}

// BenchmarkCallSync64B measures small-RPC round trips over the
// in-process transport (the software baseline the FPGA offload is
// compared against).
func BenchmarkCallSync64B(b *testing.B) {
	c := benchPair(b, 8)
	payload := make([]byte, 64)
	b.SetBytes(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.CallSync("echo", payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCallSync1MB measures bulk payload round trips.
func BenchmarkCallSync1MB(b *testing.B) {
	c := benchPair(b, 8)
	payload := make([]byte, 1<<20)
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.CallSync("echo", payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelinedCalls measures multiplexed in-flight throughput
// through the caller pool.
func BenchmarkPipelinedCalls(b *testing.B) {
	c := benchPair(b, 64)
	payload := make([]byte, 64)
	var wg sync.WaitGroup
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wg.Add(1)
		call := c.Go("echo", payload, make(chan *Call, 1))
		go func() {
			defer wg.Done()
			<-call.Done
		}()
	}
	wg.Wait()
}
