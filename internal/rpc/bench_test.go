package rpc

import (
	"net"
	"sync"
	"testing"
)

func benchPair(b *testing.B, callers int) *Client {
	b.Helper()
	srv := NewServer()
	srv.Register("echo", func(p []byte) ([]byte, error) { return p, nil })
	cc, sc := Pair()
	srv.ServeConn(sc)
	c := NewClient(cc, callers)
	b.Cleanup(func() { c.Close(); srv.Close() })
	return c
}

// benchTCP is benchPair over a real TCP loopback socket, so the
// benchmarks also measure actual syscall and kernel-buffer behaviour
// (net.Pipe is a synchronous in-process rendezvous with no buffering).
func benchTCP(b *testing.B, callers int) *Client {
	b.Helper()
	srv := NewServer()
	srv.Register("echo", func(p []byte) ([]byte, error) { return p, nil })
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		srv.ServeConn(conn)
	}()
	cc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	c := NewClient(cc, callers)
	b.Cleanup(func() {
		c.Close()
		srv.Close()
		ln.Close()
		<-done
	})
	return c
}

// BenchmarkCallSync64B measures small-RPC round trips over the
// in-process transport (the software baseline the FPGA offload is
// compared against).
func BenchmarkCallSync64B(b *testing.B) {
	c := benchPair(b, 8)
	payload := make([]byte, 64)
	b.SetBytes(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.CallSync("echo", payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCallSync1MB measures bulk payload round trips.
func BenchmarkCallSync1MB(b *testing.B) {
	c := benchPair(b, 8)
	payload := make([]byte, 1<<20)
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.CallSync("echo", payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelinedCalls measures multiplexed in-flight throughput
// through the caller pool.
func BenchmarkPipelinedCalls(b *testing.B) {
	c := benchPair(b, 64)
	payload := make([]byte, 64)
	var wg sync.WaitGroup
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wg.Add(1)
		call := c.Go("echo", payload, make(chan *Call, 1))
		go func() {
			defer wg.Done()
			<-call.Done
		}()
	}
	wg.Wait()
}

// BenchmarkCallSync64BTCP is BenchmarkCallSync64B over TCP loopback:
// every frame crosses the kernel, so write coalescing and buffered
// reads show up as fewer syscalls per call.
func BenchmarkCallSync64BTCP(b *testing.B) {
	c := benchTCP(b, 8)
	payload := make([]byte, 64)
	b.SetBytes(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.CallSync("echo", payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelinedCallsTCP measures multiplexed throughput over TCP
// loopback, where the coalescing writer batches the pipelined frames
// into far fewer syscalls than one-write-per-frame.
func BenchmarkPipelinedCallsTCP(b *testing.B) {
	c := benchTCP(b, 64)
	payload := make([]byte, 64)
	var wg sync.WaitGroup
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wg.Add(1)
		call := c.Go("echo", payload, make(chan *Call, 1))
		go func() {
			defer wg.Done()
			<-call.Done
		}()
	}
	wg.Wait()
}
