package chaos_test

import (
	"context"
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"hivemind/internal/chaos"
	"hivemind/internal/controller"
	"hivemind/internal/rpc"
	"hivemind/internal/runtime"
	"hivemind/internal/store"
)

// These suites are the durability half of the §4.7 acceptance story:
// the control-plane state (checkpoints, step outputs, fence) lives in
// a WAL-backed store, the whole replica set crashes, and a fresh
// cluster recovered from the WAL directory finishes the interrupted
// work with exactly-once effects. Every store mutation is term-fenced
// through the fronting replica's LeaderTerm, so the suites double as
// the fencing integration tests.

// ctrlName labels a replica for pair-wise partitions.
func ctrlName(id int) string { return fmt.Sprintf("ctrl-%d", id) }

// startDurableCluster boots n controller replicas fronting gateways
// over a SHARED store db (the replicated CouchDB stand-in), with the
// full fencing loop wired: checkpoint writes carry the replica's
// LeaderTerm, promotion raises the store fence, and a fenced write
// steps the deposed replica down. pairNet additionally tags every
// controller peer connection with WrapConnPair so tests can cut
// individual replica links.
func startDurableCluster(t *testing.T, n int, seed int64, mon *controller.Monitor,
	inj *chaos.Injector, db *store.DB, chain []string, fns map[string]runtime.Function,
	pairNet bool) []*failNode {
	t.Helper()

	ctrlLns := make([]net.Listener, n)
	ctrlAddrs := make([]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ctrlLns[i] = ln
		ctrlAddrs[i] = ln.Addr().String()
	}

	nodes := make([]*failNode, n)
	for i := 0; i < n; i++ {
		rcfg := runtime.DefaultConfig()
		rcfg.Retries = 0
		rt := runtime.New(rcfg, db)
		for name, fn := range fns {
			rt.Register(name, fn)
		}

		var gwPtr atomic.Pointer[runtime.Gateway]
		ccfg := fastCtrlConfig(i, n, seed)
		ccfg.Fault = inj
		// Resume terms from the store's fence: a cluster restarted over
		// recovered state must out-term the fence to write at all.
		ccfg.InitialTerm = db.Fence()
		ccfg.Recover = func(ctx context.Context) (int, error) {
			if g := gwPtr.Load(); g != nil {
				return g.Recover(ctx)
			}
			return 0, nil
		}
		// Promotion raises the shared store's fence to the won term
		// before the first recovered write, closing the window where a
		// deposed primary's in-flight mutations could still land.
		ccfg.OnPromote = func(term uint64) { db.RaiseFence(term) }
		peers := make(map[int]func() (net.Conn, error), n-1)
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			addr := ctrlAddrs[j]
			me, them := ctrlName(i), ctrlName(j)
			peers[j] = func() (net.Conn, error) {
				c, err := net.Dial("tcp", addr)
				if err != nil {
					return nil, err
				}
				if pairNet {
					return inj.WrapConnPair(c, me, them), nil
				}
				return c, nil
			}
		}
		rep := controller.NewReplica(ccfg, peers, mon)

		gcfg := runtime.DefaultGatewayConfig()
		gcfg.Timeout = 10 * time.Second
		gcfg.RespawnDelay = gwRespawnDelay
		gcfg.Checkpoints = store.NewFencedCheckpointLog(db, rep.LeaderTerm)
		gcfg.Admission = rep.Admission()
		gcfg.Tracker = rep
		gcfg.OnFenced = rep.StepDown
		g := runtime.NewGatewayConfig(rt, gcfg)
		g.SetMonitor(mon)
		g.ExposeChain("pipeline", chain)
		gwPtr.Store(g)

		gln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go g.Server().Serve(gln)
		go rep.Server().Serve(ctrlLns[i])

		nodes[i] = &failNode{id: i, replica: rep, rt: rt, gw: g, gwAddr: gln.Addr().String()}
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.replica.Kill()
			nd.gw.Close()
			nd.rt.Close()
		}
	})
	for _, nd := range nodes {
		nd.replica.Start()
	}
	return nodes
}

// crashCluster kills every node abruptly — the store object is
// abandoned WITHOUT Close, exactly as a process crash would leave it:
// only what the WAL already wrote survives.
func crashCluster(nodes []*failNode) {
	for _, nd := range nodes {
		nd.replica.Kill()
		nd.gw.Close()
		nd.rt.Close()
	}
}

// plainChain is the 3-tier pipeline with no blocking — the function
// set a restarted cluster registers so recovered orphans run through.
func plainChain() (chain []string, fns map[string]runtime.Function) {
	mk := func(suffix string) runtime.Function {
		return func(ctx context.Context, in []byte) ([]byte, error) {
			return append(append([]byte{}, in...), suffix...), nil
		}
	}
	fns = map[string]runtime.Function{"head": mk(".h"), "mid": mk(".m"), "tail": mk(".t")}
	return []string{"head", "mid", "tail"}, fns
}

// waitNoOrphans polls until the checkpoint log drains.
func waitNoOrphans(t *testing.T, log *store.CheckpointLog, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		orphans, err := log.Orphans()
		if err == nil && len(orphans) == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("orphans never drained; remaining: %v (err %v)", orphans, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// assertExactlyOnce checks every step output of a task committed at
// generation 1 with the expected lineage.
func assertExactlyOnce(t *testing.T, db *store.DB, taskID string) {
	t.Helper()
	want := []string{"x.h", "x.h.m", "x.h.m.t"}
	for step := 0; step < 3; step++ {
		doc, err := db.Get(store.StepOutputKey(taskID, step))
		if err != nil {
			t.Fatalf("task %s step %d output missing: %v", taskID, step, err)
		}
		if g := store.RevGen(doc.Rev); g != 1 {
			t.Fatalf("task %s step %d committed %d times, want exactly once", taskID, step, g)
		}
		if string(doc.Body) != want[step] {
			t.Fatalf("task %s step %d output = %q, want %q", taskID, step, doc.Body, want[step])
		}
	}
}

// Acceptance: the WHOLE cluster crashes mid-chain (not just the
// primary — process state is gone), a fresh cluster recovers the store
// from the WAL directory, and the interrupted task completes with
// exactly-once step effects.
func TestCrashRestartE2ERecoversFromWAL(t *testing.T) {
	dir := t.TempDir()
	db, _, err := store.OpenDurable(dir, store.DurableOptions{
		Fsync: store.FsyncNever, CompactEvery: store.NoAutoCompact,
	})
	if err != nil {
		t.Fatal(err)
	}
	mon := controller.NewMonitor()
	inj := chaos.NewInjector(11, chaos.Config{})
	midEntered := make(chan struct{}, 1)
	chain, fns := blockingMid(midEntered)
	nodes := startDurableCluster(t, 3, 11, mon, inj, db, chain, fns, false)
	primary := waitPrimary(t, nodes, 3*time.Second)

	conn, err := net.Dial("tcp", primary.gwAddr)
	if err != nil {
		t.Fatal(err)
	}
	cl := rpc.NewClient(conn, 4)
	defer cl.Close()
	callDone := make(chan error, 1)
	go func() {
		_, cerr := cl.Call(context.Background(), "pipeline", runtime.EncodeTask("task-crash", []byte("x")))
		callDone <- cerr
	}()
	select {
	case <-midEntered:
	case <-time.After(5 * time.Second):
		t.Fatal("chain never reached the mid tier")
	}

	// Crash everything. The head output and the write-ahead checkpoint
	// (NextStep=1) are on disk; the mid tier's work is lost with the
	// processes.
	crashCluster(nodes)
	select {
	case cerr := <-callDone:
		if cerr == nil {
			t.Fatal("call through the crashed cluster reported success")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("client call never failed after the crash")
	}

	// Recover the store from the WAL directory and prove the crash left
	// an enumerable orphan.
	db2, st, err := store.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.WALRecords == 0 {
		t.Fatal("recovery replayed no WAL records")
	}
	orphans, err := store.NewCheckpointLog(db2).Orphans()
	if err != nil {
		t.Fatal(err)
	}
	if len(orphans) != 1 || orphans[0].TaskID != "task-crash" || orphans[0].NextStep != 1 {
		t.Fatalf("orphans after recovery = %+v, want task-crash at step 1", orphans)
	}

	// A fresh cluster over the recovered store finishes the task via the
	// new primary's orphan re-dispatch.
	chain2, fns2 := plainChain()
	startDurableCluster(t, 3, 12, mon, inj, db2, chain2, fns2, false)
	waitNoOrphans(t, store.NewCheckpointLog(db2), 10*time.Second)
	assertExactlyOnce(t, db2, "task-crash")

	if db2.Fence() == 0 {
		t.Fatal("recovered cluster's promotion never raised the store fence")
	}
	if mon.Count(controller.EventOrphanRedispatch) < 1 {
		t.Fatal("no orphan re-dispatch recorded")
	}
}

// Acceptance: snapshot+compaction runs underneath live traffic, and a
// crash afterwards recovers from the compacted snapshot plus a short
// WAL tail — recovery work is bounded by live state, not by the full
// mutation history the traffic generated.
func TestSnapshotMidTrafficE2EBoundedRecovery(t *testing.T) {
	const tasks = 25
	const compactEvery = 32
	dir := t.TempDir()
	mon := controller.NewMonitor()
	db, _, err := store.OpenDurable(dir, store.DurableOptions{
		Fsync: store.FsyncNever, CompactEvery: compactEvery, Monitor: mon,
	})
	if err != nil {
		t.Fatal(err)
	}
	inj := chaos.NewInjector(13, chaos.Config{})
	chain, fns := plainChain()
	nodes := startDurableCluster(t, 3, 13, mon, inj, db, chain, fns, false)
	waitPrimary(t, nodes, 3*time.Second)

	addrs := make([]string, len(nodes))
	for i, nd := range nodes {
		addrs[i] = nd.gwAddr
	}
	fc := rpc.DialFailover(addrs, rpc.FailoverOptions{CallTimeout: 5 * time.Second})
	defer fc.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i := 0; i < tasks; i++ {
		out, cerr := fc.Call(ctx, "pipeline", runtime.EncodeTask(fmt.Sprintf("bulk-%d", i), []byte("x")))
		if cerr != nil {
			t.Fatalf("task %d failed: %v", i, cerr)
		}
		if string(out) != "x.h.m.t" {
			t.Fatalf("task %d output = %q", i, out)
		}
	}
	if mon.Count(store.MetricSnapshot) == 0 {
		t.Fatalf("no compaction fired under %d tasks with CompactEvery=%d", tasks, compactEvery)
	}

	crashCluster(nodes)
	db2, st, err := store.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Each durable chain is ~9 store mutations; without compaction the
	// WAL would hold ~9×tasks records. Recovery must replay at most one
	// compaction window's worth.
	if st.WALRecords >= 2*compactEvery {
		t.Fatalf("recovery replayed %d WAL records — compaction did not bound it (CompactEvery=%d)",
			st.WALRecords, compactEvery)
	}
	if st.SnapshotDocs == 0 {
		t.Fatal("recovery loaded no snapshot")
	}
	for i := 0; i < tasks; i++ {
		assertExactlyOnce(t, db2, fmt.Sprintf("bulk-%d", i))
	}
	orphans, err := store.NewCheckpointLog(db2).Orphans()
	if err != nil {
		t.Fatal(err)
	}
	if len(orphans) != 0 {
		t.Fatalf("completed traffic left orphans: %+v", orphans)
	}
	db2.Close()
}
