// Package trace records structured spans from simulation runs and
// exports them in the Chrome trace-event format (chrome://tracing /
// Perfetto), giving the same visibility the paper's monitoring system
// provides over application progress (§4.7): per-task pipelines broken
// into network / management / data-IO / execution phases, per device
// and per backend server.
//
// Spans use virtual simulation time expressed in microseconds, so a
// trace of a 120-second run opens directly in any trace viewer.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
)

// Span is one timed operation.
type Span struct {
	Name     string            // e.g. "S1 task", "upload", "exec"
	Category string            // e.g. "network", "management"
	Track    string            // lane: "drone-3", "server-7", "controller"
	StartS   float64           // virtual time, seconds
	EndS     float64           // virtual time, seconds
	Args     map[string]string // extra key/values shown in the viewer
}

// Valid reports whether the span is well-formed.
func (s Span) Valid() bool {
	return s.Name != "" && s.Track != "" && s.EndS >= s.StartS
}

// Instant is a zero-duration marker (device failure, repartition, ...).
type Instant struct {
	Name   string
	Track  string
	AtS    float64
	Args   map[string]string
	Global bool // render across all tracks
}

// Recorder collects spans. Safe for concurrent use (the real runtime
// traces from goroutines; the simulator from one).
type Recorder struct {
	mu              sync.Mutex
	spans           []Span
	instants        []Instant
	enabled         bool
	dropped         int
	droppedInstants int
	limit           int
}

// NewRecorder returns an enabled recorder. limit bounds retained spans
// and instants independently (0 = 1<<20); beyond it entries are counted
// as dropped rather than growing without bound.
func NewRecorder(limit int) *Recorder {
	if limit <= 0 {
		limit = 1 << 20
	}
	return &Recorder{enabled: true, limit: limit}
}

// SetEnabled toggles collection.
func (r *Recorder) SetEnabled(on bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.enabled = on
}

// Add records a span.
func (r *Recorder) Add(s Span) {
	if !s.Valid() {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.enabled {
		return
	}
	if len(r.spans) >= r.limit {
		r.dropped++
		return
	}
	r.spans = append(r.spans, s)
}

// Mark records an instant event. Instants honour the same retention
// limit as spans: a long live run emitting failure/repartition markers
// must not grow the recorder without bound.
func (r *Recorder) Mark(i Instant) {
	if i.Name == "" {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.enabled {
		return
	}
	if len(r.instants) >= r.limit {
		r.droppedInstants++
		return
	}
	r.instants = append(r.instants, i)
}

// Len returns the number of retained spans.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.spans)
}

// InstantsLen returns the number of retained instants.
func (r *Recorder) InstantsLen() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.instants)
}

// Dropped returns how many spans exceeded the retention limit.
func (r *Recorder) Dropped() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// DroppedInstants returns how many instants exceeded the retention
// limit.
func (r *Recorder) DroppedInstants() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.droppedInstants
}

// Spans returns a copy of retained spans, ordered by start time.
func (r *Recorder) Spans() []Span {
	r.mu.Lock()
	out := make([]Span, len(r.spans))
	copy(out, r.spans)
	r.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].StartS < out[j].StartS })
	return out
}

// chromeEvent is one entry of the Chrome trace-event JSON array.
type chromeEvent struct {
	Name  string            `json:"name"`
	Cat   string            `json:"cat,omitempty"`
	Phase string            `json:"ph"`
	TsUS  float64           `json:"ts"`
	DurUS float64           `json:"dur,omitempty"`
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Scope string            `json:"s,omitempty"`
	Args  map[string]string `json:"args,omitempty"`
}

// WriteChromeTrace serialises the recording as a Chrome trace-event
// JSON array. Tracks map to thread lanes in a single process, sorted
// by name for stable output.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	r.mu.Lock()
	spans := make([]Span, len(r.spans))
	copy(spans, r.spans)
	instants := make([]Instant, len(r.instants))
	copy(instants, r.instants)
	dropped, droppedInstants := r.dropped, r.droppedInstants
	r.mu.Unlock()

	trackIDs := map[string]int{}
	trackID := func(name string) int {
		if id, ok := trackIDs[name]; ok {
			return id
		}
		id := len(trackIDs) + 1
		trackIDs[name] = id
		return id
	}
	// Pre-assign lanes in sorted track order for stable ids.
	names := map[string]bool{}
	for _, s := range spans {
		names[s.Track] = true
	}
	for _, i := range instants {
		if i.Track != "" {
			names[i.Track] = true
		}
	}
	var sorted []string
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	for _, n := range sorted {
		trackID(n)
	}

	events := make([]chromeEvent, 0, len(spans)+len(instants)+len(sorted))
	for _, n := range sorted {
		events = append(events, chromeEvent{
			Name: "thread_name", Phase: "M", PID: 1, TID: trackIDs[n],
			Args: map[string]string{"name": n},
		})
	}
	for _, s := range spans {
		events = append(events, chromeEvent{
			Name: s.Name, Cat: s.Category, Phase: "X",
			TsUS: s.StartS * 1e6, DurUS: (s.EndS - s.StartS) * 1e6,
			PID: 1, TID: trackIDs[s.Track], Args: s.Args,
		})
	}
	for _, i := range instants {
		ev := chromeEvent{
			Name: i.Name, Phase: "i", TsUS: i.AtS * 1e6, PID: 1,
			Scope: "t", Args: i.Args,
		}
		if i.Global {
			ev.Scope = "g"
		}
		if i.Track != "" {
			ev.TID = trackIDs[i.Track]
		} else {
			ev.TID = 0
		}
		events = append(events, ev)
	}
	// Account for retention-limit drops in-band, so a truncated trace is
	// distinguishable from a complete one. Emitted only when something
	// was actually dropped: complete traces keep their exact shape.
	if dropped > 0 || droppedInstants > 0 {
		var last float64
		for _, s := range spans {
			if us := s.EndS * 1e6; us > last {
				last = us
			}
		}
		for _, i := range instants {
			if us := i.AtS * 1e6; us > last {
				last = us
			}
		}
		events = append(events, chromeEvent{
			Name: "trace truncated", Phase: "i", TsUS: last, PID: 1, TID: 0, Scope: "g",
			Args: map[string]string{
				"dropped_spans":    strconv.Itoa(dropped),
				"dropped_instants": strconv.Itoa(droppedInstants),
			},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}

// Summary renders per-category totals, a quick textual profile.
func (r *Recorder) Summary() string {
	totals := map[string]float64{}
	counts := map[string]int{}
	for _, s := range r.Spans() {
		key := s.Category
		if key == "" {
			key = s.Name
		}
		totals[key] += s.EndS - s.StartS
		counts[key]++
	}
	var keys []string
	for k := range totals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for _, k := range keys {
		out += fmt.Sprintf("%-14s %6d spans %10.3fs total\n", k, counts[k], totals[k])
	}
	return out
}
