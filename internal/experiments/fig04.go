package experiments

import (
	"hivemind/internal/platform"
	"hivemind/internal/scenario"
	"hivemind/internal/stats"
)

func init() {
	register("fig04", "Task latency distributions: centralized cloud vs distributed edge", fig04)
	register("fig11", "Task latency distributions: centralized vs distributed vs HiveMind", fig11)
	register("fig12", "Tail latency breakdown: centralized vs HiveMind", fig12)
}

// latencyRow summarises one job under one system.
func latencyRow(tb *stats.Table, name, system string, s *stats.Sample) {
	sm := s.Summarize()
	tb.AddRow(name, system, sm.P25, sm.P50, sm.P75, sm.P99, sm.CV)
}

// fig04 reproduces Fig. 4: per-job task-latency distributions under
// fully centralized and fully distributed execution, plus scenario job
// latencies.
func fig04(cfg RunConfig) *Report {
	rep := &Report{ID: "fig04", Title: "Centralized vs distributed latency distributions (Fig. 4)"}
	tb := stats.NewTable("Fig. 4a: task latency (s)",
		"job", "system", "p25", "p50", "p75", "p99", "cv")
	wins := map[string]int{}
	ps := suite(cfg)
	type pair struct{ cen, dist platform.JobResult }
	pairs := mapPar(cfg, len(ps), func(i int) pair {
		return pair{
			cen:  runJobOn(platform.CentralizedFaaS, ps[i], cfg, defaultDevices),
			dist: runJobOn(platform.DistributedEdge, ps[i], cfg, defaultDevices),
		}
	})
	for i, p := range ps {
		cen, dist := pairs[i].cen, pairs[i].dist
		latencyRow(tb, string(p.ID), "centralized", cen.Latency)
		latencyRow(tb, string(p.ID), "distributed", dist.Latency)
		rep.SetValue("cen_p50_"+string(p.ID), cen.Latency.Median())
		rep.SetValue("dist_p50_"+string(p.ID), dist.Latency.Median())
		if cen.Latency.Median() < dist.Latency.Median() {
			wins["centralized"]++
		} else {
			wins["distributed"]++
		}
	}
	rep.Tables = append(rep.Tables, tb)

	tb2 := stats.NewTable("Fig. 4b: scenario job latency (s)",
		"scenario", "system", "completion_s", "completed")
	scens := []scenario.Kind{scenario.ScenarioA, scenario.ScenarioB}
	sysKinds := []platform.SystemKind{platform.CentralizedFaaS, platform.DistributedEdge}
	scenRes := mapPar(cfg, len(scens)*len(sysKinds), func(i int) scenario.Result {
		return runScenarioOn(scens[i/len(sysKinds)], sysKinds[i%len(sysKinds)], cfg, defaultDevices)
	})
	for ki, k := range scens {
		for si, sk := range sysKinds {
			r := scenRes[ki*len(sysKinds)+si]
			tb2.AddRow(k.String(), sk.String(), r.CompletionS, r.Completed)
			rep.SetValue("scen_"+k.String()+"_"+sk.String(), r.CompletionS)
		}
	}
	rep.Tables = append(rep.Tables, tb2)
	rep.SetValue("centralized_wins", float64(wins["centralized"]))
	rep.SetValue("distributed_wins", float64(wins["distributed"]))
	rep.AddNote("centralized wins %d jobs, distributed %d (paper: centralized wins most; S3/S7 comparable, S4 better at the edge)",
		wins["centralized"], wins["distributed"])
	return rep
}

// fig11 reproduces Fig. 11: the same distributions with HiveMind added.
func fig11(cfg RunConfig) *Report {
	rep := &Report{ID: "fig11", Title: "HiveMind latency distributions (Fig. 11)"}
	tb := stats.NewTable("Fig. 11: task latency (s)",
		"job", "system", "p25", "p50", "p75", "p99", "cv")
	var speedups []float64
	ps := suite(cfg)
	type triple struct{ cen, dist, hm platform.JobResult }
	triples := mapPar(cfg, len(ps), func(i int) triple {
		return triple{
			cen:  runJobOn(platform.CentralizedFaaS, ps[i], cfg, defaultDevices),
			dist: runJobOn(platform.DistributedEdge, ps[i], cfg, defaultDevices),
			hm:   runJobOn(platform.HiveMind, ps[i], cfg, defaultDevices),
		}
	})
	for i, p := range ps {
		cen, dist, hm := triples[i].cen, triples[i].dist, triples[i].hm
		latencyRow(tb, string(p.ID), "centralized", cen.Latency)
		latencyRow(tb, string(p.ID), "distributed", dist.Latency)
		latencyRow(tb, string(p.ID), "hivemind", hm.Latency)
		sp := cen.Latency.Median() / hm.Latency.Median()
		speedups = append(speedups, sp)
		rep.SetValue("speedup_"+string(p.ID), sp)
		rep.SetValue("hm_cv_"+string(p.ID), hm.Latency.CV())
		rep.SetValue("cen_cv_"+string(p.ID), cen.Latency.CV())
	}
	rep.Tables = append(rep.Tables, tb)

	tb2 := stats.NewTable("Fig. 11b: scenario job latency (s)",
		"scenario", "system", "completion_s", "completed")
	scens := []scenario.Kind{scenario.ScenarioA, scenario.ScenarioB}
	sysKinds := []platform.SystemKind{platform.CentralizedFaaS, platform.DistributedEdge, platform.HiveMind}
	scenRes := mapPar(cfg, len(scens)*len(sysKinds), func(i int) scenario.Result {
		return runScenarioOn(scens[i/len(sysKinds)], sysKinds[i%len(sysKinds)], cfg, defaultDevices)
	})
	for ki, k := range scens {
		for si, sk := range sysKinds {
			r := scenRes[ki*len(sysKinds)+si]
			tb2.AddRow(k.String(), sk.String(), r.CompletionS, r.Completed)
		}
	}
	rep.Tables = append(rep.Tables, tb2)

	var sum, max float64
	for _, s := range speedups {
		sum += s
		if s > max {
			max = s
		}
	}
	mean := sum / float64(len(speedups))
	rep.SetValue("speedup_mean", mean)
	rep.SetValue("speedup_max", max)
	rep.AddNote("HiveMind vs centralized: mean %.2fx, max %.2fx (paper: 56%% better on average, up to 2.85x)", mean, max)
	return rep
}

// fig12 reproduces Fig. 12: the stage decomposition that explains where
// HiveMind's gains come from.
func fig12(cfg RunConfig) *Report {
	rep := &Report{ID: "fig12", Title: "Latency breakdown: centralized vs HiveMind (Fig. 12)"}
	tb := stats.NewTable("Fig. 12: mean stage latency (s)",
		"job", "system", "network", "management", "dataio", "execution", "net_frac_%")

	var cenNet, hmNet []float64
	add := func(job, system string, bd *stats.Breakdown, sink *[]float64) {
		n := bd.Stage(stats.StageNetwork).Mean()
		m := bd.Stage(stats.StageManagement).Mean()
		d := bd.Stage(stats.StageDataIO).Mean()
		e := bd.Stage(stats.StageExecution).Mean()
		frac := bd.MeanFraction(stats.StageNetwork)
		tb.AddRow(job, system, n, m, d, e, frac*100)
		*sink = append(*sink, frac)
		rep.SetValue(system+"_exec_"+job, e)
		rep.SetValue(system+"_dataio_"+job, d)
		rep.SetValue(system+"_mgmt_"+job, m)
	}
	ps := suite(cfg)
	type pair struct{ cen, hm platform.JobResult }
	pairs := mapPar(cfg, len(ps), func(i int) pair {
		return pair{
			cen: runJobOn(platform.CentralizedFaaS, ps[i], cfg, defaultDevices),
			hm:  runJobOn(platform.HiveMind, ps[i], cfg, defaultDevices),
		}
	})
	for i, p := range ps {
		add(string(p.ID), "centralized", pairs[i].cen.Breakdown, &cenNet)
		add(string(p.ID), "hivemind", pairs[i].hm.Breakdown, &hmNet)
	}
	rep.Tables = append(rep.Tables, tb)

	mean := func(xs []float64) float64 {
		var s float64
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	rep.SetValue("cen_net_frac_mean", mean(cenNet))
	rep.SetValue("hm_net_frac_mean", mean(hmNet))
	rep.AddNote("network share of latency: %.1f%% centralized → %.1f%% HiveMind (paper: 33%% → 9.3%%)",
		mean(cenNet)*100, mean(hmNet)*100)
	return rep
}
