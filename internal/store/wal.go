package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// This file implements the append-only write-ahead log that makes the
// control-plane store durable. Every record is length-prefixed and
// CRC32C-framed:
//
//	uint32 payloadLen | uint32 crc32c(payload) | payload
//
// A crash can tear the last record (short write) or leave trailing
// garbage (a reused block): on open the WAL scans forward, validates
// each frame, and truncates the file back to the longest valid prefix
// — recovery never loses acknowledged records under FsyncAlways, and
// under the relaxed policies it loses at most the unsynced suffix, in
// whole-record units. Torn or corrupt tails are counted, not fatal.

// crcTable is the Castagnoli polynomial table (CRC32C, the same framing
// checksum RocksDB and etcd's WAL use — hardware-accelerated on amd64).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// FsyncPolicy selects when WAL appends reach stable storage.
type FsyncPolicy int

const (
	// FsyncAlways fsyncs after every append: an acknowledged write
	// survives a machine crash. The safest and slowest policy.
	FsyncAlways FsyncPolicy = iota
	// FsyncBatch fsyncs every WALOptions.SyncEvery appends (and on
	// Sync/Close): a machine crash loses at most the unsynced batch, a
	// process crash loses nothing (the OS holds the pages).
	FsyncBatch
	// FsyncNever leaves syncing to the OS: a process crash loses
	// nothing, a machine crash may lose the OS write-back window.
	FsyncNever
)

// String implements fmt.Stringer.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncBatch:
		return "batch"
	case FsyncNever:
		return "never"
	default:
		return fmt.Sprintf("fsync(%d)", int(p))
	}
}

// WALOptions tunes one write-ahead log.
type WALOptions struct {
	// Fsync is the durability policy for appends.
	Fsync FsyncPolicy
	// SyncEvery is the FsyncBatch batch size (<=0: 64).
	SyncEvery int
	// Monitor, when non-nil, receives wal-append/fsync/truncated-tail
	// counters.
	Monitor Monitor
}

// walHeaderSize is the per-record framing overhead.
const walHeaderSize = 8

// maxWALRecord bounds a single record (a length prefix beyond this is
// treated as a corrupt tail, not an allocation request).
const maxWALRecord = 64 << 20

// ErrCorruptRecord reports a frame whose checksum or length failed
// validation mid-file (not at the recoverable tail).
var ErrCorruptRecord = errors.New("store: corrupt wal record")

// WAL is an append-only, CRC-framed log file. Appends are not
// internally locked — the owning DB serializes them under its mutex.
type WAL struct {
	f        *os.File
	path     string
	opts     WALOptions
	size     int64
	records  int
	unsynced int
}

// OpenWAL opens (creating if absent) the log at path, replays every
// valid record through apply in append order, truncates any torn or
// corrupt tail, and returns the WAL positioned for appending.
// truncated reports whether a tail had to be cut.
func OpenWAL(path string, opts WALOptions, apply func(rec []byte) error) (w *WAL, truncated bool, err error) {
	if opts.SyncEvery <= 0 {
		opts.SyncEvery = 64
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, false, err
	}
	w = &WAL{f: f, path: path, opts: opts}
	valid, records, truncated, err := scanWAL(f, apply)
	if err != nil {
		f.Close()
		return nil, false, err
	}
	if truncated {
		if terr := f.Truncate(valid); terr != nil {
			f.Close()
			return nil, false, fmt.Errorf("store: truncating torn wal tail: %w", terr)
		}
		w.count(MetricWALTruncatedTail)
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, false, err
	}
	w.size = valid
	w.records = records
	return w, truncated, nil
}

// scanWAL walks the log from the start, applying each valid record and
// reporting the byte offset of the longest valid prefix. Any malformed
// frame — short header, absurd length, short payload, checksum
// mismatch — marks the tail torn; everything before it is kept.
func scanWAL(f *os.File, apply func(rec []byte) error) (valid int64, records int, truncated bool, err error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, 0, false, err
	}
	r := newByteCounter(f)
	var hdr [walHeaderSize]byte
	for {
		if _, rerr := io.ReadFull(r, hdr[:]); rerr != nil {
			// Clean EOF ends the scan; a partial header is a torn tail.
			return valid, records, rerr != io.EOF, nil
		}
		n := binary.BigEndian.Uint32(hdr[0:4])
		sum := binary.BigEndian.Uint32(hdr[4:8])
		if n > maxWALRecord {
			return valid, records, true, nil
		}
		payload := make([]byte, n)
		if _, rerr := io.ReadFull(r, payload); rerr != nil {
			return valid, records, true, nil
		}
		if crc32.Checksum(payload, crcTable) != sum {
			return valid, records, true, nil
		}
		if apply != nil {
			if aerr := apply(payload); aerr != nil {
				return 0, 0, false, aerr
			}
		}
		valid = r.n
		records++
	}
}

// byteCounter counts bytes consumed from the underlying reader so the
// scan knows the offset of the last fully valid frame.
type byteCounter struct {
	r io.Reader
	n int64
}

func newByteCounter(r io.Reader) *byteCounter { return &byteCounter{r: r} }

func (b *byteCounter) Read(p []byte) (int, error) {
	n, err := b.r.Read(p)
	b.n += int64(n)
	return n, err
}

func (w *WAL) count(name string) {
	if w.opts.Monitor != nil {
		w.opts.Monitor.CountEvent(name)
	}
}

// frame wraps a record payload in the length+CRC32C header.
func frame(rec []byte) []byte {
	buf := make([]byte, walHeaderSize+len(rec))
	binary.BigEndian.PutUint32(buf[0:4], uint32(len(rec)))
	binary.BigEndian.PutUint32(buf[4:8], crc32.Checksum(rec, crcTable))
	copy(buf[walHeaderSize:], rec)
	return buf
}

// Append frames rec and writes it to the log, syncing per the policy.
// The record is durable (to the policy's guarantee) when Append
// returns.
func (w *WAL) Append(rec []byte) error {
	buf := frame(rec)
	if _, err := w.f.Write(buf); err != nil {
		return fmt.Errorf("store: wal append: %w", err)
	}
	w.size += int64(len(buf))
	w.records++
	w.unsynced++
	w.count(MetricWALAppend)
	switch w.opts.Fsync {
	case FsyncAlways:
		return w.Sync()
	case FsyncBatch:
		if w.unsynced >= w.opts.SyncEvery {
			return w.Sync()
		}
	}
	return nil
}

// Sync flushes outstanding appends to stable storage.
func (w *WAL) Sync() error {
	if w.unsynced == 0 {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("store: wal fsync: %w", err)
	}
	w.unsynced = 0
	w.count(MetricWALFsync)
	return nil
}

// Reset truncates the log to empty — the compaction step after a
// snapshot has captured everything the log held.
func (w *WAL) Reset() error {
	if err := w.f.Truncate(0); err != nil {
		return err
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.size = 0
	w.records = 0
	w.unsynced = 0
	return nil
}

// Size returns the log's current byte length.
func (w *WAL) Size() int64 { return w.size }

// Records returns how many records the log currently holds (replayed +
// appended since the last Reset).
func (w *WAL) Records() int { return w.records }

// Close syncs and closes the log file.
func (w *WAL) Close() error {
	if err := w.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}
