package experiments

import (
	"fmt"
	"math"

	"hivemind/internal/apps"
	"hivemind/internal/faas"
	"hivemind/internal/platform"
	"hivemind/internal/stats"
)

func init() {
	register("fig05a", "Task latency: fixed allocation vs serverless vs serverless with intra-task parallelism", fig05a)
	register("fig05b", "Elasticity under fluctuating load: serverless vs avg-/max-provisioned fixed deployments", fig05b)
	register("fig05c", "Fault tolerance: active tasks over time under injected function failures", fig05c)
}

// fig05a reproduces Fig. 5a. The CPU-time budget is equal across
// deployments: the fixed pool is sized for the average core demand.
// Arrivals are Poisson (the aggregate of many independent sensors), so
// the near-saturated fixed pool queues heavily while serverless scales
// out per-request — the mechanism behind the order-of-magnitude gap the
// paper shows. Latency is measured within the cloud (from arrival at
// the platform), as §3 does.
func fig05a(cfg RunConfig) *Report {
	rep := &Report{ID: "fig05a", Title: "Fixed vs serverless concurrency (Fig. 5a)"}
	tb := stats.NewTable("Fig. 5a: task latency (s)",
		"job", "fixed_p50", "serverless_p50", "serverless_par_p50", "fixed_p95", "sls_p95", "sls_par_p95")

	duration := jobDuration(cfg)
	ps := suite(cfg)
	type triple struct{ fixed, noPar, withPar *stats.Sample }
	triples := mapPar(cfg, len(ps), func(i int) triple {
		return triple{
			fixed:   poissonCloudJob(cfg, ps[i], duration, true, 1),
			noPar:   poissonCloudJob(cfg, ps[i], duration, false, 1),
			withPar: poissonCloudJob(cfg, ps[i], duration, false, ps[i].Parallelism),
		}
	})
	for i, p := range ps {
		fixed, noPar, withPar := triples[i].fixed, triples[i].noPar, triples[i].withPar
		tb.AddRow(string(p.ID),
			fixed.Median(), noPar.Median(), withPar.Median(),
			fixed.Percentile(95), noPar.Percentile(95), withPar.Percentile(95))
		rep.SetValue("fixed_p50_"+string(p.ID), fixed.Median())
		rep.SetValue("sls_p50_"+string(p.ID), noPar.Median())
		rep.SetValue("slspar_p50_"+string(p.ID), withPar.Median())
	}
	rep.Tables = append(rep.Tables, tb)

	// Shape findings: serverless beats fixed for the parallel heavy
	// jobs; intra-task parallelism helps most for OCR/SLAM-class jobs
	// and least for maze/weather.
	f := rep.Value("fixed_p50_S1") / rep.Value("sls_p50_S1")
	rep.SetValue("serverless_gain_S1", f)
	slam := rep.Value("sls_p50_S10") / rep.Value("slspar_p50_S10")
	rep.SetValue("intratask_gain_S10", slam)
	weather := rep.Value("sls_p50_S7") / rep.Value("slspar_p50_S7")
	rep.SetValue("intratask_gain_S7", weather)
	rep.AddNote("serverless vs fixed on S1: %.1fx; intra-task gain: %.1fx on SLAM vs %.1fx on weather (paper: dramatic for SLAM/OCR, flat for maze/weather/soil)", f, slam, weather)
	return rep
}

// poissonCloudJob submits p's tasks to the cloud with exponential
// interarrival gaps at the default aggregate rate, to either a reserved
// pool of average-demand size (reserved=true) or the serverless
// platform with the given fan-out. It returns in-cloud task latencies.
func poissonCloudJob(cfg RunConfig, p apps.Profile, duration float64, reserved bool, par int) *stats.Sample {
	sys := platform.NewSystem(platform.Preset(platform.CentralizedFaaS, defaultDevices, cfg.Seed))
	eng := sys.Eng
	rng := eng.Rand()
	lat := &stats.Sample{}
	rate := p.TaskRatePerDevice * defaultDevices
	var pool *faas.Reserved
	if reserved {
		cores := int(math.Ceil(rate * p.CloudExecS))
		if cores < 1 {
			cores = 1
		}
		pool = faas.NewReserved(eng, cores, sys.Faas.Config())
	}
	var pump func()
	pump = func() {
		if eng.Now() >= duration {
			return
		}
		start := eng.Now()
		spec := faas.FunctionSpec{
			Name: string(p.ID), ExecS: p.CloudExecS, Parallelism: par,
			MemGB: p.MemGB, ExecCV: p.ExecCV, ParentDataMB: p.InputMB,
		}
		done := func() { lat.Add(eng.Now() - start) }
		if pool != nil {
			spec.Parallelism = 1
			spec.ParentDataMB = 0 // long-lived service holds its own state
			pool.Invoke(spec, func(faas.Result) { done() })
		} else {
			sys.Faas.Invoke(spec, func(faas.Result) { done() })
		}
		eng.After(rng.ExpFloat64()/rate, pump)
	}
	eng.At(0, pump)
	eng.RunUntil(duration + 120)
	sys.Fleet.StopAll()
	eng.Run()
	return lat
}

// loadShape is the Fig. 5b fluctuating load: one drone at low rate,
// progressively more drones at higher fps, then back down.
func loadShape(t, duration float64) float64 {
	phase := t / duration
	switch {
	case phase < 0.15:
		return 0.08
	case phase < 0.3:
		return 0.3
	case phase < 0.5:
		return 0.7
	case phase < 0.65:
		return 1.0
	case phase < 0.8:
		return 0.5
	default:
		return 0.1
	}
}

// fig05b reproduces Fig. 5b: face recognition under a load ramp on
// serverless, a fixed deployment provisioned for the average load, and
// one provisioned for the peak.
func fig05b(cfg RunConfig) *Report {
	rep := &Report{ID: "fig05b", Title: "Elasticity under fluctuating load (Fig. 5b)"}
	p, _ := apps.ByID(apps.S1FaceRecognition)
	duration := 2 * jobDuration(cfg)
	peakRate := p.TaskRatePerDevice * defaultDevices // tasks/s at peak
	avgScale := 0.0
	steps := 100
	for i := 0; i < steps; i++ {
		avgScale += loadShape(float64(i)/float64(steps)*duration, duration)
	}
	avgScale /= float64(steps)

	type deployment struct {
		name  string
		run   func() *stats.Sample
		cores int
	}
	runServerless := func() *stats.Sample {
		sys := platform.NewSystem(platform.Preset(platform.CentralizedFaaS, defaultDevices, cfg.Seed))
		return driveFluctuating(sys, nil, p, duration, peakRate)
	}
	runReserved := func(cores int) func() *stats.Sample {
		return func() *stats.Sample {
			sys := platform.NewSystem(platform.Preset(platform.CentralizedIaaS, defaultDevices, cfg.Seed))
			pool := faas.NewReserved(sys.Eng, cores, sys.Faas.Config())
			return driveFluctuating(sys, pool, p, duration, peakRate)
		}
	}
	avgCores := int(math.Ceil(peakRate * avgScale * p.CloudExecS))
	maxCores := int(math.Ceil(peakRate * p.CloudExecS * 1.1))
	deployments := []deployment{
		{"serverless", runServerless, 0},
		{"fixed-avg", runReserved(avgCores), avgCores},
		{"fixed-max", runReserved(maxCores), maxCores},
	}

	tb := stats.NewTable("Fig. 5b: latency under fluctuating load",
		"deployment", "cores", "p50_s", "p95_s", "p99_s")
	lats := mapPar(cfg, len(deployments), func(i int) *stats.Sample {
		return deployments[i].run()
	})
	for i, d := range deployments {
		lat := lats[i]
		tb.AddRow(d.name, d.cores, lat.Median(), lat.Percentile(95), lat.Percentile(99))
		rep.SetValue(d.name+"_p95", lat.Percentile(95))
		rep.SetValue(d.name+"_p50", lat.Median())
	}
	rep.Tables = append(rep.Tables, tb)
	rep.AddNote("avg-provisioned fixed deployment saturates at peak (p95 %.2fs vs serverless %.2fs); max-provisioned tracks load but wastes %dx the average cores",
		rep.Value("fixed-avg_p95"), rep.Value("serverless_p95"), maxCores/int(math.Max(1, float64(avgCores))))
	return rep
}

// driveFluctuating submits S1 tasks at the shaped rate; pool!=nil sends
// them to the reserved deployment instead of serverless.
func driveFluctuating(sys *platform.System, pool *faas.Reserved, p apps.Profile, duration, peakRate float64) *stats.Sample {
	lat := &stats.Sample{}
	eng := sys.Eng
	rng := eng.Rand()
	var pump func()
	pump = func() {
		if eng.Now() >= duration {
			return
		}
		rate := peakRate * loadShape(eng.Now(), duration)
		if rate < 0.05 {
			rate = 0.05
		}
		gap := 1.0 / rate * (0.7 + 0.6*rng.Float64())
		d := sys.Fleet[rng.Intn(len(sys.Fleet))]
		if pool == nil {
			sys.SubmitTask(p, d, platform.SubmitOpts{}, func(m platform.TaskMetrics) {
				if !m.Dropped {
					lat.Add(m.TotalS())
				}
			})
		} else {
			start := eng.Now()
			pool.Invoke(faas.FunctionSpec{
				Name: string(p.ID), ExecS: p.CloudExecS, Parallelism: 1,
				MemGB: p.MemGB, ExecCV: p.ExecCV,
			}, func(faas.Result) { lat.Add(eng.Now() - start) })
		}
		eng.After(gap, pump)
	}
	eng.At(0, pump)
	eng.RunUntil(duration + 60)
	return lat
}

// fig05c reproduces Fig. 5c: number of active tasks over time when a
// fraction of functions fail; the platform respawns them fast enough to
// hide the failures.
func fig05c(cfg RunConfig) *Report {
	rep := &Report{ID: "fig05c", Title: "Fault tolerance: active tasks under failures (Fig. 5c)"}
	p, _ := apps.ByID(apps.S1FaceRecognition)
	duration := jobDuration(cfg) * 1.5

	tb := stats.NewTable("Fig. 5c: task completion under failure injection",
		"failure_%", "submitted", "completed", "respawns", "peak_active", "p99_s")
	baselineDone := 0.0
	fracs := []float64{0, 0.05, 0.10, 0.20}
	type failRun struct {
		res  platform.JobResult
		peak float64
	}
	runs := mapPar(cfg, len(fracs), func(i int) failRun {
		opts := platform.Preset(platform.CentralizedFaaS, defaultDevices, cfg.Seed)
		opts.FaasCfg.FailureProb = fracs[i]
		sys := platform.NewSystem(opts)
		res := sys.RunJob(p, duration)
		return failRun{res: res, peak: sys.Faas.ActiveGauge().Max()}
	})
	for i, frac := range fracs {
		res, peak := runs[i].res, runs[i].peak
		tb.AddRow(frac*100, res.Submitted, res.Completed, res.Respawns, peak, res.Latency.Percentile(99))
		key := fmt.Sprintf("done_%.0f", frac*100)
		rep.SetValue(key, float64(res.Completed))
		rep.SetValue(fmt.Sprintf("respawns_%.0f", frac*100), float64(res.Respawns))
		if frac == 0 {
			baselineDone = float64(res.Completed)
		}
	}
	rep.Tables = append(rep.Tables, tb)
	ratio := rep.Value("done_20") / math.Max(1, baselineDone)
	rep.SetValue("completion_ratio_20pct", ratio)
	rep.AddNote("with 20%% failures, completions stay at %.0f%% of the fault-free run (paper: OpenWhisk hides up to 20%% failed tasks)", ratio*100)
	return rep
}
