package store

import (
	"sync"
	"testing"
)

func TestCheckpointBeginIsIdempotent(t *testing.T) {
	l := NewCheckpointLog(NewDB())
	ck, in, err := l.Begin("t1", "m.chain", []byte("original"))
	if err != nil {
		t.Fatalf("begin: %v", err)
	}
	if ck.Method != "m.chain" || ck.NextStep != 0 || ck.Done {
		t.Fatalf("unexpected fresh checkpoint: %+v", ck)
	}
	if string(in) != "original" {
		t.Fatalf("input = %q, want original", in)
	}
	// A re-dispatch with a different payload must get the stored input
	// back, not fork the chain.
	ck2, in2, err := l.Begin("t1", "m.chain", []byte("forged"))
	if err != nil {
		t.Fatalf("re-begin: %v", err)
	}
	if string(in2) != "original" {
		t.Fatalf("resumed input = %q, want original", in2)
	}
	if ck2.TaskID != ck.TaskID || ck2.InputKey != ck.InputKey {
		t.Fatalf("resumed checkpoint diverged: %+v vs %+v", ck2, ck)
	}
}

func TestCheckpointCommitStepIsExactlyOnce(t *testing.T) {
	db := NewDB()
	l := NewCheckpointLog(db)
	if _, _, err := l.Begin("t1", "m", []byte("in")); err != nil {
		t.Fatalf("begin: %v", err)
	}
	// Two incarnations of the same step commit concurrently; exactly one
	// body must win and both must observe it.
	const writers = 8
	results := make([]string, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			out, err := l.CommitStep("t1", 0, []byte{'v', byte('0' + w)})
			if err != nil {
				t.Errorf("commit %d: %v", w, err)
				return
			}
			results[w] = string(out)
		}()
	}
	wg.Wait()
	for w := 1; w < writers; w++ {
		if results[w] != results[0] {
			t.Fatalf("writer %d observed %q, writer 0 observed %q", w, results[w], results[0])
		}
	}
	doc, err := db.Get(StepOutputKey("t1", 0))
	if err != nil {
		t.Fatalf("get output: %v", err)
	}
	if g := RevGen(doc.Rev); g != 1 {
		t.Fatalf("output committed %d times (rev %s), want exactly once", g, doc.Rev)
	}
	if string(doc.Body) != results[0] {
		t.Fatalf("stored %q, observers saw %q", doc.Body, results[0])
	}
}

func TestCheckpointOrphansEnumeratesIncompleteTasks(t *testing.T) {
	l := NewCheckpointLog(NewDB())
	for _, id := range []string{"b", "a", "c"} {
		if _, _, err := l.Begin(id, "m", []byte(id)); err != nil {
			t.Fatalf("begin %s: %v", id, err)
		}
	}
	if err := l.Advance("a", 2); err != nil {
		t.Fatalf("advance: %v", err)
	}
	if err := l.Complete("b"); err != nil {
		t.Fatalf("complete: %v", err)
	}
	orphans, err := l.Orphans()
	if err != nil {
		t.Fatalf("orphans: %v", err)
	}
	if len(orphans) != 2 || orphans[0].TaskID != "a" || orphans[1].TaskID != "c" {
		t.Fatalf("orphans = %+v, want [a c]", orphans)
	}
	if orphans[0].NextStep != 2 {
		t.Fatalf("orphan a NextStep = %d, want 2", orphans[0].NextStep)
	}
}

func TestCheckpointAdvanceIsMonotonic(t *testing.T) {
	l := NewCheckpointLog(NewDB())
	if _, _, err := l.Begin("t", "m", nil); err != nil {
		t.Fatalf("begin: %v", err)
	}
	if err := l.Advance("t", 3); err != nil {
		t.Fatalf("advance 3: %v", err)
	}
	// A stale duplicate cannot rewind a resumed task.
	if err := l.Advance("t", 1); err != nil {
		t.Fatalf("advance 1: %v", err)
	}
	orphans, _ := l.Orphans()
	if len(orphans) != 1 || orphans[0].NextStep != 3 {
		t.Fatalf("orphans = %+v, want NextStep 3", orphans)
	}
}

func TestCheckpointStepOutputRoundTrip(t *testing.T) {
	l := NewCheckpointLog(NewDB())
	if _, ok, err := l.StepOutput("t", 0); err != nil || ok {
		t.Fatalf("missing output: ok=%v err=%v, want absent", ok, err)
	}
	if _, err := l.CommitStep("t", 0, []byte("out")); err != nil {
		t.Fatalf("commit: %v", err)
	}
	out, ok, err := l.StepOutput("t", 0)
	if err != nil || !ok || string(out) != "out" {
		t.Fatalf("round trip: %q ok=%v err=%v", out, ok, err)
	}
}

// Quarantine, don't abort: one corrupt checkpoint record must not
// block recovery of every healthy task — Orphans skips it, counts it,
// and keeps scanning.
func TestOrphansQuarantinesCorruptCheckpoint(t *testing.T) {
	mon := newCountingMonitor()
	db := NewDB()
	db.SetMonitor(mon)
	log := NewCheckpointLog(db)
	if _, _, err := log.Begin("healthy-a", "m", []byte("in")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := log.Begin("healthy-b", "m", []byte("in")); err != nil {
		t.Fatal(err)
	}
	// A torn or bit-flipped checkpoint record: valid store document,
	// garbage JSON payload.
	if _, err := db.Force(CheckpointKey("corrupt"), []byte("{not json")); err != nil {
		t.Fatal(err)
	}

	orphans, err := log.Orphans()
	if err != nil {
		t.Fatalf("Orphans aborted on the corrupt record: %v", err)
	}
	if len(orphans) != 2 {
		t.Fatalf("orphans = %+v, want the 2 healthy tasks", orphans)
	}
	for i, want := range []string{"healthy-a", "healthy-b"} {
		if orphans[i].TaskID != want {
			t.Fatalf("orphan %d = %q, want %q", i, orphans[i].TaskID, want)
		}
	}
	if got := mon.count(MetricCorruptCheckpoint); got != 1 {
		t.Fatalf("corrupt-checkpoint counter = %d, want 1", got)
	}
	// A second scan counts it again — the record is still there, still
	// quarantined, still visible to operators.
	if _, err := log.Orphans(); err != nil {
		t.Fatal(err)
	}
	if got := mon.count(MetricCorruptCheckpoint); got != 2 {
		t.Fatalf("corrupt-checkpoint counter after rescan = %d, want 2", got)
	}
}
