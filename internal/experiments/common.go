package experiments

import (
	"hivemind/internal/apps"
	"hivemind/internal/platform"
	"hivemind/internal/scenario"
)

// jobDuration returns the per-job run length: the paper uses 120 s.
func jobDuration(cfg RunConfig) float64 {
	if cfg.Quick {
		return 30
	}
	return 120
}

// suite returns the benchmark list, trimmed in quick mode to one
// representative per behaviour class (heavy CNN, light, pinned-edge,
// short-task, long-task, wide-fanout).
func suite(cfg RunConfig) []apps.Profile {
	all := apps.All()
	if !cfg.Quick {
		return all
	}
	keep := map[apps.ID]bool{
		apps.S1FaceRecognition: true,
		apps.S3DroneDetection:  true,
		apps.S4ObstacleAvoid:   true,
		apps.S6Maze:            true,
		apps.S7Weather:         true,
		apps.S10SLAM:           true,
	}
	var out []apps.Profile
	for _, p := range all {
		if keep[p.ID] {
			out = append(out, p)
		}
	}
	return out
}

// jobKey identifies one standard job run for the memoized cache; it
// covers every input runJobOn feeds the simulation (profiles come from
// the canonical apps registry, so the ID stands in for the profile).
type jobKey struct {
	kind    platform.SystemKind
	app     apps.ID
	seed    int64
	quick   bool
	devices int
}

// scenKey identifies one standard mission run for the memoized cache.
type scenKey struct {
	scen    scenario.Kind
	sys     platform.SystemKind
	seed    int64
	quick   bool
	devices int
}

// runJobOn builds a fresh system of the kind and runs the job. Within
// one run, identical invocations (several figures measure the same
// system×job point) are simulated once and shared: runs are
// deterministic per seed, so the cached result is exactly what a fresh
// simulation would produce. Samples are frozen before publication so
// concurrent readers are safe.
func runJobOn(kind platform.SystemKind, p apps.Profile, cfg RunConfig, devices int) platform.JobResult {
	compute := func() platform.JobResult {
		sys := platform.NewSystem(platform.Preset(kind, devices, cfg.Seed))
		res := sys.RunJob(p, jobDuration(cfg))
		if res.Latency != nil {
			res.Latency.Freeze()
		}
		if res.Breakdown != nil {
			res.Breakdown.Freeze()
		}
		return res
	}
	if cfg.exec == nil {
		return compute()
	}
	key := jobKey{kind: kind, app: p.ID, seed: cfg.Seed, quick: cfg.Quick, devices: devices}
	return memoized(&cfg.exec.jobs, key, compute)
}

// runScenarioOn runs a mission on a fresh system of the kind, memoized
// like runJobOn.
func runScenarioOn(kind scenario.Kind, sysKind platform.SystemKind, cfg RunConfig, devices int) scenario.Result {
	compute := func() scenario.Result {
		sc := scenario.DefaultConfig(kind, platform.Preset(sysKind, devices, cfg.Seed))
		if cfg.Quick {
			sc.MaxDurationS = 200
		}
		res := scenario.Run(kind, sc)
		if res.TaskLatency != nil {
			res.TaskLatency.Freeze()
		}
		if res.Breakdown != nil {
			res.Breakdown.Freeze()
		}
		return res
	}
	if cfg.exec == nil {
		return compute()
	}
	key := scenKey{scen: kind, sys: sysKind, seed: cfg.Seed, quick: cfg.Quick, devices: devices}
	return memoized(&cfg.exec.scenarios, key, compute)
}

// defaultDevices is the paper's drone-swarm size.
const defaultDevices = 16

// roverDevices is the paper's car-swarm size.
const roverDevices = 14
