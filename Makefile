# HiveMind reproduction — common targets.

GO ?= go

.PHONY: all build test race bench sweep examples fmt vet clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/rpc/ ./internal/store/ ./internal/runtime/

bench:
	$(GO) test -bench=. -benchmem ./...

# Full paper-scale evaluation (writes the EXPERIMENTS.md data).
sweep:
	$(GO) run ./cmd/hivemind-bench -out full_report.txt

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/treasurehunt
	$(GO) run ./examples/peoplecount
	$(GO) run ./examples/rovermaze
	$(GO) run ./examples/dslsynth
	$(GO) run ./examples/localfaas

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

clean:
	$(GO) clean ./...
