// Package sim implements a deterministic discrete-event simulation kernel.
//
// The kernel is callback-based: model code schedules closures at virtual
// times on an Engine, and the Engine executes them in time order (ties
// broken by scheduling order, which makes runs with the same seed fully
// deterministic). On top of the raw event loop the package provides
// cancellable timers and multi-server FIFO resources with queueing
// statistics — the building blocks for the queueing-network swarm
// simulator described in Section 5.6 of the HiveMind paper.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Time is virtual simulation time in seconds.
type Time = float64

// Infinity is a time later than any event the simulator will ever reach.
const Infinity Time = 1e18

// event is a scheduled closure. seq breaks ties between events scheduled
// for the same instant so execution order matches scheduling order.
type event struct {
	at     Time
	seq    uint64
	fn     func()
	cancel bool
	index  int // heap index, maintained by eventHeap
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulation executive. It is not safe for
// concurrent use; all model code runs on the caller's goroutine inside
// Run / RunUntil.
type Engine struct {
	now     Time
	events  eventHeap
	seq     uint64
	rng     *rand.Rand
	stopped bool
	steps   uint64
}

// NewEngine returns an engine at time zero with a deterministic RNG
// seeded by seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Steps reports how many events have been executed so far.
func (e *Engine) Steps() uint64 { return e.steps }

// Timer is a handle to a scheduled event that can be cancelled before it
// fires.
type Timer struct {
	ev *event
}

// Cancel prevents the timer's callback from running. Cancelling an
// already-fired or already-cancelled timer is a no-op. It reports whether
// the callback was actually prevented.
func (t *Timer) Cancel() bool {
	if t == nil || t.ev == nil || t.ev.cancel || t.ev.index == -1 && t.ev.fn == nil {
		return false
	}
	t.ev.cancel = true
	// Release the closure immediately: a cancelled event can sit in the
	// heap until popped, and fn may capture large model state.
	t.ev.fn = nil
	return t.ev.index != -1
}

// Stopped reports whether the timer has been cancelled.
func (t *Timer) Stopped() bool { return t == nil || t.ev == nil || t.ev.cancel }

// At schedules fn to run at absolute time t. Scheduling in the past
// panics: it indicates a model bug that would silently corrupt causality.
func (e *Engine) At(t Time, fn func()) *Timer {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %g before now %g", t, e.now))
	}
	ev := &event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return &Timer{ev: ev}
}

// After schedules fn to run d seconds from now. Negative delays are
// clamped to zero.
func (e *Engine) After(d Time, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// Stop makes the current Run/RunUntil call return after the in-flight
// event completes. Pending events remain queued.
func (e *Engine) Stop() { e.stopped = true }

// Pending reports the number of events still queued (including cancelled
// ones that have not yet been popped).
func (e *Engine) Pending() int { return len(e.events) }

// Run executes events until the queue is empty or Stop is called.
func (e *Engine) Run() { e.RunUntil(Infinity) }

// RunUntil executes events with timestamps <= limit and then advances
// the clock to limit, even when the queue emptied earlier — callers
// stepping a simulation in fixed windows rely on Now() landing exactly
// on each window boundary. The two exceptions leave the clock at the
// last executed event: Stop (the run was interrupted mid-window) and
// Run, whose limit of Infinity is a horizon, not a boundary. It returns
// the number of events executed during this call.
func (e *Engine) RunUntil(limit Time) uint64 {
	e.stopped = false
	var executed uint64
	for len(e.events) > 0 && !e.stopped {
		next := e.events[0]
		if next.at > limit {
			e.now = limit
			return executed
		}
		heap.Pop(&e.events)
		if next.cancel {
			continue
		}
		e.now = next.at
		fn := next.fn
		next.fn = nil
		fn()
		e.steps++
		executed++
	}
	if !e.stopped && limit < Infinity && limit > e.now {
		e.now = limit
	}
	return executed
}

// Every schedules fn to run every period seconds starting at now+period,
// until the returned Ticker is stopped. Jitter, if positive, offsets
// each firing by a zero-mean uniform phase drawn from
// [-jitter/2, jitter/2), desynchronizing periodic processes
// (heartbeats, monitors) without biasing the mean period: firings stay
// anchored to the ideal k*period grid, so the long-run firing rate is
// exactly 1/period regardless of jitter.
func (e *Engine) Every(period, jitter Time, fn func()) *Ticker {
	t := &Ticker{eng: e, period: period, jitter: jitter, fn: fn, base: e.now}
	t.arm()
	return t
}

// Ticker repeatedly schedules a callback. Stop it to end the cycle.
type Ticker struct {
	eng    *Engine
	period Time
	jitter Time
	fn     func()
	next   *Timer
	// base is the unjittered anchor of the last scheduled firing; each
	// arm advances it by exactly period so jitter perturbs the phase of
	// individual firings without accumulating into the period.
	base    Time
	stopped bool
}

func (t *Ticker) arm() {
	t.base += t.period
	at := t.base
	if t.jitter > 0 {
		at += (t.eng.Rand().Float64() - 0.5) * t.jitter
	}
	// A large jitter (> period) can draw a phase behind the clock;
	// clamp rather than panic in At.
	if at < t.eng.now {
		at = t.eng.now
	}
	t.next = t.eng.At(at, func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.arm()
		}
	})
}

// Stop ends the ticker. Safe to call multiple times.
func (t *Ticker) Stop() {
	if t.stopped {
		return
	}
	t.stopped = true
	if t.next != nil {
		t.next.Cancel()
	}
}
