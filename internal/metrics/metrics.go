// Package metrics is a small, goroutine-safe metrics registry for the
// live substrate: counters, gauges, histograms (stats.Sample) and rate
// meters (stats.Meter) behind one mutex, with a deterministic text
// exposition format and an http.Handler. It is the live-fleet
// counterpart of the sim-side controller.Monitor — and satisfies the
// same sinks (runtime.GatewayMonitor), so one registry can absorb
// gateway events, controller counters, and application metrics alike.
package metrics

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"hivemind/internal/stats"
)

// Registry holds named metrics. The zero value is not usable; call
// NewRegistry. All methods are safe for concurrent use.
type Registry struct {
	mu         sync.Mutex
	epoch      time.Time
	counters   map[string]float64
	gauges     map[string]float64
	gaugeFuncs map[string]func() float64
	hists      map[string]*stats.Sample
	meters     map[string]*stats.Meter
}

// NewRegistry returns an empty registry anchored at the current wall
// clock (meters bucket relative to it).
func NewRegistry() *Registry {
	return &Registry{
		epoch:      time.Now(),
		counters:   map[string]float64{},
		gauges:     map[string]float64{},
		gaugeFuncs: map[string]func() float64{},
		hists:      map[string]*stats.Sample{},
		meters:     map[string]*stats.Meter{},
	}
}

// Add increments a counter by v.
func (r *Registry) Add(name string, v float64) {
	r.mu.Lock()
	r.counters[name] += v
	r.mu.Unlock()
}

// Inc increments a counter by 1.
func (r *Registry) Inc(name string) { r.Add(name, 1) }

// CountEvent increments a counter by 1 (satisfies the counting half of
// runtime.GatewayMonitor).
func (r *Registry) CountEvent(name string) { r.Add(name, 1) }

// Counter returns a counter's value (0 if never written).
func (r *Registry) Counter(name string) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

// SetGauge records the current level of a named gauge, replacing any
// lazy gauge registered under the same name.
func (r *Registry) SetGauge(name string, v float64) {
	r.mu.Lock()
	delete(r.gaugeFuncs, name)
	r.gauges[name] = v
	r.mu.Unlock()
}

// GaugeFunc registers a lazy gauge: fn is sampled at read time (Gauge,
// WriteText) rather than pushed, so live levels — queue depths,
// pending-job counts — stay current without a publisher goroutine. A
// later SetGauge or GaugeFunc under the same name replaces it. fn must
// not call back into the registry.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	r.mu.Lock()
	delete(r.gauges, name)
	r.gaugeFuncs[name] = fn
	r.mu.Unlock()
}

// Gauge returns a gauge's last level (0 if never set), sampling lazy
// gauges registered via GaugeFunc.
func (r *Registry) Gauge(name string) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if fn, ok := r.gaugeFuncs[name]; ok {
		return fn()
	}
	return r.gauges[name]
}

// Observe adds one observation to a named histogram (satisfies the
// observing half of runtime.GatewayMonitor).
func (r *Registry) Observe(name string, v float64) {
	r.mu.Lock()
	h, ok := r.hists[name]
	if !ok {
		h = &stats.Sample{}
		r.hists[name] = h
	}
	h.Add(v)
	r.mu.Unlock()
}

// Histogram returns a snapshot copy of a named histogram (empty sample
// if never observed).
func (r *Registry) Histogram(name string) *stats.Sample {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := &stats.Sample{}
	if h, ok := r.hists[name]; ok {
		out.AddAll(h.Values()...)
	}
	return out
}

// meterBucket is the fixed meter resolution: 1 s buckets, the same
// granularity the paper's bandwidth/active-task curves use.
const meterBucket = 1.0

// MeterAdd records amount on a named rate meter at the current wall
// clock (seconds since the registry's epoch, 1 s buckets).
func (r *Registry) MeterAdd(name string, amount float64) {
	r.mu.Lock()
	m, ok := r.meters[name]
	if !ok {
		m = stats.NewMeter(meterBucket)
		r.meters[name] = m
	}
	m.Add(time.Since(r.epoch).Seconds(), amount)
	r.mu.Unlock()
}

// MeterRates returns the per-second rate sample of a named meter,
// clipped to the elapsed interval (empty if never written).
func (r *Registry) MeterRates(name string) *stats.Sample {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.meters[name]; ok {
		return m.RateSample(time.Since(r.epoch).Seconds())
	}
	return &stats.Sample{}
}

// WriteText renders every metric in a deterministic line-oriented text
// exposition, sorted by kind then name:
//
//	counter <name> <value>
//	gauge <name> <value>
//	histogram <name> count <n> mean <m> p50 <v> p95 <v> p99 <v> max <v>
//	meter <name> total <t> rate_mean <v> rate_p99 <v>
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	elapsed := time.Since(r.epoch).Seconds()

	for _, name := range sortedKeys(r.counters) {
		if _, err := fmt.Fprintf(w, "counter %s %g\n", name, r.counters[name]); err != nil {
			return err
		}
	}
	gauges := make(map[string]float64, len(r.gauges)+len(r.gaugeFuncs))
	for name, v := range r.gauges {
		gauges[name] = v
	}
	for name, fn := range r.gaugeFuncs {
		gauges[name] = fn()
	}
	for _, name := range sortedKeys(gauges) {
		if _, err := fmt.Fprintf(w, "gauge %s %g\n", name, gauges[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(r.hists) {
		h := r.hists[name]
		if _, err := fmt.Fprintf(w, "histogram %s count %d mean %g p50 %g p95 %g p99 %g max %g\n",
			name, h.N(), h.Mean(), h.Percentile(50), h.Percentile(95), h.Percentile(99), h.Max()); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(r.meters) {
		m := r.meters[name]
		rates := m.RateSample(elapsed)
		if _, err := fmt.Fprintf(w, "meter %s total %g rate_mean %g rate_p99 %g\n",
			name, m.Total(), rates.Mean(), rates.Percentile(99)); err != nil {
			return err
		}
	}
	return nil
}

// Handler serves the text exposition over HTTP.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		r.WriteText(w)
	})
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
