package ingress

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hivemind/internal/rpc"
)

// postDo submits a job and returns the parsed result id.
func postDo(t *testing.T, ts *httptest.Server, job, body, query string) string {
	t.Helper()
	url := ts.URL + "/do/" + job
	if query != "" {
		url += "?" + query
	}
	resp, err := http.Post(url, "application/octet-stream", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /do/%s: status %d", job, resp.StatusCode)
	}
	var out struct {
		ResultID string `json:"resultId"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.ResultID == "" || out.ResultID != resp.Header.Get(ResultIDHeader) {
		t.Fatalf("result id %q, header %q", out.ResultID, resp.Header.Get(ResultIDHeader))
	}
	return out.ResultID
}

// getThen collects a result id, returning status, body and headers.
func getThen(t *testing.T, ts *httptest.Server, id string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/then/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b), resp.Header
}

func TestIngressAsyncRoundTrip(t *testing.T) {
	var calls atomic.Uint64
	s, err := NewServer(Options{
		Dispatcher: DispatchFunc(func(_ context.Context, method string, payload []byte) ([]byte, error) {
			calls.Add(1)
			return []byte(method + ":" + string(payload)), nil
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()

	id := postDo(t, ts, "echo", "hello", "")
	status, body, _ := getThen(t, ts, id)
	if status != http.StatusOK || body != "echo:hello" {
		t.Fatalf("GET /then: %d %q", status, body)
	}
	// Duplicate collection returns the identical result until TTL.
	status, body2, _ := getThen(t, ts, id)
	if status != http.StatusOK || body2 != body {
		t.Fatalf("second GET /then: %d %q, want %q", status, body2, body)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("dispatches = %d, want 1", got)
	}
}

func TestIngressThenTrueBlocks(t *testing.T) {
	release := make(chan struct{})
	s, err := NewServer(Options{
		Dispatcher: DispatchFunc(func(ctx context.Context, _ string, _ []byte) ([]byte, error) {
			select {
			case <-release:
				return []byte("late"), nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()

	done := make(chan string, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/do/slow?then=true", "", strings.NewReader("x"))
		if err != nil {
			done <- "err: " + err.Error()
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		done <- fmt.Sprintf("%d %s", resp.StatusCode, b)
	}()
	select {
	case got := <-done:
		t.Fatalf("then=true returned before the job finished: %s", got)
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	if got := <-done; got != "200 late" {
		t.Fatalf("then=true result %q, want \"200 late\"", got)
	}
}

func TestIngressCoalescesIdenticalPending(t *testing.T) {
	var calls atomic.Uint64
	gate := make(chan struct{})
	s, err := NewServer(Options{
		Dispatcher: DispatchFunc(func(_ context.Context, _ string, payload []byte) ([]byte, error) {
			calls.Add(1)
			<-gate
			return append([]byte("r:"), payload...), nil
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Ten identical POSTs while the first is in flight share one id and
	// one dispatch; a different payload forks its own.
	ids := make([]string, 10)
	var wg sync.WaitGroup
	for i := range ids {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ids[i] = postDo(t, ts, "work", "same-bytes", "")
		}(i)
	}
	wg.Wait()
	other := postDo(t, ts, "work", "different-bytes", "")
	close(gate)

	for _, id := range ids[1:] {
		if id != ids[0] {
			t.Fatalf("coalesced ids diverge: %q vs %q", id, ids[0])
		}
	}
	if other == ids[0] {
		t.Fatal("different payload coalesced into the same job")
	}
	status, body, _ := getThen(t, ts, ids[0])
	if status != http.StatusOK || body != "r:same-bytes" {
		t.Fatalf("coalesced result: %d %q", status, body)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("dispatches = %d, want 2 (1 coalesced + 1 distinct)", got)
	}
	st := s.Stats()
	if st.Coalesced != 9 {
		t.Fatalf("Stats.Coalesced = %d, want 9", st.Coalesced)
	}
	// Once completed the job leaves the pending table: a new identical
	// POST is a fresh dispatch, not a stale cache hit.
	fresh := postDo(t, ts, "work", "same-bytes", "")
	if fresh == ids[0] {
		t.Fatal("completed job still coalescing new submissions")
	}
}

func TestIngressShedMapsTo503WithRetryAfter(t *testing.T) {
	s, err := NewServer(Options{
		Dispatcher: DispatchFunc(func(context.Context, string, []byte) ([]byte, error) {
			return nil, rpc.ShedError(250 * time.Millisecond)
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()

	id := postDo(t, ts, "busy", "x", "")
	status, _, hdr := getThen(t, ts, id)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("shed job resolved %d, want 503", status)
	}
	if ra := hdr.Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", ra)
	}
	if st := s.Stats(); st.Shed != 1 {
		t.Fatalf("Stats.Shed = %d, want 1", st.Shed)
	}
}

func TestIngressDurableLookupServesUnknownIDs(t *testing.T) {
	durable := map[string][]byte{"dead-ingress-7": []byte("recovered")}
	s, err := NewServer(Options{
		Dispatcher: DispatchFunc(func(context.Context, string, []byte) ([]byte, error) {
			return nil, nil
		}),
		Lookup: func(id string) ([]byte, bool, error) {
			b, ok := durable[id]
			return b, ok, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()

	// An id this ingress never minted resolves from durable state —
	// the crash-survival path.
	status, body, _ := getThen(t, ts, "dead-ingress-7")
	if status != http.StatusOK || body != "recovered" {
		t.Fatalf("durable lookup: %d %q", status, body)
	}
	status, _, _ = getThen(t, ts, "nobody-ever")
	if status != http.StatusNotFound {
		t.Fatalf("unknown id: %d, want 404", status)
	}
}

func TestIngressEncodeThreadsResultID(t *testing.T) {
	var seen atomic.Value
	s, err := NewServer(Options{
		Dispatcher: DispatchFunc(func(_ context.Context, _ string, payload []byte) ([]byte, error) {
			seen.Store(string(payload))
			return []byte("ok"), nil
		}),
		Encode: func(id string, payload []byte) []byte {
			return []byte(id + "|" + string(payload))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()

	id := postDo(t, ts, "job", "body", "")
	if status, _, _ := getThen(t, ts, id); status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if got := seen.Load(); got != id+"|body" {
		t.Fatalf("dispatched payload %q, want id-encoded %q", got, id+"|body")
	}
}
