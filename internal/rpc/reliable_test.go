package rpc

import (
	"context"
	"errors"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// --- RetryPolicy ---

func TestBackoffGrowsExponentiallyAndCaps(t *testing.T) {
	p := RetryPolicy{Max: 5, Base: 10 * time.Millisecond, Cap: 45 * time.Millisecond, Multiplier: 2}
	want := []time.Duration{10, 20, 40, 45, 45}
	for i, w := range want {
		if got := p.Backoff(i, nil); got != w*time.Millisecond {
			t.Fatalf("backoff(%d) = %v, want %v", i, got, w*time.Millisecond)
		}
	}
}

func TestBackoffJitterStaysBounded(t *testing.T) {
	p := RetryPolicy{Base: 100 * time.Millisecond, Multiplier: 2, Jitter: 0.5}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		d := p.Backoff(0, rng)
		if d < 50*time.Millisecond || d > 150*time.Millisecond {
			t.Fatalf("jittered backoff %v outside ±50%% of base", d)
		}
	}
}

func TestZeroRetryPolicyNoBackoff(t *testing.T) {
	var p RetryPolicy
	if p.Backoff(3, nil) != 0 {
		t.Fatal("zero policy produced a backoff")
	}
}

// --- Breaker ---

func TestBreakerOpensAfterThresholdAndRecovers(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	b := NewBreaker(BreakerConfig{Threshold: 3, Cooldown: time.Second}, clock)

	for i := 0; i < 2; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("closed breaker rejected call %d", i)
		}
		b.Record(false)
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state after 2 failures = %v", b.State())
	}
	if err := b.Allow(); err != nil {
		t.Fatal("third call rejected while closed")
	}
	b.Record(false) // trips
	if b.State() != BreakerOpen || b.Opens() != 1 {
		t.Fatalf("state = %v opens = %d, want open/1", b.State(), b.Opens())
	}
	if err := b.Allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("open breaker admitted a call: %v", err)
	}

	now = now.Add(time.Second) // cooldown elapses -> half-open probe
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state after cooldown = %v", b.State())
	}
	if err := b.Allow(); err != nil {
		t.Fatal("half-open breaker rejected the probe")
	}
	if err := b.Allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	b.Record(true) // probe succeeds -> closed
	if b.State() != BreakerClosed {
		t.Fatalf("state after successful probe = %v", b.State())
	}
	if err := b.Allow(); err != nil {
		t.Fatal("recovered breaker rejected a call")
	}
}

func TestBreakerFailedProbeReopens(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewBreaker(BreakerConfig{Threshold: 1, Cooldown: time.Second}, func() time.Time { return now })
	b.Allow()
	b.Record(false)
	now = now.Add(time.Second)
	if err := b.Allow(); err != nil {
		t.Fatal("probe rejected")
	}
	b.Record(false)
	if b.State() != BreakerOpen || b.Opens() != 2 {
		t.Fatalf("failed probe: state = %v opens = %d", b.State(), b.Opens())
	}
}

func TestBreakerDropReleasesProbe(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewBreaker(BreakerConfig{Threshold: 1, Cooldown: time.Second}, func() time.Time { return now })
	b.Allow()
	b.Record(false)
	now = now.Add(time.Second)
	if err := b.Allow(); err != nil {
		t.Fatal("probe rejected")
	}
	b.Drop() // cancelled probe must not wedge the breaker
	if err := b.Allow(); err != nil {
		t.Fatal("breaker wedged after a dropped probe")
	}
}

func TestZeroBreakerAlwaysAllows(t *testing.T) {
	b := NewBreaker(BreakerConfig{}, nil)
	for i := 0; i < 10; i++ {
		if err := b.Allow(); err != nil {
			t.Fatal("disabled breaker rejected a call")
		}
		b.Record(false)
	}
}

// --- ReliableClient ---

// flakyDialer yields connections that die after serving `failFirst`
// dials, then healthy ones, all against the same server.
type flakyDialer struct {
	srv       *Server
	mu        sync.Mutex
	dials     int
	failFirst int // these many initial dials yield pre-closed conns
}

func (d *flakyDialer) dial() (net.Conn, error) {
	d.mu.Lock()
	n := d.dials
	d.dials++
	d.mu.Unlock()
	cc, sc := Pair()
	if n < d.failFirst {
		cc.Close()
		sc.Close()
		return cc, nil
	}
	d.srv.ServeConn(sc)
	return cc, nil
}

func reliableOpts() ReliableOptions {
	return ReliableOptions{
		Callers:     8,
		Retry:       RetryPolicy{Max: 4, Base: time.Millisecond, Cap: 5 * time.Millisecond, Multiplier: 2},
		Breaker:     BreakerConfig{Threshold: 10, Cooldown: 50 * time.Millisecond},
		Seed:        1,
		CallTimeout: 2 * time.Second,
	}
}

func TestReliableCallRetriesDeadConnections(t *testing.T) {
	srv := echoServer()
	defer srv.Close()
	d := &flakyDialer{srv: srv, failFirst: 2}
	rc := NewReliableClient(d.dial, reliableOpts())
	defer rc.Close()
	rc.MarkIdempotent("echo")

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	out, err := rc.Call(ctx, "echo", []byte("survives"))
	if err != nil {
		t.Fatalf("call over flaky dialer = %v", err)
	}
	if string(out) != "survives" {
		t.Fatalf("out = %q", out)
	}
	if st := rc.Stats(); st.Retries == 0 {
		t.Fatalf("no retries recorded: %+v", st)
	}
}

func TestReliableServerErrorNotRetried(t *testing.T) {
	srv := echoServer() // "fail" handler always errors
	defer srv.Close()
	d := &flakyDialer{srv: srv}
	rc := NewReliableClient(d.dial, reliableOpts())
	defer rc.Close()
	rc.MarkIdempotent("fail")

	_, err := rc.Call(context.Background(), "fail", nil)
	var se ServerError
	if !errors.As(err, &se) || err.Error() != "boom" {
		t.Fatalf("err = %v, want ServerError boom", err)
	}
	if st := rc.Stats(); st.Retries != 0 {
		t.Fatalf("application error was retried: %+v", st)
	}
}

func TestReliableNonIdempotentNotRetried(t *testing.T) {
	srv := echoServer()
	defer srv.Close()
	d := &flakyDialer{srv: srv, failFirst: 1}
	rc := NewReliableClient(d.dial, reliableOpts())
	defer rc.Close()
	// "echo" not marked idempotent: the dead-connection failure must
	// surface instead of being replayed.
	if _, err := rc.Call(context.Background(), "echo", []byte("x")); err == nil {
		t.Fatal("non-idempotent transport failure was silently retried")
	}
	if st := rc.Stats(); st.Retries != 0 {
		t.Fatalf("retries = %d, want 0", st.Retries)
	}
}

func TestReliableBreakerShedsAndRecovers(t *testing.T) {
	srv := echoServer()
	defer srv.Close()
	d := &flakyDialer{srv: srv, failFirst: 1 << 30} // every dial dead for now
	opts := reliableOpts()
	opts.Retry = RetryPolicy{} // isolate the breaker from retries
	opts.Breaker = BreakerConfig{Threshold: 3, Cooldown: 40 * time.Millisecond}
	rc := NewReliableClient(d.dial, opts)
	defer rc.Close()

	for i := 0; i < 3; i++ {
		if _, err := rc.Call(context.Background(), "echo", nil); err == nil {
			t.Fatal("call on dead transport succeeded")
		}
	}
	if rc.Breaker().State() != BreakerOpen {
		t.Fatalf("breaker state = %v after 3 consecutive failures", rc.Breaker().State())
	}
	if _, err := rc.Call(context.Background(), "echo", nil); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("open breaker did not shed: %v", err)
	}
	if rc.Stats().Rejected == 0 {
		t.Fatal("rejected counter not bumped")
	}

	// Server heals; after the cooldown a half-open probe closes it.
	d.mu.Lock()
	d.failFirst = 0
	d.mu.Unlock()
	time.Sleep(60 * time.Millisecond)
	out, err := rc.Call(context.Background(), "echo", []byte("probe"))
	if err != nil || string(out) != "probe" {
		t.Fatalf("half-open probe failed: %q %v", out, err)
	}
	if rc.Breaker().State() != BreakerClosed {
		t.Fatalf("breaker did not close after successful probe: %v", rc.Breaker().State())
	}
}

func TestReliableHeartbeatTriggersReconnect(t *testing.T) {
	srv := echoServer()
	defer srv.Close()

	var conns []net.Conn
	var mu sync.Mutex
	dial := func() (net.Conn, error) {
		cc, sc := Pair()
		srv.ServeConn(sc)
		mu.Lock()
		conns = append(conns, cc)
		mu.Unlock()
		return cc, nil
	}
	opts := reliableOpts()
	opts.HeartbeatInterval = 10 * time.Millisecond
	opts.HeartbeatTimeout = 30 * time.Millisecond
	rc := NewReliableClient(dial, opts)
	defer rc.Close()
	rc.MarkIdempotent("echo")

	if _, err := rc.Call(context.Background(), "echo", []byte("a")); err != nil {
		t.Fatal(err)
	}
	// Sever the first connection out from under the client; the
	// heartbeat (or the next call) must notice and redial.
	mu.Lock()
	conns[0].Close()
	mu.Unlock()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := rc.Call(context.Background(), "echo", []byte("b")); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("client never recovered after severed connection")
		}
		time.Sleep(5 * time.Millisecond)
	}
	mu.Lock()
	n := len(conns)
	mu.Unlock()
	if n < 2 {
		t.Fatalf("dials = %d, want a reconnect", n)
	}
}

func TestReliableCallTimeoutRetriesWithinDeadline(t *testing.T) {
	// First invocation hangs; the per-attempt timeout cuts it and the
	// retry succeeds — the (a) acceptance behaviour at the unit level.
	var calls atomic.Int32
	srv := NewServer()
	srv.RegisterCtx("sometimes", func(ctx context.Context, p []byte) ([]byte, error) {
		if calls.Add(1) == 1 {
			<-ctx.Done()
			return nil, ctx.Err()
		}
		return []byte("ok"), nil
	})
	defer srv.Close()
	d := &flakyDialer{srv: srv}
	opts := reliableOpts()
	opts.CallTimeout = 30 * time.Millisecond
	rc := NewReliableClient(d.dial, opts)
	defer rc.Close()
	rc.MarkIdempotent("sometimes")

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	out, err := rc.Call(ctx, "sometimes", nil)
	if err != nil || string(out) != "ok" {
		t.Fatalf("out=%q err=%v", out, err)
	}
	if rc.Stats().Retries == 0 {
		t.Fatal("timed-out attempt was not retried")
	}
}

func TestReliableRespectsCallerDeadline(t *testing.T) {
	srv := NewServer()
	srv.RegisterCtx("hang", func(ctx context.Context, p []byte) ([]byte, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	defer srv.Close()
	d := &flakyDialer{srv: srv}
	opts := reliableOpts()
	opts.CallTimeout = 0
	rc := NewReliableClient(d.dial, opts)
	defer rc.Close()
	rc.MarkIdempotent("hang")
	ctx, cancel := context.WithTimeout(context.Background(), 40*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := rc.Call(ctx, "hang", nil)
	if err == nil {
		t.Fatal("hung call returned")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("caller deadline not honoured promptly")
	}
}
