package rpc

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
)

// obsLog is a goroutine-safe record of observer invocations (the client
// invokes the done callback from its read loop).
type obsLog struct {
	mu      sync.Mutex
	started []string
	errs    []error
}

func (o *obsLog) observer(method string, payload []byte) func(error) {
	o.mu.Lock()
	o.started = append(o.started, method+":"+string(payload))
	o.mu.Unlock()
	return func(err error) {
		o.mu.Lock()
		o.errs = append(o.errs, err)
		o.mu.Unlock()
	}
}

func (o *obsLog) snapshot() ([]string, []error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]string{}, o.started...), append([]error{}, o.errs...)
}

func TestClientObserverSeesOutcomePerCall(t *testing.T) {
	c := pipeClientServer(t, echoServer(), 4)
	var log obsLog
	c.SetObserver(log.observer)

	if _, err := c.CallSync("echo", []byte("hi")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CallSync("fail", nil); err == nil {
		t.Fatal("fail call succeeded")
	}
	started, errs := log.snapshot()
	if len(started) != 2 || started[0] != "echo:hi" || started[1] != "fail:" {
		t.Fatalf("observed starts = %v", started)
	}
	if len(errs) != 2 || errs[0] != nil || errs[1] == nil {
		t.Fatalf("observed outcomes = %v", errs)
	}
}

func TestClientObserverIgnoresPings(t *testing.T) {
	c := pipeClientServer(t, echoServer(), 4)
	var log obsLog
	c.SetObserver(log.observer)
	if err := c.Ping(context.Background()); err != nil {
		t.Fatal(err)
	}
	if started, _ := log.snapshot(); len(started) != 0 {
		t.Fatalf("pings observed: %v", started)
	}
}

func TestClientObserverClears(t *testing.T) {
	c := pipeClientServer(t, echoServer(), 4)
	var log obsLog
	c.SetObserver(log.observer)
	c.SetObserver(nil)
	if _, err := c.CallSync("echo", nil); err != nil {
		t.Fatal(err)
	}
	if started, _ := log.snapshot(); len(started) != 0 {
		t.Fatalf("cleared observer still invoked: %v", started)
	}
}

func TestServerInterceptorWrapsPlainAndCtxHandlers(t *testing.T) {
	s := NewServer()
	s.Register("plain", func(p []byte) ([]byte, error) { return append(p, '!'), nil })
	s.RegisterCtx("withctx", func(ctx context.Context, p []byte) ([]byte, error) {
		return append(p, '?'), nil
	})
	var mu sync.Mutex
	var seen []string
	s.SetInterceptor(func(ctx context.Context, method string, payload []byte, next HandlerCtx) ([]byte, error) {
		mu.Lock()
		seen = append(seen, method+":"+string(payload))
		mu.Unlock()
		return next(ctx, payload)
	})
	c := pipeClientServer(t, s, 4)

	out, err := c.CallSync("plain", []byte("a"))
	if err != nil || string(out) != "a!" {
		t.Fatalf("plain = %q, %v", out, err)
	}
	out, err = c.CallSync("withctx", []byte("b"))
	if err != nil || string(out) != "b?" {
		t.Fatalf("withctx = %q, %v", out, err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 2 || seen[0] != "plain:a" || seen[1] != "withctx:b" {
		t.Fatalf("intercepted = %v", seen)
	}
}

func TestServerInterceptorCanShortCircuit(t *testing.T) {
	s := echoServer()
	s.SetInterceptor(func(ctx context.Context, method string, payload []byte, next HandlerCtx) ([]byte, error) {
		if method == "echo" {
			return nil, errors.New("vetoed")
		}
		return next(ctx, payload)
	})
	c := pipeClientServer(t, s, 4)
	if _, err := c.CallSync("echo", nil); err == nil || !strings.Contains(err.Error(), "vetoed") {
		t.Fatalf("err = %v", err)
	}
}
