// Command hivemind-benchjson converts `go test -bench -benchmem` output
// into a JSON document keyed by label, so before/after baselines can be
// committed side by side (BENCH_rpc.json) and diffed by CI.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./internal/rpc/ > bench.out
//	hivemind-benchjson -in bench.out -out BENCH_rpc.json -label post
//
// When -out already exists, the new label is merged into it: recording
// a "post" run preserves the committed "pre" baseline.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerSec    float64 `json:"mb_per_sec,omitempty"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Run is one labelled benchmark sweep plus the environment it ran in.
type Run struct {
	GOOS    string   `json:"goos,omitempty"`
	GOARCH  string   `json:"goarch,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

// benchLine matches e.g.
//
//	BenchmarkCallSync64B-4  350659  3486 ns/op  18.36 MB/s  168 B/op  4 allocs/op
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) MB/s)?(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func parse(r io.Reader) (Run, error) {
	var run Run
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			run.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			run.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			run.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		res := Result{Name: m[1]}
		res.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
		res.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
		if m[4] != "" {
			res.MBPerSec, _ = strconv.ParseFloat(m[4], 64)
		}
		if m[5] != "" {
			res.BytesPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		if m[6] != "" {
			res.AllocsPerOp, _ = strconv.ParseInt(m[6], 10, 64)
		}
		run.Results = append(run.Results, res)
	}
	return run, sc.Err()
}

func main() {
	in := flag.String("in", "", "benchmark output to parse (default stdin)")
	out := flag.String("out", "", "JSON file to write (default stdout); existing labels are preserved")
	label := flag.String("label", "post", "label for this run (e.g. pre, post)")
	flag.Parse()

	src := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		src = f
	}
	run, err := parse(src)
	if err != nil {
		fatal(err)
	}
	if len(run.Results) == 0 {
		fatal(fmt.Errorf("no benchmark lines found in input"))
	}

	doc := map[string]Run{}
	if *out != "" {
		if prev, err := os.ReadFile(*out); err == nil {
			if err := json.Unmarshal(prev, &doc); err != nil {
				fatal(fmt.Errorf("existing %s is not a benchjson document: %w", *out, err))
			}
		}
	}
	doc[*label] = run

	buf, err := marshalSorted(doc)
	if err != nil {
		fatal(err)
	}
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d results under label %q to %s\n", len(run.Results), *label, *out)
}

// marshalSorted renders the document with stable key order so committed
// baselines produce minimal diffs.
func marshalSorted(doc map[string]Run) ([]byte, error) {
	labels := make([]string, 0, len(doc))
	for l := range doc {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	var b strings.Builder
	b.WriteString("{\n")
	for i, l := range labels {
		run := doc[l]
		sort.Slice(run.Results, func(a, z int) bool { return run.Results[a].Name < run.Results[z].Name })
		body, err := json.MarshalIndent(run, "  ", "  ")
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(&b, "  %q: %s", l, body)
		if i < len(labels)-1 {
			b.WriteString(",")
		}
		b.WriteString("\n")
	}
	b.WriteString("}\n")
	return []byte(b.String()), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hivemind-benchjson:", err)
	os.Exit(1)
}
