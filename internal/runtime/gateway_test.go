package runtime

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hivemind/internal/rpc"
)

func gatewayPair(t *testing.T, g *Gateway) *rpc.Client {
	t.Helper()
	cc, sc := rpc.Pair()
	g.Server().ServeConn(sc)
	c := rpc.NewClient(cc, 8)
	t.Cleanup(func() { c.Close(); g.Close() })
	return c
}

func TestGatewayExpose(t *testing.T) {
	rt := New(DefaultConfig(), nil)
	defer rt.Close()
	rt.Register("upper", func(ctx context.Context, in []byte) ([]byte, error) {
		return bytes.ToUpper(in), nil
	})
	g := NewGateway(rt, time.Second)
	g.Expose("collectImage.recognize", "upper")
	c := gatewayPair(t, g)

	out, err := c.CallSync("collectImage.recognize", []byte("swarm"))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "SWARM" {
		t.Fatalf("out = %q", out)
	}
	if rt.Stats().Invocations != 1 {
		t.Fatal("runtime not invoked through gateway")
	}
}

func TestGatewayPropagatesErrors(t *testing.T) {
	rt := New(DefaultConfig(), nil)
	defer rt.Close()
	g := NewGateway(rt, time.Second)
	g.Expose("m", "unregistered")
	c := gatewayPair(t, g)
	if _, err := c.CallSync("m", nil); err == nil || !strings.Contains(err.Error(), "not registered") {
		t.Fatalf("err = %v", err)
	}
}

func TestGatewayTimeout(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Retries = 0
	rt := New(cfg, nil)
	defer rt.Close()
	rt.Register("slow", func(ctx context.Context, in []byte) ([]byte, error) {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(5 * time.Second):
			return nil, nil
		}
	})
	g := NewGateway(rt, 30*time.Millisecond)
	g.Expose("m", "slow")
	c := gatewayPair(t, g)
	start := time.Now()
	_, err := c.CallSync("m", nil)
	if err == nil {
		t.Fatal("slow call succeeded past its deadline")
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("deadline not enforced promptly")
	}
}

func TestGatewayChain(t *testing.T) {
	rt := New(DefaultConfig(), nil)
	defer rt.Close()
	rt.Register("trim", func(ctx context.Context, in []byte) ([]byte, error) {
		return bytes.TrimSpace(in), nil
	})
	rt.Register("upper", func(ctx context.Context, in []byte) ([]byte, error) {
		return bytes.ToUpper(in), nil
	})
	g := NewGateway(rt, time.Second)
	g.ExposeChain("pipeline", []string{"trim", "upper"})
	c := gatewayPair(t, g)
	out, err := c.CallSync("pipeline", []byte("  people  "))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "PEOPLE" {
		t.Fatalf("out = %q", out)
	}
	// Intermediate tier outputs persisted through the store.
	if _, err := rt.Store().Get("out/trim/pipeline"); err != nil {
		t.Fatal("chain did not persist intermediates")
	}
}

// killNext fails the next invocation of a function exactly n times —
// the runtime.Injector face of a "killed container".
type killNext struct {
	mu   sync.Mutex
	op   string
	left int
}

func (k *killNext) Fault(op string) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	if op == k.op && k.left > 0 {
		k.left--
		return errors.New("container killed")
	}
	return nil
}

// Acceptance (b): a killed function mid-chain is respawned once by the
// gateway and the chain completes.
func TestGatewayRespawnsKilledChainStep(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Retries = 0 // isolate gateway-level respawn from runtime retries
	cfg.Injector = &killNext{op: "invoke/mid", left: 1}
	rt := New(cfg, nil)
	defer rt.Close()
	for _, name := range []string{"head", "mid", "tail"} {
		rt.Register(name, func(ctx context.Context, in []byte) ([]byte, error) {
			return append(in, '.'), nil
		})
	}
	gcfg := DefaultGatewayConfig()
	gcfg.Timeout = 5 * time.Second
	gcfg.RespawnDelay = time.Millisecond
	g := NewGatewayConfig(rt, gcfg)
	g.ExposeChain("pipeline", []string{"head", "mid", "tail"})
	c := gatewayPair(t, g)

	out, err := c.CallSync("pipeline", []byte("x"))
	if err != nil {
		t.Fatalf("chain with killed step = %v", err)
	}
	if string(out) != "x..." {
		t.Fatalf("out = %q", out)
	}
	if rt.Stats().Killed != 1 {
		t.Fatalf("killed = %d, want 1", rt.Stats().Killed)
	}
}

func TestGatewayChainStepExhaustsRespawns(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Retries = 0
	cfg.Injector = &killNext{op: "invoke/mid", left: 1 << 30} // never recovers
	rt := New(cfg, nil)
	defer rt.Close()
	for _, name := range []string{"head", "mid"} {
		rt.Register(name, func(ctx context.Context, in []byte) ([]byte, error) {
			return in, nil
		})
	}
	gcfg := DefaultGatewayConfig()
	gcfg.Timeout = 2 * time.Second
	gcfg.RespawnDelay = time.Millisecond
	g := NewGatewayConfig(rt, gcfg)
	g.ExposeChain("pipeline", []string{"head", "mid"})
	c := gatewayPair(t, g)
	if _, err := c.CallSync("pipeline", []byte("x")); err == nil ||
		!strings.Contains(err.Error(), "at tier mid") {
		t.Fatalf("err = %v, want tier-mid failure", err)
	}
}

// A chain step that hangs past StepTimeout is respawned with a fresh
// step deadline and the chain completes.
func TestGatewayStepTimeoutRespawn(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Retries = 0
	rt := New(cfg, nil)
	defer rt.Close()
	var calls atomic.Int32
	rt.Register("flappy", func(ctx context.Context, in []byte) ([]byte, error) {
		if calls.Add(1) == 1 {
			<-ctx.Done() // first run hangs until the step deadline kills it
			return nil, ctx.Err()
		}
		return []byte("recovered"), nil
	})
	gcfg := DefaultGatewayConfig()
	gcfg.Timeout = 5 * time.Second
	gcfg.StepTimeout = 30 * time.Millisecond
	gcfg.RespawnDelay = time.Millisecond
	g := NewGatewayConfig(rt, gcfg)
	g.ExposeChain("pipeline", []string{"flappy"})
	c := gatewayPair(t, g)
	out, err := c.CallSync("pipeline", nil)
	if err != nil || string(out) != "recovered" {
		t.Fatalf("out=%q err=%v", out, err)
	}
	if calls.Load() != 2 {
		t.Fatalf("calls = %d, want 2 (hang + respawn)", calls.Load())
	}
}

// Client-side cancellation crosses the RPC boundary and stops the
// running function.
func TestGatewayClientCancelPropagates(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Retries = 0
	rt := New(cfg, nil)
	defer rt.Close()
	cancelled := make(chan struct{})
	rt.Register("watch", func(ctx context.Context, in []byte) ([]byte, error) {
		select {
		case <-ctx.Done():
			close(cancelled)
			return nil, ctx.Err()
		case <-time.After(5 * time.Second):
			return nil, errors.New("never cancelled")
		}
	})
	g := NewGateway(rt, 0)
	g.Expose("m", "watch")
	c := gatewayPair(t, g)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	if _, err := c.Call(ctx, "m", nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	select {
	case <-cancelled:
	case <-time.After(2 * time.Second):
		t.Fatal("cancellation did not reach the runtime function")
	}
}

func TestGatewayClosedServerFailsCalls(t *testing.T) {
	rt := New(DefaultConfig(), nil)
	defer rt.Close()
	rt.Register("echo", func(ctx context.Context, in []byte) ([]byte, error) { return in, nil })
	g := NewGateway(rt, time.Second)
	g.Expose("m", "echo")
	cc, sc := rpc.Pair()
	g.Server().ServeConn(sc)
	c := rpc.NewClient(cc, 4)
	defer c.Close()
	if _, err := c.CallSync("m", []byte("x")); err != nil {
		t.Fatalf("pre-close call = %v", err)
	}
	g.Close()
	if _, err := c.CallSync("m", []byte("x")); err == nil {
		t.Fatal("call succeeded against a closed gateway")
	}
}

type countingMonitor struct {
	mu     sync.Mutex
	counts map[string]int
	obs    int
}

func (m *countingMonitor) CountEvent(name string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.counts == nil {
		m.counts = map[string]int{}
	}
	m.counts[name]++
}

func (m *countingMonitor) Observe(name string, v float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.obs++
}

func (m *countingMonitor) get(name string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counts[name]
}

func TestGatewayReportsIntoMonitor(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Retries = 0
	cfg.Injector = &killNext{op: "invoke/mid", left: 1}
	rt := New(cfg, nil)
	defer rt.Close()
	rt.Register("mid", func(ctx context.Context, in []byte) ([]byte, error) { return in, nil })
	gcfg := DefaultGatewayConfig()
	gcfg.Timeout = 2 * time.Second
	gcfg.RespawnDelay = time.Millisecond
	g := NewGatewayConfig(rt, gcfg)
	mon := &countingMonitor{}
	g.SetMonitor(mon)
	g.Expose("direct", "mid")
	g.ExposeChain("pipeline", []string{"mid"})
	c := gatewayPair(t, g)

	if _, err := c.CallSync("pipeline", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CallSync("direct", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if mon.get("gateway-ok") != 2 {
		t.Fatalf("gateway-ok = %d, want 2", mon.get("gateway-ok"))
	}
	if mon.get("gateway-respawn") != 1 {
		t.Fatalf("gateway-respawn = %d, want 1", mon.get("gateway-respawn"))
	}
	mon.mu.Lock()
	obs := mon.obs
	mon.mu.Unlock()
	if obs == 0 {
		t.Fatal("no latency observations")
	}
}
