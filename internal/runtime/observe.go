package runtime

import (
	"context"
	"encoding/binary"
	"sync"
	"time"

	"hivemind/internal/rpc"
	"hivemind/internal/stats"
	"hivemind/internal/trace"
)

// This file is the live-substrate observability layer (§4.7's
// application-progress monitoring on the real stack): a trace context
// carried in the gateway task envelope, a per-task stage clock that
// feeds the paper's four-stage latency decomposition (network /
// management / data-IO / execution, Figs. 3a/6b/12), and the
// client/server RPC interceptors that time each hop. Nothing here
// touches the RPC wire format — the context rides inside the opaque
// payload envelope.

// taskMagicV2 prefixes envelopes that carry a trace context and a send
// timestamp in addition to the task id:
//
//	"HMT2" | u16 idLen | id | u16 traceLen | traceID |
//	u64 parentSpan | i64 sentAtUnixNano | payload
//
// Decoders accept both generations, so traced clients interoperate with
// gateways and tools that only understand the v1 envelope's semantics.
var taskMagicV2 = []byte("HMT2")

// TaskEnvelope is the decoded header of an EncodeTask/EncodeTaskTraced
// payload.
type TaskEnvelope struct {
	// ID is the client-chosen task id ("" in a v2 envelope that only
	// carries tracing, though EncodeTaskTraced always sets one).
	ID string
	// Trace is the propagated trace context (zero for v1 envelopes).
	Trace trace.SpanContext
	// SentAtNS is the client's send timestamp (UnixNano; 0 for v1).
	// The gateway derives the network stage from it, so it is only
	// meaningful when client and gateway clocks agree — loopback and
	// NTP-disciplined fleets, which is what the live substrate runs on.
	SentAtNS int64
}

// EncodeTaskTraced wraps a chain payload with a task id, a trace
// context, and the send timestamp. The gateway joins re-submitted ids
// against its checkpoints exactly as with EncodeTask, and additionally
// parents its spans under tc and charges the transfer delay to the
// network stage.
func EncodeTaskTraced(id string, tc trace.SpanContext, sentAt time.Time, payload []byte) []byte {
	out := make([]byte, 0, len(taskMagicV2)+2+len(id)+2+len(tc.TraceID)+8+8+len(payload))
	out = append(out, taskMagicV2...)
	var l [2]byte
	binary.BigEndian.PutUint16(l[:], uint16(len(id)))
	out = append(out, l[:]...)
	out = append(out, id...)
	binary.BigEndian.PutUint16(l[:], uint16(len(tc.TraceID)))
	out = append(out, l[:]...)
	out = append(out, tc.TraceID...)
	var q [8]byte
	binary.BigEndian.PutUint64(q[:], tc.Parent)
	out = append(out, q[:]...)
	binary.BigEndian.PutUint64(q[:], uint64(sentAt.UnixNano()))
	out = append(out, q[:]...)
	return append(out, payload...)
}

// DecodeTaskEnvelope splits a task payload of either envelope
// generation. ok is false for bare payloads, which are returned
// unchanged with a zero envelope.
func DecodeTaskEnvelope(raw []byte) (env TaskEnvelope, payload []byte, ok bool) {
	n := len(taskMagicV2)
	if len(raw) >= n+2 && string(raw[:n]) == string(taskMagicV2) {
		rest := raw[n:]
		idLen := int(binary.BigEndian.Uint16(rest[:2]))
		rest = rest[2:]
		if len(rest) < idLen+2 {
			return TaskEnvelope{}, raw, false
		}
		env.ID = string(rest[:idLen])
		rest = rest[idLen:]
		traceLen := int(binary.BigEndian.Uint16(rest[:2]))
		rest = rest[2:]
		if len(rest) < traceLen+16 {
			return TaskEnvelope{}, raw, false
		}
		env.Trace.TraceID = string(rest[:traceLen])
		rest = rest[traceLen:]
		env.Trace.Parent = binary.BigEndian.Uint64(rest[:8])
		env.SentAtNS = int64(binary.BigEndian.Uint64(rest[8:16]))
		return env, rest[16:], true
	}
	id, payload, ok := DecodeTask(raw)
	if !ok {
		return TaskEnvelope{}, raw, false
	}
	return TaskEnvelope{ID: id}, payload, true
}

// stageClock accumulates one task's per-stage time from the
// instrumentation points it flows through (runtime execution, store
// exchanges, checkpoint I/O). Goroutine-safe: fan-out tiers report
// concurrently. All methods tolerate a nil receiver.
type stageClock struct {
	mu    sync.Mutex
	parts map[stats.Stage]float64
}

func newStageClock() *stageClock {
	return &stageClock{parts: make(map[stats.Stage]float64, len(stats.AllStages))}
}

// add charges d to a stage.
func (c *stageClock) add(st stats.Stage, d time.Duration) {
	if c == nil || d <= 0 {
		return
	}
	c.mu.Lock()
	c.parts[st] += d.Seconds()
	c.mu.Unlock()
}

// track starts timing a stage; the returned func stops and charges it.
func (c *stageClock) track(st stats.Stage) func() {
	if c == nil {
		return func() {}
	}
	t0 := time.Now()
	return func() { c.add(st, time.Since(t0)) }
}

// get returns the accumulated seconds for a stage.
func (c *stageClock) get(st stats.Stage) float64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.parts[st]
}

// taskTrace carries a task's observability state down the invocation
// path via context: instrumentation points read it with taskTraceFrom
// and stay zero-cost when it is absent.
type taskTrace struct {
	tracer  *trace.Live
	clock   *stageClock
	traceID string
	parent  uint64 // span id the next layer's spans parent under
}

type taskTraceKey struct{}

func withTaskTrace(ctx context.Context, tt *taskTrace) context.Context {
	return context.WithValue(ctx, taskTraceKey{}, tt)
}

func taskTraceFrom(ctx context.Context) *taskTrace {
	tt, _ := ctx.Value(taskTraceKey{}).(*taskTrace)
	return tt
}

// stages returns the task's stage clock (nil-safe).
func (tt *taskTrace) stages() *stageClock {
	if tt == nil {
		return nil
	}
	return tt.clock
}

// span opens a child span of the task's current parent (nil when the
// task is untraced).
func (tt *taskTrace) span(name, category, track string) *trace.LiveSpan {
	if tt == nil {
		return nil
	}
	return tt.tracer.Start(name, category, track, trace.SpanContext{TraceID: tt.traceID, Parent: tt.parent})
}

// TraceCallObserver returns an rpc.CallObserver that times every
// outbound request as a span on the "rpc" lane, linked to the trace id
// found in the payload's task envelope (if any). Install it via
// Client.SetObserver or the Observer fields of ReliableOptions /
// FailoverOptions.
func TraceCallObserver(l *trace.Live) rpc.CallObserver {
	return func(method string, payload []byte) func(error) {
		env, _, _ := DecodeTaskEnvelope(payload)
		sp := l.Start("call "+method, string(stats.StageNetwork), "rpc", env.Trace)
		if sp == nil {
			return nil
		}
		return func(err error) {
			if err != nil {
				sp.SetArg("error", err.Error())
			}
			sp.End()
		}
	}
}

// TraceServerInterceptor returns an rpc.ServerInterceptor that times
// every inbound request as a span on the given lane, linked like
// TraceCallObserver. Install it via Server.SetInterceptor.
func TraceServerInterceptor(l *trace.Live, track string) rpc.ServerInterceptor {
	return func(ctx context.Context, method string, payload []byte, next rpc.HandlerCtx) ([]byte, error) {
		env, _, _ := DecodeTaskEnvelope(payload)
		sp := l.Start("serve "+method, string(stats.StageNetwork), track, env.Trace)
		out, err := next(ctx, payload)
		if err != nil {
			sp.SetArg("error", err.Error())
		}
		sp.End()
		return out, err
	}
}

// taskObservation times one gateway task end-to-end and feeds the
// gateway's tracer and breakdown on finish. A nil observation (tracing
// and breakdown both unconfigured) is inert.
type taskObservation struct {
	g       *Gateway
	span    *trace.LiveSpan
	clock   *stageClock
	trace   string
	start   time.Time
	network float64
}

// observeTask opens the gateway-layer span and threads a taskTrace
// through ctx so the runtime and store layers charge their stages to
// this task. traceID must be non-empty for traced tasks; the network
// stage is derived from the envelope's send timestamp (clamped at 0 —
// skewed clocks must not produce negative stages).
func (g *Gateway) observeTask(ctx context.Context, method, traceID string, env TaskEnvelope, start time.Time) (context.Context, *taskObservation) {
	if g.cfg.Tracer == nil && g.cfg.Breakdown == nil {
		return ctx, nil
	}
	o := &taskObservation{g: g, start: start, clock: newStageClock(), trace: traceID}
	if env.SentAtNS > 0 {
		if d := start.UnixNano() - env.SentAtNS; d > 0 {
			o.network = time.Duration(d).Seconds()
		}
	}
	o.span = g.cfg.Tracer.Start(method, string(stats.StageManagement), "gateway",
		trace.SpanContext{TraceID: traceID, Parent: env.Trace.Parent})
	ctx = withTaskTrace(ctx, &taskTrace{
		tracer:  g.cfg.Tracer,
		clock:   o.clock,
		traceID: traceID,
		parent:  o.span.ID(),
	})
	return ctx, o
}

// admission runs the gateway's admission gate (leadership check) timed
// as a controller-lane span: deciding whether this node may serve is
// controller work, so the trace shows the management hop explicitly.
func (o *taskObservation) admission(method string, gate func() error) error {
	if o == nil {
		return gate()
	}
	sp := o.g.cfg.Tracer.Start("admit "+method, string(stats.StageManagement), "controller",
		trace.SpanContext{TraceID: o.trace, Parent: o.span.ID()})
	err := gate()
	if err != nil {
		sp.SetArg("error", err.Error())
	}
	sp.End()
	return err
}

// finish closes the gateway span and records the four-stage breakdown.
// Management is computed by subtraction (total handler time minus
// data-IO minus execution), so the stage sums reconstruct the measured
// end-to-end latency exactly up to the response's return transfer.
// Only successful tasks feed the breakdown: redirects and failures
// would skew the latency decomposition the figures are calibrated on.
func (o *taskObservation) finish(err error) {
	if o == nil {
		return
	}
	total := time.Since(o.start).Seconds()
	dataio := o.clock.get(stats.StageDataIO)
	exec := o.clock.get(stats.StageExecution)
	mgmt := total - dataio - exec
	if mgmt < 0 {
		mgmt = 0
	}
	if err != nil {
		o.span.SetArg("error", err.Error())
	}
	o.span.End()
	if bd := o.g.cfg.Breakdown; bd != nil && err == nil {
		o.g.bdMu.Lock()
		bd.Record(map[stats.Stage]float64{
			stats.StageNetwork:    o.network,
			stats.StageManagement: mgmt,
			stats.StageDataIO:     dataio,
			stats.StageExecution:  exec,
		})
		o.g.bdMu.Unlock()
	}
}
