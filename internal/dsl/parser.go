package dsl

import (
	"fmt"
	"sort"
	"strings"
)

// ops lists the recognised DSL operations (Listings 1 and 2).
var ops = map[string]bool{
	"TaskGraph": true, "Task": true, "Stream": true,
	"Parallel": true, "Overlap": true, "Serial": true, "Synchronize": true,
	"Schedule": true, "Isolate": true, "Place": true, "Restore": true,
	"Learn": true, "Persist": true,
}

// Parse tokenizes and parses DSL source into a Program.
func Parse(src string) (*Program, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{}
	for p.peek().kind != tokEOF {
		st, err := p.statement()
		if err != nil {
			return nil, err
		}
		prog.Statements = append(prog.Statements, st)
	}
	if len(prog.Statements) == 0 {
		return nil, fmt.Errorf("dsl: empty program")
	}
	return prog, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) advance() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(kind tokenKind, what string) (token, error) {
	t := p.advance()
	if t.kind != kind {
		return t, fmt.Errorf("line %d: expected %s, got %s", t.line, what, t)
	}
	return t, nil
}

// statement parses Op(arg, key=value, ...).
func (p *parser) statement() (Statement, error) {
	name, err := p.expect(tokIdent, "operation name")
	if err != nil {
		return Statement{}, err
	}
	if !ops[name.text] {
		return Statement{}, fmt.Errorf("line %d: unknown operation %q (known: %s)",
			name.line, name.text, strings.Join(knownOps(), ", "))
	}
	if _, err := p.expect(tokLParen, "'('"); err != nil {
		return Statement{}, err
	}
	st := Statement{Op: name.text, Line: name.line}
	if p.peek().kind == tokRParen {
		p.advance()
		return st, nil
	}
	for {
		arg, err := p.arg()
		if err != nil {
			return Statement{}, err
		}
		st.Args = append(st.Args, arg)
		switch t := p.advance(); t.kind {
		case tokComma:
			// Trailing comma before ')' is tolerated.
			if p.peek().kind == tokRParen {
				p.advance()
				return st, nil
			}
		case tokRParen:
			return st, nil
		default:
			return Statement{}, fmt.Errorf("line %d: expected ',' or ')', got %s", t.line, t)
		}
	}
}

// arg parses value or key=value.
func (p *parser) arg() (Arg, error) {
	// Lookahead for key=.
	if p.peek().kind == tokIdent && p.pos+1 < len(p.toks) && p.toks[p.pos+1].kind == tokEquals {
		key := p.advance().text
		p.advance() // '='
		v, err := p.value()
		if err != nil {
			return Arg{}, err
		}
		return Arg{Key: key, Value: v}, nil
	}
	v, err := p.value()
	if err != nil {
		return Arg{}, err
	}
	return Arg{Value: v}, nil
}

func (p *parser) value() (Value, error) {
	t := p.advance()
	switch t.kind {
	case tokString:
		return Value{Kind: ValString, Str: t.text}, nil
	case tokNumber:
		return Value{Kind: ValNumber, Num: t.num, Str: t.text}, nil
	case tokIdent:
		if t.text == "None" {
			return Value{Kind: ValNone, IsNone: true}, nil
		}
		return Value{Kind: ValIdent, Str: t.text}, nil
	case tokLBracket:
		list := Value{Kind: ValList}
		if p.peek().kind == tokRBracket {
			p.advance()
			return list, nil
		}
		for {
			item, err := p.value()
			if err != nil {
				return Value{}, err
			}
			// Named items inside lists (constraint=[execTime='10s']) are
			// flattened to "key=value" strings by the analyzer; here we
			// support ident '=' value inside lists.
			if item.Kind == ValIdent && p.peek().kind == tokEquals {
				p.advance()
				rhs, err := p.value()
				if err != nil {
					return Value{}, err
				}
				item = Value{Kind: ValString, Str: item.Str + "=" + rhs.Str}
				if rhs.Kind == ValNumber {
					item.Str = fmt.Sprintf("%s=%s", strings.SplitN(item.Str, "=", 2)[0], rhs.Str)
				}
			}
			list.List = append(list.List, item)
			switch nt := p.advance(); nt.kind {
			case tokComma:
				if p.peek().kind == tokRBracket {
					p.advance()
					return list, nil
				}
			case tokRBracket:
				return list, nil
			default:
				return Value{}, fmt.Errorf("line %d: expected ',' or ']', got %s", nt.line, nt)
			}
		}
	default:
		return Value{}, fmt.Errorf("line %d: expected a value, got %s", t.line, t)
	}
}

func knownOps() []string {
	out := make([]string, 0, len(ops))
	for k := range ops {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
