package scenario

import (
	"testing"

	"hivemind/internal/platform"
)

func run(t *testing.T, kind Kind, sysKind platform.SystemKind, devices int, seed int64) Result {
	t.Helper()
	cfg := DefaultConfig(kind, platform.Preset(sysKind, devices, seed))
	return Run(kind, cfg)
}

func TestScenarioACompletesOnHiveMind(t *testing.T) {
	r := run(t, ScenarioA, platform.HiveMind, 16, 1)
	if !r.Completed {
		t.Fatalf("hivemind scenario A incomplete: %s", r)
	}
	if r.Found != 15 {
		t.Fatalf("found %d items", r.Found)
	}
	if r.CompletionS <= 0 || r.CompletionS > 400 {
		t.Fatalf("completion = %g", r.CompletionS)
	}
	if r.BatteryMean <= 0 || r.BatteryMean > 1 {
		t.Fatalf("battery = %g", r.BatteryMean)
	}
	if r.TaskLatency.N() == 0 {
		t.Fatal("no pipeline latencies recorded")
	}
	if r.String() == "" {
		t.Fatal("empty result string")
	}
}

func TestScenarioAFig1Shape(t *testing.T) {
	// Fig. 1 (16 real drones): HiveMind completes fastest and uses the
	// least battery; distributed is slowest/most battery-hungry among
	// completions; centralized FaaS saturates the wireless network.
	hm := run(t, ScenarioA, platform.HiveMind, 16, 3)
	faas := run(t, ScenarioA, platform.CentralizedFaaS, 16, 3)
	dist := run(t, ScenarioA, platform.DistributedEdge, 16, 3)

	if hm.CompletionS >= faas.CompletionS {
		t.Fatalf("hivemind %.1fs not faster than centralized %.1fs", hm.CompletionS, faas.CompletionS)
	}
	if hm.CompletionS >= dist.CompletionS {
		t.Fatalf("hivemind %.1fs not faster than distributed %.1fs", hm.CompletionS, dist.CompletionS)
	}
	if hm.BatteryMean >= faas.BatteryMean || hm.BatteryMean >= dist.BatteryMean {
		t.Fatalf("hivemind battery %.3f not lowest (faas %.3f, dist %.3f)",
			hm.BatteryMean, faas.BatteryMean, dist.BatteryMean)
	}
	// Centralized ships every frame: 16 MB/s × 16 devices > 216 MB/s
	// wireless: bandwidth near saturation, far above HiveMind's.
	if faas.BWMeanMBps <= hm.BWMeanMBps {
		t.Fatalf("centralized bw %.1f not above hivemind %.1f", faas.BWMeanMBps, hm.BWMeanMBps)
	}
	if dist.BWMeanMBps >= hm.BWMeanMBps {
		t.Fatalf("distributed bw %.1f not below hivemind %.1f", dist.BWMeanMBps, hm.BWMeanMBps)
	}
}

func TestScenarioBHeavierThanA(t *testing.T) {
	a := run(t, ScenarioA, platform.HiveMind, 16, 5)
	b := run(t, ScenarioB, platform.HiveMind, 16, 5)
	if b.CompletionS <= a.CompletionS {
		t.Fatalf("scenario B (%.1fs) should outlast A (%.1fs)", b.CompletionS, a.CompletionS)
	}
	if b.TaskLatency.Median() <= a.TaskLatency.Median() {
		t.Fatalf("B pipeline median %.3f should exceed A %.3f (extra dedup tier)",
			b.TaskLatency.Median(), a.TaskLatency.Median())
	}
	// The dedup tier contributes data-sharing latency.
	if b.Breakdown.Stage("dataio").Mean() <= 0 {
		t.Fatal("no data-IO recorded for scenario B")
	}
}

func TestScenarioBDistributedStruggles(t *testing.T) {
	// §2.3: on-board execution leaves Scenario B incomplete or far
	// slower; HiveMind finishes comfortably.
	hm := run(t, ScenarioB, platform.HiveMind, 16, 7)
	dist := run(t, ScenarioB, platform.DistributedEdge, 16, 7)
	if !hm.Completed {
		t.Fatalf("hivemind scenario B incomplete: %s", hm)
	}
	if dist.Completed && dist.CompletionS < hm.CompletionS*1.5 {
		t.Fatalf("distributed B too comfortable: %s vs %s", dist, hm)
	}
}

func TestExtrapolationForCappedMissions(t *testing.T) {
	cfg := DefaultConfig(ScenarioA, platform.Preset(CentralizedKindForTest(), 16, 11))
	cfg.MaxDurationS = 30 // far too short to finish
	r := Run(ScenarioA, cfg)
	if r.Completed {
		t.Skip("mission unexpectedly completed within 30s")
	}
	if r.CompletionS <= cfg.MaxDurationS {
		t.Fatalf("extrapolated completion %.1f not beyond cap", r.CompletionS)
	}
}

// CentralizedKindForTest avoids a literal import cycle in test helper
// signatures.
func CentralizedKindForTest() platform.SystemKind { return platform.CentralizedFaaS }

func TestRoverTreasureHunt(t *testing.T) {
	hm := run(t, TreasureHunt, platform.HiveMind, 14, 9)
	if !hm.Completed {
		t.Fatalf("treasure hunt incomplete: %s", hm)
	}
	if hm.TaskLatency.N() < 14*6 {
		t.Fatalf("pipeline tasks = %d, want >= 84", hm.TaskLatency.N())
	}
	// Rovers are less power-constrained (§5.5): battery use stays modest.
	if hm.BatteryMean > 0.5 {
		t.Fatalf("rover battery %.3f suspiciously high", hm.BatteryMean)
	}
}

func TestRoverFig16Shape(t *testing.T) {
	// Fig. 16: HiveMind beats both baselines on latency for both rover
	// scenarios; distributed is the worst performer.
	for _, kind := range []Kind{TreasureHunt, Maze} {
		hm := run(t, kind, platform.HiveMind, 14, 13)
		cen := run(t, kind, platform.CentralizedFaaS, 14, 13)
		dist := run(t, kind, platform.DistributedEdge, 14, 13)
		if hm.TaskLatency.Median() >= cen.TaskLatency.Median() {
			t.Fatalf("%s: hivemind median %.3f not below centralized %.3f",
				kind, hm.TaskLatency.Median(), cen.TaskLatency.Median())
		}
		if hm.TaskLatency.Median() >= dist.TaskLatency.Median() {
			t.Fatalf("%s: hivemind median %.3f not below distributed %.3f",
				kind, hm.TaskLatency.Median(), dist.TaskLatency.Median())
		}
	}
}

func TestKindStrings(t *testing.T) {
	for _, k := range []Kind{ScenarioA, ScenarioB, TreasureHunt, Maze} {
		if k.String() == "" {
			t.Fatal("empty kind string")
		}
	}
}

func TestScenarioDeterminism(t *testing.T) {
	a := run(t, ScenarioA, platform.HiveMind, 8, 21)
	b := run(t, ScenarioA, platform.HiveMind, 8, 21)
	if a.CompletionS != b.CompletionS || a.Found != b.Found {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}

func TestDefaultConfigsPerKind(t *testing.T) {
	a := DefaultConfig(ScenarioA, platform.Preset(platform.HiveMind, 16, 1))
	if a.Items != 15 {
		t.Fatalf("scenario A items = %d", a.Items)
	}
	b := DefaultConfig(ScenarioB, platform.Preset(platform.HiveMind, 16, 1))
	if b.Items != 25 {
		t.Fatalf("scenario B items = %d", b.Items)
	}
	th := DefaultConfig(TreasureHunt, platform.Preset(platform.HiveMind, 14, 1))
	if th.System.DeviceCfg.Kind.String() != "rover" {
		t.Fatal("treasure hunt should use rovers")
	}
}

func TestDeviceFailureRecoveryWithController(t *testing.T) {
	// Fig. 10 end to end: a drone dies mid-mission. HiveMind's
	// controller detects the missing heartbeats, repartitions the lost
	// region, and the mission still completes; the centralized baseline
	// loses the region's items.
	mk := func(sysKind platform.SystemKind) Config {
		cfg := DefaultConfig(ScenarioA, platform.Preset(sysKind, 16, 31))
		cfg.FailDeviceID = 5
		cfg.FailAtS = 8
		return cfg
	}
	hm := Run(ScenarioA, mk(platform.HiveMind))
	if !hm.Completed {
		t.Fatalf("hivemind mission incomplete despite repartitioning: %s", hm)
	}
	if hm.Repartitions == 0 {
		t.Fatal("controller never repartitioned")
	}
	cen := Run(ScenarioA, mk(platform.CentralizedFaaS))
	if cen.Repartitions != 0 {
		t.Fatal("baseline should have no controller repartitions")
	}
	// The baseline either fails to find everything or takes far longer.
	if cen.Completed && cen.CompletionS < hm.CompletionS {
		t.Fatalf("baseline recovered better than hivemind: %s vs %s", cen, hm)
	}
}

func TestFailureWithoutItemsInRegionIsHarmless(t *testing.T) {
	cfg := DefaultConfig(ScenarioA, platform.Preset(platform.HiveMind, 16, 33))
	cfg.FailDeviceID = 15
	cfg.FailAtS = 1
	r := Run(ScenarioA, cfg)
	if r.Found == 0 {
		t.Fatalf("mission collapsed from one failure: %s", r)
	}
}
