// Command hivemind-live boots a real (non-simulated) replica fleet on
// loopback TCP — controller replicas fronting serverless gateways over
// a shared durable store — drives traced chain requests through it, and
// reports what the observability layer saw: a Chrome trace with spans
// from every layer (gateway, controller, RPC hop, runtime), the paper's
// four-stage latency decomposition, and the metrics registry.
//
// Usage:
//
//	hivemind-live -replicas 3 -requests 20 -trace live.json
//	hivemind-live -kill -trace live.json          # crash the primary midway
//	hivemind-live -http 127.0.0.1:8080            # keep serving /metrics /trace /debug/pprof
//	hivemind-live -ingress 127.0.0.1:8081         # keep serving the async HTTP job API
//
// With -ingress the fleet stays up serving the job API:
//
//	curl -d 'ping' 'http://127.0.0.1:8081/do/pipeline'            # → {"resultId":"..."}
//	curl 'http://127.0.0.1:8081/then/<resultId>'                  # → ping.sense.plan.act
//	curl -d 'ping' 'http://127.0.0.1:8081/do/pipeline?then=true'  # block for the result
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"sync/atomic"
	"time"

	"hivemind/internal/chaos"
	"hivemind/internal/controller"
	"hivemind/internal/ingress"
	"hivemind/internal/metrics"
	"hivemind/internal/rpc"
	"hivemind/internal/runtime"
	"hivemind/internal/stats"
	"hivemind/internal/store"
	"hivemind/internal/trace"
)

// liveNode is one controller+gateway "process" in the fleet.
type liveNode struct {
	id        int
	replica   *controller.Replica
	rt        *runtime.Runtime
	gw        *runtime.Gateway
	gwAddr    string
	breakdown *stats.Breakdown
}

func main() {
	var (
		replicas = flag.Int("replicas", 3, "controller replica count")
		requests = flag.Int("requests", 20, "traced chain requests to run")
		kill     = flag.Bool("kill", false, "crash the primary replica midway through the run")
		seed     = flag.Int64("seed", 1, "chaos/election seed")
		traceFn  = flag.String("trace", "", "write the fleet's Chrome trace to this file")
		walDir   = flag.String("wal-dir", "",
			"durable store directory: recover prior state from its snapshot+WAL and write-ahead log this run (empty: in-memory)")
		httpAddr = flag.String("http", "",
			"after the run, keep serving /metrics, /trace and /debug/pprof on this address")
		ingressAddr = flag.String("ingress", "",
			"after the run, keep serving the async HTTP job API (POST /do/:job, GET /then/:id) on this address")
	)
	flag.Parse()
	if err := run(*replicas, *requests, *kill, *seed, *traceFn, *walDir, *httpAddr, *ingressAddr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(replicas, requests int, kill bool, seed int64, traceFn, walDir, httpAddr, ingressAddr string) error {
	if replicas < 1 {
		return fmt.Errorf("need at least 1 replica, got %d", replicas)
	}
	rec := trace.NewRecorder(0)
	live := trace.NewLive(rec)
	reg := metrics.NewRegistry()
	mon := controller.NewMonitor()
	inj := chaos.NewInjector(seed, chaos.Config{})

	var db *store.DB
	if walDir != "" {
		opts := store.DefaultDurableOptions()
		opts.Fsync = store.FsyncBatch
		opts.Monitor = reg
		ddb, st, err := store.OpenDurable(walDir, opts)
		if err != nil {
			return fmt.Errorf("open durable store %s: %w", walDir, err)
		}
		defer ddb.Close()
		db = ddb
		fmt.Printf("recovered %s in %v: %d snapshot docs + %d WAL records (torn tail: %v), fence at term %d\n",
			walDir, st.Elapsed.Round(time.Microsecond), st.SnapshotDocs, st.WALRecords, st.TruncatedTail, ddb.Fence())
	} else {
		db = store.NewDB()
		db.SetMonitor(reg)
	}

	nodes, err := startFleet(replicas, seed, live, reg, mon, inj, db)
	if err != nil {
		return err
	}
	defer func() {
		for _, nd := range nodes {
			nd.replica.Kill()
			nd.gw.Close()
			nd.rt.Close()
		}
	}()
	for _, nd := range nodes {
		nd.replica.Start()
	}
	if waitPrimary(nodes, 5*time.Second) == nil {
		return fmt.Errorf("no primary elected")
	}

	addrs := make([]string, len(nodes))
	for i, nd := range nodes {
		addrs[i] = nd.gwAddr
	}
	fc := rpc.DialFailover(addrs, rpc.FailoverOptions{
		Attempts:     20 * len(nodes),
		RetryBackoff: 15 * time.Millisecond,
		CallTimeout:  5 * time.Second,
		Observer:     runtime.TraceCallObserver(live),
	})
	defer fc.Close()

	killed := false
	ok, failed := 0, 0
	for i := 0; i < requests; i++ {
		if kill && !killed && i == requests/2 {
			if p := waitPrimary(nodes, 5*time.Second); p != nil {
				fmt.Printf("killing primary replica %d at request %d\n", p.id, i)
				inj.At(controller.KillControllerOp(p.id), 0)
				killed = true
			}
		}
		id := fmt.Sprintf("task-%03d", i)
		payload := runtime.EncodeTaskTraced(id, trace.SpanContext{TraceID: id}, time.Now(), []byte("ping"))
		start := time.Now()
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		_, cerr := fc.Call(ctx, "pipeline", payload)
		cancel()
		reg.Observe("request-latency-s", time.Since(start).Seconds())
		reg.MeterAdd("requests", 1)
		if cerr != nil {
			failed++
			reg.CountEvent("request-failed")
			fmt.Printf("request %s failed: %v\n", id, cerr)
			continue
		}
		ok++
		reg.CountEvent("request-ok")
	}
	fmt.Printf("ran %d requests: %d ok, %d failed across %d replicas\n", requests, ok, failed, replicas)

	// Per-gateway breakdowns fold into one fleet-wide decomposition.
	bd := stats.NewBreakdown()
	for _, nd := range nodes {
		bd.Merge(nd.breakdown)
	}
	fmt.Println(stageTable(bd))
	fmt.Printf("controller: %s\n", mon.Failover())

	fmt.Println("metrics:")
	if err := reg.WriteText(os.Stdout); err != nil {
		return err
	}

	if traceFn != "" {
		f, err := os.Create(traceFn)
		if err != nil {
			return err
		}
		if err := rec.WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %d spans to %s\n%s", rec.Len(), traceFn, rec.Summary())
	}
	if ingressAddr != "" {
		// The job API front door: async submissions with durable result
		// ids, dispatched through the leader-following client, resolved
		// from checkpoints when memory has no record of an id.
		ing, err := ingress.NewServer(ingress.Options{
			Dispatcher: fc,
			Encode:     runtime.EncodeTask,
			Lookup:     nodes[0].gw.TaskResult,
			Monitor:    reg,
		})
		if err != nil {
			return err
		}
		defer ing.Close()
		reg.GaugeFunc("ingress-pending", func() float64 { return float64(ing.Depth()) })
		if httpAddr != "" {
			go func() {
				fmt.Printf("serving /metrics /trace /debug/pprof on %s\n", httpAddr)
				http.ListenAndServe(httpAddr, metrics.DebugMux(reg, rec))
			}()
		}
		fmt.Printf("serving job API (POST /do/:job, GET /then/:id) on %s (Ctrl-C to stop)\n", ingressAddr)
		return http.ListenAndServe(ingressAddr, ing)
	}
	if httpAddr != "" {
		fmt.Printf("serving /metrics /trace /debug/pprof on %s (Ctrl-C to stop)\n", httpAddr)
		return http.ListenAndServe(httpAddr, metrics.DebugMux(reg, rec))
	}
	return nil
}

// startFleet boots n controller replicas, each fronting a gateway that
// serves the demo sense→plan→act chain over a shared durable store,
// with the full observability layer wired in: shared tracer, per-node
// breakdown, metrics registry as the gateway monitor, and the RPC
// server interceptor timing every inbound hop.
func startFleet(n int, seed int64, live *trace.Live, reg *metrics.Registry,
	mon *controller.Monitor, inj *chaos.Injector, db *store.DB) ([]*liveNode, error) {
	chain, fns := demoChain()

	ctrlLns := make([]net.Listener, n)
	ctrlAddrs := make([]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		ctrlLns[i] = ln
		ctrlAddrs[i] = ln.Addr().String()
	}

	nodes := make([]*liveNode, n)
	for i := 0; i < n; i++ {
		rcfg := runtime.DefaultConfig()
		rcfg.Retries = 0
		rt := runtime.New(rcfg, db)
		for name, fn := range fns {
			rt.Register(name, fn)
		}

		var gwPtr atomic.Pointer[runtime.Gateway]
		ccfg := controller.DefaultReplicaConfig(i, n, seed)
		ccfg.ElectionTimeoutMin = 150 * time.Millisecond
		ccfg.ElectionTimeoutMax = 300 * time.Millisecond
		ccfg.LeaseInterval = 50 * time.Millisecond
		ccfg.VoteTimeout = 100 * time.Millisecond
		ccfg.Fault = inj
		// A fleet restarted over recovered state must resume terms above
		// the persisted fence, and every promotion raises it.
		ccfg.InitialTerm = db.Fence()
		ccfg.OnPromote = func(term uint64) { db.RaiseFence(term) }
		ccfg.Recover = func(ctx context.Context) (int, error) {
			if g := gwPtr.Load(); g != nil {
				return g.Recover(ctx)
			}
			return 0, nil
		}
		peers := make(map[int]func() (net.Conn, error), n-1)
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			addr := ctrlAddrs[j]
			peers[j] = func() (net.Conn, error) { return net.Dial("tcp", addr) }
		}
		rep := controller.NewReplica(ccfg, peers, mon)
		rep.SetTracer(live)

		bd := stats.NewBreakdown()
		gcfg := runtime.DefaultGatewayConfig()
		gcfg.Timeout = 10 * time.Second
		gcfg.RespawnDelay = 20 * time.Millisecond
		// Checkpoint commits carry this node's last-won term so a deposed
		// primary's in-flight chains bounce off the store fence; a fenced
		// write also tells the replica to step down immediately.
		gcfg.Checkpoints = store.NewFencedCheckpointLog(db, rep.LeaderTerm)
		gcfg.OnFenced = rep.StepDown
		gcfg.Admission = rep.Admission()
		gcfg.Tracker = rep
		gcfg.Tracer = live
		gcfg.Breakdown = bd
		g := runtime.NewGatewayConfig(rt, gcfg)
		g.SetMonitor(reg)
		g.ExposeChain("pipeline", chain)
		g.ExposeBatch()
		g.Server().SetInterceptor(runtime.TraceServerInterceptor(live, "rpc"))
		gwPtr.Store(g)

		gln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		go g.Server().Serve(gln)
		go rep.Server().Serve(ctrlLns[i])

		// A dead replica takes its whole process down: gateway included.
		go func() {
			for rep.State() != controller.Dead {
				time.Sleep(5 * time.Millisecond)
			}
			g.Close()
		}()

		nodes[i] = &liveNode{id: i, replica: rep, rt: rt, gw: g, gwAddr: gln.Addr().String(), breakdown: bd}
	}
	return nodes, nil
}

// waitPrimary polls until one live replica leads (nil on timeout).
func waitPrimary(nodes []*liveNode, timeout time.Duration) *liveNode {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		for _, nd := range nodes {
			if nd.replica.State() == controller.Leader {
				return nd
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	return nil
}

// demoChain is the standard swarm pipeline: sense → plan → act, each
// tier doing a few milliseconds of "work" so the execution stage is
// visible in the breakdown.
func demoChain() (chain []string, fns map[string]runtime.Function) {
	tier := func(tag string, d time.Duration) runtime.Function {
		return func(ctx context.Context, in []byte) ([]byte, error) {
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return append(append([]byte{}, in...), tag...), nil
		}
	}
	fns = map[string]runtime.Function{
		"sense": tier(".sense", 4*time.Millisecond),
		"plan":  tier(".plan", 8*time.Millisecond),
		"act":   tier(".act", 4*time.Millisecond),
	}
	return []string{"sense", "plan", "act"}, fns
}

// stageTable renders the four-stage latency decomposition (the paper's
// Figs. 3a/6b/12 axes) as a per-stage latency table.
func stageTable(bd *stats.Breakdown) string {
	t := stats.NewTable(fmt.Sprintf("per-stage latency (%d tasks)", bd.N()),
		"stage", "mean_ms", "p50_ms", "p99_ms", "frac")
	for _, st := range stats.AllStages {
		s := bd.Stage(st)
		t.AddRow(string(st),
			fmt.Sprintf("%.3f", s.Mean()*1e3),
			fmt.Sprintf("%.3f", s.Percentile(50)*1e3),
			fmt.Sprintf("%.3f", s.Percentile(99)*1e3),
			fmt.Sprintf("%.3f", bd.MeanFraction(st)))
	}
	tot := bd.Total()
	t.AddRow("total",
		fmt.Sprintf("%.3f", tot.Mean()*1e3),
		fmt.Sprintf("%.3f", tot.Percentile(50)*1e3),
		fmt.Sprintf("%.3f", tot.Percentile(99)*1e3),
		"1.000")
	return t.String()
}
