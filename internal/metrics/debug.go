package metrics

import (
	"net/http"
	"net/http/pprof"

	"hivemind/internal/trace"
)

// DebugMux builds the live-substrate introspection surface shared by
// cmd/hivemind-sim and the live demo binaries:
//
//	/metrics      text exposition of reg (omitted when reg is nil)
//	/trace        Chrome trace-event JSON dump of rec (omitted when nil)
//	/debug/pprof  the standard Go profiler endpoints
//
// Serve it with http.Server/http.ListenAndServe on an operator port.
func DebugMux(reg *Registry, rec *trace.Recorder) *http.ServeMux {
	mux := http.NewServeMux()
	if reg != nil {
		mux.Handle("/metrics", reg.Handler())
	}
	if rec != nil {
		mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			rec.WriteChromeTrace(w)
		})
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
