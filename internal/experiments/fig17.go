package experiments

import (
	"fmt"
	"math"

	"hivemind/internal/apps"
	"hivemind/internal/platform"
	"hivemind/internal/stats"
)

func init() {
	register("fig17a", "HiveMind headroom: bandwidth and tail latency vs frame resolution and rate", fig17a)
	register("fig17b", "Scalability: bandwidth and tail latency as the swarm grows", fig17b)
}

// scanProfile is the continuous scenario scanning pipeline at a given
// resolution/frame-rate (one task per second consuming the capture).
func scanProfile(frameMB, fps float64) apps.Profile {
	return apps.Profile{
		ID: "scan", Name: "scenario scanning",
		CloudExecS: 0.7, EdgeExecS: 3.0, Parallelism: 8,
		InputMB: frameMB * fps, OutputMB: 0.05, IntermediateMB: 1,
		TaskRatePerDevice: 1.0, MemGB: 2, ExecCV: 0.15,
	}
}

// fig17a reproduces Fig. 17a: HiveMind sustains max resolution and
// frame rate without saturating the wireless links, where the
// centralized system collapsed at far lower settings (Fig. 3b).
func fig17a(cfg RunConfig) *Report {
	rep := &Report{ID: "fig17a", Title: "Resolution sweep on HiveMind (Fig. 17a)"}
	tb := stats.NewTable("Fig. 17a: HiveMind bandwidth + tail latency",
		"frame_MB", "fps", "bw_MBps", "p99_s")
	settings := []struct{ mb, fps float64 }{
		{0.5, 8}, {1, 8}, {2, 8}, {4, 8}, {8, 8}, {8, 16}, {8, 32},
	}
	if cfg.Quick {
		settings = []struct{ mb, fps float64 }{{0.5, 8}, {2, 8}, {8, 8}, {8, 32}}
	}
	capacity := 216.75
	runs := mapPar(cfg, len(settings), func(i int) platform.JobResult {
		s := settings[i]
		opts := platform.Preset(platform.HiveMind, defaultDevices, cfg.Seed)
		opts.DeviceCfg.FrameMB = s.mb
		opts.DeviceCfg.FPS = s.fps
		// At higher capture rates HiveMind's synthesis deepens the
		// on-board reduction (ship extracted regions of interest, whose
		// size does not scale with raw resolution) — keeping the shipped
		// rate near ~7 MB/s per device and the preprocessing pass within
		// the on-board budget.
		batchMB := s.mb * s.fps
		opts.HybridUploadFrac = math.Min(0.45, 7.0/batchMB)
		opts.PreprocSPerMB = math.Min(0.012, 0.6/batchMB)
		return platform.NewSystem(opts).RunJob(scanProfile(s.mb, s.fps), jobDuration(cfg))
	})
	for i, s := range settings {
		res := runs[i]
		tb.AddRow(s.mb, s.fps, res.BWMeanMBps, res.Latency.Percentile(99))
		rep.SetValue(fmt.Sprintf("bw_%gMB_%gfps", s.mb, s.fps), res.BWMeanMBps)
		rep.SetValue(fmt.Sprintf("p99_%gMB_%gfps", s.mb, s.fps), res.Latency.Percentile(99))
	}
	rep.Tables = append(rep.Tables, tb)
	maxBW := rep.Value("bw_8MB_32fps")
	rep.SetValue("headroom_frac", 1-maxBW/capacity)
	rep.AddNote("even at 8MB × 32fps HiveMind uses %.0f MB/s of the %.0f MB/s wireless capacity (paper: does not saturate the links)", maxBW, capacity)
	return rep
}

// fig17b reproduces Fig. 17b: swarm-size sweep with links (and the
// backend) scaled proportionally; HiveMind's synthesis shifts more work
// on-board as the swarm grows, so bandwidth rises sublinearly while the
// centralized baseline grows linearly and saturates.
func fig17b(cfg RunConfig) *Report {
	rep := &Report{ID: "fig17b", Title: "Swarm scalability (Fig. 17b)"}
	tb := stats.NewTable("Fig. 17b: scalability sweep",
		"devices", "system", "bw_MBps", "bw_per_device", "p99_s")
	sizes := []int{16, 64, 256, 1024, 4096, 8192}
	if cfg.Quick {
		sizes = []int{16, 64, 256}
	}
	duration := jobDuration(cfg) / 2

	sysKinds := []platform.SystemKind{platform.HiveMind, platform.CentralizedFaaS}
	runs := mapPar(cfg, len(sizes)*len(sysKinds), func(i int) platform.JobResult {
		n, kind := sizes[i/len(sysKinds)], sysKinds[i%len(sysKinds)]
		scale := float64(n) / defaultDevices
		opts := platform.Preset(kind, n, cfg.Seed)
		opts.WirelessScale = scale
		opts.ClusterCf.Servers = int(float64(opts.ClusterCf.Servers) * scale)
		// The per-user concurrent-function limit scales with the
		// deployment (a 1000-function cap is an account default, not
		// a physical bound).
		opts.FaasCfg.MaxInFlight = int(1000 * scale)
		if kind == platform.HiveMind {
			// Placement re-synthesis at scale: with aggregate traffic
			// growing, the explorer pushes more preprocessing on-board,
			// shrinking the shipped fraction (§5.6: larger swarms
			// "accommodate more computation on-board").
			opts.HybridUploadFrac = 0.45 * math.Pow(1/scale, 0.3)
			opts.PreprocSPerMB = math.Min(0.035, 0.012*math.Pow(scale, 0.3))
		}
		return platform.NewSystem(opts).RunJob(scanProfile(opts.DeviceCfg.FrameMB, opts.DeviceCfg.FPS), duration)
	})
	for ni, n := range sizes {
		for ki, kind := range sysKinds {
			res := runs[ni*len(sysKinds)+ki]
			tb.AddRow(n, kind.String(), res.BWMeanMBps, res.BWMeanMBps/float64(n), res.Latency.Percentile(99))
			rep.SetValue(fmt.Sprintf("%s_bw_%d", kind, n), res.BWMeanMBps)
			rep.SetValue(fmt.Sprintf("%s_p99_%d", kind, n), res.Latency.Percentile(99))
		}
	}
	rep.Tables = append(rep.Tables, tb)

	last := sizes[len(sizes)-1]
	growthHM := rep.Value(fmt.Sprintf("%s_bw_%d", platform.HiveMind, last)) /
		math.Max(1e-9, rep.Value(fmt.Sprintf("%s_bw_%d", platform.HiveMind, 16)))
	deviceGrowth := float64(last) / 16
	rep.SetValue("hm_bw_growth", growthHM)
	rep.SetValue("device_growth", deviceGrowth)
	rep.AddNote("HiveMind bandwidth grows %.1fx while the swarm grows %.0fx (paper: much slower than the device growth rate); tail latency stays flat while centralized saturates", growthHM, deviceGrowth)
	return rep
}
