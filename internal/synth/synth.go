// Package synth implements HiveMind's program synthesis and task
// placement exploration (§4.2, Fig. 8). Starting from a validated DSL
// task graph it enumerates every *meaningful* assignment of tasks to
// edge or cloud (pruning assignments that violate Place pins or put
// device-bound sensing in the cloud), composes the cross-tier API
// bindings each assignment needs (RPC for edge<->cloud, the serverless
// data-sharing protocol intra-cloud, in-process for same-device
// chains), predicts each candidate's latency / power / network / cost
// with a queueing-informed cost model, and selects the best candidate
// that satisfies the user's constraints.
package synth

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"hivemind/internal/dsl"
)

// Loc is a task's assigned location in a candidate.
type Loc int

const (
	LocCloud Loc = iota
	LocEdge
)

// String implements fmt.Stringer.
func (l Loc) String() string {
	if l == LocEdge {
		return "edge"
	}
	return "cloud"
}

// TaskCost carries the per-task profile the cost model needs. The
// caller maps tasks to measured profiles (e.g. internal/apps).
type TaskCost struct {
	CloudExecS  float64 // single-core service time in the cloud
	EdgeExecS   float64 // service time on the device
	Parallelism int     // serverless fan-out
	InputMB     float64 // data consumed per invocation
	OutputMB    float64 // data produced per invocation
	RatePerDev  float64 // invocations/s per device
	Sensor      bool    // collects device sensor data (must run on-device)
}

// Env describes the deployment the candidates are scored against.
type Env struct {
	Devices        int
	WirelessMBps   float64 // aggregate edge<->cloud bandwidth
	CloudCores     int
	EdgePowerW     float64 // device busy-compute watts
	RadioJPerMB    float64
	CloudUSDPerCPU float64 // $ per core-second (FaaS pricing)
	FaaSOverheadS  float64 // per-invocation management cost
	ExchangeCloudS float64 // intra-cloud data-sharing base cost
	RPCBaseS       float64 // edge<->cloud RPC base cost
}

// DefaultEnv matches the paper's testbed scale.
func DefaultEnv(devices int) Env {
	return Env{
		Devices:        devices,
		WirelessMBps:   216.75,
		CloudCores:     480,
		EdgePowerW:     30,
		RadioJPerMB:    1.5,
		CloudUSDPerCPU: 2.4e-5, // ~AWS Lambda GB-s pricing ballpark
		FaaSOverheadS:  0.05,
		ExchangeCloudS: 0.03,
		RPCBaseS:       0.006,
	}
}

// BindingKind is the API flavour synthesized for one graph edge.
type BindingKind int

const (
	BindLocal BindingKind = iota // same device, in-process call
	BindRPC                      // edge<->cloud (or device<->device) RPC
	BindFaaS                     // intra-cloud serverless data sharing
)

// String implements fmt.Stringer.
func (b BindingKind) String() string {
	switch b {
	case BindLocal:
		return "local"
	case BindRPC:
		return "rpc"
	default:
		return "faas"
	}
}

// Binding is a synthesized cross-task API.
type Binding struct {
	From, To string
	Kind     BindingKind
}

// Candidate is one execution model: a complete assignment plus the API
// bindings it requires.
type Candidate struct {
	Assignment map[string]Loc
	Bindings   []Binding
	Metrics    Metrics // filled by Estimate
}

// Name renders a compact signature like "route=cloud,collect=edge,...".
func (c Candidate) Name() string {
	keys := make([]string, 0, len(c.Assignment))
	for k := range c.Assignment {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%s", k, c.Assignment[k])
	}
	return strings.Join(parts, ",")
}

// Metrics is the cost model's prediction for a candidate.
type Metrics struct {
	LatencyS     float64 // end-to-end critical-path latency per task-graph instance
	DevicePowerW float64 // average per-device power above baseline
	NetworkMBps  float64 // aggregate edge<->cloud traffic
	CloudUSDps   float64 // cloud cost per second
	Feasible     bool    // network not oversubscribed, edge not overloaded
}

// Enumerate generates all meaningful candidates for the graph.
// Meaningful (§4.2): Place pins are honoured, sensing tasks never run
// in the cloud.
func Enumerate(g *dsl.TaskGraph, costs map[string]TaskCost) ([]Candidate, error) {
	tasks := g.TopoOrder()
	if len(tasks) == 0 {
		return nil, fmt.Errorf("synth: empty graph")
	}
	for _, t := range tasks {
		if _, ok := costs[t.Name]; !ok {
			return nil, fmt.Errorf("synth: no cost profile for task %q", t.Name)
		}
	}
	if len(tasks) > 20 {
		return nil, fmt.Errorf("synth: %d tasks exceeds the exploration limit (20)", len(tasks))
	}
	var out []Candidate
	n := len(tasks)
	for mask := 0; mask < 1<<n; mask++ {
		assign := make(map[string]Loc, n)
		ok := true
		for i, t := range tasks {
			loc := LocCloud
			if mask&(1<<i) != 0 {
				loc = LocEdge
			}
			// Pruning rules.
			if costs[t.Name].Sensor && loc == LocCloud {
				ok = false // collecting sensor data in the cloud is meaningless
				break
			}
			switch t.Pin {
			case dsl.PlaceEdge:
				if loc != LocEdge {
					ok = false
				}
			case dsl.PlaceCloud:
				if loc != LocCloud {
					ok = false
				}
			}
			if !ok {
				break
			}
			assign[t.Name] = loc
		}
		if !ok {
			continue
		}
		out = append(out, Candidate{Assignment: assign, Bindings: bindingsFor(g, assign)})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("synth: constraints eliminate every placement")
	}
	return out, nil
}

// bindingsFor composes the APIs a candidate needs (§4.1: Thrift-style
// RPC for computation that may run at the edge, the serverless function
// interface for tasks on the cluster).
func bindingsFor(g *dsl.TaskGraph, assign map[string]Loc) []Binding {
	var out []Binding
	for _, t := range g.TopoOrder() {
		for _, c := range t.Children {
			from, to := assign[t.Name], assign[c]
			var kind BindingKind
			switch {
			case from == LocCloud && to == LocCloud:
				kind = BindFaaS
			case from == LocEdge && to == LocEdge:
				kind = BindLocal
			default:
				kind = BindRPC
			}
			out = append(out, Binding{From: t.Name, To: c, Kind: kind})
		}
	}
	return out
}

// Estimate fills in a candidate's predicted metrics.
func Estimate(g *dsl.TaskGraph, c *Candidate, costs map[string]TaskCost, env Env) Metrics {
	var m Metrics
	m.Feasible = true

	// Aggregate offered loads.
	var edgeUtil float64 // per-device core utilization
	var netMBps float64  // aggregate edge<->cloud
	var cloudCoreS float64
	devs := float64(env.Devices)

	// Critical path latency: longest root→leaf chain of per-task
	// latencies plus binding costs.
	lat := map[string]float64{}
	for _, t := range g.TopoOrder() {
		cost := costs[t.Name]
		loc := c.Assignment[t.Name]
		var taskLat float64
		if loc == LocEdge {
			util := cost.RatePerDev * cost.EdgeExecS
			edgeUtil += util
			if util >= 1 {
				// Overloaded device: the bounded on-board queue stays full,
				// so completed tasks see ~queue-length service times.
				taskLat = cost.EdgeExecS * 4
			} else {
				// Median-latency inflation from queueing (light at typical
				// utilizations; the mean-value M/M/1 formula overstates the
				// median the placement decision cares about).
				taskLat = cost.EdgeExecS * (1 + 0.5*util*util)
			}
		} else {
			par := math.Max(1, float64(cost.Parallelism))
			taskLat = cost.CloudExecS/par + env.FaaSOverheadS
			cloudCoreS += cost.RatePerDev * devs * cost.CloudExecS
		}
		// Binding (incoming edge) costs: charged on the child.
		var bindLat float64
		for _, b := range c.Bindings {
			if b.To != t.Name {
				continue
			}
			parentOut := costs[b.From].OutputMB
			switch b.Kind {
			case BindRPC:
				bindLat = math.Max(bindLat, env.RPCBaseS+parentOut/(env.WirelessMBps/devs))
				netMBps += costs[b.From].RatePerDev * devs * parentOut
			case BindFaaS:
				bindLat = math.Max(bindLat, env.ExchangeCloudS)
			case BindLocal:
				bindLat = math.Max(bindLat, 0.0005)
			}
		}
		// Sensor input arriving at a cloud task crosses the wireless hop.
		if loc == LocCloud && cost.InputMB > 0 && !hasParentBinding(c, t.Name) {
			netMBps += cost.RatePerDev * devs * cost.InputMB
			bindLat = math.Max(bindLat, cost.InputMB/(env.WirelessMBps/devs))
		}
		best := 0.0
		if t2, ok := g.Task(t.Name); ok {
			for _, p := range t2.Parents {
				if lat[p] > best {
					best = lat[p]
				}
			}
		}
		lat[t.Name] = best + taskLat + bindLat
	}
	for _, l := range lat {
		if l > m.LatencyS {
			m.LatencyS = l
		}
	}
	if edgeUtil >= 1 {
		m.Feasible = false
	}
	if netMBps >= env.WirelessMBps {
		m.Feasible = false
	}
	if cloudCoreS > float64(env.CloudCores) {
		m.Feasible = false
	}
	m.NetworkMBps = netMBps
	m.DevicePowerW = edgeUtil*env.EdgePowerW + (netMBps/devs)*env.RadioJPerMB
	m.CloudUSDps = cloudCoreS * env.CloudUSDPerCPU
	c.Metrics = m
	return m
}

func hasParentBinding(c *Candidate, task string) bool {
	for _, b := range c.Bindings {
		if b.To == task {
			return true
		}
	}
	return false
}

// Explore enumerates, estimates and ranks all candidates. Tasks fed by
// a declared data stream inherit its rate (and item size, when the cost
// profile leaves them unset).
func Explore(g *dsl.TaskGraph, costs map[string]TaskCost, env Env) ([]Candidate, error) {
	for _, t := range g.Tasks {
		if st, ok := g.StreamFor(t); ok {
			c := costs[t.Name]
			if c.RatePerDev == 0 {
				c.RatePerDev = st.RateHz
			}
			if c.InputMB == 0 {
				c.InputMB = st.ItemMB
			}
			costs[t.Name] = c
		}
	}
	cands, err := Enumerate(g, costs)
	if err != nil {
		return nil, err
	}
	for i := range cands {
		Estimate(g, &cands[i], costs, env)
	}
	sort.SliceStable(cands, func(i, j int) bool {
		a, b := cands[i].Metrics, cands[j].Metrics
		if a.Feasible != b.Feasible {
			return a.Feasible
		}
		return a.LatencyS < b.LatencyS
	})
	return cands, nil
}

// Select returns the best candidate satisfying the user's constraints
// (§4.1: performance, power, cost, or a combination). Zero-valued
// constraint fields are unconstrained. If nothing satisfies them, the
// feasible latency-optimal candidate is returned with ok=false.
func Select(cands []Candidate, cons dsl.Constraints, maxPowerW float64) (Candidate, bool) {
	meets := func(m Metrics) bool {
		if !m.Feasible {
			return false
		}
		if cons.LatencyS > 0 && m.LatencyS > cons.LatencyS {
			return false
		}
		if cons.ExecTimeS > 0 && m.LatencyS > cons.ExecTimeS {
			return false
		}
		if cons.MaxCostUSD > 0 && m.CloudUSDps*3600 > cons.MaxCostUSD {
			return false
		}
		if maxPowerW > 0 && m.DevicePowerW > maxPowerW {
			return false
		}
		if cons.MaxPowerW > 0 && m.DevicePowerW > cons.MaxPowerW {
			return false
		}
		return true
	}
	for _, c := range cands {
		if meets(c.Metrics) {
			return c, true
		}
	}
	for _, c := range cands {
		if c.Metrics.Feasible {
			return c, false
		}
	}
	if len(cands) > 0 {
		return cands[0], false
	}
	return Candidate{}, false
}
