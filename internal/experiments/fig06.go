package experiments

import (
	"hivemind/internal/faas"
	"hivemind/internal/platform"
	"hivemind/internal/stats"
	"hivemind/internal/store"
)

func init() {
	register("fig06a", "Performance variability: reserved vs serverless", fig06a)
	register("fig06b", "Serverless latency breakdown: instantiation / data sharing / execution", fig06b)
	register("fig06c", "Inter-function data sharing: CouchDB vs direct RPC vs in-memory", fig06c)
}

// fig06a reproduces Fig. 6a: latency variability (violin spread) on
// reserved vs serverless deployments at modest load.
func fig06a(cfg RunConfig) *Report {
	rep := &Report{ID: "fig06a", Title: "Variability: reserved vs serverless (Fig. 6a)"}
	tb := stats.NewTable("Fig. 6a: latency spread",
		"job", "reserved_cv", "serverless_cv", "reserved_p95/p50", "serverless_p95/p50")
	worse := 0
	total := 0
	ps := suite(cfg)
	type pair struct{ res, sls platform.JobResult }
	pairs := mapPar(cfg, len(ps), func(i int) pair {
		return pair{
			res: platform.NewSystem(platform.Preset(platform.CentralizedIaaS, defaultDevices, cfg.Seed)).
				ReservedJob(ps[i], jobDuration(cfg), 0),
			sls: runJobOn(platform.CentralizedFaaS, ps[i], cfg, defaultDevices),
		}
	})
	for i, p := range ps {
		res, sls := pairs[i].res, pairs[i].sls
		rSpread := res.Latency.Percentile(95) / res.Latency.Median()
		sSpread := sls.Latency.Percentile(95) / sls.Latency.Median()
		tb.AddRow(string(p.ID), res.Latency.CV(), sls.Latency.CV(), rSpread, sSpread)
		rep.SetValue("res_cv_"+string(p.ID), res.Latency.CV())
		rep.SetValue("sls_cv_"+string(p.ID), sls.Latency.CV())
		total++
		if sls.Latency.CV() > res.Latency.CV() {
			worse++
		}
	}
	rep.Tables = append(rep.Tables, tb)
	rep.SetValue("serverless_more_variable_jobs", float64(worse))
	rep.SetValue("jobs", float64(total))
	rep.AddNote("serverless shows higher variability on %d/%d jobs (paper: consistently higher)", worse, total)
	return rep
}

// fig06b reproduces Fig. 6b: within the serverless platform, how much
// of task latency is container instantiation, inter-function data
// sharing, and execution. Measured directly at the platform (no
// edge<->cloud network), as the paper instruments the OpenWhisk
// controller and containers.
func fig06b(cfg RunConfig) *Report {
	rep := &Report{ID: "fig06b", Title: "Instantiation and data-sharing overheads (Fig. 6b)"}
	tb := stats.NewTable("Fig. 6b: serverless stage shares",
		"job", "inst_p50_%", "dataio_p50_%", "exec_p50_%", "inst_p99_%")

	var instFracs []float64
	ps := suite(cfg)
	type stageSamples struct{ inst, dataio, exec *stats.Sample }
	samples := mapPar(cfg, len(ps), func(i int) stageSamples {
		p := ps[i]
		sys := platform.NewSystem(platform.Preset(platform.CentralizedFaaS, defaultDevices, cfg.Seed))
		eng := sys.Eng
		rng := eng.Rand()
		inst, dataio, exec := &stats.Sample{}, &stats.Sample{}, &stats.Sample{}
		duration := jobDuration(cfg)
		for _, d := range sys.Fleet {
			_ = d
			var submit func()
			period := 1.0 / p.TaskRatePerDevice
			submit = func() {
				if eng.Now() >= duration {
					return
				}
				sys.Faas.Invoke(faas.FunctionSpec{
					Name: string(p.ID), ExecS: p.CloudExecS, Parallelism: p.Parallelism,
					MemGB: p.MemGB, ExecCV: p.ExecCV, ParentDataMB: p.InputMB,
				}, func(r faas.Result) {
					inst.Add(r.MgmtS)
					dataio.Add(r.DataIOS)
					exec.Add(r.ExecS)
				})
				eng.After(period*(0.8+0.4*rng.Float64()), submit)
			}
			eng.At(rng.Float64()*period, submit)
		}
		eng.RunUntil(duration + 60)
		sys.Fleet.StopAll()
		return stageSamples{inst: inst, dataio: dataio, exec: exec}
	})
	for i, p := range ps {
		inst, dataio, exec := samples[i].inst, samples[i].dataio, samples[i].exec

		share := func(pct float64) (i, d, e float64) {
			ti, td, te := inst.Percentile(pct), dataio.Percentile(pct), exec.Percentile(pct)
			sum := ti + td + te
			if sum == 0 {
				return 0, 0, 0
			}
			return ti / sum, td / sum, te / sum
		}
		i50, d50, e50 := share(50)
		i99, _, _ := share(99)
		tb.AddRow(string(p.ID), i50*100, d50*100, e50*100, i99*100)
		rep.SetValue("inst_frac_"+string(p.ID), i50)
		instFracs = append(instFracs, i50)
	}
	rep.Tables = append(rep.Tables, tb)

	var sum float64
	for _, f := range instFracs {
		sum += f
	}
	rep.SetValue("inst_frac_mean", sum/float64(len(instFracs)))
	rep.AddNote("instantiation: %.0f%% of median serverless latency on average; >40%% for weather, <20%% for maze (paper: 22%% avg, >40%% weather, <20%% maze)",
		sum/float64(len(instFracs))*100)
	return rep
}

// fig06c reproduces Fig. 6c: task latency under each inter-function
// data-sharing protocol.
func fig06c(cfg RunConfig) *Report {
	rep := &Report{ID: "fig06c", Title: "Data-sharing protocol comparison (Fig. 6c)"}
	tb := stats.NewTable("Fig. 6c: task latency (s) by protocol",
		"job", "couchdb_p50", "rpc_p50", "inmemory_p50", "couchdb_p99")

	protocols := []store.Protocol{store.ProtoCouchDB, store.ProtoDirectRPC, store.ProtoInMemory}
	ps := suite(cfg)
	lats := mapPar(cfg, len(ps)*len(protocols), func(idx int) *stats.Sample {
		p, proto := ps[idx/len(protocols)], protocols[idx%len(protocols)]
		opts := platform.Preset(platform.CentralizedFaaS, defaultDevices, cfg.Seed)
		opts.FaasCfg.Protocol = proto
		sys := platform.NewSystem(opts)
		eng := sys.Eng
		rng := eng.Rand()
		lat := &stats.Sample{}
		duration := jobDuration(cfg)
		for range sys.Fleet {
			var submit func()
			period := 1.0 / p.TaskRatePerDevice
			submit = func() {
				if eng.Now() >= duration {
					return
				}
				start := eng.Now()
				// A dependent-function pair: the child consumes the
				// parent's intermediate output through the protocol.
				sys.Faas.Invoke(faas.FunctionSpec{
					Name: string(p.ID), ExecS: p.CloudExecS, Parallelism: p.Parallelism,
					MemGB: p.MemGB, ExecCV: p.ExecCV, ParentDataMB: p.InputMB,
				}, func(r faas.Result) { lat.Add(eng.Now() - start) })
				eng.After(period*(0.8+0.4*rng.Float64()), submit)
			}
			eng.At(rng.Float64()*period, submit)
		}
		eng.RunUntil(duration + 60)
		sys.Fleet.StopAll()
		return lat
	})
	for pi, p := range ps {
		meds := map[store.Protocol]float64{}
		var couchP99 float64
		for qi, proto := range protocols {
			lat := lats[pi*len(protocols)+qi]
			meds[proto] = lat.Median()
			if proto == store.ProtoCouchDB {
				couchP99 = lat.Percentile(99)
			}
		}
		tb.AddRow(string(p.ID), meds[store.ProtoCouchDB], meds[store.ProtoDirectRPC], meds[store.ProtoInMemory], couchP99)
		rep.SetValue("couch_"+string(p.ID), meds[store.ProtoCouchDB])
		rep.SetValue("rpc_"+string(p.ID), meds[store.ProtoDirectRPC])
		rep.SetValue("inmem_"+string(p.ID), meds[store.ProtoInMemory])
	}
	rep.Tables = append(rep.Tables, tb)
	rep.AddNote("ordering holds across jobs: CouchDB > direct RPC > in-memory (paper Fig. 6c)")
	return rep
}
