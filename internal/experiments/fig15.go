package experiments

import (
	"hivemind/internal/learn"
	"hivemind/internal/platform"
	"hivemind/internal/scenario"
	"hivemind/internal/stats"
)

func init() {
	register("fig15", "Continuous learning: detection accuracy without and with per-device and swarm-wide retraining", fig15)
	register("fig16", "Robotic cars: latency and battery for Treasure Hunt and Maze", fig16)
}

// fig15 reproduces Fig. 15: detection accuracy (correct / false
// negatives / false positives) for the two end-to-end scenarios under
// the three retraining regimes.
func fig15(cfg RunConfig) *Report {
	rep := &Report{ID: "fig15", Title: "Continuous learning (Fig. 15)"}
	tb := stats.NewTable("Fig. 15: detection accuracy (%)",
		"scenario", "retraining", "correct", "false_neg", "false_pos")
	scenarios := []struct {
		name string
		cfg  learn.TrialConfig
	}{
		{"scenario-a", learn.DefaultTrial(defaultDevices, cfg.Seed)},
		{"scenario-b", func() learn.TrialConfig {
			c := learn.DefaultTrial(defaultDevices, cfg.Seed+1)
			// Moving people are harder: noisier observations, fewer
			// sightings per device per round (so per-device coverage
			// gaps bite harder), over a longer mission.
			c.Noise = 1.1
			c.ObsPerDev = 10
			c.Rounds = 16
			return c
		}()},
	}
	modes := []learn.Mode{learn.ModeNone, learn.ModeSelf, learn.ModeSwarm}
	accs := mapPar(cfg, len(scenarios)*len(modes), func(i int) learn.Accuracy {
		acc, _ := learn.RunTrial(modes[i%len(modes)], scenarios[i/len(modes)].cfg)
		return acc
	})
	for si, sc := range scenarios {
		for mi, mode := range modes {
			acc := accs[si*len(modes)+mi]
			tb.AddRow(sc.name, mode.String(), acc.Correct*100, acc.FalseNegatives*100, acc.FalsePositives*100)
			rep.SetValue(sc.name+"_"+mode.String()+"_correct", acc.Correct)
			rep.SetValue(sc.name+"_"+mode.String()+"_errors", acc.FalseNegatives+acc.FalsePositives)
		}
	}
	rep.Tables = append(rep.Tables, tb)
	rep.AddNote("swarm-wide retraining resolves nearly all remaining FPs/FNs; self-only retraining improves but plateaus (paper Fig. 15)")
	return rep
}

// fig16 reproduces Fig. 16: the rover port — job latency and battery
// for the Treasure Hunt and Maze missions across the three platforms.
func fig16(cfg RunConfig) *Report {
	rep := &Report{ID: "fig16", Title: "Robotic cars (Fig. 16)"}
	tb := stats.NewTable("Fig. 16: rover missions",
		"mission", "system", "p50_latency_s", "p99_latency_s", "completion_s", "battery_%", "battery_max_%")
	kinds := []platform.SystemKind{platform.CentralizedFaaS, platform.DistributedEdge, platform.HiveMind}
	missions := []scenario.Kind{scenario.TreasureHunt, scenario.Maze}
	scenRes := mapPar(cfg, len(missions)*len(kinds), func(i int) scenario.Result {
		return runScenarioOn(missions[i/len(kinds)], kinds[i%len(kinds)], cfg, roverDevices)
	})
	for mi, m := range missions {
		for ki, k := range kinds {
			r := scenRes[mi*len(kinds)+ki]
			tb.AddRow(m.String(), k.String(),
				r.TaskLatency.Median(), r.TaskLatency.Percentile(99),
				r.CompletionS, r.BatteryMean*100, r.BatteryMax*100)
			rep.SetValue(m.String()+"_"+k.String()+"_p50", r.TaskLatency.Median())
			rep.SetValue(m.String()+"_"+k.String()+"_battery", r.BatteryMean)
			rep.SetValue(m.String()+"_"+k.String()+"_completion", r.CompletionS)
		}
	}
	rep.Tables = append(rep.Tables, tb)
	hm := rep.Value("treasure-hunt_hivemind_p50")
	cen := rep.Value("treasure-hunt_centralized-faas_p50")
	rep.SetValue("th_latency_gain", (cen-hm)/cen)
	rep.AddNote("HiveMind cuts treasure-hunt pipeline latency by %.0f%% vs centralized (paper: ~22%% from net accel + ~19%% from remote memory across phases)",
		(cen-hm)/cen*100)
	return rep
}
