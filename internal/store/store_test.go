package store

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestPutGetRoundTrip(t *testing.T) {
	db := NewDB()
	rev, err := db.Put("doc1", "", []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if rev == "" {
		t.Fatal("empty revision")
	}
	d, err := db.Get("doc1")
	if err != nil {
		t.Fatal(err)
	}
	if string(d.Body) != "hello" || d.Rev != rev || d.ID != "doc1" {
		t.Fatalf("doc = %+v", d)
	}
}

func TestPutEmptyIDRejected(t *testing.T) {
	db := NewDB()
	if _, err := db.Put("", "", nil); err == nil {
		t.Fatal("empty id accepted")
	}
}

func TestGetMissing(t *testing.T) {
	db := NewDB()
	if _, err := db.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestUpdateRequiresMatchingRev(t *testing.T) {
	db := NewDB()
	rev1, _ := db.Put("d", "", []byte("v1"))
	if _, err := db.Put("d", "bogus", []byte("v2")); !errors.Is(err, ErrConflict) {
		t.Fatalf("stale rev err = %v", err)
	}
	if _, err := db.Put("d", "", []byte("v2")); !errors.Is(err, ErrConflict) {
		t.Fatalf("create-over-existing err = %v", err)
	}
	rev2, err := db.Put("d", rev1, []byte("v2"))
	if err != nil {
		t.Fatal(err)
	}
	if rev2 == rev1 {
		t.Fatal("revision did not advance")
	}
	if g := revGen(rev2); g != 2 {
		t.Fatalf("generation = %d", g)
	}
}

func TestCreateWithRevRejected(t *testing.T) {
	db := NewDB()
	if _, err := db.Put("new", "1-abc", []byte("x")); !errors.Is(err, ErrConflict) {
		t.Fatalf("err = %v", err)
	}
}

func TestDelete(t *testing.T) {
	db := NewDB()
	rev, _ := db.Put("d", "", []byte("v"))
	if err := db.Delete("d", "wrong"); !errors.Is(err, ErrConflict) {
		t.Fatalf("err = %v", err)
	}
	if err := db.Delete("d", rev); err != nil {
		t.Fatal(err)
	}
	if err := db.Delete("d", rev); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete err = %v", err)
	}
	if db.Len() != 0 {
		t.Fatalf("len = %d", db.Len())
	}
}

func TestForceAlwaysWins(t *testing.T) {
	db := NewDB()
	db.Put("d", "", []byte("v1"))
	rev, err := db.Force("d", []byte("v2"))
	if err != nil {
		t.Fatal(err)
	}
	if revGen(rev) != 2 {
		t.Fatalf("rev = %s", rev)
	}
	d, _ := db.Get("d")
	if string(d.Body) != "v2" {
		t.Fatalf("body = %s", d.Body)
	}
}

func TestGetReturnsCopy(t *testing.T) {
	db := NewDB()
	db.Put("d", "", []byte("abc"))
	d, _ := db.Get("d")
	d.Body[0] = 'X'
	d2, _ := db.Get("d")
	if string(d2.Body) != "abc" {
		t.Fatal("Get leaked internal buffer")
	}
}

func TestPutCopiesInput(t *testing.T) {
	db := NewDB()
	buf := []byte("abc")
	db.Put("d", "", buf)
	buf[0] = 'X'
	d, _ := db.Get("d")
	if string(d.Body) != "abc" {
		t.Fatal("Put aliased caller buffer")
	}
}

func TestSeqAdvances(t *testing.T) {
	db := NewDB()
	rev, _ := db.Put("a", "", nil)
	db.Put("b", "", nil)
	db.Delete("a", rev)
	if db.Seq() != 3 {
		t.Fatalf("seq = %d", db.Seq())
	}
}

func TestKeys(t *testing.T) {
	db := NewDB()
	db.Put("a", "", nil)
	db.Put("b", "", nil)
	keys := db.Keys()
	if len(keys) != 2 {
		t.Fatalf("keys = %v", keys)
	}
}

func TestConcurrentWritersOneWinnerPerRound(t *testing.T) {
	db := NewDB()
	rev, _ := db.Put("shared", "", []byte("base"))
	const writers = 16
	var wg sync.WaitGroup
	wins := make(chan int, writers)
	for i := 0; i < writers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := db.Put("shared", rev, []byte(fmt.Sprintf("w%d", i))); err == nil {
				wins <- i
			}
		}()
	}
	wg.Wait()
	close(wins)
	n := 0
	for range wins {
		n++
	}
	if n != 1 {
		t.Fatalf("%d writers won the same revision, want exactly 1", n)
	}
}

func TestConcurrentDistinctDocs(t *testing.T) {
	db := NewDB()
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			id := fmt.Sprintf("doc-%d", i)
			rev, err := db.Put(id, "", []byte{byte(i)})
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := db.Put(id, rev, []byte{byte(i), 2}); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if db.Len() != 64 {
		t.Fatalf("len = %d", db.Len())
	}
}

// Property: a sequence of successful updates yields strictly increasing
// generations and the final body is the last written.
func TestRevisionGenerationProperty(t *testing.T) {
	prop := func(bodies [][]byte) bool {
		db := NewDB()
		rev := ""
		lastGen := 0
		for _, b := range bodies {
			newRev, err := db.Put("d", rev, b)
			if err != nil {
				return false
			}
			g := revGen(newRev)
			if g != lastGen+1 {
				return false
			}
			lastGen = g
			rev = newRev
		}
		if len(bodies) == 0 {
			return true
		}
		d, err := db.Get("d")
		return err == nil && string(d.Body) == string(bodies[len(bodies)-1])
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestProtocolString(t *testing.T) {
	cases := map[Protocol]string{
		ProtoCouchDB: "couchdb", ProtoDirectRPC: "rpc",
		ProtoInMemory: "inmemory", ProtoRemoteMem: "remotemem",
		Protocol(99): "protocol(99)",
	}
	for p, want := range cases {
		if p.String() != want {
			t.Fatalf("%d -> %q", int(p), p.String())
		}
	}
}

func TestLatencyModelOrderingMatchesFig6c(t *testing.T) {
	m := DefaultLatencyModel()
	for _, sizeMB := range []float64{0.01, 0.5, 2, 16} {
		couch := m.ExchangeS(ProtoCouchDB, sizeMB)
		rpc := m.ExchangeS(ProtoDirectRPC, sizeMB)
		remote := m.ExchangeS(ProtoRemoteMem, sizeMB)
		inmem := m.ExchangeS(ProtoInMemory, sizeMB)
		if !(couch > rpc && rpc > remote && remote > inmem) {
			t.Fatalf("size %g: ordering violated: couch=%g rpc=%g remote=%g inmem=%g",
				sizeMB, couch, rpc, remote, inmem)
		}
	}
	// CouchDB should be roughly an order of magnitude above direct RPC
	// for small objects (Fig. 6c shows a dramatic gap).
	if m.ExchangeS(ProtoCouchDB, 0.1) < 5*m.ExchangeS(ProtoDirectRPC, 0.1) {
		t.Fatal("CouchDB gap vs RPC too small")
	}
}

func TestLatencyModelNegativeSizeClamped(t *testing.T) {
	m := DefaultLatencyModel()
	if m.ExchangeS(ProtoCouchDB, -5) != m.ExchangeS(ProtoCouchDB, 0) {
		t.Fatal("negative size not clamped")
	}
}

func TestLatencyModelUnknownProtocolPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	DefaultLatencyModel().ExchangeS(Protocol(42), 1)
}

// scriptedInjector fails operations per a fixed decision list, standing
// in for chaos.Injector without importing it.
type scriptedInjector struct {
	mu        sync.Mutex
	decisions []bool
	count     int
}

var errFault = errors.New("injected store fault")

func (s *scriptedInjector) Fault(op string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.decisions) == 0 {
		return nil
	}
	d := s.decisions[0]
	s.decisions = s.decisions[1:]
	if d {
		s.count++
		return fmt.Errorf("%w: %s", errFault, op)
	}
	return nil
}

func TestInjectorFaultsStoreOperations(t *testing.T) {
	db := NewDB()
	inj := &scriptedInjector{decisions: []bool{true, false, true, false, true, false}}
	db.SetInjector(inj)

	if _, err := db.Put("d", "", []byte("v")); !errors.Is(err, errFault) {
		t.Fatalf("put fault = %v", err)
	}
	rev, err := db.Put("d", "", []byte("v"))
	if err != nil {
		t.Fatalf("second put = %v", err)
	}
	if _, err := db.Get("d"); !errors.Is(err, errFault) {
		t.Fatalf("get fault = %v", err)
	}
	if _, err := db.Get("d"); err != nil {
		t.Fatalf("second get = %v", err)
	}
	if _, err := db.Force("d", []byte("w")); !errors.Is(err, errFault) {
		t.Fatalf("force fault = %v", err)
	}
	if err := db.Delete("d", rev); err != nil {
		t.Fatalf("delete after faults = %v", err)
	}

	// Removing the injector restores the happy path.
	db.SetInjector(nil)
	if _, err := db.Put("e", "", []byte("v")); err != nil {
		t.Fatal(err)
	}
}
