package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSampleEmpty(t *testing.T) {
	var s Sample
	if s.N() != 0 || s.Mean() != 0 || s.Median() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty sample should report zeros")
	}
	if s.PDF(10) != nil {
		t.Fatal("empty sample PDF should be nil")
	}
}

func TestSampleBasicStats(t *testing.T) {
	var s Sample
	s.AddAll(4, 1, 3, 2, 5)
	if s.N() != 5 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Mean() != 3 {
		t.Fatalf("mean = %g", s.Mean())
	}
	if s.Median() != 3 {
		t.Fatalf("median = %g", s.Median())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("min/max = %g/%g", s.Min(), s.Max())
	}
	if !almostEqual(s.StdDev(), math.Sqrt(2), 1e-12) {
		t.Fatalf("stddev = %g", s.StdDev())
	}
}

func TestPercentileInterpolation(t *testing.T) {
	var s Sample
	s.AddAll(10, 20, 30, 40)
	if got := s.Percentile(0); got != 10 {
		t.Fatalf("p0 = %g", got)
	}
	if got := s.Percentile(100); got != 40 {
		t.Fatalf("p100 = %g", got)
	}
	if got := s.Percentile(50); got != 25 {
		t.Fatalf("p50 = %g, want 25", got)
	}
	// rank = 0.99*3 = 2.97 → 30*(0.03)+40*(0.97)
	if got := s.Percentile(99); !almostEqual(got, 39.7, 1e-9) {
		t.Fatalf("p99 = %g, want 39.7", got)
	}
}

func TestPercentileAfterInterleavedAdds(t *testing.T) {
	var s Sample
	s.AddAll(3, 1)
	_ = s.Median() // forces sort
	s.Add(2)       // must invalidate sorted flag
	if got := s.Median(); got != 2 {
		t.Fatalf("median after re-add = %g, want 2", got)
	}
}

func TestCV(t *testing.T) {
	var constant Sample
	constant.AddAll(5, 5, 5, 5)
	if constant.CV() != 0 {
		t.Fatalf("CV of constant = %g", constant.CV())
	}
	var spread Sample
	spread.AddAll(1, 9)
	if spread.CV() <= constant.CV() {
		t.Fatal("spread sample should have larger CV")
	}
}

func TestPDFIntegratesToOne(t *testing.T) {
	var s Sample
	for i := 0; i < 1000; i++ {
		s.Add(float64(i % 37))
	}
	bins := s.PDF(12)
	if len(bins) != 12 {
		t.Fatalf("bins = %d", len(bins))
	}
	width := bins[1].Center - bins[0].Center
	var integral float64
	count := 0
	for _, b := range bins {
		integral += b.Density * width
		count += b.Count
	}
	if !almostEqual(integral, 1.0, 1e-9) {
		t.Fatalf("PDF integral = %g", integral)
	}
	if count != 1000 {
		t.Fatalf("bin counts sum to %d", count)
	}
}

func TestPDFDegenerateSample(t *testing.T) {
	var s Sample
	s.AddAll(7, 7, 7)
	bins := s.PDF(5)
	if len(bins) != 1 || bins[0].Center != 7 || bins[0].Count != 3 {
		t.Fatalf("degenerate PDF = %+v", bins)
	}
}

func TestSummarize(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	sm := s.Summarize()
	if sm.N != 100 || sm.Mean != 50.5 {
		t.Fatalf("summary = %+v", sm)
	}
	if !almostEqual(sm.P50, 50.5, 1e-9) || !almostEqual(sm.P99, 99.01, 1e-9) {
		t.Fatalf("p50=%g p99=%g", sm.P50, sm.P99)
	}
	if sm.String() == "" {
		t.Fatal("summary string empty")
	}
}

// Property: percentiles are monotone in p and bounded by [min, max].
func TestPercentileMonotoneProperty(t *testing.T) {
	prop := func(raw []float64) bool {
		var s Sample
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			s.Add(x)
		}
		if s.N() == 0 {
			return true
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 5 {
			v := s.Percentile(p)
			if v < prev || v < s.Min() || v > s.Max() {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the median of a sorted odd-length sample equals the middle
// element.
func TestMedianMatchesMiddleElementProperty(t *testing.T) {
	prop := func(raw []float64) bool {
		var clean []float64
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, x)
			}
		}
		if len(clean)%2 == 0 {
			clean = append(clean, 0)
		}
		var s Sample
		s.AddAll(clean...)
		sort.Float64s(clean)
		return s.Median() == clean[len(clean)/2]
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBreakdownFractions(t *testing.T) {
	b := NewBreakdown()
	for i := 0; i < 10; i++ {
		b.Record(map[Stage]float64{
			StageNetwork:    30,
			StageManagement: 20,
			StageExecution:  50,
		})
	}
	if b.N() != 10 {
		t.Fatalf("N = %d", b.N())
	}
	fr := b.Fractions(50)
	if !almostEqual(fr[StageNetwork], 0.30, 1e-9) || !almostEqual(fr[StageExecution], 0.50, 1e-9) {
		t.Fatalf("fractions = %v", fr)
	}
	if !almostEqual(fr[StageDataIO], 0, 1e-9) {
		t.Fatalf("missing stage fraction = %g", fr[StageDataIO])
	}
	if !almostEqual(b.Total().Mean(), 100, 1e-9) {
		t.Fatalf("total mean = %g", b.Total().Mean())
	}
	if !almostEqual(b.MeanFraction(StageManagement), 0.2, 1e-9) {
		t.Fatalf("mean fraction = %g", b.MeanFraction(StageManagement))
	}
	if b.String() == "" {
		t.Fatal("empty breakdown string")
	}
}

func TestBreakdownEmptyFractions(t *testing.T) {
	b := NewBreakdown()
	fr := b.Fractions(50)
	for st, v := range fr {
		if v != 0 {
			t.Fatalf("stage %s fraction = %g on empty breakdown", st, v)
		}
	}
}

func TestMeterBucketsAndRates(t *testing.T) {
	m := NewMeter(1.0)
	m.Add(0.5, 10)
	m.Add(0.9, 10)
	m.Add(2.1, 30)
	rates := m.Rates()
	if len(rates) != 3 {
		t.Fatalf("buckets = %d", len(rates))
	}
	if rates[0] != 20 || rates[1] != 0 || rates[2] != 30 {
		t.Fatalf("rates = %v", rates)
	}
	if m.Total() != 50 {
		t.Fatalf("total = %g", m.Total())
	}
	if m.MeanRate(5) != 10 {
		t.Fatalf("mean rate = %g", m.MeanRate(5))
	}
}

func TestMeterAddSpreadConservesMass(t *testing.T) {
	m := NewMeter(1.0)
	m.AddSpread(0.5, 3.5, 30)
	if !almostEqual(m.Total(), 30, 1e-9) {
		t.Fatalf("total = %g", m.Total())
	}
	rates := m.Rates()
	// 0.5s in bucket0, 1s in b1, 1s in b2, 0.5s in b3, at 10 units/s.
	want := []float64{5, 10, 10, 5}
	for i, w := range want {
		if !almostEqual(rates[i], w, 1e-9) {
			t.Fatalf("bucket %d rate = %g, want %g", i, rates[i], w)
		}
	}
}

func TestMeterRateSampleWindow(t *testing.T) {
	m := NewMeter(1.0)
	m.Add(0.1, 5)
	m.Add(1.1, 7)
	m.Add(2.1, 9)
	s := m.RateSample(2)
	if s.N() != 2 || s.Max() != 7 {
		t.Fatalf("windowed sample n=%d max=%g", s.N(), s.Max())
	}
}

func TestGaugeSeriesAndAverage(t *testing.T) {
	g := NewGauge()
	g.Set(0, 0)
	g.Inc(1, 4)  // 4 from t=1
	g.Inc(3, -2) // 2 from t=3
	if g.Current() != 2 || g.Max() != 4 {
		t.Fatalf("cur=%g max=%g", g.Current(), g.Max())
	}
	if g.At(0.5) != 0 || g.At(2) != 4 || g.At(10) != 2 {
		t.Fatalf("At values wrong: %g %g %g", g.At(0.5), g.At(2), g.At(10))
	}
	series := g.Series(1, 4)
	want := []float64{0, 4, 4, 2}
	for i, w := range want {
		if series[i] != w {
			t.Fatalf("series = %v, want %v", series, want)
		}
	}
	// integral = 0*1 + 4*2 + 2*1 = 10 over 4s
	if !almostEqual(g.TimeAverage(4), 2.5, 1e-9) {
		t.Fatalf("time average = %g", g.TimeAverage(4))
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Fig X", "job", "median", "p99")
	tb.AddRow("S1", 1.5, 9.25)
	tb.AddRow("S10", 0.001234, 3)
	out := tb.String()
	if tb.NumRows() != 2 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	for _, want := range []string{"Fig X", "job", "median", "S10", "0.001234"} {
		if !contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}

// TestMeterRateSampleClipsTrailingPartialBucket is the regression test
// for the Fig. 14b tail-rate bias: the bucket straddling `until` used
// to be divided by the full bucket width rather than the covered
// interval, deflating the rate of a run that ends mid-bucket.
func TestMeterRateSampleClipsTrailingPartialBucket(t *testing.T) {
	m := NewMeter(1.0)
	m.Add(0.5, 1)
	m.Add(2.1, 1) // bucket [2,3); the query window ends at 2.5
	s := m.RateSample(2.5)
	if s.N() != 3 {
		t.Fatalf("n = %d, want 3", s.N())
	}
	// The trailing bucket covers only [2, 2.5): rate = 1/0.5 = 2.
	if got := s.Max(); !almostEqual(got, 2, 1e-9) {
		t.Fatalf("trailing bucket rate = %g, want 2 (clipped to covered interval)", got)
	}
	// A window on a bucket boundary and the unbounded query keep the
	// full-width divisor.
	if got := m.RateSample(2).Max(); !almostEqual(got, 1, 1e-9) {
		t.Fatalf("boundary window max = %g, want 1", got)
	}
	if got := m.RateSample(0).Max(); !almostEqual(got, 1, 1e-9) {
		t.Fatalf("unbounded max = %g, want 1", got)
	}
}

// TestGaugeAtMatchesLinearReference pins the sort.Search rewrite of At
// to the original linear-scan semantics, duplicates included.
func TestGaugeAtMatchesLinearReference(t *testing.T) {
	g := NewGauge()
	times := []float64{0, 0.5, 0.5, 1.25, 3, 3, 7}
	for i, ts := range times {
		g.Set(ts, float64(i+1))
	}
	ref := func(q float64) float64 {
		v := 0.0
		for i, ts := range times {
			if ts > q {
				break
			}
			v = float64(i + 1)
		}
		return v
	}
	for _, q := range []float64{-1, 0, 0.25, 0.5, 1, 1.25, 2, 3, 5, 7, 9} {
		if g.At(q) != ref(q) {
			t.Fatalf("At(%g) = %g, want %g", q, g.At(q), ref(q))
		}
	}
}

// TestGaugeSetRejectsTimeRegression is the regression test for Set
// silently corrupting At/TimeAverage: an out-of-order sample must
// panic instead of breaking the sorted-times invariant.
func TestGaugeSetRejectsTimeRegression(t *testing.T) {
	g := NewGauge()
	g.Set(2, 1)
	g.Set(2, 3) // equal times stay legal
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on gauge time regression")
		}
	}()
	g.Set(1, 5)
}

func TestBreakdownMerge(t *testing.T) {
	a, b := NewBreakdown(), NewBreakdown()
	a.Record(map[Stage]float64{StageNetwork: 1, StageExecution: 3})
	b.Record(map[Stage]float64{StageNetwork: 2, StageDataIO: 4})
	a.Merge(b)
	a.Merge(nil)
	if a.N() != 2 {
		t.Fatalf("merged n = %d, want 2", a.N())
	}
	if got := a.Stage(StageNetwork).Sum(); got != 3 {
		t.Fatalf("network sum = %g, want 3", got)
	}
	if got := a.Total().Sum(); got != 10 {
		t.Fatalf("total sum = %g, want 10", got)
	}
}
