package rpc

import (
	"bytes"
	"context"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hivemind/internal/chaos"
)

// TestResponseWriteFailureDoesNotWedgeServer injects a write failure on
// the server side of a connection (via chaos) while a response is being
// written, and asserts the failure tears the connection down instead of
// wedging the serve loop: the caller gets an error, the server keeps
// serving fresh connections, and Close returns promptly.
func TestResponseWriteFailureDoesNotWedgeServer(t *testing.T) {
	srv := NewServer()
	inj := chaos.NewInjector(1, chaos.Config{})
	srv.Register("flip", func(p []byte) ([]byte, error) {
		// Arm the injector from inside the handler so the request frame
		// gets through cleanly and only the response write fails.
		inj.SetConfig(chaos.Config{DropProb: 1})
		return p, nil
	})
	srv.Register("echo", func(p []byte) ([]byte, error) { return p, nil })

	cc, sc := Pair()
	srv.ServeConn(inj.WrapConn(sc))
	c := NewClient(cc, 4)
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := c.Call(ctx, "flip", []byte("x")); err == nil {
		t.Fatal("call succeeded although the response write was dropped")
	} else if ctx.Err() != nil {
		t.Fatalf("call hung until the timeout instead of failing fast: %v", err)
	}

	// The server must still accept and serve a fresh connection.
	cc2, sc2 := Pair()
	srv.ServeConn(sc2)
	c2 := NewClient(cc2, 4)
	defer c2.Close()
	if _, err := c2.CallSync("echo", []byte("y")); err != nil {
		t.Fatalf("second connection broken after write failure on first: %v", err)
	}

	done := make(chan struct{})
	go func() { srv.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("server Close wedged after response-write failure")
	}
}

// TestGoPanicsOnUnbufferedDone pins the contract that a caller-supplied
// unbuffered Done channel is rejected loudly: the old behaviour
// silently dropped completions, which turned every such bug into a
// deadlocked caller.
func TestGoPanicsOnUnbufferedDone(t *testing.T) {
	srv := NewServer()
	srv.Register("echo", func(p []byte) ([]byte, error) { return p, nil })
	cc, sc := Pair()
	srv.ServeConn(sc)
	defer srv.Close()
	c := NewClient(cc, 2)
	defer c.Close()

	defer func() {
		if recover() == nil {
			t.Fatal("Go accepted an unbuffered done channel without panicking")
		}
	}()
	c.Go("echo", []byte("x"), make(chan *Call))
}

// TestWorkerPoolBoundsConcurrency asserts SetWorkers caps how many
// handlers run at once: 32 concurrent slow calls against a 4-worker
// server must never observe more than 4 handlers in flight.
func TestWorkerPoolBoundsConcurrency(t *testing.T) {
	srv := NewServer()
	srv.SetWorkers(4)
	var inflight, peak atomic.Int64
	srv.Register("slow", func(p []byte) ([]byte, error) {
		n := inflight.Add(1)
		for {
			old := peak.Load()
			if n <= old || peak.CompareAndSwap(old, n) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		inflight.Add(-1)
		return p, nil
	})
	cc, sc := Pair()
	srv.ServeConn(sc)
	defer srv.Close()
	c := NewClient(cc, 32)
	defer c.Close()

	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.CallSync("slow", nil); err != nil {
				t.Errorf("slow call: %v", err)
			}
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > 4 {
		t.Fatalf("peak concurrent handlers = %d, want <= 4", p)
	}
}

// TestPingBypassesSaturatedWorkerPool pins the out-of-band contract: a
// heartbeat must complete while the only worker is stuck in a slow
// handler, because the read loop answers pings directly instead of
// routing them through the pool.
func TestPingBypassesSaturatedWorkerPool(t *testing.T) {
	srv := NewServer()
	srv.SetWorkers(1)
	release := make(chan struct{})
	entered := make(chan struct{})
	srv.Register("block", func(p []byte) ([]byte, error) {
		close(entered)
		<-release
		return p, nil
	})
	cc, sc := Pair()
	srv.ServeConn(sc)
	defer srv.Close()
	c := NewClient(cc, 4)
	defer c.Close()

	call := c.Go("block", nil, make(chan *Call, 1))
	<-entered // the single worker is now stuck

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := c.Ping(ctx); err != nil {
		t.Fatalf("ping queued behind saturated worker pool: %v", err)
	}

	close(release)
	if res := <-call.Done; res.Err != nil {
		t.Fatalf("blocked call failed after release: %v", res.Err)
	}
}

// sinkConn is a net.Conn that records writes; its first Write can be
// gated so frames pile up behind an in-flight syscall.
type sinkConn struct {
	mu     sync.Mutex
	buf    bytes.Buffer
	writes int
	gate   chan struct{} // nil: never block
	gated  bool          // first write already consumed the gate
}

func (s *sinkConn) Write(p []byte) (int, error) {
	s.mu.Lock()
	if s.gate != nil && !s.gated {
		s.gated = true
		gate := s.gate
		s.mu.Unlock()
		<-gate
		s.mu.Lock()
	}
	s.writes++
	n, err := s.buf.Write(p)
	s.mu.Unlock()
	return n, err
}

func (s *sinkConn) Read([]byte) (int, error)           { return 0, io.EOF }
func (s *sinkConn) Close() error                       { return nil }
func (s *sinkConn) LocalAddr() net.Addr                { return nil }
func (s *sinkConn) RemoteAddr() net.Addr               { return nil }
func (s *sinkConn) SetDeadline(time.Time) error        { return nil }
func (s *sinkConn) SetReadDeadline(t time.Time) error  { return nil }
func (s *sinkConn) SetWriteDeadline(t time.Time) error { return nil }

// TestConnWriterCoalescesAndPreservesOrder blocks the first write so a
// burst of frames queues behind it, then verifies (a) the queued frames
// were coalesced into far fewer syscalls than frames, and (b) the byte
// stream decodes into every frame, whole and in enqueue order.
func TestConnWriterCoalescesAndPreservesOrder(t *testing.T) {
	const frames = 64
	sink := &sinkConn{gate: make(chan struct{})}
	w := newConnWriter(sink)
	defer w.close()

	// Frame 0 claims the writer and blocks in Write.
	buf, err := encodeFrame(kindRequest, 0, "m", []byte{0})
	if err != nil {
		t.Fatal(err)
	}
	first := make(chan error, 1)
	go func() { first <- w.enqueue(buf, true) }()

	// Wait until the inline writer is actually inside Write.
	deadline := time.Now().Add(5 * time.Second)
	for {
		sink.mu.Lock()
		entered := sink.gated
		sink.mu.Unlock()
		if entered {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first write never reached the conn")
		}
		time.Sleep(100 * time.Microsecond)
	}

	// These must all queue behind the in-flight write.
	for i := uint64(1); i < frames; i++ {
		pb, err := encodeFrame(kindRequest, i, "m", []byte{byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		if err := w.enqueue(pb, true); err != nil {
			t.Fatal(err)
		}
	}

	close(sink.gate)
	if err := <-first; err != nil {
		t.Fatalf("inline enqueue: %v", err)
	}

	// Wait for the flusher to drain everything.
	var out []byte
	for {
		sink.mu.Lock()
		out = append(out[:0], sink.buf.Bytes()...)
		writes := sink.writes
		sink.mu.Unlock()
		if countFrames(t, out) == frames {
			if writes >= frames/2 {
				t.Fatalf("%d frames took %d writes; expected coalescing into far fewer", frames, writes)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("drained only %d/%d frames", countFrames(t, out), frames)
		}
		time.Sleep(100 * time.Microsecond)
	}

	// Decode and verify order and integrity.
	r := bytes.NewReader(out)
	for i := uint64(0); i < frames; i++ {
		f, err := readFrame(r)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if f.callID != i {
			t.Fatalf("frame %d out of order: callID %d", i, f.callID)
		}
		if len(f.payload) != 1 || f.payload[0] != byte(i) {
			t.Fatalf("frame %d payload corrupted: %v", i, f.payload)
		}
	}
	if _, err := readFrame(r); err != io.EOF {
		t.Fatalf("trailing bytes after last frame: %v", err)
	}
}

func countFrames(t *testing.T, stream []byte) int {
	t.Helper()
	n := 0
	r := bytes.NewReader(stream)
	for {
		if _, err := readFrame(r); err != nil {
			return n
		}
		n++
	}
}
