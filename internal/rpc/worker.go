package rpc

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// expiredBy reports how far past its deadline a request is, or a
// negative duration when the deadline is unset or still ahead.
func expiredBy(deadlineNS int64) time.Duration {
	if deadlineNS == 0 {
		return -1
	}
	return time.Duration(time.Now().UnixNano() - deadlineNS)
}

// defaultWorkers sizes the per-connection server worker pool, matching
// the default client caller pool: the two ends of a connection can
// keep the same number of requests in flight.
const defaultWorkers = 64

// reqCtx is a minimal cancellable context, one allocation per request.
// context.WithCancel would cost a child registration in a shared
// parent on every request — measurable at data-plane rates — so the
// dispatcher tracks live requests itself and cancels them directly on
// cancel frames and connection teardown. The done channel is lazy:
// most handlers never select on it.
type reqCtx struct {
	// deadline is the request's wire-propagated absolute deadline (zero:
	// none). Written once before the task is submitted to the pool, read
	// only afterwards, so it needs no locking.
	deadline time.Time

	mu   sync.Mutex
	done chan struct{}
	err  error
}

var _ context.Context = (*reqCtx)(nil)

func (c *reqCtx) Deadline() (time.Time, bool) { return c.deadline, !c.deadline.IsZero() }

func (c *reqCtx) Done() <-chan struct{} {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.done == nil {
		c.done = make(chan struct{})
		if c.err != nil {
			close(c.done)
		}
	}
	return c.done
}

func (c *reqCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

func (c *reqCtx) Value(any) any { return nil }

// cancel fires the context once; later calls are no-ops.
func (c *reqCtx) cancel(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
		if c.done != nil {
			close(c.done)
		}
	}
	c.mu.Unlock()
}

// task is one request handed from a connection's read loop to its
// worker pool. ctx is nil for plain handlers (registered via Register):
// they ignore their context, so no cancellation tracking is kept for
// them and run substitutes context.Background.
type task struct {
	h       HandlerCtx // nil: method not found
	ctx     *reqCtx
	callID  uint64
	payload []byte
	// deadlineNS is the request's wire-propagated absolute deadline
	// (UnixNano; 0: none). Checked when a worker picks the task up: work
	// that expired while queued is dropped, not executed.
	deadlineNS int64
}

// dispatcher runs a connection's request handlers on a bounded pool of
// workers, replacing goroutine-per-request: under load at most max
// handlers run concurrently and up to max more requests queue in the
// channel, which backpressures the read loop instead of spawning
// without bound. Workers are spawned lazily, so an idle connection
// costs one goroutine (the read loop), not max+1.
//
// Ping and cancel frames are never routed through the pool — the read
// loop services them directly — so heartbeats and cancellation stay
// responsive while every worker is stuck in a slow handler.
type dispatcher struct {
	w    *connWriter
	work chan task
	max  int

	mu      sync.Mutex
	spawned int
	idle    int

	// dropped, when non-nil, counts requests dropped unexecuted because
	// their deadline expired while they queued (the server's counter).
	dropped *atomic.Uint64

	// inflight maps live call ids to their request contexts so
	// kindCancel frames and connection teardown can fire them.
	inflightMu sync.Mutex
	inflight   map[uint64]*reqCtx
}

func newDispatcher(w *connWriter, workers int) *dispatcher {
	if workers <= 0 {
		workers = defaultWorkers
	}
	return &dispatcher{
		w:        w,
		work:     make(chan task, workers),
		max:      workers,
		inflight: make(map[uint64]*reqCtx),
	}
}

// register records a live call so cancel frames can reach it. It must
// run before the task is submitted.
func (d *dispatcher) register(callID uint64, rc *reqCtx) {
	d.inflightMu.Lock()
	d.inflight[callID] = rc
	d.inflightMu.Unlock()
}

// cancelCall fires the context of a live call, if any.
func (d *dispatcher) cancelCall(callID uint64) {
	d.inflightMu.Lock()
	rc := d.inflight[callID]
	d.inflightMu.Unlock()
	if rc != nil {
		rc.cancel(context.Canceled)
	}
}

// unregister removes a finished call.
func (d *dispatcher) unregister(callID uint64) {
	d.inflightMu.Lock()
	delete(d.inflight, callID)
	d.inflightMu.Unlock()
}

// abortAll cancels every in-flight request context: connection
// teardown, so handlers observe the disconnect.
func (d *dispatcher) abortAll() {
	d.inflightMu.Lock()
	for _, rc := range d.inflight {
		rc.cancel(context.Canceled)
	}
	d.inflightMu.Unlock()
}

// submit hands one request to the pool. A new worker is spawned only
// when none is idle and the pool is below its bound; otherwise the
// task queues, blocking the read loop once max tasks are already
// waiting (backpressure replaces unbounded goroutine spawn).
func (d *dispatcher) submit(t task) {
	d.mu.Lock()
	if d.idle == 0 && d.spawned < d.max {
		d.spawned++
		d.mu.Unlock()
		go d.worker(t)
		return
	}
	d.mu.Unlock()
	d.work <- t
}

// close stops the pool: workers drain queued tasks (their contexts are
// already cancelled by connection teardown) and exit. Only the read
// loop submits, and only after it has returned is close called, so no
// send can race the close.
func (d *dispatcher) close() {
	close(d.work)
}

func (d *dispatcher) worker(t task) {
	for {
		d.run(t)
		d.mu.Lock()
		d.idle++
		d.mu.Unlock()
		var ok bool
		t, ok = <-d.work
		d.mu.Lock()
		d.idle--
		d.mu.Unlock()
		if !ok {
			return
		}
	}
}

// run executes one handler and queues its response frame. Write
// failures surface through connection teardown, exactly like the
// pre-pool direct-write path. A request whose wire deadline expired
// while it queued is dropped here — answered with a typed
// DeadlineExceededError, never executed — so a backed-up pool stops
// burning capacity on work the caller has already abandoned.
func (d *dispatcher) run(t task) {
	var ctx context.Context = context.Background()
	if t.ctx != nil {
		ctx = t.ctx
		defer d.unregister(t.callID)
	}
	kind := byte(kindResponse)
	var out []byte
	if late := expiredBy(t.deadlineNS); late >= 0 && t.h != nil {
		if d.dropped != nil {
			d.dropped.Add(1)
		}
		kind = kindError
		out = []byte((&DeadlineExceededError{Late: late}).Error())
	} else if t.h == nil {
		kind = kindError
		out = []byte(ErrMethodNotFound.Error())
	} else if res, err := t.h(ctx, t.payload); err != nil {
		kind = kindError
		out = []byte(err.Error())
	} else {
		out = res
	}
	buf, err := encodeFrame(kind, t.callID, "", out)
	if err != nil {
		// Response too large to frame: tell the caller instead of
		// leaving the call pending forever.
		if buf, err = encodeFrame(kindError, t.callID, "", []byte(err.Error())); err != nil {
			return
		}
	}
	d.w.enqueue(buf, true) // best effort: teardown surfaces via read loops
}
