package controller

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"hivemind/internal/geo"
	"hivemind/internal/rpc"
	"hivemind/internal/trace"
)

// This file is the live counterpart of the simulated Controller: the
// §4.7 "two hot standby copies that can take over in case of a failure"
// running as real processes over internal/rpc. Each Replica holds a
// Raft-lite, lease-based leader election (term numbers, majority votes,
// seeded-deterministic election timeouts — no log, the replicated state
// is small enough to ship whole) and the primary replicates the device
// registry and the in-flight task table to its standbys on every lease
// broadcast. The primary also runs the live membership service: devices
// register and heartbeat over RPC, staleness past HeartbeatTimeout marks
// them failed and triggers geo.Repartition on the live fleet (§4.6,
// Fig. 10), exactly mirroring the simulated scan loop.

// Replica RPC method names.
const (
	MethodVote     = "ctrl.vote"
	MethodLease    = "ctrl.lease"
	MethodRegister = "ctrl.register"
	MethodBeat     = "ctrl.beat"
	MethodLeader   = "ctrl.leader"
)

// KillControllerOp is the fault-injection op a replica consults before
// every lease round; an injected fault crashes the replica, so chaos
// scripts (chaos.Injector.Script / At) can kill the primary at a chosen
// moment — the live KillActiveReplica.
func KillControllerOp(id int) string { return fmt.Sprintf("kill-controller/%d", id) }

// FaultHook is the fault-injection interface the replica consults
// (chaos.Injector satisfies it).
type FaultHook interface {
	Fault(op string) error
}

// ReplicaState is a replica's election role.
type ReplicaState int

const (
	// Follower replicas apply leases and time out into candidacy.
	Follower ReplicaState = iota
	// Candidate replicas are soliciting votes for a new term.
	Candidate
	// Leader is the serving primary.
	Leader
	// Dead replicas have crashed (or been killed by chaos).
	Dead
)

// String implements fmt.Stringer.
func (s ReplicaState) String() string {
	switch s {
	case Follower:
		return "follower"
	case Candidate:
		return "candidate"
	case Leader:
		return "leader"
	default:
		return "dead"
	}
}

// ReplicaConfig tunes one controller replica.
type ReplicaConfig struct {
	// ID is this replica's index in the replica set [0, Replicas).
	ID int
	// Replicas is the replica-set size (1 primary + N hot standbys;
	// §4.7 runs 3).
	Replicas int
	// ElectionTimeoutMin/Max bound the randomized follower timeout that
	// triggers candidacy. Draws are seeded, so a fixed Seed yields a
	// deterministic timeout sequence.
	ElectionTimeoutMin time.Duration
	ElectionTimeoutMax time.Duration
	// LeaseInterval is the primary's state-replication heartbeat period.
	LeaseInterval time.Duration
	// VoteTimeout bounds each vote/lease RPC.
	VoteTimeout time.Duration
	// HeartbeatTimeout marks a registered device failed when its last
	// beat is older than this (the live HeartbeatTimeoutS; §4.6: 3 s).
	HeartbeatTimeout time.Duration
	// CheckPeriod is the primary's device-staleness scan period.
	CheckPeriod time.Duration
	// Seed makes election-timeout draws deterministic (0: wall clock).
	Seed int64
	// InitialTerm is the term the replica starts counting from. A
	// replica set restarted over a recovered store MUST set this to the
	// store's fence (store.DB.Fence after Recover): terms only advance
	// through elections, so a cluster restarting at term 0 under a
	// fence of N would elect leaders whose writes stay fenced forever.
	InitialTerm uint64
	// Fault, if non-nil, is consulted with KillControllerOp(ID) before
	// every lease round; an injected fault crashes the replica.
	Fault FaultHook
	// Recover, if non-nil, runs on promotion: the new primary enumerates
	// orphaned checkpointed tasks and re-dispatches them (wired to
	// runtime.Gateway.Recover). It returns how many were re-dispatched.
	Recover func(ctx context.Context) (int, error)
	// OnPromote, if non-nil, runs synchronously on promotion with the
	// won term, BEFORE the first lease broadcast and before Recover.
	// Wire it to store.DB.RaiseFence so the new primary's fence is up
	// before any recovered work writes — a healed old primary's stale
	// writes then bounce with store.FencedError.
	OnPromote func(term uint64)
	// OnRepartition, if non-nil, fires after a live repartition with the
	// failed device id and the gaining device ids.
	OnRepartition func(failed int, gainers []int)
}

// DefaultReplicaConfig mirrors the sim-side DefaultConfig at live-wire
// timescales: 1 s device beats with a 3 s staleness cutoff, and an
// election settling well inside the sim's 0.5 s failover budget.
func DefaultReplicaConfig(id, replicas int, seed int64) ReplicaConfig {
	return ReplicaConfig{
		ID:                 id,
		Replicas:           replicas,
		ElectionTimeoutMin: 150 * time.Millisecond,
		ElectionTimeoutMax: 300 * time.Millisecond,
		LeaseInterval:      50 * time.Millisecond,
		VoteTimeout:        100 * time.Millisecond,
		HeartbeatTimeout:   3 * time.Second,
		CheckPeriod:        time.Second,
		Seed:               seed,
	}
}

// TaskRecord is one in-flight task table entry, replicated to standbys
// so a new primary knows what was running when the old one died.
type TaskRecord struct {
	Method string
	Step   int
}

// Member is one live-registered device's controller-side state.
type Member struct {
	ID       int
	Region   geo.Rect
	LastBeat time.Time
	Failed   bool
}

// wire messages (JSON-encoded over internal/rpc).
type voteReq struct {
	Term      uint64
	Candidate int
}

type voteResp struct {
	Term    uint64
	Granted bool
}

type wireMember struct {
	Region geo.Rect
	AgoNS  int64 // beat age relative to the leader's clock
	Failed bool
}

type leaseMsg struct {
	Term    uint64
	Leader  int
	Members map[int]wireMember
	Tasks   map[string]TaskRecord
}

type leaseResp struct {
	Term uint64
	OK   bool
}

type registerReq struct {
	ID     int
	Region geo.Rect
}

type beatReq struct {
	ID int
}

type memberResp struct {
	Region geo.Rect
	Failed bool
}

type leaderResp struct {
	Leader int
	Term   uint64
	State  string
}

// Replica is one live controller process: an RPC server plus the
// election and replication loops. Wire its Server() to a listener (or
// in-process pipes) and point peer dial functions at the other
// replicas.
type Replica struct {
	cfg    ReplicaConfig
	mon    *Monitor
	srv    *rpc.Server
	peers  map[int]*rpc.ReliableClient
	tracer *trace.Live // set before Start; read under mu

	mu          sync.Mutex
	rng         *rand.Rand
	state       ReplicaState
	term        uint64
	leaderTerm  uint64 // term of the last election this replica won
	votedFor    int
	leaderID    int
	lastContact time.Time // last lease applied or vote granted (timer base)
	lastLease   time.Time // last lease applied from a serving leader
	lastQuorum  time.Time // leader: last majority-acked lease round
	lastScan    time.Time
	timeout     time.Duration // current randomized election timeout
	members     map[int]*Member
	tasks       map[string]TaskRecord

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

// NewReplica builds one controller replica. peerDials maps replica id →
// dial function for every *other* replica; mon may be shared across the
// replica set so counters aggregate (Monitor is goroutine-safe). The
// replica starts as a follower; call Start to run its loops.
func NewReplica(cfg ReplicaConfig, peerDials map[int]func() (net.Conn, error), mon *Monitor) *Replica {
	if cfg.Replicas <= 0 {
		cfg.Replicas = len(peerDials) + 1
	}
	if cfg.ElectionTimeoutMin <= 0 || cfg.ElectionTimeoutMax < cfg.ElectionTimeoutMin {
		d := DefaultReplicaConfig(cfg.ID, cfg.Replicas, cfg.Seed)
		cfg.ElectionTimeoutMin, cfg.ElectionTimeoutMax = d.ElectionTimeoutMin, d.ElectionTimeoutMax
	}
	if cfg.LeaseInterval <= 0 {
		cfg.LeaseInterval = 50 * time.Millisecond
	}
	if cfg.VoteTimeout <= 0 {
		cfg.VoteTimeout = 2 * cfg.LeaseInterval
	}
	if cfg.HeartbeatTimeout <= 0 {
		cfg.HeartbeatTimeout = 3 * time.Second
	}
	if cfg.CheckPeriod <= 0 {
		cfg.CheckPeriod = time.Second
	}
	if mon == nil {
		mon = NewMonitor()
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	r := &Replica{
		cfg:      cfg,
		mon:      mon,
		srv:      rpc.NewServer(),
		peers:    make(map[int]*rpc.ReliableClient, len(peerDials)),
		rng:      rand.New(rand.NewSource(seed + int64(cfg.ID)*7919)),
		term:     cfg.InitialTerm,
		votedFor: -1,
		leaderID: -1,
		members:  make(map[int]*Member),
		tasks:    make(map[string]TaskRecord),
		stop:     make(chan struct{}),
	}
	for id, dial := range peerDials {
		r.peers[id] = rpc.NewReliableClient(dial, rpc.ReliableOptions{
			Callers:     8,
			CallTimeout: cfg.VoteTimeout,
			Retry:       rpc.RetryPolicy{Max: 0}, // the election loop is the retry
			Seed:        seed + int64(id) + 1,
		})
	}
	r.lastContact = time.Now()
	r.timeout = r.drawTimeout()
	r.registerHandlers()
	return r
}

// drawTimeout picks the next randomized election timeout (caller holds
// no lock on rng except mu; call under mu or before Start).
func (r *Replica) drawTimeout() time.Duration {
	span := r.cfg.ElectionTimeoutMax - r.cfg.ElectionTimeoutMin
	if span <= 0 {
		return r.cfg.ElectionTimeoutMin
	}
	return r.cfg.ElectionTimeoutMin + time.Duration(r.rng.Int63n(int64(span)))
}

// SetTracer installs a live tracer: the replica marks elections,
// takeovers, and device failures as instants on the "controller" lane,
// so a chaos run's Chrome trace shows the control-plane timeline next
// to the task spans. Call before Start.
func (r *Replica) SetTracer(l *trace.Live) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tracer = l
}

// Server returns the replica's RPC server (serve it on a listener or
// in-process pipes).
func (r *Replica) Server() *rpc.Server { return r.srv }

// Monitor returns the replica's metrics registry.
func (r *Replica) Monitor() *Monitor { return r.mon }

// Start launches the election/lease loops.
func (r *Replica) Start() {
	r.wg.Add(1)
	go r.loop()
}

// Stop shuts the replica down gracefully (same mechanics as Kill; the
// split exists so tests read as intent).
func (r *Replica) Stop() { r.Kill() }

// Kill crashes the replica: loops stop, the RPC server closes (dropping
// every device and peer connection), and the replica never serves
// again. Standbys detect the missing lease and elect a new primary.
func (r *Replica) Kill() {
	r.stopOnce.Do(func() {
		r.mu.Lock()
		r.state = Dead
		r.mu.Unlock()
		close(r.stop)
		r.srv.Close()
		for _, p := range r.peers {
			p.Close()
		}
	})
	r.wg.Wait()
}

// State returns the replica's current role.
func (r *Replica) State() ReplicaState {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state
}

// IsLeader reports whether this replica is the serving primary.
func (r *Replica) IsLeader() bool { return r.State() == Leader }

// Leader returns the believed leader id (-1 mid-election) and term.
func (r *Replica) Leader() (int, uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.leaderID, r.term
}

// Term returns the replica's current term.
func (r *Replica) Term() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.term
}

// LeaderTerm returns the term of the last election this replica WON —
// the fence token every store mutation issued on its behalf should
// carry (wire it into store.NewFencedCheckpointLog's FenceSource). It
// is deliberately not the current term: a deposed primary campaigning
// inside a minority partition inflates its term without holding a
// lease, and stamping writes with a candidacy term would let them
// leapfrog the legitimate primary's fence. Authority comes from won
// elections only.
func (r *Replica) LeaderTerm() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.leaderTerm
}

// StepDown demotes a leading replica to follower immediately. It is
// the escape hatch for out-of-band proof of deposition — a fenced
// store write (wire runtime.GatewayConfig.OnFenced here) means a newer
// primary exists even if this replica's lease quorum still looks
// healthy inside its partition. No-op unless currently leader.
func (r *Replica) StepDown() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.state != Leader {
		return
	}
	r.state = Follower
	r.leaderID = -1
	r.lastContact = time.Now()
	r.timeout = r.drawTimeout()
	r.mon.CountEvent(EventStepDown)
	r.tracer.Mark("step-down", "controller", map[string]string{
		"replica": strconv.Itoa(r.cfg.ID),
		"term":    strconv.FormatUint(r.term, 10),
		"reason":  "fenced",
	}, false)
}

// Admission returns a gate for primary-only services fronted by this
// replica (e.g. a gateway's chain methods): nil when leader, a
// NotLeaderError redirect otherwise. Wire it into
// runtime.GatewayConfig.Admission.
func (r *Replica) Admission() func() error {
	return func() error {
		r.mu.Lock()
		defer r.mu.Unlock()
		if r.state == Leader {
			return nil
		}
		return rpc.NotLeaderError(r.leaderID)
	}
}

// TaskStarted records an in-flight task on the primary's replicated
// table (satisfies runtime.TaskTracker).
func (r *Replica) TaskStarted(id, method string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tasks[id] = TaskRecord{Method: method}
}

// TaskStep advances a tracked task's step index.
func (r *Replica) TaskStep(id string, step int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if t, ok := r.tasks[id]; ok && step > t.Step {
		t.Step = step
		r.tasks[id] = t
	}
}

// TaskFinished drops a completed task from the table (satisfies
// runtime.TaskTracker).
func (r *Replica) TaskFinished(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.tasks, id)
}

// Tasks snapshots the in-flight task table.
func (r *Replica) Tasks() map[string]TaskRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]TaskRecord, len(r.tasks))
	for k, v := range r.tasks {
		out[k] = v
	}
	return out
}

// Members snapshots the device registry, sorted by id.
func (r *Replica) Members() []Member {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Member, 0, len(r.members))
	for _, m := range r.members {
		out = append(out, *m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// registerHandlers binds the replica's RPC surface.
func (r *Replica) registerHandlers() {
	r.srv.Register(MethodVote, r.handleVote)
	r.srv.Register(MethodLease, r.handleLease)
	r.srv.Register(MethodRegister, r.handleRegister)
	r.srv.Register(MethodBeat, r.handleBeat)
	r.srv.Register(MethodLeader, func([]byte) ([]byte, error) {
		r.mu.Lock()
		resp := leaderResp{Leader: r.leaderID, Term: r.term, State: r.state.String()}
		r.mu.Unlock()
		return json.Marshal(resp)
	})
}

// loop drives the role state machine on a fine-grained tick.
func (r *Replica) loop() {
	defer r.wg.Done()
	tick := r.cfg.LeaseInterval / 4
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
		}
		r.mu.Lock()
		state := r.state
		timedOut := time.Since(r.lastContact) > r.timeout
		leaseDue := state == Leader && time.Since(r.lastQuorum) >= r.cfg.LeaseInterval
		r.mu.Unlock()
		switch {
		case state == Dead:
			return
		case state == Leader && leaseDue:
			r.leaderRound()
		case state != Leader && timedOut:
			r.runElection()
		}
	}
}

// leaderRound is one primary duty cycle: consult the chaos hook, scan
// device heartbeats, broadcast the state lease.
func (r *Replica) leaderRound() {
	if r.cfg.Fault != nil {
		if err := r.cfg.Fault.Fault(KillControllerOp(r.cfg.ID)); err != nil {
			go r.Kill() // crash without deadlocking on our own wg
			return
		}
	}
	r.scanDevices()
	r.broadcastLease()
}

// runElection runs one candidacy round: bump the term, vote for self,
// solicit the peers, and take leadership on majority.
func (r *Replica) runElection() {
	r.mu.Lock()
	if r.state == Leader || r.state == Dead {
		r.mu.Unlock()
		return
	}
	r.term++
	term := r.term
	r.state = Candidate
	r.votedFor = r.cfg.ID
	r.leaderID = -1
	r.lastContact = time.Now()
	r.timeout = r.drawTimeout()
	r.mu.Unlock()

	req, _ := json.Marshal(voteReq{Term: term, Candidate: r.cfg.ID})
	votes := 1 // self
	var maxTerm uint64
	var vmu sync.Mutex
	var wg sync.WaitGroup
	for _, p := range r.peers {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), r.cfg.VoteTimeout)
			defer cancel()
			raw, err := p.Call(ctx, MethodVote, req)
			if err != nil {
				return
			}
			var resp voteResp
			if json.Unmarshal(raw, &resp) != nil {
				return
			}
			vmu.Lock()
			if resp.Granted {
				votes++
			}
			if resp.Term > maxTerm {
				maxTerm = resp.Term
			}
			vmu.Unlock()
		}()
	}
	wg.Wait()

	r.mu.Lock()
	if maxTerm > r.term {
		// A peer is ahead: fall back to follower at its term.
		r.term = maxTerm
		r.state = Follower
		r.votedFor = -1
		r.mu.Unlock()
		return
	}
	if r.state != Candidate || r.term != term || votes < r.quorum() {
		r.mu.Unlock()
		return // superseded or lost; the timer retries with a fresh draw
	}
	r.state = Leader
	r.leaderID = r.cfg.ID
	r.leaderTerm = term
	now := time.Now()
	r.lastQuorum = now
	r.lastScan = now
	r.mon.CountEvent(EventElection)
	r.tracer.Mark("election-won", "controller", map[string]string{
		"replica": strconv.Itoa(r.cfg.ID),
		"term":    strconv.FormatUint(term, 10),
	}, false)
	promotedAfter := time.Duration(0)
	if !r.lastLease.IsZero() {
		// A previously serving primary existed: this is a failover, and
		// the unavailability window ran from its last lease to now.
		promotedAfter = now.Sub(r.lastLease)
		r.mon.CountEvent(EventFailover)
		r.mon.Observe(SampleFailoverLatency, promotedAfter.Seconds())
		r.tracer.Mark("failover", "controller", map[string]string{
			"replica":  strconv.Itoa(r.cfg.ID),
			"window_s": strconv.FormatFloat(promotedAfter.Seconds(), 'f', 4, 64),
		}, true)
	}
	recover := r.cfg.Recover
	onPromote := r.cfg.OnPromote
	r.mu.Unlock()

	// Raise the store fence first: once it is up, any write still in
	// flight from the deposed primary lands behind the fence and is
	// rejected instead of racing the recovery below.
	if onPromote != nil {
		onPromote(term)
	}
	// Assert authority immediately, then re-dispatch orphaned tasks
	// through the checkpoint log (§4.7 takeover).
	r.broadcastLease()
	if recover != nil {
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 10*r.cfg.HeartbeatTimeout)
			defer cancel()
			if n, err := recover(ctx); err == nil {
				r.mon.CountEventN(EventOrphanRedispatch, n)
			}
		}()
	}
}

// quorum is the majority size of the replica set.
func (r *Replica) quorum() int { return r.cfg.Replicas/2 + 1 }

// broadcastLease ships the replicated state (device registry + task
// table) to every standby and renews the leadership lease on majority
// ack. Losing the majority for longer than the election timeout demotes
// the leader, so a partitioned old primary cannot keep serving.
func (r *Replica) broadcastLease() {
	r.mu.Lock()
	if r.state != Leader {
		r.mu.Unlock()
		return
	}
	term := r.term
	now := time.Now()
	msg := leaseMsg{
		Term:    term,
		Leader:  r.cfg.ID,
		Members: make(map[int]wireMember, len(r.members)),
		Tasks:   make(map[string]TaskRecord, len(r.tasks)),
	}
	for id, m := range r.members {
		msg.Members[id] = wireMember{Region: m.Region, AgoNS: now.Sub(m.LastBeat).Nanoseconds(), Failed: m.Failed}
	}
	for id, t := range r.tasks {
		msg.Tasks[id] = t
	}
	r.mu.Unlock()

	raw, _ := json.Marshal(msg)
	acks := 1 // self
	var maxTerm uint64
	var amu sync.Mutex
	var wg sync.WaitGroup
	for _, p := range r.peers {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), r.cfg.VoteTimeout)
			defer cancel()
			rawResp, err := p.Call(ctx, MethodLease, raw)
			if err != nil {
				return
			}
			var resp leaseResp
			if json.Unmarshal(rawResp, &resp) != nil {
				return
			}
			amu.Lock()
			if resp.OK {
				acks++
			}
			if resp.Term > maxTerm {
				maxTerm = resp.Term
			}
			amu.Unlock()
		}()
	}
	wg.Wait()

	r.mu.Lock()
	defer r.mu.Unlock()
	if r.state != Leader || r.term != term {
		return
	}
	if maxTerm > r.term {
		// A peer answered from a higher term: a newer primary exists (or
		// an election is ahead of us) — step down at its term.
		r.term = maxTerm
		r.state = Follower
		r.votedFor = -1
		r.leaderID = -1
		r.mon.CountEvent(EventStepDown)
		return
	}
	if acks >= r.quorum() {
		r.lastQuorum = time.Now()
	} else if time.Since(r.lastQuorum) > r.cfg.ElectionTimeoutMax {
		// Lease expired without majority contact: step down rather than
		// split-brain with a newly elected primary.
		r.state = Follower
		r.leaderID = -1
		r.lastContact = time.Now()
		r.timeout = r.drawTimeout()
		r.mon.CountEvent(EventStepDown)
	}
}

// handleVote answers a candidate's vote request.
func (r *Replica) handleVote(payload []byte) ([]byte, error) {
	var req voteReq
	if err := json.Unmarshal(payload, &req); err != nil {
		return nil, rpc.ServerError("controller: bad vote request")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	resp := voteResp{Term: r.term}
	if req.Term < r.term {
		return json.Marshal(resp)
	}
	// Leader stickiness: while the current leader's lease is fresh,
	// refuse to unseat it (prevents a flappy peer from forcing churn).
	if req.Term == r.term && r.leaderID != -1 && req.Candidate != r.leaderID &&
		time.Since(r.lastLease) < r.cfg.ElectionTimeoutMin {
		return json.Marshal(resp)
	}
	if req.Term > r.term {
		r.term = req.Term
		r.votedFor = -1
		if r.state == Leader || r.state == Candidate {
			r.state = Follower
		}
		r.leaderID = -1
	}
	resp.Term = r.term
	if r.votedFor == -1 || r.votedFor == req.Candidate {
		r.votedFor = req.Candidate
		r.lastContact = time.Now() // granting a vote resets the timer
		resp.Granted = true
	}
	return json.Marshal(resp)
}

// handleLease applies a primary's state broadcast.
func (r *Replica) handleLease(payload []byte) ([]byte, error) {
	var msg leaseMsg
	if err := json.Unmarshal(payload, &msg); err != nil {
		return nil, rpc.ServerError("controller: bad lease")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if msg.Term < r.term {
		return json.Marshal(leaseResp{Term: r.term})
	}
	if msg.Term > r.term {
		r.votedFor = -1
	}
	r.term = msg.Term
	r.state = Follower
	r.leaderID = msg.Leader
	now := time.Now()
	r.lastContact = now
	r.lastLease = now
	// Apply the replicated snapshot. Beat ages are relative to the
	// leader's clock, so absolute wall-clock skew between replicas does
	// not corrupt staleness decisions after a takeover.
	members := make(map[int]*Member, len(msg.Members))
	for id, wm := range msg.Members {
		members[id] = &Member{ID: id, Region: wm.Region, LastBeat: now.Add(-time.Duration(wm.AgoNS)), Failed: wm.Failed}
	}
	r.members = members
	tasks := make(map[string]TaskRecord, len(msg.Tasks))
	for id, t := range msg.Tasks {
		tasks[id] = t
	}
	r.tasks = tasks
	return json.Marshal(leaseResp{Term: r.term, OK: true})
}

// handleRegister admits a device into the live membership service.
// Registration is idempotent and revives a previously failed device.
func (r *Replica) handleRegister(payload []byte) ([]byte, error) {
	var req registerReq
	if err := json.Unmarshal(payload, &req); err != nil {
		return nil, rpc.ServerError("controller: bad register request")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.state != Leader {
		return nil, rpc.NotLeaderError(r.leaderID)
	}
	m, ok := r.members[req.ID]
	if !ok {
		m = &Member{ID: req.ID}
		r.members[req.ID] = m
	}
	m.Region = req.Region
	m.LastBeat = time.Now()
	m.Failed = false
	return json.Marshal(memberResp{Region: m.Region})
}

// handleBeat records a device heartbeat and returns the device's
// current route, so repartition gainers pick their grown region up on
// the next beat (the live route push of Fig. 10).
func (r *Replica) handleBeat(payload []byte) ([]byte, error) {
	var req beatReq
	if err := json.Unmarshal(payload, &req); err != nil {
		return nil, rpc.ServerError("controller: bad heartbeat")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.state != Leader {
		return nil, rpc.NotLeaderError(r.leaderID)
	}
	m, ok := r.members[req.ID]
	if !ok {
		return nil, rpc.ServerError(unknownDeviceMsg)
	}
	if !m.Failed {
		m.LastBeat = time.Now()
	}
	return json.Marshal(memberResp{Region: m.Region, Failed: m.Failed})
}

// scanDevices is the primary's staleness scan: devices whose beats are
// older than HeartbeatTimeout are marked failed and their region is
// repartitioned among alive members (§4.6).
func (r *Replica) scanDevices() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if time.Since(r.lastScan) < r.cfg.CheckPeriod {
		return
	}
	r.lastScan = time.Now()
	now := r.lastScan
	ids := make([]int, 0, len(r.members))
	for id := range r.members {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		m := r.members[id]
		if m.Failed || now.Sub(m.LastBeat) <= r.cfg.HeartbeatTimeout {
			continue
		}
		r.mon.CountEvent(EventHeartbeatMissed)
		r.failMemberLocked(ids, id)
	}
}

// failMemberLocked marks one device failed and repartitions its region.
// Caller holds r.mu.
func (r *Replica) failMemberLocked(ids []int, failedID int) {
	m := r.members[failedID]
	m.Failed = true
	r.mon.CountEvent(EventDeviceFailure)
	r.tracer.Mark("device-failed", "controller", map[string]string{
		"device": strconv.Itoa(failedID),
	}, false)
	if !m.Region.Valid() {
		return
	}
	regions := make([]geo.Rect, len(ids))
	alive := make([]bool, len(ids))
	failedIdx := -1
	for i, id := range ids {
		mm := r.members[id]
		regions[i] = mm.Region
		alive[i] = !mm.Failed
		if id == failedID {
			failedIdx = i
		}
	}
	newRegs, gainers := geo.Repartition(regions, alive, failedIdx)
	gainerIDs := make([]int, 0, len(gainers))
	for i, id := range ids {
		r.members[id].Region = newRegs[i]
	}
	for _, gi := range gainers {
		gainerIDs = append(gainerIDs, ids[gi])
		r.mon.CountEvent(EventRouteUpdate)
	}
	if r.cfg.OnRepartition != nil {
		r.cfg.OnRepartition(failedID, gainerIDs)
	}
}

// --- device-side membership client ---------------------------------

// MemberClient is the device-side half of the live membership service:
// it registers once and then heartbeats through a leader-following
// FailoverClient, keeping the device's current route assignment.
type MemberClient struct {
	id int
	fc *rpc.FailoverClient

	mu     sync.Mutex
	region geo.Rect
	failed bool
}

// NewMemberClient wraps a FailoverClient for one device id.
func NewMemberClient(id int, fc *rpc.FailoverClient) *MemberClient {
	return &MemberClient{id: id, fc: fc}
}

// Register announces the device and its initial region to the primary.
func (mc *MemberClient) Register(ctx context.Context, region geo.Rect) error {
	raw, _ := json.Marshal(registerReq{ID: mc.id, Region: region})
	out, err := mc.fc.Call(ctx, MethodRegister, raw)
	if err != nil {
		return err
	}
	var resp memberResp
	if err := json.Unmarshal(out, &resp); err != nil {
		return err
	}
	mc.mu.Lock()
	mc.region, mc.failed = resp.Region, resp.Failed
	mc.mu.Unlock()
	return nil
}

// unknownDeviceMsg is the beat rejection for an unregistered device id.
// MemberClient recognises it to re-register after a failover that lost
// a not-yet-replicated registration.
const unknownDeviceMsg = "controller: unknown device; register first"

// Beat sends one heartbeat and refreshes the device's route. If the
// primary does not know the device — a takeover can lose registrations
// the dead primary had not yet replicated — Beat re-registers with the
// last route this device held, so membership self-heals on the next
// heartbeat instead of dropping the device forever.
func (mc *MemberClient) Beat(ctx context.Context) error {
	raw, _ := json.Marshal(beatReq{ID: mc.id})
	out, err := mc.fc.Call(ctx, MethodBeat, raw)
	if err != nil {
		if strings.Contains(err.Error(), unknownDeviceMsg) {
			return mc.Register(ctx, mc.Region())
		}
		return err
	}
	var resp memberResp
	if err := json.Unmarshal(out, &resp); err != nil {
		return err
	}
	mc.mu.Lock()
	mc.region, mc.failed = resp.Region, resp.Failed
	mc.mu.Unlock()
	return nil
}

// Region returns the route the controller last assigned this device.
func (mc *MemberClient) Region() geo.Rect {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	return mc.region
}

// MarkedFailed reports whether the controller has declared this device
// failed.
func (mc *MemberClient) MarkedFailed() bool {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	return mc.failed
}
