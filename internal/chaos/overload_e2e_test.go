package chaos_test

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hivemind/internal/chaos"
	"hivemind/internal/controller"
	"hivemind/internal/metrics"
	"hivemind/internal/rpc"
	"hivemind/internal/runtime"
	"hivemind/internal/stats"
	"hivemind/internal/store"
)

// This file is the overload acceptance suite: a replica set whose
// gateways run behind the admission front door, driven open-loop at 2×
// sustained capacity with a chaos-scheduled primary kill mid-run. The
// §3.2 queueing model predicts uncontrolled overload collapses into a
// timeout storm; the controlled gateway must instead hold goodput near
// saturation, keep admitted-request p99 inside the SLO, shed the rest
// cheaply, and never burn a worker executing a request whose deadline
// already expired.

// overNode is one controller+gateway process with its own metrics
// registry (so per-node counters survive the node's death).
type overNode struct {
	id      int
	replica *controller.Replica
	rt      *runtime.Runtime
	gw      *runtime.Gateway
	gwAddr  string
	reg     *metrics.Registry
}

// expiredGrace separates scheduling jitter from a real
// executed-expired-work bug: a function entered within this much of
// its deadline passing is a benign race; later than this is work the
// drop layers should have refused.
const expiredGrace = 10 * time.Millisecond

// startOverloadCluster boots n replicas whose gateways expose a
// fixed-cost "work" function behind the admission controller. Each
// node's function counts ctx-already-expired entries into that node's
// registry under "expired-executed".
func startOverloadCluster(t *testing.T, n int, seed int64, mon *controller.Monitor,
	inj *chaos.Injector, maxConc int, exec time.Duration) []*overNode {
	t.Helper()
	db := store.NewDB()
	ctrlLns := make([]net.Listener, n)
	ctrlAddrs := make([]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ctrlLns[i] = ln
		ctrlAddrs[i] = ln.Addr().String()
	}
	nodes := make([]*overNode, n)
	for i := 0; i < n; i++ {
		reg := metrics.NewRegistry()
		rcfg := runtime.DefaultConfig()
		rcfg.Retries = 0
		rcfg.MaxInFlight = maxConc // the backend's true finite capacity
		rt := runtime.New(rcfg, db)
		nodeReg := reg
		rt.Register("work", func(ctx context.Context, in []byte) ([]byte, error) {
			if d, ok := ctx.Deadline(); ok && time.Since(d) > expiredGrace {
				nodeReg.CountEvent("expired-executed")
			}
			select {
			case <-time.After(exec):
				return in, nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		})

		ccfg := fastCtrlConfig(i, n, seed)
		ccfg.Fault = inj
		peers := make(map[int]func() (net.Conn, error), n-1)
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			addr := ctrlAddrs[j]
			peers[j] = func() (net.Conn, error) { return net.Dial("tcp", addr) }
		}
		rep := controller.NewReplica(ccfg, peers, mon)

		gcfg := runtime.DefaultGatewayConfig()
		gcfg.StepRespawns = 0
		gcfg.Overload = &runtime.AdmissionConfig{
			MaxConcurrent: maxConc,
			QueueLen:      2 * maxConc,
			RetryAfter:    25 * time.Millisecond,
		}
		g := runtime.NewGatewayConfig(rt, gcfg)
		g.SetMonitor(reg)
		g.Expose("work", "work")

		gln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go g.Server().Serve(gln)
		go rep.Server().Serve(ctrlLns[i])
		go func() {
			for rep.State() != controller.Dead {
				time.Sleep(2 * time.Millisecond)
			}
			g.Close()
		}()
		nodes[i] = &overNode{id: i, replica: rep, rt: rt, gw: g, gwAddr: gln.Addr().String(), reg: reg}
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.replica.Kill()
			nd.gw.Close()
			nd.rt.Close()
		}
	})
	for _, nd := range nodes {
		nd.replica.Start()
	}
	return nodes
}

func waitOverPrimary(t *testing.T, nodes []*overNode, timeout time.Duration) *overNode {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		for _, nd := range nodes {
			if nd.replica.State() == controller.Leader {
				return nd
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("no primary elected")
	return nil
}

// Acceptance: 2× sustained capacity, primary killed mid-run. Goodput
// stays at >= 80% of the measured saturation capacity, admitted p99
// holds the SLO, load is shed (not timed out), no node executes
// deadline-expired work, and the fleet still fails over.
func TestOverloadE2EGoodputHoldsAtTwiceCapacityWithPrimaryKill(t *testing.T) {
	const (
		replicas    = 3
		maxConc     = 8
		exec        = 8 * time.Millisecond
		reqDeadline = 800 * time.Millisecond
		slo         = 250 * time.Millisecond
		runFor      = 4 * time.Second
	)
	mon := controller.NewMonitor()
	inj := chaos.NewInjector(99, chaos.Config{})
	nodes := startOverloadCluster(t, replicas, 99, mon, inj, maxConc, exec)
	primary := waitOverPrimary(t, nodes, 3*time.Second)

	// Route the client at the doomed primary first so the mid-run kill
	// disrupts live traffic; the sweep must carry it to a standby.
	addrs := []string{primary.gwAddr}
	for _, nd := range nodes {
		if nd != primary {
			addrs = append(addrs, nd.gwAddr)
		}
	}
	budget := rpc.NewRetryBudget(rpc.DefaultRetryBudgetRatio, 256)
	fc := rpc.DialFailover(addrs, rpc.FailoverOptions{
		Callers:      1024,
		Attempts:     12,
		RetryBackoff: 10 * time.Millisecond,
		CallTimeout:  2 * time.Second,
		Budget:       budget,
	})
	defer fc.Close()

	// Measure saturation goodput closed-loop: exactly maxConc
	// outstanding, no queueing, no shedding. This is the ceiling the
	// overloaded run is scored against.
	capacity := calibrateFailover(t, fc, maxConc)
	rate := 2 * capacity
	interval := time.Duration(float64(time.Second) / rate)

	var (
		ok, shed, timeout, errs atomic.Int64
		latMu                   sync.Mutex
		lat                     stats.Sample
		wg                      sync.WaitGroup
	)
	start := time.Now()
	end := start.Add(runFor)
	killed := false
	for i := 0; ; i++ {
		at := start.Add(time.Duration(i) * interval)
		if at.After(end) {
			break
		}
		if d := time.Until(at); d > 0 {
			time.Sleep(d)
		}
		if !killed && time.Since(start) >= runFor/2 {
			inj.At(controller.KillControllerOp(primary.id), 0)
			killed = true
		}
		wg.Add(1)
		go func(at time.Time) {
			defer wg.Done()
			ctx, cancel := context.WithDeadline(context.Background(), at.Add(reqDeadline))
			defer cancel()
			_, err := fc.Call(ctx, "work", []byte("x"))
			elapsed := time.Since(at) // from scheduled arrival: no omission
			switch {
			case err == nil:
				ok.Add(1)
				latMu.Lock()
				lat.Add(elapsed.Seconds())
				latMu.Unlock()
			case rpc.IsShed(err):
				shed.Add(1)
			case rpc.IsDeadlineExceeded(err):
				timeout.Add(1)
			default:
				errs.Add(1)
			}
		}(at)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	goodput := float64(ok.Load()) / elapsed
	latMu.Lock()
	p99 := time.Duration(lat.Percentile(99) * float64(time.Second))
	latMu.Unlock()
	t.Logf("capacity %.0f rps | offered %.0f rps | goodput %.0f rps | p99 %v | ok %d shed %d timeout %d err %d",
		capacity, rate, goodput, p99, ok.Load(), shed.Load(), timeout.Load(), errs.Load())

	if !killed {
		t.Fatal("kill was never scheduled")
	}
	if goodput < 0.8*capacity {
		t.Fatalf("goodput %.0f rps under overload+kill, want >= 80%% of %.0f rps capacity", goodput, capacity)
	}
	if p99 > slo {
		t.Fatalf("admitted p99 %v exceeds %v SLO", p99, slo)
	}
	if shed.Load() == 0 {
		t.Fatal("2x overload shed nothing: admission control inert")
	}
	// The tentpole invariant: no node executed deadline-expired work.
	for _, nd := range nodes {
		if n := nd.reg.Counter("expired-executed"); n != 0 {
			t.Fatalf("node %d executed %v deadline-expired requests", nd.id, n)
		}
	}
	waitFailover(t, mon, 5*time.Second)
}

// calibrateFailover measures closed-loop saturation goodput through the
// leader-following client.
func calibrateFailover(t *testing.T, fc *rpc.FailoverClient, workers int) float64 {
	t.Helper()
	const window = 700 * time.Millisecond
	var done atomic.Int64
	ctx, cancel := context.WithTimeout(context.Background(), window)
	defer cancel()
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				rctx, rcancel := context.WithTimeout(context.Background(), 5*time.Second)
				_, err := fc.Call(rctx, "work", []byte("x"))
				rcancel()
				if err == nil {
					done.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	capacity := float64(done.Load()) / time.Since(start).Seconds()
	if capacity <= 0 {
		t.Fatal("calibration produced no capacity")
	}
	return capacity
}

// waitFailover polls the monitor until a failover is recorded.
func waitFailover(t *testing.T, mon *controller.Monitor, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if mon.Failover().Failovers >= 1 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("no failover recorded: %s", fmt.Sprint(mon.Failover()))
}
