package main

import (
	"strings"
	"testing"
)

const countedOut = `
goos: linux
goarch: amd64
cpu: Intel(R) Xeon(R) CPU @ 2.10GHz
BenchmarkCallSync64B-4   300000  3300 ns/op  19.0 MB/s  160 B/op  4 allocs/op
BenchmarkCallSync64B-4   310000  3100 ns/op  20.0 MB/s  160 B/op  4 allocs/op
BenchmarkCallSync64B-4   290000  3500 ns/op  18.0 MB/s  160 B/op  4 allocs/op
BenchmarkPipelinedCalls-4  500000  4000 ns/op
BenchmarkPipelinedCalls-4  520000  3900 ns/op
BenchmarkPipelinedCalls-4  480000  4200 ns/op
`

func parseCounted(t *testing.T) Run {
	t.Helper()
	run, err := parse(strings.NewReader(countedOut))
	if err != nil {
		t.Fatal(err)
	}
	return run
}

func TestCollapseMedian(t *testing.T) {
	run := parseCounted(t)
	if len(run.Results) != 6 {
		t.Fatalf("parsed %d results, want 6", len(run.Results))
	}
	med := collapseMedian(run.Results)
	if len(med) != 2 {
		t.Fatalf("collapsed to %d results, want 2", len(med))
	}
	if med[0].Name != "BenchmarkCallSync64B" || med[0].NsPerOp != 3300 {
		t.Fatalf("median[0] = %+v, want CallSync64B at 3300 ns/op", med[0])
	}
	if med[1].Name != "BenchmarkPipelinedCalls" || med[1].NsPerOp != 4000 {
		t.Fatalf("median[1] = %+v, want PipelinedCalls at 4000 ns/op", med[1])
	}
	if med[0].AllocsPerOp != 4 || med[0].MBPerSec != 19.0 {
		t.Fatalf("median[0] metrics = %+v", med[0])
	}
}

func TestGate(t *testing.T) {
	baseline := parseCounted(t)
	run := parseCounted(t)

	if v := gate(run, baseline, 0.10, nil); len(v) != 0 {
		t.Fatalf("identical run flagged: %v", v)
	}

	// An 11% regression on one benchmark trips only that benchmark.
	slow := parseCounted(t)
	for i := range slow.Results {
		if slow.Results[i].Name == "BenchmarkCallSync64B" {
			slow.Results[i].NsPerOp *= 1.11
		}
	}
	v := gate(slow, baseline, 0.10, nil)
	if len(v) != 1 || !strings.Contains(v[0], "BenchmarkCallSync64B") {
		t.Fatalf("violations = %v, want one for CallSync64B", v)
	}
	// Inside tolerance passes.
	if v := gate(slow, baseline, 0.15, nil); len(v) != 0 {
		t.Fatalf("11%% regression flagged at 15%% tolerance: %v", v)
	}
	// Restricting the gate to the healthy benchmark passes.
	if v := gate(slow, baseline, 0.10, []string{"BenchmarkPipelinedCalls"}); len(v) != 0 {
		t.Fatalf("named gate flagged healthy benchmark: %v", v)
	}
	// A gated benchmark missing from the run is a violation, not a pass.
	if v := gate(Run{}, baseline, 0.10, []string{"BenchmarkCallSync64B"}); len(v) != 1 {
		t.Fatalf("missing measurement not flagged: %v", v)
	}
	// No committed baseline for a requested name is a violation too.
	if v := gate(run, Run{}, 0.10, []string{"BenchmarkCallSync64B"}); len(v) != 1 {
		t.Fatalf("missing baseline not flagged: %v", v)
	}
}
