package experiments

import (
	"fmt"

	"hivemind/internal/apps"
	"hivemind/internal/platform"
	"hivemind/internal/scenario"
	"hivemind/internal/stats"
)

func init() {
	register("fig03a", "Latency breakdown (network/management/execution) under all-cloud execution", fig03a)
	register("fig03b", "Wireless bandwidth and tail latency vs swarm size and frame resolution (S1)", fig03b)
}

// fig03a reproduces Fig. 3a: where end-to-end latency goes when all
// computation is offloaded to the serverless cloud, for S1–S10 and the
// two end-to-end scenarios, at median and p99.
func fig03a(cfg RunConfig) *Report {
	rep := &Report{ID: "fig03a", Title: "Latency breakdown, centralized FaaS (Fig. 3a)"}
	tb := stats.NewTable("Fig. 3a: fraction of latency per stage",
		"job", "net_p50_%", "mgmt_p50_%", "exec_p50_%", "net_p99_%", "mgmt_p99_%", "exec_p99_%")

	var netFracs []float64
	record := func(name string, bd *stats.Breakdown) {
		// Fig. 3a folds data sharing into "execution".
		combine := func(pct float64) (net, mgmt, exec float64) {
			fr := bd.Fractions(pct)
			return fr[stats.StageNetwork], fr[stats.StageManagement],
				fr[stats.StageExecution] + fr[stats.StageDataIO]
		}
		n50, m50, e50 := combine(50)
		n99, m99, e99 := combine(99)
		tb.AddRow(name, n50*100, m50*100, e50*100, n99*100, m99*100, e99*100)
		rep.SetValue("net_frac_p50_"+name, n50)
		netFracs = append(netFracs, n50)
	}

	ps := suite(cfg)
	scens := []scenario.Kind{scenario.ScenarioA, scenario.ScenarioB}
	jobRes := mapPar(cfg, len(ps), func(i int) platform.JobResult {
		return runJobOn(platform.CentralizedFaaS, ps[i], cfg, defaultDevices)
	})
	scenRes := mapPar(cfg, len(scens), func(i int) scenario.Result {
		return runScenarioOn(scens[i], platform.CentralizedFaaS, cfg, defaultDevices)
	})
	for i, p := range ps {
		record(string(p.ID), jobRes[i].Breakdown)
	}
	for i, k := range scens {
		record(k.String(), scenRes[i].Breakdown)
	}
	rep.Tables = append(rep.Tables, tb)

	var sum float64
	for _, f := range netFracs {
		sum += f
	}
	mean := sum / float64(len(netFracs))
	rep.SetValue("net_frac_mean", mean)
	rep.AddNote("networking accounts for %.0f%% of median latency on average (paper: 33%%, ≥22%% per job)", mean*100)
	return rep
}

// fig03b reproduces Fig. 3b: S1 with every frame shipped to the cloud,
// sweeping drone count × frame size; the wireless medium saturates and
// tail latency explodes.
func fig03b(cfg RunConfig) *Report {
	rep := &Report{ID: "fig03b", Title: "Network saturation sweep (Fig. 3b)"}
	tb := stats.NewTable("Fig. 3b: S1 all-frames offload",
		"frame_MB", "drones", "bw_MBps", "p99_latency_s")

	frames := []float64{0.5, 1, 2, 4, 8}
	droneCounts := []int{2, 4, 8, 12, 16}
	if cfg.Quick {
		frames = []float64{0.5, 2, 8}
		droneCounts = []int{2, 8, 16}
	}
	duration := jobDuration(cfg)

	runs := mapPar(cfg, len(frames)*len(droneCounts), func(i int) platform.JobResult {
		frameMB, n := frames[i/len(droneCounts)], droneCounts[i%len(droneCounts)]
		// Per-frame recognition: 8 fps per drone, each frame its own
		// task (per-frame share of the S1 batch compute).
		prof := apps.Profile{
			ID: "S1", Name: "Face Recognition per-frame",
			CloudExecS: 0.1, EdgeExecS: 0.45, Parallelism: 2,
			InputMB: frameMB, OutputMB: 0.01, IntermediateMB: frameMB / 8,
			TaskRatePerDevice: 8, MemGB: 2, ExecCV: 0.15,
		}
		sys := platform.NewSystem(platform.Preset(platform.CentralizedFaaS, n, cfg.Seed))
		return sys.RunJob(prof, duration)
	})
	for fi, frameMB := range frames {
		for ni, n := range droneCounts {
			res := runs[fi*len(droneCounts)+ni]
			p99 := res.Latency.Percentile(99)
			tb.AddRow(frameMB, n, res.BWMeanMBps, p99)
			rep.SetValue(key3b(frameMB, n, "bw"), res.BWMeanMBps)
			rep.SetValue(key3b(frameMB, n, "p99"), p99)
		}
	}
	rep.Tables = append(rep.Tables, tb)

	low := rep.Value(key3b(8, 2, "p99"))
	high := rep.Value(key3b(8, 16, "p99"))
	rep.SetValue("saturation_blowup_8MB", high/low)
	rep.AddNote("8MB frames: p99 inflates %.1fx from 2 to 16 drones (saturation knee, paper Fig. 3b)", high/low)
	return rep
}

func key3b(frameMB float64, drones int, metric string) string {
	return fmt.Sprintf("f%g_%d_%s", frameMB, drones, metric)
}
