package sim

import "testing"

// BenchmarkEngineEventThroughput measures raw event scheduling and
// dispatch — the floor under every simulation in the repository.
func BenchmarkEngineEventThroughput(b *testing.B) {
	e := NewEngine(1)
	count := 0
	var next func()
	next = func() {
		count++
		if count < b.N {
			e.After(0.001, next)
		}
	}
	b.ResetTimer()
	e.At(0, next)
	e.Run()
}

// BenchmarkEngineHeapPressure schedules a deep out-of-order backlog.
func BenchmarkEngineHeapPressure(b *testing.B) {
	e := NewEngine(1)
	for i := 0; i < b.N; i++ {
		e.At(float64((i*7919)%100000), func() {})
	}
	b.ResetTimer()
	e.Run()
}

// BenchmarkRunUntil measures the schedule-fire hot loop: one event in
// flight at a time, each firing scheduling its successor — the steady
// state of every queueing model in the repository. Allocation rate here
// bounds the GC pressure of the whole evaluation sweep.
func BenchmarkRunUntil(b *testing.B) {
	e := NewEngine(1)
	count := 0
	var next func()
	next = func() {
		count++
		if count < b.N {
			e.After(0.001, next)
		}
	}
	e.At(0, next)
	b.ReportAllocs()
	b.ResetTimer()
	e.RunUntil(Infinity)
}

// BenchmarkResourceQueueing pushes jobs through a contended multi-core
// resource.
func BenchmarkResourceQueueing(b *testing.B) {
	e := NewEngine(1)
	r := NewResource(e, 8)
	for i := 0; i < b.N; i++ {
		r.Use(0.01, nil)
	}
	b.ResetTimer()
	e.Run()
}
