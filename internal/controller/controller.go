// Package controller implements HiveMind's centralized controller
// (§4.2, §4.6): global visibility over cloud and edge resources, a load
// balancer that partitions work across devices, heartbeat-based failure
// detection (devices beat once per second; missing beats for more than
// 3 s marks a device failed), load repartitioning to neighbouring
// devices with sufficient battery (Fig. 10), a lightweight monitoring
// system, and hot-standby replicas of the controller process itself
// (§4.7: "two hot standby copies that can take over in case of a
// failure").
package controller

import (
	"fmt"
	"sync"

	"hivemind/internal/device"
	"hivemind/internal/geo"
	"hivemind/internal/sim"
	"hivemind/internal/stats"
)

// Config tunes the controller.
type Config struct {
	HeartbeatTimeoutS float64 // beats older than this mark the device failed (3 s)
	CheckPeriodS      float64 // detector scan period
	// MinBatteryFrac is the remaining-battery fraction a neighbour needs
	// to absorb repartitioned load ("assuming they have sufficient
	// battery").
	MinBatteryFrac float64
	// Standbys is the number of hot standby controller replicas.
	Standbys int
	// FailoverS is the takeover delay when the active replica dies.
	FailoverS float64
}

// DefaultConfig matches §4.6/§4.7.
func DefaultConfig() Config {
	return Config{
		HeartbeatTimeoutS: 3,
		CheckPeriodS:      1,
		MinBatteryFrac:    0.15,
		Standbys:          2,
		FailoverS:         0.5,
	}
}

// Monitor event and sample names shared by the simulated Controller and
// the live ReplicatedController, so Fig. 10-style failover experiments
// read the same counters on either substrate.
const (
	// EventDeviceFailure counts devices declared failed (stale heartbeats
	// or reported faults).
	EventDeviceFailure = "device-failure"
	// EventRouteUpdate counts route pushes to repartition gainers.
	EventRouteUpdate = "route-update"
	// EventHeartbeatMissed counts heartbeat timeouts the detector saw.
	EventHeartbeatMissed = "ctrl-heartbeat-missed"
	// EventElection counts leader elections won (a standby promotion on
	// the simulated substrate, a vote-majority win on the live one).
	EventElection = "ctrl-election"
	// EventFailover counts takeovers from a previously serving replica.
	EventFailover = "ctrl-failover"
	// EventOrphanRedispatch counts checkpointed in-flight tasks a newly
	// promoted primary re-dispatched.
	EventOrphanRedispatch = "ctrl-orphan-redispatch"
	// EventStepDown counts leaders demoting themselves — lost lease
	// quorum, a higher term observed, or a fenced write proving a newer
	// primary exists.
	EventStepDown = "ctrl-step-down"
	// SampleFailoverLatency records seconds of controller unavailability
	// per failover (old primary's last lease to new primary serving).
	SampleFailoverLatency = "ctrl-failover-latency"
)

// Controller coordinates a fleet.
type Controller struct {
	eng  *sim.Engine
	cfg  Config
	flt  device.Fleet
	regs []geo.Rect

	detector *sim.Ticker
	handled  map[int]bool // device id -> failure processed

	// Repartition notifications: gainers receive updated routes.
	onRepartition func(failed int, gainers []int)

	replicas  int
	active    int // index of the active replica
	downUntil sim.Time

	monitor *Monitor
	rrNext  int
}

// New builds a controller over a fleet with its initial region
// assignment.
func New(eng *sim.Engine, cfg Config, fleet device.Fleet, regions []geo.Rect, onRepartition func(failed int, gainers []int)) *Controller {
	if len(fleet) != len(regions) {
		panic("controller: fleet/regions size mismatch")
	}
	c := &Controller{
		eng: eng, cfg: cfg, flt: fleet, regs: append([]geo.Rect(nil), regions...),
		handled:       make(map[int]bool),
		onRepartition: onRepartition,
		replicas:      1 + cfg.Standbys,
		monitor:       NewMonitor(),
	}
	c.detector = eng.Every(cfg.CheckPeriodS, 0.05, c.scan)
	return c
}

// Monitor returns the controller's metrics registry.
func (c *Controller) Monitor() *Monitor { return c.monitor }

// Regions returns the current region assignment (failed devices hold
// zero regions).
func (c *Controller) Regions() []geo.Rect { return c.regs }

// Available reports whether a controller replica is serving (false only
// during a failover window).
func (c *Controller) Available() bool {
	return c.replicas > 0 && c.eng.Now() >= c.downUntil
}

// ActiveReplica returns the serving replica's index.
func (c *Controller) ActiveReplica() int { return c.active }

// KillActiveReplica simulates a controller crash: a hot standby takes
// over after the failover delay. Returns false when no standby remains.
func (c *Controller) KillActiveReplica() bool {
	c.replicas--
	if c.replicas <= 0 {
		return false
	}
	c.active++
	c.downUntil = c.eng.Now() + c.cfg.FailoverS
	c.monitor.CountEvent(EventElection)
	c.monitor.CountEvent(EventFailover)
	c.monitor.Observe(SampleFailoverLatency, c.cfg.FailoverS)
	return true
}

// scan is the periodic heartbeat check.
func (c *Controller) scan() {
	if !c.Available() {
		return
	}
	now := c.eng.Now()
	for i, d := range c.flt {
		if c.handled[i] {
			continue
		}
		stale := now-d.LastHeartbeat() > c.cfg.HeartbeatTimeoutS
		if stale {
			c.monitor.CountEvent(EventHeartbeatMissed)
		}
		if d.Failed() || stale {
			c.handleFailure(i)
		}
	}
}

// handleFailure repartitions the failed device's region among its
// alive, battery-sufficient neighbours and pushes them updated routes
// (Fig. 10).
func (c *Controller) handleFailure(failed int) {
	c.handled[failed] = true
	c.monitor.CountEvent(EventDeviceFailure)
	if !c.regs[failed].Valid() {
		return
	}
	alive := make([]bool, len(c.flt))
	for i, d := range c.flt {
		alive[i] = !d.Failed() && !c.handled[i] &&
			d.Battery.ConsumedFraction() < 1-c.cfg.MinBatteryFrac
	}
	newRegs, gainers := geo.Repartition(c.regs, alive, failed)
	c.regs = newRegs
	for _, gi := range gainers {
		c.flt[gi].AssignRegion(newRegs[gi])
		c.monitor.CountEvent(EventRouteUpdate)
	}
	if c.onRepartition != nil {
		c.onRepartition(failed, gainers)
	}
}

// Stop halts the failure detector.
func (c *Controller) Stop() { c.detector.Stop() }

// NextDevice is the controller's load balancer: it returns the next
// alive device, round-robin (the paper's default load_balancer='round
// robin'), or nil if the whole fleet is down.
func (c *Controller) NextDevice() *device.Device {
	n := len(c.flt)
	for i := 0; i < n; i++ {
		d := c.flt[(c.rrNext+i)%n]
		if !d.Failed() {
			c.rrNext = (c.rrNext + i + 1) % n
			return d
		}
	}
	return nil
}

// LeastLoadedDevice returns the alive device with the shortest on-board
// queue (used when the balancer is configured for load-aware dispatch).
func (c *Controller) LeastLoadedDevice() *device.Device {
	var best *device.Device
	for _, d := range c.flt {
		if d.Failed() {
			continue
		}
		if best == nil || d.QueueLen() < best.QueueLen() {
			best = d
		}
	}
	return best
}

// Monitor is the controller's metrics registry: cheap counters and
// latency samples whose overhead is negligible (§4.7: <0.1% on tail
// latency). It is safe for concurrent use, so the real runtime's
// gateway and hardened RPC clients can report into it alongside the
// single-threaded simulator (it satisfies runtime.GatewayMonitor).
type Monitor struct {
	mu       sync.Mutex
	counters map[string]int
	samples  map[string]*stats.Sample
	enabled  bool
}

// NewMonitor returns an enabled monitor.
func NewMonitor() *Monitor {
	return &Monitor{counters: map[string]int{}, samples: map[string]*stats.Sample{}, enabled: true}
}

// SetEnabled toggles collection (for overhead experiments).
func (m *Monitor) SetEnabled(on bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.enabled = on
}

// CountEvent increments a named counter.
func (m *Monitor) CountEvent(name string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.enabled {
		return
	}
	m.counters[name]++
}

// CountEventN adds n occurrences of a named counter at once.
func (m *Monitor) CountEventN(name string, n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.enabled || n <= 0 {
		return
	}
	m.counters[name] += n
}

// Count returns a counter's value.
func (m *Monitor) Count(name string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counters[name]
}

// Observe records a latency observation under a name.
func (m *Monitor) Observe(name string, v float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.enabled {
		return
	}
	s, ok := m.samples[name]
	if !ok {
		s = &stats.Sample{}
		m.samples[name] = s
	}
	s.Add(v)
}

// Sample returns a snapshot of the sample recorded under name (empty if
// none). Snapshotting keeps concurrent Observe calls from racing with
// the caller's percentile math.
func (m *Monitor) Sample(name string) *stats.Sample {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := &stats.Sample{}
	if s, ok := m.samples[name]; ok {
		out.AddAll(s.Values()...)
	}
	return out
}

// String summarises the monitor contents.
func (m *Monitor) String() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return fmt.Sprintf("monitor: %d counters, %d samples", len(m.counters), len(m.samples))
}

// FailoverStats is a snapshot of the controller-replication metrics —
// the §4.7 hot-standby story made observable on both substrates.
type FailoverStats struct {
	Elections           int
	Failovers           int
	OrphansRedispatched int
	HeartbeatsMissed    int
	DeviceFailures      int
	RouteUpdates        int
	// FailoverLatency holds one observation per takeover, in seconds.
	FailoverLatency *stats.Sample
}

// Failover snapshots the replication counters and the failover-latency
// sample.
func (m *Monitor) Failover() FailoverStats {
	return FailoverStats{
		Elections:           m.Count(EventElection),
		Failovers:           m.Count(EventFailover),
		OrphansRedispatched: m.Count(EventOrphanRedispatch),
		HeartbeatsMissed:    m.Count(EventHeartbeatMissed),
		DeviceFailures:      m.Count(EventDeviceFailure),
		RouteUpdates:        m.Count(EventRouteUpdate),
		FailoverLatency:     m.Sample(SampleFailoverLatency),
	}
}

// String summarises the failover metrics in one line.
func (f FailoverStats) String() string {
	lat := "n/a"
	if f.FailoverLatency != nil && f.FailoverLatency.N() > 0 {
		lat = fmt.Sprintf("%.0fms mean", f.FailoverLatency.Mean()*1e3)
	}
	return fmt.Sprintf("elections=%d failovers=%d (latency %s) orphans-redispatched=%d heartbeats-missed=%d device-failures=%d route-updates=%d",
		f.Elections, f.Failovers, lat, f.OrphansRedispatched, f.HeartbeatsMissed, f.DeviceFailures, f.RouteUpdates)
}
