// People counting: Scenario B end to end — recognize and deduplicate
// 25 moving people — combined with the continuous-learning study of
// Fig. 15: how fast does the swarm's recognition accuracy improve when
// models are retrained with no feedback, each device's own decisions,
// or the whole swarm's pooled decisions.
package main

import (
	"fmt"

	"hivemind"
	"hivemind/internal/learn"
)

func main() {
	fmt.Println("Scenario B — moving people recognition + deduplication")
	fmt.Println()

	for _, sys := range []hivemind.System{hivemind.SystemCentralizedFaaS, hivemind.SystemDistributedEdge, hivemind.SystemHiveMind} {
		sw := hivemind.NewSwarm(hivemind.SwarmSpec{Devices: 16, System: sys, Seed: 7})
		r := sw.RunMission(hivemind.MissionMovingPeople)
		fmt.Printf("%-18s counted %2d/25 in %6.1fs (complete=%v, battery %.1f%%, pipeline p99 %.2fs)\n",
			sys, r.Found, r.CompletionS, r.Completed, r.BatteryMean*100,
			r.TaskLatency.Percentile(99))
	}

	fmt.Println("\nContinuous learning (Fig. 15): detection accuracy by retraining mode")
	fmt.Printf("%-8s %10s %10s %10s\n", "mode", "correct%", "falseNeg%", "falsePos%")
	for _, mode := range []learn.Mode{hivemind.LearnNone, hivemind.LearnSelf, hivemind.LearnSwarm} {
		acc, traj := hivemind.RunLearningTrial(mode, 16, 7)
		fmt.Printf("%-8s %10.1f %10.1f %10.1f   (round 1: %.1f%% -> final: %.1f%%)\n",
			mode, acc.Correct*100, acc.FalseNegatives*100, acc.FalsePositives*100,
			traj[0].Correct*100, acc.Correct*100)
	}
	fmt.Println("\nSwarm-wide retraining converges fastest and eliminates nearly all")
	fmt.Println("remaining false positives/negatives — the benefit of centralized")
	fmt.Println("coordination the paper highlights in §4.6.")
}
