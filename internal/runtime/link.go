package runtime

import (
	"fmt"
	"net"
	"sync"

	"hivemind/internal/rpc"
)

// TransportKind names which fast path a link selected.
type TransportKind int

const (
	// TransportRing is the in-process shared-memory ring: no frames, no
	// serialization, no syscalls. Selected for co-located tiers.
	TransportRing TransportKind = iota
	// TransportStream is a logical stream multiplexed onto a shared TCP
	// connection: frames coalesce into writev batches and one slow call
	// cannot head-of-line block sibling streams. Selected for remote
	// tiers.
	TransportStream
)

func (k TransportKind) String() string {
	switch k {
	case TransportRing:
		return "ring"
	case TransportStream:
		return "stream"
	default:
		return fmt.Sprintf("TransportKind(%d)", int(k))
	}
}

// Link is a selected per-peer transport: the rpc.Transport the caller
// issues calls on, tagged with which fast path it rides.
type Link struct {
	rpc.Transport
	Kind TransportKind
}

// Peer describes where a neighbouring tier lives. Exactly one field is
// set: Gateway for a tier in this process, Addr for one across the
// network.
type Peer struct {
	Gateway *Gateway // co-located tier: share its address space
	Addr    string   // remote tier: host:port
}

// LinkerOptions tunes the per-link transports.
type LinkerOptions struct {
	// Callers is the per-stream concurrent-call pool for remote links
	// and the caller pool of the shared connection (<=0: 64).
	Callers int
	// Ring configures co-located rings (zero value: rpc defaults).
	Ring rpc.RingOptions
	// Dial replaces net.Dial for remote links (tests inject pipes).
	Dial func(addr string) (net.Conn, error)
}

// Linker owns a tier's outbound links and picks the fast path per peer:
// a shared-memory ring when the peer gateway is in this process, a
// multiplexed stream over one shared TCP connection per remote address
// otherwise. All streams to the same address share a single connection,
// so N logical links cost one socket and their frames coalesce into
// shared writev batches.
type Linker struct {
	opts LinkerOptions

	mu      sync.Mutex
	clients map[string]*rpc.Client // one per remote address
	rings   []*rpc.Ring
	closed  bool
}

// NewLinker builds a link selector.
func NewLinker(opts LinkerOptions) *Linker {
	if opts.Callers <= 0 {
		opts.Callers = 64
	}
	if opts.Dial == nil {
		opts.Dial = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	return &Linker{opts: opts, clients: make(map[string]*rpc.Client)}
}

// Connect selects and builds the transport for a peer. Co-located
// peers get a dedicated shm ring into the gateway's server; remote
// peers get a fresh logical stream on the address's shared multiplexed
// connection (dialled on first use).
func (l *Linker) Connect(p Peer) (*Link, error) {
	switch {
	case p.Gateway != nil && p.Addr != "":
		return nil, fmt.Errorf("runtime: peer is either co-located or remote, not both")
	case p.Gateway != nil:
		return l.local(p.Gateway)
	case p.Addr != "":
		return l.remote(p.Addr)
	default:
		return nil, fmt.Errorf("runtime: empty peer")
	}
}

func (l *Linker) local(g *Gateway) (*Link, error) {
	r, err := rpc.NewRing(g.Server(), l.opts.Ring)
	if err != nil {
		return nil, fmt.Errorf("runtime: ring to co-located gateway: %w", err)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		r.Close()
		return nil, rpc.ErrClosed
	}
	l.rings = append(l.rings, r)
	return &Link{Transport: r, Kind: TransportRing}, nil
}

func (l *Linker) remote(addr string) (*Link, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, rpc.ErrClosed
	}
	c, ok := l.clients[addr]
	if !ok || !c.Healthy() {
		// First use, or the shared connection died: (re)dial it. Streams
		// on the dead conn already failed; new links get a fresh one.
		if ok {
			c.Close()
		}
		conn, err := l.opts.Dial(addr)
		if err != nil {
			return nil, fmt.Errorf("runtime: dialling %s: %w", addr, err)
		}
		c = rpc.NewClient(conn, l.opts.Callers)
		l.clients[addr] = c
	}
	return &Link{Transport: c.Stream(l.opts.Callers), Kind: TransportStream}, nil
}

// Client returns the shared connection for an address, if one exists —
// health checks and teardown want the connection, not a stream.
func (l *Linker) Client(addr string) *rpc.Client {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.clients[addr]
}

// Close tears down every link: rings fail in-flight ring calls with
// rpc.ErrClosed, shared connections fail every stream riding them.
func (l *Linker) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	clients := make([]*rpc.Client, 0, len(l.clients))
	for _, c := range l.clients {
		clients = append(clients, c)
	}
	rings := l.rings
	l.clients, l.rings = nil, nil
	l.mu.Unlock()

	var first error
	for _, c := range clients {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	for _, r := range rings {
		if err := r.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
