package store

import (
	"fmt"
	"testing"
)

// BenchmarkPut measures document creation throughput.
func BenchmarkPut(b *testing.B) {
	db := NewDB()
	body := make([]byte, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Put(fmt.Sprintf("doc-%d", i), "", body); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGet measures read throughput (includes the defensive copy).
func BenchmarkGet(b *testing.B) {
	db := NewDB()
	body := make([]byte, 1024)
	db.Put("doc", "", body)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Get("doc"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUpdateChain measures revisioned update throughput.
func BenchmarkUpdateChain(b *testing.B) {
	db := NewDB()
	rev, _ := db.Put("doc", "", []byte("v"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		rev, err = db.Put("doc", rev, []byte("v"))
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConcurrentReaders measures RWMutex read scaling.
func BenchmarkConcurrentReaders(b *testing.B) {
	db := NewDB()
	db.Put("doc", "", make([]byte, 256))
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			db.Get("doc")
		}
	})
}
