package trace

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

func TestLiveSpanRecordsIdentityArgs(t *testing.T) {
	r := NewRecorder(0)
	l := NewLive(r)
	parent := l.Start("root", "management", "gateway", SpanContext{TraceID: "task-1"})
	child := l.Start("child", "execution", "runtime", parent.Context("task-1"))
	child.SetArg("fn", "plan")
	child.End()
	parent.End()

	spans := r.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	for _, s := range spans {
		if s.Args["trace"] != "task-1" {
			t.Fatalf("span %q trace arg = %q, want task-1", s.Name, s.Args["trace"])
		}
	}
	var root, kid Span
	for _, s := range spans {
		if s.Name == "root" {
			root = s
		} else {
			kid = s
		}
	}
	if kid.Args["parent"] != root.Args["span"] {
		t.Fatalf("child parent %q != root span %q", kid.Args["parent"], root.Args["span"])
	}
	if root.Args["parent"] != "" {
		t.Fatalf("root has a parent arg: %q", root.Args["parent"])
	}
	if kid.Args["fn"] != "plan" {
		t.Fatalf("SetArg lost: %v", kid.Args)
	}
}

func TestLiveSpanEndRecordsOnce(t *testing.T) {
	r := NewRecorder(0)
	l := NewLive(r)
	sp := l.Start("s", "", "t", SpanContext{})
	sp.End()
	sp.End()
	sp.SetArg("late", "ignored") // after End: dropped, not racy
	if r.Len() != 1 {
		t.Fatalf("double End recorded %d spans", r.Len())
	}
	if args := r.Spans()[0].Args; args["late"] != "" {
		t.Fatalf("SetArg after End mutated the recorded span: %v", args)
	}
}

func TestLiveNilSafety(t *testing.T) {
	var l *Live
	if l.Recorder() != nil || l.Now() != 0 {
		t.Fatal("nil Live leaked state")
	}
	sp := l.Start("s", "", "t", SpanContext{})
	if sp != nil {
		t.Fatal("nil Live returned a span")
	}
	// All span methods tolerate the nil they just received.
	sp.SetArg("k", "v")
	sp.End()
	if sp.ID() != 0 {
		t.Fatal("nil span has an id")
	}
	if sc := sp.Context("id"); sc.Parent != 0 || sc.TraceID != "id" {
		t.Fatalf("nil span context = %+v", sc)
	}
	l.Mark("m", "t", nil, false)
}

// TestLiveSharedRecorderConcurrent drives one shared Live/Recorder from
// many goroutines — spans, instants, and a mid-flight Chrome export —
// the way a gateway fleet shares a tracer. Meaningful under -race.
func TestLiveSharedRecorderConcurrent(t *testing.T) {
	r := NewRecorder(0)
	l := NewLive(r)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			trace := fmt.Sprintf("task-%d", g)
			for i := 0; i < 50; i++ {
				root := l.Start("root", "management", "gateway", SpanContext{TraceID: trace})
				child := l.Start("hop", "network", "rpc", root.Context(trace))
				child.End()
				root.End()
				l.Mark("beat", "controller", nil, false)
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			var buf bytes.Buffer
			if err := r.WriteChromeTrace(&buf); err != nil {
				t.Errorf("export during recording: %v", err)
			}
		}
	}()
	wg.Wait()
	if r.Len() != 8*50*2 {
		t.Fatalf("spans = %d, want %d", r.Len(), 8*50*2)
	}
	if r.InstantsLen() != 8*50 {
		t.Fatalf("instants = %d, want %d", r.InstantsLen(), 8*50)
	}
	// Unique span ids across goroutines.
	seen := map[string]bool{}
	for _, s := range r.Spans() {
		id := s.Args["span"]
		if seen[id] {
			t.Fatalf("duplicate span id %q", id)
		}
		seen[id] = true
	}
}
