package runtime

import (
	"bytes"
	"context"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hivemind/internal/rpc"
)

func echoGateway(t *testing.T) *Gateway {
	t.Helper()
	rt := New(DefaultConfig(), nil)
	t.Cleanup(rt.Close)
	rt.Register("upper", func(ctx context.Context, in []byte) ([]byte, error) {
		return bytes.ToUpper(in), nil
	})
	g := NewGateway(rt, time.Second)
	g.Expose("recognize", "upper")
	t.Cleanup(g.Close)
	return g
}

func TestLinkerSelectsRingForCoLocatedGateway(t *testing.T) {
	g := echoGateway(t)
	l := NewLinker(LinkerOptions{})
	defer l.Close()

	link, err := l.Connect(Peer{Gateway: g})
	if err != nil {
		t.Fatal(err)
	}
	if link.Kind != TransportRing {
		t.Fatalf("co-located peer selected %v, want ring", link.Kind)
	}
	out, err := link.CallSync("recognize", []byte("swarm"))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "SWARM" {
		t.Fatalf("out = %q", out)
	}
	if !link.Healthy() {
		t.Fatal("fresh ring link reported unhealthy")
	}
}

func TestLinkerSelectsStreamForRemotePeerAndSharesConn(t *testing.T) {
	g := echoGateway(t)
	var dials atomic.Int32
	l := NewLinker(LinkerOptions{
		Callers: 8,
		Dial: func(addr string) (net.Conn, error) {
			dials.Add(1)
			cc, sc := rpc.Pair()
			g.Server().ServeConn(sc)
			return cc, nil
		},
	})
	defer l.Close()

	a, err := l.Connect(Peer{Addr: "tier-b:9000"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := l.Connect(Peer{Addr: "tier-b:9000"})
	if err != nil {
		t.Fatal(err)
	}
	if a.Kind != TransportStream || b.Kind != TransportStream {
		t.Fatalf("remote peers selected %v/%v, want streams", a.Kind, b.Kind)
	}
	if got := dials.Load(); got != 1 {
		t.Fatalf("two links to one address dialled %d conns, want 1 shared", got)
	}
	sa, sb := a.Transport.(*rpc.Stream), b.Transport.(*rpc.Stream)
	if sa.Conn() != sb.Conn() {
		t.Fatal("streams to the same address should share a connection")
	}
	if sa.ID() == sb.ID() {
		t.Fatal("links must ride distinct logical streams")
	}
	if l.Client("tier-b:9000") != sa.Conn() {
		t.Fatal("Client() should expose the shared connection")
	}

	// Both logical links serve calls concurrently over the one socket.
	var wg sync.WaitGroup
	for _, link := range []*Link{a, b} {
		link := link
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				out, err := link.CallSync("recognize", []byte("hive"))
				if err != nil {
					t.Error(err)
					return
				}
				if string(out) != "HIVE" {
					t.Errorf("out = %q", out)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestLinkerRejectsAmbiguousAndEmptyPeers(t *testing.T) {
	g := echoGateway(t)
	l := NewLinker(LinkerOptions{})
	defer l.Close()
	if _, err := l.Connect(Peer{Gateway: g, Addr: "x:1"}); err == nil {
		t.Fatal("ambiguous peer accepted")
	}
	if _, err := l.Connect(Peer{}); err == nil {
		t.Fatal("empty peer accepted")
	}
}

func TestLinkerCloseFailsLinksAndRefusesNew(t *testing.T) {
	g := echoGateway(t)
	l := NewLinker(LinkerOptions{
		Dial: func(addr string) (net.Conn, error) {
			cc, sc := rpc.Pair()
			g.Server().ServeConn(sc)
			return cc, nil
		},
	})
	ring, err := l.Connect(Peer{Gateway: g})
	if err != nil {
		t.Fatal(err)
	}
	stream, err := l.Connect(Peer{Addr: "tier-b:9000"})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := ring.CallSync("recognize", nil); !errors.Is(err, rpc.ErrClosed) {
		t.Fatalf("ring call after close: err = %v, want ErrClosed", err)
	}
	if _, err := stream.CallSync("recognize", nil); !errors.Is(err, rpc.ErrClosed) {
		t.Fatalf("stream call after close: err = %v, want ErrClosed", err)
	}
	if _, err := l.Connect(Peer{Gateway: g}); !errors.Is(err, rpc.ErrClosed) {
		t.Fatalf("connect after close: err = %v, want ErrClosed", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal("double close should be a no-op")
	}
}
