// Package energy models edge-device batteries and power draw. The
// HiveMind evaluation reports consumed battery percentage per job and
// per scenario (Figs. 1, 14a, 16b); those numbers are driven by four
// loads — motion (flying/driving), on-board compute, radio transfer, and
// baseline electronics — which this package accounts separately so the
// experiment drivers can attribute consumption.
//
// Calibration note: the absolute wattages are behavioural constants
// chosen so the paper's *relative* results hold on the simulated swarm
// (distributed execution drains batteries fastest; centralized offload
// pays radio energy proportional to bytes moved; HiveMind sits lowest
// except for the light jobs S3/S4 where on-board execution costs
// slightly more than the tiny radio transfers it avoids). They are not
// measurements of Parrot hardware.
package energy

import "fmt"

// Load identifies a power-consumption category.
type Load string

const (
	LoadMotion  Load = "motion"  // rotors / wheels
	LoadCompute Load = "compute" // on-board task execution
	LoadRadio   Load = "radio"   // wireless TX/RX
	LoadBase    Load = "base"    // sensors, camera, electronics
)

// AllLoads lists the accounting categories.
var AllLoads = []Load{LoadMotion, LoadCompute, LoadRadio, LoadBase}

// PowerProfile describes a device class's power characteristics.
type PowerProfile struct {
	CapacityJ float64 // usable battery energy, joules

	HoverW       float64 // stationary flight (drones) or idle-with-motors (rovers)
	MoveW        float64 // moving at cruise speed
	ComputeBusyW float64 // CPU fully busy on a task
	ComputeIdleW float64 // CPU idle
	BaseW        float64 // camera + sensors + board

	TxJPerMB float64 // radio energy per megabyte sent
	RxJPerMB float64 // radio energy per megabyte received
	RadioW   float64 // radio baseline while associated
}

// DroneProfile models the paper's Parrot AR. Drone 2.0 class device:
// small battery, flight power dominates, on-board compute is expensive
// relative to the battery budget.
func DroneProfile() PowerProfile {
	return PowerProfile{
		CapacityJ:    36000, // ~10 Wh usable
		HoverW:       45,
		MoveW:        50,
		ComputeBusyW: 30, // CPU + USB flash + thermal margin at full tilt
		ComputeIdleW: 2,
		BaseW:        4,
		TxJPerMB:     1.5,
		RxJPerMB:     0.3,
		RadioW:       0.8,
	}
}

// RoverProfile models the robotic cars of §5.5: bigger battery, cheap
// motion, so the cars are "less power-constrained than the drones".
func RoverProfile() PowerProfile {
	return PowerProfile{
		CapacityJ:    120000, // ~33 Wh
		HoverW:       2,      // stationary: electronics only
		MoveW:        12,
		ComputeBusyW: 8, // Raspberry Pi class
		ComputeIdleW: 1.5,
		BaseW:        3,
		TxJPerMB:     1.2,
		RxJPerMB:     0.25,
		RadioW:       0.7,
	}
}

// TinyBotProfile models a BittyBuzz-class micro-robot (Kilobot/Zooid
// scale): a coin-cell battery, milliwatt electronics, vibration-slide
// motion, and an IR/low-power radio whose per-byte cost is high even
// though absolute draw is tiny.
func TinyBotProfile() PowerProfile {
	return PowerProfile{
		CapacityJ:    1000, // ~90 mAh coin cell at 3 V
		HoverW:       0,
		MoveW:        0.25,
		ComputeBusyW: 0.12, // 8-bit MCU flat out
		ComputeIdleW: 0.01,
		BaseW:        0.03,
		TxJPerMB:     9, // low-rate IR transceiver
		RxJPerMB:     4,
		RadioW:       0.04,
	}
}

// Battery tracks energy consumption against a capacity, attributed by
// load category.
type Battery struct {
	profile  PowerProfile
	consumed map[Load]float64
	total    float64
	onEmpty  func()
	empty    bool
}

// NewBattery returns a full battery for the profile. onEmpty, if
// non-nil, fires exactly once when consumption first reaches capacity.
func NewBattery(p PowerProfile, onEmpty func()) *Battery {
	return &Battery{profile: p, consumed: make(map[Load]float64), onEmpty: onEmpty}
}

// Profile returns the battery's power profile.
func (b *Battery) Profile() PowerProfile { return b.profile }

// Consume drains joules attributed to the load. Draining an empty
// battery is a no-op.
func (b *Battery) Consume(load Load, joules float64) {
	if joules <= 0 || b.empty {
		return
	}
	if b.total+joules >= b.profile.CapacityJ {
		joules = b.profile.CapacityJ - b.total
		b.consumed[load] += joules
		b.total = b.profile.CapacityJ
		b.empty = true
		if b.onEmpty != nil {
			b.onEmpty()
		}
		return
	}
	b.consumed[load] += joules
	b.total += joules
}

// ConsumePower drains power watts applied for duration seconds.
func (b *Battery) ConsumePower(load Load, watts, duration float64) {
	b.Consume(load, watts*duration)
}

// ConsumeTx drains transmit energy for megabytes sent.
func (b *Battery) ConsumeTx(megabytes float64) {
	b.Consume(LoadRadio, megabytes*b.profile.TxJPerMB)
}

// ConsumeRx drains receive energy for megabytes received.
func (b *Battery) ConsumeRx(megabytes float64) {
	b.Consume(LoadRadio, megabytes*b.profile.RxJPerMB)
}

// Empty reports whether the battery is depleted.
func (b *Battery) Empty() bool { return b.empty }

// ConsumedJ returns total joules drained.
func (b *Battery) ConsumedJ() float64 { return b.total }

// ConsumedBy returns joules drained by one load category.
func (b *Battery) ConsumedBy(load Load) float64 { return b.consumed[load] }

// ConsumedFraction returns consumption as a fraction of capacity [0,1].
func (b *Battery) ConsumedFraction() float64 {
	if b.profile.CapacityJ <= 0 {
		return 0
	}
	return b.total / b.profile.CapacityJ
}

// RemainingJ returns joules left.
func (b *Battery) RemainingJ() float64 { return b.profile.CapacityJ - b.total }

// String summarises the battery state.
func (b *Battery) String() string {
	return fmt.Sprintf("battery %.1f%% consumed (motion=%.0fJ compute=%.0fJ radio=%.0fJ base=%.0fJ)",
		b.ConsumedFraction()*100, b.consumed[LoadMotion], b.consumed[LoadCompute],
		b.consumed[LoadRadio], b.consumed[LoadBase])
}

// Integrator accrues time-based power draw between discrete simulation
// events. Call Advance(now) whenever device activity changes; it charges
// the battery for the elapsed interval using the activity flags set
// since the previous call.
type Integrator struct {
	bat      *Battery
	lastTime float64
	Moving   bool
	Hovering bool
	CPUBusy  bool
}

// NewIntegrator starts integrating at the given time.
func NewIntegrator(b *Battery, start float64) *Integrator {
	return &Integrator{bat: b, lastTime: start}
}

// Advance charges the battery for (now - last) seconds of the current
// activity state.
func (it *Integrator) Advance(now float64) {
	dt := now - it.lastTime
	if dt <= 0 {
		return
	}
	it.lastTime = now
	p := it.bat.profile
	switch {
	case it.Moving:
		it.bat.ConsumePower(LoadMotion, p.MoveW, dt)
	case it.Hovering:
		it.bat.ConsumePower(LoadMotion, p.HoverW, dt)
	}
	if it.CPUBusy {
		it.bat.ConsumePower(LoadCompute, p.ComputeBusyW, dt)
	} else {
		it.bat.ConsumePower(LoadCompute, p.ComputeIdleW, dt)
	}
	it.bat.ConsumePower(LoadBase, p.BaseW+p.RadioW, dt)
}
