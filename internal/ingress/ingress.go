// Package ingress is the fleet's HTTP job API: the edge-facing front
// door that turns swarm requests into gateway RPCs. POST /do/:job
// submits a job and returns a result id immediately (?then=true blocks
// for the result inline); GET /then/:id polls or blocks for the
// outcome. Identical pending submissions coalesce into one dispatch,
// small tasks batch into a single RPC envelope to amortise per-call
// overhead on the fast path, and a queue group spreads jobs across
// gateway front-ends by consistent hash with power-of-two-choices
// spill under load. Result ids ride the durable task layer, so a
// collected id survives a gateway crash: an ingress that never saw the
// POST can still answer the GET from the checkpoint log.
package ingress

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"hivemind/internal/rpc"
)

// Dispatcher issues one job RPC. runtime gateways, FailoverClients and
// Linker transports all satisfy it (rpc.Transport's Call is this
// signature).
type Dispatcher interface {
	Call(ctx context.Context, method string, payload []byte) ([]byte, error)
}

// DispatchFunc adapts a function to Dispatcher.
type DispatchFunc func(ctx context.Context, method string, payload []byte) ([]byte, error)

// Call implements Dispatcher.
func (f DispatchFunc) Call(ctx context.Context, method string, payload []byte) ([]byte, error) {
	return f(ctx, method, payload)
}

// Monitor receives ingress events; metrics.Registry satisfies it. A
// monitor that also implements Add(name string, v float64) gets batch
// entry counts as weighted counters.
type Monitor interface {
	CountEvent(name string)
}

// ForwardHeader marks a request relayed from a sibling ingress so the
// receiver serves it locally instead of bouncing it back (routing
// loop guard).
const ForwardHeader = "X-Hivemind-Forward"

// ResultIDHeader carries the minted result id on every /do response,
// including ?then=true ones whose body is the job output.
const ResultIDHeader = "X-Hivemind-Result-Id"

// Options configures an ingress Server. Dispatcher is required;
// everything else has serviceable defaults.
type Options struct {
	// Dispatcher issues the job RPCs (required).
	Dispatcher Dispatcher
	// Encode wraps a payload with the minted result id before dispatch,
	// so the durable task layer records outputs under the id the client
	// holds (wire to runtime.EncodeTask). nil sends payloads bare —
	// ids then resolve only from this ingress's memory.
	Encode func(id string, payload []byte) []byte
	// Lookup resolves a result id this ingress has no memory of against
	// durable state (wire to Gateway.TaskResult). nil: unknown ids 404.
	Lookup func(id string) ([]byte, bool, error)
	// Monitor receives counters (optional).
	Monitor Monitor
	// Group balances jobs across a gateway queue group (optional; nil
	// serves everything locally).
	Group *QueueGroup
	// Batch enables small-task batching when Window > 0.
	Batch BatchOptions
	// Timeout bounds each dispatch (0: 30s).
	Timeout time.Duration
	// TTL retains completed results for duplicate collection (0: 2m).
	TTL time.Duration
	// MaxBody caps request bodies (0: 1 MiB).
	MaxBody int64
}

// Stats is a snapshot of the ingress counters.
type Stats struct {
	Posted     uint64 // POST /do requests accepted (incl. coalesced)
	Coalesced  uint64 // POSTs that joined an already-pending identical job
	Dispatched uint64 // RPCs actually issued (direct or via batch envelope)
	Forwarded  uint64 // requests relayed to the owning group member
	Spilled    uint64 // requests rerouted off an overloaded owner (p2c)
	Batched    uint64 // batch envelopes sent
	Shed       uint64 // jobs rejected by admission control
	Failed     uint64 // jobs failed for any other reason
	Done       uint64 // jobs completed successfully
	Pending    int    // jobs in flight right now
}

type job struct {
	id   string
	name string
	key  string // coalesce key ("" once completed / not coalescable)

	done    chan struct{}
	body    []byte
	err     error
	expires time.Time
}

// Server is the HTTP job API front-end. It implements http.Handler.
type Server struct {
	opts    Options
	batcher *batcher
	client  *http.Client // forwards to group peers

	idPrefix string
	idSeq    atomic.Uint64

	posted, coalesced, dispatched uint64
	forwarded, spilled            uint64
	shed, failed, done            uint64

	mu        sync.Mutex
	jobs      map[string]*job // result id → job (pending + TTL'd results)
	pending   map[string]*job // coalesce key → in-flight job
	nextSweep time.Time
	closed    bool
}

// NewServer builds an ingress front-end. Close releases its batcher.
func NewServer(opts Options) (*Server, error) {
	if opts.Dispatcher == nil {
		return nil, errors.New("ingress: Options.Dispatcher is required")
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 30 * time.Second
	}
	if opts.TTL <= 0 {
		opts.TTL = 2 * time.Minute
	}
	if opts.MaxBody <= 0 {
		opts.MaxBody = 1 << 20
	}
	var pfx [4]byte
	if _, err := rand.Read(pfx[:]); err != nil {
		return nil, fmt.Errorf("ingress: minting id prefix: %w", err)
	}
	// Forwarding reuses connections aggressively: under load every
	// non-owned job crosses to its owner, and the default 2-idle-conns
	// pool would churn a socket per request.
	fwd := &http.Client{
		Timeout: opts.Timeout + 5*time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 128,
			MaxConnsPerHost:     256,
			IdleConnTimeout:     30 * time.Second,
		},
	}
	s := &Server{
		opts:     opts,
		client:   fwd,
		idPrefix: hex.EncodeToString(pfx[:]),
		jobs:     map[string]*job{},
		pending:  map[string]*job{},
	}
	if opts.Batch.Window > 0 {
		s.batcher = newBatcher(opts.Dispatcher, opts.Batch, opts.Monitor, &s.dispatched)
	}
	return s, nil
}

// Close flushes the batcher and rejects further submissions.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	if s.batcher != nil {
		s.batcher.close()
	}
}

// Depth reports jobs currently in flight — the queue-group load signal
// and the live gauge on the debug mux.
func (s *Server) Depth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pending)
}

// Stats snapshots the ingress counters.
func (s *Server) Stats() Stats {
	st := Stats{
		Posted:     atomic.LoadUint64(&s.posted),
		Coalesced:  atomic.LoadUint64(&s.coalesced),
		Dispatched: atomic.LoadUint64(&s.dispatched),
		Forwarded:  atomic.LoadUint64(&s.forwarded),
		Spilled:    atomic.LoadUint64(&s.spilled),
		Shed:       atomic.LoadUint64(&s.shed),
		Failed:     atomic.LoadUint64(&s.failed),
		Done:       atomic.LoadUint64(&s.done),
	}
	if s.batcher != nil {
		st.Batched = atomic.LoadUint64(&s.batcher.batches)
	}
	st.Pending = s.Depth()
	return st
}

func (s *Server) count(event string) {
	if s.opts.Monitor != nil {
		s.opts.Monitor.CountEvent(event)
	}
}

// ServeHTTP routes the two-verb job API.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case len(r.URL.Path) > len("/do/") && r.URL.Path[:len("/do/")] == "/do/":
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		s.handleDo(w, r, r.URL.Path[len("/do/"):])
	case len(r.URL.Path) > len("/then/") && r.URL.Path[:len("/then/")] == "/then/":
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		s.handleThen(w, r, r.URL.Path[len("/then/"):])
	default:
		http.NotFound(w, r)
	}
}

// coalesceKey identifies a job submission by name and payload content.
func coalesceKey(name string, payload []byte) string {
	h := fnv.New64a()
	io.WriteString(h, name)
	h.Write([]byte{0})
	h.Write(payload)
	return name + "/" + strconv.FormatUint(h.Sum64(), 16)
}

func (s *Server) handleDo(w http.ResponseWriter, r *http.Request, name string) {
	payload, err := io.ReadAll(io.LimitReader(r.Body, s.opts.MaxBody+1))
	if err != nil {
		http.Error(w, "reading body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if int64(len(payload)) > s.opts.MaxBody {
		http.Error(w, "body exceeds limit", http.StatusRequestEntityTooLarge)
		return
	}
	key := coalesceKey(name, payload)

	// Queue-group balancing: relay to the owning member unless this
	// request was already forwarded once (loop guard) or we own it.
	if s.opts.Group != nil && r.Header.Get(ForwardHeader) == "" {
		if m, spilled := s.opts.Group.Route(key); m != nil && !m.Self {
			if spilled {
				atomic.AddUint64(&s.spilled, 1)
				s.count("ingress-spill")
			}
			if s.forward(w, r, m, payload) {
				return
			}
			// Peer unreachable: serve locally rather than failing the edge.
		}
	}

	atomic.AddUint64(&s.posted, 1)
	s.count("ingress-post")
	j, fresh, err := s.submit(name, key, payload)
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	if !fresh {
		atomic.AddUint64(&s.coalesced, 1)
		s.count("ingress-coalesced")
	}

	w.Header().Set(ResultIDHeader, j.id)
	if r.URL.Query().Get("then") != "true" {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"resultId\":%q}\n", j.id)
		return
	}
	s.count("ingress-then-wait")
	s.awaitAndWrite(w, r, j)
}

// submit registers (or coalesces into) a pending job and starts its
// dispatch. fresh is false when the submission joined an existing
// in-flight job.
func (s *Server) submit(name, key string, payload []byte) (*job, bool, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, false, errors.New("ingress: server closed")
	}
	if j, ok := s.pending[key]; ok {
		s.mu.Unlock()
		return j, false, nil
	}
	s.sweepLocked(time.Now())
	j := &job{
		id:   fmt.Sprintf("%s-%d", s.idPrefix, s.idSeq.Add(1)),
		name: name,
		key:  key,
		done: make(chan struct{}),
	}
	s.jobs[j.id] = j
	s.pending[key] = j
	s.mu.Unlock()

	go s.dispatch(j, payload)
	return j, true, nil
}

func (s *Server) dispatch(j *job, payload []byte) {
	ctx, cancel := context.WithTimeout(context.Background(), s.opts.Timeout)
	defer cancel()
	if s.opts.Encode != nil {
		payload = s.opts.Encode(j.id, payload)
	}
	atomic.AddUint64(&s.dispatched, 1)
	s.count("ingress-dispatch")
	var out []byte
	var err error
	if s.batcher != nil && len(payload) <= s.batcher.opts.MaxEntryBytes {
		out, err = s.batcher.Call(ctx, j.name, payload)
	} else {
		out, err = s.opts.Dispatcher.Call(ctx, j.name, payload)
	}
	s.complete(j, out, err)
}

func (s *Server) complete(j *job, body []byte, err error) {
	s.mu.Lock()
	j.body, j.err = body, err
	j.expires = time.Now().Add(s.opts.TTL)
	if s.pending[j.key] == j {
		delete(s.pending, j.key)
	}
	s.mu.Unlock()
	close(j.done)
	switch {
	case err == nil:
		atomic.AddUint64(&s.done, 1)
		s.count("ingress-ok")
	case rpc.IsShed(err):
		atomic.AddUint64(&s.shed, 1)
		s.count("ingress-shed")
	default:
		atomic.AddUint64(&s.failed, 1)
		s.count("ingress-error")
	}
}

// sweepLocked drops expired results, at most once per TTL/4.
func (s *Server) sweepLocked(now time.Time) {
	if now.Before(s.nextSweep) {
		return
	}
	s.nextSweep = now.Add(s.opts.TTL / 4)
	for id, j := range s.jobs {
		if !j.expires.IsZero() && now.After(j.expires) {
			delete(s.jobs, id)
		}
	}
}

func (s *Server) handleThen(w http.ResponseWriter, r *http.Request, id string) {
	s.count("ingress-then")
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j != nil {
		s.awaitAndWrite(w, r, j)
		return
	}
	// No memory of this id — the ingress that minted it may have died.
	// The durable task layer still knows completed jobs by result id.
	if s.opts.Lookup != nil {
		body, ok, err := s.opts.Lookup(id)
		if err != nil {
			http.Error(w, "result lookup: "+err.Error(), http.StatusInternalServerError)
			return
		}
		if ok {
			w.Header().Set(ResultIDHeader, id)
			w.Write(body)
			return
		}
	}
	http.Error(w, "result not found: "+id, http.StatusNotFound)
}

// awaitAndWrite blocks for the job's outcome (bounded by the request
// context) and renders it: 200 with the raw output, or the mapped
// failure status.
func (s *Server) awaitAndWrite(w http.ResponseWriter, r *http.Request, j *job) {
	select {
	case <-j.done:
	case <-r.Context().Done():
		http.Error(w, "client gave up before the result arrived", http.StatusRequestTimeout)
		return
	}
	w.Header().Set(ResultIDHeader, j.id)
	if j.err != nil {
		writeErr(w, j.err)
		return
	}
	w.Write(j.body)
}

// writeErr maps dispatch failures onto HTTP statuses the edge
// understands: admission sheds become 503 with a Retry-After hint,
// deadline misses 504, everything else 500.
func writeErr(w http.ResponseWriter, err error) {
	switch {
	case rpc.IsShed(err):
		retry := time.Second
		if d, ok := rpc.ShedRetryAfter(err); ok && d > 0 {
			retry = d
		}
		secs := int(retry.Round(time.Second) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case rpc.IsDeadlineExceeded(err) || errors.Is(err, context.DeadlineExceeded):
		http.Error(w, err.Error(), http.StatusGatewayTimeout)
	case rpc.IsFenced(err):
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// forward relays a /do request to the owning group member, streaming
// its response back. Returns false when the peer is unreachable so the
// caller can fall back to local handling.
func (s *Server) forward(w http.ResponseWriter, r *http.Request, m *Member, payload []byte) bool {
	url := m.URL + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, url, bytes.NewReader(payload))
	if err != nil {
		return false
	}
	req.Header.Set(ForwardHeader, "1")
	resp, err := s.client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	atomic.AddUint64(&s.forwarded, 1)
	s.count("ingress-forward")
	for _, h := range []string{ResultIDHeader, "Retry-After", "Content-Type"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
	return true
}
