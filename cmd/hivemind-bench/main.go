// Command hivemind-bench runs the full evaluation sweep (every figure
// and microbenchmark at paper-scale parameters) and writes a combined
// report suitable for EXPERIMENTS.md.
//
// Usage:
//
//	hivemind-bench [-seed 1] [-quick] [-out report.txt]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"hivemind/internal/experiments"
)

func main() {
	var (
		seed  = flag.Int64("seed", 1, "random seed")
		quick = flag.Bool("quick", false, "reduced sweeps")
		out   = flag.String("out", "", "write the report to this file (default stdout)")
	)
	flag.Parse()

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	cfg := experiments.RunConfig{Seed: *seed, Quick: *quick}
	fmt.Fprintf(w, "HiveMind evaluation sweep (seed=%d quick=%v)\n\n", *seed, *quick)
	for _, e := range experiments.All() {
		start := time.Now()
		rep := e.Run(cfg)
		fmt.Fprintln(w, rep)
		fmt.Fprintf(w, "(%s took %.1fs)\n\n", e.ID, time.Since(start).Seconds())
	}
}
