package platform

import (
	"testing"

	"hivemind/internal/apps"
)

// driveAdapter submits tasks round-robin at the profile's rate for
// durationS and returns completed-task latencies after the adapter
// settles.
func driveAdapter(t *testing.T, a *Adapter, sys *System, p apps.Profile, durationS float64) (completed, dropped int) {
	t.Helper()
	rng := sys.Eng.Rand()
	period := 1.0 / p.TaskRatePerDevice
	for _, d := range sys.Fleet {
		d := d
		var submit func()
		submit = func() {
			if sys.Eng.Now() >= durationS {
				return
			}
			a.Submit(d, func(m TaskMetrics) {
				if m.Dropped {
					dropped++
				} else {
					completed++
				}
			})
			sys.Eng.After(period*(0.8+0.4*rng.Float64()), submit)
		}
		sys.Eng.At(rng.Float64()*period, submit)
	}
	sys.Eng.RunUntil(durationS + 30)
	return completed, dropped
}

func TestAdapterLeavesCloudUnderCongestion(t *testing.T) {
	// Saturate the wireless by shrinking it; a cloud-pinned job misses
	// its goal and the adapter walks to hybrid (§4.2 runtime remapping).
	o := Preset(HiveMind, 16, 41)
	o.NetCfg.WirelessBps = 40e6 // 40 MB/s: full offload cannot meet goals
	sys := NewSystem(o)
	face := mustProfile(t, apps.S1FaceRecognition)
	a := NewAdapter(sys, face, 1.0)
	// Force the starting point to cloud to exercise the ladder.
	a.current = TierCloud
	completed, _ := driveAdapter(t, a, sys, face, 60)
	if completed == 0 {
		t.Fatal("no completions")
	}
	if a.Placement() == TierCloud {
		t.Fatalf("adapter never left the congested cloud placement (switches: %v)", a.Switches())
	}
	if len(a.Switches()) == 0 {
		t.Fatal("no switches recorded")
	}
	first := a.Switches()[0]
	if first.From != TierCloud || first.P95 <= 1.0 {
		t.Fatalf("first switch = %+v", first)
	}
}

func TestAdapterLeavesOverloadedEdge(t *testing.T) {
	// A heavy job pinned to the edge sheds tasks and blows its goal; the
	// adapter must offload.
	sys := NewSystem(Preset(HiveMind, 8, 43))
	face := mustProfile(t, apps.S1FaceRecognition)
	a := NewAdapter(sys, face, 1.5)
	a.current = TierEdge
	completed, dropped := driveAdapter(t, a, sys, face, 60)
	if a.Placement() == TierEdge {
		t.Fatalf("adapter stayed on the overloaded edge (completed=%d dropped=%d)", completed, dropped)
	}
}

func TestAdapterStableWhenGoalMet(t *testing.T) {
	sys := NewSystem(Preset(HiveMind, 8, 47))
	weather := mustProfile(t, apps.S7Weather)
	a := NewAdapter(sys, weather, 2.0) // generous goal
	driveAdapter(t, a, sys, weather, 40)
	if len(a.Switches()) != 0 {
		t.Fatalf("adapter churned despite meeting its goal: %v", a.Switches())
	}
	if a.Placement() != sys.PlaceFor(weather) {
		t.Fatal("placement drifted from the static decision")
	}
}

func TestAdapterNoGoalNeverAdapts(t *testing.T) {
	sys := NewSystem(Preset(HiveMind, 4, 49))
	face := mustProfile(t, apps.S1FaceRecognition)
	a := NewAdapter(sys, face, 0)
	driveAdapter(t, a, sys, face, 20)
	if len(a.Switches()) != 0 {
		t.Fatal("goal-less adapter switched")
	}
}
