package rpc

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func newTestRing(t *testing.T, opts RingOptions) (*Server, *Ring) {
	t.Helper()
	srv := NewServer()
	srv.Register("echo", func(p []byte) ([]byte, error) { return p, nil })
	r, err := NewRing(srv, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, r
}

// TestRingEcho pins the basic round trip and that replies carry the
// handler's bytes back without corruption.
func TestRingEcho(t *testing.T) {
	_, r := newTestRing(t, RingOptions{})
	for i := 0; i < 100; i++ {
		payload := []byte(fmt.Sprintf("payload-%d", i))
		got, err := r.CallSync("echo", payload)
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if string(got) != string(payload) {
			t.Fatalf("call %d: got %q want %q", i, got, payload)
		}
	}
}

// TestRingWireParityErrors pins that the ring surfaces the same error
// vocabulary as the framed transport: handler errors arrive as
// ServerError whose text parses into the typed helpers, and unknown
// methods return ErrMethodNotFound's wire form.
func TestRingWireParityErrors(t *testing.T) {
	srv, r := newTestRing(t, RingOptions{})
	srv.Register("shed", func(p []byte) ([]byte, error) {
		return nil, ShedError(25 * time.Millisecond)
	})
	srv.Register("boom", func(p []byte) ([]byte, error) {
		return nil, errors.New("kaboom")
	})

	if _, err := r.CallSync("shed", nil); !IsShed(err) {
		t.Fatalf("shed over ring not recognised by IsShed: %v", err)
	} else if after, ok := ShedRetryAfter(err); !ok || after != 25*time.Millisecond {
		t.Fatalf("retry-after hint lost over ring: %v %v", after, ok)
	}

	var se ServerError
	if _, err := r.CallSync("boom", nil); !errors.As(err, &se) || string(se) != "kaboom" {
		t.Fatalf("handler error not a ServerError over ring: %v", err)
	}

	if _, err := r.CallSync("nosuch", nil); !errors.As(err, &se) || string(se) != ErrMethodNotFound.Error() {
		t.Fatalf("unknown method over ring: %v", err)
	}
}

// TestRingDeadlineDropsExpired pins deadline parity: a call whose ctx
// deadline has already passed is dropped unexecuted, answered with the
// typed deadline error, and counted in the server's DroppedExpired.
func TestRingDeadlineDropsExpired(t *testing.T) {
	var executed atomic.Int64
	srv, r := newTestRing(t, RingOptions{})
	srv.Register("count", func(p []byte) ([]byte, error) {
		executed.Add(1)
		return p, nil
	})

	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := r.Call(ctx, "count", nil)
	if err == nil {
		t.Fatal("expired call succeeded")
	}
	// Either the ring dropped it server-side (typed wire error) or the
	// caller's own ctx fired first; both must leave the handler unrun.
	if !IsDeadlineExceeded(err) && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired call returned untyped error: %v", err)
	}
	if executed.Load() != 0 {
		t.Fatal("expired call was executed")
	}
	if srv.DroppedExpired() == 0 && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatal("server-side drop not counted in DroppedExpired")
	}
}

// TestRingInterceptorAndObserver pins that the server interceptor and
// the client-side observer both bracket ring calls, same contract as
// the framed path.
func TestRingInterceptorAndObserver(t *testing.T) {
	var intercepted, observed, completed atomic.Int64
	srv, r := newTestRing(t, RingOptions{})
	srv.SetInterceptor(func(ctx context.Context, method string, payload []byte, next HandlerCtx) ([]byte, error) {
		intercepted.Add(1)
		return next(ctx, payload)
	})
	r.SetObserver(func(method string, payload []byte) func(error) {
		observed.Add(1)
		return func(error) { completed.Add(1) }
	})
	if _, err := r.CallSync("echo", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if intercepted.Load() != 1 || observed.Load() != 1 || completed.Load() != 1 {
		t.Fatalf("interceptor/observer hooks = %d/%d/%d, want 1/1/1",
			intercepted.Load(), observed.Load(), completed.Load())
	}
}

// TestRingConcurrentProducers hammers one ring from many goroutines —
// the MPMC ticket protocol and the completion state machine must hold
// under the race detector — and checks every reply routes back to its
// own caller.
func TestRingConcurrentProducers(t *testing.T) {
	_, r := newTestRing(t, RingOptions{Slots: 64, Consumers: 4})
	const (
		producers = 16
		calls     = 200
	)
	var wg sync.WaitGroup
	errs := make(chan error, producers)
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < calls; i++ {
				want := fmt.Sprintf("p%d-c%d", p, i)
				got, err := r.CallSync("echo", []byte(want))
				if err != nil {
					errs <- fmt.Errorf("producer %d call %d: %w", p, i, err)
					return
				}
				if string(got) != want {
					errs <- fmt.Errorf("producer %d call %d: cross-wired reply %q", p, i, got)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestRingCloseDuringSend closes the ring while producers are
// mid-flight: every call must resolve promptly — success or ErrClosed —
// with nobody stranded, and Close must return.
func TestRingCloseDuringSend(t *testing.T) {
	srv := NewServer()
	srv.Register("echo", func(p []byte) ([]byte, error) { return p, nil })
	defer srv.Close()
	r, err := NewRing(srv, RingOptions{Slots: 8, Consumers: 2})
	if err != nil {
		t.Fatal(err)
	}

	const producers = 8
	var wg sync.WaitGroup
	stop := make(chan struct{})
	bad := make(chan error, producers)
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_, err := r.CallSync("echo", []byte("x"))
				if err != nil && !errors.Is(err, ErrClosed) {
					bad <- err
					return
				}
				if err != nil {
					return // closed: done
				}
			}
		}()
	}
	time.Sleep(5 * time.Millisecond) // let traffic build
	closed := make(chan struct{})
	go func() { r.Close(); close(closed) }()
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("ring Close wedged with producers in flight")
	}
	close(stop)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("a producer was stranded by close-during-send")
	}
	close(bad)
	for err := range bad {
		t.Fatalf("call failed with non-close error during teardown: %v", err)
	}
	if r.Healthy() {
		t.Fatal("closed ring reports healthy")
	}
	if err := r.Ping(context.Background()); !errors.Is(err, ErrClosed) {
		t.Fatalf("ping on closed ring: %v", err)
	}
}

// TestRingReconnect pins the reconnect story: after a ring closes, a
// fresh ring on the same server carries traffic (the co-located tier
// re-established its shared-memory link).
func TestRingReconnect(t *testing.T) {
	srv := NewServer()
	srv.Register("echo", func(p []byte) ([]byte, error) { return p, nil })
	defer srv.Close()

	r1, err := NewRing(srv, RingOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r1.CallSync("echo", []byte("a")); err != nil {
		t.Fatal(err)
	}
	r1.Close()
	if _, err := r1.CallSync("echo", []byte("b")); !errors.Is(err, ErrClosed) {
		t.Fatalf("call on closed ring: %v", err)
	}

	r2, err := NewRing(srv, RingOptions{})
	if err != nil {
		t.Fatalf("reconnect ring: %v", err)
	}
	got, err := r2.CallSync("echo", []byte("c"))
	if err != nil || string(got) != "c" {
		t.Fatalf("call over reconnected ring: %q %v", got, err)
	}
	r2.Close()
}

// TestRingServerCloseClosesRings pins lifecycle: Server.Close tears
// down attached rings, and NewRing on a closed server refuses.
func TestRingServerCloseClosesRings(t *testing.T) {
	srv := NewServer()
	srv.Register("echo", func(p []byte) ([]byte, error) { return p, nil })
	r, err := NewRing(srv, RingOptions{})
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	if r.Healthy() {
		t.Fatal("ring survived Server.Close")
	}
	if _, err := NewRing(srv, RingOptions{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("NewRing on closed server: %v", err)
	}
}

// TestRingCancelPropagatesToHandler pins zero-copy cancellation: the
// caller's ctx is handed to the handler directly, so cancelling the
// call cancels the handler without any cancel-frame machinery.
func TestRingCancelPropagatesToHandler(t *testing.T) {
	srv := NewServer()
	entered := make(chan struct{})
	srv.RegisterCtx("block", func(ctx context.Context, p []byte) ([]byte, error) {
		close(entered)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	defer srv.Close()
	r, err := NewRing(srv, RingOptions{})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	res := make(chan error, 1)
	go func() {
		_, err := r.Call(ctx, "block", nil)
		res <- err
	}()
	<-entered
	cancel()
	select {
	case err := <-res:
		// Two legitimate outcomes race: the caller abandons first
		// (typed context.Canceled) or the handler observes the cancel
		// and returns ctx.Err(), which crosses back as a ServerError
		// with the same text — exactly what the framed path reports.
		var se ServerError
		if !errors.Is(err, context.Canceled) &&
			!(errors.As(err, &se) && string(se) == context.Canceled.Error()) {
			t.Fatalf("cancelled ring call returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled ring call never returned")
	}
}

// TestRingBackpressure pins that a full ring backpressures callers
// rather than dropping: with consumers blocked, more calls than slots
// must all eventually succeed once the consumers resume.
func TestRingBackpressure(t *testing.T) {
	srv := NewServer()
	release := make(chan struct{})
	srv.Register("gate", func(p []byte) ([]byte, error) {
		<-release
		return p, nil
	})
	defer srv.Close()
	r, err := NewRing(srv, RingOptions{Slots: 4, Consumers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	const calls = 32
	var ok atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := r.CallSync("gate", nil); err == nil {
				ok.Add(1)
			}
		}()
	}
	time.Sleep(5 * time.Millisecond)
	close(release)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("backpressured callers never drained")
	}
	if ok.Load() != calls {
		t.Fatalf("only %d/%d calls succeeded through the full ring", ok.Load(), calls)
	}
}
