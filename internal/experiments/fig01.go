package experiments

import (
	"math"

	"hivemind/internal/platform"
	"hivemind/internal/scenario"
	"hivemind/internal/stats"
)

func init() {
	register("fig01", "Treasure-hunt scenario: execution time and consumed battery, real-scale (16 drones) and simulated large swarm", fig01)
}

// fig01 reproduces Fig. 1: Scenario A across the four systems at the
// real 16-drone scale and at a simulated large-swarm scale (1000 drones
// in the paper; reduced in quick mode). For the large swarm the
// wireless links and cluster are scaled proportionally to device count,
// as §5.6 does for network links.
func fig01(cfg RunConfig) *Report {
	rep := &Report{ID: "fig01", Title: "Scenario A execution time + battery (Fig. 1)"}

	bigSwarm := 1000
	if cfg.Quick {
		bigSwarm = 128
	}

	kinds := []platform.SystemKind{
		platform.CentralizedIaaS, platform.CentralizedFaaS,
		platform.DistributedEdge, platform.HiveMind,
	}
	scales := []struct {
		label   string
		devices int
	}{
		{"real-16", defaultDevices},
		{"sim-large", bigSwarm},
	}
	// Every scale×system point is an independent mission: fan them out,
	// then render the tables serially in the fixed order.
	runs := mapPar(cfg, len(scales)*len(kinds), func(i int) scenario.Result {
		scale, k := scales[i/len(kinds)], kinds[i%len(kinds)]
		opts := platform.Preset(k, scale.devices, cfg.Seed)
		if scale.devices > defaultDevices {
			f := float64(scale.devices) / defaultDevices
			opts.WirelessScale = f
			opts.ClusterCf.Servers = int(float64(opts.ClusterCf.Servers) * f)
			// Larger swarms survey a proportionally larger field, so
			// per-device sweep work stays comparable to the testbed.
			opts.FieldM = 120 * math.Sqrt(f)
		}
		sc := scenario.DefaultConfig(scenario.ScenarioA, opts)
		if cfg.Quick {
			sc.MaxDurationS = 200
		}
		if scale.devices > defaultDevices {
			sc.Items = scale.devices // item density scales with swarm area coverage
		}
		return scenario.Run(scenario.ScenarioA, sc)
	})
	for si, scale := range scales {
		tb := stats.NewTable("Fig. 1 ("+scale.label+"): Scenario A",
			"system", "exec_time_s", "completed", "battery_mean_%", "battery_max_%", "bw_MBps")
		for ki, k := range kinds {
			r := runs[si*len(kinds)+ki]
			tb.AddRow(k.String(), r.CompletionS, r.Completed, r.BatteryMean*100, r.BatteryMax*100, r.BWMeanMBps)
			rep.SetValue("exec_"+scale.label+"_"+k.String(), r.CompletionS)
			rep.SetValue("battery_"+scale.label+"_"+k.String(), r.BatteryMean)
		}
		rep.Tables = append(rep.Tables, tb)
	}

	hmSmall := rep.Value("exec_real-16_hivemind")
	cenSmall := rep.Value("exec_real-16_centralized-faas")
	hmBig := rep.Value("exec_sim-large_hivemind")
	cenBig := rep.Value("exec_sim-large_centralized-faas")
	rep.SetValue("speedup_real", cenSmall/hmSmall)
	rep.SetValue("speedup_large", cenBig/hmBig)
	rep.AddNote("HiveMind vs centralized FaaS: %.2fx at 16 drones, %.2fx at scale — the gap widens with swarm size as the paper reports", cenSmall/hmSmall, cenBig/hmBig)
	return rep
}
