// Package runtime is a real, in-process serverless runtime: the
// executable counterpart of the simulated platform in internal/faas.
// Functions are Go closures executed on goroutines with the semantics
// the paper's backend provides — bounded user concurrency, cold/warm
// container instances with keep-alive reuse (§4.3), inter-function data
// exchange through the revisioned document store (OpenWhisk's CouchDB
// pattern, §3.3) or in-memory when chained in the same instance,
// automatic retry of failed functions (§3.2), and straggler duplicates
// that race the original and keep the first result (§4.6).
//
// It exists so HiveMind applications can be *run*, not only simulated:
// the examples and the cross-tier API stubs the compiler generates bind
// against this runtime for cloud tiers and internal/rpc for edge tiers.
package runtime

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hivemind/internal/stats"
	"hivemind/internal/store"
)

// Function is a serverless function body. Implementations must be safe
// for concurrent invocation and idempotent if straggler duplication is
// enabled.
type Function func(ctx context.Context, input []byte) ([]byte, error)

// Injector is the fault-injection hook the runtime consults before each
// execution attempt (op "invoke/<fn>"): a non-nil error stands in for a
// crashed container, exercising the §3.2 respawn path on the live
// runtime. chaos.Injector satisfies it.
type Injector interface {
	Fault(op string) error
}

// Config tunes the runtime.
type Config struct {
	// MaxInFlight bounds concurrent executions (default 1000, the AWS
	// Lambda default the paper cites).
	MaxInFlight int
	// KeepAlive is how long an idle instance survives before teardown
	// (0: torn down immediately — stock OpenWhisk behaviour).
	KeepAlive time.Duration
	// ColdStart and WarmStart emulate instance provisioning costs so
	// applications experience realistic latency profiles even when the
	// function body is trivial. Zero values disable the delays.
	ColdStart time.Duration
	WarmStart time.Duration
	// Retries is how many times a failed function is respawned before
	// the error is surfaced (§3.2: OpenWhisk respawns failed tasks).
	Retries int
	// StragglerAfter, if positive, spawns a duplicate execution when the
	// original has run this long; the first finisher wins (§4.6).
	StragglerAfter time.Duration
	// RespawnDelay is the pause before a failed attempt is respawned
	// (§3.2; the faas model's RespawnDelayS). 0: respawn immediately.
	RespawnDelay time.Duration
	// Injector, if non-nil, is consulted before every execution attempt
	// and store exchange so chaos tests can kill live invocations.
	Injector Injector
}

// DefaultConfig mirrors the HiveMind backend settings.
func DefaultConfig() Config {
	return Config{
		MaxInFlight: 1000,
		KeepAlive:   20 * time.Second,
		ColdStart:   0,
		WarmStart:   0,
		Retries:     3,
	}
}

// Stats are the runtime's counters.
type Stats struct {
	Invocations uint64
	ColdStarts  uint64
	WarmStarts  uint64
	Retries     uint64
	Duplicates  uint64
	// Killed counts executions the fault injector crashed.
	Killed uint64
	// StoreDegraded counts chain handoffs that fell back to in-memory
	// data because the document store refused the write (graceful
	// degradation under store faults).
	StoreDegraded uint64
}

// Runtime executes registered functions.
type Runtime struct {
	cfg Config

	mu    sync.RWMutex
	fns   map[string]Function
	warm  map[string][]*instance
	sem   chan struct{}
	db    *store.DB
	stats struct {
		invocations   atomic.Uint64
		cold          atomic.Uint64
		warmHits      atomic.Uint64
		retries       atomic.Uint64
		duplicates    atomic.Uint64
		killed        atomic.Uint64
		storeDegraded atomic.Uint64
	}
	closed atomic.Bool
}

// instance is a warm "container": in-process, it is just an identity
// that carries reuse bookkeeping and a private scratch space.
type instance struct {
	fn      string
	scratch map[string][]byte
	timer   *time.Timer
	dead    bool
}

// New creates a runtime backed by the given document store (nil: a
// fresh in-memory store).
func New(cfg Config, db *store.DB) *Runtime {
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 1000
	}
	if db == nil {
		db = store.NewDB()
	}
	return &Runtime{
		cfg:  cfg,
		fns:  map[string]Function{},
		warm: map[string][]*instance{},
		sem:  make(chan struct{}, cfg.MaxInFlight),
		db:   db,
	}
}

// Store exposes the runtime's document store (the inter-function data
// plane).
func (r *Runtime) Store() *store.DB { return r.db }

// Register binds a function body to a name.
func (r *Runtime) Register(name string, f Function) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.fns[name] = f
}

// Stats returns a snapshot of the counters.
func (r *Runtime) Stats() Stats {
	return Stats{
		Invocations:   r.stats.invocations.Load(),
		ColdStarts:    r.stats.cold.Load(),
		WarmStarts:    r.stats.warmHits.Load(),
		Retries:       r.stats.retries.Load(),
		Duplicates:    r.stats.duplicates.Load(),
		Killed:        r.stats.killed.Load(),
		StoreDegraded: r.stats.storeDegraded.Load(),
	}
}

// Result reports one invocation.
type Result struct {
	Output  []byte
	Cold    bool
	Retries int
	Latency time.Duration
}

// ErrClosed is returned after Close.
var ErrClosed = errors.New("runtime: closed")

// acquireInstance takes a warm instance or creates one.
func (r *Runtime) acquireInstance(name string) (*instance, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	list := r.warm[name]
	for len(list) > 0 {
		inst := list[len(list)-1]
		list = list[:len(list)-1]
		if inst.dead {
			continue
		}
		if inst.timer != nil {
			inst.timer.Stop()
			inst.timer = nil
		}
		r.warm[name] = list
		return inst, true
	}
	r.warm[name] = list
	return &instance{fn: name, scratch: map[string][]byte{}}, false
}

// releaseInstance parks an instance for reuse under keep-alive.
func (r *Runtime) releaseInstance(inst *instance) {
	if r.cfg.KeepAlive <= 0 || r.closed.Load() {
		inst.dead = true
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.warm[inst.fn] = append(r.warm[inst.fn], inst)
	inst.timer = time.AfterFunc(r.cfg.KeepAlive, func() {
		r.mu.Lock()
		defer r.mu.Unlock()
		inst.dead = true
	})
}

// Invoke runs a function synchronously with retries and optional
// straggler duplication.
func (r *Runtime) Invoke(ctx context.Context, name string, input []byte) (Result, error) {
	if r.closed.Load() {
		return Result{}, ErrClosed
	}
	r.mu.RLock()
	fn, ok := r.fns[name]
	r.mu.RUnlock()
	if !ok {
		return Result{}, fmt.Errorf("runtime: function %q not registered", name)
	}

	start := time.Now()
	r.stats.invocations.Add(1)

	// The runtime layer's span covers the whole invocation — admission
	// to the in-flight semaphore, cold/warm start, every attempt.
	tt := taskTraceFrom(ctx)
	sp := tt.span("invoke "+name, string(stats.StageExecution), "runtime")
	defer sp.End()

	select {
	case r.sem <- struct{}{}:
	case <-ctx.Done():
		return Result{}, ctx.Err()
	}
	defer func() { <-r.sem }()

	var res Result
	attempts := r.cfg.Retries + 1
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		inst, warm := r.acquireInstance(name)
		if warm {
			r.stats.warmHits.Add(1)
			if r.cfg.WarmStart > 0 {
				sleepCtx(ctx, r.cfg.WarmStart)
			}
		} else {
			r.stats.cold.Add(1)
			res.Cold = true
			if r.cfg.ColdStart > 0 {
				sleepCtx(ctx, r.cfg.ColdStart)
			}
		}
		var out []byte
		var err error
		if r.cfg.Injector != nil {
			// A consulted fault stands in for a crashed container: the
			// attempt dies before the body runs (§3.2 failure mode).
			if ferr := r.cfg.Injector.Fault("invoke/" + name); ferr != nil {
				r.stats.killed.Add(1)
				err = ferr
			}
		}
		if err == nil {
			// Only the function body counts as the execution stage;
			// provisioning delays and respawn pauses fall to management.
			stop := tt.stages().track(stats.StageExecution)
			out, err = r.execute(ctx, fn, input)
			stop()
		}
		r.releaseInstance(inst)
		if err == nil {
			res.Output = out
			res.Latency = time.Since(start)
			res.Retries = attempt
			return res, nil
		}
		lastErr = err
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			break
		}
		if attempt < attempts-1 {
			r.stats.retries.Add(1)
			if r.cfg.RespawnDelay > 0 {
				sleepCtx(ctx, r.cfg.RespawnDelay)
				if ctx.Err() != nil {
					break
				}
			}
		}
	}
	res.Latency = time.Since(start)
	return res, fmt.Errorf("runtime: %s failed after %d attempts: %w", name, attempts, lastErr)
}

// execute runs one attempt, racing a straggler duplicate if configured.
func (r *Runtime) execute(ctx context.Context, fn Function, input []byte) ([]byte, error) {
	if r.cfg.StragglerAfter <= 0 {
		return safeCall(ctx, fn, input)
	}
	type outcome struct {
		out []byte
		err error
	}
	results := make(chan outcome, 2)
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	launch := func() {
		out, err := safeCall(cctx, fn, input)
		select {
		case results <- outcome{out, err}:
		default:
		}
	}
	go launch()
	dup := time.AfterFunc(r.cfg.StragglerAfter, func() {
		r.stats.duplicates.Add(1)
		go launch()
	})
	defer dup.Stop()
	select {
	case o := <-results:
		return o.out, o.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// safeCall isolates panics in function bodies, converting them to
// errors (a crashed container must not take the invoker down).
func safeCall(ctx context.Context, fn Function, input []byte) (out []byte, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("runtime: function panicked: %v", p)
		}
	}()
	return fn(ctx, input)
}

// Go runs an invocation asynchronously.
func (r *Runtime) Go(ctx context.Context, name string, input []byte) <-chan InvocationOutcome {
	ch := make(chan InvocationOutcome, 1)
	go func() {
		res, err := r.Invoke(ctx, name, input)
		ch <- InvocationOutcome{Result: res, Err: err}
	}()
	return ch
}

// InvocationOutcome pairs a result with its error for async delivery.
type InvocationOutcome struct {
	Result Result
	Err    error
}

// Chain runs a pipeline of functions, passing each output to the next
// through the document store (each tier's output is persisted under
// "out/<fn>/<chainID>", CouchDB-style) and returning the final output.
// When the store refuses the write (an injected database fault), the
// handoff degrades gracefully to in-memory data so the chain survives —
// the same hide-the-failure behaviour the faas model gives respawned
// tasks.
func (r *Runtime) Chain(ctx context.Context, chainID string, names []string, input []byte) ([]byte, error) {
	if len(names) == 0 {
		return nil, errors.New("runtime: empty chain")
	}
	data := input
	for _, name := range names {
		res, err := r.Invoke(ctx, name, data)
		if err != nil {
			return nil, fmt.Errorf("chain %s at tier %s: %w", chainID, name, err)
		}
		key := fmt.Sprintf("out/%s/%s", name, chainID)
		data, err = r.exchange(ctx, key, res.Output)
		if err != nil {
			return nil, fmt.Errorf("chain %s: persisting %s: %w", chainID, key, err)
		}
	}
	return data, nil
}

// exchangeAttempts bounds store retries during a chain handoff,
// mirroring the §3.2 attempt cap.
const exchangeAttempts = 3

// exchange persists a tier's output and reads it back (the CouchDB
// round-trip of §3.3). Store faults are retried with the respawn
// cadence and ultimately degrade to the in-memory value.
func (r *Runtime) exchange(ctx context.Context, key string, output []byte) ([]byte, error) {
	defer taskTraceFrom(ctx).stages().track(stats.StageDataIO)()
	var lastErr error
	for attempt := 0; attempt < exchangeAttempts; attempt++ {
		if attempt > 0 && r.cfg.RespawnDelay > 0 {
			sleepCtx(ctx, r.cfg.RespawnDelay)
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if _, lastErr = r.db.Force(key, output); lastErr != nil {
			continue
		}
		doc, err := r.db.Get(key)
		if err != nil {
			lastErr = err
			continue
		}
		return doc.Body, nil
	}
	// The store stayed faulty: hand the data off in memory rather than
	// failing a chain whose compute already succeeded.
	r.stats.storeDegraded.Add(1)
	return output, nil
}

// FanOut invokes one function over many inputs concurrently (intra-task
// parallelism, §3.2) and returns outputs in input order.
func (r *Runtime) FanOut(ctx context.Context, name string, inputs [][]byte) ([][]byte, error) {
	outs := make([][]byte, len(inputs))
	errs := make([]error, len(inputs))
	var wg sync.WaitGroup
	for i, in := range inputs {
		i, in := i, in
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := r.Invoke(ctx, name, in)
			outs[i], errs[i] = res.Output, err
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return outs, nil
}

// Close stops accepting invocations and tears down warm instances.
func (r *Runtime) Close() {
	if !r.closed.CompareAndSwap(false, true) {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, list := range r.warm {
		for _, inst := range list {
			inst.dead = true
			if inst.timer != nil {
				inst.timer.Stop()
			}
		}
	}
	r.warm = map[string][]*instance{}
}

func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}
