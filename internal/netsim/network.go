package netsim

import (
	"hivemind/internal/sim"
)

// Config captures the testbed's network parameters (§2.1) plus the
// acceleration state.
type Config struct {
	// WirelessBps is the aggregate edge<->cloud wireless capacity in
	// bytes/s. The paper's two 867 Mbps routers give ~216.75 MB/s.
	WirelessBps float64
	// PerDeviceBps caps a single device's radio rate (MU-MIMO per-client
	// rate), bytes/s.
	PerDeviceBps float64
	// CloudBps is the intra-cluster fabric capacity in bytes/s
	// (12 servers × 10 GbE into a 40 Gbps ToR; the ToR is the binding
	// constraint for cross-server traffic).
	CloudBps float64
	// WirelessPropS is the one-way edge<->cloud propagation + MAC delay.
	WirelessPropS float64
	// CloudPropS is the one-way server<->server delay (software stack).
	CloudPropS float64

	// Software protocol processing costs (host network stack + RPC
	// marshalling), removed by the FPGA offload:
	ProcPerMsgS float64 // fixed per-message cost, seconds
	ProcPerMBS  float64 // size-dependent cost, seconds per MB

	// RPCAccel enables the FPGA RPC/NIC offload of §4.5: per-message
	// processing drops to AccelPerMsgS and cloud propagation to
	// AccelCloudPropS (2.1 µs RTT → ~1.05 µs one-way).
	RPCAccel        bool
	AccelPerMsgS    float64
	AccelCloudPropS float64
}

// DefaultConfig returns the testbed calibration.
func DefaultConfig() Config {
	return Config{
		WirelessBps:     216.75e6, // 2 × 867 Mbps in bytes/s
		PerDeviceBps:    50e6,     // single-client MU-MIMO share
		CloudBps:        5e9,      // 40 Gbps ToR
		WirelessPropS:   0.004,    // WiFi MAC + air
		CloudPropS:      25e-6,    // kernel TCP stack, same ToR
		ProcPerMsgS:     0.0012,   // socket + RPC marshalling per message
		ProcPerMBS:      0.0004,   // copies, checksums
		AccelPerMsgS:    3e-7,     // FPGA pipeline per message
		AccelCloudPropS: 4.3e-7,   // UPI + wire, same ToR
	}
}

// Network combines the wireless access medium and the cloud fabric and
// applies protocol processing overheads. It reports per-transfer
// breakdowns so experiments can attribute latency to the network stage.
type Network struct {
	eng      *sim.Engine
	cfg      Config
	Wireless *Medium
	Cloud    *Medium
}

// NewNetwork builds the network substrate.
func NewNetwork(eng *sim.Engine, cfg Config) *Network {
	return &Network{
		eng:      eng,
		cfg:      cfg,
		Wireless: NewMedium(eng, cfg.WirelessBps, cfg.PerDeviceBps),
		Cloud:    NewMedium(eng, cfg.CloudBps, 1.25e9/2), // ~10GbE NIC cap per flow
	}
}

// Config returns the active configuration.
func (n *Network) Config() Config { return n.cfg }

// SetRPCAccel toggles the FPGA RPC offload at runtime.
func (n *Network) SetRPCAccel(on bool) { n.cfg.RPCAccel = on }

// ScaleWireless multiplies the wireless capacity (scalability sweeps
// scale links proportionately to swarm size).
func (n *Network) ScaleWireless(factor float64) {
	n.Wireless.SetCapacity(n.cfg.WirelessBps * factor)
}

// TransferInfo reports where a transfer's time went.
type TransferInfo struct {
	Bytes     float64
	QueueingS sim.Time // time on the shared medium (serialization + congestion)
	ProcS     sim.Time // protocol processing at both endpoints
	PropS     sim.Time // propagation
	TotalS    sim.Time
}

// procCost returns the protocol-processing time for one message of the
// given size, honouring acceleration.
func (n *Network) procCost(bytes float64) sim.Time {
	if n.cfg.RPCAccel {
		return n.cfg.AccelPerMsgS
	}
	return n.cfg.ProcPerMsgS + n.cfg.ProcPerMBS*bytes/1e6
}

// EdgeToCloud moves bytes from a device to the cluster (or back — the
// wireless hop is symmetric). done receives the latency breakdown.
func (n *Network) EdgeToCloud(bytes float64, done func(TransferInfo)) {
	start := n.eng.Now()
	proc := n.procCost(bytes) * 2 // sender + receiver stacks
	prop := n.cfg.WirelessPropS
	n.eng.Defer(proc, func() {
		n.Wireless.Transfer(bytes, func(f *Flow) {
			n.eng.Defer(prop, func() {
				info := TransferInfo{
					Bytes:     bytes,
					QueueingS: f.Duration(),
					ProcS:     proc,
					PropS:     prop,
					TotalS:    n.eng.Now() - start,
				}
				if done != nil {
					done(info)
				}
			})
		})
	})
}

// CloudToCloud moves bytes between two servers through the ToR.
func (n *Network) CloudToCloud(bytes float64, done func(TransferInfo)) {
	start := n.eng.Now()
	proc := n.procCost(bytes) * 2
	prop := n.cfg.CloudPropS
	if n.cfg.RPCAccel {
		prop = n.cfg.AccelCloudPropS
	}
	n.eng.Defer(proc, func() {
		n.Cloud.Transfer(bytes, func(f *Flow) {
			n.eng.Defer(prop, func() {
				info := TransferInfo{
					Bytes:     bytes,
					QueueingS: f.Duration(),
					ProcS:     proc,
					PropS:     prop,
					TotalS:    n.eng.Now() - start,
				}
				if done != nil {
					done(info)
				}
			})
		})
	})
}

// RPCRoundTrip models a small request/response pair between cloud
// servers and returns its modelled latency synchronously (no queueing:
// used for microbenchmark calibration, §4.5).
func (n *Network) RPCRoundTrip(reqBytes, respBytes float64) sim.Time {
	oneWay := func(b float64) sim.Time {
		prop := n.cfg.CloudPropS
		if n.cfg.RPCAccel {
			prop = n.cfg.AccelCloudPropS
		}
		return n.procCost(b)*2 + prop + b/n.Cloud.Capacity()
	}
	return oneWay(reqBytes) + oneWay(respBytes)
}
