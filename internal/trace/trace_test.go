package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestRecorderCollectsAndOrders(t *testing.T) {
	r := NewRecorder(0)
	r.Add(Span{Name: "b", Track: "drone-1", StartS: 2, EndS: 3})
	r.Add(Span{Name: "a", Track: "drone-0", StartS: 1, EndS: 2, Category: "network"})
	if r.Len() != 2 {
		t.Fatalf("len = %d", r.Len())
	}
	spans := r.Spans()
	if spans[0].Name != "a" || spans[1].Name != "b" {
		t.Fatalf("order: %+v", spans)
	}
}

func TestRecorderRejectsInvalid(t *testing.T) {
	r := NewRecorder(0)
	r.Add(Span{Name: "", Track: "x", StartS: 0, EndS: 1})
	r.Add(Span{Name: "x", Track: "", StartS: 0, EndS: 1})
	r.Add(Span{Name: "x", Track: "x", StartS: 2, EndS: 1})
	r.Mark(Instant{Name: ""})
	if r.Len() != 0 {
		t.Fatalf("invalid spans accepted: %d", r.Len())
	}
}

func TestRecorderLimitAndDrops(t *testing.T) {
	r := NewRecorder(2)
	for i := 0; i < 5; i++ {
		r.Add(Span{Name: "s", Track: "t", StartS: float64(i), EndS: float64(i) + 1})
	}
	if r.Len() != 2 || r.Dropped() != 3 {
		t.Fatalf("len=%d dropped=%d", r.Len(), r.Dropped())
	}
}

// TestRecorderInstantLimitAndDrops is the regression test for Mark
// growing without bound: instants must honour the same retention limit
// and dropped accounting as spans.
func TestRecorderInstantLimitAndDrops(t *testing.T) {
	r := NewRecorder(2)
	for i := 0; i < 5; i++ {
		r.Mark(Instant{Name: "fail", Track: "t", AtS: float64(i)})
	}
	if r.InstantsLen() != 2 || r.DroppedInstants() != 3 {
		t.Fatalf("instants=%d dropped=%d, want 2/3", r.InstantsLen(), r.DroppedInstants())
	}
	// Spans and instants are limited independently.
	r.Add(Span{Name: "s", Track: "t", StartS: 0, EndS: 1})
	if r.Len() != 1 || r.Dropped() != 0 {
		t.Fatalf("span accounting disturbed: len=%d dropped=%d", r.Len(), r.Dropped())
	}
}

func TestRecorderDisable(t *testing.T) {
	r := NewRecorder(0)
	r.SetEnabled(false)
	r.Add(Span{Name: "s", Track: "t", StartS: 0, EndS: 1})
	r.Mark(Instant{Name: "m", AtS: 1})
	if r.Len() != 0 {
		t.Fatal("disabled recorder recorded")
	}
}

func TestChromeTraceExport(t *testing.T) {
	r := NewRecorder(0)
	r.Add(Span{Name: "task", Category: "execution", Track: "drone-0",
		StartS: 1.5, EndS: 2.0, Args: map[string]string{"app": "S1"}})
	r.Add(Span{Name: "upload", Category: "network", Track: "server-0", StartS: 1.0, EndS: 1.4})
	r.Mark(Instant{Name: "device-failure", Track: "drone-0", AtS: 3.0})
	r.Mark(Instant{Name: "repartition", AtS: 3.5, Global: true})

	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("output is not a JSON array: %v", err)
	}
	// 2 thread_name metadata + 2 spans + 2 instants.
	if len(events) != 6 {
		t.Fatalf("events = %d", len(events))
	}
	var sawMeta, sawSpan, sawInstant bool
	for _, ev := range events {
		switch ev["ph"] {
		case "M":
			sawMeta = true
		case "X":
			sawSpan = true
			if ev["name"] == "task" {
				if ev["ts"].(float64) != 1.5e6 || ev["dur"].(float64) != 0.5e6 {
					t.Fatalf("span timing: %v", ev)
				}
			}
		case "i":
			sawInstant = true
		}
	}
	if !sawMeta || !sawSpan || !sawInstant {
		t.Fatalf("missing event kinds: meta=%v span=%v instant=%v", sawMeta, sawSpan, sawInstant)
	}
}

// TestChromeTraceGolden pins the exact serialised output: metadata
// lanes in sorted track order with stable ids, span/instant field
// layout, track-less instants on TID 0, and the in-band truncation
// marker with dropped-span/instant accounting. Any format drift —
// intentional or not — shows up as a byte diff here.
func TestChromeTraceGolden(t *testing.T) {
	r := NewRecorder(2)
	// Tracks arrive in non-sorted order; lanes must still come out sorted.
	r.Add(Span{Name: "exec", Category: "execution", Track: "runtime",
		StartS: 0.5, EndS: 1.5, Args: map[string]string{"trace": "t-1"}})
	r.Add(Span{Name: "serve", Category: "network", Track: "gateway", StartS: 0, EndS: 2})
	r.Add(Span{Name: "over", Track: "gateway", StartS: 2, EndS: 3}) // beyond limit: dropped
	r.Mark(Instant{Name: "failover", AtS: 1.25, Global: true})      // track-less: TID 0
	r.Mark(Instant{Name: "elected", Track: "ctrl", AtS: 0.25})
	r.Mark(Instant{Name: "late", AtS: 9}) // beyond limit: dropped

	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	want := `[{"name":"thread_name","ph":"M","ts":0,"pid":1,"tid":1,"args":{"name":"ctrl"}},` +
		`{"name":"thread_name","ph":"M","ts":0,"pid":1,"tid":2,"args":{"name":"gateway"}},` +
		`{"name":"thread_name","ph":"M","ts":0,"pid":1,"tid":3,"args":{"name":"runtime"}},` +
		`{"name":"exec","cat":"execution","ph":"X","ts":500000,"dur":1000000,"pid":1,"tid":3,"args":{"trace":"t-1"}},` +
		`{"name":"serve","cat":"network","ph":"X","ts":0,"dur":2000000,"pid":1,"tid":2},` +
		`{"name":"failover","ph":"i","ts":1250000,"pid":1,"tid":0,"s":"g"},` +
		`{"name":"elected","ph":"i","ts":250000,"pid":1,"tid":1,"s":"t"},` +
		`{"name":"trace truncated","ph":"i","ts":2000000,"pid":1,"tid":0,"s":"g",` +
		`"args":{"dropped_instants":"1","dropped_spans":"1"}}]` + "\n"
	if got := buf.String(); got != want {
		t.Fatalf("golden mismatch:\n got: %s\nwant: %s", got, want)
	}
}

// A complete trace must not carry the truncation marker: the golden
// shape of the pre-existing export is dropped-accounting free.
func TestChromeTraceNoTruncationMarkerWhenComplete(t *testing.T) {
	r := NewRecorder(0)
	r.Add(Span{Name: "s", Track: "t", StartS: 0, EndS: 1})
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "trace truncated") {
		t.Fatalf("complete trace carries truncation marker: %s", buf.String())
	}
}

func TestSummary(t *testing.T) {
	r := NewRecorder(0)
	r.Add(Span{Name: "a", Category: "network", Track: "t", StartS: 0, EndS: 2})
	r.Add(Span{Name: "b", Category: "network", Track: "t", StartS: 2, EndS: 3})
	r.Add(Span{Name: "c", Track: "t", StartS: 0, EndS: 1})
	s := r.Summary()
	if !strings.Contains(s, "network") || !strings.Contains(s, "2 spans") {
		t.Fatalf("summary = %q", s)
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRecorder(0)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Add(Span{Name: "s", Track: "t", StartS: 0, EndS: 1})
			}
		}()
	}
	wg.Wait()
	if r.Len() != 1600 {
		t.Fatalf("len = %d", r.Len())
	}
}
