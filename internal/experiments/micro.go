package experiments

import (
	"hivemind/internal/accel"
	"hivemind/internal/apps"
	"hivemind/internal/platform"
	"hivemind/internal/stats"
)

func init() {
	register("ubench-rpc", "§4.5 microbenchmark: accelerated RPC round-trip latency and per-core throughput", ubenchRPC)
	register("ubench-monitor", "§4.7 microbenchmark: monitoring-system overhead on tail latency and throughput", ubenchMonitor)
}

// ubenchRPC reproduces the §4.5 numbers: "2.1us round trip latencies
// between cloud servers connected to the same ToR switch, and a max
// throughput with a single CPU core of 12.4Mrps for 64B RPCs".
func ubenchRPC(cfg RunConfig) *Report {
	rep := &Report{ID: "ubench-rpc", Title: "FPGA RPC fabric microbenchmark (§4.5)"}
	fab := accel.NewFabric()
	tb := stats.NewTable("§4.5: offloaded RPC fabric",
		"msg_bytes", "rtt_us", "throughput_Mrps_per_core")
	for _, size := range []float64{64, 256, 1024, 4096, 65536} {
		rtt := fab.RPCRoundTripS(size) * 1e6
		thr := fab.RPCThroughputRps(size) / 1e6
		tb.AddRow(size, rtt, thr)
	}
	rep.Tables = append(rep.Tables, tb)
	rep.SetValue("rtt64_us", fab.RPCRoundTripS(64)*1e6)
	rep.SetValue("rps64_M", fab.RPCThroughputRps(64)/1e6)

	// Software path for contrast.
	swCfg := accel.SoftConfig{CCIPBatch: 1, TxQueues: 1, RxQueues: 1, QueueDepth: 64, ActiveFlows: 1}
	if err := fab.ApplySoft(swCfg); err != nil {
		rep.AddNote("soft reconfig failed: %v", err)
	}
	rep.SetValue("rps64_M_unbatched", fab.RPCThroughputRps(64)/1e6)
	rep.AddNote("64B RPCs: %.2fµs RTT, %.1f Mrps/core (paper: 2.1µs, 12.4 Mrps)",
		rep.Value("rtt64_us"), rep.Value("rps64_M_unbatched"))
	return rep
}

// ubenchMonitor reproduces the §4.7 check: the monitoring system has
// "no meaningful impact on performance; less than 0.1% on tail latency,
// and less than 0.15% on throughput".
func ubenchMonitor(cfg RunConfig) *Report {
	rep := &Report{ID: "ubench-monitor", Title: "Monitoring overhead (§4.7)"}
	p, _ := apps.ByID(apps.S1FaceRecognition) // cloud-placed under HiveMind
	overheads := []float64{0, 0.001}
	type perf struct{ p99, throughput float64 }
	runs := mapPar(cfg, len(overheads), func(i int) perf {
		opts := platform.Preset(platform.HiveMind, defaultDevices, cfg.Seed)
		opts.FaasCfg.MonitoringOverhead = overheads[i]
		res := platform.NewSystem(opts).RunJob(p, jobDuration(cfg))
		return perf{res.Latency.Percentile(99), float64(res.Completed) / jobDuration(cfg)}
	})
	offP99, offThr := runs[0].p99, runs[0].throughput
	onP99, onThr := runs[1].p99, runs[1].throughput
	tb := stats.NewTable("§4.7: monitoring overhead",
		"monitoring", "p99_s", "throughput_tps")
	tb.AddRow("off", offP99, offThr)
	tb.AddRow("on", onP99, onThr)
	rep.Tables = append(rep.Tables, tb)
	latPct := (onP99 - offP99) / offP99 * 100
	thrPct := (offThr - onThr) / offThr * 100
	rep.SetValue("tail_overhead_pct", latPct)
	rep.SetValue("throughput_overhead_pct", thrPct)
	rep.AddNote("monitoring adds %.3f%% to p99 and costs %.3f%% throughput (paper: <0.1%% and <0.15%%)", latPct, thrPct)
	return rep
}
