// Package chaos is a deterministic fault-injection layer for the real
// execution substrate. The HiveMind paper's fault-tolerance claims
// (§3.2 respawn-on-failure, §4.6 straggler mitigation and failure
// recovery) are modelled probabilistically in internal/faas; this
// package lets the *live* stack — the framed RPC framework, the
// serverless runtime, and the revisioned store — experience the same
// failure modes on real connections so the hardened client (retries,
// deadlines, circuit breaking, reconnect) can be exercised end-to-end.
//
// Everything is seeded: given the same seed and the same sequence of
// operations, an Injector makes the same fault decisions, so chaos
// tests are reproducible under -race and in CI.
//
// Two consumption styles are provided:
//
//   - transport wrapping: WrapConn/WrapListener interpose on a
//     net.Conn/net.Listener and inject connection drops, latency
//     spikes, one-way partitions, and truncated frames at the byte
//     level — the RPC framework on top sees only what a flaky edge
//     network would produce;
//   - direct injection: store writes and runtime invocations consult
//     Fault(op) before doing work, standing in for a crashed container
//     or an unavailable database node.
package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// ErrInjected is the root of every injected failure, so tests and
// callers can errors.Is their way to "this was chaos, not a real bug".
var ErrInjected = errors.New("chaos: injected fault")

// Direction selects which half of a duplex connection a partition
// blackholes.
type Direction int

const (
	// Inbound blackholes reads: bytes from the peer never arrive.
	Inbound Direction = 1 << iota
	// Outbound blackholes writes: bytes to the peer vanish (the write
	// "succeeds" so the sender cannot tell, exactly like a one-way
	// network partition).
	Outbound
	// Both partitions the connection completely.
	Both = Inbound | Outbound
)

// Config sets the per-operation fault probabilities. All probabilities
// are in [0,1] and evaluated independently per I/O operation (or per
// Fault call). The zero Config injects nothing.
type Config struct {
	// DropProb closes the connection mid-operation (a crashed peer or a
	// reset path). Reads fail immediately; writes fail after the drop.
	DropProb float64
	// DelayProb stalls an operation by a latency spike drawn uniformly
	// from [DelayMin, DelayMax].
	DelayProb float64
	DelayMin  time.Duration
	DelayMax  time.Duration
	// TruncateProb writes only a prefix of the buffer and then drops the
	// connection, producing a torn frame on the peer's read side.
	TruncateProb float64
	// FailProb makes Fault(op) return an injected error (used by the
	// store and runtime for non-transport faults such as a killed
	// container or a refused database write).
	FailProb float64
}

// Injector makes seeded fault decisions and wraps transports.
// It is safe for concurrent use.
type Injector struct {
	mu  sync.Mutex
	rng *rand.Rand
	cfg Config

	partition Direction
	pairParts map[string]bool // canonical pair key -> partitioned
	partCh    chan struct{}   // closed to release blocked readers on Heal

	// script, when non-empty, overrides probabilities for Fault: each
	// call pops one decision. Deterministic tests prefer scripts.
	script []bool

	// timed holds one-shot faults armed by At: op -> earliest fire time.
	timed map[string]time.Time

	// bursts holds one-shot arrival bursts armed by Burst: op -> fire
	// time and size.
	bursts map[string]burstArm

	// storm is the latency-spike window armed by LatencyStorm.
	storm stormArm

	faults   int
	delays   int
	drops    int
	truncs   int
	faultsOp map[string]int
}

// NewInjector returns an injector with the given seed and config.
func NewInjector(seed int64, cfg Config) *Injector {
	return &Injector{
		rng:      rand.New(rand.NewSource(seed)),
		cfg:      cfg,
		partCh:   make(chan struct{}),
		faultsOp: map[string]int{},
	}
}

// SetConfig replaces the fault probabilities (e.g. to stop injecting
// after a test's chaos phase).
func (in *Injector) SetConfig(cfg Config) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.cfg = cfg
}

// Script queues explicit Fault decisions: true injects a fault, false
// lets the operation through. Once the script drains, probabilistic
// behaviour resumes. Scripting makes "fail the first N calls, then
// succeed" tests exactly reproducible.
func (in *Injector) Script(decisions ...bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.script = append(in.script, decisions...)
}

// At arms a one-shot fault for op: the first Fault(op) call at or after
// now+after injects, then the trigger disarms. Unlike Script it targets
// a point in time rather than a call ordinal, which is what scheduled
// kills need (e.g. controller.KillControllerOp mid-chain: the primary
// consults Fault every lease round, and the round that crosses the
// deadline crashes it). after <= 0 fires on the very next call. Re-arm
// by calling At again; Disarm cancels.
func (in *Injector) At(op string, after time.Duration) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.timed == nil {
		in.timed = map[string]time.Time{}
	}
	in.timed[op] = time.Now().Add(after)
}

// Disarm cancels a pending At trigger for op.
func (in *Injector) Disarm(op string) {
	in.mu.Lock()
	defer in.mu.Unlock()
	delete(in.timed, op)
	delete(in.bursts, op)
}

// BurstOp names the arrival-burst fault for a traffic source, the
// overload-scenario counterpart of controller.KillControllerOp: arm it
// with Burst and the source consults BurstSize each arrival tick.
func BurstOp(source string) string { return "burst/" + source }

// burstArm is one pending arrival burst.
type burstArm struct {
	at time.Time
	n  int
}

// stormArm is the latency-spike storm window.
type stormArm struct {
	from, until time.Time
	min, max    time.Duration
}

// Burst arms a one-shot arrival burst for op: the first BurstSize(op)
// call at or after now+after returns n, then the trigger disarms. A
// traffic source (e.g. the open-loop load generator) consults
// BurstSize every arrival tick and emits that many extra requests at
// once — a reproducible flash crowd at a scheduled instant, the
// overload analogue of scheduling a kill with At. Re-arm by calling
// Burst again; Disarm cancels.
func (in *Injector) Burst(op string, after time.Duration, n int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.bursts == nil {
		in.bursts = map[string]burstArm{}
	}
	in.bursts[op] = burstArm{at: time.Now().Add(after), n: n}
}

// BurstSize pops a fired burst for op: it returns the armed size the
// first time it is consulted at or after the burst's fire time, and 0
// otherwise. Fired bursts count as faults for op (FaultCount).
func (in *Injector) BurstSize(op string) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	b, ok := in.bursts[op]
	if !ok || time.Now().Before(b.at) {
		return 0
	}
	delete(in.bursts, op)
	in.faults++
	in.faultsOp[op]++
	return b.n
}

// LatencyStorm arms a latency-spike window on every wrapped
// connection: from now+after until now+after+dur, each I/O operation
// stalls by a spike drawn uniformly from [min, max] (seeded, so the
// storm's exact delays are reproducible). It models the §4.6
// congestion transient a swarm sees when a shared uplink saturates —
// every flow slows at once, unlike DelayProb's independent jitter.
func (in *Injector) LatencyStorm(after, dur, min, max time.Duration) {
	in.mu.Lock()
	defer in.mu.Unlock()
	from := time.Now().Add(after)
	in.storm = stormArm{from: from, until: from.Add(dur), min: min, max: max}
}

// Partition blackholes the given direction(s) on every wrapped
// connection until Heal is called. Blocked reads park until healed or
// the connection closes.
func (in *Injector) Partition(d Direction) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.partition = d
}

// Heal clears every partition — global and pair-wise — and wakes
// blocked readers.
func (in *Injector) Heal() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.partition = 0
	in.pairParts = nil
	close(in.partCh)
	in.partCh = make(chan struct{})
}

// pairKey canonicalises an unordered endpoint pair.
func pairKey(a, b string) string {
	if b < a {
		a, b = b, a
	}
	return a + "|" + b
}

// PartitionPair blackholes the link between the two named endpoints on
// every connection wrapped with WrapConnPair for that pair, in both
// directions, until HealPair or Heal: writes vanish (they "succeed",
// exactly like packets dropped in flight) and reads park. Other pairs
// keep flowing, so a test can cut one replica off from a quorum while
// the majority side keeps talking — the classic minority-partition
// split-brain setup.
func (in *Injector) PartitionPair(a, b string) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.pairParts == nil {
		in.pairParts = map[string]bool{}
	}
	in.pairParts[pairKey(a, b)] = true
}

// HealPair reconnects one endpoint pair and wakes its blocked readers.
func (in *Injector) HealPair(a, b string) {
	in.mu.Lock()
	defer in.mu.Unlock()
	delete(in.pairParts, pairKey(a, b))
	close(in.partCh)
	in.partCh = make(chan struct{})
}

// PairPartitioned reports whether the link between a and b is cut.
func (in *Injector) PairPartitioned(a, b string) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.pairParts[pairKey(a, b)]
}

// Stats reports how many faults of each kind were injected.
type Stats struct {
	Faults    int // Fault(op) errors
	Delays    int
	Drops     int
	Truncates int
}

// Stats returns a snapshot of the injected-fault counters.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return Stats{Faults: in.faults, Delays: in.delays, Drops: in.drops, Truncates: in.truncs}
}

// FaultCount returns how many faults were injected for a given op.
func (in *Injector) FaultCount(op string) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.faultsOp[op]
}

// Fault decides whether the named operation fails. It returns nil to
// let the operation proceed, or an error wrapping ErrInjected. Store
// writes and runtime invocations call this before doing real work.
func (in *Injector) Fault(op string) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	inject := false
	if at, ok := in.timed[op]; ok && !time.Now().Before(at) {
		inject = true
		delete(in.timed, op)
	} else if len(in.script) > 0 {
		inject = in.script[0]
		in.script = in.script[1:]
	} else if in.cfg.FailProb > 0 {
		inject = in.rng.Float64() < in.cfg.FailProb
	}
	if !inject {
		return nil
	}
	in.faults++
	in.faultsOp[op]++
	return fmt.Errorf("%w: %s", ErrInjected, op)
}

// decide draws the per-I/O fault decisions under the lock.
func (in *Injector) decide() (drop, truncate bool, delay time.Duration, part Direction, partCh chan struct{}) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if s := in.storm; !s.from.IsZero() {
		if now := time.Now(); !now.Before(s.from) && now.Before(s.until) {
			delay = s.min
			if span := s.max - s.min; span > 0 {
				delay += time.Duration(in.rng.Int63n(int64(span)))
			}
			in.delays++
		}
	}
	if delay == 0 && in.cfg.DelayProb > 0 && in.rng.Float64() < in.cfg.DelayProb {
		span := in.cfg.DelayMax - in.cfg.DelayMin
		d := in.cfg.DelayMin
		if span > 0 {
			d += time.Duration(in.rng.Int63n(int64(span)))
		}
		delay = d
		in.delays++
	}
	if in.cfg.TruncateProb > 0 && in.rng.Float64() < in.cfg.TruncateProb {
		truncate = true
		in.truncs++
	} else if in.cfg.DropProb > 0 && in.rng.Float64() < in.cfg.DropProb {
		drop = true
		in.drops++
	}
	return drop, truncate, delay, in.partition, in.partCh
}

// WrapConn interposes the injector on a connection.
func (in *Injector) WrapConn(c net.Conn) net.Conn {
	return &conn{Conn: c, in: in, closed: make(chan struct{})}
}

// WrapConnPair interposes the injector on a connection and tags it
// with the unordered endpoint pair (a, b), making it subject to
// PartitionPair in addition to every global fault. Wrapping the
// dialing side of a duplex link is enough for a symmetric cut: its
// writes vanish and its reads park, so neither direction delivers.
func (in *Injector) WrapConnPair(c net.Conn, a, b string) net.Conn {
	return &conn{Conn: c, in: in, pair: pairKey(a, b), closed: make(chan struct{})}
}

// WrapListener interposes the injector on every accepted connection.
func (in *Injector) WrapListener(l net.Listener) net.Listener {
	return &listener{Listener: l, in: in}
}

type listener struct {
	net.Listener
	in *Injector
}

func (l *listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.in.WrapConn(c), nil
}

// conn is the fault-injecting connection wrapper.
type conn struct {
	net.Conn
	in   *Injector
	pair string // canonical pair key ("" when not pair-tagged)

	closeOnce sync.Once
	closed    chan struct{}
}

func (c *conn) Close() error {
	var err error
	c.closeOnce.Do(func() {
		close(c.closed)
		err = c.Conn.Close()
	})
	return err
}

// await sleeps for d but returns early if the connection closes.
func (c *conn) await(d time.Duration) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-c.closed:
	}
}

// blockWhilePartitioned parks until the partition heals or the
// connection closes; reports whether the connection closed.
func (c *conn) blockWhilePartitioned(dir Direction) bool {
	for {
		c.in.mu.Lock()
		part := c.in.partition
		ch := c.in.partCh
		c.in.mu.Unlock()
		if part&dir == 0 {
			return false
		}
		select {
		case <-ch: // healed; re-check
		case <-c.closed:
			return true
		}
	}
}

// pairCut reports whether this connection's pair is partitioned, with
// the heal channel to wait on.
func (c *conn) pairCut() (bool, chan struct{}) {
	if c.pair == "" {
		return false, nil
	}
	c.in.mu.Lock()
	defer c.in.mu.Unlock()
	return c.in.pairParts[c.pair], c.in.partCh
}

// blockWhilePairCut parks until this connection's pair heals or the
// connection closes; reports whether the connection closed.
func (c *conn) blockWhilePairCut() bool {
	for {
		cut, ch := c.pairCut()
		if !cut {
			return false
		}
		select {
		case <-ch: // a heal happened; re-check this pair
		case <-c.closed:
			return true
		}
	}
}

func (c *conn) Read(p []byte) (int, error) {
	drop, _, delay, part, _ := c.in.decide()
	if part&Inbound != 0 {
		if c.blockWhilePartitioned(Inbound) {
			return 0, fmt.Errorf("%w: read on dropped connection", ErrInjected)
		}
	}
	if c.blockWhilePairCut() {
		return 0, fmt.Errorf("%w: read on dropped connection", ErrInjected)
	}
	c.await(delay)
	if drop {
		c.Close()
		return 0, fmt.Errorf("%w: connection dropped on read", ErrInjected)
	}
	return c.Conn.Read(p)
}

func (c *conn) Write(p []byte) (int, error) {
	drop, truncate, delay, part, _ := c.in.decide()
	c.await(delay)
	if part&Outbound != 0 {
		// One-way partition: the write vanishes but "succeeds" — the
		// sender cannot distinguish this from slow delivery.
		return len(p), nil
	}
	if cut, _ := c.pairCut(); cut {
		return len(p), nil // pair cut: the bytes drop in flight
	}
	if truncate && len(p) > 1 {
		n, _ := c.Conn.Write(p[:len(p)/2])
		c.Close()
		return n, fmt.Errorf("%w: frame truncated after %d bytes", ErrInjected, n)
	}
	if drop {
		c.Close()
		return 0, fmt.Errorf("%w: connection dropped on write", ErrInjected)
	}
	return c.Conn.Write(p)
}
