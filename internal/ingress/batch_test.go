package ingress

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hivemind/internal/rpc"
)

// envelopeDispatcher serves batch envelopes and singletons the way a
// gateway with ExposeBatch does, counting wire-level calls.
type envelopeDispatcher struct {
	calls   atomic.Uint64
	batches atomic.Uint64
	fail    func(method string) error // per-entry failure injection
}

func (d *envelopeDispatcher) Call(_ context.Context, method string, payload []byte) ([]byte, error) {
	d.calls.Add(1)
	serve := func(m string, p []byte) ([]byte, error) {
		if d.fail != nil {
			if err := d.fail(m); err != nil {
				return nil, err
			}
		}
		return append([]byte(m+"="), p...), nil
	}
	if method != rpc.BatchMethod {
		return serve(method, payload)
	}
	d.batches.Add(1)
	entries, err := rpc.DecodeBatch(payload)
	if err != nil {
		return nil, err
	}
	replies := make([]rpc.BatchReply, len(entries))
	for i, e := range entries {
		body, err := serve(e.Method, e.Payload)
		if err != nil {
			replies[i] = rpc.BatchReply{Err: err.Error()}
		} else {
			replies[i] = rpc.BatchReply{Body: body}
		}
	}
	return rpc.EncodeBatchReplies(replies), nil
}

func TestBatcherCoalescesCallsIntoOneEnvelope(t *testing.T) {
	d := &envelopeDispatcher{}
	var sent uint64
	b := newBatcher(d, BatchOptions{Window: 20 * time.Millisecond, MaxEntries: 8}, nil, &sent)
	defer b.close()

	const n = 8 // == MaxEntries: size-triggered flush, no window wait
	out := make([]string, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, err := b.Call(context.Background(), "work", []byte{byte('a' + i)})
			out[i], errs[i] = string(body), err
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("entry %d: %v", i, errs[i])
		}
		want := "work=" + string([]byte{byte('a' + i)})
		if out[i] != want {
			t.Fatalf("entry %d: %q, want %q", i, out[i], want)
		}
	}
	if got := d.calls.Load(); got != 1 {
		t.Fatalf("wire calls = %d, want 1 envelope", got)
	}
	if d.batches.Load() != 1 || atomic.LoadUint64(&b.batches) != 1 {
		t.Fatalf("envelopes: wire %d, batcher %d, want 1/1", d.batches.Load(), b.batches)
	}
}

func TestBatcherWindowFlushesPartialBatch(t *testing.T) {
	d := &envelopeDispatcher{}
	var sent uint64
	b := newBatcher(d, BatchOptions{Window: 10 * time.Millisecond, MaxEntries: 100}, nil, &sent)
	defer b.close()

	// A lone call under the entry threshold flushes on the window and
	// skips the envelope entirely.
	body, err := b.Call(context.Background(), "solo", []byte("x"))
	if err != nil || string(body) != "solo=x" {
		t.Fatalf("solo call: %q, %v", body, err)
	}
	if d.batches.Load() != 0 {
		t.Fatal("single entry should bypass the batch envelope")
	}
	if d.calls.Load() != 1 {
		t.Fatalf("wire calls = %d, want 1", d.calls.Load())
	}
}

func TestBatcherPreservesTypedErrorsPerEntry(t *testing.T) {
	d := &envelopeDispatcher{fail: func(m string) error {
		if m == "busy" {
			return rpc.ShedError(100 * time.Millisecond)
		}
		return nil
	}}
	var sent uint64
	b := newBatcher(d, BatchOptions{Window: 10 * time.Millisecond, MaxEntries: 2}, nil, &sent)
	defer b.close()

	var okBody []byte
	var okErr, shedErr error
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); okBody, okErr = b.Call(context.Background(), "fine", []byte("p")) }()
	go func() { defer wg.Done(); _, shedErr = b.Call(context.Background(), "busy", []byte("q")) }()
	wg.Wait()

	if okErr != nil || string(okBody) != "fine=p" {
		t.Fatalf("healthy entry: %q, %v", okBody, okErr)
	}
	if shedErr == nil || !rpc.IsShed(shedErr) {
		t.Fatalf("shed entry error %v does not parse as shed", shedErr)
	}
	if _, ok := rpc.ShedRetryAfter(shedErr); !ok {
		t.Fatalf("shed entry lost its retry-after hint: %v", shedErr)
	}
}

func TestBatcherBigPayloadsBypassViaServer(t *testing.T) {
	// Through the Server: payloads over MaxEntryBytes skip the batcher.
	d := &envelopeDispatcher{}
	s, err := NewServer(Options{
		Dispatcher: d,
		Batch:      BatchOptions{Window: 5 * time.Millisecond, MaxEntryBytes: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	big := make([]byte, 64)
	j, _, err := s.submit("huge", coalesceKey("huge", big), big)
	if err != nil {
		t.Fatal(err)
	}
	<-j.done
	if j.err != nil {
		t.Fatal(j.err)
	}
	if d.batches.Load() != 0 {
		t.Fatal("oversized payload went through the batch envelope")
	}
}
