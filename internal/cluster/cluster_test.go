package cluster

import (
	"testing"

	"hivemind/internal/sim"
)

func TestNewClusterSizing(t *testing.T) {
	e := sim.NewEngine(1)
	c := New(e, DefaultConfig())
	if len(c.Servers()) != 12 {
		t.Fatalf("servers = %d", len(c.Servers()))
	}
	// 40 cores - 4 network-stack cores = 36 usable per server.
	if c.TotalCores() != 12*36 {
		t.Fatalf("total cores = %d", c.TotalCores())
	}
	if c.Server(0).FreeMemGB() != 192 {
		t.Fatalf("free mem = %g", c.Server(0).FreeMemGB())
	}
}

func TestAccelFreesNetworkCores(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := DefaultConfig()
	cfg.NetStackCoresPerServer = 0 // FPGA offload active
	c := New(e, cfg)
	if c.TotalCores() != 12*40 {
		t.Fatalf("total cores with accel = %d", c.TotalCores())
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	New(sim.NewEngine(1), Config{})
}

func TestLeastLoadedPrefersFreeCores(t *testing.T) {
	e := sim.NewEngine(1)
	c := New(e, Config{Servers: 3, CoresPerServer: 4, MemGBPerServer: 8})
	// Load server 0 fully, server 1 partially.
	for i := 0; i < 4; i++ {
		c.Server(0).Cores().Use(100, nil)
	}
	c.Server(1).Cores().Use(100, nil)
	if got := c.LeastLoaded(); got.ID != 2 {
		t.Fatalf("least loaded = %d, want 2", got.ID)
	}
}

func TestLeastLoadedSkipsProbation(t *testing.T) {
	e := sim.NewEngine(1)
	c := New(e, Config{Servers: 2, CoresPerServer: 4, MemGBPerServer: 8})
	c.Server(0).Probation(60)
	if got := c.LeastLoaded(); got.ID != 1 {
		t.Fatalf("picked probated server %d", got.ID)
	}
	// All probated: fall back rather than fail.
	c.Server(1).Probation(60)
	if got := c.LeastLoaded(); got == nil {
		t.Fatal("no server returned when all on probation")
	}
	// Probation expires with time.
	e.RunUntil(61)
	if c.Server(0).OnProbation() {
		t.Fatal("probation did not expire")
	}
}

func TestMemoryReservation(t *testing.T) {
	e := sim.NewEngine(1)
	c := New(e, Config{Servers: 1, CoresPerServer: 2, MemGBPerServer: 10})
	s := c.Server(0)
	if !s.ReserveMemGB(6) {
		t.Fatal("first reservation failed")
	}
	if s.ReserveMemGB(6) {
		t.Fatal("over-reservation succeeded")
	}
	s.ReleaseMemGB(6)
	if s.FreeMemGB() != 10 {
		t.Fatalf("free mem = %g", s.FreeMemGB())
	}
}

func TestMemoryOverReleasePanics(t *testing.T) {
	e := sim.NewEngine(1)
	c := New(e, Config{Servers: 1, CoresPerServer: 2, MemGBPerServer: 10})
	defer func() {
		if recover() == nil {
			t.Error("no panic on over-release")
		}
	}()
	c.Server(0).ReleaseMemGB(1)
}

func TestUtilizationAndMean(t *testing.T) {
	e := sim.NewEngine(1)
	c := New(e, Config{Servers: 2, CoresPerServer: 4, MemGBPerServer: 8})
	c.Server(0).Cores().Use(10, nil)
	c.Server(0).Cores().Use(10, nil)
	if got := c.Server(0).Utilization(); got != 0.5 {
		t.Fatalf("utilization = %g", got)
	}
	if got := c.MeanUtilization(); got != 0.25 {
		t.Fatalf("mean utilization = %g", got)
	}
}

func TestReservedPoolQueues(t *testing.T) {
	e := sim.NewEngine(1)
	p := NewReservedPool(e, 2)
	if p.Size() != 2 {
		t.Fatalf("size = %d", p.Size())
	}
	done := 0
	for i := 0; i < 5; i++ {
		p.Cores().Use(1, func() { done++ })
	}
	if p.QueueLen() != 3 {
		t.Fatalf("queue = %d, want 3", p.QueueLen())
	}
	e.Run()
	if done != 5 {
		t.Fatalf("done = %d", done)
	}
	// 5 jobs × 1s on 2 cores: makespan 3s.
	if e.Now() != 3 {
		t.Fatalf("makespan = %g", e.Now())
	}
}
