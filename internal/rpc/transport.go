package rpc

import "context"

// Transport is the minimal per-link calling surface every data-plane
// fast path implements, so the live stack can select the best
// transport per link without changing call sites:
//
//   - *Ring: the in-process shared-memory ring for co-located tiers —
//     no serialization, no syscalls, sub-microsecond round trips
//     (the software realization of the paper's §4.4 shared-memory
//     communication between functions on one node);
//   - *Stream: one logical stream multiplexed over a shared TCP
//     connection with writev buffer lending (the §4.5 RPC offload
//     stand-in);
//   - *Client: a whole framed connection (stream 0).
//
// Hardened layers (ReliableClient, FailoverClient) wrap a Transport's
// failure modes rather than implementing it: they add retries,
// reconnects and routing on top.
type Transport interface {
	// Call performs a blocking call bounded by ctx.
	Call(ctx context.Context, method string, payload []byte) ([]byte, error)
	// CallSync performs a blocking call with no deadline.
	CallSync(method string, payload []byte) ([]byte, error)
	// Ping round-trips a transport health probe.
	Ping(ctx context.Context) error
	// Healthy reports whether the transport can still carry calls.
	Healthy() bool
	// Close tears the transport down (for a Stream: releases only the
	// stream, the shared connection stays up).
	Close() error
}

var (
	_ Transport = (*Client)(nil)
	_ Transport = (*Stream)(nil)
	_ Transport = (*Ring)(nil)
)
