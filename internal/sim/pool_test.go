package sim

import "testing"

// drainPool returns an engine whose next schedule reuses recycled
// events: run one throwaway event through the loop so the pool holds at
// least one recycled struct.
func primePool(e *Engine) {
	e.Defer(0, func() {})
	e.RunUntil(e.Now())
}

// TestCancelledTimerEventIsReused pins the pooling contract for the
// cancel path: a cancelled event is recycled once popped, and the stale
// Timer handle must go inert — it cannot cancel whatever event next
// occupies the recycled struct.
func TestCancelledTimerEventIsReused(t *testing.T) {
	e := NewEngine(1)
	tm := e.At(1, func() { t.Fatal("cancelled event fired") })
	if !tm.Cancel() {
		t.Fatal("Cancel reported false for a pending timer")
	}
	// Pop (and recycle) the cancelled event.
	e.RunUntil(2)
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d after drain, want 0", e.Pending())
	}

	// Schedule new work; with a single-threaded engine the pool hands
	// back the recycled struct. The stale handle must stay inert either
	// way — gen guards correctness even if the pool misses.
	fired := false
	e.At(3, func() { fired = true })
	if tm.Cancel() {
		t.Fatal("stale Timer cancelled a recycled event")
	}
	if !tm.Stopped() {
		t.Fatal("cancelled timer lost its Stopped state")
	}
	e.RunUntil(4)
	if !fired {
		t.Fatal("new event did not fire — stale handle corrupted it")
	}
}

// TestFiredTimerHandleIsInert: after an event fires and its struct is
// recycled into a new schedule, Cancel via the old handle must be a
// no-op and report false.
func TestFiredTimerHandleIsInert(t *testing.T) {
	e := NewEngine(1)
	tm := e.At(1, func() {})
	e.RunUntil(2)
	if tm.Cancel() {
		t.Fatal("Cancel reported true for an already-fired timer")
	}
	fired := false
	e.At(3, func() { fired = true })
	if tm.Cancel() {
		t.Fatal("stale fired-timer handle cancelled a recycled event")
	}
	e.RunUntil(4)
	if !fired {
		t.Fatal("recycled event did not fire")
	}
}

// TestPendingAccountsCancelledEvents: Pending counts cancelled events
// until they are popped, and drops to zero once the loop drains them.
func TestPendingAccountsCancelledEvents(t *testing.T) {
	e := NewEngine(1)
	var tms []*Timer
	for i := 1; i <= 5; i++ {
		tms = append(tms, e.At(Time(i), func() {}))
	}
	if e.Pending() != 5 {
		t.Fatalf("Pending() = %d, want 5", e.Pending())
	}
	tms[1].Cancel()
	tms[3].Cancel()
	if e.Pending() != 5 {
		t.Fatalf("Pending() = %d after cancels, want 5 (cancelled events stay queued)", e.Pending())
	}
	if n := e.RunUntil(3); n != 2 {
		t.Fatalf("executed %d events to t=3, want 2 (one cancelled)", n)
	}
	if e.Pending() != 2 {
		t.Fatalf("Pending() = %d at t=3, want 2", e.Pending())
	}
	e.Run()
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d after drain, want 0", e.Pending())
	}
}

// TestSelfCancelDuringDispatchIsNoop: a callback cancelling its own
// timer mid-dispatch must report false and not disturb the loop.
func TestSelfCancelDuringDispatchIsNoop(t *testing.T) {
	e := NewEngine(1)
	var tm *Timer
	ran := false
	tm = e.At(1, func() {
		ran = true
		if tm.Cancel() {
			t.Error("self-cancel during dispatch reported true")
		}
	})
	e.Run()
	if !ran {
		t.Fatal("event did not run")
	}
}

// TestScheduleFireLoopAllocs asserts the steady-state allocation budget
// of the schedule-fire hot loop: with pooled events, a Defer round trip
// is allocation-free and an After round trip costs at most the Timer
// handle (≤1 alloc/op).
func TestScheduleFireLoopAllocs(t *testing.T) {
	e := NewEngine(1)
	primePool(e)

	var step func()
	step = func() { e.Defer(0.001, step) }
	step()
	e.RunUntil(e.Now() + 1)
	allocs := testing.AllocsPerRun(2000, func() {
		e.RunUntil(e.Now() + 0.001)
	})
	if allocs > 0.1 {
		t.Fatalf("Defer schedule-fire loop allocates %.2f/op, want ~0", allocs)
	}

	e2 := NewEngine(2)
	primePool(e2)
	var step2 func()
	step2 = func() { e2.After(0.001, step2) }
	step2()
	e2.RunUntil(e2.Now() + 1)
	allocs = testing.AllocsPerRun(2000, func() {
		e2.RunUntil(e2.Now() + 0.001)
	})
	if allocs > 1.1 {
		t.Fatalf("After schedule-fire loop allocates %.2f/op, want <=1", allocs)
	}
}

// TestHeapOrderAfterPooling re-checks time ordering with interleaved
// cancels and reuse, exercising the hand-rolled sift paths.
func TestHeapOrderAfterPooling(t *testing.T) {
	e := NewEngine(1)
	var fired []Time
	// Two rounds so round two runs entirely on recycled events.
	for round := 0; round < 2; round++ {
		base := e.Now()
		var cancels []*Timer
		for i := 0; i < 50; i++ {
			at := base + Time((i*37)%50)/10
			tm := e.At(at, func() { fired = append(fired, e.Now()) })
			if i%5 == 0 {
				cancels = append(cancels, tm)
			}
		}
		for _, tm := range cancels {
			tm.Cancel()
		}
		e.RunUntil(base + 10)
	}
	if len(fired) != 2*40 {
		t.Fatalf("fired %d events, want 80", len(fired))
	}
	for i := 1; i < len(fired); i++ {
		if fired[i] < fired[i-1] {
			t.Fatalf("out-of-order firing at %d: %g < %g", i, fired[i], fired[i-1])
		}
	}
}
