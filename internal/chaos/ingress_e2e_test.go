package chaos_test

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hivemind/internal/chaos"
	"hivemind/internal/controller"
	"hivemind/internal/ingress"
	"hivemind/internal/rpc"
	"hivemind/internal/runtime"
	"hivemind/internal/store"
)

// This file is the ingress acceptance suite: the HTTP job API fronting
// a 3-replica queue group, driven open-loop at 2× sustained capacity
// with the controller primary killed mid-run. Result ids are durable
// task ids, so the invariant under test is end-to-end exactly-once:
// every POSTed id resolves to exactly one outcome via GET /then/:id —
// completed jobs committed their final step exactly once (RevGen 1),
// shed jobs answer 503 with a Retry-After hint, and coalesced
// duplicates share one id and one result.

// ingMount lets the httptest listener exist before the ingress Server
// it delegates to (the queue group needs every member's URL up front).
type ingMount struct {
	p atomic.Pointer[ingress.Server]
}

func (m *ingMount) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s := m.p.Load()
	if s == nil {
		http.Error(w, "ingress not ready", http.StatusServiceUnavailable)
		return
	}
	s.ServeHTTP(w, r)
}

func (m *ingMount) depth() int {
	if s := m.p.Load(); s != nil {
		return s.Depth()
	}
	return 0
}

type ingNode struct {
	id      int
	replica *controller.Replica
	rt      *runtime.Runtime
	gw      *runtime.Gateway
	ing     *ingress.Server
	url     string
	fc      *rpc.FailoverClient
}

// startIngressCluster boots n controller replicas over one shared
// durable store, each fronting a gateway (durable "work" chain behind
// admission control) and an ingress server. The n ingresses form a
// queue group over each other's URLs; each dispatches through its own
// leader-following failover client, so jobs ingested anywhere execute
// on the controller primary and survive its death by redirect +
// checkpoint dedup.
func startIngressCluster(t *testing.T, n int, seed int64, mon *controller.Monitor,
	inj *chaos.Injector, db *store.DB, maxConc int, exec time.Duration) []*ingNode {
	t.Helper()
	ctrlLns := make([]net.Listener, n)
	ctrlAddrs := make([]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ctrlLns[i] = ln
		ctrlAddrs[i] = ln.Addr().String()
	}

	mounts := make([]*ingMount, n)
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		mounts[i] = &ingMount{}
		ts := httptest.NewServer(mounts[i])
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}

	nodes := make([]*ingNode, n)
	gwAddrs := make([]string, n)
	gwLns := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		gwLns[i] = ln
		gwAddrs[i] = ln.Addr().String()
	}

	for i := 0; i < n; i++ {
		rcfg := runtime.DefaultConfig()
		rcfg.Retries = 0
		rcfg.MaxInFlight = 4 * maxConc
		rt := runtime.New(rcfg, db)
		rt.Register("step", func(ctx context.Context, in []byte) ([]byte, error) {
			select {
			case <-time.After(exec):
				return append(append([]byte{}, in...), ".s"...), nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		})

		var gwPtr atomic.Pointer[runtime.Gateway]
		ccfg := fastCtrlConfig(i, n, seed)
		ccfg.Fault = inj
		ccfg.InitialTerm = db.Fence()
		ccfg.Recover = func(ctx context.Context) (int, error) {
			if g := gwPtr.Load(); g != nil {
				return g.Recover(ctx)
			}
			return 0, nil
		}
		ccfg.OnPromote = func(term uint64) { db.RaiseFence(term) }
		peers := make(map[int]func() (net.Conn, error), n-1)
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			addr := ctrlAddrs[j]
			peers[j] = func() (net.Conn, error) { return net.Dial("tcp", addr) }
		}
		rep := controller.NewReplica(ccfg, peers, mon)

		gcfg := runtime.DefaultGatewayConfig()
		gcfg.Timeout = 5 * time.Second
		gcfg.RespawnDelay = gwRespawnDelay
		gcfg.Checkpoints = store.NewFencedCheckpointLog(db, rep.LeaderTerm)
		gcfg.Admission = rep.Admission()
		gcfg.Tracker = rep
		gcfg.OnFenced = rep.StepDown
		gcfg.Overload = &runtime.AdmissionConfig{
			MaxConcurrent: maxConc,
			QueueLen:      2 * maxConc,
			RetryAfter:    25 * time.Millisecond,
		}
		g := runtime.NewGatewayConfig(rt, gcfg)
		g.ExposeChain("work", []string{"step"})
		g.ExposeBatch()
		gwPtr.Store(g)
		go g.Server().Serve(gwLns[i])
		go rep.Server().Serve(ctrlLns[i])
		// A dead controller takes its gateway down with it: callers see a
		// transport failure and sweep, not a stale self-redirect.
		go func() {
			for rep.State() != controller.Dead {
				time.Sleep(2 * time.Millisecond)
			}
			g.Close()
		}()

		// Endpoints in replica-id order on every node: NotLeaderError
		// redirects name the leader by id, which doubles as the index
		// into this list.
		fc := rpc.DialFailover(gwAddrs, rpc.FailoverOptions{
			Callers:      1024,
			Attempts:     12,
			RetryBackoff: 10 * time.Millisecond,
			CallTimeout:  3 * time.Second,
			Budget:       rpc.NewRetryBudget(rpc.DefaultRetryBudgetRatio, 256),
		})

		members := make([]ingress.Member, n)
		for j := 0; j < n; j++ {
			j := j
			members[j] = ingress.Member{
				ID:    fmt.Sprintf("ing-%d", j),
				URL:   urls[j],
				Self:  j == i,
				Depth: mounts[j].depth,
			}
		}
		ing, err := ingress.NewServer(ingress.Options{
			Dispatcher: fc,
			Encode:     runtime.EncodeTask,
			Lookup:     g.TaskResult,
			Group:      ingress.NewQueueGroup(members, ingress.GroupOptions{SpillDepth: 4 * maxConc}),
			Timeout:    8 * time.Second,
			TTL:        5 * time.Minute,
		})
		if err != nil {
			t.Fatal(err)
		}
		mounts[i].p.Store(ing)

		nodes[i] = &ingNode{id: i, replica: rep, rt: rt, gw: g, ing: ing, url: urls[i], fc: fc}
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.replica.Kill()
			nd.ing.Close()
			nd.fc.Close()
			nd.gw.Close()
			nd.rt.Close()
		}
	})
	for _, nd := range nodes {
		nd.replica.Start()
	}
	return nodes
}

func waitIngPrimary(t *testing.T, nodes []*ingNode, timeout time.Duration) *ingNode {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		for _, nd := range nodes {
			if nd.replica.State() == controller.Leader {
				return nd
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("no primary elected")
	return nil
}

// httpDo POSTs one job and returns (status, resultID, retryAfter).
func httpDo(client *http.Client, base, job, payload, query string) (int, string, error) {
	url := base + "/do/" + job
	if query != "" {
		url += "?" + query
	}
	resp, err := client.Post(url, "application/octet-stream", strings.NewReader(payload))
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return resp.StatusCode, "", err
	}
	// The minted id rides the header on both async and ?then=true
	// responses (the async body carries it as JSON too).
	return resp.StatusCode, resp.Header.Get(ingress.ResultIDHeader), nil
}

// httpThen collects one result id: (status, body, retryAfter header).
func httpThen(client *http.Client, base, id string) (int, string, string, error) {
	resp, err := client.Get(base + "/then/" + id)
	if err != nil {
		return 0, "", "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, "", "", err
	}
	return resp.StatusCode, string(b), resp.Header.Get("Retry-After"), nil
}

// Acceptance: async jobs POSTed open-loop at 2× capacity into a
// 3-member queue group survive a mid-run primary kill — every id
// resolves exactly once, sheds carry Retry-After, duplicates coalesce.
func TestIngressE2EAsyncJobsSurvivePrimaryKill(t *testing.T) {
	const (
		replicas = 3
		maxConc  = 8
		exec     = 10 * time.Millisecond
		runFor   = 3 * time.Second
		dupEvery = 5 // every 5th POST reuses the same payload
	)
	mon := controller.NewMonitor()
	inj := chaos.NewInjector(7, chaos.Config{})
	db := store.NewDB()
	nodes := startIngressCluster(t, replicas, 7, mon, inj, db, maxConc, exec)
	primary := waitIngPrimary(t, nodes, 3*time.Second)

	client := &http.Client{
		Timeout: 15 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        1024,
			MaxIdleConnsPerHost: 512,
			MaxConnsPerHost:     1024,
			IdleConnTimeout:     30 * time.Second,
		},
	}

	// Closed-loop capacity through the whole stack (HTTP → group →
	// failover → durable chain), unique payloads so nothing coalesces.
	capacity := func() float64 {
		const window = 700 * time.Millisecond
		var done atomic.Int64
		ctx, cancel := context.WithTimeout(context.Background(), window)
		defer cancel()
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < 2*maxConc; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; ctx.Err() == nil; i++ {
					status, _, err := httpDo(client, nodes[w%replicas].url, "work",
						fmt.Sprintf("cal-%d-%d", w, i), "then=true")
					if err == nil && status == http.StatusOK {
						done.Add(1)
					}
				}
			}(w)
		}
		wg.Wait()
		return float64(done.Load()) / time.Since(start).Seconds()
	}()
	if capacity <= 0 {
		t.Fatal("calibration produced no capacity")
	}
	rate := 2 * capacity
	interval := time.Duration(float64(time.Second) / rate)
	t.Logf("capacity %.0f rps, offering %.0f rps", capacity, rate)

	// Open-loop POST phase: arrivals on a fixed schedule regardless of
	// completions, primary killed halfway through.
	type posted struct {
		id      string
		payload string
	}
	var (
		mu      sync.Mutex
		results []posted
		postErr atomic.Int64
		wg      sync.WaitGroup
	)
	start := time.Now()
	end := start.Add(runFor)
	killed := false
	for i := 0; ; i++ {
		at := start.Add(time.Duration(i) * interval)
		if at.After(end) {
			break
		}
		if d := time.Until(at); d > 0 {
			time.Sleep(d)
		}
		if !killed && time.Since(start) >= runFor/2 {
			inj.At(controller.KillControllerOp(primary.id), 0)
			killed = true
		}
		payload := fmt.Sprintf("u-%d", i)
		if i%dupEvery == 0 {
			payload = "dup-payload"
		}
		wg.Add(1)
		go func(i int, payload string) {
			defer wg.Done()
			status, id, err := httpDo(client, nodes[i%replicas].url, "work", payload, "")
			if err != nil || status != http.StatusOK || id == "" {
				postErr.Add(1)
				return
			}
			mu.Lock()
			results = append(results, posted{id: id, payload: payload})
			mu.Unlock()
		}(i, payload)
	}
	wg.Wait()
	if !killed {
		t.Fatal("kill was never scheduled")
	}
	if len(results) == 0 {
		t.Fatal("no POST succeeded")
	}
	if pe := postErr.Load(); pe > int64(len(results)/10) {
		t.Fatalf("%d/%d POSTs failed at the HTTP layer", pe, pe+int64(len(results)))
	}

	// Drain: all ingesses finish their in-flight dispatches.
	drainDeadline := time.Now().Add(20 * time.Second)
	for {
		pending := 0
		for _, nd := range nodes {
			pending += nd.ing.Stats().Pending
		}
		if pending == 0 {
			break
		}
		if time.Now().After(drainDeadline) {
			t.Fatalf("%d jobs still pending after drain window", pending)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Collect phase: every id must resolve somewhere in the group —
	// owners answer from memory, everyone else from durable state.
	collect := func(id string) (int, string, string) {
		for _, nd := range nodes {
			status, body, ra, err := httpThen(client, nd.url, id)
			if err == nil && status != http.StatusNotFound {
				return status, body, ra
			}
		}
		return http.StatusNotFound, "", ""
	}

	byID := map[string]string{} // id → payload
	for _, p := range results {
		if prev, ok := byID[p.id]; ok && prev != p.payload {
			t.Fatalf("id %s shared by different payloads %q and %q", p.id, prev, p.payload)
		}
		byID[p.id] = p.payload
	}

	var okN, shedN, failN int
	sem := make(chan struct{}, 32)
	var cmu sync.Mutex
	var cwg sync.WaitGroup
	for id, payload := range byID {
		cwg.Add(1)
		go func(id, payload string) {
			defer cwg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			status, body, ra := collect(id)
			cmu.Lock()
			defer cmu.Unlock()
			switch status {
			case http.StatusOK:
				okN++
				if want := payload + ".s"; body != want {
					t.Errorf("id %s resolved %q, want %q", id, body, want)
				}
				// Exactly-once: the chain's final step output committed in
				// exactly one store revision, dispatch retries and failover
				// re-execution included.
				doc, err := db.Get(store.StepOutputKey(id, 0))
				if err != nil {
					t.Errorf("id %s has no durable step output: %v", id, err)
				} else if gen := store.RevGen(doc.Rev); gen != 1 {
					t.Errorf("id %s step output committed %d times", id, gen)
				}
			case http.StatusServiceUnavailable:
				shedN++
				if ra == "" {
					t.Errorf("id %s shed without a Retry-After hint", id)
				}
			case http.StatusNotFound:
				t.Errorf("id %s resolved nowhere in the group", id)
			default:
				failN++
			}
		}(id, payload)
	}
	cwg.Wait()
	t.Logf("ids %d | ok %d shed %d failed %d | posts %d (coalesced into %d ids)",
		len(byID), okN, shedN, failN, len(results), len(byID))

	if okN == 0 {
		t.Fatal("no job completed")
	}
	if failN > len(byID)/10 {
		t.Fatalf("%d/%d ids resolved as hard failures", failN, len(byID))
	}

	// Coalescing: duplicate-payload POSTs overlapped under 2× load, so
	// dup-payload submissions must have shared ids.
	dupIDs := map[string]bool{}
	var dupPosts int
	for _, p := range results {
		if p.payload == "dup-payload" {
			dupPosts++
			dupIDs[p.id] = true
		}
	}
	if dupPosts > 1 && len(dupIDs) >= dupPosts {
		t.Fatalf("%d duplicate POSTs produced %d distinct ids: nothing coalesced", dupPosts, len(dupIDs))
	}
	var coalesced uint64
	for _, nd := range nodes {
		coalesced += nd.ing.Stats().Coalesced
	}
	if coalesced == 0 {
		t.Fatal("group-wide coalesced counter is zero")
	}

	// Duplicate collection is idempotent: the same id yields identical
	// bytes again.
	for id, payload := range byID {
		if status, body, _ := collect(id); status == http.StatusOK {
			if body != payload+".s" {
				t.Fatalf("re-collect of %s diverged: %q", id, body)
			}
			break
		}
	}
	waitFailover(t, mon, 5*time.Second)
}
