package rpc

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// ReliableOptions tunes the hardened client.
type ReliableOptions struct {
	// Callers sizes each underlying connection's caller pool.
	Callers int
	// CallTimeout bounds each individual attempt (0: only the caller's
	// ctx bounds it).
	CallTimeout time.Duration
	// Retry schedules re-attempts after transport failures.
	Retry RetryPolicy
	// IdempotentAll declares every method safe to retry. When false,
	// only methods listed via MarkIdempotent are retried once the
	// request may have reached the server; transport failures that
	// occurred before the request was written are always retryable.
	IdempotentAll bool
	// Breaker sheds load after consecutive failures.
	Breaker BreakerConfig
	// HeartbeatInterval enables liveness pings on the active connection
	// (0: disabled). A ping that misses HeartbeatTimeout tears the
	// connection down so the next call reconnects.
	HeartbeatInterval time.Duration
	HeartbeatTimeout  time.Duration
	// Seed makes backoff jitter reproducible (0: wall-clock seed).
	Seed int64
	// Observer, when non-nil, is installed on every underlying
	// connection (initial and reconnects) to time each RPC hop.
	Observer CallObserver
	// Budget, when non-nil, bounds retry amplification: each retry
	// withdraws one token, each success deposits the budget's earn
	// ratio. Share one budget across every retry layer of a process
	// (reliable retries, failover sweeps, gateway respawns) so stacked
	// layers cannot multiply attempts during an outage.
	Budget *RetryBudget
}

// DefaultReliableOptions returns the hardened-edge defaults: the §3.2
// respawn cadence for retries, a 3-beat heartbeat (the controller marks
// devices failed after 3 missed 1 s beats, §4.6), and a breaker that
// opens after 5 consecutive failures.
func DefaultReliableOptions() ReliableOptions {
	return ReliableOptions{
		Callers:           64,
		Retry:             DefaultRetryPolicy(),
		Breaker:           BreakerConfig{Threshold: 5, Cooldown: time.Second},
		HeartbeatInterval: time.Second,
		HeartbeatTimeout:  3 * time.Second,
	}
}

// ReliableStats counts the hardened client's recovery actions.
type ReliableStats struct {
	Calls      int
	Retries    int
	Reconnects int
	Rejected   int // shed by the open breaker
	// Shed counts server-side shed responses (rpc.IsShed): the server
	// refused the work to protect its SLO. Not a failure — the breaker
	// does not count it — and never retried in the same call.
	Shed int
	// BudgetDenied counts retries the shared RetryBudget refused.
	BudgetDenied int
}

// ReliableClient wraps the single-connection Client with the machinery
// the live substrate needs to survive the failure modes internal/faas
// only simulates: per-call deadlines, retry with exponential backoff
// and jitter, idempotency guards, heartbeat-driven reconnect, and a
// circuit breaker. It is safe for concurrent use.
type ReliableClient struct {
	dial    func() (net.Conn, error)
	opts    ReliableOptions
	breaker *Breaker

	mu      sync.Mutex
	cur     *Client
	rng     *rand.Rand
	idem    map[string]bool
	closed  bool
	hbStop  chan struct{}
	stats   ReliableStats
	statsMu sync.Mutex
}

// NewReliableClient builds a hardened client over a dial function
// (called for the initial connection and on every reconnect).
func NewReliableClient(dial func() (net.Conn, error), opts ReliableOptions) *ReliableClient {
	if opts.Callers <= 0 {
		opts.Callers = 64
	}
	seed := opts.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &ReliableClient{
		dial:    dial,
		opts:    opts,
		breaker: NewBreaker(opts.Breaker, nil),
		rng:     rand.New(rand.NewSource(seed)),
		idem:    map[string]bool{},
	}
}

// DialReliable returns a hardened client for a TCP server address.
func DialReliable(addr string, opts ReliableOptions) *ReliableClient {
	return NewReliableClient(func() (net.Conn, error) {
		return net.Dial("tcp", addr)
	}, opts)
}

// MarkIdempotent declares methods safe to retry even when a prior
// attempt may have executed server-side.
func (rc *ReliableClient) MarkIdempotent(methods ...string) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	for _, m := range methods {
		rc.idem[m] = true
	}
}

// Breaker exposes the client's circuit breaker (for observability).
func (rc *ReliableClient) Breaker() *Breaker { return rc.breaker }

// Stats returns a snapshot of the recovery counters.
func (rc *ReliableClient) Stats() ReliableStats {
	rc.statsMu.Lock()
	defer rc.statsMu.Unlock()
	return rc.stats
}

func (rc *ReliableClient) bump(f func(*ReliableStats)) {
	rc.statsMu.Lock()
	f(&rc.stats)
	rc.statsMu.Unlock()
}

// client returns a healthy connection, dialing a fresh one if needed.
func (rc *ReliableClient) client() (*Client, error) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.closed {
		return nil, ErrClosed
	}
	if rc.cur != nil && rc.cur.Healthy() {
		return rc.cur, nil
	}
	conn, err := rc.dial()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", errReconnect, err)
	}
	if rc.cur != nil {
		rc.cur.Close()
		rc.bump(func(s *ReliableStats) { s.Reconnects++ })
	}
	rc.cur = NewClient(conn, rc.opts.Callers)
	if rc.opts.Observer != nil {
		rc.cur.SetObserver(rc.opts.Observer)
	}
	if rc.opts.HeartbeatInterval > 0 {
		if rc.hbStop != nil {
			close(rc.hbStop)
		}
		rc.hbStop = make(chan struct{})
		go rc.heartbeat(rc.cur, rc.hbStop)
	}
	return rc.cur, nil
}

// heartbeat pings cl until it dies or stop closes; a missed beat tears
// the connection down so the next Call reconnects.
func (rc *ReliableClient) heartbeat(cl *Client, stop chan struct{}) {
	interval := rc.opts.HeartbeatInterval
	timeout := rc.opts.HeartbeatTimeout
	if timeout <= 0 {
		timeout = 3 * interval
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
		}
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		err := cl.Ping(ctx)
		cancel()
		if err != nil && !cl.Healthy() {
			return // connection already torn down
		}
		if err != nil {
			cl.Close() // missed beat: declare the connection dead
			return
		}
	}
}

// errReconnect marks a dial failure: the request was never sent, so a
// retry is always safe regardless of idempotency.
var errReconnect = errors.New("rpc: reconnect failed")

// retryable reports whether err may be retried for the given method.
// Application errors (ServerError) prove execution and are never
// retried; transport errors are retried only when the method is
// idempotent, because the request may have executed before the
// connection died. Dial failures never reached the server and are
// always retryable.
func (rc *ReliableClient) retryable(method string, err error) bool {
	var se ServerError
	if errors.As(err, &se) {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	if errors.Is(err, errReconnect) {
		return true
	}
	if rc.opts.IdempotentAll {
		return true
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.idem[method]
}

// Call performs a hardened call: breaker admission, per-attempt
// timeout, and retry with backoff+jitter on transport failures of
// idempotent methods. ctx bounds the whole call including backoffs.
func (rc *ReliableClient) Call(ctx context.Context, method string, payload []byte) ([]byte, error) {
	rc.bump(func(s *ReliableStats) { s.Calls++ })
	var lastErr error
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return nil, fmt.Errorf("%w (last attempt: %v)", err, lastErr)
			}
			return nil, err
		}
		if err := rc.breaker.Allow(); err != nil {
			rc.bump(func(s *ReliableStats) { s.Rejected++ })
			return nil, err
		}
		out, err := rc.attempt(ctx, method, payload)
		var se ServerError
		switch {
		case err == nil:
			rc.breaker.Record(true)
			rc.opts.Budget.Success()
			return out, nil
		case IsShed(err):
			// The server shed the request to protect its SLO: it never
			// executed, and the server is alive — an overload signal, not
			// a health signal. The breaker must not count it as a failure
			// (a shedding server would otherwise trip breakers fleet-wide
			// and turn recovery into a thundering herd), and retrying
			// inside this call would amplify the very overload being
			// shed; the retry-after hint is for the caller's next offer.
			rc.breaker.Drop()
			rc.bump(func(s *ReliableStats) { s.Shed++ })
			return nil, err
		case errors.As(err, &se):
			// The handler executed and replied: the connection is
			// healthy, even though the application call failed.
			rc.breaker.Record(true)
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			rc.breaker.Drop()
		default:
			rc.breaker.Record(false)
		}
		lastErr = err
		if attempt >= rc.opts.Retry.Max || !rc.retryable(method, err) {
			return nil, err
		}
		if !rc.opts.Budget.Withdraw() {
			rc.bump(func(s *ReliableStats) { s.BudgetDenied++ })
			return nil, budgetExhausted(lastErr)
		}
		rc.bump(func(s *ReliableStats) { s.Retries++ })
		rc.mu.Lock()
		backoff := rc.opts.Retry.Backoff(attempt, rc.rng)
		rc.mu.Unlock()
		if backoff > 0 {
			t := time.NewTimer(backoff)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return nil, fmt.Errorf("%w (last attempt: %v)", ctx.Err(), lastErr)
			}
		}
	}
}

// attempt runs one try over the current (or a fresh) connection. A
// per-attempt timeout that fires while the caller's ctx still has
// budget is reported as a plain transport error so the retry loop can
// re-attempt it.
func (rc *ReliableClient) attempt(parent context.Context, method string, payload []byte) ([]byte, error) {
	cl, err := rc.client()
	if err != nil {
		return nil, err
	}
	ctx := parent
	if rc.opts.CallTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(parent, rc.opts.CallTimeout)
		defer cancel()
	}
	out, err := cl.Call(ctx, method, payload)
	if err != nil && errors.Is(err, context.DeadlineExceeded) && parent.Err() == nil {
		return nil, fmt.Errorf("rpc: attempt timed out: %v", err)
	}
	return out, err
}

// Close tears down the active connection and stops the heartbeat.
func (rc *ReliableClient) Close() error {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.closed {
		return nil
	}
	rc.closed = true
	if rc.hbStop != nil {
		close(rc.hbStop)
		rc.hbStop = nil
	}
	if rc.cur != nil {
		return rc.cur.Close()
	}
	return nil
}
