package faas

import (
	"hivemind/internal/cluster"
	"hivemind/internal/sim"
)

// container is a warm or running function container pinned to a server.
// Two containers may share a server but never a logical core (§4.3); the
// core itself is acquired from the server's core resource per execution.
type container struct {
	fn     string
	server *cluster.Server
	memGB  float64
	// idle is the keep-alive expiry, bound once on the first put and
	// re-armed allocation-free on every park thereafter.
	idle *sim.Alarm
	dead bool
	born sim.Time
	uses int
}

// warmPool tracks idle containers per function name, with keep-alive
// expiry (§4.3: "HiveMind does not immediately terminate an idling
// container... between 10 and 30 seconds").
type warmPool struct {
	eng       *sim.Engine
	keepAlive sim.Time
	idle      map[string][]*container

	// counters
	hits    int
	misses  int
	expired int
}

func newWarmPool(eng *sim.Engine, keepAlive sim.Time) *warmPool {
	return &warmPool{eng: eng, keepAlive: keepAlive, idle: make(map[string][]*container)}
}

// take returns a warm container for fn, or nil.
func (w *warmPool) take(fn string) *container {
	list := w.idle[fn]
	for len(list) > 0 {
		c := list[len(list)-1]
		list = list[:len(list)-1]
		if c.dead {
			continue
		}
		if c.idle != nil {
			c.idle.Stop()
		}
		w.idle[fn] = list
		w.hits++
		c.uses++
		return c
	}
	w.idle[fn] = list
	w.misses++
	return nil
}

// takeSpecific removes a particular idle container from the pool,
// reporting success. Used for parent-container colocation.
func (w *warmPool) takeSpecific(c *container) bool {
	if c == nil || c.dead {
		return false
	}
	list := w.idle[c.fn]
	for i, cand := range list {
		if cand == c {
			w.idle[c.fn] = append(list[:i], list[i+1:]...)
			if c.idle != nil {
				c.idle.Stop()
			}
			w.hits++
			c.uses++
			return true
		}
	}
	return false
}

// put parks a container as idle; it self-terminates (releasing memory)
// after the keep-alive window unless taken first. A keep-alive of zero
// terminates immediately (OpenWhisk's default short-lived behaviour).
func (w *warmPool) put(c *container) {
	if c.dead {
		return
	}
	if w.keepAlive <= 0 {
		w.kill(c)
		return
	}
	w.idle[c.fn] = append(w.idle[c.fn], c)
	if c.idle == nil {
		c.idle = w.eng.NewAlarm(func() {
			w.expired++
			w.kill(c)
		})
	}
	c.idle.Set(w.keepAlive)
}

func (w *warmPool) kill(c *container) {
	if c.dead {
		return
	}
	c.dead = true
	c.server.ReleaseMemGB(c.memGB)
}

// stats returns (hits, misses, expired).
func (w *warmPool) stats() (int, int, int) { return w.hits, w.misses, w.expired }
