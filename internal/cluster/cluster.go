// Package cluster models the backend cloud: the paper's testbed is 12
// two-socket, 40-core Xeon servers with 128–256 GB RAM (§2.1). Servers
// expose cores as queued resources; containers pin to cores ("two
// containers can share a physical server, but never share a logical
// core", §4.3); memory is tracked per server; and servers can be put on
// probation when the straggler mitigation flags them (§4.6).
package cluster

import (
	"fmt"

	"hivemind/internal/sim"
)

// Config sizes the cluster.
type Config struct {
	Servers        int
	CoresPerServer int
	MemGBPerServer float64
	// NetStackCoresPerServer cores are reserved for software packet
	// processing when RPC acceleration is off; the FPGA offload frees
	// them for function execution (§4.5: "frees up a lot of CPU
	// resources, which can be used for function execution").
	NetStackCoresPerServer int
}

// DefaultConfig returns the paper's testbed.
func DefaultConfig() Config {
	return Config{Servers: 12, CoresPerServer: 40, MemGBPerServer: 192, NetStackCoresPerServer: 4}
}

// Cluster is a set of servers.
type Cluster struct {
	eng     *sim.Engine
	cfg     Config
	servers []*Server
}

// Server is one machine: a multi-core queue plus memory accounting.
type Server struct {
	ID    int
	cores *sim.Resource
	eng   *sim.Engine

	memCapGB  float64
	memUsedGB float64

	probationUntil sim.Time
	usableCores    int
}

// New builds a cluster.
func New(eng *sim.Engine, cfg Config) *Cluster {
	if cfg.Servers <= 0 || cfg.CoresPerServer <= 0 {
		panic("cluster: invalid config")
	}
	c := &Cluster{eng: eng, cfg: cfg}
	for i := 0; i < cfg.Servers; i++ {
		usable := cfg.CoresPerServer - cfg.NetStackCoresPerServer
		if usable < 1 {
			usable = 1
		}
		c.servers = append(c.servers, &Server{
			ID:          i,
			eng:         eng,
			cores:       sim.NewResource(eng, usable),
			memCapGB:    cfg.MemGBPerServer,
			usableCores: usable,
		})
	}
	return c
}

// Config returns the cluster configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Servers returns all servers.
func (c *Cluster) Servers() []*Server { return c.servers }

// Server returns server i.
func (c *Cluster) Server(i int) *Server { return c.servers[i] }

// TotalCores returns the number of usable (non-network-stack) cores.
func (c *Cluster) TotalCores() int {
	n := 0
	for _, s := range c.servers {
		n += s.usableCores
	}
	return n
}

// LeastLoaded returns the eligible server with the most free cores
// (ties: lowest ID), skipping servers on probation. If every server is
// on probation it falls back to the globally least-loaded one.
func (c *Cluster) LeastLoaded() *Server {
	pick := func(skipProbation bool) *Server {
		var best *Server
		for _, s := range c.servers {
			if skipProbation && s.OnProbation() {
				continue
			}
			if best == nil || s.FreeCores() > best.FreeCores() {
				best = s
			}
		}
		return best
	}
	if s := pick(true); s != nil {
		return s
	}
	return pick(false)
}

// MeanUtilization returns the average core utilization across servers.
func (c *Cluster) MeanUtilization() float64 {
	var sum float64
	for _, s := range c.servers {
		sum += s.Utilization()
	}
	return sum / float64(len(c.servers))
}

// Cores exposes the server's core resource for direct queueing.
func (s *Server) Cores() *sim.Resource { return s.cores }

// UsableCores returns the core count available to functions.
func (s *Server) UsableCores() int { return s.usableCores }

// FreeCores returns currently idle usable cores.
func (s *Server) FreeCores() int { return s.usableCores - s.cores.InUse() }

// Utilization returns the instantaneous busy fraction.
func (s *Server) Utilization() float64 {
	return float64(s.cores.InUse()) / float64(s.usableCores)
}

// ReserveMemGB claims memory; reports false without side effects if the
// server lacks capacity.
func (s *Server) ReserveMemGB(gb float64) bool {
	if s.memUsedGB+gb > s.memCapGB {
		return false
	}
	s.memUsedGB += gb
	return true
}

// ReleaseMemGB returns memory.
func (s *Server) ReleaseMemGB(gb float64) {
	s.memUsedGB -= gb
	if s.memUsedGB < -1e-9 {
		panic(fmt.Sprintf("cluster: server %d memory over-released", s.ID))
	}
}

// FreeMemGB returns unreserved memory.
func (s *Server) FreeMemGB() float64 { return s.memCapGB - s.memUsedGB }

// Probation marks the server ineligible for new placements until now+d
// (straggler mitigation: "that server is put on probation for a few
// minutes until its behavior recovers").
func (s *Server) Probation(d sim.Time) { s.probationUntil = s.eng.Now() + d }

// OnProbation reports whether the server is currently on probation.
func (s *Server) OnProbation() bool { return s.eng.Now() < s.probationUntil }

// ReservedPool is a fixed-size core allocation carved out of the
// cluster — the IaaS baseline ("statically provisioned cloud resources
// of equal cost"). Tasks queue FIFO on the pool.
type ReservedPool struct {
	cores *sim.Resource
	size  int
}

// NewReservedPool reserves n cores.
func NewReservedPool(eng *sim.Engine, n int) *ReservedPool {
	return &ReservedPool{cores: sim.NewResource(eng, n), size: n}
}

// Size returns the pool's core count.
func (p *ReservedPool) Size() int { return p.size }

// Cores exposes the pool's queue.
func (p *ReservedPool) Cores() *sim.Resource { return p.cores }

// QueueLen returns the number of waiting tasks.
func (p *ReservedPool) QueueLen() int { return p.cores.QueueLen() }
