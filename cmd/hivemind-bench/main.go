// Command hivemind-bench runs the full evaluation sweep (every figure
// and microbenchmark at paper-scale parameters) and writes a combined
// report suitable for EXPERIMENTS.md.
//
// The report itself is deterministic: at a fixed seed its bytes are
// identical at every -parallel setting, so CI can diff a parallel sweep
// against a serial one. Wall-clock timings go to stderr only.
//
// Usage:
//
//	hivemind-bench [-seed 1] [-quick] [-parallel 0] [-shards 0] [-run substr] [-out report.txt]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime/debug"
	"sort"

	"hivemind/internal/experiments"
)

func main() {
	// The sweep is a short-lived batch job that churns through small
	// short-lived allocations (simulation events, closures) with a tiny
	// live set (~40 MB even at the relaxed setting). Running the GC four
	// times less often buys back a third of the wall clock for pennies
	// of memory. An explicit GOGC in the environment still wins.
	if os.Getenv("GOGC") == "" {
		debug.SetGCPercent(400)
	}
	var (
		seed     = flag.Int64("seed", 1, "random seed")
		quick    = flag.Bool("quick", false, "reduced sweeps")
		parallel = flag.Int("parallel", 0, "worker goroutines (0 = all cores, 1 = serial)")
		shards   = flag.Int("shards", 0, "sharded-executive workers per simulation (0 = borrow from the sweep pool); never changes report bytes")
		run      = flag.String("run", "", "only run experiments whose ID contains this substring")
		out      = flag.String("out", "", "write the report to this file (default stdout)")
	)
	flag.Parse()

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	cfg := experiments.RunConfig{Seed: *seed, Quick: *quick, Parallelism: *parallel, Shards: *shards}
	fmt.Fprintf(w, "HiveMind evaluation sweep (seed=%d quick=%v)\n\n", *seed, *quick)
	results := experiments.RunMatching(cfg, *run)
	if len(results) == 0 {
		fmt.Fprintf(os.Stderr, "error: no experiment ID contains %q\n", *run)
		os.Exit(1)
	}
	failed := false
	for _, r := range results {
		if r.Report == nil {
			fmt.Fprintf(os.Stderr, "error: %s produced no report\n", r.Experiment.ID)
			failed = true
			continue
		}
		fmt.Fprintln(w, r.Report)
		fmt.Fprintln(w)
	}

	// Timing summary, costliest first — to stderr so the report file
	// stays byte-identical across runs and -parallel settings.
	sorted := append([]experiments.RunResult(nil), results...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Elapsed > sorted[j].Elapsed })
	fmt.Fprintf(os.Stderr, "\nper-experiment wall clock (parallel=%d):\n", *parallel)
	for _, r := range sorted {
		fmt.Fprintf(os.Stderr, "  %-14s %8.2fs\n", r.Experiment.ID, r.Elapsed.Seconds())
	}

	if failed {
		os.Exit(1)
	}
}
