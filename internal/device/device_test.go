package device

import (
	"math"
	"testing"

	"hivemind/internal/energy"
	"hivemind/internal/geo"
	"hivemind/internal/sim"
)

func TestDeviceBasics(t *testing.T) {
	e := sim.NewEngine(1)
	d := New(e, 3, DroneConfig(), nil)
	if d.Failed() || d.ID != 3 {
		t.Fatalf("fresh device state wrong: %s", d)
	}
	if d.SensorRateMBps() != 16 { // 8 fps × 2 MB
		t.Fatalf("sensor rate = %g", d.SensorRateMBps())
	}
	if d.Config().Kind.String() != "drone" {
		t.Fatalf("kind = %s", d.Config().Kind)
	}
	if RoverConfig().Kind.String() != "rover" {
		t.Fatal("rover kind string")
	}
}

func TestRunTaskAccountsComputeEnergy(t *testing.T) {
	e := sim.NewEngine(1)
	d := New(e, 0, DroneConfig(), nil)
	var out TaskOutcome
	d.RunTask(10, func(o TaskOutcome) { out = o })
	e.RunUntil(20)
	d.Settle()
	if out.Dropped || out.ExecS != 10 {
		t.Fatalf("outcome = %+v", out)
	}
	// 10s busy at 30W plus idle-CPU for the rest.
	busyJ := d.Battery.ConsumedBy(energy.LoadCompute)
	want := 10*DroneConfig().Power.ComputeBusyW + 10*DroneConfig().Power.ComputeIdleW
	if math.Abs(busyJ-want) > 1 {
		t.Fatalf("compute energy = %g, want ~%g", busyJ, want)
	}
}

func TestRunTaskQueuesAndDrops(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := DroneConfig()
	cfg.QueueLimit = 2
	d := New(e, 0, cfg, nil)
	outcomes := make([]TaskOutcome, 0, 4)
	for i := 0; i < 4; i++ {
		d.RunTask(5, func(o TaskOutcome) { outcomes = append(outcomes, o) })
	}
	e.RunUntil(30)
	if len(outcomes) != 4 {
		t.Fatalf("outcomes = %d", len(outcomes))
	}
	dropped := 0
	for _, o := range outcomes {
		if o.Dropped {
			dropped++
		}
	}
	if dropped != 2 || d.Dropped() != 2 {
		t.Fatalf("dropped = %d (device says %d), want 2", dropped, d.Dropped())
	}
	// Second accepted task queued behind the first.
	var queued bool
	for _, o := range outcomes {
		if !o.Dropped && o.QueueS > 0 {
			queued = true
		}
	}
	if !queued {
		t.Fatal("no task reported queueing delay")
	}
}

func TestBatteryDepletionFailsDevice(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := DroneConfig()
	cfg.Power.CapacityJ = 200 // tiny battery
	failed := false
	d := New(e, 0, cfg, func(*Device) { failed = true })
	d.SetMoving(true) // 50W: dies in ~4s (plus base draw)
	e.RunUntil(60)
	if !failed || !d.Failed() {
		t.Fatal("device did not fail on battery depletion")
	}
	if !d.Battery.Empty() {
		t.Fatal("battery not empty")
	}
	// Death must occur near the 200J/58W ≈ 3.5s mark, detected by the
	// periodic integrator within ~1s.
	if d.Battery.ConsumedJ() != 200 {
		t.Fatalf("consumed %g J", d.Battery.ConsumedJ())
	}
}

func TestInjectedFailureFiresOnce(t *testing.T) {
	e := sim.NewEngine(1)
	count := 0
	d := New(e, 0, DroneConfig(), func(*Device) { count++ })
	d.Fail()
	d.Fail()
	if count != 1 {
		t.Fatalf("onFailed fired %d times", count)
	}
	var out TaskOutcome
	d.RunTask(1, func(o TaskOutcome) { out = o })
	if !out.Dropped {
		t.Fatal("failed device accepted a task")
	}
}

func TestHeartbeatStopsOnFailure(t *testing.T) {
	e := sim.NewEngine(1)
	d := New(e, 0, DroneConfig(), nil)
	e.RunUntil(5.5)
	if beat := d.LastHeartbeat(); beat < 4.5 {
		t.Fatalf("last heartbeat %g, want ~5", beat)
	}
	d.Fail()
	failAt := e.Now()
	e.RunUntil(20)
	if d.LastHeartbeat() > failAt {
		t.Fatal("failed device kept beating")
	}
}

func TestAssignRegionAndSweepTime(t *testing.T) {
	e := sim.NewEngine(1)
	d := New(e, 0, DroneConfig(), nil)
	d.AssignRegion(geo.Rect{X0: 0, Y0: 0, X1: 30, Y1: 30})
	if d.SweepTimeS() <= 0 {
		t.Fatal("sweep time should be positive")
	}
	if !d.Region().Valid() {
		t.Fatal("region not stored")
	}
	// Moving for the sweep duration consumes motion energy.
	e.RunUntil(10)
	d.Settle()
	if d.Battery.ConsumedBy(energy.LoadMotion) <= 0 {
		t.Fatal("no motion energy while sweeping")
	}
}

func TestTransmitReceiveEnergy(t *testing.T) {
	e := sim.NewEngine(1)
	d := New(e, 0, DroneConfig(), nil)
	d.Transmit(10)
	d.Receive(10)
	want := 10*DroneConfig().Power.TxJPerMB + 10*DroneConfig().Power.RxJPerMB
	if got := d.Battery.ConsumedBy(energy.LoadRadio); math.Abs(got-want) > 1e-9 {
		t.Fatalf("radio energy = %g, want %g", got, want)
	}
}

func TestDistributedDrainsFasterThanCentralizedShape(t *testing.T) {
	// Fig. 14a mechanism: for a heavy job, 120s of on-board compute
	// drains more battery than 120s of shipping the same sensor data.
	runDistributed := func() float64 {
		e := sim.NewEngine(1)
		d := New(e, 0, DroneConfig(), nil)
		d.SetMoving(true)
		var submit func()
		submit = func() {
			d.RunTask(3.5, func(TaskOutcome) {})
			if e.Now() < 120 {
				e.After(1, submit)
			}
		}
		e.At(0, submit)
		e.RunUntil(120)
		d.FinishMission()
		return d.Battery.ConsumedFraction()
	}
	runCentralized := func() float64 {
		e := sim.NewEngine(1)
		d := New(e, 0, DroneConfig(), nil)
		d.SetMoving(true)
		var ship func()
		ship = func() {
			d.Transmit(8) // 8 MB/s offload
			if e.Now() < 120 {
				e.After(1, ship)
			}
		}
		e.At(0, ship)
		e.RunUntil(120)
		d.FinishMission()
		return d.Battery.ConsumedFraction()
	}
	dist, cent := runDistributed(), runCentralized()
	if dist <= cent {
		t.Fatalf("distributed %.3f should drain more than centralized %.3f", dist, cent)
	}
}

func TestFleetHelpers(t *testing.T) {
	e := sim.NewEngine(1)
	f := NewFleet(e, 4, DroneConfig(), nil)
	if f.Alive() != 4 {
		t.Fatalf("alive = %d", f.Alive())
	}
	f[1].Fail()
	if f.Alive() != 3 {
		t.Fatalf("alive after failure = %d", f.Alive())
	}
	f[0].Transmit(100)
	f.Settle()
	if f.MeanBatteryConsumed() <= 0 {
		t.Fatal("mean battery should be positive")
	}
	if f.MaxBatteryConsumed() < f.MeanBatteryConsumed() {
		t.Fatal("max < mean")
	}
	f.StopAll()
	if f[2].String() == "" {
		t.Fatal("empty device string")
	}
}
