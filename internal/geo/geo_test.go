package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPointDist(t *testing.T) {
	if d := (Point{0, 0}).Dist(Point{3, 4}); d != 5 {
		t.Fatalf("dist = %g", d)
	}
	if s := (Point{1, 2}).String(); s != "(1.0,2.0)" {
		t.Fatalf("string = %q", s)
	}
}

func TestRectBasics(t *testing.T) {
	r := NewField(120, 90)
	if r.Area() != 120*90 || r.Width() != 120 || r.Height() != 90 {
		t.Fatalf("bad field: %+v", r)
	}
	if !r.Contains(Point{60, 45}) || r.Contains(Point{120, 45}) {
		t.Fatal("contains is wrong at boundary")
	}
	if c := r.Center(); c.X != 60 || c.Y != 45 {
		t.Fatalf("center = %v", c)
	}
	if (Rect{}).Valid() {
		t.Fatal("zero rect should be invalid")
	}
}

func TestRectAdjacent(t *testing.T) {
	a := Rect{0, 0, 10, 10}
	right := Rect{10, 0, 20, 10}
	above := Rect{0, 10, 10, 20}
	diag := Rect{10, 10, 20, 20}
	far := Rect{50, 50, 60, 60}
	if !a.Adjacent(right) || !right.Adjacent(a) {
		t.Fatal("horizontally touching rects not adjacent")
	}
	if !a.Adjacent(above) {
		t.Fatal("vertically touching rects not adjacent")
	}
	if a.Adjacent(diag) {
		t.Fatal("corner-touching rects must not be adjacent")
	}
	if a.Adjacent(far) {
		t.Fatal("distant rects must not be adjacent")
	}
}

func TestPartitionCoversField(t *testing.T) {
	field := NewField(100, 100)
	for _, n := range []int{1, 2, 3, 4, 7, 14, 16, 100, 1000} {
		regions := Partition(field, n)
		if len(regions) != n {
			t.Fatalf("n=%d got %d regions", n, len(regions))
		}
		if math.Abs(TotalArea(regions)-field.Area()) > 1e-6 {
			t.Fatalf("n=%d total area %g != %g", n, TotalArea(regions), field.Area())
		}
		for i, r := range regions {
			if !r.Valid() {
				t.Fatalf("n=%d region %d invalid: %+v", n, i, r)
			}
		}
	}
}

func TestPartitionEqualAreasForSquareCounts(t *testing.T) {
	field := NewField(120, 120)
	regions := Partition(field, 16)
	want := field.Area() / 16
	for _, r := range regions {
		if math.Abs(r.Area()-want) > 1e-6 {
			t.Fatalf("region area %g != %g", r.Area(), want)
		}
	}
}

func TestPartitionPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for n=0")
		}
	}()
	Partition(NewField(1, 1), 0)
}

// Property: partition always returns n valid regions whose areas sum to
// the field area.
func TestPartitionProperty(t *testing.T) {
	prop := func(nRaw uint8, wRaw, hRaw uint16) bool {
		n := int(nRaw%64) + 1
		w := float64(wRaw%500) + 1
		h := float64(hRaw%500) + 1
		field := NewField(w, h)
		regions := Partition(field, n)
		if len(regions) != n {
			return false
		}
		return math.Abs(TotalArea(regions)-field.Area()) < 1e-6*field.Area()+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRepartitionConservesArea(t *testing.T) {
	field := NewField(120, 120)
	regions := Partition(field, 16)
	alive := make([]bool, 16)
	for i := range alive {
		alive[i] = true
	}
	failed := 5
	alive[failed] = false
	total := TotalArea(regions)
	newRegions, gainers := Repartition(regions, alive, failed)
	if len(gainers) == 0 {
		t.Fatal("no neighbours gained area")
	}
	if newRegions[failed].Valid() {
		t.Fatal("failed region still valid")
	}
	if math.Abs(TotalArea(newRegions)-total) > 1e-6*total {
		t.Fatalf("area not conserved: %g -> %g", total, TotalArea(newRegions))
	}
	for _, gi := range gainers {
		if newRegions[gi].Area() <= regions[gi].Area() {
			t.Fatalf("gainer %d did not grow", gi)
		}
	}
}

func TestRepartitionFallsBackToNearest(t *testing.T) {
	// Two far-apart regions: not adjacent, so nearest absorbs all.
	regions := []Rect{{0, 0, 10, 10}, {100, 100, 110, 110}}
	alive := []bool{true, false}
	newRegions, gainers := Repartition(regions, alive, 1)
	if len(gainers) != 1 || gainers[0] != 0 {
		t.Fatalf("gainers = %v", gainers)
	}
	if math.Abs(newRegions[0].Area()-200) > 1e-6 {
		t.Fatalf("survivor area = %g, want 200", newRegions[0].Area())
	}
}

func TestRepartitionNoSurvivors(t *testing.T) {
	regions := []Rect{{0, 0, 10, 10}}
	alive := []bool{false}
	out, gainers := Repartition(regions, alive, 0)
	if gainers != nil {
		t.Fatalf("gainers = %v, want none", gainers)
	}
	if out[0].Valid() {
		t.Fatal("failed region should be zeroed")
	}
}

func TestAStarStraightLine(t *testing.T) {
	g := NewGrid(10, 10, 1)
	path := g.AStar(Cell{0, 0}, Cell{5, 0})
	if len(path) != 6 {
		t.Fatalf("path len = %d, want 6", len(path))
	}
	if g.PathLength(path) != 5 {
		t.Fatalf("path length = %g", g.PathLength(path))
	}
}

func TestAStarAvoidsWall(t *testing.T) {
	g := NewGrid(10, 10, 1)
	// Vertical wall at column 5 with a gap at row 9.
	for r := 0; r < 9; r++ {
		g.Block(Cell{5, r})
	}
	path := g.AStar(Cell{0, 0}, Cell{9, 0})
	if path == nil {
		t.Fatal("no path found around wall")
	}
	for _, c := range path {
		if g.Blocked(c) {
			t.Fatalf("path crosses blocked cell %v", c)
		}
	}
	// Must detour: 9 straight + 2*9 vertical detour = at least 27 steps.
	if len(path) < 27 {
		t.Fatalf("suspiciously short path: %d cells", len(path))
	}
}

func TestAStarUnreachable(t *testing.T) {
	g := NewGrid(5, 5, 1)
	for r := 0; r < 5; r++ {
		g.Block(Cell{2, r})
	}
	if path := g.AStar(Cell{0, 0}, Cell{4, 4}); path != nil {
		t.Fatalf("found path through full wall: %v", path)
	}
}

func TestAStarSameStartGoal(t *testing.T) {
	g := NewGrid(3, 3, 1)
	path := g.AStar(Cell{1, 1}, Cell{1, 1})
	if len(path) != 1 || path[0] != (Cell{1, 1}) {
		t.Fatalf("path = %v", path)
	}
}

func TestAStarBlockedEndpoints(t *testing.T) {
	g := NewGrid(3, 3, 1)
	g.Block(Cell{0, 0})
	if g.AStar(Cell{0, 0}, Cell{2, 2}) != nil {
		t.Fatal("path from blocked start")
	}
	if g.AStar(Cell{2, 2}, Cell{0, 0}) != nil {
		t.Fatal("path to blocked goal")
	}
}

// Property: on an empty grid, A* path length equals Manhattan distance.
func TestAStarOptimalOnEmptyGridProperty(t *testing.T) {
	prop := func(sc, sr, gc, gr uint8) bool {
		g := NewGrid(16, 16, 1)
		s := Cell{int(sc % 16), int(sr % 16)}
		goal := Cell{int(gc % 16), int(gr % 16)}
		path := g.AStar(s, goal)
		want := abs(s.C-goal.C) + abs(s.R-goal.R)
		return len(path) == want+1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGridCellWorldRoundTrip(t *testing.T) {
	g := NewGrid(10, 10, 2.5)
	c := Cell{3, 7}
	if got := g.CellAt(g.Center(c)); got != c {
		t.Fatalf("round trip %v -> %v", c, got)
	}
	if g.Center(Cell{0, 0}) != (Point{1.25, 1.25}) {
		t.Fatalf("center = %v", g.Center(Cell{0, 0}))
	}
}

func TestBoustrophedonCoversRegion(t *testing.T) {
	region := Rect{0, 0, 100, 50}
	plan := Boustrophedon(region, 7)
	if len(plan.Waypoints) == 0 {
		t.Fatal("empty plan")
	}
	// 8 swaths of 100m plus 7 transitions of 7m.
	if plan.Length < 8*100 {
		t.Fatalf("plan too short: %g", plan.Length)
	}
	for _, wp := range plan.Waypoints {
		if wp.X < region.X0-1e-9 || wp.X > region.X1+1e-9 || wp.Y < region.Y0 || wp.Y > region.Y1 {
			t.Fatalf("waypoint %v outside region", wp)
		}
	}
}

func TestSweepTimeScalesWithSpeed(t *testing.T) {
	region := Rect{0, 0, 100, 100}
	t4 := SweepTime(region, 7, 4)
	t8 := SweepTime(region, 7, 8)
	if math.Abs(t4-2*t8) > 1e-9 {
		t.Fatalf("sweep time not inversely proportional to speed: %g vs %g", t4, t8)
	}
	if SweepTime(region, 7, 0) != 0 {
		t.Fatal("zero speed should return 0")
	}
}

// Property: sweep length decreases (or stays equal) as swath width grows.
func TestBoustrophedonMonotoneProperty(t *testing.T) {
	prop := func(wRaw uint8) bool {
		region := Rect{0, 0, 80, 60}
		w1 := float64(wRaw%20) + 1
		w2 := w1 + 5
		return Boustrophedon(region, w1).Length >= Boustrophedon(region, w2).Length-1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
