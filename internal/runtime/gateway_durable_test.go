package runtime

import (
	"bytes"
	"context"
	"sync/atomic"
	"testing"
	"time"

	"hivemind/internal/rpc"
	"hivemind/internal/store"
)

func TestEncodeDecodeTaskRoundTrip(t *testing.T) {
	id, payload, ok := DecodeTask(EncodeTask("task-42", []byte("body")))
	if !ok || id != "task-42" || string(payload) != "body" {
		t.Fatalf("round trip: id=%q payload=%q ok=%v", id, payload, ok)
	}
	// Bare payloads pass through untouched.
	if id, payload, ok := DecodeTask([]byte("bare")); ok || id != "" || string(payload) != "bare" {
		t.Fatalf("bare payload mangled: id=%q payload=%q ok=%v", id, payload, ok)
	}
	// Empty id and empty payload are legal.
	if id, payload, ok := DecodeTask(EncodeTask("", nil)); !ok || id != "" || len(payload) != 0 {
		t.Fatalf("empty envelope: id=%q payload=%q ok=%v", id, payload, ok)
	}
}

type recordingTracker struct {
	started  atomic.Int32
	finished atomic.Int32
}

func (r *recordingTracker) TaskStarted(id, method string) { r.started.Add(1) }
func (r *recordingTracker) TaskStep(id string, step int)  {}
func (r *recordingTracker) TaskFinished(id string)        { r.finished.Add(1) }

func TestGatewayDurableChainCheckpointsSteps(t *testing.T) {
	db := store.NewDB()
	rt := New(DefaultConfig(), db)
	defer rt.Close()
	rt.Register("trim", func(ctx context.Context, in []byte) ([]byte, error) {
		return bytes.TrimSpace(in), nil
	})
	rt.Register("upper", func(ctx context.Context, in []byte) ([]byte, error) {
		return bytes.ToUpper(in), nil
	})
	tracker := &recordingTracker{}
	gcfg := DefaultGatewayConfig()
	gcfg.Timeout = 5 * time.Second
	gcfg.Checkpoints = store.NewCheckpointLog(db)
	gcfg.Tracker = tracker
	g := NewGatewayConfig(rt, gcfg)
	g.ExposeChain("pipeline", []string{"trim", "upper"})
	c := gatewayPair(t, g)

	out, err := c.CallSync("pipeline", EncodeTask("t1", []byte("  people  ")))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "PEOPLE" {
		t.Fatalf("out = %q", out)
	}
	// Every step committed exactly once, and the task closed.
	for step := 0; step < 2; step++ {
		doc, err := db.Get(store.StepOutputKey("t1", step))
		if err != nil {
			t.Fatalf("step %d output missing: %v", step, err)
		}
		if g := store.RevGen(doc.Rev); g != 1 {
			t.Fatalf("step %d committed %d times", step, g)
		}
	}
	orphans, err := gcfg.Checkpoints.Orphans()
	if err != nil || len(orphans) != 0 {
		t.Fatalf("orphans after completion = %v (err %v)", orphans, err)
	}
	if tracker.started.Load() != 1 || tracker.finished.Load() != 1 {
		t.Fatalf("tracker saw %d starts / %d finishes, want 1/1",
			tracker.started.Load(), tracker.finished.Load())
	}
}

func TestGatewayDurableChainSkipsCommittedSteps(t *testing.T) {
	db := store.NewDB()
	rt := New(DefaultConfig(), db)
	defer rt.Close()
	var headRuns atomic.Int32
	rt.Register("head", func(ctx context.Context, in []byte) ([]byte, error) {
		headRuns.Add(1)
		return append(in, 'H'), nil
	})
	rt.Register("tail", func(ctx context.Context, in []byte) ([]byte, error) {
		return append(in, 'T'), nil
	})
	log := store.NewCheckpointLog(db)
	gcfg := DefaultGatewayConfig()
	gcfg.Timeout = 5 * time.Second
	gcfg.Checkpoints = log
	g := NewGatewayConfig(rt, gcfg)
	g.ExposeChain("pipeline", []string{"head", "tail"})
	c := gatewayPair(t, g)

	// Simulate a dead primary's partial progress: the task began and
	// step 0 already committed before the crash.
	if _, _, err := log.Begin("t1", "pipeline", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := log.CommitStep("t1", 0, []byte("xH")); err != nil {
		t.Fatal(err)
	}

	out, err := c.CallSync("pipeline", EncodeTask("t1", []byte("ignored")))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "xHT" {
		t.Fatalf("out = %q, want committed step-0 output fed to tail", out)
	}
	if headRuns.Load() != 0 {
		t.Fatalf("head re-ran %d times after its commit", headRuns.Load())
	}
}

func TestGatewayRecoverRedispatchesOrphans(t *testing.T) {
	db := store.NewDB()
	rt := New(DefaultConfig(), db)
	defer rt.Close()
	rt.Register("step", func(ctx context.Context, in []byte) ([]byte, error) {
		return append(in, '!'), nil
	})
	log := store.NewCheckpointLog(db)
	gcfg := DefaultGatewayConfig()
	gcfg.Timeout = 5 * time.Second
	gcfg.Checkpoints = log
	g := NewGatewayConfig(rt, gcfg)
	g.ExposeChain("pipeline", []string{"step"})
	defer g.Close()

	// Two orphans from a dead primary, one foreign task whose chain this
	// gateway does not serve.
	for _, id := range []string{"o1", "o2"} {
		if _, _, err := log.Begin(id, "pipeline", []byte(id)); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := log.Begin("alien", "elsewhere", nil); err != nil {
		t.Fatal(err)
	}

	n, err := g.Recover(context.Background())
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if n != 2 {
		t.Fatalf("recovered %d orphans, want 2", n)
	}
	for _, id := range []string{"o1", "o2"} {
		doc, err := db.Get(store.StepOutputKey(id, 0))
		if err != nil {
			t.Fatalf("orphan %s output missing: %v", id, err)
		}
		if string(doc.Body) != id+"!" {
			t.Fatalf("orphan %s output = %q", id, doc.Body)
		}
	}
	orphans, _ := log.Orphans()
	if len(orphans) != 1 || orphans[0].TaskID != "alien" {
		t.Fatalf("remaining orphans = %v, want only the foreign task", orphans)
	}
}

func TestGatewayAdmissionGateRedirects(t *testing.T) {
	rt := New(DefaultConfig(), nil)
	defer rt.Close()
	rt.Register("step", func(ctx context.Context, in []byte) ([]byte, error) { return in, nil })
	gcfg := DefaultGatewayConfig()
	gcfg.Admission = func() error { return rpc.NotLeaderError(2) }
	g := NewGatewayConfig(rt, gcfg)
	g.ExposeChain("pipeline", []string{"step"})
	c := gatewayPair(t, g)

	_, err := c.CallSync("pipeline", nil)
	leader, ok := rpc.RedirectTarget(err)
	if !ok || leader != 2 {
		t.Fatalf("err = %v, want NotLeaderError(2)", err)
	}
	if rt.Stats().Invocations != 0 {
		t.Fatal("standby gateway executed work behind the admission gate")
	}
}

// Satellite: a straggler duplicate racing an injector-killed attempt.
// The first attempt dies to the injector (a crashed container), the
// respawned attempt's original runs slow, its duplicate finishes first —
// the duplicate's result wins and the runtime counts exactly one
// completed invocation.
func TestStragglerDuplicateWinsAfterInjectedKill(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Retries = 1
	cfg.StragglerAfter = 20 * time.Millisecond
	cfg.Injector = &killNext{op: "invoke/fn", left: 1}
	rt := New(cfg, nil)
	defer rt.Close()

	var bodies atomic.Int32
	rt.Register("fn", func(ctx context.Context, in []byte) ([]byte, error) {
		if bodies.Add(1) == 1 {
			// The respawned attempt's original straggles.
			select {
			case <-time.After(500 * time.Millisecond):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return []byte("slow"), nil
		}
		return []byte("dup"), nil
	})

	res, err := rt.Invoke(context.Background(), "fn", nil)
	if err != nil {
		t.Fatalf("invoke: %v", err)
	}
	if string(res.Output) != "dup" {
		t.Fatalf("output = %q, want the duplicate's result", res.Output)
	}
	st := rt.Stats()
	if st.Killed != 1 {
		t.Fatalf("killed = %d, want 1 (the injected crash)", st.Killed)
	}
	if st.Retries != 1 {
		t.Fatalf("retries = %d, want 1 (respawn after the kill)", st.Retries)
	}
	if st.Duplicates < 1 {
		t.Fatalf("duplicates = %d, want >= 1", st.Duplicates)
	}
	if st.Invocations != 1 {
		t.Fatalf("invocations = %d, want exactly one completion", st.Invocations)
	}
}
