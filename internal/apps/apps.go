// Package apps defines the HiveMind benchmark suite: the ten
// single-phase edge applications S1–S10 of §2.1 (face recognition, tree
// recognition, drone detection, obstacle avoidance, people
// deduplication, maze traversal, weather analytics, soil analytics,
// text recognition, SLAM), as calibrated workload profiles consumed by
// the simulator.
//
// Calibration note: per-task service times and data sizes are
// behavioural constants chosen to reproduce the paper's relative
// results — which jobs are compute-heavy vs light, which saturate an
// on-board core, which ship large sensor payloads — not measurements of
// the original TensorFlow/FaceNet binaries. The inline comments state
// the paper observation each profile must satisfy.
package apps

import "fmt"

// ID names a benchmark application.
type ID string

// The benchmark suite.
const (
	S1FaceRecognition ID = "S1"
	S2TreeRecognition ID = "S2"
	S3DroneDetection  ID = "S3"
	S4ObstacleAvoid   ID = "S4"
	S5Deduplication   ID = "S5"
	S6Maze            ID = "S6"
	S7Weather         ID = "S7"
	S8SoilAnalytics   ID = "S8"
	S9TextRecognition ID = "S9"
	S10SLAM           ID = "S10"
)

// Profile describes one application's per-task resource behaviour. A
// "task" is the unit the paper measures, e.g. recognising faces in a
// one-second frame batch.
type Profile struct {
	ID   ID
	Name string

	// CloudExecS is the single-core service time of one task on a
	// cluster core.
	CloudExecS float64
	// EdgeExecS is the service time of one task on the device's
	// on-board core.
	EdgeExecS float64
	// Parallelism is the useful intra-task fan-out when split across
	// serverless functions (§3.2); 1 = no intra-task parallelism.
	Parallelism int
	// InputMB is the sensor payload one task consumes (must reach
	// wherever the task runs).
	InputMB float64
	// OutputMB is the result size shipped onward.
	OutputMB float64
	// IntermediateMB is the data exchanged between dependent functions
	// when the task is split (drives Fig. 6c data-sharing costs).
	IntermediateMB float64
	// TaskRatePerDevice is tasks/s each device generates at default
	// load.
	TaskRatePerDevice float64
	// MemGB is per-function memory.
	MemGB float64
	// ExecCV is the intrinsic coefficient of variation of service time
	// (before serverless interference is layered on).
	ExecCV float64
	// PinEdge marks tasks that must run on-board regardless of placement
	// search (obstacle avoidance "always runs on-board to avoid
	// catastrophic failures due to long network delays", §2.1).
	PinEdge bool
	// Learnable marks apps with a retrainable recognition model.
	Learnable bool
}

// EdgeUtilization returns the offered load on a single on-board core at
// the default task rate (>1 means an overloaded device).
func (p Profile) EdgeUtilization() float64 {
	return p.TaskRatePerDevice * p.EdgeExecS
}

// String implements fmt.Stringer.
func (p Profile) String() string {
	return fmt.Sprintf("%s:%s", p.ID, p.Name)
}

// All returns the benchmark suite in S1..S10 order.
func All() []Profile {
	return []Profile{
		{
			// Heavy CNN on frame batches: cloud wins big, edge device
			// saturates (distributed violin reaches multi-second tails,
			// Fig. 4a/11).
			ID: S1FaceRecognition, Name: "Face Recognition (FaceNet)",
			CloudExecS: 0.80, EdgeExecS: 3.5, Parallelism: 8,
			InputMB: 8, OutputMB: 0.05, IntermediateMB: 1.0,
			TaskRatePerDevice: 1.0, MemGB: 2, ExecCV: 0.15, Learnable: true,
		},
		{
			ID: S2TreeRecognition, Name: "Tree Recognition (Model Zoo CNN)",
			CloudExecS: 0.70, EdgeExecS: 3.0, Parallelism: 8,
			InputMB: 8, OutputMB: 0.05, IntermediateMB: 1.0,
			TaskRatePerDevice: 1.0, MemGB: 2, ExecCV: 0.15, Learnable: true,
		},
		{
			// Light SVM on small tagged crops: "behaves comparably on the
			// cloud and edge due to modest resource needs" (§2.3).
			ID: S3DroneDetection, Name: "Drone Detection (SVM)",
			CloudExecS: 0.10, EdgeExecS: 0.18, Parallelism: 2,
			InputMB: 0.5, OutputMB: 0.01, IntermediateMB: 0.1,
			TaskRatePerDevice: 2.0, MemGB: 0.5, ExecCV: 0.10, Learnable: true,
		},
		{
			// Must stay on-board; "achieves better performance at the
			// edge, by avoiding data transfers and adjusting its route
			// in-place" (§2.3).
			ID: S4ObstacleAvoid, Name: "Obstacle Avoidance (ardrone-autonomy)",
			CloudExecS: 0.06, EdgeExecS: 0.10, Parallelism: 1,
			InputMB: 0.4, OutputMB: 0.005, IntermediateMB: 0.05,
			TaskRatePerDevice: 4.0, MemGB: 0.3, ExecCV: 0.10, PinEdge: true,
		},
		{
			// FaceNet embedding comparison across sightings.
			ID: S5Deduplication, Name: "People Deduplication (FaceNet)",
			CloudExecS: 1.0, EdgeExecS: 4.5, Parallelism: 8,
			InputMB: 4, OutputMB: 0.1, IntermediateMB: 0.8,
			TaskRatePerDevice: 0.5, MemGB: 2, ExecCV: 0.18, Learnable: true,
		},
		{
			// Few tasks/s ("drones move slowly in the maze") but each is
			// compute-heavy, so instantiation is <20% of latency
			// (Fig. 6b) and intra-task concurrency gains are modest
			// (Fig. 5a).
			ID: S6Maze, Name: "Maze Traversal (Wall Follower)",
			CloudExecS: 1.6, EdgeExecS: 4.0, Parallelism: 2,
			InputMB: 0.3, OutputMB: 0.01, IntermediateMB: 0.1,
			TaskRatePerDevice: 0.2, MemGB: 0.5, ExecCV: 0.12,
		},
		{
			// Tiny sensor readings, trivial compute: serverless
			// instantiation dominates (>40% of latency, Fig. 6b) and the
			// cloud/edge gap nearly vanishes (§2.3).
			ID: S7Weather, Name: "Weather Analytics",
			CloudExecS: 0.04, EdgeExecS: 0.06, Parallelism: 1,
			InputMB: 0.05, OutputMB: 0.01, IntermediateMB: 0.02,
			TaskRatePerDevice: 1.0, MemGB: 0.2, ExecCV: 0.08,
		},
		{
			ID: S8SoilAnalytics, Name: "Soil Analytics",
			CloudExecS: 0.35, EdgeExecS: 1.4, Parallelism: 4,
			InputMB: 2, OutputMB: 0.02, IntermediateMB: 0.3,
			TaskRatePerDevice: 1.0, MemGB: 1, ExecCV: 0.12,
		},
		{
			// "For jobs like image-to-text recognition and SLAM, the
			// improvement [from intra-task parallelism] is dramatic"
			// (§3.2): wide fan-out, CPU- and memory-intensive.
			ID: S9TextRecognition, Name: "Text Recognition (OCR)",
			CloudExecS: 1.2, EdgeExecS: 5.0, Parallelism: 16,
			InputMB: 4, OutputMB: 0.02, IntermediateMB: 0.5,
			TaskRatePerDevice: 0.8, MemGB: 1.5, ExecCV: 0.15,
		},
		{
			ID: S10SLAM, Name: "SLAM (ORB-SLAM)",
			CloudExecS: 2.0, EdgeExecS: 7.0, Parallelism: 16,
			InputMB: 6, OutputMB: 0.5, IntermediateMB: 1.5,
			TaskRatePerDevice: 0.6, MemGB: 3, ExecCV: 0.20,
		},
	}
}

// ByID returns the profile for an id, or false.
func ByID(id ID) (Profile, bool) {
	for _, p := range All() {
		if p.ID == id {
			return p, true
		}
	}
	return Profile{}, false
}

// IDs returns all benchmark ids in order.
func IDs() []ID {
	all := All()
	out := make([]ID, len(all))
	for i, p := range all {
		out[i] = p.ID
	}
	return out
}
