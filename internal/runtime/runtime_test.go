package runtime

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func echoRuntime(cfg Config) *Runtime {
	r := New(cfg, nil)
	r.Register("echo", func(ctx context.Context, in []byte) ([]byte, error) {
		return in, nil
	})
	r.Register("upper", func(ctx context.Context, in []byte) ([]byte, error) {
		return bytes.ToUpper(in), nil
	})
	r.Register("boom", func(ctx context.Context, in []byte) ([]byte, error) {
		return nil, errors.New("boom")
	})
	return r
}

func TestInvokeBasic(t *testing.T) {
	r := echoRuntime(DefaultConfig())
	defer r.Close()
	res, err := r.Invoke(context.Background(), "echo", []byte("hi"))
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Output) != "hi" || !res.Cold {
		t.Fatalf("result = %+v", res)
	}
	st := r.Stats()
	if st.Invocations != 1 || st.ColdStarts != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestUnknownFunction(t *testing.T) {
	r := echoRuntime(DefaultConfig())
	defer r.Close()
	if _, err := r.Invoke(context.Background(), "nope", nil); err == nil {
		t.Fatal("unknown function accepted")
	}
}

func TestWarmReuse(t *testing.T) {
	cfg := DefaultConfig()
	cfg.KeepAlive = time.Minute
	r := echoRuntime(cfg)
	defer r.Close()
	ctx := context.Background()
	r.Invoke(ctx, "echo", nil)
	res, err := r.Invoke(ctx, "echo", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cold {
		t.Fatal("second invocation cold-started despite keep-alive")
	}
	if st := r.Stats(); st.WarmStarts != 1 {
		t.Fatalf("warm starts = %d", st.WarmStarts)
	}
}

func TestZeroKeepAliveAlwaysCold(t *testing.T) {
	cfg := DefaultConfig()
	cfg.KeepAlive = 0
	r := echoRuntime(cfg)
	defer r.Close()
	ctx := context.Background()
	r.Invoke(ctx, "echo", nil)
	res, _ := r.Invoke(ctx, "echo", nil)
	if !res.Cold {
		t.Fatal("instance reused with zero keep-alive")
	}
}

func TestRetriesOnFailure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Retries = 2
	r := New(cfg, nil)
	defer r.Close()
	var calls atomic.Int32
	r.Register("flaky", func(ctx context.Context, in []byte) ([]byte, error) {
		if calls.Add(1) < 3 {
			return nil, errors.New("transient")
		}
		return []byte("ok"), nil
	})
	res, err := r.Invoke(context.Background(), "flaky", nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Output) != "ok" || res.Retries != 2 {
		t.Fatalf("result = %+v", res)
	}
	if st := r.Stats(); st.Retries != 2 {
		t.Fatalf("retry count = %d", st.Retries)
	}
}

func TestPermanentFailureSurfaces(t *testing.T) {
	r := echoRuntime(DefaultConfig())
	defer r.Close()
	_, err := r.Invoke(context.Background(), "boom", nil)
	if err == nil || !strings.Contains(err.Error(), "after 4 attempts") {
		t.Fatalf("err = %v", err)
	}
}

func TestPanicIsolated(t *testing.T) {
	r := New(DefaultConfig(), nil)
	defer r.Close()
	r.Register("panic", func(ctx context.Context, in []byte) ([]byte, error) {
		panic("container crash")
	})
	_, err := r.Invoke(context.Background(), "panic", nil)
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("err = %v", err)
	}
}

func TestContextCancellationStopsRetries(t *testing.T) {
	r := New(DefaultConfig(), nil)
	defer r.Close()
	r.Register("slow", func(ctx context.Context, in []byte) ([]byte, error) {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(5 * time.Second):
			return nil, nil
		}
	})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := r.Invoke(ctx, "slow", nil)
	if err == nil {
		t.Fatal("cancelled invocation succeeded")
	}
	if time.Since(start) > time.Second {
		t.Fatal("cancellation did not stop retries promptly")
	}
}

func TestConcurrencyLimit(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxInFlight = 2
	r := New(cfg, nil)
	defer r.Close()
	var running, peak atomic.Int32
	r.Register("track", func(ctx context.Context, in []byte) ([]byte, error) {
		cur := running.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(20 * time.Millisecond)
		running.Add(-1)
		return nil, nil
	})
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			r.Invoke(context.Background(), "track", nil)
			done <- struct{}{}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	if got := peak.Load(); got > 2 {
		t.Fatalf("peak concurrency %d exceeds limit 2", got)
	}
}

func TestStragglerDuplicateWins(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StragglerAfter = 30 * time.Millisecond
	r := New(cfg, nil)
	defer r.Close()
	var calls atomic.Int32
	r.Register("mixed", func(ctx context.Context, in []byte) ([]byte, error) {
		if calls.Add(1) == 1 {
			// Original straggles.
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(3 * time.Second):
				return []byte("slow"), nil
			}
		}
		return []byte("fast"), nil
	})
	start := time.Now()
	res, err := r.Invoke(context.Background(), "mixed", nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Output) != "fast" {
		t.Fatalf("output = %q", res.Output)
	}
	if time.Since(start) > time.Second {
		t.Fatal("duplicate did not cut the straggler short")
	}
	if r.Stats().Duplicates == 0 {
		t.Fatal("duplicate not recorded")
	}
}

func TestChainThroughStore(t *testing.T) {
	r := echoRuntime(DefaultConfig())
	defer r.Close()
	out, err := r.Chain(context.Background(), "c1", []string{"echo", "upper"}, []byte("people"))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "PEOPLE" {
		t.Fatalf("chain output = %q", out)
	}
	// Intermediate outputs persisted CouchDB-style.
	if _, err := r.Store().Get("out/echo/c1"); err != nil {
		t.Fatal("intermediate output not in store")
	}
	if _, err := r.Store().Get("out/upper/c1"); err != nil {
		t.Fatal("final output not in store")
	}
}

func TestChainErrors(t *testing.T) {
	r := echoRuntime(DefaultConfig())
	defer r.Close()
	if _, err := r.Chain(context.Background(), "c", nil, nil); err == nil {
		t.Fatal("empty chain accepted")
	}
	if _, err := r.Chain(context.Background(), "c", []string{"echo", "boom"}, []byte("x")); err == nil {
		t.Fatal("failing tier not surfaced")
	}
}

func TestFanOutOrdering(t *testing.T) {
	r := echoRuntime(DefaultConfig())
	defer r.Close()
	inputs := make([][]byte, 32)
	for i := range inputs {
		inputs[i] = []byte(fmt.Sprintf("part-%02d", i))
	}
	outs, err := r.FanOut(context.Background(), "upper", inputs)
	if err != nil {
		t.Fatal(err)
	}
	for i, out := range outs {
		want := strings.ToUpper(string(inputs[i]))
		if string(out) != want {
			t.Fatalf("out[%d] = %q, want %q", i, out, want)
		}
	}
}

func TestFanOutPropagatesErrors(t *testing.T) {
	r := echoRuntime(DefaultConfig())
	defer r.Close()
	if _, err := r.FanOut(context.Background(), "boom", [][]byte{nil, nil}); err == nil {
		t.Fatal("fan-out error swallowed")
	}
}

func TestGoAsync(t *testing.T) {
	r := echoRuntime(DefaultConfig())
	defer r.Close()
	ch := r.Go(context.Background(), "echo", []byte("async"))
	o := <-ch
	if o.Err != nil || string(o.Result.Output) != "async" {
		t.Fatalf("outcome = %+v", o)
	}
}

func TestCloseRejectsNewWork(t *testing.T) {
	r := echoRuntime(DefaultConfig())
	r.Close()
	r.Close() // idempotent
	if _, err := r.Invoke(context.Background(), "echo", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v", err)
	}
}

func TestColdStartDelayApplied(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ColdStart = 50 * time.Millisecond
	cfg.KeepAlive = time.Minute
	r := echoRuntime(cfg)
	defer r.Close()
	ctx := context.Background()
	start := time.Now()
	r.Invoke(ctx, "echo", nil)
	coldLat := time.Since(start)
	start = time.Now()
	r.Invoke(ctx, "echo", nil)
	warmLat := time.Since(start)
	if coldLat < 50*time.Millisecond {
		t.Fatalf("cold latency %v below provisioning delay", coldLat)
	}
	if warmLat > coldLat/2 {
		t.Fatalf("warm latency %v not far below cold %v", warmLat, coldLat)
	}
}
