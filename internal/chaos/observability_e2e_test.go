package chaos_test

import (
	"context"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"hivemind/internal/chaos"
	"hivemind/internal/controller"
	"hivemind/internal/rpc"
	"hivemind/internal/runtime"
	"hivemind/internal/stats"
	"hivemind/internal/store"
	"hivemind/internal/trace"
)

// This file is the live acceptance test for the observability layer: a
// traced multi-function chain through a real replica set over TCP, with
// one injected runtime fault mid-chain, must produce (a) a Chrome trace
// whose spans cover every layer of the stack — gateway, controller,
// RPC hop, runtime — all sharing the task's trace id, and (b) a
// four-stage latency decomposition whose stage sums reconstruct the
// client-measured end-to-end latency within 5%.

// startObservedCluster is startFailoverCluster with the observability
// layer wired in: a shared live tracer across gateways, controllers and
// RPC servers, a per-node latency breakdown, and the chaos injector
// also installed as each runtime's invoke-fault hook.
func startObservedCluster(t *testing.T, n int, seed int64, mon *controller.Monitor,
	inj *chaos.Injector, db *store.DB, chain []string, fns map[string]runtime.Function,
	live *trace.Live) ([]*failNode, []*stats.Breakdown) {
	t.Helper()
	log := store.NewCheckpointLog(db)

	ctrlLns := make([]net.Listener, n)
	ctrlAddrs := make([]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ctrlLns[i] = ln
		ctrlAddrs[i] = ln.Addr().String()
	}

	nodes := make([]*failNode, n)
	bds := make([]*stats.Breakdown, n)
	for i := 0; i < n; i++ {
		rcfg := runtime.DefaultConfig()
		rcfg.Retries = 0
		rcfg.Injector = inj
		rt := runtime.New(rcfg, db)
		for name, fn := range fns {
			rt.Register(name, fn)
		}

		var gwPtr atomic.Pointer[runtime.Gateway]
		ccfg := fastCtrlConfig(i, n, seed)
		ccfg.Fault = inj
		ccfg.Recover = func(ctx context.Context) (int, error) {
			if g := gwPtr.Load(); g != nil {
				return g.Recover(ctx)
			}
			return 0, nil
		}
		peers := make(map[int]func() (net.Conn, error), n-1)
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			addr := ctrlAddrs[j]
			peers[j] = func() (net.Conn, error) { return net.Dial("tcp", addr) }
		}
		rep := controller.NewReplica(ccfg, peers, mon)
		rep.SetTracer(live)

		bds[i] = stats.NewBreakdown()
		gcfg := runtime.DefaultGatewayConfig()
		gcfg.Timeout = 10 * time.Second
		gcfg.RespawnDelay = gwRespawnDelay
		gcfg.Checkpoints = log
		gcfg.Admission = rep.Admission()
		gcfg.Tracker = rep
		gcfg.Tracer = live
		gcfg.Breakdown = bds[i]
		g := runtime.NewGatewayConfig(rt, gcfg)
		g.ExposeChain("pipeline", chain)
		g.Server().SetInterceptor(runtime.TraceServerInterceptor(live, "rpc"))
		gwPtr.Store(g)

		gln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go g.Server().Serve(gln)
		go rep.Server().Serve(ctrlLns[i])

		go func() {
			for rep.State() != controller.Dead {
				time.Sleep(2 * time.Millisecond)
			}
			g.Close()
		}()

		nodes[i] = &failNode{id: i, replica: rep, rt: rt, gw: g, gwAddr: gln.Addr().String()}
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.replica.Kill()
			nd.gw.Close()
			nd.rt.Close()
		}
	})
	for _, nd := range nodes {
		nd.replica.Start()
	}
	return nodes, bds
}

// sleepyChain builds a 3-tier chain whose tiers each burn a visible
// amount of wall clock, so every stage of the decomposition is
// non-trivial and the 5% reconstruction bound is meaningful.
func sleepyChain(d time.Duration) (chain []string, fns map[string]runtime.Function) {
	tier := func(tag string) runtime.Function {
		return func(ctx context.Context, in []byte) ([]byte, error) {
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return append(append([]byte{}, in...), tag...), nil
		}
	}
	fns = map[string]runtime.Function{
		"sense": tier(".s"), "plan": tier(".p"), "act": tier(".a"),
	}
	return []string{"sense", "plan", "act"}, fns
}

func TestObservabilityE2ETraceAndBreakdown(t *testing.T) {
	rec := trace.NewRecorder(0)
	live := trace.NewLive(rec)
	mon := controller.NewMonitor()
	inj := chaos.NewInjector(11, chaos.Config{})
	db := store.NewDB()
	chain, fns := sleepyChain(25 * time.Millisecond)
	nodes, bds := startObservedCluster(t, 3, 11, mon, inj, db, chain, fns, live)
	primary := waitPrimary(t, nodes, 3*time.Second)

	// One injected fault: the mid tier's first execution attempt dies,
	// the gateway respawns the step, the chain completes.
	inj.At("invoke/plan", 0)

	conn, err := net.Dial("tcp", primary.gwAddr)
	if err != nil {
		t.Fatal(err)
	}
	cl := rpc.NewClient(conn, 4)
	defer cl.Close()
	cl.SetObserver(runtime.TraceCallObserver(live))

	const taskID = "task-obs"
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	start := time.Now()
	payload := runtime.EncodeTaskTraced(taskID, trace.SpanContext{TraceID: taskID}, start, []byte("x"))
	out, err := cl.Call(ctx, "pipeline", payload)
	e2e := time.Since(start).Seconds()
	if err != nil {
		t.Fatalf("chain failed: %v", err)
	}
	if string(out) != "x.s.p.a" {
		t.Fatalf("chain output = %q, want x.s.p.a", out)
	}
	if got := inj.FaultCount("invoke/plan"); got != 1 {
		t.Fatalf("injected fault fired %d times, want 1", got)
	}

	// (a) The trace covers all four layers of the stack under one id.
	layerSpans := map[string]int{}
	for _, s := range rec.Spans() {
		if s.Args["trace"] == taskID {
			layerSpans[s.Track]++
		}
	}
	for _, track := range []string{"gateway", "controller", "rpc", "runtime"} {
		if layerSpans[track] == 0 {
			t.Fatalf("no %s-layer span carries trace id %q; per-layer spans: %v",
				track, taskID, layerSpans)
		}
	}
	// The respawned mid tier ran twice, so the runtime lane shows all
	// four invokes (sense, plan x2, act).
	if layerSpans["runtime"] != 4 {
		t.Fatalf("runtime spans = %d, want 4 (respawned tier re-traced)", layerSpans["runtime"])
	}

	// (b) Stage sums reconstruct the measured end-to-end latency. Only
	// the primary's gateway served the task; its breakdown holds exactly
	// one successful task. The stages cover everything but the
	// response's return hop on loopback, so 5% is generous.
	bd := stats.NewBreakdown()
	for _, b := range bds {
		bd.Merge(b)
	}
	if bd.N() != 1 {
		t.Fatalf("breakdown holds %d tasks, want 1", bd.N())
	}
	var sum float64
	for _, st := range stats.AllStages {
		sum += bd.Stage(st).Sum()
	}
	if diff := e2e - sum; diff < 0 || diff > 0.05*e2e {
		t.Fatalf("stage sums %.6fs vs e2e %.6fs: diff %.6fs outside [0, 5%%]",
			sum, e2e, e2e-sum)
	}
	// The execution stage dominates a compute chain: 3 successful sleeps
	// of 25 ms (the faulted attempt dies before its body runs).
	if exec := bd.Stage(stats.StageExecution).Sum(); exec < 0.07 {
		t.Fatalf("execution stage %.6fs, want >= 3x25ms-ish", exec)
	}
}
