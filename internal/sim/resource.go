package sim

// Resource is a multi-server FIFO queue: up to Capacity concurrent
// holders, further requests wait in arrival order. It models CPU cores,
// container slots, network ports — anything with finite parallelism.
//
// Resource tracks queueing statistics (waiting time, utilization,
// time-averaged queue length) which the experiment drivers report.
type Resource struct {
	eng      *Engine
	capacity int
	busy     int
	queue    []*request
	// freeReqs recycles request structs from the no-handle Grab path.
	// Requests wrapped in an Acquisition are never pooled: the handle
	// may outlive the grant, and a recycled struct under a live handle
	// would let a stale Cancel hit an unrelated request.
	freeReqs []*request

	// statistics
	totalWait    Time
	grants       uint64
	busyIntegral Time // ∫ busy dt
	qlenIntegral Time // ∫ len(queue) dt
	lastStamp    Time
	maxQueue     int
}

type request struct {
	enqueued  Time
	n         int
	fn        func()
	cancelled bool
	pooled    bool // recycle into freeReqs after dispatch
}

// NewResource creates a resource with the given concurrent capacity.
// Capacity must be positive.
func NewResource(eng *Engine, capacity int) *Resource {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive")
	}
	return &Resource{eng: eng, capacity: capacity, lastStamp: eng.Now()}
}

// Capacity returns the configured number of servers.
func (r *Resource) Capacity() int { return r.capacity }

// InUse returns how many units are currently held.
func (r *Resource) InUse() int { return r.busy }

// QueueLen returns how many requests are waiting.
func (r *Resource) QueueLen() int {
	n := 0
	for _, q := range r.queue {
		if !q.cancelled {
			n++
		}
	}
	return n
}

func (r *Resource) stamp() {
	now := r.eng.Now()
	dt := now - r.lastStamp
	if dt > 0 {
		r.busyIntegral += Time(r.busy) * dt
		r.qlenIntegral += Time(len(r.queue)) * dt
		r.lastStamp = now
	}
}

// Acquire requests one unit and calls fn when it is granted (possibly
// synchronously, if a unit is free). The returned handle can cancel a
// still-queued request.
func (r *Resource) Acquire(fn func()) *Acquisition {
	return r.AcquireN(1, fn)
}

// Grab requests one unit like Acquire but returns no handle, which
// keeps the hot acquire/release cycle allocation-free: an immediate
// grant touches no request struct at all, and a queued request comes
// from (and returns to) the resource's free list. Use it wherever the
// request is never cancelled — which is every production call site.
func (r *Resource) Grab(fn func()) {
	r.stamp()
	if len(r.queue) == 0 && r.busy+1 <= r.capacity {
		r.busy++
		r.grants++
		fn()
		return
	}
	var req *request
	if n := len(r.freeReqs); n > 0 {
		req = r.freeReqs[n-1]
		r.freeReqs[n-1] = nil
		r.freeReqs = r.freeReqs[:n-1]
	} else {
		req = new(request)
	}
	*req = request{enqueued: r.eng.Now(), n: 1, fn: fn, pooled: true}
	r.enqueue(req)
}

// AcquireN requests n units granted atomically.
func (r *Resource) AcquireN(n int, fn func()) *Acquisition {
	if n <= 0 || n > r.capacity {
		panic("sim: invalid acquire count")
	}
	r.stamp()
	req := &request{enqueued: r.eng.Now(), n: n, fn: fn}
	if len(r.queue) == 0 && r.busy+n <= r.capacity {
		r.busy += n
		r.grants++
		fn()
		return &Acquisition{res: r, req: req, granted: true}
	}
	r.enqueue(req)
	return &Acquisition{res: r, req: req}
}

func (r *Resource) enqueue(req *request) {
	r.queue = append(r.queue, req)
	if len(r.queue) > r.maxQueue {
		r.maxQueue = len(r.queue)
	}
}

// Release returns n units and dispatches queued requests that now fit.
func (r *Resource) ReleaseN(n int) {
	r.stamp()
	r.busy -= n
	if r.busy < 0 {
		panic("sim: resource released more than acquired")
	}
	r.dispatch()
}

// Release returns one unit.
func (r *Resource) Release() { r.ReleaseN(1) }

func (r *Resource) dispatch() {
	for len(r.queue) > 0 {
		head := r.queue[0]
		if head.cancelled {
			r.queue = r.queue[1:]
			r.recycle(head)
			continue
		}
		if r.busy+head.n > r.capacity {
			return
		}
		r.queue = r.queue[1:]
		r.busy += head.n
		r.grants++
		r.totalWait += r.eng.Now() - head.enqueued
		fn := head.fn
		r.recycle(head)
		fn()
	}
}

// recycle returns a Grab-path request to the free list. Handle-backed
// requests are left to the garbage collector (see freeReqs).
func (r *Resource) recycle(req *request) {
	if !req.pooled {
		return
	}
	req.fn = nil
	r.freeReqs = append(r.freeReqs, req)
}

// Use acquires one unit, holds it for service seconds, releases it, and
// then calls done (which may be nil). It is the common "queue at a
// station" primitive.
func (r *Resource) Use(service Time, done func()) {
	r.Grab(func() {
		r.eng.Defer(service, func() {
			r.Release()
			if done != nil {
				done()
			}
		})
	})
}

// Acquisition is a handle to a pending or granted acquire request.
type Acquisition struct {
	res     *Resource
	req     *request
	granted bool
}

// Cancel withdraws a still-queued request. It reports whether the request
// was actually cancelled (false if it had already been granted).
func (a *Acquisition) Cancel() bool {
	if a.granted || a.req.cancelled {
		return false
	}
	a.req.cancelled = true
	return true
}

// Stats summarises a resource's queueing behaviour so far.
type ResourceStats struct {
	Grants       uint64  // total successful acquisitions
	MeanWait     Time    // average time spent queued before grant
	Utilization  float64 // time-averaged fraction of capacity in use
	MeanQueueLen float64 // time-averaged queue length
	MaxQueueLen  int
}

// Stats returns queueing statistics over [0, now).
func (r *Resource) Stats() ResourceStats {
	r.stamp()
	elapsed := r.eng.Now()
	s := ResourceStats{Grants: r.grants, MaxQueueLen: r.maxQueue}
	if r.grants > 0 {
		s.MeanWait = r.totalWait / Time(r.grants)
	}
	if elapsed > 0 {
		s.Utilization = r.busyIntegral / (elapsed * Time(r.capacity))
		s.MeanQueueLen = r.qlenIntegral / elapsed
	}
	return s
}
