package rpc

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// expiredBy reports how far past its deadline a request is, or a
// negative duration when the deadline is unset or still ahead.
func expiredBy(deadlineNS int64) time.Duration {
	if deadlineNS == 0 {
		return -1
	}
	return time.Duration(time.Now().UnixNano() - deadlineNS)
}

// defaultWorkers sizes the per-connection server worker pool, matching
// the default client caller pool: the two ends of a connection can
// keep the same number of requests in flight.
const defaultWorkers = 64

// reqCtx is a minimal cancellable context, one allocation per request.
// context.WithCancel would cost a child registration in a shared
// parent on every request — measurable at data-plane rates — so the
// dispatcher tracks live requests itself and cancels them directly on
// cancel frames and connection teardown. The done channel is lazy:
// most handlers never select on it.
type reqCtx struct {
	// deadline is the request's wire-propagated absolute deadline (zero:
	// none). Written once before the task is submitted to the pool, read
	// only afterwards, so it needs no locking.
	deadline time.Time

	mu   sync.Mutex
	done chan struct{}
	err  error
}

var _ context.Context = (*reqCtx)(nil)

func (c *reqCtx) Deadline() (time.Time, bool) { return c.deadline, !c.deadline.IsZero() }

func (c *reqCtx) Done() <-chan struct{} {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.done == nil {
		c.done = make(chan struct{})
		if c.err != nil {
			close(c.done)
		}
	}
	return c.done
}

func (c *reqCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

func (c *reqCtx) Value(any) any { return nil }

// cancel fires the context once; later calls are no-ops.
func (c *reqCtx) cancel(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
		if c.done != nil {
			close(c.done)
		}
	}
	c.mu.Unlock()
}

// task is one request handed from a connection's read loop to its
// worker pool. ctx is nil for plain handlers (registered via Register):
// they ignore their context, so no cancellation tracking is kept for
// them and run substitutes context.Background.
type task struct {
	h       HandlerCtx // nil: method not found
	ctx     *reqCtx
	callID  uint64
	payload []byte
	// stream is the logical stream the call id belongs to; the
	// dispatcher schedules streams round-robin so a flooded stream
	// cannot head-of-line-block its siblings on the shared connection.
	stream uint16
	// deadlineNS is the request's wire-propagated absolute deadline
	// (UnixNano; 0: none). Checked when a worker picks the task up: work
	// that expired while queued is dropped, not executed.
	deadlineNS int64
}

// streamQ is one stream's FIFO of queued tasks, drained through a
// head index so pops never shift the slice.
type streamQ struct {
	tasks []task
	head  int
	ready bool // present in the dispatcher's round-robin list
}

func (q *streamQ) push(t task) { q.tasks = append(q.tasks, t) }

func (q *streamQ) pop() task {
	t := q.tasks[q.head]
	q.tasks[q.head] = task{}
	q.head++
	if q.head == len(q.tasks) {
		q.tasks = q.tasks[:0]
		q.head = 0
	}
	return t
}

func (q *streamQ) size() int { return len(q.tasks) - q.head }

// dispatcher runs a connection's request handlers on a bounded pool of
// workers, replacing goroutine-per-request: under load at most max
// handlers run concurrently and the rest queue, per logical stream.
// Queued streams are scheduled round-robin, so one stream flooding the
// connection delays its own calls, not its siblings' — the software
// analogue of per-flow provisioning in the paper's RPC fabric, and the
// fix for the per-call head-of-line interaction a single shared FIFO
// had. Workers are spawned lazily, so an idle connection costs one
// goroutine (the read loop), not max+1.
//
// Backpressure differs by stream. Stream 0 (the plain Client path)
// keeps the original contract: once max tasks are queued, submit
// blocks the read loop, which in turn backpressures the peer through
// TCP — v1 behaviour exactly. Multiplexed streams must never block the
// shared read loop (that would stall the very siblings multiplexing is
// meant to isolate), so a mux stream whose queue is full has its
// request shed with a typed ShedError instead — the same vocabulary
// the admission layer uses, so IsShed/retry-budget handling applies
// unchanged. With client-side stream caller pools at or below the
// worker bound, the shed path is never hit in practice.
//
// Ping and cancel frames are never routed through the pool — the read
// loop services them directly — so heartbeats and cancellation stay
// responsive while every worker is stuck in a slow handler.
type dispatcher struct {
	w   *connWriter
	max int

	mu      sync.Mutex
	workC   *sync.Cond // workers wait here for queued tasks
	spaceC  *sync.Cond // stream-0 submit waits here for queue space
	queues  map[uint16]*streamQ
	rr      []*streamQ // round-robin list of streams with queued tasks
	rrIdx   int
	queued0 int // stream 0's queued tasks (blocking-backpressure bound)
	spawned int
	idle    int
	closed  bool

	// dropped, when non-nil, counts requests dropped unexecuted because
	// their deadline expired while they queued (the server's counter).
	dropped *atomic.Uint64

	// shed counts mux-stream requests refused with ShedError because
	// their stream's queue was full.
	shed atomic.Uint64

	// inflight maps live call ids to their request contexts so
	// kindCancel frames and connection teardown can fire them.
	inflightMu sync.Mutex
	inflight   map[uint64]*reqCtx
}

func newDispatcher(w *connWriter, workers int) *dispatcher {
	if workers <= 0 {
		workers = defaultWorkers
	}
	d := &dispatcher{
		w:        w,
		max:      workers,
		queues:   make(map[uint16]*streamQ),
		inflight: make(map[uint64]*reqCtx),
	}
	d.workC = sync.NewCond(&d.mu)
	d.spaceC = sync.NewCond(&d.mu)
	return d
}

// register records a live call so cancel frames can reach it. It must
// run before the task is submitted.
func (d *dispatcher) register(callID uint64, rc *reqCtx) {
	d.inflightMu.Lock()
	d.inflight[callID] = rc
	d.inflightMu.Unlock()
}

// cancelCall fires the context of a live call, if any.
func (d *dispatcher) cancelCall(callID uint64) {
	d.inflightMu.Lock()
	rc := d.inflight[callID]
	d.inflightMu.Unlock()
	if rc != nil {
		rc.cancel(context.Canceled)
	}
}

// unregister removes a finished call.
func (d *dispatcher) unregister(callID uint64) {
	d.inflightMu.Lock()
	delete(d.inflight, callID)
	d.inflightMu.Unlock()
}

// abortAll cancels every in-flight request context: connection
// teardown, so handlers observe the disconnect.
func (d *dispatcher) abortAll() {
	d.inflightMu.Lock()
	for _, rc := range d.inflight {
		rc.cancel(context.Canceled)
	}
	d.inflightMu.Unlock()
}

// markReady puts q on the round-robin list if it is not already there.
// Caller holds d.mu.
func (d *dispatcher) markReady(q *streamQ) {
	if !q.ready {
		q.ready = true
		d.rr = append(d.rr, q)
	}
}

// next pops the next task in round-robin stream order. Caller holds
// d.mu.
func (d *dispatcher) next() (task, bool) {
	for len(d.rr) > 0 {
		if d.rrIdx >= len(d.rr) {
			d.rrIdx = 0
		}
		q := d.rr[d.rrIdx]
		if q.size() == 0 {
			q.ready = false
			d.rr = append(d.rr[:d.rrIdx], d.rr[d.rrIdx+1:]...)
			continue
		}
		t := q.pop()
		if q.size() == 0 {
			q.ready = false
			d.rr = append(d.rr[:d.rrIdx], d.rr[d.rrIdx+1:]...)
		} else {
			d.rrIdx++
		}
		if t.stream == 0 {
			d.queued0--
			d.spaceC.Signal()
		}
		return t, true
	}
	return task{}, false
}

// submit hands one request to the pool. A new worker is spawned only
// when none is idle and the pool is below its bound; otherwise the
// task queues under its stream. Stream 0 blocks the caller once max
// tasks are queued (read-loop backpressure, the v1 contract); a mux
// stream with a full queue sheds instead, because blocking would stall
// every sibling stream sharing the read loop.
func (d *dispatcher) submit(t task) {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	if t.stream == 0 {
		for d.queued0 >= d.max && !d.closed {
			d.spaceC.Wait()
		}
		if d.closed {
			d.mu.Unlock()
			return
		}
	} else if q := d.queues[t.stream]; q != nil && q.size() >= d.max {
		d.mu.Unlock()
		d.shed.Add(1)
		d.refuse(t, shedResponse)
		return
	}
	// Fast path: idle capacity and nothing queued ahead — hand the task
	// straight to a fresh worker, skipping the queue.
	if d.idle == 0 && d.spawned < d.max && len(d.rr) == 0 {
		d.spawned++
		d.mu.Unlock()
		go d.worker(t, true)
		return
	}
	q := d.queues[t.stream]
	if q == nil {
		q = &streamQ{}
		d.queues[t.stream] = q
	}
	q.push(t)
	if t.stream == 0 {
		d.queued0++
	}
	d.markReady(q)
	if d.idle > 0 {
		d.workC.Signal()
	} else if d.spawned < d.max {
		d.spawned++
		go d.worker(task{}, false) // fetches its first task from the queue
	}
	d.mu.Unlock()
}

// close stops the pool: workers drain queued tasks (their contexts are
// already cancelled by connection teardown) and exit. Only the read
// loop submits, and only after it has returned is close called, so no
// send can race the close.
func (d *dispatcher) close() {
	d.mu.Lock()
	d.closed = true
	d.workC.Broadcast()
	d.spaceC.Broadcast()
	d.mu.Unlock()
}

// worker runs tasks until the dispatcher closes and the queues drain.
// runFirst marks whether t carries a real first task (the fast-path
// spawn) or the goroutine should go straight to the fetch loop.
func (d *dispatcher) worker(t task, runFirst bool) {
	for {
		if runFirst {
			d.run(t)
		}
		runFirst = true
		d.mu.Lock()
		for {
			var ok bool
			if t, ok = d.next(); ok {
				break
			}
			if d.closed {
				d.mu.Unlock()
				return
			}
			d.idle++
			d.workC.Wait()
			d.idle--
		}
		d.mu.Unlock()
	}
}

// refusal kinds for refuse.
const (
	shedResponse = iota
	expiredResponse
)

// refuse answers a request with a typed error without executing it:
// shedResponse for a full mux-stream queue, expiredResponse for a
// propagated deadline that passed while the request queued.
func (d *dispatcher) refuse(t task, why int) {
	if t.ctx != nil {
		d.unregister(t.callID)
	}
	var msg string
	switch why {
	case shedResponse:
		msg = string(ShedError(0))
	case expiredResponse:
		msg = (&DeadlineExceededError{Late: expiredBy(t.deadlineNS)}).Error()
	}
	if buf, err := encodeFrame(kindError, t.callID, "", []byte(msg)); err == nil {
		d.w.enqueue(buf, t.stream == 0)
	}
}

// run executes one handler and queues its response frame. Write
// failures surface through connection teardown, exactly like the
// pre-pool direct-write path. A request whose wire deadline expired
// while it queued is dropped here — answered with a typed
// DeadlineExceededError, never executed — so a backed-up pool stops
// burning capacity on work the caller has already abandoned. The
// deadline is per-request and therefore per-stream: refusing one
// stream's expired request has no effect on its siblings.
func (d *dispatcher) run(t task) {
	var ctx context.Context = context.Background()
	if t.ctx != nil {
		ctx = t.ctx
		defer d.unregister(t.callID)
	}
	kind := byte(kindResponse)
	var out []byte
	if late := expiredBy(t.deadlineNS); late >= 0 && t.h != nil {
		if d.dropped != nil {
			d.dropped.Add(1)
		}
		kind = kindError
		out = []byte((&DeadlineExceededError{Late: late}).Error())
	} else if t.h == nil {
		kind = kindError
		out = []byte(ErrMethodNotFound.Error())
	} else if res, err := t.h(ctx, t.payload); err != nil {
		kind = kindError
		out = []byte(err.Error())
	} else {
		out = res
	}
	// Stream-0 responses flush inline (lowest latency when the writer
	// is idle); mux-stream responses route through the flusher so
	// concurrent streams' responses coalesce into one writev per round
	// instead of one syscall per response (see Client.start).
	inline := t.stream == 0
	if kind == kindResponse && len(out) >= lendMin {
		// Large response: lend the handler's result to the writer so it
		// is gathered into the socket without an intermediate copy. The
		// handler surrendered the slice by returning it, so nothing
		// mutates it while the write is in flight.
		if buf, err := encodeLent(kindResponse, t.callID, "", 0, out); err == nil {
			d.w.enqueueVec(buf, out, inline)
			return
		}
	}
	buf, err := encodeFrame(kind, t.callID, "", out)
	if err != nil {
		// Response too large to frame: tell the caller instead of
		// leaving the call pending forever.
		if buf, err = encodeFrame(kindError, t.callID, "", []byte(err.Error())); err != nil {
			return
		}
	}
	d.w.enqueue(buf, inline) // best effort: teardown surfaces via read loops
}
