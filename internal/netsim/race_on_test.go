//go:build race

package netsim

// raceEnabled gates wall-clock assertions; see race_off_test.go.
const raceEnabled = true
