package runtime

import (
	"context"
	"fmt"
	"time"

	"hivemind/internal/rpc"
)

// GatewayMonitor is the metrics sink the gateway reports into —
// controller.Monitor satisfies it, so the real runtime feeds the same
// lightweight monitoring system the simulated controller uses (§4.7).
type GatewayMonitor interface {
	CountEvent(name string)
	Observe(name string, v float64)
}

// GatewayConfig tunes the RPC front door's fault handling.
type GatewayConfig struct {
	// Timeout bounds a whole invocation or chain (0: no deadline beyond
	// the caller's cancellation).
	Timeout time.Duration
	// StepTimeout bounds each chain step (0: only Timeout applies). A
	// step that exceeds it is respawned rather than failing the chain.
	StepTimeout time.Duration
	// StepRespawns is how many times a failed or timed-out chain step is
	// respawned before the error surfaces (§3.2; default 1 — respawn
	// once, mirroring the faas model's respawn-and-continue behaviour).
	StepRespawns int
	// RespawnDelay is the pause before a respawn, the live counterpart
	// of faas.Config.RespawnDelayS (default 120 ms there).
	RespawnDelay time.Duration
}

// DefaultGatewayConfig mirrors the faas model's respawn calibration.
func DefaultGatewayConfig() GatewayConfig {
	return GatewayConfig{
		Timeout:      0,
		StepRespawns: 1,
		RespawnDelay: 120 * time.Millisecond,
	}
}

// Gateway exposes a Runtime's functions over the RPC framework — the
// real edge→cloud invocation path: devices call the synthesized RPC
// APIs (internal/rpc), the gateway dispatches into the serverless
// runtime, exactly the NGINX-front-end role in the OpenWhisk pipeline.
// Handlers are context-aware: a client cancel frame or a dropped
// connection cancels the running invocation, and timed-out chain steps
// are respawned once before the failure surfaces (§3.2).
type Gateway struct {
	rt      *Runtime
	srv     *rpc.Server
	cfg     GatewayConfig
	monitor GatewayMonitor
}

// NewGateway wraps a runtime with an RPC front door. timeout bounds
// each invocation (0 = no deadline); other knobs take the
// DefaultGatewayConfig values.
func NewGateway(rt *Runtime, timeout time.Duration) *Gateway {
	cfg := DefaultGatewayConfig()
	cfg.Timeout = timeout
	return NewGatewayConfig(rt, cfg)
}

// NewGatewayConfig wraps a runtime with a fully configured front door.
func NewGatewayConfig(rt *Runtime, cfg GatewayConfig) *Gateway {
	if cfg.StepRespawns < 0 {
		cfg.StepRespawns = 0
	}
	return &Gateway{rt: rt, srv: rpc.NewServer(), cfg: cfg}
}

// SetMonitor installs a metrics sink (nil disables reporting). Must be
// called before the gateway starts serving traffic.
func (g *Gateway) SetMonitor(m GatewayMonitor) { g.monitor = m }

// Server returns the underlying RPC server (serve it on a listener or
// an in-process pipe).
func (g *Gateway) Server() *rpc.Server { return g.srv }

func (g *Gateway) count(event string) {
	if g.monitor != nil {
		g.monitor.CountEvent(event)
	}
}

func (g *Gateway) observe(name string, d time.Duration) {
	if g.monitor != nil {
		g.monitor.Observe(name, d.Seconds())
	}
}

// callCtx derives the per-call context from the connection's context so
// client cancellation and disconnects propagate into the runtime.
func (g *Gateway) callCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if g.cfg.Timeout > 0 {
		return context.WithTimeout(ctx, g.cfg.Timeout)
	}
	return context.WithCancel(ctx)
}

// Expose registers a runtime function under an RPC method name. The
// function must already be registered on the runtime.
func (g *Gateway) Expose(method, function string) {
	g.srv.RegisterCtx(method, func(ctx context.Context, payload []byte) ([]byte, error) {
		ctx, cancel := g.callCtx(ctx)
		defer cancel()
		start := time.Now()
		res, err := g.rt.Invoke(ctx, function, payload)
		g.observe("gateway-latency", time.Since(start))
		if err != nil {
			g.countFailure(ctx)
			return nil, err
		}
		g.count("gateway-ok")
		return res.Output, nil
	})
}

func (g *Gateway) countFailure(ctx context.Context) {
	if ctx.Err() != nil {
		g.count("gateway-timeout")
		return
	}
	g.count("gateway-error")
}

// ExposeChain registers an RPC method that runs a multi-tier pipeline
// through the store-backed chain (one edge call triggers the whole
// cloud-side task graph, as the generated FaaS bindings do). Each step
// is bounded by StepTimeout and respawned up to StepRespawns times
// after RespawnDelay when it fails or times out — the live counterpart
// of the queueing model's respawn-on-failure behaviour (§3.2, Fig. 5c).
func (g *Gateway) ExposeChain(method string, functions []string) {
	g.srv.RegisterCtx(method, func(ctx context.Context, payload []byte) ([]byte, error) {
		ctx, cancel := g.callCtx(ctx)
		defer cancel()
		start := time.Now()
		data := payload
		for _, fn := range functions {
			out, err := g.runStep(ctx, method, fn, data)
			if err != nil {
				g.countFailure(ctx)
				return nil, fmt.Errorf("chain %s at tier %s: %w", method, fn, err)
			}
			key := fmt.Sprintf("out/%s/%s", fn, method)
			data, err = g.rt.exchange(ctx, key, out)
			if err != nil {
				g.countFailure(ctx)
				return nil, fmt.Errorf("chain %s: persisting %s: %w", method, key, err)
			}
		}
		g.observe("gateway-chain-latency", time.Since(start))
		g.count("gateway-ok")
		return data, nil
	})
}

// runStep executes one chain tier, respawning it after failures or
// step-level timeouts while the chain's own deadline still has budget.
func (g *Gateway) runStep(ctx context.Context, method, fn string, input []byte) ([]byte, error) {
	var lastErr error
	for attempt := 0; attempt <= g.cfg.StepRespawns; attempt++ {
		if attempt > 0 {
			g.count("gateway-respawn")
			if g.cfg.RespawnDelay > 0 {
				sleepCtx(ctx, g.cfg.RespawnDelay)
			}
		}
		if err := ctx.Err(); err != nil {
			// The chain's own deadline is spent: no respawn can help.
			if lastErr != nil {
				return nil, fmt.Errorf("%w (after %v)", err, lastErr)
			}
			return nil, err
		}
		sctx := ctx
		var cancel context.CancelFunc = func() {}
		if g.cfg.StepTimeout > 0 {
			sctx, cancel = context.WithTimeout(ctx, g.cfg.StepTimeout)
		}
		res, err := g.rt.Invoke(sctx, fn, input)
		cancel()
		if err == nil {
			return res.Output, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

// Close shuts the RPC server down (the runtime is left to its owner).
func (g *Gateway) Close() { g.srv.Close() }
