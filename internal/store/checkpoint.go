package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
)

// This file implements the write-ahead task checkpoint log the gateway
// uses to make chains survive a controller crash. Before dispatching a
// chain step the gateway records (task id, step index, input key); after
// the step runs it commits the output under a create-only key. A newly
// promoted primary enumerates checkpoints that never reached Done — the
// orphans — and re-dispatches them through the ordinary respawn path.
// Re-execution is safe because step commits are create-only: the second
// writer loses the Put race with ErrConflict and adopts the first
// writer's output, so every step's effect lands exactly once no matter
// how many times the step itself runs.

// TaskCheckpoint is the durable record of one in-flight chain.
type TaskCheckpoint struct {
	TaskID   string
	Method   string // gateway chain method to resume through
	NextStep int    // first step not known to be committed
	InputKey string // store key holding the original chain input
	Done     bool
}

// Checkpoint key layout.
const checkpointPrefix = "ckpt/"

// CheckpointKey is the store key of a task's checkpoint record.
func CheckpointKey(taskID string) string { return checkpointPrefix + taskID }

// TaskInputKey is the store key of a task's original chain input.
func TaskInputKey(taskID string) string { return "task/" + taskID + "/in" }

// StepOutputKey is the store key a chain step's output commits under.
func StepOutputKey(taskID string, step int) string {
	return fmt.Sprintf("task/%s/out/%d", taskID, step)
}

// RevGen exposes the generation number of a revision token (1 for a
// document written exactly once) so tests can assert single-commit
// semantics.
func RevGen(rev string) int { return revGen(rev) }

// FenceSource supplies the fence token (controller term) checkpoint
// writes carry. A gateway fronting controller replica R wires this to
// R's current term, so every checkpoint mutation is term-stamped and a
// deposed primary's writes bounce off the store's fence.
type FenceSource func() uint64

// CheckpointLog is the gateway-side API over the checkpoint keys of a
// DB. All methods are safe for concurrent use (the DB serializes).
type CheckpointLog struct {
	db    *DB
	fence FenceSource // nil: unfenced (token 0)
}

// NewCheckpointLog wraps a store with unfenced writes.
func NewCheckpointLog(db *DB) *CheckpointLog { return &CheckpointLog{db: db} }

// NewFencedCheckpointLog wraps a store with term-stamped writes drawn
// from src at each mutation.
func NewFencedCheckpointLog(db *DB, src FenceSource) *CheckpointLog {
	return &CheckpointLog{db: db, fence: src}
}

// DB returns the underlying store.
func (l *CheckpointLog) DB() *DB { return l.db }

// token draws the current fence token (0 when unfenced).
func (l *CheckpointLog) token() uint64 {
	if l.fence == nil {
		return 0
	}
	return l.fence()
}

// Begin opens (or, on re-dispatch, re-opens) a task: it persists the
// chain input and the checkpoint record, and returns the record plus
// the authoritative input. Begin is idempotent — a resumed task gets
// its originally stored input back even if the re-dispatch supplied a
// different payload, so duplicate submissions cannot fork a chain.
func (l *CheckpointLog) Begin(taskID, method string, input []byte) (TaskCheckpoint, []byte, error) {
	key := CheckpointKey(taskID)
	if doc, err := l.db.Get(key); err == nil {
		var ck TaskCheckpoint
		if jerr := json.Unmarshal(doc.Body, &ck); jerr != nil {
			return TaskCheckpoint{}, nil, fmt.Errorf("store: corrupt checkpoint %s: %w", key, jerr)
		}
		in, gerr := l.db.Get(ck.InputKey)
		if gerr != nil {
			return TaskCheckpoint{}, nil, fmt.Errorf("store: checkpoint %s lost its input: %w", key, gerr)
		}
		return ck, in.Body, nil
	} else if !errors.Is(err, ErrNotFound) {
		return TaskCheckpoint{}, nil, err
	}
	ck := TaskCheckpoint{TaskID: taskID, Method: method, InputKey: TaskInputKey(taskID)}
	if _, err := l.db.ForceFenced(l.token(), ck.InputKey, input); err != nil {
		return TaskCheckpoint{}, nil, err
	}
	if err := l.write(ck); err != nil {
		return TaskCheckpoint{}, nil, err
	}
	return ck, input, nil
}

// Advance records that dispatch of step is imminent (the write-ahead
// part: the record hits the store before the step runs). NextStep only
// moves forward, so a slow duplicate cannot rewind a resumed task.
func (l *CheckpointLog) Advance(taskID string, step int) error {
	key := CheckpointKey(taskID)
	doc, err := l.db.Get(key)
	if err != nil {
		return err
	}
	var ck TaskCheckpoint
	if err := json.Unmarshal(doc.Body, &ck); err != nil {
		return fmt.Errorf("store: corrupt checkpoint %s: %w", key, err)
	}
	if step <= ck.NextStep {
		return nil
	}
	ck.NextStep = step
	return l.write(ck)
}

// CommitStep records a step's output under a create-only key. The first
// commit wins; a concurrent or repeated commit gets the original output
// back, which is exactly the deduplication the §4.7 takeover needs.
func (l *CheckpointLog) CommitStep(taskID string, step int, out []byte) ([]byte, error) {
	key := StepOutputKey(taskID, step)
	if _, err := l.db.PutFenced(l.token(), key, "", out); err == nil {
		return out, nil
	} else if !errors.Is(err, ErrConflict) {
		return nil, err
	}
	doc, err := l.db.Get(key)
	if err != nil {
		return nil, err
	}
	return doc.Body, nil
}

// StepOutput returns a previously committed step output, if any.
func (l *CheckpointLog) StepOutput(taskID string, step int) ([]byte, bool, error) {
	doc, err := l.db.Get(StepOutputKey(taskID, step))
	if errors.Is(err, ErrNotFound) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	return doc.Body, true, nil
}

// Task returns a task's checkpoint record (found=false when the task
// id is unknown). The ingress layer uses it to resolve result ids
// against durable state after the gateway that minted them died.
func (l *CheckpointLog) Task(taskID string) (TaskCheckpoint, bool, error) {
	doc, err := l.db.Get(CheckpointKey(taskID))
	if errors.Is(err, ErrNotFound) {
		return TaskCheckpoint{}, false, nil
	}
	if err != nil {
		return TaskCheckpoint{}, false, err
	}
	var ck TaskCheckpoint
	if jerr := json.Unmarshal(doc.Body, &ck); jerr != nil {
		return TaskCheckpoint{}, false, fmt.Errorf("store: corrupt checkpoint %s: %w", CheckpointKey(taskID), jerr)
	}
	return ck, true, nil
}

// Complete marks a task finished; it stops being an orphan candidate.
func (l *CheckpointLog) Complete(taskID string) error {
	key := CheckpointKey(taskID)
	doc, err := l.db.Get(key)
	if err != nil {
		return err
	}
	var ck TaskCheckpoint
	if err := json.Unmarshal(doc.Body, &ck); err != nil {
		return fmt.Errorf("store: corrupt checkpoint %s: %w", key, err)
	}
	if ck.Done {
		return nil
	}
	ck.Done = true
	return l.write(ck)
}

// Orphans enumerates incomplete tasks (sorted by task id, so recovery
// order is deterministic).
func (l *CheckpointLog) Orphans() ([]TaskCheckpoint, error) {
	var out []TaskCheckpoint
	for _, key := range l.db.Keys() {
		if !strings.HasPrefix(key, checkpointPrefix) {
			continue
		}
		doc, err := l.db.Get(key)
		if errors.Is(err, ErrNotFound) {
			continue // completed and pruned between Keys and Get
		}
		if err != nil {
			return nil, err
		}
		var ck TaskCheckpoint
		if jerr := json.Unmarshal(doc.Body, &ck); jerr != nil {
			// Quarantine, don't abort: one corrupt record must not block
			// recovery of every healthy task. Count it and keep scanning.
			l.db.countEvent(MetricCorruptCheckpoint)
			continue
		}
		if !ck.Done {
			out = append(out, ck)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TaskID < out[j].TaskID })
	return out, nil
}

// write serializes a checkpoint record last-writer-wins (the record is
// advisory bookkeeping; the exactly-once guarantee lives in the
// create-only step outputs).
func (l *CheckpointLog) write(ck TaskCheckpoint) error {
	body, err := json.Marshal(ck)
	if err != nil {
		return err
	}
	_, err = l.db.ForceFenced(l.token(), CheckpointKey(ck.TaskID), body)
	return err
}
