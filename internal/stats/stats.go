// Package stats provides the measurement plumbing used by every
// experiment in the HiveMind reproduction: latency sample sets with
// percentile summaries (the paper reports medians, quartiles, p95 and
// p99 throughout), probability-density estimates for the violin plots,
// stage breakdowns (network / management / data-IO / execution), and
// time-series meters for bandwidth and active-task counts.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sample is an append-only collection of float64 observations.
// The zero value is ready to use.
type Sample struct {
	xs     []float64
	sorted bool
	sum    float64
}

// Add records one observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
	s.sum += x
}

// AddAll records many observations.
func (s *Sample) AddAll(xs ...float64) {
	for _, x := range xs {
		s.Add(x)
	}
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Sum returns the sum of all observations.
func (s *Sample) Sum() float64 { return s.sum }

// Mean returns the arithmetic mean, or 0 for an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	return s.sum / float64(len(s.xs))
}

func (s *Sample) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// Freeze pre-sorts the observations so every subsequent read-only query
// (percentiles, min/max, values, PDF) is safe for concurrent readers.
// Call it before sharing a Sample across goroutines — e.g. when a result
// is published through the experiment runner's memoized cache. Adding
// observations after Freeze un-freezes the sample.
func (s *Sample) Freeze() { s.ensureSorted() }

// Percentile returns the p-th percentile (p in [0,100]) using linear
// interpolation between closest ranks. Empty samples return 0.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.ensureSorted()
	if p <= 0 {
		return s.xs[0]
	}
	if p >= 100 {
		return s.xs[len(s.xs)-1]
	}
	rank := p / 100 * float64(len(s.xs)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.xs[lo]
	}
	frac := rank - float64(lo)
	return s.xs[lo]*(1-frac) + s.xs[hi]*frac
}

// Median is Percentile(50).
func (s *Sample) Median() float64 { return s.Percentile(50) }

// Min returns the smallest observation, or 0 for an empty sample.
func (s *Sample) Min() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.xs[0]
}

// Max returns the largest observation, or 0 for an empty sample.
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.xs[len(s.xs)-1]
}

// StdDev returns the population standard deviation.
func (s *Sample) StdDev() float64 {
	n := len(s.xs)
	if n == 0 {
		return 0
	}
	mean := s.Mean()
	var ss float64
	for _, x := range s.xs {
		d := x - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// CV returns the coefficient of variation (stddev/mean), the paper's
// proxy for performance predictability. Zero-mean samples return 0.
func (s *Sample) CV() float64 {
	m := s.Mean()
	if m == 0 {
		return 0
	}
	return s.StdDev() / m
}

// Values returns a copy of the observations (sorted ascending).
func (s *Sample) Values() []float64 {
	s.ensureSorted()
	out := make([]float64, len(s.xs))
	copy(out, s.xs)
	return out
}

// Summary is the five-number-plus summary used by the paper's box and
// violin plots.
type Summary struct {
	N                      int
	Mean, Min, Max         float64
	P5, P25, P50, P75, P95 float64
	P99, StdDev, CV        float64
}

// Summarize computes a Summary of the sample.
func (s *Sample) Summarize() Summary {
	return Summary{
		N: s.N(), Mean: s.Mean(), Min: s.Min(), Max: s.Max(),
		P5: s.Percentile(5), P25: s.Percentile(25), P50: s.Percentile(50),
		P75: s.Percentile(75), P95: s.Percentile(95), P99: s.Percentile(99),
		StdDev: s.StdDev(), CV: s.CV(),
	}
}

// String renders a compact human-readable summary.
func (sm Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g p50=%.4g p95=%.4g p99=%.4g cv=%.3f",
		sm.N, sm.Mean, sm.P50, sm.P95, sm.P99, sm.CV)
}

// PDF estimates a probability density over nBins equal-width bins,
// spanning [min, max] of the sample — the data behind the paper's violin
// plots. Densities integrate to ~1. Empty samples return nil.
func (s *Sample) PDF(nBins int) []PDFBin {
	if len(s.xs) == 0 || nBins <= 0 {
		return nil
	}
	s.ensureSorted()
	lo, hi := s.xs[0], s.xs[len(s.xs)-1]
	if hi == lo {
		return []PDFBin{{Center: lo, Density: 1, Count: len(s.xs)}}
	}
	width := (hi - lo) / float64(nBins)
	bins := make([]PDFBin, nBins)
	for i := range bins {
		bins[i].Center = lo + (float64(i)+0.5)*width
	}
	for _, x := range s.xs {
		idx := int((x - lo) / width)
		if idx >= nBins {
			idx = nBins - 1
		}
		bins[idx].Count++
	}
	norm := 1.0 / (float64(len(s.xs)) * width)
	for i := range bins {
		bins[i].Density = float64(bins[i].Count) * norm
	}
	return bins
}

// PDFBin is one bin of a density estimate.
type PDFBin struct {
	Center  float64
	Density float64
	Count   int
}
