package ingress

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"hivemind/internal/rpc"
)

// BatchOptions tunes small-task batching. Batching is enabled when
// Window > 0: dispatches arriving within the window (or until a size
// threshold trips) ride one rpc batch envelope, amortising per-call
// framing and queueing on the shm-ring/mux fast path.
type BatchOptions struct {
	// Window is the max linger before a partial batch flushes.
	Window time.Duration
	// MaxEntries flushes a batch at this many entries (0: 16).
	MaxEntries int
	// MaxBytes flushes a batch at this many payload bytes (0: 64 KiB).
	MaxBytes int
	// MaxEntryBytes bypasses batching for payloads larger than this —
	// big bodies don't benefit and would delay their batch (0: 4 KiB).
	MaxEntryBytes int
}

func (o BatchOptions) withDefaults() BatchOptions {
	if o.MaxEntries <= 0 {
		o.MaxEntries = 16
	}
	if o.MaxBytes <= 0 {
		o.MaxBytes = 64 << 10
	}
	if o.MaxEntryBytes <= 0 {
		o.MaxEntryBytes = 4 << 10
	}
	return o
}

type batchResult struct {
	body []byte
	err  error
}

// pendingBatch accumulates entries until a threshold or the window
// timer flushes it.
type pendingBatch struct {
	entries  []rpc.BatchEntry
	waiters  []chan batchResult
	bytes    int
	deadline time.Time // min caller deadline (zero: none)
	timer    *time.Timer
}

// batcher coalesces many small dispatches into single batch-envelope
// RPCs. Callers block in Call; replies are fanned back out per entry
// with full typed-error fidelity (a shed entry still answers
// rpc.IsShed).
type batcher struct {
	d       Dispatcher
	opts    BatchOptions
	monitor Monitor
	sent    *uint64 // server's dispatched counter: +1 per envelope

	batches uint64 // envelopes flushed with >1 entry

	mu     sync.Mutex
	cur    *pendingBatch
	closed bool
}

func newBatcher(d Dispatcher, opts BatchOptions, m Monitor, sent *uint64) *batcher {
	return &batcher{d: d, opts: opts.withDefaults(), monitor: m, sent: sent}
}

func (b *batcher) close() {
	b.mu.Lock()
	b.closed = true
	pb := b.cur
	b.cur = nil
	b.mu.Unlock()
	if pb != nil {
		pb.timer.Stop()
		go b.flush(pb)
	}
}

// Call enqueues one dispatch into the current batch and blocks for its
// reply. The caller's context cancels its wait, not the batch.
func (b *batcher) Call(ctx context.Context, method string, payload []byte) ([]byte, error) {
	ch := make(chan batchResult, 1)
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return b.d.Call(ctx, method, payload)
	}
	if b.cur == nil {
		pb := &pendingBatch{}
		pb.timer = time.AfterFunc(b.opts.Window, func() { b.flushIfCurrent(pb) })
		b.cur = pb
	}
	pb := b.cur
	pb.entries = append(pb.entries, rpc.BatchEntry{Method: method, Payload: payload})
	pb.waiters = append(pb.waiters, ch)
	pb.bytes += len(payload)
	if d, ok := ctx.Deadline(); ok && (pb.deadline.IsZero() || d.Before(pb.deadline)) {
		pb.deadline = d
	}
	full := len(pb.entries) >= b.opts.MaxEntries || pb.bytes >= b.opts.MaxBytes
	if full {
		b.cur = nil
	}
	b.mu.Unlock()

	if full {
		pb.timer.Stop()
		go b.flush(pb)
	}
	select {
	case res := <-ch:
		return res.body, res.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// flushIfCurrent is the window-timer path: flush pb only if it is
// still accumulating (a size-trigger may have flushed it already).
func (b *batcher) flushIfCurrent(pb *pendingBatch) {
	b.mu.Lock()
	if b.cur != pb {
		b.mu.Unlock()
		return
	}
	b.cur = nil
	b.mu.Unlock()
	b.flush(pb)
}

func (b *batcher) flush(pb *pendingBatch) {
	if len(pb.entries) == 0 {
		return
	}
	ctx := context.Background()
	if !pb.deadline.IsZero() {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, pb.deadline)
		defer cancel()
	}
	atomic.AddUint64(b.sent, 1)
	if len(pb.entries) == 1 {
		// A lone entry skips the envelope: same wire cost, less framing.
		body, err := b.d.Call(ctx, pb.entries[0].Method, pb.entries[0].Payload)
		pb.waiters[0] <- batchResult{body: body, err: err}
		return
	}
	atomic.AddUint64(&b.batches, 1)
	if b.monitor != nil {
		b.monitor.CountEvent("ingress-batch")
		if adder, ok := b.monitor.(interface{ Add(string, float64) }); ok {
			adder.Add("ingress-batch-entries", float64(len(pb.entries)))
		}
	}
	raw, err := b.d.Call(ctx, rpc.BatchMethod, rpc.EncodeBatch(pb.entries))
	if err != nil {
		// Envelope-level failure (shed, deadline, transport): every entry
		// inherits it.
		for _, ch := range pb.waiters {
			ch <- batchResult{err: err}
		}
		return
	}
	replies, err := rpc.DecodeBatchReplies(raw)
	if err == nil && len(replies) != len(pb.entries) {
		err = rpc.ServerError("rpc: batch reply count mismatch")
	}
	if err != nil {
		for _, ch := range pb.waiters {
			ch <- batchResult{err: err}
		}
		return
	}
	for i, ch := range pb.waiters {
		ch <- batchResult{body: replies[i].Body, err: replies[i].ReplyError()}
	}
}
