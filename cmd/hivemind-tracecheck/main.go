// Command hivemind-tracecheck validates a Chrome trace-event JSON file
// produced by the recorder: it must parse, be non-empty, and (with
// -tracks) contain a thread lane for every named track. CI's live
// smoke job runs it against the fleet demo's trace artifact.
//
// Usage:
//
//	hivemind-tracecheck -in live.json -tracks gateway,controller,rpc,runtime
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

type event struct {
	Name  string            `json:"name"`
	Phase string            `json:"ph"`
	Args  map[string]string `json:"args"`
}

func main() {
	var (
		in     = flag.String("in", "", "Chrome trace-event JSON file to validate")
		tracks = flag.String("tracks", "", "comma-separated thread lanes that must be present")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := check(*in, *tracks); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func check(path, tracks string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var events []event
	if err := json.Unmarshal(raw, &events); err != nil {
		return fmt.Errorf("%s is not a Chrome trace-event array: %w", path, err)
	}
	spans := 0
	lanes := map[string]bool{}
	for _, ev := range events {
		switch ev.Phase {
		case "X":
			spans++
		case "M":
			if ev.Name == "thread_name" {
				lanes[ev.Args["name"]] = true
			}
		}
	}
	if spans == 0 {
		return fmt.Errorf("%s holds no spans (%d events)", path, len(events))
	}
	var missing []string
	for _, want := range strings.Split(tracks, ",") {
		if want = strings.TrimSpace(want); want != "" && !lanes[want] {
			missing = append(missing, want)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("%s is missing lanes %v (has %v)", path, missing, sortedLanes(lanes))
	}
	fmt.Printf("%s: %d events, %d spans, %d lanes — ok\n", path, len(events), spans, len(lanes))
	return nil
}

func sortedLanes(lanes map[string]bool) []string {
	out := make([]string, 0, len(lanes))
	for l := range lanes {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}
