package apps

import "testing"

func TestSuiteHasTenApps(t *testing.T) {
	all := All()
	if len(all) != 10 {
		t.Fatalf("suite size = %d", len(all))
	}
	want := []ID{S1FaceRecognition, S2TreeRecognition, S3DroneDetection, S4ObstacleAvoid,
		S5Deduplication, S6Maze, S7Weather, S8SoilAnalytics, S9TextRecognition, S10SLAM}
	for i, p := range all {
		if p.ID != want[i] {
			t.Fatalf("position %d: %s, want %s", i, p.ID, want[i])
		}
	}
}

func TestProfilesAreSane(t *testing.T) {
	for _, p := range All() {
		if p.CloudExecS <= 0 || p.EdgeExecS <= 0 {
			t.Fatalf("%s: non-positive exec times", p.ID)
		}
		if p.EdgeExecS <= p.CloudExecS {
			t.Fatalf("%s: edge (%.2fs) must be slower than one cloud core (%.2fs)", p.ID, p.EdgeExecS, p.CloudExecS)
		}
		if p.Parallelism < 1 {
			t.Fatalf("%s: parallelism %d", p.ID, p.Parallelism)
		}
		if p.InputMB <= 0 || p.OutputMB <= 0 || p.TaskRatePerDevice <= 0 || p.MemGB <= 0 {
			t.Fatalf("%s: non-positive sizes/rates", p.ID)
		}
		if p.OutputMB >= p.InputMB {
			t.Fatalf("%s: output %g >= input %g (results must be smaller than sensor data)", p.ID, p.OutputMB, p.InputMB)
		}
		if p.ExecCV <= 0 || p.ExecCV > 1 {
			t.Fatalf("%s: CV %g", p.ID, p.ExecCV)
		}
		if p.String() == "" {
			t.Fatalf("%s: empty string", p.ID)
		}
	}
}

func TestByIDAndIDs(t *testing.T) {
	p, ok := ByID(S6Maze)
	if !ok || p.Name == "" {
		t.Fatal("maze lookup failed")
	}
	if _, ok := ByID("S99"); ok {
		t.Fatal("bogus id found")
	}
	if len(IDs()) != 10 {
		t.Fatalf("IDs = %v", IDs())
	}
}

func TestPaperShapeConstraints(t *testing.T) {
	get := func(id ID) Profile {
		p, ok := ByID(id)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		return p
	}
	// §2.1: obstacle avoidance always runs on-board.
	if !get(S4ObstacleAvoid).PinEdge {
		t.Fatal("S4 must be pinned to the edge")
	}
	// §2.3: heavy recognition jobs overload a single on-board core
	// (drives the distributed-edge latency blowup and battery drain).
	for _, id := range []ID{S1FaceRecognition, S2TreeRecognition, S5Deduplication, S9TextRecognition, S10SLAM} {
		if u := get(id).EdgeUtilization(); u <= 1 {
			t.Fatalf("%s edge utilization %g, want >1 (overloaded)", id, u)
		}
	}
	// §2.3: drone detection, obstacle avoidance and weather analytics
	// are comfortable on-board.
	for _, id := range []ID{S3DroneDetection, S4ObstacleAvoid, S7Weather} {
		if u := get(id).EdgeUtilization(); u >= 0.8 {
			t.Fatalf("%s edge utilization %g, want <0.8 (stable)", id, u)
		}
	}
	// §3.2: maze/weather benefit least from intra-task parallelism;
	// text recognition and SLAM have the widest fan-out.
	if get(S6Maze).Parallelism > 2 || get(S7Weather).Parallelism > 1 {
		t.Fatal("maze/weather parallelism too high")
	}
	if get(S9TextRecognition).Parallelism < 8 || get(S10SLAM).Parallelism < 8 {
		t.Fatal("OCR/SLAM fan-out too low")
	}
	// Fig. 6b: weather tasks are so short that instantiation dominates;
	// maze tasks so long that it is amortised. Proxy: exec-time ordering.
	if get(S7Weather).CloudExecS > 0.1 {
		t.Fatal("weather tasks should be very short")
	}
	if get(S6Maze).CloudExecS < 1.0 {
		t.Fatal("maze tasks should be long")
	}
	// Fig. 15 retrains recognition models.
	for _, id := range []ID{S1FaceRecognition, S5Deduplication} {
		if !get(id).Learnable {
			t.Fatalf("%s should be learnable", id)
		}
	}
	// §2.2: offered network load at default settings must not saturate
	// the 216.75 MB/s wireless aggregate for a 16-drone swarm on any
	// single job ("services are not running at max load here").
	for _, p := range All() {
		load := p.InputMB * p.TaskRatePerDevice * 16
		if load > 216 {
			t.Fatalf("%s offers %g MB/s from 16 drones (saturates wireless)", p.ID, load)
		}
	}
}
