package rpc

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"
)

// notLeaderPrefix marks the redirect error a replicated service's
// standby returns when asked to do primary-only work. The suffix is the
// replica id of the believed leader, or -1 when an election is still in
// progress.
const notLeaderPrefix = "rpc: not leader; leader="

// NotLeaderError builds the standard redirect a standby replica returns
// for primary-only methods. leader is the replica id the caller should
// re-route to (-1: unknown, mid-election).
func NotLeaderError(leader int) ServerError {
	return ServerError(notLeaderPrefix + strconv.Itoa(leader))
}

// RedirectTarget extracts the leader hint from a NotLeaderError. ok is
// false for every other error.
func RedirectTarget(err error) (leader int, ok bool) {
	var se ServerError
	if !errors.As(err, &se) {
		return 0, false
	}
	s := string(se)
	if !strings.HasPrefix(s, notLeaderPrefix) {
		return 0, false
	}
	n, convErr := strconv.Atoi(s[len(notLeaderPrefix):])
	if convErr != nil {
		return 0, false
	}
	return n, true
}

// FailoverOptions tunes the leader-following client.
type FailoverOptions struct {
	// Callers sizes each endpoint connection's caller pool.
	Callers int
	// Attempts bounds call attempts across endpoints and sweeps
	// (0: 4 × the endpoint count).
	Attempts int
	// RetryBackoff is the pause before re-attempting after a redirect or
	// a transport failure (an election may still be settling).
	RetryBackoff time.Duration
	// CallTimeout bounds each individual attempt (0: only the caller's
	// ctx bounds it).
	CallTimeout time.Duration
	// Observer, when non-nil, is installed on every endpoint connection
	// (initial and redials) to time each RPC hop.
	Observer CallObserver
	// Budget, when non-nil, bounds retry amplification across endpoint
	// sweeps: re-attempts after transport failures withdraw one token
	// each (leader redirects stay free — they are routing, not retry),
	// successes deposit the earn ratio. Share one budget with the other
	// retry layers of the process.
	Budget *RetryBudget
}

// FailoverClient routes calls to the current primary of a replicated
// service (e.g. the ReplicatedController's fronting gateways). Standbys
// answer primary-only methods with NotLeaderError; the client follows
// the redirect, and on transport failures it sweeps the remaining
// endpoints until one serves — the edge-side half of the §4.7
// hot-standby takeover. Calls may execute more than once across a
// failover, so routed methods must be idempotent (the checkpointed
// chain path deduplicates by task id).
type FailoverClient struct {
	factories []func() (Transport, error)
	opts      FailoverOptions

	mu  sync.Mutex
	cls []Transport
	cur int
}

// NewFailoverClient builds a client over one dial function per replica;
// the slice index is the replica id redirects refer to. Each endpoint
// rides a fresh framed connection; NewFailoverTransports is the
// generalisation that lets endpoints ride any Transport (shm ring, mux
// stream) instead.
func NewFailoverClient(dials []func() (net.Conn, error), opts FailoverOptions) *FailoverClient {
	if opts.Callers <= 0 {
		opts.Callers = 8
	}
	factories := make([]func() (Transport, error), len(dials))
	for i, dial := range dials {
		dial := dial
		callers := opts.Callers
		obs := opts.Observer
		factories[i] = func() (Transport, error) {
			conn, err := dial()
			if err != nil {
				return nil, err
			}
			cl := NewClient(conn, callers)
			if obs != nil {
				cl.SetObserver(obs)
			}
			return cl, nil
		}
	}
	return NewFailoverTransports(factories, opts)
}

// NewFailoverTransports builds a leader-following client over one
// transport factory per replica (the slice index is the replica id
// redirects refer to). A factory is invoked lazily on first use and
// again whenever its previous transport reports unhealthy — the
// redirect-following, endpoint-sweeping and retry-budget logic is
// identical regardless of what the calls ride, so the zero-copy fast
// paths (runtime.Linker's shm ring for co-located leaders, mux streams
// for remote ones) plug in without their own failover layer.
func NewFailoverTransports(factories []func() (Transport, error), opts FailoverOptions) *FailoverClient {
	if len(factories) == 0 {
		panic("rpc: failover client needs at least one endpoint")
	}
	if opts.Callers <= 0 {
		opts.Callers = 8
	}
	if opts.Attempts <= 0 {
		opts.Attempts = 4 * len(factories)
	}
	if opts.RetryBackoff <= 0 {
		opts.RetryBackoff = 25 * time.Millisecond
	}
	return &FailoverClient{factories: factories, opts: opts, cls: make([]Transport, len(factories))}
}

// DialFailover builds a leader-following client over TCP addresses.
func DialFailover(addrs []string, opts FailoverOptions) *FailoverClient {
	dials := make([]func() (net.Conn, error), len(addrs))
	for i, addr := range addrs {
		addr := addr
		dials[i] = func() (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	return NewFailoverClient(dials, opts)
}

// Leader returns the endpoint index calls currently route to.
func (f *FailoverClient) Leader() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cur
}

// clientFor returns a healthy transport to endpoint idx, rebuilding it
// through the endpoint's factory if needed.
func (f *FailoverClient) clientFor(idx int) (Transport, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if cl := f.cls[idx]; cl != nil && cl.Healthy() {
		return cl, nil
	}
	tr, err := f.factories[idx]()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", errReconnect, err)
	}
	if f.cls[idx] != nil {
		f.cls[idx].Close()
	}
	f.cls[idx] = tr
	return tr, nil
}

// route updates the believed leader: an explicit redirect target wins,
// otherwise advance past the failed endpoint round-robin.
func (f *FailoverClient) route(from, target int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if target >= 0 && target < len(f.factories) {
		f.cur = target
		return
	}
	if f.cur == from {
		f.cur = (from + 1) % len(f.factories)
	}
}

// Call routes one call to the current primary, following redirects and
// sweeping endpoints on transport failures. ctx bounds the whole call
// including backoffs.
func (f *FailoverClient) Call(ctx context.Context, method string, payload []byte) ([]byte, error) {
	var lastErr error
	for attempt := 0; attempt < f.opts.Attempts; attempt++ {
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return nil, fmt.Errorf("%w (last attempt: %v)", err, lastErr)
			}
			return nil, err
		}
		if attempt > 0 {
			t := time.NewTimer(f.opts.RetryBackoff)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return nil, fmt.Errorf("%w (last attempt: %v)", ctx.Err(), lastErr)
			}
		}
		idx := f.Leader()
		cl, err := f.clientFor(idx)
		if err != nil {
			lastErr = err
			f.route(idx, -1)
			if !f.opts.Budget.Withdraw() {
				return nil, budgetExhausted(lastErr)
			}
			continue
		}
		actx := ctx
		if f.opts.CallTimeout > 0 {
			var cancel context.CancelFunc
			actx, cancel = context.WithTimeout(ctx, f.opts.CallTimeout)
			out, err := cl.Call(actx, method, payload)
			cancel()
			if err == nil {
				f.opts.Budget.Success()
				return out, nil
			}
			lastErr = err
		} else {
			out, err := cl.Call(actx, method, payload)
			if err == nil {
				f.opts.Budget.Success()
				return out, nil
			}
			lastErr = err
		}
		if target, ok := RedirectTarget(lastErr); ok {
			f.route(idx, target)
			continue
		}
		if IsFenced(lastErr) {
			// A deposed primary's store rejected the term-stamped write.
			// Like a redirect this is routing, not retry: the real primary
			// is elsewhere, so sweep on without spending budget.
			f.route(idx, -1)
			continue
		}
		var se ServerError
		if errors.As(lastErr, &se) {
			// A real application error from the serving primary: the
			// request executed, re-routing cannot help. Shed responses
			// (rpc.IsShed) and expired-deadline drops take this path too —
			// the primary is alive but refusing the work, so sweeping to a
			// standby would only re-offer load the fleet just shed.
			return nil, lastErr
		}
		if ctx.Err() != nil {
			continue // surfaces at the top of the loop
		}
		f.route(idx, -1) // transport failure: sweep on
		if !f.opts.Budget.Withdraw() {
			return nil, budgetExhausted(lastErr)
		}
	}
	return nil, fmt.Errorf("rpc: no endpoint served %s after %d attempts: %w", method, f.opts.Attempts, lastErr)
}

// Close tears down every endpoint connection.
func (f *FailoverClient) Close() {
	f.mu.Lock()
	defer f.mu.Unlock()
	for i, cl := range f.cls {
		if cl != nil {
			cl.Close()
			f.cls[i] = nil
		}
	}
}
