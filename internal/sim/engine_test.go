package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEngineRunsEventsInTimeOrder(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.At(3, func() { order = append(order, 3) })
	e.At(1, func() { order = append(order, 1) })
	e.At(2, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("wrong order: %v", order)
	}
	if e.Now() != 3 {
		t.Fatalf("clock = %g, want 3", e.Now())
	}
}

func TestEngineTiesBreakBySchedulingOrder(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie order broken at %d: %v", i, order)
		}
	}
}

func TestEngineAfterIsRelative(t *testing.T) {
	e := NewEngine(1)
	var at Time
	e.At(10, func() {
		e.After(2.5, func() { at = e.Now() })
	})
	e.Run()
	if at != 12.5 {
		t.Fatalf("fired at %g, want 12.5", at)
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	e := NewEngine(1)
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestEngineNegativeAfterClamps(t *testing.T) {
	e := NewEngine(1)
	fired := false
	e.At(4, func() { e.After(-1, func() { fired = true }) })
	e.Run()
	if !fired || e.Now() != 4 {
		t.Fatalf("fired=%v now=%g", fired, e.Now())
	}
}

func TestEngineRunUntilStopsAtLimit(t *testing.T) {
	e := NewEngine(1)
	fired := map[Time]bool{}
	for _, at := range []Time{1, 2, 3, 4, 5} {
		at := at
		e.At(at, func() { fired[at] = true })
	}
	n := e.RunUntil(3)
	if n != 3 {
		t.Fatalf("executed %d events, want 3", n)
	}
	if !fired[3] || fired[4] {
		t.Fatalf("wrong events fired: %v", fired)
	}
	if e.Now() != 3 {
		t.Fatalf("clock = %g, want 3", e.Now())
	}
	e.Run()
	if !fired[5] {
		t.Fatal("remaining events lost after RunUntil")
	}
}

func TestEngineRunUntilAdvancesClockOnEmptyQueue(t *testing.T) {
	e := NewEngine(1)
	e.RunUntil(100)
	if e.Now() != 100 {
		t.Fatalf("clock = %g, want 100", e.Now())
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine(1)
	count := 0
	e.At(1, func() { count++; e.Stop() })
	e.At(2, func() { count++ })
	e.Run()
	if count != 1 {
		t.Fatalf("count = %d, want 1 (Stop should halt the loop)", count)
	}
	e.Run() // resumes
	if count != 2 {
		t.Fatalf("count = %d after resume, want 2", count)
	}
}

func TestTimerCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	tm := e.At(5, func() { fired = true })
	e.At(1, func() {
		if !tm.Cancel() {
			t.Error("first Cancel reported false")
		}
		if tm.Cancel() {
			t.Error("second Cancel reported true")
		}
	})
	e.Run()
	if fired {
		t.Fatal("cancelled timer fired")
	}
	if !tm.Stopped() {
		t.Fatal("Stopped() = false after cancel")
	}
}

func TestTickerFiresPeriodicallyAndStops(t *testing.T) {
	e := NewEngine(1)
	var times []Time
	var tk *Ticker
	tk = e.Every(1.0, 0, func() {
		times = append(times, e.Now())
		if len(times) == 4 {
			tk.Stop()
		}
	})
	e.RunUntil(100)
	if len(times) != 4 {
		t.Fatalf("fired %d times, want 4: %v", len(times), times)
	}
	for i, at := range times {
		if math.Abs(at-Time(i+1)) > 1e-12 {
			t.Fatalf("tick %d at %g, want %d", i, at, i+1)
		}
	}
}

func TestTickerJitterStaysInBounds(t *testing.T) {
	// Jitter is a zero-mean phase offset around the k*period grid, so
	// each firing lands within jitter/2 of its anchor and consecutive
	// gaps stay within period +/- jitter.
	e := NewEngine(7)
	var last Time
	n := 0
	tk := e.Every(2.0, 0.5, func() {
		n++
		anchor := 2.0 * Time(n)
		if d := math.Abs(e.Now() - anchor); d > 0.25+1e-9 {
			t.Fatalf("firing %d at %g is %g from anchor %g, want <= 0.25", n, e.Now(), d, anchor)
		}
		gap := e.Now() - last
		if gap < 2.0-0.5-1e-9 || gap > 2.0+0.5+1e-9 {
			t.Fatalf("gap %g outside [1.5, 2.5]", gap)
		}
		last = e.Now()
	})
	// First firing is measured against time zero, which also holds.
	e.RunUntil(50)
	tk.Stop()
	if n < 15 {
		t.Fatalf("only %d ticks in 50s with ~2s period", n)
	}
}

// TestTickerJitterIsZeroMean is the regression test for the biased
// jitter bug: jitter used to be drawn from [0, jitter), stretching the
// mean firing period to period + jitter/2 (a 1s/0.8 monitor sampled
// ~29% slow). The long-run mean period must equal period exactly.
func TestTickerJitterIsZeroMean(t *testing.T) {
	const (
		period  = 1.0
		jitter  = 0.8
		horizon = 10000.0
	)
	e := NewEngine(11)
	n := 0
	var first, last Time
	tk := e.Every(period, jitter, func() {
		if n == 0 {
			first = e.Now()
		}
		last = e.Now()
		n++
	})
	e.RunUntil(horizon)
	tk.Stop()

	// The biased implementation fires ~horizon/(period+jitter/2) ~= 7143
	// times here; the zero-mean one stays anchored at ~10000.
	if n < 9990 || n > 10010 {
		t.Fatalf("fired %d times in %g s with period %g, want ~10000", n, horizon, period)
	}
	mean := (last - first) / Time(n-1)
	if math.Abs(mean-period) > 0.001 {
		t.Fatalf("long-run mean period = %g, want %g", mean, period)
	}
}

// TestRunUntilClockSemantics pins the reconciled contract: RunUntil
// advances the clock to its limit even when the queue empties early,
// while Run leaves the clock at the last executed event.
func TestRunUntilClockSemantics(t *testing.T) {
	e := NewEngine(1)
	e.At(3, func() {})
	if e.RunUntil(10) != 1 {
		t.Fatal("event did not run")
	}
	if e.Now() != 10 {
		t.Fatalf("RunUntil(10) left clock at %g, want 10", e.Now())
	}

	e2 := NewEngine(1)
	e2.At(3, func() {})
	e2.Run()
	if e2.Now() != 3 {
		t.Fatalf("Run left clock at %g, want 3 (last event)", e2.Now())
	}
}

// TestTimerCancelReleasesClosure is the regression test for cancelled
// timers pinning their callbacks: the event may sit in the heap until
// popped, so Cancel must drop the fn reference immediately.
func TestTimerCancelReleasesClosure(t *testing.T) {
	e := NewEngine(1)
	tm := e.At(1000, func() {})
	if !tm.Cancel() {
		t.Fatal("Cancel reported false for a pending timer")
	}
	if tm.ev.fn != nil {
		t.Fatal("Cancel left the callback closure reachable")
	}
	if tm.Cancel() {
		t.Fatal("second Cancel reported true")
	}
	e.Run() // the cancelled event must pop without firing or panicking
}

func TestEngineDeterminism(t *testing.T) {
	run := func(seed int64) []Time {
		e := NewEngine(seed)
		var out []Time
		var rec func()
		rec = func() {
			out = append(out, e.Now())
			if len(out) < 200 {
				e.After(e.Rand().Float64(), rec)
			}
		}
		e.At(0, rec)
		e.Run()
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at event %d: %g vs %g", i, a[i], b[i])
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if i < len(c) && a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical trajectories")
	}
}

// Property: for any batch of events with non-negative offsets, Run
// executes all of them and the observed firing times are sorted.
func TestEngineEventOrderProperty(t *testing.T) {
	prop := func(offsets []uint16) bool {
		e := NewEngine(1)
		var fired []Time
		for _, off := range offsets {
			at := Time(off) / 16.0
			e.At(at, func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		if len(fired) != len(offsets) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
