package runtime

import (
	"context"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"hivemind/internal/rpc"
)

// leaderGateway builds a gateway whose "who" method answers only while
// *leader holds id, redirecting to the current leader otherwise — the
// shape a controller replica's Admission gate gives real gateways.
func leaderGateway(t *testing.T, id int, leader *atomic.Int32) *Gateway {
	t.Helper()
	rt := New(DefaultConfig(), nil)
	t.Cleanup(rt.Close)
	rt.Register("fn", func(ctx context.Context, in []byte) ([]byte, error) {
		return append([]byte{byte('0' + id)}, in...), nil
	})
	cfg := DefaultGatewayConfig()
	cfg.Timeout = time.Second
	cfg.Admission = func() error {
		if cur := int(leader.Load()); cur != id {
			return rpc.NotLeaderError(cur)
		}
		return nil
	}
	g := NewGatewayConfig(rt, cfg)
	g.ExposeChain("who", []string{"fn"})
	t.Cleanup(g.Close)
	return g
}

// TestLinkedFailoverFlipsTransportOnLeaderChange is the acceptance test
// for FailoverClient fast-path auto-selection: with the leader
// co-located the calls ride the shm ring; after a leader change to a
// remote replica the same client follows the redirect onto a mux
// stream, and the selected transport kinds prove it.
func TestLinkedFailoverFlipsTransportOnLeaderChange(t *testing.T) {
	var leader atomic.Int32 // replica 0 leads first
	local := leaderGateway(t, 0, &leader)
	remote := leaderGateway(t, 1, &leader)

	// The "remote" replica serves real TCP on loopback; the local one is
	// in-process.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go remote.Server().Serve(ln)

	l := NewLinker(LinkerOptions{Callers: 8})
	defer l.Close()
	fc := NewLinkedFailover(l, []Peer{
		{Gateway: local},
		{Addr: ln.Addr().String()},
	}, rpc.FailoverOptions{Attempts: 8, RetryBackoff: 5 * time.Millisecond})
	defer fc.Close()

	out, err := fc.Call(context.Background(), "who", []byte("?"))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "0?" {
		t.Fatalf("leader 0 answered %q", out)
	}
	if k, ok := fc.LeaderKind(); !ok || k != TransportRing {
		t.Fatalf("co-located leader rides %v (built=%v), want ring", k, ok)
	}

	// Leadership moves to the remote replica: the next call must follow
	// the redirect and land on the mux-stream fast path.
	leader.Store(1)
	out, err = fc.Call(context.Background(), "who", []byte("?"))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "1?" {
		t.Fatalf("leader 1 answered %q", out)
	}
	if fc.Leader() != 1 {
		t.Fatalf("believed leader = %d, want 1", fc.Leader())
	}
	if k, ok := fc.LeaderKind(); !ok || k != TransportStream {
		t.Fatalf("remote leader rides %v (built=%v), want stream", k, ok)
	}

	// And back: leadership returns to the co-located replica, calls
	// return to the ring.
	leader.Store(0)
	if _, err := fc.Call(context.Background(), "who", []byte("?")); err != nil {
		t.Fatal(err)
	}
	if k, ok := fc.LeaderKind(); !ok || k != TransportRing {
		t.Fatalf("restored co-located leader rides %v (built=%v), want ring", k, ok)
	}
}
