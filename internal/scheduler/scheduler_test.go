package scheduler

import (
	"testing"

	"hivemind/internal/cluster"
	"hivemind/internal/sim"
)

func TestWorkerMonitorSamplesPeriodically(t *testing.T) {
	eng := sim.NewEngine(1)
	cls := cluster.New(eng, cluster.Config{Servers: 1, CoresPerServer: 4, MemGBPerServer: 8})
	m := NewWorkerMonitor(eng, cls.Server(0), 1.0)
	if m.Utilization() != 0 || m.FreeCores() != 4 {
		t.Fatalf("initial view: %g, %d", m.Utilization(), m.FreeCores())
	}
	// Load the server; the view updates only after the next sample.
	eng.At(0.1, func() {
		cls.Server(0).Cores().Use(10, nil)
		cls.Server(0).Cores().Use(10, nil)
		if m.FreeCores() != 4 {
			t.Error("view updated without a sample (should be stale)")
		}
	})
	eng.RunUntil(2)
	if m.FreeCores() != 2 || m.Utilization() != 0.5 {
		t.Fatalf("post-sample view: %g, %d", m.Utilization(), m.FreeCores())
	}
	if m.Server() != cls.Server(0) {
		t.Fatal("server accessor")
	}
	m.Stop()
}

func TestPlacerPrefersFreeCoresAndSkipsProbation(t *testing.T) {
	eng := sim.NewEngine(1)
	cls := cluster.New(eng, cluster.Config{Servers: 3, CoresPerServer: 4, MemGBPerServer: 8})
	p := NewPlacer(eng, cls, 0.5)
	defer p.Stop()
	cls.Server(2).Cores().Use(100, nil)
	eng.RunUntil(1) // let monitors sample
	if got := p.Pick(); got.ID == 2 {
		t.Fatalf("picked loaded server %d", got.ID)
	}
	cls.Server(0).Probation(100)
	cls.Server(1).Probation(100)
	if got := p.Pick(); got == nil {
		t.Fatal("no server picked with all probated")
	}
}

func TestShardedSerializesPerShard(t *testing.T) {
	eng := sim.NewEngine(1)
	s := NewSharded(eng, 1, 0.001)
	var last sim.Time
	for i := 0; i < 100; i++ {
		s.Decide(uint64(i), func(l sim.Time) { last = l })
	}
	eng.Run()
	// 100 decisions × 1ms on one shard: the last waited ~99ms.
	if last < 0.09 {
		t.Fatalf("last decision latency %g, want ~0.099", last)
	}
	if s.Decisions() != 100 {
		t.Fatalf("decisions = %d", s.Decisions())
	}
}

func TestShardingScalesThroughput(t *testing.T) {
	run := func(shards int) sim.Time {
		eng := sim.NewEngine(1)
		s := NewSharded(eng, shards, 0.001)
		done := 0
		for i := 0; i < 1000; i++ {
			s.Decide(uint64(i), func(sim.Time) { done++ })
		}
		eng.Run()
		if done != 1000 {
			t.Fatalf("done = %d", done)
		}
		return eng.Now()
	}
	one, four := run(1), run(4)
	if four >= one/3 {
		t.Fatalf("4 shards (%.3gs) not ~4x faster than 1 (%.3gs)", four, one)
	}
}

func TestShardedCapacityAndQueueDelay(t *testing.T) {
	eng := sim.NewEngine(1)
	s := NewSharded(eng, 2, 0.002)
	if got := s.CapacityDecisionsPerS(); got != 1000 {
		t.Fatalf("capacity = %g", got)
	}
	if s.Shards() != 2 {
		t.Fatalf("shards = %d", s.Shards())
	}
	for i := 0; i < 50; i++ {
		s.Decide(uint64(i), nil)
	}
	eng.Run()
	if s.MeanQueueDelay() <= 0 {
		t.Fatal("no queueing recorded under burst")
	}
}

func TestShardedInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	NewSharded(sim.NewEngine(1), 0, 0.001)
}

// The §5.6 claim in miniature: at a decision rate that saturates one
// shard, adding shards restores low decision latency.
func TestCentralizedBottleneckRelievedBySharding(t *testing.T) {
	decisionLatency := func(shards int, ratePerS float64) sim.Time {
		eng := sim.NewEngine(3)
		s := NewSharded(eng, shards, 0.0002) // 5000 decisions/s/shard
		var worst sim.Time
		n := int(ratePerS * 2)
		for i := 0; i < n; i++ {
			at := float64(i) / ratePerS
			key := uint64(i)
			eng.At(at, func() {
				s.Decide(key, func(l sim.Time) {
					if l > worst {
						worst = l
					}
				})
			})
		}
		eng.Run()
		return worst
	}
	// 8000 decisions/s ≈ an 8k-drone swarm: one shard saturates.
	saturated := decisionLatency(1, 8000)
	sharded := decisionLatency(4, 8000)
	if sharded >= saturated/5 {
		t.Fatalf("sharding did not relieve bottleneck: %g vs %g", sharded, saturated)
	}
}

// TestMeanQueueDelayWeightsBusyShards is the regression test for the
// unweighted per-shard average: with every key landing on shard 0
// (key%2 == 0), the idle shard must not drag the reported decision
// wait toward zero.
func TestMeanQueueDelayWeightsBusyShards(t *testing.T) {
	eng := sim.NewEngine(1)
	s := NewSharded(eng, 2, 0.01)
	for i := 0; i < 10; i++ {
		s.Decide(uint64(2*i), nil) // deliberately skewed: all on shard 0
	}
	eng.Run()
	// Shard 0 waits are 0, 10ms, ..., 90ms -> mean 45ms; shard 1 made
	// no decisions and contributes no weight.
	got := s.MeanQueueDelay()
	want := sim.Time(0.045)
	if got < want*0.999 || got > want*1.001 {
		t.Fatalf("mean queue delay = %g, want %g (decision-weighted)", got, want)
	}
}

func TestMeanQueueDelayZeroDecisions(t *testing.T) {
	s := NewSharded(sim.NewEngine(1), 4, 0.01)
	if got := s.MeanQueueDelay(); got != 0 {
		t.Fatalf("mean queue delay with no decisions = %g, want 0", got)
	}
}
