// Local FaaS: run a HiveMind application for real, not simulated. The
// people-counting pipeline executes on the in-process serverless
// runtime (Go functions, warm containers, retries, straggler
// duplicates, store-backed data exchange) while the edge tier is served
// over the real RPC framework — the same split the compiler's generated
// bindings target.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"hivemind/internal/rpc"
	"hivemind/internal/runtime"
)

// sighting is what drones upload: a frame id plus the "faces" seen.
type sighting struct {
	Frame string   `json:"frame"`
	Faces []string `json:"faces"`
}

func main() {
	// --- Cloud side: the serverless runtime hosts recognition + dedup.
	cfg := runtime.DefaultConfig()
	cfg.StragglerAfter = 200 * time.Millisecond
	rt := runtime.New(cfg, nil)
	defer rt.Close()

	rt.Register("recognize", func(ctx context.Context, in []byte) ([]byte, error) {
		// "Recognition": extract face tokens from the raw frame text.
		var faces []string
		for _, tok := range strings.Fields(string(in)) {
			if strings.HasPrefix(tok, "person:") {
				faces = append(faces, strings.TrimPrefix(tok, "person:"))
			}
		}
		return json.Marshal(sighting{Frame: "f", Faces: faces})
	})
	rt.Register("dedup", func(ctx context.Context, in []byte) ([]byte, error) {
		// "Deduplication": count distinct identities across sightings.
		var all []sighting
		if err := json.Unmarshal(in, &all); err != nil {
			return nil, err
		}
		unique := map[string]bool{}
		for _, s := range all {
			for _, f := range s.Faces {
				unique[f] = true
			}
		}
		return []byte(fmt.Sprintf("%d", len(unique))), nil
	})

	// --- Edge side: obstacle avoidance stays on-board, reachable over
	// the synthesized RPC API (in-process pipe standing in for the
	// wireless link).
	edge := rpc.NewServer()
	edge.Register("collectImage.obstacleAvoidance", func(payload []byte) ([]byte, error) {
		if strings.Contains(string(payload), "obstacle") {
			return []byte("adjust-route"), nil
		}
		return []byte("hold-course"), nil
	})
	cc, sc := rpc.Pair()
	edge.ServeConn(sc)
	defer edge.Close()
	edgeClient := rpc.NewClient(cc, 8)
	defer edgeClient.Close()

	// --- Mission: 16 drones each upload 4 frames; recognition fans out
	// per frame; dedup aggregates everything.
	ctx := context.Background()
	people := []string{"ana", "bo", "chen", "dee", "eli", "fay", "gus"}
	var frames [][]byte
	for d := 0; d < 16; d++ {
		for f := 0; f < 4; f++ {
			var sb strings.Builder
			fmt.Fprintf(&sb, "frame d%d-%d trees grass", d, f)
			if f == 2 {
				sb.WriteString(" obstacle")
			}
			// Each frame sees a couple of (overlapping) people.
			sb.WriteString(" person:" + people[(d+f)%len(people)])
			sb.WriteString(" person:" + people[(d*3+f)%len(people)])
			frames = append(frames, []byte(sb.String()))
		}
	}

	start := time.Now()
	// Edge tier: every frame passes obstacle avoidance on-board first.
	adjustments := 0
	for _, fr := range frames {
		resp, err := edgeClient.CallSync("collectImage.obstacleAvoidance", fr)
		if err != nil {
			panic(err)
		}
		if string(resp) == "adjust-route" {
			adjustments++
		}
	}
	// Cloud tier 1: recognition fans out across functions (intra-task
	// parallelism, §3.2).
	outs, err := rt.FanOut(ctx, "recognize", frames)
	if err != nil {
		panic(err)
	}
	// Data exchange: recognition outputs land in the document store
	// (the CouchDB pattern), dedup reads them back.
	var all []sighting
	for i, out := range outs {
		key := fmt.Sprintf("out/recognize/%d", i)
		if _, err := rt.Store().Force(key, out); err != nil {
			panic(err)
		}
		doc, err := rt.Store().Get(key)
		if err != nil {
			panic(err)
		}
		var s sighting
		if err := json.Unmarshal(doc.Body, &s); err != nil {
			panic(err)
		}
		all = append(all, s)
	}
	blob, _ := json.Marshal(all)
	res, err := rt.Invoke(ctx, "dedup", blob)
	if err != nil {
		panic(err)
	}
	elapsed := time.Since(start)

	st := rt.Stats()
	fmt.Printf("processed %d frames from 16 drones in %v (real execution)\n", len(frames), elapsed.Round(time.Millisecond))
	fmt.Printf("on-board obstacle adjustments: %d\n", adjustments)
	fmt.Printf("unique people counted: %s (ground truth: %d)\n", res.Output, len(people))
	fmt.Printf("runtime: %d invocations, %d cold starts, %d warm reuses, %d retries\n",
		st.Invocations, st.ColdStarts, st.WarmStarts, st.Retries)
	fmt.Printf("store: %d documents, %d updates\n", rt.Store().Len(), rt.Store().Seq())
}
