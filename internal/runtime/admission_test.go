package runtime

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hivemind/internal/rpc"
)

// testAdmission builds a bare admission controller (no monitor, no
// runtime) for direct unit testing.
func testAdmission(cfg AdmissionConfig) *admission {
	return newAdmission(&Gateway{}, cfg)
}

func TestAdmissionFastPath(t *testing.T) {
	a := testAdmission(AdmissionConfig{MaxConcurrent: 2})
	rel1, err := a.admit(context.Background(), "m")
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := a.admit(context.Background(), "m")
	if err != nil {
		t.Fatal(err)
	}
	a.mu.Lock()
	active := a.active
	a.mu.Unlock()
	if active != 2 {
		t.Fatalf("active = %d, want 2", active)
	}
	rel1()
	rel2()
	a.mu.Lock()
	active = a.active
	a.mu.Unlock()
	if active != 0 {
		t.Fatalf("active after release = %d, want 0", active)
	}
}

func TestAdmissionQueueFullSheds(t *testing.T) {
	a := testAdmission(AdmissionConfig{MaxConcurrent: 1, QueueLen: 1, RetryAfter: 40 * time.Millisecond})
	release, err := a.admit(context.Background(), "m")
	if err != nil {
		t.Fatal(err)
	}
	// Fill the single queue slot.
	granted := make(chan error, 1)
	go func() {
		rel, err := a.admit(context.Background(), "m")
		if err == nil {
			rel()
		}
		granted <- err
	}()
	waitCond(t, func() bool {
		a.mu.Lock()
		defer a.mu.Unlock()
		return a.queued == 1
	})
	// The queue is full: the next arrival is shed immediately with the
	// configured retry-after hint.
	_, err = a.admit(context.Background(), "m")
	if !rpc.IsShed(err) {
		t.Fatalf("err = %v, want shed", err)
	}
	if ra, ok := rpc.ShedRetryAfter(err); !ok || ra != 40*time.Millisecond {
		t.Fatalf("retry-after = %v, %v", ra, ok)
	}
	if a.shedFull.Load() != 1 {
		t.Fatalf("shedFull = %d", a.shedFull.Load())
	}
	release()
	if err := <-granted; err != nil {
		t.Fatalf("queued waiter: %v", err)
	}
}

func TestAdmissionControlLaneBeatsBatch(t *testing.T) {
	a := testAdmission(AdmissionConfig{
		MaxConcurrent: 1,
		QueueLen:      8,
		Lanes:         map[string]Lane{"ctl": LaneControl, "bat": LaneBatch},
	})
	release, err := a.admit(context.Background(), "m")
	if err != nil {
		t.Fatal(err)
	}
	order := make(chan string, 2)
	var wg sync.WaitGroup
	spawn := func(method string, wantQueued int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rel, err := a.admit(context.Background(), method)
			if err != nil {
				t.Errorf("%s: %v", method, err)
				return
			}
			order <- method
			rel()
		}()
		waitCond(t, func() bool {
			a.mu.Lock()
			defer a.mu.Unlock()
			return a.queued == wantQueued
		})
	}
	// Enqueue batch first, control second: grant order must invert it.
	spawn("bat", 1)
	spawn("ctl", 2)
	release()
	wg.Wait()
	close(order)
	var got []string
	for m := range order {
		got = append(got, m)
	}
	if len(got) != 2 || got[0] != "ctl" || got[1] != "bat" {
		t.Fatalf("grant order = %v, want [ctl bat]", got)
	}
}

func TestAdmissionCancelledWaiterFreesQueue(t *testing.T) {
	a := testAdmission(AdmissionConfig{MaxConcurrent: 1, QueueLen: 4})
	release, err := a.admit(context.Background(), "m")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := a.admit(ctx, "m")
		done <- err
	}()
	waitCond(t, func() bool {
		a.mu.Lock()
		defer a.mu.Unlock()
		return a.queued == 1
	})
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter err = %v", err)
	}
	a.mu.Lock()
	queued := a.queued
	a.mu.Unlock()
	if queued != 0 {
		t.Fatalf("queued after cancel = %d", queued)
	}
	// The slot the cancelled waiter never took is still grantable.
	release()
	rel, err := a.admit(context.Background(), "m")
	if err != nil {
		t.Fatal(err)
	}
	rel()
}

// TestAdmissionCancelledWaitersDontCountTowardLaneFull is the
// regression test for the lane-full check counting cancelled waiters
// still parked in the queue slice: after a burst of client timeouts a
// lane must keep accepting arrivals while its live depth is below
// QueueLen, and the backing slice must not grow without bound.
func TestAdmissionCancelledWaitersDontCountTowardLaneFull(t *testing.T) {
	a := testAdmission(AdmissionConfig{MaxConcurrent: 1, QueueLen: 4})
	release, err := a.admit(context.Background(), "m")
	if err != nil {
		t.Fatal(err)
	}
	// Three bursts of QueueLen clients queue up and time out: 12
	// cancelled waiters pass through a 4-deep lane.
	for round := 0; round < 3; round++ {
		ctx, cancel := context.WithCancel(context.Background())
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := a.admit(ctx, "m"); !errors.Is(err, context.Canceled) {
					t.Errorf("round %d waiter err = %v, want cancelled", round, err)
				}
			}()
			waitCond(t, func() bool {
				a.mu.Lock()
				defer a.mu.Unlock()
				return a.queued == i+1
			})
		}
		cancel()
		wg.Wait()
	}
	// Live depth is zero: a fresh arrival must queue, not shed.
	granted := make(chan error, 1)
	go func() {
		rel, err := a.admit(context.Background(), "m")
		if err == nil {
			rel()
		}
		granted <- err
	}()
	waitCond(t, func() bool {
		a.mu.Lock()
		defer a.mu.Unlock()
		return a.queued == 1
	})
	if got := a.shedFull.Load(); got != 0 {
		t.Fatalf("spurious shed-full after cancellations: %d", got)
	}
	a.mu.Lock()
	parked := len(a.queues[laneRank(LaneInteractive)])
	a.mu.Unlock()
	if parked > 2*4 {
		t.Fatalf("cancelled waiters accumulated: %d parked, want compaction to bound it", parked)
	}
	release()
	if err := <-granted; err != nil {
		t.Fatalf("live waiter after cancellation burst: %v", err)
	}
}

// TestAdmissionCancelRepublishesDepthGauge is the regression test for
// the ctx-cancel path leaving a stale gateway-queue-depth high-water
// reading: the gauge must drop when a queued waiter cancels, not wait
// for the next release/enqueue.
func TestAdmissionCancelRepublishesDepthGauge(t *testing.T) {
	mon := &overloadMonitor{}
	g := &Gateway{monitor: mon}
	a := newAdmission(g, AdmissionConfig{MaxConcurrent: 1, QueueLen: 4})
	release, err := a.admit(context.Background(), "m")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := a.admit(ctx, "m")
		done <- err
	}()
	waitCond(t, func() bool { return mon.gauge("gateway-queue-depth") == 1 })
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter err = %v", err)
	}
	waitCond(t, func() bool { return mon.gauge("gateway-queue-depth") == 0 })
	release()
}

// TestAdmissionCoDelShedsUnderSustainedDelay drives the queue so its
// standing delay stays above Target for longer than Interval and checks
// the control law starts shedding at dequeue.
func TestAdmissionCoDelShedsUnderSustainedDelay(t *testing.T) {
	a := testAdmission(AdmissionConfig{
		MaxConcurrent: 1,
		QueueLen:      64,
		Target:        time.Millisecond,
		Interval:      10 * time.Millisecond,
	})
	release, err := a.admit(context.Background(), "m")
	if err != nil {
		t.Fatal(err)
	}
	const waiters = 30
	var shed, admitted atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rel, err := a.admit(context.Background(), "m")
			if rpc.IsShed(err) {
				shed.Add(1)
				return
			}
			if err != nil {
				t.Errorf("admit: %v", err)
				return
			}
			admitted.Add(1)
			time.Sleep(5 * time.Millisecond) // hold the slot: delay stays high
			rel()
		}()
	}
	waitCond(t, func() bool {
		a.mu.Lock()
		defer a.mu.Unlock()
		return a.queued == waiters
	})
	time.Sleep(15 * time.Millisecond) // sojourn grows past Target for > Interval
	release()
	wg.Wait()
	if shed.Load() == 0 {
		t.Fatal("sustained standing delay shed nothing")
	}
	if admitted.Load() == 0 {
		t.Fatal("CoDel shed everything: control law too aggressive")
	}
	if got := shed.Load() + admitted.Load(); got != waiters {
		t.Fatalf("accounted waiters = %d, want %d", got, waiters)
	}
	if a.shedCoDel.Load() != uint64(shed.Load()) {
		t.Fatalf("shedCoDel = %d, shed callers = %d", a.shedCoDel.Load(), shed.Load())
	}
}

// TestGatewayOverloadSheds drives an Overload-configured gateway past
// capacity end to end and checks sheds surface as rpc.ShedError with
// the shed/ok counters split correctly.
func TestGatewayOverloadSheds(t *testing.T) {
	rt := New(DefaultConfig(), nil)
	defer rt.Close()
	block := make(chan struct{})
	rt.Register("hold", func(ctx context.Context, in []byte) ([]byte, error) {
		select {
		case <-block:
			return bytes.ToUpper(in), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	cfg := DefaultGatewayConfig()
	cfg.Overload = &AdmissionConfig{MaxConcurrent: 2, QueueLen: 2, RetryAfter: 25 * time.Millisecond}
	g := NewGatewayConfig(rt, cfg)
	mon := &overloadMonitor{}
	g.SetMonitor(mon)
	g.Expose("m", "hold")
	c := gatewayPair(t, g)

	const calls = 8 // 2 run, 2 queue, 4 shed
	errs := make(chan error, calls)
	for i := 0; i < calls; i++ {
		go func() {
			_, err := c.CallSync("m", []byte("x"))
			errs <- err
		}()
	}
	waitCond(t, func() bool {
		s := g.AdmissionStats()
		return s.ShedFull == calls-4
	})
	close(block)
	var shed, ok int
	for i := 0; i < calls; i++ {
		switch err := <-errs; {
		case err == nil:
			ok++
		case rpc.IsShed(err):
			if _, hasHint := rpc.ShedRetryAfter(err); !hasHint {
				t.Errorf("shed without retry-after hint: %v", err)
			}
			shed++
		default:
			t.Errorf("unexpected error: %v", err)
		}
	}
	if shed != 4 || ok != 4 {
		t.Fatalf("shed = %d, ok = %d, want 4/4", shed, ok)
	}
	if got := mon.get("gateway-shed"); got != 4 {
		t.Fatalf("gateway-shed count = %d, want 4", got)
	}
	if got := mon.get("gateway-ok"); got != 4 {
		t.Fatalf("gateway-ok count = %d, want 4", got)
	}
	if got := mon.get("gateway-error"); got != 0 {
		t.Fatalf("sheds leaked into gateway-error: %d", got)
	}
}

// TestGatewayDropsExpiredBeforeDispatch checks the gateway refuses to
// dispatch work whose wire deadline already passed, counting it as an
// expired drop rather than executing it.
func TestGatewayDropsExpiredBeforeDispatch(t *testing.T) {
	rt := New(DefaultConfig(), nil)
	defer rt.Close()
	var executed atomic.Int64
	rt.Register("f", func(ctx context.Context, in []byte) ([]byte, error) {
		executed.Add(1)
		return in, nil
	})
	g := NewGateway(rt, time.Second)
	mon := &overloadMonitor{}
	g.SetMonitor(mon)
	g.Expose("m", "f")
	c := gatewayPair(t, g)

	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := c.Call(ctx, "m", []byte("x"))
	if err == nil {
		t.Fatal("expired call succeeded")
	}
	if executed.Load() != 0 {
		t.Fatalf("expired request executed %d times", executed.Load())
	}
}

// overloadMonitor is a concurrency-safe GatewayMonitor with gauges.
type overloadMonitor struct {
	mu     sync.Mutex
	counts map[string]int
	gauges map[string]float64
}

func (m *overloadMonitor) CountEvent(name string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.counts == nil {
		m.counts = map[string]int{}
	}
	m.counts[name]++
}

func (m *overloadMonitor) Observe(string, float64) {}

func (m *overloadMonitor) SetGauge(name string, v float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.gauges == nil {
		m.gauges = map[string]float64{}
	}
	m.gauges[name] = v
}

func (m *overloadMonitor) gauge(name string) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.gauges[name]
}

func (m *overloadMonitor) get(name string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counts[name]
}

// waitCond polls until cond holds or the test deadline approaches.
func waitCond(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(200 * time.Microsecond)
	}
	t.Fatal("condition never held")
}
