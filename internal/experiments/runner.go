package experiments

import (
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// executor is the shared execution state behind one evaluation run: a
// bounded worker pool that every fan-out in the run draws from, plus a
// memoized cache of the standard job/scenario runs. A single executor
// spans RunAll and all the experiments it drives, so identical runs
// requested by different figures (fig04, fig11 and fig18 all measure
// centralized-FaaS S1, for example) are simulated exactly once.
type executor struct {
	// slots holds the extra worker tokens. Capacity is parallelism-1:
	// the goroutine calling fanOut always participates, so a pool of
	// size N runs at most N points at once. Workers acquire with a
	// non-blocking receive, which makes nested fan-outs deadlock-free —
	// when no token is free the caller just runs its points itself.
	slots     chan struct{}
	jobs      sync.Map // jobKey -> *memo[platform.JobResult]
	scenarios sync.Map // scenKey -> *memo[scenario.Result]
}

func newExecutor(parallelism int) *executor {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	x := &executor{slots: make(chan struct{}, parallelism-1)}
	for i := 0; i < parallelism-1; i++ {
		x.slots <- struct{}{}
	}
	return x
}

// withExec returns cfg with the run-wide executor installed, creating
// one sized by cfg.Parallelism when the config doesn't carry one yet
// (i.e. this call is the root of a run, not a nested driver).
func (cfg RunConfig) withExec() RunConfig {
	if cfg.exec == nil {
		cfg.exec = newExecutor(cfg.Parallelism)
	}
	return cfg
}

// borrow takes up to n spare worker tokens from the pool without
// blocking and returns how many it got. Drivers that run one sharded
// simulation across cores use it to widen that simulation with workers
// the sweep isn't using, keeping total concurrency bounded by the
// configured parallelism. Pair with release.
func (x *executor) borrow(n int) int {
	if x == nil {
		return 0
	}
	got := 0
	for got < n {
		select {
		case <-x.slots:
			got++
		default:
			return got
		}
	}
	return got
}

// release returns n borrowed tokens to the pool.
func (x *executor) release(n int) {
	for i := 0; i < n; i++ {
		x.slots <- struct{}{}
	}
}

// memo is a singleflight cell: the first caller computes, everyone else
// blocks on the Once and then reads the settled value.
type memo[T any] struct {
	once sync.Once
	val  T
}

func memoized[T any](m *sync.Map, key any, compute func() T) T {
	v, _ := m.LoadOrStore(key, &memo[T]{})
	entry := v.(*memo[T])
	entry.once.Do(func() { entry.val = compute() })
	return entry.val
}

// fanOut runs fn(0), …, fn(n-1) on the run's worker pool and returns
// when all have finished. The calling goroutine always works, and extra
// workers join only while spare pool tokens exist, so total concurrency
// stays bounded by the configured parallelism no matter how fan-outs
// nest (experiments over sweep points over chunked estimation).
//
// Each index must write only its own state (typically results[i]);
// under that contract the outcome is identical to the serial loop
// regardless of scheduling, which is what keeps parallel sweeps
// byte-identical to -parallel 1 runs.
func fanOut(cfg RunConfig, n int, fn func(int)) {
	x := cfg.exec
	if x == nil || cap(x.slots) == 0 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			fn(i)
		}
	}
	var wg sync.WaitGroup
	for spawned := 0; spawned < n-1; spawned++ {
		select {
		case <-x.slots:
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { x.slots <- struct{}{} }()
				work()
			}()
			continue
		default:
		}
		break
	}
	work()
	wg.Wait()
}

// mapPar computes f over 0..n-1 on the run's pool and returns the
// results in index order — the indexed fan-out drivers use for their
// independent sweep points.
func mapPar[T any](cfg RunConfig, n int, f func(int) T) []T {
	out := make([]T, n)
	fanOut(cfg, n, func(i int) { out[i] = f(i) })
	return out
}

// RunResult pairs an experiment with its report and wall-clock cost.
type RunResult struct {
	Experiment Experiment
	Report     *Report
	Elapsed    time.Duration
}

// RunAll executes every registered experiment and returns the results
// in figure order (the same order All() yields, regardless of which
// finished first). Experiments and their inner sweep points share one
// bounded pool of cfg.Parallelism workers (GOMAXPROCS when zero) and
// one memoized run cache; with Parallelism: 1 the whole sweep runs on
// the calling goroutine.
func RunAll(cfg RunConfig) []RunResult { return RunMatching(cfg, "") }

// RunMatching runs the experiments whose ID contains substr (all when
// empty), with the same sharing and ordering guarantees as RunAll. The
// shard-parity CI lane uses it to run just the mega-swarm driver at
// several -shards settings and diff the reports.
func RunMatching(cfg RunConfig, substr string) []RunResult {
	cfg = cfg.withExec()
	var exps []Experiment
	for _, e := range All() {
		if substr == "" || strings.Contains(e.ID, substr) {
			exps = append(exps, e)
		}
	}
	out := make([]RunResult, len(exps))
	fanOut(cfg, len(exps), func(i int) {
		start := time.Now()
		rep := exps[i].Run(cfg)
		out[i] = RunResult{Experiment: exps[i], Report: rep, Elapsed: time.Since(start)}
	})
	return out
}
