package dsl

import (
	"strings"
	"testing"
)

// listing3 is the paper's example application (People Recognition and
// Deduplication, Listing 3), lightly normalised.
const listing3 = `
# Scenario B: count unique people in a field.
TaskGraph(list=['createRoute','collectImage','obstacleAvoidance',
                'faceRecognition','deduplication'],
          constraint=[execTime='10s'])

Task(createRoute, inputMap, outputRoute, 'tasks/create_route',
     load_balancer='round robin',
     parentTask=None, childTask=['collectImage'])

Task(collectImage, None, sensorData, 'tasks/collect_image',
     speed='4', resolution='1024p', colorFormat='color',
     parentTask=['createRoute'],
     childTask=['obstacleAvoidance','faceRecognition'])

Task(obstacleAvoidance, sensorData, adjustRoute, 'tasks/obstacle_avoid',
     algorithm='slam', parentTask=['collectImage'], childTask=[])

Task(faceRecognition, sensorData, recognitionStats, 'tasks/face_rec',
     trainingData='zoo', algorithm='tensorflow_zoo',
     parentTask=['collectImage'], childTask=['deduplication'])

Task(deduplication, recognitionStats, dedupList, 'tasks/dedup',
     sync='all', parentTask=['faceRecognition'], childTask=[])

Parallel(obstacleAvoidance, faceRecognition)
Serial(faceRecognition, deduplication)
Learn(faceRecognition, 'Global')
Place(obstacleAvoidance, 'Edge:all')
Persist(faceRecognition)
Persist(deduplication)
`

func TestParseListing3(t *testing.T) {
	g, err := ParseAndAnalyze(listing3)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Tasks) != 5 {
		t.Fatalf("tasks = %d", len(g.Tasks))
	}
	if g.Constraints.ExecTimeS != 10 {
		t.Fatalf("execTime = %g", g.Constraints.ExecTimeS)
	}
	face, ok := g.Task("faceRecognition")
	if !ok {
		t.Fatal("faceRecognition missing")
	}
	if face.Learn != "Global" || !face.Persist {
		t.Fatalf("face directives: learn=%q persist=%v", face.Learn, face.Persist)
	}
	if face.Params["algorithm"] != "tensorflow_zoo" {
		t.Fatalf("params = %v", face.Params)
	}
	oa, _ := g.Task("obstacleAvoidance")
	if oa.Pin != PlaceEdge || !oa.PinAll {
		t.Fatalf("obstacle avoidance pin = %v all=%v", oa.Pin, oa.PinAll)
	}
	dedup, _ := g.Task("deduplication")
	if dedup.SyncCond != "all" {
		t.Fatalf("sync = %q", dedup.SyncCond)
	}
	if len(dedup.Parents) != 1 || dedup.Parents[0] != "faceRecognition" {
		t.Fatalf("dedup parents = %v", dedup.Parents)
	}
	// Relations recorded.
	if k, ok := g.RelationBetween("obstacleAvoidance", "faceRecognition"); !ok || k != RelParallel {
		t.Fatal("parallel relation missing")
	}
	if k, ok := g.RelationBetween("deduplication", "faceRecognition"); !ok || k != RelSerial {
		t.Fatal("serial relation missing")
	}
	if _, ok := g.RelationBetween("createRoute", "deduplication"); ok {
		t.Fatal("phantom relation")
	}
}

func TestTopoOrderRespectsEdges(t *testing.T) {
	g, err := ParseAndAnalyze(listing3)
	if err != nil {
		t.Fatal(err)
	}
	order := g.TopoOrder()
	if len(order) != 5 {
		t.Fatalf("topo length = %d", len(order))
	}
	pos := map[string]int{}
	for i, task := range order {
		pos[task.Name] = i
	}
	for _, task := range g.Tasks {
		for _, c := range task.Children {
			if pos[c] <= pos[task.Name] {
				t.Fatalf("child %s before parent %s", c, task.Name)
			}
		}
	}
	roots := g.Roots()
	if len(roots) != 1 || roots[0].Name != "createRoute" {
		t.Fatalf("roots = %v", roots)
	}
}

func TestSymmetricLinkCompletion(t *testing.T) {
	src := `
TaskGraph(list=['a','b'])
Task(a, None, out, 'x', childTask=['b'])
Task(b, out, None, 'y')
`
	g, err := ParseAndAnalyze(src)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := g.Task("b")
	if len(b.Parents) != 1 || b.Parents[0] != "a" {
		t.Fatalf("parent link not completed: %v", b.Parents)
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"empty", "", "empty program"},
		{"unknownOp", "Frobnicate(a)", "unknown operation"},
		{"noGraph", "Task(a, None, None, 'x')", "no TaskGraph"},
		{"noTasks", "TaskGraph(list=[])", "no tasks"},
		{"unlisted", "TaskGraph(list=['a'])\nTask(a, None, None, 'x')\nTask(b, None, None, 'y')", "missing from the TaskGraph list"},
		{"undeclared", "TaskGraph(list=['a','ghost'])\nTask(a, None, None, 'x')", "no Task(ghost"},
		{"badParent", "TaskGraph(list=['a'])\nTask(a, None, None, 'x', parentTask=['ghost'])", "unknown parent"},
		{"selfRef", "TaskGraph(list=['a'])\nTask(a, None, None, 'x', childTask=['a'])", "references itself"},
		{"cycle", "TaskGraph(list=['a','b'])\nTask(a, None, None, 'x', childTask=['b'])\nTask(b, None, None, 'y', childTask=['a'])", "cycle"},
		{"dupTask", "TaskGraph(list=['a'])\nTask(a, None, None, 'x')\nTask(a, None, None, 'x')", "declared twice"},
		{"contradictoryRel", "TaskGraph(list=['a','b'])\nTask(a, None, None, 'x')\nTask(b, None, None, 'y')\nParallel(a,b)\nSerial(a,b)", "contradictory"},
		{"relUnknown", "TaskGraph(list=['a'])\nTask(a, None, None, 'x')\nParallel(a, ghost)", "unknown task"},
		{"relSelf", "TaskGraph(list=['a'])\nTask(a, None, None, 'x')\nParallel(a, a)", "itself"},
		{"badPlace", "TaskGraph(list=['a'])\nTask(a, None, None, 'x')\nPlace(a, 'Mars')", "must be Edge or Cloud"},
		{"badLearn", "TaskGraph(list=['a'])\nTask(a, None, None, 'x')\nLearn(a, 'Sometimes')", "must be Global, Self or Off"},
		{"badSync", "TaskGraph(list=['a'])\nTask(a, None, None, 'x')\nSynchronize(a, 'most')", "must be all or any"},
		{"badConstraint", "TaskGraph(list=['a'], constraint=[warp='9'])\nTask(a, None, None, 'x')", "unknown constraint"},
		{"badDuration", "TaskGraph(list=['a'], constraint=[execTime='fast'])\nTask(a, None, None, 'x')", "duration"},
		{"directiveUnknownTask", "TaskGraph(list=['a'])\nTask(a, None, None, 'x')\nPersist(ghost)", "unknown task"},
		{"unterminated", "TaskGraph(list=['a\n", "unterminated"},
		{"doubleGraph", "TaskGraph(list=['a'])\nTaskGraph(list=['a'])\nTask(a, None, None, 'x')", "duplicate TaskGraph"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseAndAnalyze(tc.src)
			if err == nil {
				t.Fatalf("no error for %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestConstraintParsing(t *testing.T) {
	src := `
TaskGraph(list=['a'], constraint=[execTime='90s', latency='250ms',
          throughput='40', cost='$3.50', power='25W'])
Task(a, None, None, 'x')
`
	g, err := ParseAndAnalyze(src)
	if err != nil {
		t.Fatal(err)
	}
	c := g.Constraints
	if c.ExecTimeS != 90 || c.LatencyS != 0.25 || c.ThroughputTps != 40 ||
		c.MaxCostUSD != 3.5 || c.MaxPowerW != 25 {
		t.Fatalf("constraints = %+v", c)
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	src := "# leading comment\nTaskGraph(list=['a'])  # trailing\n\n\nTask(a, None, None, 'x',)\n"
	if _, err := ParseAndAnalyze(src); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderEquivalentToText(t *testing.T) {
	g, err := NewGraph("scenarioB").
		Constraints(Constraints{ExecTimeS: 10}).
		Task("createRoute", WithIO("inputMap", "outputRoute"), WithCode("tasks/create_route")).
		Task("collectImage", WithParents("createRoute"), WithIO("", "sensorData")).
		Task("obstacleAvoidance", WithParents("collectImage")).
		Task("faceRecognition", WithParents("collectImage"), WithParam("algorithm", "tensorflow_zoo")).
		Task("deduplication", WithParents("faceRecognition"), Colocatable()).
		Parallel("obstacleAvoidance", "faceRecognition").
		Serial("faceRecognition", "deduplication").
		Learn("faceRecognition", "Global").
		Place("obstacleAvoidance", PlaceEdge, true).
		Persist("deduplication").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := ParseAndAnalyze(listing3)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(namesOf(g.TopoOrder()), ",") != strings.Join(namesOf(ref.TopoOrder()), ",") {
		t.Fatalf("builder topo %v != text topo %v", namesOf(g.TopoOrder()), namesOf(ref.TopoOrder()))
	}
	dd, _ := g.Task("deduplication")
	if !dd.Colocatable {
		t.Fatal("colocatable lost")
	}
}

func namesOf(ts []*Task) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = t.Name
	}
	return out
}

func TestBuilderErrors(t *testing.T) {
	if _, err := NewGraph("g").Build(); err == nil {
		t.Fatal("empty graph built")
	}
	if _, err := NewGraph("g").Task("a").Task("a").Build(); err == nil {
		t.Fatal("duplicate task built")
	}
	if _, err := NewGraph("g").Task("a").Place("ghost", PlaceEdge, false).Build(); err == nil {
		t.Fatal("directive on unknown task built")
	}
	if _, err := NewGraph("g").Task("a").Learn("a", "Maybe").Build(); err == nil {
		t.Fatal("bad learn mode built")
	}
	if _, err := NewGraph("g").Task("a", WithParents("a")).Build(); err == nil {
		t.Fatal("self-parent built")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustBuild did not panic")
		}
	}()
	NewGraph("g").MustBuild()
}

func TestGraphString(t *testing.T) {
	g, _ := ParseAndAnalyze(listing3)
	s := g.String()
	if !strings.Contains(s, "createRoute") || !strings.Contains(s, "->") {
		t.Fatalf("graph string = %q", s)
	}
	if PlaceEdge.String() != "edge" || PlaceCloud.String() != "cloud" || PlaceAny.String() != "any" {
		t.Fatal("placement strings")
	}
}

func TestValueHelpers(t *testing.T) {
	v := Value{Kind: ValList, List: []Value{{Kind: ValString, Str: "a"}, {Kind: ValString, Str: "b"}}}
	got := v.Strings()
	if len(got) != 2 || got[0] != "a" {
		t.Fatalf("strings = %v", got)
	}
	single := Value{Kind: ValIdent, Str: "x"}
	if s := single.Strings(); len(s) != 1 || s[0] != "x" {
		t.Fatalf("single = %v", s)
	}
	if (Value{Kind: ValNumber}).Strings() != nil {
		t.Fatal("number should flatten to nil")
	}
}

func TestNumericAndNamedTaskParams(t *testing.T) {
	src := `
TaskGraph(list=['a'])
Task(a, None, None, 'x', speed=4, resolution='1024p')
Schedule(a, priority=7)
Isolate(a)
Restore(a, 'checkpoint')
`
	g, err := ParseAndAnalyze(src)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := g.Task("a")
	if a.Params["speed"] != "4" || a.Params["resolution"] != "1024p" {
		t.Fatalf("params = %v", a.Params)
	}
	if a.Priority != 7 || !a.Isolated || a.Restore != "checkpoint" {
		t.Fatalf("directives = %+v", a)
	}
}

func TestLexerEdgeCases(t *testing.T) {
	// Escapes inside strings.
	src := "TaskGraph(list=['a'])\nTask(a, None, None, 'path\\twith\\nescapes\\\\and\\'quote')\n"
	g, err := ParseAndAnalyze(src)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := g.Task("a")
	if !strings.Contains(a.CodePath, "\t") || !strings.Contains(a.CodePath, "\n") ||
		!strings.Contains(a.CodePath, `\`) || !strings.Contains(a.CodePath, "'") {
		t.Fatalf("escapes lost: %q", a.CodePath)
	}
	// Bad escape rejected.
	if _, err := ParseAndAnalyze("TaskGraph(list=['a'])\nTask(a, None, None, 'bad\\q')"); err == nil {
		t.Fatal("bad escape accepted")
	}
	// Negative and scientific numbers.
	src2 := "TaskGraph(list=['a'])\nTask(a, None, None, 'x', bias=-2.5, scale=1e3)\nSchedule(a, priority=-3)\n"
	g2, err := ParseAndAnalyze(src2)
	if err != nil {
		t.Fatal(err)
	}
	a2, _ := g2.Task("a")
	if a2.Params["bias"] != "-2.5" || a2.Params["scale"] != "1000" {
		t.Fatalf("numeric params = %v", a2.Params)
	}
	if a2.Priority != -3 {
		t.Fatalf("priority = %d", a2.Priority)
	}
	// Double-quoted strings work too.
	if _, err := ParseAndAnalyze("TaskGraph(list=[\"a\"])\nTask(a, None, None, \"x\")"); err != nil {
		t.Fatal(err)
	}
	// Unexpected character.
	if _, err := ParseAndAnalyze("TaskGraph(list=['a']) @"); err == nil {
		t.Fatal("stray character accepted")
	}
}

func TestParserTrailingAndNested(t *testing.T) {
	// Empty argument list and nested lists of idents.
	src := `
TaskGraph(list=['a','b'], constraint=[])
Task(a, None, None, 'x', childTask=['b',])
Task(b, None, None, 'y')
Isolate(a)
`
	g, err := ParseAndAnalyze(src)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := g.Task("a")
	if len(a.Children) != 1 || a.Children[0] != "b" {
		t.Fatalf("children = %v", a.Children)
	}
}

func TestBuilderRemainingDirectives(t *testing.T) {
	g, err := NewGraph("g").
		Task("a").
		Task("b", WithParents("a")).
		Overlap("a", "b").
		Isolate("a").
		Restore("b", "checkpoint").
		Priority("a", 5).
		Synchronize("b", "any").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	a, _ := g.Task("a")
	b, _ := g.Task("b")
	if !a.Isolated || a.Priority != 5 {
		t.Fatalf("a = %+v", a)
	}
	if b.Restore != "checkpoint" || b.SyncCond != "any" {
		t.Fatalf("b = %+v", b)
	}
	if k, ok := g.RelationBetween("a", "b"); !ok || k != RelOverlap {
		t.Fatal("overlap relation missing")
	}
	if _, err := NewGraph("g").Task("a").Synchronize("a", "never").Build(); err == nil {
		t.Fatal("bad sync condition built")
	}
	// MustBuild success path.
	if NewGraph("ok").Task("x").MustBuild() == nil {
		t.Fatal("MustBuild returned nil")
	}
	// Names helper.
	if names := g.Names(); len(names) != 2 || names[0] != "a" {
		t.Fatalf("names = %v", names)
	}
}

func TestParserSyntaxErrors(t *testing.T) {
	bad := []string{
		"TaskGraph list=['a'])",     // missing '('
		"TaskGraph(list=['a'] Task", // missing ')' or ','
		"TaskGraph(list=['a' 'b'])", // missing ',' in list
		"TaskGraph(list=)",          // missing value
		"Task(,)",                   // empty value
		"123(x)",                    // op must be ident
		"TaskGraph(list=['a'])\nTask(a,b,c,d,e,f)", // too many positionals
		"TaskGraph(list=['a'])\nParallel(a)",       // arity
		"TaskGraph(list=['a'])\nPlace(a)",          // missing location
		"TaskGraph(name=7)",                        // wrong type tolerated? name=Text() of number -> empty; fine
	}
	for i, src := range bad[:9] {
		if _, err := ParseAndAnalyze(src); err == nil {
			t.Fatalf("case %d accepted: %q", i, src)
		}
	}
}

func TestParseDurationForms(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want float64
	}{{"10s", 10}, {"1.5m", 90}, {"250ms", 0.25}, {"42", 42}} {
		got, err := parseDuration(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("parseDuration(%q) = %g, %v", tc.in, got, err)
		}
	}
	for _, bad := range []string{"", "fast", "10 parsecs"} {
		if _, err := parseDuration(bad); err == nil {
			t.Fatalf("parseDuration(%q) accepted", bad)
		}
	}
}

func TestTokenStrings(t *testing.T) {
	toks, err := lexAll("Task('s', 3.5)")
	if err != nil {
		t.Fatal(err)
	}
	var all []string
	for _, tok := range toks {
		all = append(all, tok.String())
	}
	joined := strings.Join(all, " ")
	for _, want := range []string{"Task", `"s"`, "3.5", "EOF"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("token strings %q missing %q", joined, want)
		}
	}
}

func TestStreamDeclarations(t *testing.T) {
	src := `
Stream(cameraFeed, rate='8Hz', item='2MB')
TaskGraph(list=['recognize'])
Task(recognize, cameraFeed, stats, 'code/rec')
`
	g, err := ParseAndAnalyze(src)
	if err != nil {
		t.Fatal(err)
	}
	st, ok := g.Streams["cameraFeed"]
	if !ok || st.RateHz != 8 || st.ItemMB != 2 {
		t.Fatalf("stream = %+v ok=%v", st, ok)
	}
	rec, _ := g.Task("recognize")
	if got, ok := g.StreamFor(rec); !ok || got.Name != "cameraFeed" {
		t.Fatal("StreamFor did not resolve the task's input stream")
	}
	// Tasks without a stream input resolve to nothing.
	g2 := NewGraph("x").Stream("s", 4, 1).Task("t", WithIO("other", "")).MustBuild()
	if _, ok := g2.StreamFor(g2.Tasks[0]); ok {
		t.Fatal("phantom stream resolution")
	}
}

func TestStreamErrors(t *testing.T) {
	bad := []string{
		"Stream(s, rate='0Hz')\nTaskGraph(list=['a'])\nTask(a, None, None, 'x')",
		"Stream(s, rate='fastHz')\nTaskGraph(list=['a'])\nTask(a, None, None, 'x')",
		"Stream(s, rate='8Hz', item='bigMB')\nTaskGraph(list=['a'])\nTask(a, None, None, 'x')",
		"Stream(s)\nTaskGraph(list=['a'])\nTask(a, None, None, 'x')",
		"Stream(s, rate='8Hz', wobble='1')\nTaskGraph(list=['a'])\nTask(a, None, None, 'x')",
		"Stream(s, rate='8Hz')\nStream(s, rate='8Hz')\nTaskGraph(list=['a'])\nTask(a, None, None, 'x')",
	}
	for i, src := range bad {
		if _, err := ParseAndAnalyze(src); err == nil {
			t.Fatalf("bad stream %d accepted", i)
		}
	}
	if _, err := NewGraph("g").Stream("", 1, 1).Task("a").Build(); err == nil {
		t.Fatal("builder accepted empty stream name")
	}
	if _, err := NewGraph("g").Stream("s", 1, 1).Stream("s", 1, 1).Task("a").Build(); err == nil {
		t.Fatal("builder accepted duplicate stream")
	}
}
