package chaos_test

import (
	"context"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"hivemind/internal/chaos"
	"hivemind/internal/controller"
	"hivemind/internal/rpc"
	"hivemind/internal/runtime"
	"hivemind/internal/store"
)

// gatedMid builds the 3-tier chain whose middle tier parks its FIRST
// execution on the release channel (later executions — the new
// primary's orphan re-dispatch — pass straight through). It lets a
// test hold a chain hostage on a soon-to-be-partitioned primary and
// release it at a chosen moment after deposition.
func gatedMid(midEntered chan<- struct{}, release <-chan struct{}) (chain []string, fns map[string]runtime.Function) {
	var first atomic.Bool
	first.Store(true)
	fns = map[string]runtime.Function{
		"head": func(ctx context.Context, in []byte) ([]byte, error) {
			return append(append([]byte{}, in...), ".h"...), nil
		},
		"mid": func(ctx context.Context, in []byte) ([]byte, error) {
			if first.CompareAndSwap(true, false) {
				select {
				case midEntered <- struct{}{}:
				default:
				}
				select {
				case <-release:
				case <-ctx.Done():
					return nil, ctx.Err()
				}
			}
			return append(append([]byte{}, in...), ".m"...), nil
		},
		"tail": func(ctx context.Context, in []byte) ([]byte, error) {
			return append(append([]byte{}, in...), ".t"...), nil
		},
	}
	return []string{"head", "mid", "tail"}, fns
}

// Acceptance: the serving primary is cut off from both standbys by a
// symmetric pair partition while a chain it admitted is still running.
// The majority elects a new primary whose promotion raises the store
// fence; when the stranded chain finally commits, the write carries
// the deposed leader's term and bounces off the fence — no split-brain
// write lands, the client sees a wire-parseable fenced redirect, and
// after Heal the cluster converges on a single leader with every step
// of the task committed exactly once (by the majority side's orphan
// re-dispatch).
func TestPartitionE2EMinorityLeaderFenced(t *testing.T) {
	mon := controller.NewMonitor()
	inj := chaos.NewInjector(23, chaos.Config{})
	db := store.NewDB()
	db.SetMonitor(mon)
	midEntered := make(chan struct{}, 1)
	release := make(chan struct{})
	chain, fns := gatedMid(midEntered, release)
	nodes := startDurableCluster(t, 3, 23, mon, inj, db, chain, fns, true)
	primary := waitPrimary(t, nodes, 3*time.Second)
	oldTerm := primary.replica.LeaderTerm()

	// Fire the chain at the primary and hold it hostage in the mid tier.
	conn, err := net.Dial("tcp", primary.gwAddr)
	if err != nil {
		t.Fatal(err)
	}
	cl := rpc.NewClient(conn, 4)
	defer cl.Close()
	callDone := make(chan error, 1)
	go func() {
		_, cerr := cl.Call(context.Background(), "pipeline", runtime.EncodeTask("task-fence", []byte("x")))
		callDone <- cerr
	}()
	select {
	case <-midEntered:
	case <-time.After(5 * time.Second):
		t.Fatal("chain never reached the mid tier")
	}

	// Cut the primary off from BOTH standbys — but not the standbys from
	// each other, and not the client from the primary's gateway. The
	// classic minority-leader partition.
	for _, nd := range nodes {
		if nd.id != primary.id {
			inj.PartitionPair(ctrlName(primary.id), ctrlName(nd.id))
		}
	}

	// The majority side elects a new primary at a higher term; promotion
	// raises the shared store's fence above the deposed leader's term.
	deadline := time.Now().Add(5 * time.Second)
	var newPrimary *failNode
	for newPrimary == nil {
		if time.Now().After(deadline) {
			t.Fatal("majority never elected a new primary")
		}
		for _, nd := range nodes {
			if nd.id != primary.id && nd.replica.State() == controller.Leader &&
				nd.replica.LeaderTerm() > oldTerm {
				newPrimary = nd
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	if db.Fence() <= oldTerm {
		t.Fatalf("fence = %d after takeover, want above the deposed term %d", db.Fence(), oldTerm)
	}

	// The new primary's orphan re-dispatch finishes the task on the
	// majority side (the shared store stands in for the replicated DB,
	// which both sides can still reach).
	waitNoOrphans(t, store.NewCheckpointLog(db), 10*time.Second)
	assertExactlyOnce(t, db, "task-fence")

	// Release the hostage: the deposed primary's commit now carries a
	// stale term and must be fenced, not adopted.
	close(release)
	select {
	case cerr := <-callDone:
		if cerr == nil {
			t.Fatal("deposed primary's chain reported success")
		}
		if !rpc.IsFenced(cerr) {
			t.Fatalf("deposed primary's chain error = %v, want a fenced rejection", cerr)
		}
		if token, fence, ok := rpc.FencedTerms(cerr); !ok || token != oldTerm || fence <= token {
			t.Fatalf("fenced terms = (%d, %d, %v), want token %d behind fence", token, fence, ok, oldTerm)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("hostage chain never finished after release")
	}
	if mon.Count(store.MetricFencedWrite) < 1 {
		t.Fatal("store recorded no fenced write")
	}
	if mon.Count("gateway-fenced") < 1 {
		t.Fatal("gateway recorded no fenced chain")
	}
	// Still exactly-once after the fenced attempt: nothing re-committed.
	assertExactlyOnce(t, db, "task-fence")

	// Heal. The cluster must converge on ONE leader and one term — the
	// healed minority either rejoins as follower or re-wins cleanly; it
	// cannot keep a parallel leadership.
	inj.Heal()
	deadline = time.Now().Add(5 * time.Second)
	for {
		leaders, followers := 0, 0
		var maxTerm uint64
		for _, nd := range nodes {
			switch nd.replica.State() {
			case controller.Leader:
				leaders++
			case controller.Follower:
				followers++
			}
			if term := nd.replica.Term(); term > maxTerm {
				maxTerm = term
			}
		}
		allConverged := leaders == 1 && followers == len(nodes)-1
		if allConverged {
			same := true
			for _, nd := range nodes {
				if nd.replica.Term() != maxTerm {
					same = false
				}
			}
			if same {
				break
			}
		}
		if time.Now().After(deadline) {
			for _, nd := range nodes {
				lid, term := nd.replica.Leader()
				t.Logf("node %d: state=%v leader=%d term=%d", nd.id, nd.replica.State(), lid, term)
			}
			t.Fatal("cluster never converged on a single leader after heal")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if mon.Count(controller.EventStepDown) < 1 {
		t.Fatal("no step-down recorded across the partition")
	}
}
