package geo

import (
	"math/rand"
	"testing"
)

// TestCellIndexTotalAssignment: every device lands in exactly one cell,
// in-field points in the cell containing them, edge/outside points in
// the nearest cell.
func TestCellIndexTotalAssignment(t *testing.T) {
	field := NewField(100, 100)
	cells := Partition(field, 9)
	rng := rand.New(rand.NewSource(4))
	pts := make([]Point, 500)
	for i := range pts {
		pts[i] = Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
	}
	// Edge cases: the far corner (outside every half-open cell) and a
	// point beyond the field.
	pts = append(pts, Point{X: 100, Y: 100}, Point{X: 140, Y: 50})
	ix := BuildCellIndex(cells, pts)

	counted := 0
	for c := 0; c < ix.NumCells(); c++ {
		for _, d := range ix.Devices(c) {
			if ix.CellOf(d) != c {
				t.Fatalf("device %d: CellOf=%d but listed in cell %d", d, ix.CellOf(d), c)
			}
			counted++
		}
	}
	if counted != len(pts) {
		t.Fatalf("assigned %d devices, want %d", counted, len(pts))
	}
	for d, p := range pts[:500] {
		if !cells[ix.CellOf(d)].Contains(p) {
			t.Fatalf("in-field device %d at %v assigned to non-containing cell %d", d, p, ix.CellOf(d))
		}
	}
	// The far corner belongs to the last (top-right) cell by nearest
	// center; the out-of-field point to a right-edge cell.
	corner := ix.CellOf(500)
	if got := cells[corner].Center(); got.Dist(Point{100, 100}) > 25 {
		t.Fatalf("corner point assigned to distant cell centred at %v", got)
	}
	if owners := ix.CellOwners(); len(owners) != len(pts) {
		t.Fatalf("CellOwners length %d, want %d", len(owners), len(pts))
	}
}
