# HiveMind reproduction — common targets.

GO ?= go

.PHONY: all build test race chaos live-smoke bench bench-all sweep examples fmt vet clean

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Fault-injection suite: every chaos test seeds its injectors and RNGs
# (fixed seeds baked into the tests), so this run is deterministic.
chaos:
	$(GO) test -race -count=1 \
		-run 'Chaos|Injector|Breaker|Respawn|FailAll|Reliable|Heartbeat|Failover|Replica|Checkpoint|Durable|Straggler|Orphan' \
		./internal/chaos/ ./internal/rpc/ ./internal/runtime/ ./internal/store/ ./internal/controller/

# Observability smoke run: a real TCP fleet with traced requests and a
# chaos-killed primary must emit a non-empty, valid Chrome trace whose
# lanes cover every layer of the stack.
live-smoke:
	$(GO) run ./cmd/hivemind-live -replicas 3 -requests 10 -kill -trace live.json
	$(GO) run ./cmd/hivemind-tracecheck -in live.json \
		-tracks gateway,controller,rpc,runtime

# RPC data-plane benchmarks, recorded as JSON under BENCH_LABEL
# (default "post"). Existing labels in BENCH_rpc.json are preserved, so
# the committed "pre" baseline survives re-runs.
BENCH_LABEL ?= post
bench:
	$(GO) test -run '^$$' -bench . -benchmem -count=1 ./internal/rpc/ > bench_rpc.out
	$(GO) run ./cmd/hivemind-benchjson -in bench_rpc.out -out BENCH_rpc.json -label $(BENCH_LABEL)
	rm -f bench_rpc.out

# Every benchmark in the repo, human-readable.
bench-all:
	$(GO) test -bench=. -benchmem ./...

# Full paper-scale evaluation (writes the EXPERIMENTS.md data).
sweep:
	$(GO) run ./cmd/hivemind-bench -out full_report.txt

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/treasurehunt
	$(GO) run ./examples/peoplecount
	$(GO) run ./examples/rovermaze
	$(GO) run ./examples/dslsynth
	$(GO) run ./examples/localfaas

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

clean:
	$(GO) clean ./...
