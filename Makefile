# HiveMind reproduction — common targets.

GO ?= go

.PHONY: all build test race chaos bench sweep examples fmt vet clean

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Fault-injection suite: every chaos test seeds its injectors and RNGs
# (fixed seeds baked into the tests), so this run is deterministic.
chaos:
	$(GO) test -race -count=1 \
		-run 'Chaos|Injector|Breaker|Respawn|FailAll|Reliable|Heartbeat|Failover|Replica|Checkpoint|Durable|Straggler|Orphan' \
		./internal/chaos/ ./internal/rpc/ ./internal/runtime/ ./internal/store/ ./internal/controller/

bench:
	$(GO) test -bench=. -benchmem ./...

# Full paper-scale evaluation (writes the EXPERIMENTS.md data).
sweep:
	$(GO) run ./cmd/hivemind-bench -out full_report.txt

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/treasurehunt
	$(GO) run ./examples/peoplecount
	$(GO) run ./examples/rovermaze
	$(GO) run ./examples/dslsynth
	$(GO) run ./examples/localfaas

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

clean:
	$(GO) clean ./...
