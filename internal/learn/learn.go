// Package learn implements HiveMind's continuous-learning feature
// (§4.6, Fig. 15): recognition models can be retrained during a mission
// using (a) nothing, (b) each device's own decisions ("Self"), or (c)
// the entire swarm's pooled decisions ("Swarm"). Centralized
// coordination makes (c) possible, and the paper shows it quickly
// eliminates remaining false positives and negatives.
//
// The recognition model is a from-scratch online nearest-centroid
// classifier over synthetic feature vectors. The detection domain is
// deliberately shifted from the model's initial training conditions
// (lighting, angle, field texture), so an un-retrained model
// misclassifies a fraction of observations — the mechanism behind the
// "None" bars in Fig. 15.
package learn

import (
	"fmt"
	"math"
	"math/rand"
)

// Mode selects the retraining regime.
type Mode int

const (
	ModeNone Mode = iota
	ModeSelf
	ModeSwarm
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeSelf:
		return "self"
	case ModeSwarm:
		return "swarm"
	default:
		return "none"
	}
}

// Classifier is an online nearest-centroid model: FaceNet-style, it
// "learns a mapping between faces and a compact Euclidean space, where
// distances correspond to face similarity" — here the embedding is
// given and the model maintains per-class centroids.
type Classifier struct {
	dim       int
	centroids map[int][]float64
	counts    map[int]float64
}

// NewClassifier creates an empty model over dim-dimensional features.
func NewClassifier(dim int) *Classifier {
	if dim <= 0 {
		panic("learn: dimension must be positive")
	}
	return &Classifier{dim: dim, centroids: map[int][]float64{}, counts: map[int]float64{}}
}

// Clone deep-copies the model (per-device models start from the same
// pre-trained weights).
func (c *Classifier) Clone() *Classifier {
	out := NewClassifier(c.dim)
	for k, v := range c.centroids {
		cp := make([]float64, len(v))
		copy(cp, v)
		out.centroids[k] = cp
		out.counts[k] = c.counts[k]
	}
	return out
}

// Seed installs an initial centroid for a class.
func (c *Classifier) Seed(label int, centroid []float64, weight float64) {
	if len(centroid) != c.dim {
		panic("learn: dimension mismatch")
	}
	cp := make([]float64, c.dim)
	copy(cp, centroid)
	c.centroids[label] = cp
	c.counts[label] = weight
}

// Predict returns the nearest class, or -1 for an empty model.
func (c *Classifier) Predict(x []float64) int {
	best, bestD := -1, math.Inf(1)
	for label, cen := range c.centroids {
		var d float64
		for i := range cen {
			diff := x[i] - cen[i]
			d += diff * diff
		}
		if d < bestD || (d == bestD && label < best) {
			best, bestD = label, d
		}
	}
	return best
}

// Update moves the class centroid toward x (online mean with a floor on
// the learning rate so the model keeps adapting).
func (c *Classifier) Update(x []float64, label int) {
	cen, ok := c.centroids[label]
	if !ok {
		cp := make([]float64, c.dim)
		copy(cp, x)
		c.centroids[label] = cp
		c.counts[label] = 1
		return
	}
	c.counts[label]++
	lr := math.Max(1.0/c.counts[label], 0.02)
	for i := range cen {
		cen[i] += lr * (x[i] - cen[i])
	}
}

// Classes returns the number of known classes.
func (c *Classifier) Classes() int { return len(c.centroids) }

// Accuracy aggregates detection quality as the paper reports it.
type Accuracy struct {
	Correct        float64 // fraction of observations classified correctly
	FalsePositives float64 // background classified as target
	FalseNegatives float64 // target classified as background
}

// String implements fmt.Stringer.
func (a Accuracy) String() string {
	return fmt.Sprintf("correct=%.1f%% fp=%.1f%% fn=%.1f%%",
		a.Correct*100, a.FalsePositives*100, a.FalseNegatives*100)
}

// Domain generates labelled observations for a detection problem with a
// train/deploy distribution shift.
type Domain struct {
	dim        int
	background []float64 // true background centroid in the field
	target     []float64 // true target centroid in the field
	noise      float64
}

// Labels.
const (
	LabelBackground = 0
	LabelTarget     = 1
)

// NewDomain builds the detection domain: targets and background are
// separated by `separation` in feature space; deployment conditions are
// shifted by `shift` from the conditions the initial model was trained
// under.
func NewDomain(dim int, separation, shift, noise float64) (*Domain, *Classifier) {
	d := &Domain{dim: dim, noise: noise,
		background: make([]float64, dim), target: make([]float64, dim)}
	for i := 0; i < dim; i++ {
		d.target[i] = separation / math.Sqrt(float64(dim))
	}
	// The pre-trained model knows centroids from the *training*
	// conditions: offset from the field truth by `shift` along a
	// direction orthogonal to the class axis (alternating signs), which
	// rotates the decision boundary and produces both false positives
	// and false negatives in the field.
	model := NewClassifier(dim)
	trainBg := make([]float64, dim)
	trainTg := make([]float64, dim)
	for i := 0; i < dim; i++ {
		v := shift / math.Sqrt(float64(dim))
		if i%2 == 1 {
			v = -v
		}
		trainBg[i] = d.background[i] + v
		trainTg[i] = d.target[i] - v
	}
	model.Seed(LabelBackground, trainBg, 30)
	model.Seed(LabelTarget, trainTg, 30)
	return d, model
}

// Observe draws one labelled field observation.
func (d *Domain) Observe(rng *rand.Rand, label int) []float64 {
	base := d.background
	if label == LabelTarget {
		base = d.target
	}
	x := make([]float64, d.dim)
	for i := range x {
		x[i] = base[i] + rng.NormFloat64()*d.noise
	}
	return x
}

// TrialConfig configures a Fig. 15 retraining trial.
type TrialConfig struct {
	Devices    int
	Rounds     int     // retraining rounds over the mission
	ObsPerDev  int     // observations per device per round
	TargetFrac float64 // fraction of observations that are true targets
	Dim        int
	Separation float64
	Shift      float64
	Noise      float64
	Seed       int64
}

// DefaultTrial matches the scenario scale (16 drones, 25 moving
// people).
func DefaultTrial(devices int, seed int64) TrialConfig {
	return TrialConfig{
		Devices: devices, Rounds: 12, ObsPerDev: 24, TargetFrac: 0.4,
		Dim: 8, Separation: 5.0, Shift: 5.0, Noise: 1.0, Seed: seed,
	}
}

// RunTrial runs a detection mission under a retraining mode and returns
// final-round accuracy plus the per-round accuracy trajectory.
func RunTrial(mode Mode, cfg TrialConfig) (Accuracy, []Accuracy) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	domain, pretrained := NewDomain(cfg.Dim, cfg.Separation, cfg.Shift, cfg.Noise)

	// Per-device models for Self; one shared model for Swarm; the
	// frozen pretrained model for None.
	models := make([]*Classifier, cfg.Devices)
	shared := pretrained.Clone()
	for i := range models {
		models[i] = pretrained.Clone()
	}
	// Devices survey different parts of the field and so observe very
	// different target densities: a device patrolling an empty corner
	// sees almost no positives and cannot retrain its target model on
	// its own — the coverage gap that swarm-pooled retraining closes.
	targetFrac := make([]float64, cfg.Devices)
	for i := range targetFrac {
		targetFrac[i] = cfg.TargetFrac * (0.06 + 1.88*rng.Float64())
		if targetFrac[i] > 0.85 {
			targetFrac[i] = 0.85
		}
	}

	var trajectory []Accuracy
	var last Accuracy
	for round := 0; round < cfg.Rounds; round++ {
		var correct, fp, fn, total float64
		type labelled struct {
			x     []float64
			label int
		}
		var roundObs []labelled
		for dev := 0; dev < cfg.Devices; dev++ {
			model := pretrained
			switch mode {
			case ModeSelf:
				model = models[dev]
			case ModeSwarm:
				model = shared
			}
			for o := 0; o < cfg.ObsPerDev; o++ {
				label := LabelBackground
				if rng.Float64() < targetFrac[dev] {
					label = LabelTarget
				}
				x := domain.Observe(rng, label)
				pred := model.Predict(x)
				total++
				switch {
				case pred == label:
					correct++
				case label == LabelBackground:
					fp++
				default:
					fn++
				}
				// Retraining feedback: a device alone can only trust its
				// own decisions (self-training on predicted labels, which
				// reinforces its mistakes); the centralized backend
				// cross-corroborates sightings across the swarm, so
				// swarm-wide retraining effectively recovers true labels
				// (§4.6: the swarm's pooled decisions "significantly
				// accelerate decision quality").
				switch mode {
				case ModeSelf:
					if pred >= 0 {
						models[dev].Update(x, pred)
					}
				case ModeSwarm:
					roundObs = append(roundObs, labelled{x, label})
				}
			}
		}
		if mode == ModeSwarm {
			// Centralized retraining pools the whole swarm's decisions.
			for _, ob := range roundObs {
				shared.Update(ob.x, ob.label)
			}
		}
		last = Accuracy{Correct: correct / total, FalsePositives: fp / total, FalseNegatives: fn / total}
		trajectory = append(trajectory, last)
	}
	return last, trajectory
}
