package netsim

import (
	"testing"

	"hivemind/internal/sim"
)

// BenchmarkMediumConcurrentFlows measures the fair-share fluid model
// under heavy flow churn (the 1000-drone regime).
func BenchmarkMediumConcurrentFlows(b *testing.B) {
	e := sim.NewEngine(1)
	m := NewMedium(e, 216.75e6, 50e6)
	for i := 0; i < b.N; i++ {
		at := float64(i%1000) * 0.001
		e.At(at, func() { m.Transfer(2e6, nil) })
	}
	b.ResetTimer()
	e.Run()
}

// BenchmarkEdgeToCloudTransfer measures the full transfer path with
// protocol processing and breakdown accounting.
func BenchmarkEdgeToCloudTransfer(b *testing.B) {
	e := sim.NewEngine(1)
	n := NewNetwork(e, DefaultConfig())
	for i := 0; i < b.N; i++ {
		at := float64(i) * 0.0005
		e.At(at, func() { n.EdgeToCloud(2e6, nil) })
	}
	b.ResetTimer()
	e.Run()
}
