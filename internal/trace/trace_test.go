package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestRecorderCollectsAndOrders(t *testing.T) {
	r := NewRecorder(0)
	r.Add(Span{Name: "b", Track: "drone-1", StartS: 2, EndS: 3})
	r.Add(Span{Name: "a", Track: "drone-0", StartS: 1, EndS: 2, Category: "network"})
	if r.Len() != 2 {
		t.Fatalf("len = %d", r.Len())
	}
	spans := r.Spans()
	if spans[0].Name != "a" || spans[1].Name != "b" {
		t.Fatalf("order: %+v", spans)
	}
}

func TestRecorderRejectsInvalid(t *testing.T) {
	r := NewRecorder(0)
	r.Add(Span{Name: "", Track: "x", StartS: 0, EndS: 1})
	r.Add(Span{Name: "x", Track: "", StartS: 0, EndS: 1})
	r.Add(Span{Name: "x", Track: "x", StartS: 2, EndS: 1})
	r.Mark(Instant{Name: ""})
	if r.Len() != 0 {
		t.Fatalf("invalid spans accepted: %d", r.Len())
	}
}

func TestRecorderLimitAndDrops(t *testing.T) {
	r := NewRecorder(2)
	for i := 0; i < 5; i++ {
		r.Add(Span{Name: "s", Track: "t", StartS: float64(i), EndS: float64(i) + 1})
	}
	if r.Len() != 2 || r.Dropped() != 3 {
		t.Fatalf("len=%d dropped=%d", r.Len(), r.Dropped())
	}
}

// TestRecorderInstantLimitAndDrops is the regression test for Mark
// growing without bound: instants must honour the same retention limit
// and dropped accounting as spans.
func TestRecorderInstantLimitAndDrops(t *testing.T) {
	r := NewRecorder(2)
	for i := 0; i < 5; i++ {
		r.Mark(Instant{Name: "fail", Track: "t", AtS: float64(i)})
	}
	if r.InstantsLen() != 2 || r.DroppedInstants() != 3 {
		t.Fatalf("instants=%d dropped=%d, want 2/3", r.InstantsLen(), r.DroppedInstants())
	}
	// Spans and instants are limited independently.
	r.Add(Span{Name: "s", Track: "t", StartS: 0, EndS: 1})
	if r.Len() != 1 || r.Dropped() != 0 {
		t.Fatalf("span accounting disturbed: len=%d dropped=%d", r.Len(), r.Dropped())
	}
}

func TestRecorderDisable(t *testing.T) {
	r := NewRecorder(0)
	r.SetEnabled(false)
	r.Add(Span{Name: "s", Track: "t", StartS: 0, EndS: 1})
	r.Mark(Instant{Name: "m", AtS: 1})
	if r.Len() != 0 {
		t.Fatal("disabled recorder recorded")
	}
}

func TestChromeTraceExport(t *testing.T) {
	r := NewRecorder(0)
	r.Add(Span{Name: "task", Category: "execution", Track: "drone-0",
		StartS: 1.5, EndS: 2.0, Args: map[string]string{"app": "S1"}})
	r.Add(Span{Name: "upload", Category: "network", Track: "server-0", StartS: 1.0, EndS: 1.4})
	r.Mark(Instant{Name: "device-failure", Track: "drone-0", AtS: 3.0})
	r.Mark(Instant{Name: "repartition", AtS: 3.5, Global: true})

	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("output is not a JSON array: %v", err)
	}
	// 2 thread_name metadata + 2 spans + 2 instants.
	if len(events) != 6 {
		t.Fatalf("events = %d", len(events))
	}
	var sawMeta, sawSpan, sawInstant bool
	for _, ev := range events {
		switch ev["ph"] {
		case "M":
			sawMeta = true
		case "X":
			sawSpan = true
			if ev["name"] == "task" {
				if ev["ts"].(float64) != 1.5e6 || ev["dur"].(float64) != 0.5e6 {
					t.Fatalf("span timing: %v", ev)
				}
			}
		case "i":
			sawInstant = true
		}
	}
	if !sawMeta || !sawSpan || !sawInstant {
		t.Fatalf("missing event kinds: meta=%v span=%v instant=%v", sawMeta, sawSpan, sawInstant)
	}
}

func TestSummary(t *testing.T) {
	r := NewRecorder(0)
	r.Add(Span{Name: "a", Category: "network", Track: "t", StartS: 0, EndS: 2})
	r.Add(Span{Name: "b", Category: "network", Track: "t", StartS: 2, EndS: 3})
	r.Add(Span{Name: "c", Track: "t", StartS: 0, EndS: 1})
	s := r.Summary()
	if !strings.Contains(s, "network") || !strings.Contains(s, "2 spans") {
		t.Fatalf("summary = %q", s)
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRecorder(0)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Add(Span{Name: "s", Track: "t", StartS: 0, EndS: 1})
			}
		}()
	}
	wg.Wait()
	if r.Len() != 1600 {
		t.Fatalf("len = %d", r.Len())
	}
}
