package stats

import (
	"fmt"
	"sort"
	"strings"
)

// Stage identifies one component of end-to-end task latency, matching
// the decompositions in Figs. 3a, 6b and 12 of the paper.
type Stage string

const (
	StageNetwork    Stage = "network"    // edge<->cloud transfer + protocol processing
	StageManagement Stage = "management" // scheduling, auth, instantiation
	StageDataIO     Stage = "dataio"     // inter-function data sharing
	StageExecution  Stage = "execution"  // useful computation (cloud and/or edge)
)

// AllStages lists stages in the order the paper's stacked bars use.
var AllStages = []Stage{StageNetwork, StageManagement, StageDataIO, StageExecution}

// Breakdown accumulates per-stage latency samples so both median and
// tail decompositions can be reported.
type Breakdown struct {
	stages map[Stage]*Sample
	total  Sample
}

// NewBreakdown returns an empty breakdown.
func NewBreakdown() *Breakdown {
	return &Breakdown{stages: make(map[Stage]*Sample)}
}

// Record adds one task's per-stage latencies. Missing stages count as 0.
func (b *Breakdown) Record(parts map[Stage]float64) {
	var total float64
	for _, st := range AllStages {
		v := parts[st]
		s, ok := b.stages[st]
		if !ok {
			s = &Sample{}
			b.stages[st] = s
		}
		s.Add(v)
		total += v
	}
	b.total.Add(total)
}

// Merge folds another breakdown's observations into this one (used to
// aggregate per-gateway breakdowns across a replicated live fleet).
func (b *Breakdown) Merge(o *Breakdown) {
	if o == nil {
		return
	}
	for _, st := range AllStages {
		vs := o.Stage(st).Values()
		if len(vs) == 0 {
			continue
		}
		s, ok := b.stages[st]
		if !ok {
			s = &Sample{}
			b.stages[st] = s
		}
		s.AddAll(vs...)
	}
	b.total.AddAll(o.total.Values()...)
}

// Freeze pre-sorts every stage sample and the total so subsequent
// read-only queries are safe for concurrent readers (see Sample.Freeze).
func (b *Breakdown) Freeze() {
	for _, s := range b.stages {
		s.Freeze()
	}
	b.total.Freeze()
}

// N returns the number of recorded tasks.
func (b *Breakdown) N() int { return b.total.N() }

// Total returns the end-to-end latency sample.
func (b *Breakdown) Total() *Sample { return &b.total }

// Stage returns the sample for one stage (empty sample if never seen).
func (b *Breakdown) Stage(st Stage) *Sample {
	if s, ok := b.stages[st]; ok {
		return s
	}
	return &Sample{}
}

// Fractions returns each stage's share of the summed latency at the
// given percentile of per-stage distributions. The fractions are
// normalised to sum to 1 (all-zero input returns zeros).
func (b *Breakdown) Fractions(pctl float64) map[Stage]float64 {
	out := make(map[Stage]float64, len(AllStages))
	var sum float64
	for _, st := range AllStages {
		v := b.Stage(st).Percentile(pctl)
		out[st] = v
		sum += v
	}
	if sum > 0 {
		for st := range out {
			out[st] /= sum
		}
	}
	return out
}

// MeanFraction returns a stage's share of total mean latency.
func (b *Breakdown) MeanFraction(st Stage) float64 {
	var sum float64
	for _, s := range AllStages {
		sum += b.Stage(s).Mean()
	}
	if sum == 0 {
		return 0
	}
	return b.Stage(st).Mean() / sum
}

// String renders the mean decomposition, largest stage first.
func (b *Breakdown) String() string {
	type kv struct {
		st Stage
		v  float64
	}
	var parts []kv
	for _, st := range AllStages {
		parts = append(parts, kv{st, b.MeanFraction(st)})
	}
	sort.Slice(parts, func(i, j int) bool { return parts[i].v > parts[j].v })
	var sb strings.Builder
	for i, p := range parts {
		if i > 0 {
			sb.WriteString(" ")
		}
		fmt.Fprintf(&sb, "%s=%.1f%%", p.st, p.v*100)
	}
	return sb.String()
}
