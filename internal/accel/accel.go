// Package accel models HiveMind's reconfigurable FPGA acceleration
// fabric (§4.4–4.5): an Arria 10-class device attached to the host CPU
// over a UPI memory interconnect, statically partitioned between a
// remote-memory access engine (18% of LUTs) and an RPC/NIC offload
// engine (24% of LUTs). The model covers
//
//   - the area budget and bitstream regions,
//   - hard reconfiguration (coarse decisions: CPU-NIC interface
//     protocol, transport layer) which requires reprogramming,
//   - soft reconfiguration (register-file settings: CCI-P batch size,
//     queue provisioning, active RPC flows, load-balancing scheme)
//     which is fast but incurs a small overhead, and
//   - calibrated performance models: ~2.1 µs round trips and
//     ~12.4 Mrps/core for 64 B RPCs (§4.5), plus remote-memory access
//     latency used for inter-function data sharing (§4.4).
package accel

import (
	"errors"
	"fmt"
)

// Region identifies an acceleration engine on the fabric.
type Region string

const (
	RegionRemoteMem Region = "remote-memory"
	RegionRPC       Region = "rpc-offload"
)

// Paper-reported area shares.
const (
	RemoteMemLUTFrac = 0.18
	RPCLUTFrac       = 0.24
)

// Transport selects the offloaded transport layer (hard reconfig).
type Transport int

const (
	TransportTCP Transport = iota
	TransportUDP
)

// HostInterface selects how the FPGA talks to the host CPU (hard
// reconfig). HiveMind uses the NUMA memory interconnect (CCI-P over
// UPI) rather than PCIe to optimise small RPCs.
type HostInterface int

const (
	InterfaceCCIP HostInterface = iota // UPI memory interconnect
	InterfacePCIe
)

// LoadBalance selects the offload engine's flow-steering scheme (soft
// reconfig).
type LoadBalance int

const (
	LBRoundRobin LoadBalance = iota
	LBFlowHash
)

// HardConfig holds the coarse-grained decisions baked into a bitstream.
type HardConfig struct {
	Transport Transport
	Interface HostInterface
}

// SoftConfig holds the register-file settings tunable online, per
// application, through partial reconfiguration (§4.5).
type SoftConfig struct {
	CCIPBatch    int // batch size of CCI-P transfers (1..64)
	TxQueues     int // transmit queue count (1..64)
	RxQueues     int // receive queue count (1..64)
	QueueDepth   int // per-queue entries (64..65536, power of two)
	ActiveFlows  int // provisioned concurrent RPC flows (1..4096)
	LoadBalancer LoadBalance
}

// DefaultSoftConfig returns a balanced configuration.
func DefaultSoftConfig() SoftConfig {
	return SoftConfig{CCIPBatch: 8, TxQueues: 8, RxQueues: 8, QueueDepth: 1024, ActiveFlows: 256, LoadBalancer: LBFlowHash}
}

// Validate checks register ranges.
func (c SoftConfig) Validate() error {
	switch {
	case c.CCIPBatch < 1 || c.CCIPBatch > 64:
		return fmt.Errorf("accel: CCIPBatch %d out of range [1,64]", c.CCIPBatch)
	case c.TxQueues < 1 || c.TxQueues > 64 || c.RxQueues < 1 || c.RxQueues > 64:
		return fmt.Errorf("accel: queue counts (%d,%d) out of range [1,64]", c.TxQueues, c.RxQueues)
	case c.QueueDepth < 64 || c.QueueDepth > 65536 || c.QueueDepth&(c.QueueDepth-1) != 0:
		return fmt.Errorf("accel: QueueDepth %d must be a power of two in [64,65536]", c.QueueDepth)
	case c.ActiveFlows < 1 || c.ActiveFlows > 4096:
		return fmt.Errorf("accel: ActiveFlows %d out of range [1,4096]", c.ActiveFlows)
	}
	return nil
}

// Reconfiguration costs.
const (
	HardReconfigS = 1.8    // full/partial bitstream programming
	SoftReconfigS = 150e-6 // register writes over PCIe + engine quiesce
)

// Fabric is one FPGA's modelled state.
type Fabric struct {
	hard        HardConfig
	soft        SoftConfig
	regions     map[Region]float64 // LUT fraction per active region
	programmed  bool
	hardCount   int
	softCount   int
	reconfTotal float64 // seconds spent reconfiguring
}

// NewFabric programs the default HiveMind partition: remote-memory and
// RPC engines side by side (both fit: 18% + 24% < 100%).
func NewFabric() *Fabric {
	f := &Fabric{soft: DefaultSoftConfig()}
	if err := f.Program(HardConfig{TransportTCP, InterfaceCCIP}, map[Region]float64{
		RegionRemoteMem: RemoteMemLUTFrac,
		RegionRPC:       RPCLUTFrac,
	}); err != nil {
		panic(err)
	}
	f.hardCount, f.reconfTotal = 0, 0 // initial programming is not a reconfiguration
	return f
}

// Program performs a hard reconfiguration: loads a bitstream with the
// given regions. Fails if the area budget is exceeded or no region is
// requested.
func (f *Fabric) Program(hard HardConfig, regions map[Region]float64) error {
	if len(regions) == 0 {
		return errors.New("accel: bitstream must contain at least one region")
	}
	var total float64
	for r, frac := range regions {
		if frac <= 0 {
			return fmt.Errorf("accel: region %s has non-positive area", r)
		}
		total += frac
	}
	if total > 1.0 {
		return fmt.Errorf("accel: regions need %.0f%% of LUTs (>100%%)", total*100)
	}
	f.hard = hard
	f.regions = make(map[Region]float64, len(regions))
	for r, frac := range regions {
		f.regions[r] = frac
	}
	f.programmed = true
	f.hardCount++
	f.reconfTotal += HardReconfigS
	return nil
}

// ApplySoft performs a soft reconfiguration.
func (f *Fabric) ApplySoft(cfg SoftConfig) error {
	if !f.programmed {
		return errors.New("accel: fabric not programmed")
	}
	if err := cfg.Validate(); err != nil {
		return err
	}
	f.soft = cfg
	f.softCount++
	f.reconfTotal += SoftReconfigS
	return nil
}

// Hard returns the active hard configuration.
func (f *Fabric) Hard() HardConfig { return f.hard }

// Soft returns the active soft configuration.
func (f *Fabric) Soft() SoftConfig { return f.soft }

// HasRegion reports whether an engine is present in the bitstream.
func (f *Fabric) HasRegion(r Region) bool {
	_, ok := f.regions[r]
	return ok
}

// LUTUsage returns the fraction of LUTs in use.
func (f *Fabric) LUTUsage() float64 {
	var t float64
	for _, frac := range f.regions {
		t += frac
	}
	return t
}

// ReconfigStats reports reconfiguration counts and accumulated time.
func (f *Fabric) ReconfigStats() (hard, soft int, totalS float64) {
	return f.hardCount, f.softCount, f.reconfTotal
}

// Calibration anchors from §4.5.
const (
	rpcRTT64S        = 2.1e-6 // 64B round trip, same ToR
	rpcPeakRpsCore   = 12.4e6 // 64B RPCs per second per CPU core
	fabricWireMBps   = 4800.0 // QSFP line rate payload bandwidth
	remoteMemBaseS   = 25e-6  // §4.4 fabric access setup
	remoteMemMBps    = 9600.0 // UPI-attached transfer bandwidth
	pcieExtraPerMsgS = 0.9e-6 // added per message when using PCIe instead of CCI-P
	udpSavingsFactor = 0.92   // UDP transport shaves connection bookkeeping
)

// RPCRoundTripS returns the modelled accelerated round-trip latency for
// a message of msgBytes between two servers under this configuration.
func (f *Fabric) RPCRoundTripS(msgBytes float64) float64 {
	if !f.HasRegion(RegionRPC) {
		return 0 // engine absent: caller should use the software path
	}
	lat := rpcRTT64S + 2*(msgBytes-64)/1e6/fabricWireMBps
	if msgBytes < 64 {
		lat = rpcRTT64S
	}
	// Batching amortises CCI-P descriptor cost for small messages but
	// adds queueing delay for large batches; net effect modelled as a
	// mild penalty beyond batch 16.
	if f.soft.CCIPBatch > 16 {
		lat *= 1 + 0.02*float64(f.soft.CCIPBatch-16)/16
	}
	if f.hard.Interface == InterfacePCIe {
		lat += 2 * pcieExtraPerMsgS
	}
	if f.hard.Transport == TransportUDP {
		lat *= udpSavingsFactor
	}
	return lat
}

// RPCThroughputRps returns the modelled offloaded throughput for
// msgBytes-sized RPCs driven by one CPU core: ~12.4 Mrps at 64 B,
// line-rate-bound for large messages.
func (f *Fabric) RPCThroughputRps(msgBytes float64) float64 {
	if !f.HasRegion(RegionRPC) {
		return 0
	}
	perMsgCPU := 1.0 / rpcPeakRpsCore
	if f.soft.CCIPBatch > 1 {
		// Descriptor batching reduces per-message CPU involvement.
		perMsgCPU /= 1 + 0.35*float64(min(f.soft.CCIPBatch, 16)-1)/15
	}
	cpuBound := 1.0 / perMsgCPU
	if msgBytes < 1 {
		msgBytes = 1
	}
	wireBound := fabricWireMBps * 1e6 / msgBytes
	if wireBound < cpuBound {
		return wireBound
	}
	return cpuBound
}

// RemoteMemAccessS returns the one-way latency for a remote-memory read
// of the given size through the fabric (§4.4): the child function reads
// its parent's output from a virtualised object location with address
// mapping handled by the FPGA.
func (f *Fabric) RemoteMemAccessS(sizeMB float64) float64 {
	if !f.HasRegion(RegionRemoteMem) {
		return 0
	}
	if sizeMB < 0 {
		sizeMB = 0
	}
	lat := remoteMemBaseS + sizeMB/remoteMemMBps
	if f.hard.Interface == InterfacePCIe {
		lat += pcieExtraPerMsgS * 4 // doorbells + DMA setup both ways
	}
	return lat
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
