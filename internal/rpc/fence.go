package rpc

import (
	"errors"
	"strconv"
	"strings"
)

// fencedPrefix marks the response of a store (or the gateway fronting
// it) that rejected a term-stamped mutation because the writer's
// controller term is behind the fence — proof the serving replica was
// deposed while the request was in flight. The suffix carries both
// terms so clients and logs can see how stale the writer was.
const fencedPrefix = "rpc: fenced; term="

// FencedError builds the wire-parseable rejection for a stale-term
// write: the request did NOT execute, and re-offering it to the same
// endpoint cannot help — a newer primary exists somewhere else. Like
// NotLeaderError it is a routing signal, not a failure: leader-
// following clients re-route without spending retry budget.
func FencedError(token, fence uint64) ServerError {
	return ServerError(fencedPrefix + strconv.FormatUint(token, 10) +
		" fence=" + strconv.FormatUint(fence, 10))
}

// IsFenced reports whether err is a fence rejection (possibly after
// crossing the wire as a ServerError).
func IsFenced(err error) bool {
	var se ServerError
	return errors.As(err, &se) && strings.HasPrefix(string(se), fencedPrefix)
}

// FencedTerms extracts the writer's term and the store's fence term
// from a fence rejection. ok is false for every other error.
func FencedTerms(err error) (token, fence uint64, ok bool) {
	var se ServerError
	if !errors.As(err, &se) {
		return 0, 0, false
	}
	s := string(se)
	if !strings.HasPrefix(s, fencedPrefix) {
		return 0, 0, false
	}
	rest := s[len(fencedPrefix):]
	tokStr, fenceStr, found := strings.Cut(rest, " fence=")
	if !found {
		return 0, 0, false
	}
	token, err1 := strconv.ParseUint(tokStr, 10, 64)
	fence, err2 := strconv.ParseUint(fenceStr, 10, 64)
	if err1 != nil || err2 != nil {
		return 0, 0, false
	}
	return token, fence, true
}
