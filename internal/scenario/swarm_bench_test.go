package scenario

import (
	"fmt"
	"testing"
)

// BenchmarkMegaSwarm10k is the headline sharding benchmark: one 10⁴-
// device mixed-fleet mission, executed by 1, 2 and 8 workers over the
// same scenario-fixed cell decomposition. Results are byte-identical
// across the sub-benchmarks (the parity lane asserts it); only the
// wall-clock differs, and the shards=8/shards=1 ratio is the speedup
// make bench-sim records into BENCH_sim.json.
func BenchmarkMegaSwarm10k(b *testing.B) {
	for _, w := range []int{1, 2, 8} {
		b.Run(fmt.Sprintf("shards=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := RunSwarm(SwarmConfig{
					Devices:   10000,
					Shards:    w,
					Seed:      7,
					DurationS: 2,
					FailProb:  0.001,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.Steps == 0 {
					b.Fatal("empty run")
				}
			}
		})
	}
}
