// Command hivemind-benchjson converts `go test -bench -benchmem` output
// into a JSON document keyed by label, so before/after baselines can be
// committed side by side (BENCH_rpc.json) and diffed by CI.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./internal/rpc/ > bench.out
//	hivemind-benchjson -in bench.out -out BENCH_rpc.json -label post
//
// When -out already exists, the new label is merged into it: recording
// a "post" run preserves the committed "pre" baseline.
//
// With -median, repeated lines for the same benchmark (a -count=N run)
// collapse to one result holding the median ns/op — the robust summary
// the regression gate compares. With -gate, the parsed run is compared
// against an existing label in -out instead of being recorded:
//
//	hivemind-benchjson -in bench.out -gate BENCH_rpc.json \
//	    -gate-label post -tolerance 0.10 BenchmarkCallSync64B BenchmarkPipelinedCalls
//
// exits non-zero if any named benchmark's median ns/op regressed more
// than the tolerance against the committed label.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerSec    float64 `json:"mb_per_sec,omitempty"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Run is one labelled benchmark sweep plus the environment it ran in.
type Run struct {
	GOOS    string   `json:"goos,omitempty"`
	GOARCH  string   `json:"goarch,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

// benchLine matches e.g.
//
//	BenchmarkCallSync64B-4  350659  3486 ns/op  18.36 MB/s  168 B/op  4 allocs/op
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) MB/s)?(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func parse(r io.Reader) (Run, error) {
	var run Run
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			run.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			run.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			run.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		res := Result{Name: m[1]}
		res.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
		res.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
		if m[4] != "" {
			res.MBPerSec, _ = strconv.ParseFloat(m[4], 64)
		}
		if m[5] != "" {
			res.BytesPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		if m[6] != "" {
			res.AllocsPerOp, _ = strconv.ParseInt(m[6], 10, 64)
		}
		run.Results = append(run.Results, res)
	}
	return run, sc.Err()
}

// collapseMedian folds repeated results per benchmark name (a -count=N
// sweep) into one result carrying the median of each metric, keeping
// first-appearance order. Medians shrug off the stray slow iteration a
// loaded CI machine injects, which means/minimums do not.
func collapseMedian(results []Result) []Result {
	order := make([]string, 0, len(results))
	byName := make(map[string][]Result)
	for _, r := range results {
		if _, seen := byName[r.Name]; !seen {
			order = append(order, r.Name)
		}
		byName[r.Name] = append(byName[r.Name], r)
	}
	out := make([]Result, 0, len(order))
	for _, name := range order {
		rs := byName[name]
		med := Result{Name: name}
		med.Iterations = int64(medianOf(rs, func(r Result) float64 { return float64(r.Iterations) }))
		med.NsPerOp = medianOf(rs, func(r Result) float64 { return r.NsPerOp })
		med.MBPerSec = medianOf(rs, func(r Result) float64 { return r.MBPerSec })
		med.BytesPerOp = int64(medianOf(rs, func(r Result) float64 { return float64(r.BytesPerOp) }))
		med.AllocsPerOp = int64(medianOf(rs, func(r Result) float64 { return float64(r.AllocsPerOp) }))
		out = append(out, med)
	}
	return out
}

func medianOf(rs []Result, metric func(Result) float64) float64 {
	vals := make([]float64, len(rs))
	for i, r := range rs {
		vals[i] = metric(r)
	}
	sort.Float64s(vals)
	mid := len(vals) / 2
	if len(vals)%2 == 0 {
		return (vals[mid-1] + vals[mid]) / 2
	}
	return vals[mid]
}

// gate compares the measured medians against a committed baseline
// label and returns one error line per regression beyond tolerance.
// Benchmarks named in `names` must exist on both sides; an empty list
// gates every benchmark present in the baseline and the run.
func gate(run Run, baseline Run, tolerance float64, names []string) []string {
	measured := make(map[string]Result, len(run.Results))
	for _, r := range collapseMedian(run.Results) {
		measured[r.Name] = r
	}
	base := make(map[string]Result, len(baseline.Results))
	for _, r := range collapseMedian(baseline.Results) {
		base[r.Name] = r
	}
	if len(names) == 0 {
		for name := range base {
			if _, ok := measured[name]; ok {
				names = append(names, name)
			}
		}
		sort.Strings(names)
	}
	var violations []string
	for _, name := range names {
		b, okB := base[name]
		m, okM := measured[name]
		switch {
		case !okB:
			violations = append(violations, fmt.Sprintf("%s: no committed baseline", name))
		case !okM:
			violations = append(violations, fmt.Sprintf("%s: missing from this run", name))
		case b.NsPerOp <= 0:
			violations = append(violations, fmt.Sprintf("%s: baseline ns/op is %v", name, b.NsPerOp))
		case m.NsPerOp > b.NsPerOp*(1+tolerance):
			violations = append(violations, fmt.Sprintf(
				"%s: %.0f ns/op vs baseline %.0f ns/op (+%.1f%%, tolerance %.0f%%)",
				name, m.NsPerOp, b.NsPerOp, (m.NsPerOp/b.NsPerOp-1)*100, tolerance*100))
		}
	}
	return violations
}

func main() {
	in := flag.String("in", "", "benchmark output to parse (default stdin)")
	out := flag.String("out", "", "JSON file to write (default stdout); existing labels are preserved")
	label := flag.String("label", "post", "label for this run (e.g. pre, post)")
	median := flag.Bool("median", false, "collapse -count=N duplicates to per-benchmark medians before recording")
	gateFile := flag.String("gate", "", "compare against this benchjson document instead of recording")
	gateLabel := flag.String("gate-label", "post", "baseline label inside the -gate document")
	tolerance := flag.Float64("tolerance", 0.10, "allowed ns/op regression fraction for -gate")
	flag.Parse()

	src := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		src = f
	}
	run, err := parse(src)
	if err != nil {
		fatal(err)
	}
	if len(run.Results) == 0 {
		fatal(fmt.Errorf("no benchmark lines found in input"))
	}
	if *median {
		run.Results = collapseMedian(run.Results)
	}

	if *gateFile != "" {
		raw, err := os.ReadFile(*gateFile)
		if err != nil {
			fatal(err)
		}
		doc := map[string]Run{}
		if err := json.Unmarshal(raw, &doc); err != nil {
			fatal(fmt.Errorf("%s is not a benchjson document: %w", *gateFile, err))
		}
		baseline, ok := doc[*gateLabel]
		if !ok {
			fatal(fmt.Errorf("label %q not found in %s", *gateLabel, *gateFile))
		}
		violations := gate(run, baseline, *tolerance, flag.Args())
		if len(violations) > 0 {
			for _, v := range violations {
				fmt.Fprintln(os.Stderr, "REGRESSION:", v)
			}
			os.Exit(1)
		}
		fmt.Printf("bench gate passed: within %.0f%% of %q in %s\n", *tolerance*100, *gateLabel, *gateFile)
		return
	}

	doc := map[string]Run{}
	if *out != "" {
		if prev, err := os.ReadFile(*out); err == nil {
			if err := json.Unmarshal(prev, &doc); err != nil {
				fatal(fmt.Errorf("existing %s is not a benchjson document: %w", *out, err))
			}
		}
	}
	doc[*label] = run

	buf, err := marshalSorted(doc)
	if err != nil {
		fatal(err)
	}
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d results under label %q to %s\n", len(run.Results), *label, *out)
}

// marshalSorted renders the document with stable key order so committed
// baselines produce minimal diffs.
func marshalSorted(doc map[string]Run) ([]byte, error) {
	labels := make([]string, 0, len(doc))
	for l := range doc {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	var b strings.Builder
	b.WriteString("{\n")
	for i, l := range labels {
		run := doc[l]
		sort.Slice(run.Results, func(a, z int) bool { return run.Results[a].Name < run.Results[z].Name })
		body, err := json.MarshalIndent(run, "  ", "  ")
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(&b, "  %q: %s", l, body)
		if i < len(labels)-1 {
			b.WriteString(",")
		}
		b.WriteString("\n")
	}
	b.WriteString("}\n")
	return []byte(b.String()), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hivemind-benchjson:", err)
	os.Exit(1)
}
