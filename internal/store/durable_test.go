package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// countingMonitor is a minimal Monitor for store tests.
type countingMonitor struct {
	mu       sync.Mutex
	counters map[string]int
	observed map[string][]float64
}

func newCountingMonitor() *countingMonitor {
	return &countingMonitor{counters: map[string]int{}, observed: map[string][]float64{}}
}

func (m *countingMonitor) CountEvent(name string) {
	m.mu.Lock()
	m.counters[name]++
	m.mu.Unlock()
}

func (m *countingMonitor) Observe(name string, v float64) {
	m.mu.Lock()
	m.observed[name] = append(m.observed[name], v)
	m.mu.Unlock()
}

func (m *countingMonitor) count(name string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counters[name]
}

// memOpts is the fast durable configuration for tests: no fsync, no
// auto-compaction unless a test asks for it.
func memOpts() DurableOptions {
	return DurableOptions{Fsync: FsyncNever, CompactEvery: NoAutoCompact}
}

func TestDurableRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db, st, err := OpenDurable(dir, memOpts())
	if err != nil {
		t.Fatal(err)
	}
	if st.SnapshotDocs != 0 || st.WALRecords != 0 {
		t.Fatalf("fresh dir stats = %+v", st)
	}
	rev1, err := db.Put("a", "", []byte("v1"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Put("a", rev1, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Force("b", []byte("bee")); err != nil {
		t.Fatal(err)
	}
	revC, _ := db.Put("c", "", []byte("gone"))
	if err := db.Delete("c", revC); err != nil {
		t.Fatal(err)
	}
	seq, fence := db.Seq(), db.Fence()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, st2, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if st2.WALRecords != 5 || st2.SnapshotDocs != 0 || st2.TruncatedTail {
		t.Fatalf("recover stats = %+v, want 5 wal records, no snapshot, no truncation", st2)
	}
	if db2.Seq() != seq || db2.Fence() != fence {
		t.Fatalf("seq/fence = %d/%d, want %d/%d", db2.Seq(), db2.Fence(), seq, fence)
	}
	if db2.Len() != 2 {
		t.Fatalf("len = %d, want 2", db2.Len())
	}
	docA, err := db2.Get("a")
	if err != nil || string(docA.Body) != "v2" || RevGen(docA.Rev) != 2 {
		t.Fatalf("doc a = %+v err=%v, want v2 at gen 2", docA, err)
	}
	if _, err := db2.Get("c"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted doc resurrected: %v", err)
	}
}

func TestDurableCompactionBoundsRecoveryByLiveState(t *testing.T) {
	dir := t.TempDir()
	db, _, err := OpenDurable(dir, memOpts())
	if err != nil {
		t.Fatal(err)
	}
	// 300 updates over 10 live keys: history ≫ live state.
	for i := 0; i < 300; i++ {
		if _, err := db.Force(fmt.Sprintf("k%d", i%10), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.CompactNow(); err != nil {
		t.Fatal(err)
	}
	if db.WALRecords() != 0 {
		t.Fatalf("wal records after compaction = %d, want 0", db.WALRecords())
	}
	// A small post-compaction tail.
	db.Force("k0", []byte("tail"))
	db.Close()

	db2, st, err := OpenDurable(dir, memOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if st.SnapshotDocs != 10 || st.WALRecords != 1 {
		t.Fatalf("stats = %+v, want 10 snapshot docs + 1 wal record", st)
	}
	if doc, _ := db2.Get("k0"); string(doc.Body) != "tail" {
		t.Fatalf("k0 = %q, want tail", doc.Body)
	}
	if doc, _ := db2.Get("k9"); string(doc.Body) != "v299" {
		t.Fatalf("k9 = %q, want v299", doc.Body)
	}
}

// The acceptance-criteria assertion: after snapshot+compaction,
// recovery work is a function of live state, not history — a directory
// with 10× the update history recovers with identical replayed work
// and comparable wall clock.
func TestDurableRecoveryFlatVsHistoryAt10x(t *testing.T) {
	build := func(updates int) string {
		dir := t.TempDir()
		db, _, err := OpenDurable(dir, memOpts())
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < updates; i++ {
			if _, err := db.Force(fmt.Sprintf("key-%d", i%50), make([]byte, 256)); err != nil {
				t.Fatal(err)
			}
		}
		if err := db.CompactNow(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ { // identical small tails
			db.Force(fmt.Sprintf("key-%d", i), []byte("tail"))
		}
		db.Close()
		return dir
	}
	recoverTimed := func(dir string) (RecoverStats, time.Duration) {
		best := time.Duration(1<<62 - 1)
		var st RecoverStats
		for i := 0; i < 3; i++ { // min-of-3 to shrug off scheduler noise
			start := time.Now()
			db, s, err := OpenDurable(dir, memOpts())
			el := time.Since(start)
			if err != nil {
				t.Fatal(err)
			}
			db.Close()
			if el < best {
				best, st = el, s
			}
		}
		return st, best
	}

	const base = 1000
	dirA := build(base)
	dirB := build(10 * base)
	stA, elA := recoverTimed(dirA)
	stB, elB := recoverTimed(dirB)

	if stA.SnapshotDocs != stB.SnapshotDocs || stA.WALRecords != stB.WALRecords {
		t.Fatalf("recovery work diverged with history: %+v vs %+v", stA, stB)
	}
	if stB.SnapshotDocs != 50 || stB.WALRecords != 5 {
		t.Fatalf("10x stats = %+v, want 50 live docs + 5 tail records", stB)
	}
	// Identical work should mean comparable time; allow generous CI
	// slack — the point is it is not ~10x.
	if elB > 5*elA+50*time.Millisecond {
		t.Fatalf("recovery at 10x history took %v vs %v — not flat", elB, elA)
	}
}

func TestDurableAutoCompactionTriggers(t *testing.T) {
	mon := newCountingMonitor()
	dir := t.TempDir()
	db, _, err := OpenDurable(dir, DurableOptions{Fsync: FsyncNever, CompactEvery: 16, Monitor: mon})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 100; i++ {
		if _, err := db.Force("k", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := mon.count(MetricSnapshot); got < 5 {
		t.Fatalf("snapshots after 100 writes at CompactEvery=16: %d, want >= 5", got)
	}
	if db.WALRecords() >= 16 {
		t.Fatalf("wal records = %d, want < CompactEvery", db.WALRecords())
	}
}

// A crash that tears the WAL tail loses only the torn record: the
// valid prefix recovers and the truncation is observable.
func TestDurableRecoverTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	db, _, err := OpenDurable(dir, memOpts())
	if err != nil {
		t.Fatal(err)
	}
	db.Force("good", []byte("committed"))
	db.Close()
	f, err := os.OpenFile(filepath.Join(dir, walFileName), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x00, 0x00, 0x01}) // torn frame header
	f.Close()

	mon := newCountingMonitor()
	db2, st, err := OpenDurable(dir, DurableOptions{Fsync: FsyncNever, CompactEvery: NoAutoCompact, Monitor: mon})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if !st.TruncatedTail {
		t.Fatal("torn tail not reported in recover stats")
	}
	if mon.count(MetricWALTruncatedTail) != 1 {
		t.Fatalf("truncated-tail counter = %d, want 1", mon.count(MetricWALTruncatedTail))
	}
	if doc, gerr := db2.Get("good"); gerr != nil || string(doc.Body) != "committed" {
		t.Fatalf("valid prefix lost: %v %q", gerr, doc.Body)
	}
}

func TestFencedWritesRejectStaleTerms(t *testing.T) {
	mon := newCountingMonitor()
	db := NewDB()
	db.SetMonitor(mon)
	if _, err := db.ForceFenced(3, "doc", []byte("term3")); err != nil {
		t.Fatal(err)
	}
	if db.Fence() != 3 {
		t.Fatalf("fence = %d, want 3", db.Fence())
	}
	// A stale-term writer is rejected with the typed error.
	_, err := db.ForceFenced(2, "doc", []byte("stale"))
	var fe *FencedError
	if !errors.As(err, &fe) || !errors.Is(err, ErrFenced) {
		t.Fatalf("stale write error = %v, want FencedError", err)
	}
	if fe.Token != 2 || fe.Fence != 3 {
		t.Fatalf("fenced error terms = %+v, want token 2 fence 3", fe)
	}
	if doc, _ := db.Get("doc"); string(doc.Body) != "term3" {
		t.Fatalf("stale write landed: %q", doc.Body)
	}
	if mon.count(MetricFencedWrite) != 1 {
		t.Fatalf("fenced-write counter = %d, want 1", mon.count(MetricFencedWrite))
	}
	// Unfenced writers (token 0) bypass fencing entirely.
	if _, err := db.Force("doc", []byte("unfenced")); err != nil {
		t.Fatalf("unfenced write rejected: %v", err)
	}
	// Stale Put and Delete are fenced too.
	if _, err := db.PutFenced(1, "new", "", []byte("x")); !errors.Is(err, ErrFenced) {
		t.Fatalf("stale PutFenced error = %v", err)
	}
	doc, _ := db.Get("doc")
	if err := db.DeleteFenced(1, "doc", doc.Rev); !errors.Is(err, ErrFenced) {
		t.Fatalf("stale DeleteFenced error = %v", err)
	}
}

func TestRaiseFencePersistsAcrossRecovery(t *testing.T) {
	dir := t.TempDir()
	db, _, err := OpenDurable(dir, memOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := db.RaiseFence(7); err != nil {
		t.Fatal(err)
	}
	if err := db.RaiseFence(5); err != nil { // lowering is a no-op
		t.Fatal(err)
	}
	if db.Fence() != 7 {
		t.Fatalf("fence = %d, want 7", db.Fence())
	}
	db.Close()
	db2, _, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.Fence() != 7 {
		t.Fatalf("fence after recovery = %d, want 7", db2.Fence())
	}
	if _, err := db2.ForceFenced(6, "x", nil); !errors.Is(err, ErrFenced) {
		t.Fatalf("stale write after recovery = %v, want fenced", err)
	}
}

// Fence survives compaction (it rides the snapshot header).
func TestFenceSurvivesCompaction(t *testing.T) {
	dir := t.TempDir()
	db, _, err := OpenDurable(dir, memOpts())
	if err != nil {
		t.Fatal(err)
	}
	db.ForceFenced(9, "doc", []byte("v"))
	if err := db.CompactNow(); err != nil {
		t.Fatal(err)
	}
	db.Close()
	db2, st, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if st.WALRecords != 0 {
		t.Fatalf("wal records after compaction = %d", st.WALRecords)
	}
	if db2.Fence() != 9 {
		t.Fatalf("fence after compacted recovery = %d, want 9", db2.Fence())
	}
}

// The crash window between snapshot rename and WAL truncation: replay
// of the whole old WAL over the fresh snapshot must be idempotent.
func TestDurableSnapshotThenStaleWALReplayIsIdempotent(t *testing.T) {
	dir := t.TempDir()
	db, _, err := OpenDurable(dir, memOpts())
	if err != nil {
		t.Fatal(err)
	}
	db.Force("a", []byte("1"))
	rev, _ := db.Put("b", "", []byte("2"))
	db.Delete("b", rev)

	// Simulate the torn compaction: save the pre-compaction WAL, let
	// compaction truncate it, then put the stale WAL back.
	walPath := filepath.Join(dir, walFileName)
	db.Sync()
	staleWAL, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CompactNow(); err != nil {
		t.Fatal(err)
	}
	db.Close()
	if err := os.WriteFile(walPath, staleWAL, 0o644); err != nil {
		t.Fatal(err)
	}

	db2, st, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if st.WALRecords != 3 {
		t.Fatalf("replayed %d stale records, want 3", st.WALRecords)
	}
	if db2.Len() != 1 {
		t.Fatalf("len = %d, want 1 (a only)", db2.Len())
	}
	if doc, _ := db2.Get("a"); string(doc.Body) != "1" {
		t.Fatalf("a = %q", doc.Body)
	}
	if _, err := db2.Get("b"); !errors.Is(err, ErrNotFound) {
		t.Fatal("deleted doc resurrected by stale replay")
	}
}
