// Treasure hunt: the paper's headline scenario (Fig. 1). A drone swarm
// must locate 15 tennis balls scattered in a field. The mission runs on
// all four coordination platforms at the real testbed scale, then on a
// simulated large swarm, showing that centralized coordination can be
// both scalable and performant when the stack is co-designed.
package main

import (
	"fmt"

	"hivemind"
	"hivemind/internal/platform"
	"hivemind/internal/scenario"
)

func main() {
	fmt.Println("Scenario A — stationary item search (15 tennis balls)")

	systems := []hivemind.System{
		hivemind.SystemCentralizedIaaS,
		hivemind.SystemCentralizedFaaS,
		hivemind.SystemDistributedEdge,
		hivemind.SystemHiveMind,
	}

	for _, scale := range []struct {
		label   string
		devices int
	}{{"16 drones (testbed scale)", 16}, {"256 drones (simulated)", 256}} {
		fmt.Printf("\n== %s ==\n", scale.label)
		fmt.Printf("%-18s %10s %10s %11s %9s\n", "system", "time(s)", "complete", "battery(%)", "bw(MB/s)")
		for _, sys := range systems {
			opts := platform.Preset(sys, scale.devices, 42)
			if scale.devices > 16 {
				f := float64(scale.devices) / 16
				opts.WirelessScale = f
				opts.ClusterCf.Servers = int(float64(opts.ClusterCf.Servers) * f)
			}
			cfg := scenario.DefaultConfig(scenario.ScenarioA, opts)
			r := scenario.Run(scenario.ScenarioA, cfg)
			fmt.Printf("%-18s %10.1f %10v %11.1f %9.1f\n",
				sys, r.CompletionS, r.Completed, r.BatteryMean*100, r.BWMeanMBps)
		}
	}
	fmt.Println("\nHiveMind finishes fastest with the least battery at both scales;")
	fmt.Println("the gap to the centralized baselines widens with swarm size (Fig. 1).")
}
