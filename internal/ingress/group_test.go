package ingress

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

func TestQueueGroupOwnershipIsDeterministicAndSpread(t *testing.T) {
	mk := func(order []string) *QueueGroup {
		ms := make([]Member, len(order))
		for i, id := range order {
			ms[i] = Member{ID: id}
		}
		return NewQueueGroup(ms, GroupOptions{})
	}
	a := mk([]string{"gw-0", "gw-1", "gw-2"})
	b := mk([]string{"gw-2", "gw-0", "gw-1"}) // member order must not matter

	counts := map[string]int{}
	for i := 0; i < 3000; i++ {
		key := "job/" + strconv.Itoa(i)
		oa, ob := a.Owner(key), b.Owner(key)
		if oa.ID != ob.ID {
			t.Fatalf("key %q: owner %q vs %q across member orderings", key, oa.ID, ob.ID)
		}
		counts[oa.ID]++
	}
	for id, n := range counts {
		if n < 500 || n > 1800 {
			t.Fatalf("lopsided ring: %s owns %d/3000", id, n)
		}
	}
}

func TestQueueGroupSpillsOffOverloadedOwner(t *testing.T) {
	depths := map[string]int{"gw-0": 0, "gw-1": 0, "gw-2": 0}
	mkDepth := func(id string) func() int { return func() int { return depths[id] } }
	q := NewQueueGroup([]Member{
		{ID: "gw-0", Depth: mkDepth("gw-0")},
		{ID: "gw-1", Depth: mkDepth("gw-1")},
		{ID: "gw-2", Depth: mkDepth("gw-2")},
	}, GroupOptions{SpillDepth: 8})

	key := "hot/key"
	owner := q.Owner(key)

	// Owner under the spill bound: no rerouting, whatever the siblings
	// look like.
	m, spilled := q.Route(key)
	if spilled || m.ID != owner.ID {
		t.Fatalf("unloaded owner rerouted to %s (spilled=%v)", m.ID, spilled)
	}

	// Owner past the bound with a shallower second choice: spill, and
	// deterministically to the same alternate every time.
	depths[owner.ID] = 50
	m1, spilled1 := q.Route(key)
	m2, spilled2 := q.Route(key)
	if !spilled1 || !spilled2 || m1.ID == owner.ID {
		t.Fatalf("overloaded owner kept the key (got %s, spilled=%v)", m1.ID, spilled1)
	}
	if m1.ID != m2.ID {
		t.Fatalf("spill not deterministic: %s then %s", m1.ID, m2.ID)
	}

	// Everyone equally deep: spilling buys nothing, stay home.
	for id := range depths {
		depths[id] = 50
	}
	if m, spilled := q.Route(key); spilled || m.ID != owner.ID {
		t.Fatalf("uniform overload rerouted to %s (spilled=%v)", m.ID, spilled)
	}
}

func TestIngressForwardsToOwningMember(t *testing.T) {
	// Two-member group; member B runs a real ingress, member A (self)
	// forwards everything B owns. Dispatchers tag results so we can see
	// which member executed the job.
	mkServer := func(tag string, group *QueueGroup) *Server {
		s, err := NewServer(Options{
			Dispatcher: DispatchFunc(func(_ context.Context, _ string, payload []byte) ([]byte, error) {
				return []byte(tag + ":" + string(payload)), nil
			}),
			Group: group,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(s.Close)
		return s
	}

	// B serves with itself as Self, so forwarded requests terminate there.
	groupB := NewQueueGroup([]Member{{ID: "A"}, {ID: "B", Self: true}}, GroupOptions{})
	sb := mkServer("B", groupB)
	tsB := httptest.NewServer(sb)
	defer tsB.Close()

	groupA := NewQueueGroup([]Member{
		{ID: "A", Self: true},
		{ID: "B", URL: tsB.URL},
	}, GroupOptions{})
	sa := mkServer("A", groupA)
	tsA := httptest.NewServer(sa)
	defer tsA.Close()

	// Find payloads owned by each member.
	keyFor := func(owner string) string {
		for i := 0; ; i++ {
			p := "payload-" + strconv.Itoa(i)
			if groupA.Owner(coalesceKey("job", []byte(p))).ID == owner {
				return p
			}
		}
	}
	pa, pb := keyFor("A"), keyFor("B")

	// A-owned job POSTed at A runs locally.
	id := postDo(t, tsA, "job", pa, "")
	if status, body, _ := getThen(t, tsA, id); status != http.StatusOK || body != "A:"+pa {
		t.Fatalf("A-owned job: %d %q", status, body)
	}

	// B-owned job POSTed at A is relayed; then=true carries B's answer
	// straight through, and the result id is B's.
	resp, err := http.Post(tsA.URL+"/do/job?then=true", "", strings.NewReader(pb))
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	body := string(b)
	if resp.StatusCode != http.StatusOK || body != "B:"+pb {
		t.Fatalf("forwarded job: %d %q", resp.StatusCode, body)
	}
	fid := resp.Header.Get(ResultIDHeader)
	if fid == "" {
		t.Fatal("forwarded response lost the result id header")
	}
	// The id resolves at B (the owner), not at A.
	if status, b, _ := getThen(t, tsB, fid); status != http.StatusOK || b != "B:"+pb {
		t.Fatalf("collect at owner: %d %q", status, b)
	}
	if st := sa.Stats(); st.Forwarded != 1 {
		t.Fatalf("A Stats.Forwarded = %d, want 1", st.Forwarded)
	}
}

func TestIngressFallsBackLocalWhenPeerDown(t *testing.T) {
	group := NewQueueGroup([]Member{
		{ID: "A", Self: true},
		{ID: "B", URL: "http://127.0.0.1:1"}, // nothing listens there
	}, GroupOptions{})
	s, err := NewServer(Options{
		Dispatcher: DispatchFunc(func(_ context.Context, _ string, payload []byte) ([]byte, error) {
			return append([]byte("local:"), payload...), nil
		}),
		Group: group,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()

	// A payload owned by the dead peer still gets served locally.
	var p string
	for i := 0; ; i++ {
		p = "payload-" + strconv.Itoa(i)
		if group.Owner(coalesceKey("job", []byte(p))).ID == "B" {
			break
		}
	}
	id := postDo(t, ts, "job", p, "")
	if status, body, _ := getThen(t, ts, id); status != http.StatusOK || body != "local:"+p {
		t.Fatalf("fallback: %d %q", status, body)
	}
}
