package sim

// Resource is a multi-server FIFO queue: up to Capacity concurrent
// holders, further requests wait in arrival order. It models CPU cores,
// container slots, network ports — anything with finite parallelism.
//
// Resource tracks queueing statistics (waiting time, utilization,
// time-averaged queue length) which the experiment drivers report.
type Resource struct {
	eng      *Engine
	capacity int
	busy     int
	queue    []*request

	// statistics
	totalWait    Time
	grants       uint64
	busyIntegral Time // ∫ busy dt
	qlenIntegral Time // ∫ len(queue) dt
	lastStamp    Time
	maxQueue     int
}

type request struct {
	enqueued  Time
	n         int
	fn        func()
	cancelled bool
}

// NewResource creates a resource with the given concurrent capacity.
// Capacity must be positive.
func NewResource(eng *Engine, capacity int) *Resource {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive")
	}
	return &Resource{eng: eng, capacity: capacity, lastStamp: eng.Now()}
}

// Capacity returns the configured number of servers.
func (r *Resource) Capacity() int { return r.capacity }

// InUse returns how many units are currently held.
func (r *Resource) InUse() int { return r.busy }

// QueueLen returns how many requests are waiting.
func (r *Resource) QueueLen() int {
	n := 0
	for _, q := range r.queue {
		if !q.cancelled {
			n++
		}
	}
	return n
}

func (r *Resource) stamp() {
	now := r.eng.Now()
	dt := now - r.lastStamp
	if dt > 0 {
		r.busyIntegral += Time(r.busy) * dt
		r.qlenIntegral += Time(len(r.queue)) * dt
		r.lastStamp = now
	}
}

// Acquire requests one unit and calls fn when it is granted (possibly
// synchronously, if a unit is free). The returned handle can cancel a
// still-queued request.
func (r *Resource) Acquire(fn func()) *Acquisition {
	return r.AcquireN(1, fn)
}

// AcquireN requests n units granted atomically.
func (r *Resource) AcquireN(n int, fn func()) *Acquisition {
	if n <= 0 || n > r.capacity {
		panic("sim: invalid acquire count")
	}
	r.stamp()
	req := &request{enqueued: r.eng.Now(), n: n, fn: fn}
	if len(r.queue) == 0 && r.busy+n <= r.capacity {
		r.busy += n
		r.grants++
		fn()
		return &Acquisition{res: r, req: req, granted: true}
	}
	r.queue = append(r.queue, req)
	if len(r.queue) > r.maxQueue {
		r.maxQueue = len(r.queue)
	}
	return &Acquisition{res: r, req: req}
}

// Release returns n units and dispatches queued requests that now fit.
func (r *Resource) ReleaseN(n int) {
	r.stamp()
	r.busy -= n
	if r.busy < 0 {
		panic("sim: resource released more than acquired")
	}
	r.dispatch()
}

// Release returns one unit.
func (r *Resource) Release() { r.ReleaseN(1) }

func (r *Resource) dispatch() {
	for len(r.queue) > 0 {
		head := r.queue[0]
		if head.cancelled {
			r.queue = r.queue[1:]
			continue
		}
		if r.busy+head.n > r.capacity {
			return
		}
		r.queue = r.queue[1:]
		r.busy += head.n
		r.grants++
		r.totalWait += r.eng.Now() - head.enqueued
		head.fn()
	}
}

// Use acquires one unit, holds it for service seconds, releases it, and
// then calls done (which may be nil). It is the common "queue at a
// station" primitive.
func (r *Resource) Use(service Time, done func()) {
	r.Acquire(func() {
		r.eng.After(service, func() {
			r.Release()
			if done != nil {
				done()
			}
		})
	})
}

// Acquisition is a handle to a pending or granted acquire request.
type Acquisition struct {
	res     *Resource
	req     *request
	granted bool
}

// Cancel withdraws a still-queued request. It reports whether the request
// was actually cancelled (false if it had already been granted).
func (a *Acquisition) Cancel() bool {
	if a.granted || a.req.cancelled {
		return false
	}
	a.req.cancelled = true
	return true
}

// Stats summarises a resource's queueing behaviour so far.
type ResourceStats struct {
	Grants       uint64  // total successful acquisitions
	MeanWait     Time    // average time spent queued before grant
	Utilization  float64 // time-averaged fraction of capacity in use
	MeanQueueLen float64 // time-averaged queue length
	MaxQueueLen  int
}

// Stats returns queueing statistics over [0, now).
func (r *Resource) Stats() ResourceStats {
	r.stamp()
	elapsed := r.eng.Now()
	s := ResourceStats{Grants: r.grants, MaxQueueLen: r.maxQueue}
	if r.grants > 0 {
		s.MeanWait = r.totalWait / Time(r.grants)
	}
	if elapsed > 0 {
		s.Utilization = r.busyIntegral / (elapsed * Time(r.capacity))
		s.MeanQueueLen = r.qlenIntegral / elapsed
	}
	return s
}
