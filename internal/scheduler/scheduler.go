// Package scheduler implements the serverless cloud scheduler of §4.3
// and its scalability mechanism of §5.6: per-server worker monitors
// ("a lightweight process that periodically monitors the performance of
// active functions and the server's utilization"), a placement policy
// driven by those (slightly stale) views, and a sharded decision engine
// — "multiple schedulers, each responsible for a subset of tasks, but
// with global visibility into all cloud and edge resources" (a
// shared-state design in the Omega tradition).
package scheduler

import (
	"hivemind/internal/cluster"
	"hivemind/internal/sim"
)

// WorkerMonitor samples one server's utilization on a period; the
// scheduler reads the sampled (stale) view rather than instantaneous
// truth, as a real monitor-based system would.
type WorkerMonitor struct {
	srv      *cluster.Server
	view     float64
	viewFree int
	ticker   *sim.Ticker
}

// NewWorkerMonitor starts monitoring a server.
func NewWorkerMonitor(eng *sim.Engine, srv *cluster.Server, periodS float64) *WorkerMonitor {
	m := &WorkerMonitor{srv: srv, viewFree: srv.FreeCores()}
	m.sample()
	m.ticker = eng.Every(periodS, periodS/10, m.sample)
	return m
}

func (m *WorkerMonitor) sample() {
	m.view = m.srv.Utilization()
	m.viewFree = m.srv.FreeCores()
}

// Utilization returns the last sampled utilization.
func (m *WorkerMonitor) Utilization() float64 { return m.view }

// FreeCores returns the last sampled free-core count.
func (m *WorkerMonitor) FreeCores() int { return m.viewFree }

// Server returns the monitored server.
func (m *WorkerMonitor) Server() *cluster.Server { return m.srv }

// Stop halts sampling.
func (m *WorkerMonitor) Stop() { m.ticker.Stop() }

// Placer picks servers for new functions from monitor views, skipping
// probated servers: "the scheduler identifies nodes with sufficient
// resources to host new functions".
type Placer struct {
	monitors []*WorkerMonitor
}

// NewPlacer builds a placer over a cluster with the given monitor
// period.
func NewPlacer(eng *sim.Engine, cls *cluster.Cluster, periodS float64) *Placer {
	p := &Placer{}
	for _, s := range cls.Servers() {
		p.monitors = append(p.monitors, NewWorkerMonitor(eng, s, periodS))
	}
	return p
}

// Pick returns the server with the most free cores in the monitors'
// view (ties to the lowest id), preferring non-probated servers.
func (p *Placer) Pick() *cluster.Server {
	var best *WorkerMonitor
	for _, m := range p.monitors {
		if m.srv.OnProbation() {
			continue
		}
		if best == nil || m.FreeCores() > best.FreeCores() {
			best = m
		}
	}
	if best == nil {
		for _, m := range p.monitors {
			if best == nil || m.FreeCores() > best.FreeCores() {
				best = m
			}
		}
	}
	if best == nil {
		return nil
	}
	return best.srv
}

// Stop halts all monitors.
func (p *Placer) Stop() {
	for _, m := range p.monitors {
		m.Stop()
	}
}

// Sharded is the scalable decision engine: each shard serialises its
// own decisions (a single controller thread), so one shard saturates at
// 1/DecisionS decisions per second; HiveMind adds shards when the
// centralized scheduler becomes the bottleneck (§5.6).
type Sharded struct {
	eng       *sim.Engine
	shards    []*sim.Resource
	decisionS float64

	decisions uint64
}

// NewSharded builds a decision engine with n shards, each taking
// decisionS seconds per scheduling decision.
func NewSharded(eng *sim.Engine, n int, decisionS float64) *Sharded {
	if n <= 0 || decisionS <= 0 {
		panic("scheduler: invalid shard config")
	}
	s := &Sharded{eng: eng, decisionS: decisionS}
	for i := 0; i < n; i++ {
		s.shards = append(s.shards, sim.NewResource(eng, 1))
	}
	return s
}

// Shards returns the shard count.
func (s *Sharded) Shards() int { return len(s.shards) }

// Decisions returns the total decisions made.
func (s *Sharded) Decisions() uint64 { return s.decisions }

// Decide queues one scheduling decision for the task key on its shard
// ("each responsible for a subset of tasks") and calls done with the
// decision latency (queueing + service).
func (s *Sharded) Decide(key uint64, done func(latency sim.Time)) {
	shard := s.shards[key%uint64(len(s.shards))]
	start := s.eng.Now()
	shard.Use(s.decisionS, func() {
		s.decisions++
		if done != nil {
			done(s.eng.Now() - start)
		}
	})
}

// MeanQueueDelay reports the average decision wait across shards,
// weighted by each shard's completed decisions: under a skewed key
// distribution an idle shard contributes no decisions and must not
// drag the reported wait toward zero. Returns 0 before any decision.
func (s *Sharded) MeanQueueDelay() sim.Time {
	var totalWait sim.Time
	var grants uint64
	for _, sh := range s.shards {
		st := sh.Stats()
		totalWait += st.MeanWait * sim.Time(st.Grants)
		grants += st.Grants
	}
	if grants == 0 {
		return 0
	}
	return totalWait / sim.Time(grants)
}

// CapacityDecisionsPerS returns the aggregate decision throughput.
func (s *Sharded) CapacityDecisionsPerS() float64 {
	return float64(len(s.shards)) / s.decisionS
}
