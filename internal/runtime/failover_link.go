package runtime

import (
	"sync/atomic"

	"hivemind/internal/rpc"
)

// This file closes the explicit leftover from the zero-copy fast-path
// work: the leader-following FailoverClient used to dial a fresh v1
// framed connection per endpoint even when the Linker could have given
// it a shm ring (co-located leader) or a mux stream on a shared conn
// (remote leader). LinkedFailover threads the Linker's per-peer
// transport selection into the failover layer, so a redirect that moves
// the primary from a co-located replica to a remote one also moves the
// calls from the ring onto a stream — and back, when leadership
// returns.

// LinkedFailover is a leader-following client whose per-endpoint
// transports are selected by a Linker: co-located peers ride the
// in-process shm ring, remote peers a multiplexed stream on the
// address's shared connection. It embeds the FailoverClient, so the
// redirect/sweep/budget semantics are identical to DialFailover.
type LinkedFailover struct {
	*rpc.FailoverClient
	kinds []atomic.Int32 // last-built transport kind per endpoint (-1: none yet)
}

// NewLinkedFailover builds a leader-following client over one Peer per
// replica (the slice index is the replica id redirects refer to),
// selecting each endpoint's fast path through l. Transports are built
// lazily and rebuilt through the Linker when they turn unhealthy (a
// ring whose gateway died, a shared conn that dropped), so a killed
// co-located leader fails over onto a remote stream without any caller
// involvement.
func NewLinkedFailover(l *Linker, peers []Peer, opts rpc.FailoverOptions) *LinkedFailover {
	lf := &LinkedFailover{kinds: make([]atomic.Int32, len(peers))}
	factories := make([]func() (rpc.Transport, error), len(peers))
	for i, p := range peers {
		i, p := i, p
		lf.kinds[i].Store(-1)
		factories[i] = func() (rpc.Transport, error) {
			lk, err := l.Connect(p)
			if err != nil {
				return nil, err
			}
			lf.kinds[i].Store(int32(lk.Kind))
			return lk, nil
		}
	}
	lf.FailoverClient = rpc.NewFailoverTransports(factories, opts)
	return lf
}

// EndpointKind reports which fast path endpoint idx last selected, and
// whether a transport has been built for it at all.
func (lf *LinkedFailover) EndpointKind(idx int) (TransportKind, bool) {
	if idx < 0 || idx >= len(lf.kinds) {
		return 0, false
	}
	k := lf.kinds[idx].Load()
	if k < 0 {
		return 0, false
	}
	return TransportKind(k), true
}

// LeaderKind reports the fast path calls currently ride: the transport
// kind of the believed-leader endpoint.
func (lf *LinkedFailover) LeaderKind() (TransportKind, bool) {
	return lf.EndpointKind(lf.Leader())
}
