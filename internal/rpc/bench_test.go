package rpc

import (
	"net"
	"sync"
	"testing"
)

func benchPair(b *testing.B, callers int) *Client {
	b.Helper()
	srv := NewServer()
	srv.Register("echo", func(p []byte) ([]byte, error) { return p, nil })
	cc, sc := Pair()
	srv.ServeConn(sc)
	c := NewClient(cc, callers)
	b.Cleanup(func() { c.Close(); srv.Close() })
	return c
}

// benchTCP is benchPair over a real TCP loopback socket, so the
// benchmarks also measure actual syscall and kernel-buffer behaviour
// (net.Pipe is a synchronous in-process rendezvous with no buffering).
func benchTCP(b *testing.B, callers int) *Client {
	b.Helper()
	srv := NewServer()
	srv.Register("echo", func(p []byte) ([]byte, error) { return p, nil })
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		srv.ServeConn(conn)
	}()
	cc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	c := NewClient(cc, callers)
	b.Cleanup(func() {
		c.Close()
		srv.Close()
		ln.Close()
		<-done
	})
	return c
}

// BenchmarkCallSync64B measures small-RPC round trips over the
// in-process transport (the software baseline the FPGA offload is
// compared against).
func BenchmarkCallSync64B(b *testing.B) {
	c := benchPair(b, 8)
	payload := make([]byte, 64)
	b.SetBytes(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.CallSync("echo", payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCallSync1MB measures bulk payload round trips.
func BenchmarkCallSync1MB(b *testing.B) {
	c := benchPair(b, 8)
	payload := make([]byte, 1<<20)
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.CallSync("echo", payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelinedCalls measures multiplexed in-flight throughput
// through the caller pool.
func BenchmarkPipelinedCalls(b *testing.B) {
	c := benchPair(b, 64)
	payload := make([]byte, 64)
	var wg sync.WaitGroup
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wg.Add(1)
		call := c.Go("echo", payload, make(chan *Call, 1))
		go func() {
			defer wg.Done()
			<-call.Done
		}()
	}
	wg.Wait()
}

// BenchmarkCallSync64BTCP is BenchmarkCallSync64B over TCP loopback:
// every frame crosses the kernel, so write coalescing and buffered
// reads show up as fewer syscalls per call.
func BenchmarkCallSync64BTCP(b *testing.B) {
	c := benchTCP(b, 8)
	payload := make([]byte, 64)
	b.SetBytes(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.CallSync("echo", payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelinedCallsTCP measures multiplexed throughput over TCP
// loopback, where the coalescing writer batches the pipelined frames
// into far fewer syscalls than one-write-per-frame.
func BenchmarkPipelinedCallsTCP(b *testing.B) {
	c := benchTCP(b, 64)
	payload := make([]byte, 64)
	var wg sync.WaitGroup
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wg.Add(1)
		call := c.Go("echo", payload, make(chan *Call, 1))
		go func() {
			defer wg.Done()
			<-call.Done
		}()
	}
	wg.Wait()
}

func benchRing(b *testing.B, opts RingOptions) *Ring {
	b.Helper()
	srv := NewServer()
	srv.Register("echo", func(p []byte) ([]byte, error) { return p, nil })
	r, err := NewRing(srv, opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { srv.Close() })
	return r
}

// BenchmarkRingCallSync64B measures the in-process shared-memory fast
// path: no frames, no syscalls, one ring slot round trip — the number
// the accel model's 2.1 µs hardware RTT is cross-checked against.
func BenchmarkRingCallSync64B(b *testing.B) {
	r := benchRing(b, RingOptions{})
	payload := make([]byte, 64)
	b.SetBytes(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.CallSync("echo", payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRingCallSync64BParallel drives the ring from all procs at
// once: MPMC contention on the ticket counters and completion CASes.
func BenchmarkRingCallSync64BParallel(b *testing.B) {
	r := benchRing(b, RingOptions{Slots: 1024, Consumers: 4})
	b.SetBytes(64)
	b.RunParallel(func(pb *testing.PB) {
		payload := make([]byte, 64)
		for pb.Next() {
			if _, err := r.CallSync("echo", payload); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMuxPipelinedCallsTCP measures pipelined throughput over one
// multiplexed TCP connection: each parallel worker owns a logical
// stream with a small caller pool and issues synchronous calls, so
// the cost per op is frame+writev+dispatch — no per-call goroutine
// spawn, no shared-pool head-of-line wait.
func BenchmarkMuxPipelinedCallsTCP(b *testing.B) {
	c := benchTCP(b, 64)
	b.SetBytes(64)
	b.SetParallelism(32) // pipelining depth: streams per proc
	b.RunParallel(func(pb *testing.PB) {
		s := c.Stream(8)
		payload := make([]byte, 64)
		for pb.Next() {
			if _, err := s.CallSync("echo", payload); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMuxPipelinedCalls is the in-process (net.Pipe) variant of
// the multiplexed pipelined benchmark.
func BenchmarkMuxPipelinedCalls(b *testing.B) {
	c := benchPair(b, 64)
	b.SetBytes(64)
	b.SetParallelism(32)
	b.RunParallel(func(pb *testing.PB) {
		s := c.Stream(8)
		payload := make([]byte, 64)
		for pb.Next() {
			if _, err := s.CallSync("echo", payload); err != nil {
				b.Fatal(err)
			}
		}
	})
}
