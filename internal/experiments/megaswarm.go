package experiments

import (
	"runtime"
	"strconv"

	"hivemind/internal/scenario"
	"hivemind/internal/stats"
)

func init() {
	register("mega01", "Mega-swarm scale-out: heterogeneous fleet on the sharded per-cell executive", mega01)
}

// mega01 scales the simulator itself (ROADMAP item 5): one mixed
// drone/rover/tinybot mission per fleet size, each executed as a single
// simulation sharded across per-geo-cell engines with conservative
// time-window synchronization. The sweep points run serially — each
// point IS the parallel work — and each borrows the sweep pool's idle
// worker tokens for its shards, so mega01 composes with the rest of a
// RunAll without oversubscribing the machine.
//
// Everything in the report is derived from simulation state, never from
// wall clock or worker count, so the report bytes are identical at
// every -shards setting (the shard-parity CI lane diffs exactly this).
func mega01(cfg RunConfig) *Report {
	rep := &Report{ID: "mega01", Title: "Mega-swarm on the sharded executive"}
	tb := stats.NewTable("Mega-swarm: gossip + hierarchical localization vs fleet size",
		"devices", "cells", "covered_%", "spread_p99_s", "locerr_start_m", "locerr_end_m", "failed", "windows", "cross_msgs")

	sizes := []int{2000, 5000, 10000}
	duration := 10.0
	failProb := 0.001
	if cfg.Quick {
		sizes = []int{300, 800}
		duration = 5
	}

	for _, n := range sizes {
		// Worker budget: an explicit -shards wins; otherwise take the
		// cores the sweep pool isn't using right now (plus this
		// goroutine). Either way the results below are worker-invariant.
		workers, borrowed := cfg.Shards, 0
		if workers <= 0 {
			borrowed = cfg.exec.borrow(runtime.NumCPU() - 1)
			workers = 1 + borrowed
		}
		res, err := scenario.RunSwarm(scenario.SwarmConfig{
			Devices:   n,
			Shards:    workers,
			Seed:      cfg.Seed,
			DurationS: duration,
			FailProb:  failProb,
		})
		if borrowed > 0 {
			cfg.exec.release(borrowed)
		}
		if err != nil {
			rep.AddNote("devices=%d: %v", n, err)
			continue
		}
		tb.AddRow(n, res.Cells, res.CoveredFrac*100, res.SpreadP99S,
			res.LocErrStartM, res.LocErrMeanM, res.Failed,
			float64(res.Windows), float64(res.CrossMessages))
		suffix := strconv.Itoa(n)
		rep.SetValue("covered_frac_"+suffix, res.CoveredFrac)
		rep.SetValue("locerr_final_m_"+suffix, res.LocErrMeanM)
		rep.SetValue("locerr_start_m_"+suffix, res.LocErrStartM)
		rep.SetValue("spread_p99_s_"+suffix, res.SpreadP99S)
		rep.SetValue("failed_"+suffix, float64(res.Failed))
		for _, c := range res.Classes {
			rep.SetValue("locerr_"+c.Name+"_m_"+suffix, c.LocErrMeanM)
		}
	}
	rep.Tables = append(rep.Tables, tb)
	rep.AddNote("one simulation per row, sharded across per-geo-cell engines; " +
		"cells are fixed by the scenario and -shards only picks the worker count, " +
		"so these bytes are identical at every -shards setting")
	return rep
}
