// Package platform assembles the substrates into the complete systems
// the paper compares: Centralized IaaS, Centralized FaaS (OpenWhisk),
// Distributed Edge, HiveMind, and the Fig. 13 ablations. It provides
// the single-tier job runner used by most evaluation figures; the
// multi-phase scenarios build on it in internal/scenario.
package platform

import (
	"fmt"
	"math"

	"hivemind/internal/accel"
	"hivemind/internal/apps"
	"hivemind/internal/cluster"
	"hivemind/internal/controller"
	"hivemind/internal/device"
	"hivemind/internal/faas"
	"hivemind/internal/geo"
	"hivemind/internal/netsim"
	"hivemind/internal/scheduler"
	"hivemind/internal/sim"
	"hivemind/internal/stats"
	"hivemind/internal/store"
	"hivemind/internal/trace"
)

// SystemKind selects a coordination platform.
type SystemKind int

const (
	// CentralizedIaaS runs all computation on statically provisioned
	// cloud resources of equal cost.
	CentralizedIaaS SystemKind = iota
	// CentralizedFaaS runs all computation on the serverless cloud
	// (stock OpenWhisk behaviour).
	CentralizedFaaS
	// DistributedEdge runs all computation on the devices; only final
	// outputs reach the cloud.
	DistributedEdge
	// HiveMind is the full system: hybrid placement, serverless backend
	// with keep-alive/colocation/straggler mitigation, FPGA RPC and
	// remote-memory acceleration.
	HiveMind
)

// String implements fmt.Stringer.
func (k SystemKind) String() string {
	switch k {
	case CentralizedIaaS:
		return "centralized-iaas"
	case CentralizedFaaS:
		return "centralized-faas"
	case DistributedEdge:
		return "distributed-edge"
	case HiveMind:
		return "hivemind"
	default:
		return fmt.Sprintf("system(%d)", int(k))
	}
}

// Options configures a System. The zero value is not usable; start from
// Preset.
type Options struct {
	Kind      SystemKind
	Devices   int
	DeviceCfg device.Config
	NetCfg    netsim.Config
	ClusterCf cluster.Config
	FaasCfg   faas.Config
	// CtrlCfg tunes the centralized controller a HiveMind mission runs:
	// heartbeat detection, hot-standby count, failover delay (§4.6,
	// §4.7). Preset fills in controller.DefaultConfig().
	CtrlCfg controller.Config
	Seed    int64

	// Feature toggles (pre-set per Kind; the Fig. 13 ablations flip
	// them individually).
	NetAccel        bool // FPGA RPC/NIC offload for edge<->cloud and intra-cloud traffic
	RemoteMemAccel  bool // FPGA remote-memory inter-function data sharing
	HybridPlacement bool // per-tier edge/cloud placement (HiveMind synthesis outcome)
	IntraTaskPar    bool // split tasks across parallel functions

	// HybridUploadFrac is the fraction of sensor data HiveMind ships to
	// the cloud after on-board preprocessing (hybrid execution, §4.2);
	// the rest is consumed on-device.
	HybridUploadFrac float64
	// HybridEdgeWorkFrac is the fraction of the task's recognition work
	// subsumed by on-board preprocessing (reduces cloud execution).
	HybridEdgeWorkFrac float64
	// PreprocSPerMB is the on-board cost of the hybrid preprocessing
	// pass (ROI extraction / frame filtering) per MB of sensor data.
	PreprocSPerMB float64

	// FieldM is the side of the square survey field devices sweep.
	FieldM float64

	// WirelessScale multiplies wireless capacity (scalability sweeps
	// scale links proportionately to swarm size).
	WirelessScale float64

	// SchedulerShards sets the number of controller decision shards
	// (0 = auto: one shard, plus extra shards under HiveMind once the
	// swarm's decision rate would saturate a single controller thread,
	// §5.6).
	SchedulerShards int

	// Trace, if non-nil, records a span per completed task (with its
	// stage decomposition) and instants for device failures — exported
	// as a Chrome trace via internal/trace.
	Trace *trace.Recorder

	// PublicCloud models the §4.8 deployment where HiveMind does not
	// control physical machines: no parent/child colocation, no FPGA
	// fabrics, and co-tenant interference is higher. HiveMind retains
	// its programmability and hybrid-placement benefits.
	PublicCloud bool
}

// Preset returns the paper-faithful configuration for a system kind.
func Preset(kind SystemKind, devices int, seed int64) Options {
	o := Options{
		Kind:               kind,
		Devices:            devices,
		DeviceCfg:          device.DroneConfig(),
		NetCfg:             netsim.DefaultConfig(),
		ClusterCf:          cluster.DefaultConfig(),
		CtrlCfg:            controller.DefaultConfig(),
		Seed:               seed,
		HybridUploadFrac:   0.45,
		HybridEdgeWorkFrac: 0.05,
		PreprocSPerMB:      0.012, // ~80 MB/s ROI extraction on-board
		FieldM:             120,
		WirelessScale:      1,
	}
	switch kind {
	case CentralizedIaaS:
		o.FaasCfg = faas.DefaultConfig()
	case CentralizedFaaS:
		o.FaasCfg = openWhiskConfig()
		o.IntraTaskPar = true
	case DistributedEdge:
		o.FaasCfg = openWhiskConfig()
	case HiveMind:
		o.FaasCfg = faas.HiveMindConfig(accel.NewFabric())
		o.FaasCfg.WarmStartS = 0.035
		o.NetAccel = true
		o.RemoteMemAccel = true
		o.HybridPlacement = true
		o.IntraTaskPar = true
	}
	return o
}

// openWhiskConfig is the stock serverless baseline: short-lived
// containers with a brief reuse window, CouchDB data sharing.
func openWhiskConfig() faas.Config {
	c := faas.DefaultConfig()
	c.KeepAliveS = 0.6 // terminates containers shortly after completion
	c.WarmStartS = 0.035
	c.Protocol = store.ProtoCouchDB
	return c
}

// System is a fully wired coordination platform over one simulation
// engine.
type System struct {
	Opts    Options
	Eng     *sim.Engine
	Net     *netsim.Network
	Cluster *cluster.Cluster
	Faas    *faas.Platform
	Fleet   device.Fleet

	regions []geo.Rect
	failed  int
}

// NewSystem builds and wires a system.
func NewSystem(o Options) *System {
	if o.Devices <= 0 {
		panic("platform: need at least one device")
	}
	eng := sim.NewEngine(o.Seed)
	netCfg := o.NetCfg
	netCfg.RPCAccel = o.NetAccel
	clsCfg := o.ClusterCf
	if o.NetAccel {
		clsCfg.NetStackCoresPerServer = 0 // offload frees the stack cores
	}
	faasCfg := o.FaasCfg
	if o.PublicCloud {
		o.NetAccel = false
		o.RemoteMemAccel = false
		netCfg.RPCAccel = false
		clsCfg.NetStackCoresPerServer = cluster.DefaultConfig().NetStackCoresPerServer
		faasCfg.Colocate = false
		faasCfg.InterferenceCoef *= 1.5 // unknown co-tenants
	}
	if !o.RemoteMemAccel && faasCfg.Protocol == store.ProtoRemoteMem {
		faasCfg.Protocol = store.ProtoCouchDB
		faasCfg.Fabric = nil
	}
	// Controller decision engine: one scheduler thread makes a decision
	// in ~0.2 ms; HiveMind adds shards when the swarm's aggregate task
	// rate would saturate it (§5.6: "multiple schedulers, each
	// responsible for a subset of tasks").
	const decisionS = 0.0002
	shards := o.SchedulerShards
	if shards <= 0 {
		shards = 1
		if o.Kind == HiveMind {
			// ~2 tasks/s/device headroom against the 5000/s shard limit.
			shards = 1 + o.Devices*2/int(1/decisionS)
		}
	}
	faasCfg.Scheduler = scheduler.NewSharded(eng, shards, decisionS)

	s := &System{Opts: o, Eng: eng}
	s.Net = netsim.NewNetwork(eng, netCfg)
	if o.WirelessScale != 1 && o.WirelessScale > 0 {
		s.Net.ScaleWireless(o.WirelessScale)
	}
	s.Cluster = cluster.New(eng, clsCfg)
	s.Faas = faas.New(eng, s.Cluster, faasCfg)
	s.Fleet = device.NewFleet(eng, o.Devices, o.DeviceCfg, func(d *device.Device) {
		s.failed++
		if o.Trace != nil {
			o.Trace.Mark(trace.Instant{
				Name: "device-failure", Track: fmt.Sprintf("device-%d", d.ID),
				AtS: eng.Now(), Global: true,
			})
		}
	})

	// Divide the field and start the survey sweep (§2.1: "at time zero,
	// the field is divided equally among the drones").
	field := geo.NewField(o.FieldM, o.FieldM)
	s.regions = geo.Partition(field, o.Devices)
	for i, d := range s.Fleet {
		d.AssignRegion(s.regions[i])
	}
	return s
}

// FailedDevices returns how many devices have failed so far.
func (s *System) FailedDevices() int { return s.failed }

// Regions returns the current field partition (one region per device).
func (s *System) Regions() []geo.Rect { return s.regions }

// TierPlacement says where a tier of computation runs under this
// system.
type TierPlacement int

const (
	TierCloud TierPlacement = iota
	TierEdge
	TierHybrid
)

// String implements fmt.Stringer.
func (p TierPlacement) String() string {
	switch p {
	case TierEdge:
		return "edge"
	case TierHybrid:
		return "hybrid"
	default:
		return "cloud"
	}
}

// PlaceFor decides a single-tier job's placement under this system —
// the outcome HiveMind's synthesis search arrives at (§4.2), encoded:
// pinned-edge tasks stay on-board, light tasks whose network cost
// exceeds their compute cost run on the edge, heavy tasks run hybrid.
func (s *System) PlaceFor(p apps.Profile) TierPlacement {
	switch s.Opts.Kind {
	case DistributedEdge:
		return TierEdge
	case CentralizedIaaS, CentralizedFaaS:
		return TierCloud
	}
	// HiveMind (or custom hybrid-capable systems).
	if !s.Opts.HybridPlacement {
		return TierCloud
	}
	if p.PinEdge {
		return TierEdge
	}
	if p.EdgeUtilization() < 0.8 && p.EdgeExecS < 2.5*p.CloudExecS {
		// Light enough for the device and not much slower there: keep it
		// local and save the radio (S3 drone detection, S7 weather).
		return TierEdge
	}
	return TierHybrid
}

// TaskMetrics is one completed task's accounting.
type TaskMetrics struct {
	App       apps.ID
	Placement TierPlacement
	Start     sim.Time
	End       sim.Time
	Network   float64
	Mgmt      float64
	DataIO    float64
	Exec      float64
	Dropped   bool
	Cold      int
	Respawns  int
}

// TotalS returns end-to-end latency.
func (m TaskMetrics) TotalS() float64 { return m.End - m.Start }

// sampleEdgeExec draws an on-board service time: the intrinsic
// variability (thermal throttling, SD-card I/O, background autonomy
// work) that makes distributed execution "poor and unpredictable"
// (§2.3).
func (s *System) sampleEdgeExec(base, cv float64) float64 {
	if cv <= 0 {
		return base
	}
	sigma := math.Sqrt(math.Log(1 + cv*cv))
	mu := -sigma * sigma / 2
	t := base * math.Exp(mu+sigma*s.Eng.Rand().NormFloat64())
	if t < 1e-6 {
		t = 1e-6
	}
	return t
}

// SubmitOpts tunes one task submission.
type SubmitOpts struct {
	// ForcePlacement overrides the system's placement decision.
	ForcePlacement *TierPlacement
	// Parallelism overrides the profile fan-out (0 = per system config).
	Parallelism int
	// InputScale scales the sensor payload (resolution sweeps).
	InputScale float64
	// Device selects the submitting device (default: by round-robin —
	// pass -1 for automatic).
	Device int
}

// SubmitTask runs one task of the given application through the system
// and reports metrics. done may be nil.
func (s *System) SubmitTask(p apps.Profile, dev *device.Device, opts SubmitOpts, done func(TaskMetrics)) {
	if opts.InputScale <= 0 {
		opts.InputScale = 1
	}
	placement := s.PlaceFor(p)
	if opts.ForcePlacement != nil {
		placement = *opts.ForcePlacement
	}
	m := TaskMetrics{App: p.ID, Placement: placement, Start: s.Eng.Now()}
	finish := func() {
		m.End = s.Eng.Now()
		if tr := s.Opts.Trace; tr != nil {
			tr.Add(trace.Span{
				Name:     string(p.ID),
				Category: placement.String(),
				Track:    fmt.Sprintf("device-%d", dev.ID),
				StartS:   m.Start,
				EndS:     m.End,
				Args: map[string]string{
					"network": fmt.Sprintf("%.4f", m.Network),
					"mgmt":    fmt.Sprintf("%.4f", m.Mgmt),
					"dataio":  fmt.Sprintf("%.4f", m.DataIO),
					"exec":    fmt.Sprintf("%.4f", m.Exec),
					"dropped": fmt.Sprintf("%v", m.Dropped),
				},
			})
		}
		if done != nil {
			done(m)
		}
	}
	if dev.Failed() {
		m.Dropped = true
		finish()
		return
	}
	switch placement {
	case TierEdge:
		s.runEdge(p, dev, &m, opts, finish)
	case TierCloud:
		s.runCloud(p, dev, &m, opts, 1.0, 0, finish)
	case TierHybrid:
		// Preprocess on-board (cheap, data-proportional ROI extraction),
		// ship the reduced payload, finish in the cloud.
		pre := s.sampleEdgeExec(p.InputMB*s.Opts.PreprocSPerMB, p.ExecCV)
		dev.RunTask(pre, func(out device.TaskOutcome) {
			if out.Dropped {
				m.Dropped = true
				finish()
				return
			}
			m.Exec += out.ExecS + out.QueueS
			s.runCloud(p, dev, &m, opts, s.Opts.HybridUploadFrac, s.Opts.HybridEdgeWorkFrac, finish)
		})
	}
}

// runEdge executes fully on-board; only the small output is shipped.
func (s *System) runEdge(p apps.Profile, dev *device.Device, m *TaskMetrics, opts SubmitOpts, finish func()) {
	// Edge devices show ~2x the cloud's intrinsic variability (thermal
	// and I/O effects on a passively-cooled ARM board).
	dev.RunTask(s.sampleEdgeExec(p.EdgeExecS, 2*p.ExecCV), func(out device.TaskOutcome) {
		if out.Dropped {
			m.Dropped = true
			finish()
			return
		}
		m.Exec += out.ExecS + out.QueueS
		// Ship the final output to the backend.
		outMB := p.OutputMB
		dev.Transmit(outMB)
		s.Net.EdgeToCloud(outMB*1e6, func(ti netsim.TransferInfo) {
			m.Network += ti.TotalS
			finish()
		})
	})
}

// runCloud ships the (possibly reduced) input, executes on the backend
// and returns the result. uploadFrac scales the payload; workDone is
// the fraction of the task already executed on-board.
func (s *System) runCloud(p apps.Profile, dev *device.Device, m *TaskMetrics, opts SubmitOpts, uploadFrac, workDone float64, finish func()) {
	inMB := p.InputMB * opts.InputScale * uploadFrac
	dev.Transmit(inMB)
	s.Net.EdgeToCloud(inMB*1e6, func(up netsim.TransferInfo) {
		m.Network += up.TotalS
		par := p.Parallelism
		if !s.Opts.IntraTaskPar {
			par = 1
		}
		if opts.Parallelism > 0 {
			par = opts.Parallelism
		}
		spec := faas.FunctionSpec{
			Name:         string(p.ID),
			ExecS:        p.CloudExecS * (1 - workDone),
			Parallelism:  par,
			MemGB:        p.MemGB,
			ExecCV:       p.ExecCV,
			ParentDataMB: inMB, // functions fetch sensor data from the store
		}
		s.Faas.Invoke(spec, func(r faas.Result) {
			m.Mgmt += r.MgmtS + r.QueueS
			m.DataIO += r.DataIOS
			m.Exec += r.ExecS
			m.Cold += r.Cold
			m.Respawns += r.Respawns
			// Response back to the device.
			dev.Receive(p.OutputMB)
			s.Net.EdgeToCloud(p.OutputMB*1e6, func(down netsim.TransferInfo) {
				m.Network += down.TotalS
				finish()
			})
		})
	})
}

// JobResult aggregates a single-tier job run (one application, all
// devices, fixed duration).
type JobResult struct {
	App         apps.ID
	Latency     *stats.Sample
	Breakdown   *stats.Breakdown
	Submitted   int
	Completed   int
	Dropped     int
	BatteryMean float64 // mean consumed fraction across devices
	BatteryMax  float64
	BWMeanMBps  float64 // wireless bandwidth over the run
	BWp99MBps   float64
	ColdStarts  int
	Respawns    int
}

// RunJob drives one application at its default per-device rate for
// durationS seconds, then drains in-flight tasks, and reports
// aggregate metrics (the paper runs each job for 120 s).
func (s *System) RunJob(p apps.Profile, durationS float64) JobResult {
	res := JobResult{App: p.ID, Latency: &stats.Sample{}, Breakdown: stats.NewBreakdown()}
	period := 1.0 / p.TaskRatePerDevice
	rng := s.Eng.Rand()
	for _, d := range s.Fleet {
		d := d
		// Stagger device phase and jitter arrivals ±20%.
		start := rng.Float64() * period
		var submit func()
		submit = func() {
			if s.Eng.Now() >= durationS {
				return
			}
			res.Submitted++
			s.SubmitTask(p, d, SubmitOpts{}, func(m TaskMetrics) {
				if m.Dropped {
					res.Dropped++
					return
				}
				res.Completed++
				res.Latency.Add(m.TotalS())
				res.Breakdown.Record(map[stats.Stage]float64{
					stats.StageNetwork:    m.Network,
					stats.StageManagement: m.Mgmt,
					stats.StageDataIO:     m.DataIO,
					stats.StageExecution:  m.Exec,
				})
				res.ColdStarts += m.Cold
				res.Respawns += m.Respawns
			})
			next := period * (0.8 + 0.4*rng.Float64())
			s.Eng.Defer(next, submit)
		}
		s.Eng.DeferAt(start, submit)
	}
	s.Eng.RunUntil(durationS)
	// Drain stragglers (bounded).
	s.Eng.RunUntil(durationS + 60)
	s.Fleet.Settle()
	s.Fleet.StopAll()
	s.Eng.Run() // let keep-alive timers and residual events drain

	res.BatteryMean = s.Fleet.MeanBatteryConsumed()
	res.BatteryMax = s.Fleet.MaxBatteryConsumed()
	bw := s.Net.Wireless.Meter().RateSample(durationS)
	res.BWMeanMBps = bw.Mean() / 1e6
	res.BWp99MBps = bw.Percentile(99) / 1e6
	return res
}

// RunJobs drives several applications concurrently on one system (the
// platform "supports multi-tenancy", §2.1) and returns per-job results
// in input order. Shared resources — wireless, cores, warm pools — are
// contended across the jobs.
func (s *System) RunJobs(profiles []apps.Profile, durationS float64) []JobResult {
	results := make([]JobResult, len(profiles))
	rng := s.Eng.Rand()
	for ji := range profiles {
		p := profiles[ji]
		res := &results[ji]
		res.App = p.ID
		res.Latency = &stats.Sample{}
		res.Breakdown = stats.NewBreakdown()
		period := 1.0 / p.TaskRatePerDevice
		for _, d := range s.Fleet {
			d := d
			start := rng.Float64() * period
			var submit func()
			submit = func() {
				if s.Eng.Now() >= durationS {
					return
				}
				res.Submitted++
				s.SubmitTask(p, d, SubmitOpts{}, func(m TaskMetrics) {
					if m.Dropped {
						res.Dropped++
						return
					}
					res.Completed++
					res.Latency.Add(m.TotalS())
					res.Breakdown.Record(map[stats.Stage]float64{
						stats.StageNetwork:    m.Network,
						stats.StageManagement: m.Mgmt,
						stats.StageDataIO:     m.DataIO,
						stats.StageExecution:  m.Exec,
					})
				})
				s.Eng.Defer(period*(0.8+0.4*rng.Float64()), submit)
			}
			s.Eng.DeferAt(start, submit)
		}
	}
	s.Eng.RunUntil(durationS)
	s.Eng.RunUntil(durationS + 60)
	s.Fleet.Settle()
	s.Fleet.StopAll()
	s.Eng.Run()
	bw := s.Net.Wireless.Meter().RateSample(durationS)
	for ji := range results {
		results[ji].BatteryMean = s.Fleet.MeanBatteryConsumed()
		results[ji].BatteryMax = s.Fleet.MaxBatteryConsumed()
		results[ji].BWMeanMBps = bw.Mean() / 1e6
		results[ji].BWp99MBps = bw.Percentile(99) / 1e6
	}
	return results
}

// ReservedJob runs a job on a statically provisioned pool (the
// Centralized IaaS baseline): all computation in the cloud on
// sizeCores cores of reserved capacity. sizeCores <= 0 provisions for
// the average demand ("statically provisioned cloud resources of equal
// cost").
func (s *System) ReservedJob(p apps.Profile, durationS float64, sizeCores int) JobResult {
	if sizeCores <= 0 {
		demand := p.TaskRatePerDevice * float64(s.Opts.Devices) * p.CloudExecS
		sizeCores = int(math.Ceil(demand))
		if sizeCores < 1 {
			sizeCores = 1
		}
	}
	pool := faas.NewReserved(s.Eng, sizeCores, s.Faas.Config())
	res := JobResult{App: p.ID, Latency: &stats.Sample{}, Breakdown: stats.NewBreakdown()}
	period := 1.0 / p.TaskRatePerDevice
	rng := s.Eng.Rand()
	for _, d := range s.Fleet {
		d := d
		start := rng.Float64() * period
		var submit func()
		submit = func() {
			if s.Eng.Now() >= durationS {
				return
			}
			res.Submitted++
			taskStart := s.Eng.Now()
			inMB := p.InputMB
			dev := d
			dev.Transmit(inMB)
			s.Net.EdgeToCloud(inMB*1e6, func(up netsim.TransferInfo) {
				// Fixed deployments run each task as a single process;
				// intra-task fan-out is a serverless benefit (§3.2).
				pool.Invoke(faas.FunctionSpec{
					Name: string(p.ID), ExecS: p.CloudExecS, Parallelism: 1,
					MemGB: p.MemGB, ExecCV: p.ExecCV,
				}, func(r faas.Result) {
					dev.Receive(p.OutputMB)
					s.Net.EdgeToCloud(p.OutputMB*1e6, func(down netsim.TransferInfo) {
						res.Completed++
						res.Latency.Add(s.Eng.Now() - taskStart)
						res.Breakdown.Record(map[stats.Stage]float64{
							stats.StageNetwork:   up.TotalS + down.TotalS,
							stats.StageExecution: r.ExecS + r.QueueS,
						})
					})
				})
			})
			s.Eng.Defer(period*(0.8+0.4*rng.Float64()), submit)
		}
		s.Eng.DeferAt(start, submit)
	}
	s.Eng.RunUntil(durationS)
	s.Eng.RunUntil(durationS + 120)
	s.Fleet.Settle()
	s.Fleet.StopAll()
	s.Eng.Run()
	res.BatteryMean = s.Fleet.MeanBatteryConsumed()
	res.BatteryMax = s.Fleet.MaxBatteryConsumed()
	bw := s.Net.Wireless.Meter().RateSample(durationS)
	res.BWMeanMBps = bw.Mean() / 1e6
	res.BWp99MBps = bw.Percentile(99) / 1e6
	return res
}
