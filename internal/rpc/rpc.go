// Package rpc is a from-scratch framed binary RPC framework standing in
// for the Apache Thrift APIs the HiveMind compiler synthesizes for
// edge<->cloud communication (§4.1), with the same structure as the
// networking API of §4.5: an RPCServer with registered procedures and an
// RPCClient that "encapsulates a pool of RPC caller threads that
// concurrently call remote procedures registered in the RPCServer".
//
// The wire format is a simple length-prefixed frame:
//
//	uint32 frameLen | uint8 kind | uint64 callID | uint16 methodLen |
//	method bytes    | payload bytes
//
// Payloads are opaque []byte so the generated cross-task APIs can choose
// their own encoding. Transports are anything that yields a net.Conn:
// TCP between machines, net.Pipe in-process.
//
// The data plane is built for throughput, the software stand-in for the
// paper's FPGA RPC offload (§5.3): frame buffers come from a sync.Pool
// and header+method+payload are gathered into a single write; each
// connection owns a buffered, coalescing writer (writer.go) whose
// flusher goroutine batches the frames queued behind an in-flight write
// into one syscall; and each server connection runs handlers on a
// bounded worker pool (worker.go) instead of a goroutine per request,
// sized like the client's caller pool.
//
// Beyond request/response the protocol carries three control frames
// that make the live substrate survivable under the failure modes the
// paper studies (§3.2, §4.6): cancel frames propagate client-side
// context cancellation into running server handlers, and ping/pong
// frames give clients a connection-health heartbeat. Both are serviced
// out-of-band of the worker pool, directly from the read loop, so
// heartbeats never queue behind slow handlers. On top of the
// single-connection Client, ReliableClient (reliable.go) layers
// deadlines, retries with backoff (retry.go), automatic reconnect, and
// circuit breaking (breaker.go).
package rpc

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Frame kinds.
const (
	kindRequest  = 1
	kindResponse = 2
	kindError    = 3
	// kindCancel tells the server to cancel the context of the handler
	// running callID (sent when the client's ctx fires first).
	kindCancel = 4
	// kindPing/kindPong are the connection heartbeat: the server echoes
	// a ping's payload back in a pong with the same call id.
	kindPing = 5
	kindPong = 6
	// kindRequestDL is a request whose body starts with an 8-byte
	// absolute deadline (UnixNano) ahead of the payload: wire-level
	// deadline propagation. Servers drop a request whose deadline has
	// already passed *before* executing it (see dispatcher.run), so an
	// overloaded fleet stops burning capacity on responses nobody is
	// waiting for. Plain kindRequest frames remain valid (no deadline),
	// so v1 clients interoperate unchanged.
	kindRequestDL = 7
)

// maxFrame bounds a frame to 64 MiB: larger than any sensor batch the
// swarm ships, small enough to stop a corrupt length prefix from
// exhausting memory.
const maxFrame = 64 << 20

// Call ids carry the logical stream in their top 16 bits so one
// connection can multiplex many streams without a wire-format change:
// v1 peers simply echo the id back. Stream 0 is the connection's
// default stream (plain Client calls); Client.Stream allocates the
// rest.
const (
	streamShift   = 48
	streamSeqMask = (uint64(1) << streamShift) - 1
)

// streamOf extracts the logical stream a call id belongs to.
func streamOf(callID uint64) uint16 { return uint16(callID >> streamShift) }

// Common errors.
var (
	ErrClosed         = errors.New("rpc: connection closed")
	ErrMethodNotFound = errors.New("rpc: method not found")
)

// ServerError is an application-level error returned by a remote
// handler, as opposed to a transport failure. Retry policies treat the
// two differently: a ServerError proves the request executed, so only
// transport failures are safe to retry for idempotent methods.
type ServerError string

// Error implements error.
func (e ServerError) Error() string { return string(e) }

// Handler processes one request payload and returns a response payload.
type Handler func(payload []byte) ([]byte, error)

// HandlerCtx is a context-aware handler: ctx is cancelled when the
// client sends a cancel frame for this call or the connection drops, so
// long-running handlers can stop wasted work (server-side cancellation
// propagation).
type HandlerCtx func(ctx context.Context, payload []byte) ([]byte, error)

// CallObserver is the client-side interceptor hook: it is invoked once
// per outbound request with the method and payload and returns a
// completion callback invoked with the call's final error (nil on
// success), or nil to skip observing this call. The pair brackets the
// full RPC hop — caller-pool wait, write, server turnaround, reply — so
// observability layers can time hops without touching the wire format.
type CallObserver func(method string, payload []byte) func(err error)

// ServerInterceptor wraps every dispatched handler: it receives the
// request and the resolved handler (next) and must call it (or not) to
// produce the response. Interceptors time or trace the server side of
// an RPC hop; method is a stable copy, safe to retain.
type ServerInterceptor func(ctx context.Context, method string, payload []byte, next HandlerCtx) ([]byte, error)

// frame describes one outgoing frame (write side).
type frame struct {
	kind    byte
	callID  uint64
	method  string
	payload []byte
}

// rframe is one decoded incoming frame. method and payload alias the
// frame's body buffer: method is only valid until the receiver moves
// on, payload escapes as the handler argument / call reply.
type rframe struct {
	kind    byte
	callID  uint64
	method  []byte
	payload []byte
}

func readFrame(r io.Reader) (rframe, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return rframe{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n < 11 || n > maxFrame {
		return rframe{}, fmt.Errorf("rpc: invalid frame length %d", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return rframe{}, err
	}
	f := rframe{kind: body[0], callID: binary.BigEndian.Uint64(body[1:9])}
	mlen := int(binary.BigEndian.Uint16(body[9:11]))
	if 11+mlen > int(n) {
		return rframe{}, errors.New("rpc: method length exceeds frame")
	}
	f.method = body[11 : 11+mlen]
	f.payload = body[11+mlen:]
	return f, nil
}

// handlerEntry is a registered procedure. plain marks handlers that
// ignore their context (registered via Register): the server skips
// per-request cancellation tracking for them — a cancel would have no
// observable effect anyway — saving a context allocation and two map
// operations per request on the hot path.
type handlerEntry struct {
	fn    HandlerCtx
	plain bool
}

// Server dispatches registered procedures over accepted connections.
type Server struct {
	mu          sync.RWMutex
	handlers    map[string]handlerEntry
	interceptor ServerInterceptor

	lnMu      sync.Mutex
	listeners []net.Listener
	conns     map[net.Conn]struct{}
	rings     []*Ring
	closed    bool
	workers   int
	wg        sync.WaitGroup

	// droppedExpired counts requests whose propagated deadline had
	// already passed when a worker was about to execute them: dropped
	// with a DeadlineExceededError instead of executed.
	droppedExpired atomic.Uint64
}

// DroppedExpired reports how many requests were dropped before
// execution because their wire-propagated deadline had already expired
// (the overload e2e suite asserts expired work is never executed).
func (s *Server) DroppedExpired() uint64 { return s.droppedExpired.Load() }

// NewServer returns an empty server.
func NewServer() *Server {
	return &Server{handlers: make(map[string]handlerEntry), conns: make(map[net.Conn]struct{})}
}

// SetWorkers bounds the per-connection handler worker pool for
// connections served after the call (<=0 restores the default of 64,
// matching the client caller pool). Ping and cancel frames are handled
// outside the pool regardless of its size.
func (s *Server) SetWorkers(n int) {
	s.lnMu.Lock()
	defer s.lnMu.Unlock()
	s.workers = n
}

// SetInterceptor installs a server-side interceptor wrapping every
// dispatched handler (nil removes it). It applies to requests read
// after the call; in-flight requests keep the handler they resolved.
func (s *Server) SetInterceptor(si ServerInterceptor) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.interceptor = si
}

// Register binds a handler to a method name. Re-registering replaces the
// handler.
func (s *Server) Register(method string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[method] = handlerEntry{
		fn:    func(_ context.Context, payload []byte) ([]byte, error) { return h(payload) },
		plain: true,
	}
}

// RegisterCtx binds a context-aware handler: its ctx is cancelled when
// the calling client cancels the request or its connection drops.
func (s *Server) RegisterCtx(method string, h HandlerCtx) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[method] = handlerEntry{fn: h}
}

// handlerFor resolves a method to its handler entry and the current
// interceptor — the lookup the in-process ring transport shares with
// the framed read loop.
func (s *Server) handlerFor(method string) (handlerEntry, ServerInterceptor, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	h, ok := s.handlers[method]
	return h, s.interceptor, ok
}

// attachRing registers an in-process ring transport with the server's
// lifecycle: Close tears it down with the framed connections.
func (s *Server) attachRing(r *Ring) error {
	s.lnMu.Lock()
	defer s.lnMu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.rings = append(s.rings, r)
	return nil
}

// Methods returns the registered method names (unordered).
func (s *Server) Methods() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.handlers))
	for m := range s.handlers {
		out = append(out, m)
	}
	return out
}

// Serve accepts connections on ln until the listener or server is
// closed. It blocks; run it in a goroutine.
func (s *Server) Serve(ln net.Listener) error {
	s.lnMu.Lock()
	if s.closed {
		s.lnMu.Unlock()
		ln.Close()
		return ErrClosed
	}
	s.listeners = append(s.listeners, ln)
	s.lnMu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.lnMu.Lock()
			closed := s.closed
			s.lnMu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.ServeConn(conn)
	}
}

// ServeConn serves a single connection asynchronously (e.g. one end of a
// net.Pipe).
func (s *Server) ServeConn(conn net.Conn) {
	s.lnMu.Lock()
	if s.closed {
		s.lnMu.Unlock()
		conn.Close()
		return
	}
	s.conns[conn] = struct{}{}
	workers := s.workers
	s.wg.Add(1)
	s.lnMu.Unlock()
	go func() {
		defer s.wg.Done()
		w := newConnWriter(conn)
		d := newDispatcher(w, workers)
		d.dropped = &s.droppedExpired
		defer func() {
			s.lnMu.Lock()
			delete(s.conns, conn)
			s.lnMu.Unlock()
			// Cancel every in-flight handler on this conn so it
			// observes the disconnect, then stop the pool.
			d.abortAll()
			d.close()
			w.close()
			conn.Close()
		}()
		br := bufio.NewReaderSize(conn, readBufSize)
		for {
			f, err := readFrame(br)
			if err != nil {
				return
			}
			var deadlineNS int64
			switch f.kind {
			case kindPing:
				// Answered directly from the read loop, out-of-band of
				// the worker pool. The async enqueue never blocks this
				// goroutine on a syscall, so a saturated pool or a stuck
				// peer cannot stall heartbeat service.
				if buf, encErr := encodeFrame(kindPong, f.callID, "", f.payload); encErr == nil {
					w.enqueue(buf, false)
				}
				continue
			case kindCancel:
				d.cancelCall(f.callID)
				continue
			case kindRequest:
			case kindRequestDL:
				if len(f.payload) < 8 {
					continue // malformed deadline frame
				}
				deadlineNS = int64(binary.BigEndian.Uint64(f.payload[:8]))
				f.payload = f.payload[8:]
			default:
				continue
			}
			s.mu.RLock()
			h, ok := s.handlers[string(f.method)] // alloc-free []byte map key
			icept := s.interceptor
			s.mu.RUnlock()
			t := task{h: h.fn, callID: f.callID, stream: streamOf(f.callID), payload: f.payload, deadlineNS: deadlineNS}
			if !ok {
				t.h = nil
			} else if icept != nil {
				// f.method aliases the read buffer; the interceptor runs
				// async on the worker pool, so it gets a stable copy.
				method := string(f.method)
				inner := h.fn
				t.h = func(ctx context.Context, payload []byte) ([]byte, error) {
					return icept(ctx, method, payload, inner)
				}
			}
			if ok && !h.plain {
				// Context-aware handler: track it so cancel frames and
				// teardown reach it. Plain handlers ignore their ctx, so
				// the tracking (and its allocations) is skipped. The wire
				// deadline (if any) surfaces through ctx.Deadline so
				// handlers and everything they derive inherit it.
				t.ctx = &reqCtx{}
				if deadlineNS != 0 {
					t.ctx.deadline = time.Unix(0, deadlineNS)
				}
				d.register(f.callID, t.ctx)
			}
			d.submit(t)
		}
	}()
}

// Close stops the server: listeners close, active connections drop, and
// Close waits for connection goroutines to drain.
func (s *Server) Close() {
	s.lnMu.Lock()
	if s.closed {
		s.lnMu.Unlock()
		return
	}
	s.closed = true
	for _, ln := range s.listeners {
		ln.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	rings := s.rings
	s.rings = nil
	s.lnMu.Unlock()
	for _, r := range rings {
		r.Close()
	}
	s.wg.Wait()
}

// Call is a pending RPC.
type Call struct {
	Method  string
	Reply   []byte
	Err     error
	Done    chan *Call
	replyTo uint64
	fin     atomic.Bool   // completion claimed; winner sets Err/Reply
	sem     chan struct{} // caller-pool slot to return; nil if none held
	obsDone func(error)   // observer completion hook; nil when unobserved
}

// donePool recycles the internal completion channels of the blocking
// call paths (Call/CallSync/Ping); each delivers exactly once, so a
// received-from channel is empty and safe to reuse.
var donePool = sync.Pool{New: func() any { return make(chan *Call, 1) }}

func getDone() chan *Call   { return donePool.Get().(chan *Call) }
func putDone(ch chan *Call) { donePool.Put(ch) }

// callPool recycles the Call records of the blocking call paths. A
// call delivered on Done has exactly one finisher, so once the caller
// has received it no other goroutine holds a reference. Calls returned
// by Go escape to the user and are never pooled.
var callPool = sync.Pool{New: func() any { return new(Call) }}

func getCall(method string, done chan *Call) *Call {
	call := callPool.Get().(*Call)
	call.Method = method
	call.Done = done
	return call
}

func putCall(call *Call) {
	*call = Call{}
	callPool.Put(call)
}

// Client issues calls over one connection, multiplexing concurrent
// requests by call id. A semaphore of size callers bounds in-flight
// calls, mirroring the paper's caller-thread pool: the slot is held
// from send until the reply (or failure) arrives.
//
// One connection can carry many logical streams: Stream carves an
// independent caller pool out of the shared connection, and the server
// dispatches queued work round-robin across streams, so a saturated
// stream cannot head-of-line-block its siblings (see Stream).
type Client struct {
	conn   net.Conn
	w      *connWriter
	nextID atomic.Uint64

	// nextStream allocates logical stream ids for Stream; stream 0 is
	// the Client's own default stream.
	nextStream atomic.Uint32

	mu      sync.Mutex
	pending map[uint64]*Call
	closed  bool
	readErr error

	sem chan struct{}

	// obs holds the call observer; atomic so the hot path loads it
	// without taking c.mu.
	obs atomic.Pointer[CallObserver]
}

// SetObserver installs a client-side call observer (nil removes it).
// It applies to calls started after the call returns.
func (c *Client) SetObserver(obs CallObserver) {
	if obs == nil {
		c.obs.Store(nil)
		return
	}
	c.obs.Store(&obs)
}

// NewClient wraps an established connection with a caller pool of the
// given size (<=0 means 64).
func NewClient(conn net.Conn, callers int) *Client {
	if callers <= 0 {
		callers = 64
	}
	c := &Client{
		conn:    conn,
		w:       newConnWriter(conn),
		pending: make(map[uint64]*Call),
		sem:     make(chan struct{}, callers),
	}
	// A failed batch write carries the root cause of the teardown:
	// queued-but-unflushed frames must fail their pending calls with
	// that error, not strand them until a read-side deadline.
	c.w.onErr = func(err error) { c.failAll(fmt.Errorf("rpc: write failed: %w", err)) }
	go c.readLoop()
	return c
}

// Dial connects to a server over TCP.
func Dial(addr string, callers int) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn, callers), nil
}

func (c *Client) readLoop() {
	br := bufio.NewReaderSize(c.conn, readBufSize)
	for {
		f, err := readFrame(br)
		if err != nil {
			c.failAll(err)
			return
		}
		c.mu.Lock()
		call := c.pending[f.callID]
		delete(c.pending, f.callID)
		c.mu.Unlock()
		if call == nil {
			continue
		}
		// The read loop is the call's exclusive finisher once it has
		// removed it from pending, so these field writes cannot race.
		switch f.kind {
		case kindResponse, kindPong:
			call.Reply = f.payload
		case kindError:
			call.Err = ServerError(f.payload)
		default:
			call.Err = fmt.Errorf("rpc: unexpected frame kind %d", f.kind)
		}
		call.finish()
	}
}

// closeError returns ErrClosed carrying the root cause of the
// connection teardown, so chaos-test failures are diagnosable instead
// of a bare "connection closed".
func closeError(cause error) error {
	if cause == nil || errors.Is(cause, ErrClosed) || errors.Is(cause, io.EOF) || errors.Is(cause, io.ErrClosedPipe) {
		return ErrClosed
	}
	return fmt.Errorf("%w: %v", ErrClosed, cause)
}

func (c *Client) failAll(err error) {
	if c.w != nil { // nil in white-box tests that never dial
		c.w.close()
	}
	c.mu.Lock()
	c.closed = true
	if c.readErr == nil {
		c.readErr = err
	}
	cause := closeError(c.readErr)
	pend := c.pending
	c.pending = make(map[uint64]*Call)
	c.mu.Unlock()
	for _, call := range pend {
		call.fail(cause)
	}
}

// deliver returns the caller-pool slot and hands the call to Done. Only
// reached through once.Do.
func (call *Call) deliver() {
	if call.obsDone != nil {
		// Observed before the caller unblocks, so a span recorded here is
		// visible as soon as the blocking call returns.
		call.obsDone(call.Err)
		call.obsDone = nil
	}
	if call.sem != nil {
		<-call.sem
	}
	select {
	case call.Done <- call:
	default:
		// Done channel must be buffered; drop rather than block.
	}
}

// finish completes a call whose Reply/Err its exclusive finisher
// already set; exactly one deliver runs.
func (call *Call) finish() {
	if call.fin.CompareAndSwap(false, true) {
		call.deliver()
	}
}

// fail completes a call with err unless it already completed. Err is
// only written by the claim winner, so concurrent finishers cannot
// race on the field.
func (call *Call) fail(err error) {
	if call.fin.CompareAndSwap(false, true) {
		call.Err = err
		call.deliver()
	}
}

// Healthy reports whether the connection has not failed.
func (c *Client) Healthy() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return !c.closed
}

// start registers and sends one frame for call, which must carry its
// Method and a buffered Done channel. A non-nil sem reserves a
// caller-pool slot (held until the call finishes); pings bypass the
// pool so heartbeats get through even when the pool is saturated.
// stream tags the call id with a logical stream so the server's
// dispatcher can schedule streams fairly.
func (c *Client) start(ctx context.Context, kind byte, call *Call, payload []byte, sem chan struct{}, stream uint16) *Call {
	if kind == kindRequest {
		if obs := c.obs.Load(); obs != nil {
			// Opened before the caller-pool wait so the observed hop covers
			// queueing, exactly what a client-perceived RPC latency is.
			call.obsDone = (*obs)(call.Method, payload)
		}
	}
	if sem != nil {
		if ctx.Done() == nil {
			// Background context: plain send, no select machinery.
			sem <- struct{}{}
			call.sem = sem
		} else {
			select {
			case sem <- struct{}{}:
				call.sem = sem
			case <-ctx.Done():
				call.fail(ctx.Err())
				return call
			}
		}
	}
	c.mu.Lock()
	if c.closed {
		err := closeError(c.readErr)
		c.mu.Unlock()
		call.fail(err)
		return call
	}
	id := uint64(stream)<<streamShift | c.nextID.Add(1)&streamSeqMask
	call.replyTo = id
	c.pending[id] = call
	c.mu.Unlock()

	var buf *[]byte
	var err error
	dlNS := int64(0)
	if kind == kindRequest {
		if dl, hasDL := ctx.Deadline(); hasDL {
			// Propagate the caller's absolute deadline on the wire so the
			// server can drop the request unexecuted once it expires.
			kind = kindRequestDL
			dlNS = dl.UnixNano()
		}
	}
	// Stream 0 flushes inline: an idle writer writes on this goroutine
	// with no handoff latency, and reports the write error
	// synchronously. Mux streams enqueue asynchronously instead — their
	// callers park right after sending, so routing every stream's
	// frames through the flusher coalesces the concurrent streams'
	// frames into one writev per scheduling round rather than one
	// syscall per call (pipelined throughput is what streams exist
	// for); failures surface through connection teardown.
	inline := stream == 0
	if (kind == kindRequest || kind == kindRequestDL) && len(payload) >= lendMin {
		// Zero-copy send: encode only the header into a pooled buffer
		// and lend the caller's payload to the writer, which gathers
		// the two into the socket with writev. The payload must stay
		// unmutated until the call completes (see Go).
		buf, err = encodeLent(kind, id, call.Method, dlNS, payload)
		if err == nil {
			err = c.w.enqueueVec(buf, payload, inline)
		}
	} else {
		if kind == kindRequestDL {
			buf, err = encodeFrameDL(id, call.Method, dlNS, payload)
		} else {
			buf, err = encodeFrame(kind, id, call.Method, payload)
		}
		if err == nil {
			err = c.w.enqueue(buf, inline)
		}
	}
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		call.fail(err)
	}
	return call
}

// Go starts an asynchronous call. done may be nil, in which case a
// buffered channel is allocated; a caller-supplied done must have
// capacity >= 1 or Go panics, because completions are delivered with a
// non-blocking send and an unbuffered channel would silently drop
// every one of them. The returned Call is delivered on its Done
// channel when complete. Go blocks while the caller pool is full. The
// payload must not be mutated until the call completes: under load the
// write is asynchronous, and payloads of lendMin bytes or more are
// lent to the connection writer (gathered into the socket by writev
// with no intermediate copy) rather than copied into a frame buffer.
func (c *Client) Go(method string, payload []byte, done chan *Call) *Call {
	if done == nil {
		done = make(chan *Call, 1)
	} else if cap(done) == 0 {
		panic("rpc: done channel is unbuffered")
	}
	return c.start(context.Background(), kindRequest, &Call{Method: method, Done: done}, payload, c.sem, 0)
}

// abort removes a call whose context fired before the reply and tells
// the server to cancel the handler (best effort). If the reply (or a
// connection teardown) already claimed the call, abort leaves its
// result alone — the imminent deliver supplies it.
func (c *Client) abort(call *Call, err error) {
	c.mu.Lock()
	_, pendingStill := c.pending[call.replyTo]
	delete(c.pending, call.replyTo)
	closed := c.closed
	c.mu.Unlock()
	if !pendingStill {
		return
	}
	if !closed {
		if buf, encErr := encodeFrame(kindCancel, call.replyTo, "", nil); encErr == nil {
			c.w.enqueue(buf, true)
		}
	}
	call.fail(err)
}

// Call performs a blocking call bounded by ctx: if the context fires
// first the call returns ctx.Err(), the caller-pool slot is released,
// and a cancel frame asks the server to stop the handler.
func (c *Client) Call(ctx context.Context, method string, payload []byte) ([]byte, error) {
	done := getDone()
	call := c.start(ctx, kindRequest, getCall(method, done), payload, c.sem, 0)
	select {
	case <-done:
	case <-ctx.Done():
		c.abort(call, ctx.Err())
		// If the reply raced the cancellation and won, this returns it.
		<-done
	}
	reply, err := call.Reply, call.Err
	putDone(done)
	putCall(call)
	return reply, err
}

// CallSync performs a blocking call with no deadline.
func (c *Client) CallSync(method string, payload []byte) ([]byte, error) {
	done := getDone()
	call := c.start(context.Background(), kindRequest, getCall(method, done), payload, c.sem, 0)
	<-done
	reply, err := call.Reply, call.Err
	putDone(done)
	putCall(call)
	return reply, err
}

// Ping round-trips a heartbeat frame, bypassing the caller pool.
// A healthy connection answers even while saturated with slow calls.
func (c *Client) Ping(ctx context.Context) error {
	done := getDone()
	call := c.start(ctx, kindPing, getCall("", done), nil, nil, 0)
	select {
	case <-done:
	case <-ctx.Done():
		c.abort(call, ctx.Err())
		<-done
	}
	err := call.Err
	putDone(done)
	putCall(call)
	return err
}

// Close tears down the connection; outstanding calls fail with
// ErrClosed.
func (c *Client) Close() error {
	c.w.close()
	err := c.conn.Close()
	c.failAll(ErrClosed)
	return err
}

// Pair returns a connected in-process client/server conn pair, the
// "same container" fast path.
func Pair() (clientConn, serverConn net.Conn) {
	return net.Pipe()
}
