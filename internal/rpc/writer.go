package rpc

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// The data plane below is the software stand-in for the paper's FPGA
// RPC offload (§5.3): where the hardware gathers frames in BRAM and
// DMAs them to the NIC in bursts, we pool frame buffers, gather
// header+method+payload into one contiguous write, and coalesce the
// frames queued behind an in-flight write syscall into a single
// follow-up syscall.

// frameHdrLen is the fixed frame prefix: uint32 length, uint8 kind,
// uint64 callID, uint16 methodLen.
const frameHdrLen = 4 + 1 + 8 + 2

// readBufSize sizes the per-connection bufio.Reader: one kernel read
// pulls many small frames out of the socket at once.
const readBufSize = 64 << 10

// maxPooledBuf caps the capacity of buffers returned to the frame
// pool; anything larger (bulk sensor batches) is left to the GC so a
// burst of 64 MiB frames cannot pin memory forever.
const maxPooledBuf = (1 << 20) + frameHdrLen

// coalesceLimit caps how many bytes a batch write accumulates before
// issuing the syscall; frames larger than this are written directly
// instead of being memcpy'd into the batch buffer.
const coalesceLimit = 64 << 10

// bufPool recycles frame encode buffers and batch buffers. Stored as
// *[]byte so Put does not allocate a fresh interface box per call.
var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 1024); return &b }}

func getBuf() *[]byte { return bufPool.Get().(*[]byte) }

func putBuf(b *[]byte) {
	if b == nil || cap(*b) > maxPooledBuf {
		return
	}
	*b = (*b)[:0]
	bufPool.Put(b)
}

// appendFrame appends one encoded frame to dst and returns the
// extended slice. The caller owns dst; nothing is retained.
func appendFrame(dst []byte, kind byte, callID uint64, method string, payload []byte) ([]byte, error) {
	return appendFrame2(dst, kind, callID, method, nil, payload)
}

// appendFrame2 is appendFrame with the body split in two parts (prefix
// then payload), gathered into one contiguous frame without an
// intermediate concatenation.
func appendFrame2(dst []byte, kind byte, callID uint64, method string, prefix, payload []byte) ([]byte, error) {
	if len(method) > 0xFFFF {
		return dst, errors.New("rpc: method name too long")
	}
	n := 1 + 8 + 2 + len(method) + len(prefix) + len(payload)
	if n > maxFrame {
		return dst, fmt.Errorf("rpc: frame of %d bytes exceeds limit", n)
	}
	var hdr [frameHdrLen]byte
	hdr[0] = byte(n >> 24)
	hdr[1] = byte(n >> 16)
	hdr[2] = byte(n >> 8)
	hdr[3] = byte(n)
	hdr[4] = kind
	hdr[5] = byte(callID >> 56)
	hdr[6] = byte(callID >> 48)
	hdr[7] = byte(callID >> 40)
	hdr[8] = byte(callID >> 32)
	hdr[9] = byte(callID >> 24)
	hdr[10] = byte(callID >> 16)
	hdr[11] = byte(callID >> 8)
	hdr[12] = byte(callID)
	hdr[13] = byte(len(method) >> 8)
	hdr[14] = byte(len(method))
	dst = append(dst, hdr[:]...)
	dst = append(dst, method...)
	dst = append(dst, prefix...)
	dst = append(dst, payload...)
	return dst, nil
}

// encodeFrame encodes one frame into a pooled buffer.
func encodeFrame(kind byte, callID uint64, method string, payload []byte) (*[]byte, error) {
	buf := getBuf()
	b, err := appendFrame((*buf)[:0], kind, callID, method, payload)
	if err != nil {
		putBuf(buf)
		return nil, err
	}
	*buf = b
	return buf, nil
}

// encodeFrameDL encodes a kindRequestDL frame: the absolute deadline
// (UnixNano) rides as an 8-byte prefix of the frame body, ahead of the
// payload, so deadline propagation costs no extra copy of the payload.
func encodeFrameDL(callID uint64, method string, deadlineNS int64, payload []byte) (*[]byte, error) {
	var dl [8]byte
	dl[0] = byte(deadlineNS >> 56)
	dl[1] = byte(deadlineNS >> 48)
	dl[2] = byte(deadlineNS >> 40)
	dl[3] = byte(deadlineNS >> 32)
	dl[4] = byte(deadlineNS >> 24)
	dl[5] = byte(deadlineNS >> 16)
	dl[6] = byte(deadlineNS >> 8)
	dl[7] = byte(deadlineNS)
	buf := getBuf()
	b, err := appendFrame2((*buf)[:0], kindRequestDL, callID, method, dl[:], payload)
	if err != nil {
		putBuf(buf)
		return nil, err
	}
	*buf = b
	return buf, nil
}

// writeFrame encodes and writes one frame as a single Write. It is the
// unbatched slow path, kept for tests and one-shot writers.
func writeFrame(w io.Writer, f frame) error {
	buf, err := encodeFrame(f.kind, f.callID, f.method, f.payload)
	if err != nil {
		return err
	}
	_, err = w.Write(*buf)
	putBuf(buf)
	return err
}

// connWriter is the per-connection buffered, coalescing write half of
// the data plane. Complete encoded frames are queued under a mutex;
// whoever finds the writer idle flushes the first batch inline (an
// idle enqueue hits the wire with no handoff latency), and frames that
// arrive while a write syscall is in flight are handed to the
// dedicated flusher goroutine, which gathers everything queued into
// one syscall per round. Frames are only ever written whole and in
// enqueue order, so a batch can never interleave partial frames or
// reorder a response after a teardown.
type connWriter struct {
	conn net.Conn

	mu      sync.Mutex
	cond    *sync.Cond // signals the flusher on handoff or close
	queue   []*[]byte  // complete encoded frames, FIFO
	free    []*[]byte  // recycled queue backing array (len 0)
	active  bool       // some goroutine is draining the queue
	handoff bool       // the flusher owns the next drain
	err     error      // sticky first write error
	closed  bool
}

func newConnWriter(conn net.Conn) *connWriter {
	w := &connWriter{conn: conn}
	w.cond = sync.NewCond(&w.mu)
	go w.flusher()
	return w
}

// enqueue queues one pooled encoded frame for writing and takes
// ownership of buf. If inline is true and the writer is idle, the
// calling goroutine performs the first flush itself and the returned
// error reflects the write; otherwise errors surface asynchronously
// through connection teardown. Callers whose goroutine must never
// block on a syscall (the server read loop answering pings) pass
// inline=false.
func (w *connWriter) enqueue(buf *[]byte, inline bool) error {
	w.mu.Lock()
	if w.closed || w.err != nil {
		err := w.err
		w.mu.Unlock()
		putBuf(buf)
		if err == nil {
			err = ErrClosed
		}
		return err
	}
	w.queue = append(w.queue, buf)
	if w.active {
		// A drain is in flight; it will pick this frame up.
		w.mu.Unlock()
		return nil
	}
	w.active = true
	if !inline {
		w.handoff = true
		w.cond.Signal()
		w.mu.Unlock()
		return nil
	}
	w.mu.Unlock()
	w.drain(1)
	w.mu.Lock()
	err := w.err
	w.mu.Unlock()
	return err
}

// flusher is the dedicated writer goroutine: it sleeps until a drain
// is handed off (frames queued up behind an inline write, or an async
// enqueue) and then batches the whole queue into as few syscalls as
// possible. It exits on close.
func (w *connWriter) flusher() {
	w.mu.Lock()
	for {
		for !w.handoff && !w.closed {
			w.cond.Wait()
		}
		if w.closed {
			for _, b := range w.queue {
				putBuf(b)
			}
			w.queue = nil
			w.mu.Unlock()
			return
		}
		w.handoff = false
		w.mu.Unlock()
		w.drain(0)
		w.mu.Lock()
	}
}

// drain writes queued batches until the queue empties or, when
// rounds > 0, that many batches were written — the remainder is then
// handed to the flusher so the inline caller returns after one
// syscall. The caller must have claimed w.active.
func (w *connWriter) drain(rounds int) {
	var spent []*[]byte // batch array to recycle into w.free
	for n := 0; ; n++ {
		w.mu.Lock()
		if spent != nil && w.free == nil && cap(spent) <= 1024 {
			w.free = spent[:0]
		}
		if w.err != nil || w.closed || len(w.queue) == 0 {
			w.active = false
			w.mu.Unlock()
			return
		}
		if rounds > 0 && n >= rounds {
			w.handoff = true
			w.cond.Signal()
			w.mu.Unlock()
			return
		}
		batch := w.queue
		w.queue = w.free
		w.free = nil
		w.mu.Unlock()
		err := w.writeBatch(batch)
		for i := range batch {
			batch[i] = nil
		}
		spent = batch
		if err != nil {
			w.mu.Lock()
			if w.err == nil {
				w.err = err
			}
			w.active = false
			w.mu.Unlock()
			// Tear the connection down so both read loops observe the
			// failure instead of waiting on a half-dead peer.
			w.conn.Close()
			return
		}
	}
}

// writeBatch gathers the batch into as few Write calls as possible:
// small frames are memcpy'd into one pooled buffer (one syscall for
// the whole batch), frames above coalesceLimit are written directly.
// All frame buffers are returned to the pool.
func (w *connWriter) writeBatch(batch []*[]byte) error {
	defer func() {
		for _, b := range batch {
			putBuf(b)
		}
	}()
	if len(batch) == 1 {
		_, err := w.conn.Write(*batch[0])
		return err
	}
	acc := getBuf()
	defer putBuf(acc)
	for _, b := range batch {
		if len(*b) > coalesceLimit {
			if len(*acc) > 0 {
				if _, err := w.conn.Write(*acc); err != nil {
					return err
				}
				*acc = (*acc)[:0]
			}
			if _, err := w.conn.Write(*b); err != nil {
				return err
			}
			continue
		}
		if len(*acc)+len(*b) > coalesceLimit && len(*acc) > 0 {
			if _, err := w.conn.Write(*acc); err != nil {
				return err
			}
			*acc = (*acc)[:0]
		}
		*acc = append(*acc, *b...)
	}
	if len(*acc) > 0 {
		if _, err := w.conn.Write(*acc); err != nil {
			return err
		}
	}
	return nil
}

// close marks the writer closed and releases the flusher. Queued but
// unwritten frames are dropped (the connection is going away).
// Idempotent.
func (w *connWriter) close() {
	w.mu.Lock()
	w.closed = true
	w.cond.Broadcast()
	w.mu.Unlock()
}
