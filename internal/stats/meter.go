package stats

import (
	"fmt"
	"math"
	"sort"
)

// Meter accumulates a quantity (bytes, tasks, joules) into fixed-width
// time buckets, producing the rate time-series behind the paper's
// bandwidth-utilization and active-task figures.
type Meter struct {
	bucket  float64 // bucket width, seconds
	buckets []float64
	total   float64
}

// NewMeter creates a meter with the given bucket width in seconds.
func NewMeter(bucketWidth float64) *Meter {
	if bucketWidth <= 0 {
		panic("stats: meter bucket width must be positive")
	}
	return &Meter{bucket: bucketWidth}
}

// Add records amount at time t (seconds).
func (m *Meter) Add(t, amount float64) {
	if t < 0 {
		t = 0
	}
	idx := int(t / m.bucket)
	for len(m.buckets) <= idx {
		m.buckets = append(m.buckets, 0)
	}
	m.buckets[idx] += amount
	m.total += amount
}

// AddSpread records amount spread uniformly over [t0, t1).
func (m *Meter) AddSpread(t0, t1, amount float64) {
	if t1 <= t0 {
		m.Add(t0, amount)
		return
	}
	span := t1 - t0
	first := int(t0 / m.bucket)
	last := int(t1 / m.bucket)
	for b := first; b <= last; b++ {
		lo := math.Max(t0, float64(b)*m.bucket)
		hi := math.Min(t1, float64(b+1)*m.bucket)
		if hi > lo {
			m.Add(lo, amount*(hi-lo)/span)
		}
	}
}

// Total returns the sum of everything recorded.
func (m *Meter) Total() float64 { return m.total }

// Rates returns the per-second rate in each bucket.
func (m *Meter) Rates() []float64 {
	out := make([]float64, len(m.buckets))
	for i, v := range m.buckets {
		out[i] = v / m.bucket
	}
	return out
}

// RateSample returns the bucket rates as a Sample, for percentile
// queries (e.g. p99 bandwidth in Fig. 14b). Buckets after `until`
// seconds are ignored if until > 0; the bucket straddling `until` is
// divided by the covered interval only, not the full bucket width, so
// a run ending mid-bucket does not deflate its tail rate.
func (m *Meter) RateSample(until float64) *Sample {
	s := &Sample{}
	for i, v := range m.buckets {
		lo := float64(i) * m.bucket
		if until > 0 && lo >= until {
			break
		}
		width := m.bucket
		if until > 0 && lo+width > until {
			width = until - lo
		}
		s.Add(v / width)
	}
	return s
}

// MeanRate returns total/duration for duration > 0.
func (m *Meter) MeanRate(duration float64) float64 {
	if duration <= 0 {
		return 0
	}
	return m.total / duration
}

// Gauge tracks a level that steps up and down over time (active tasks,
// live containers) and reports the time series of its value.
type Gauge struct {
	times  []float64
	values []float64
	cur    float64
	max    float64
}

// NewGauge returns a gauge at level zero.
func NewGauge() *Gauge { return &Gauge{} }

// Set records the level v at time t. Times must be non-decreasing: a
// regression would silently corrupt At/TimeAverage (both assume sorted
// times), so it panics instead.
func (g *Gauge) Set(t, v float64) {
	if n := len(g.times); n > 0 && t < g.times[n-1] {
		panic(fmt.Sprintf("stats: gauge time regression: %g after %g", t, g.times[n-1]))
	}
	g.times = append(g.times, t)
	g.values = append(g.values, v)
	g.cur = v
	if v > g.max {
		g.max = v
	}
}

// Inc adjusts the level by delta at time t.
func (g *Gauge) Inc(t, delta float64) { g.Set(t, g.cur+delta) }

// Current returns the latest level.
func (g *Gauge) Current() float64 { return g.cur }

// Max returns the highest level ever recorded.
func (g *Gauge) Max() float64 { return g.max }

// At returns the level in effect at time t (0 before the first
// sample). Binary search over the non-decreasing times keeps At inside
// a resampling loop at O(log n) per query instead of O(n).
func (g *Gauge) At(t float64) float64 {
	idx := sort.Search(len(g.times), func(i int) bool { return g.times[i] > t })
	if idx == 0 {
		return 0
	}
	return g.values[idx-1]
}

// Series resamples the gauge at the given interval over [0, until),
// returning one value per step — the "active tasks over time" curves of
// Fig. 5c.
func (g *Gauge) Series(interval, until float64) []float64 {
	if interval <= 0 || until <= 0 {
		return nil
	}
	n := int(math.Ceil(until / interval))
	out := make([]float64, n)
	idx := 0
	v := 0.0
	for i := 0; i < n; i++ {
		t := float64(i) * interval
		for idx < len(g.times) && g.times[idx] <= t {
			v = g.values[idx]
			idx++
		}
		out[i] = v
	}
	return out
}

// TimeAverage returns the time-weighted mean level over [0, until).
func (g *Gauge) TimeAverage(until float64) float64 {
	if until <= 0 {
		return 0
	}
	var integral, prevT, prevV float64
	for i, t := range g.times {
		if t > until {
			break
		}
		integral += prevV * (t - prevT)
		prevT, prevV = t, g.values[i]
	}
	integral += prevV * (until - prevT)
	return integral / until
}
