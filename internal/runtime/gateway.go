package runtime

import (
	"context"
	"time"

	"hivemind/internal/rpc"
)

// Gateway exposes a Runtime's functions over the RPC framework — the
// real edge→cloud invocation path: devices call the synthesized RPC
// APIs (internal/rpc), the gateway dispatches into the serverless
// runtime, exactly the NGINX-front-end role in the OpenWhisk pipeline.
type Gateway struct {
	rt      *Runtime
	srv     *rpc.Server
	timeout time.Duration
}

// NewGateway wraps a runtime with an RPC front door. timeout bounds
// each invocation (0 = no deadline).
func NewGateway(rt *Runtime, timeout time.Duration) *Gateway {
	return &Gateway{rt: rt, srv: rpc.NewServer(), timeout: timeout}
}

// Server returns the underlying RPC server (serve it on a listener or
// an in-process pipe).
func (g *Gateway) Server() *rpc.Server { return g.srv }

// Expose registers a runtime function under an RPC method name. The
// function must already be registered on the runtime.
func (g *Gateway) Expose(method, function string) {
	g.srv.Register(method, func(payload []byte) ([]byte, error) {
		ctx := context.Background()
		if g.timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, g.timeout)
			defer cancel()
		}
		res, err := g.rt.Invoke(ctx, function, payload)
		if err != nil {
			return nil, err
		}
		return res.Output, nil
	})
}

// ExposeChain registers an RPC method that runs a multi-tier pipeline
// through the store-backed chain (one edge call triggers the whole
// cloud-side task graph, as the generated FaaS bindings do).
func (g *Gateway) ExposeChain(method string, functions []string) {
	g.srv.Register(method, func(payload []byte) ([]byte, error) {
		ctx := context.Background()
		if g.timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, g.timeout)
			defer cancel()
		}
		return g.rt.Chain(ctx, method, functions, payload)
	})
}

// Close shuts the RPC server down (the runtime is left to its owner).
func (g *Gateway) Close() { g.srv.Close() }
