package experiments

import (
	"hivemind/internal/apps"
	"hivemind/internal/platform"
	"hivemind/internal/scenario"
)

// jobDuration returns the per-job run length: the paper uses 120 s.
func jobDuration(cfg RunConfig) float64 {
	if cfg.Quick {
		return 30
	}
	return 120
}

// suite returns the benchmark list, trimmed in quick mode to one
// representative per behaviour class (heavy CNN, light, pinned-edge,
// short-task, long-task, wide-fanout).
func suite(cfg RunConfig) []apps.Profile {
	all := apps.All()
	if !cfg.Quick {
		return all
	}
	keep := map[apps.ID]bool{
		apps.S1FaceRecognition: true,
		apps.S3DroneDetection:  true,
		apps.S4ObstacleAvoid:   true,
		apps.S6Maze:            true,
		apps.S7Weather:         true,
		apps.S10SLAM:           true,
	}
	var out []apps.Profile
	for _, p := range all {
		if keep[p.ID] {
			out = append(out, p)
		}
	}
	return out
}

// runJobOn builds a fresh system of the kind and runs the job.
func runJobOn(kind platform.SystemKind, p apps.Profile, cfg RunConfig, devices int) platform.JobResult {
	sys := platform.NewSystem(platform.Preset(kind, devices, cfg.Seed))
	return sys.RunJob(p, jobDuration(cfg))
}

// runScenarioOn runs a mission on a fresh system of the kind.
func runScenarioOn(kind scenario.Kind, sysKind platform.SystemKind, cfg RunConfig, devices int) scenario.Result {
	sc := scenario.DefaultConfig(kind, platform.Preset(sysKind, devices, cfg.Seed))
	if cfg.Quick {
		sc.MaxDurationS = 200
	}
	return scenario.Run(kind, sc)
}

// defaultDevices is the paper's drone-swarm size.
const defaultDevices = 16

// roverDevices is the paper's car-swarm size.
const roverDevices = 14
