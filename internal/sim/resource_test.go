package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestResourceGrantsImmediatelyWhenFree(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, 2)
	granted := 0
	r.Acquire(func() { granted++ })
	r.Acquire(func() { granted++ })
	if granted != 2 || r.InUse() != 2 {
		t.Fatalf("granted=%d inuse=%d", granted, r.InUse())
	}
}

func TestResourceQueuesFIFO(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, 1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		r.Acquire(func() {
			order = append(order, i)
			e.After(1, r.Release)
		})
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("FIFO violated: %v", order)
		}
	}
}

func TestResourceUseHoldsForServiceTime(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, 1)
	var done1, done2 Time
	r.Use(2.0, func() { done1 = e.Now() })
	r.Use(3.0, func() { done2 = e.Now() })
	e.Run()
	if done1 != 2.0 || done2 != 5.0 {
		t.Fatalf("done1=%g done2=%g, want 2 and 5", done1, done2)
	}
}

func TestResourceAcquireNAtomic(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, 4)
	var got []string
	r.AcquireN(3, func() {
		got = append(got, "big1")
		e.After(1, func() { r.ReleaseN(3) })
	})
	// Needs 3 units: must wait even though 1 is free. A later small request
	// must not jump the queue (strict FIFO, no starvation of the big one).
	r.AcquireN(3, func() {
		got = append(got, "big2")
		e.After(1, func() { r.ReleaseN(3) })
	})
	r.Acquire(func() {
		got = append(got, "small")
		r.Release()
	})
	e.Run()
	want := []string{"big1", "big2", "small"}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("order = %v, want %v", got, want)
	}
}

func TestResourceCancelQueuedRequest(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, 1)
	r.Use(5, nil)
	fired := false
	acq := r.Acquire(func() { fired = true })
	if !acq.Cancel() {
		t.Fatal("Cancel on queued request returned false")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled request was granted")
	}
	if r.InUse() != 0 {
		t.Fatalf("leaked units: %d", r.InUse())
	}
}

func TestResourceCancelGrantedIsNoop(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, 1)
	acq := r.Acquire(func() {})
	if acq.Cancel() {
		t.Fatal("Cancel on granted request returned true")
	}
}

func TestResourceOverReleasePanics(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, 1)
	defer func() {
		if recover() == nil {
			t.Error("over-release did not panic")
		}
	}()
	r.Release()
}

func TestResourceInvalidCapacityPanics(t *testing.T) {
	e := NewEngine(1)
	defer func() {
		if recover() == nil {
			t.Error("zero capacity did not panic")
		}
	}()
	NewResource(e, 0)
}

func TestResourceUtilizationStats(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, 2)
	// Hold both units for 5s out of a 10s window: utilization = 0.5.
	r.Use(5, nil)
	r.Use(5, nil)
	e.RunUntil(10)
	st := r.Stats()
	if math.Abs(st.Utilization-0.5) > 1e-9 {
		t.Fatalf("utilization = %g, want 0.5", st.Utilization)
	}
	if st.Grants != 2 {
		t.Fatalf("grants = %d, want 2", st.Grants)
	}
}

func TestResourceMeanWaitStats(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, 1)
	r.Use(4, nil)                     // waits 0
	r.Use(4, nil)                     // waits 4
	e.At(2, func() { r.Use(4, nil) }) // enqueued at 2, granted at 8: waits 6
	e.Run()
	st := r.Stats()
	want := (0.0 + 4.0 + 6.0) / 3.0
	if math.Abs(st.MeanWait-want) > 1e-9 {
		t.Fatalf("mean wait = %g, want %g", st.MeanWait, want)
	}
	if st.MaxQueueLen != 2 {
		t.Fatalf("max queue = %d, want 2", st.MaxQueueLen)
	}
}

// Property: a single-server queue with deterministic service conserves
// work — total completions equal total submissions, and the makespan is
// exactly n*service when all jobs arrive at time zero.
func TestResourceWorkConservationProperty(t *testing.T) {
	prop := func(nRaw uint8, svcRaw uint8) bool {
		n := int(nRaw%50) + 1
		svc := Time(svcRaw%20+1) / 10.0
		e := NewEngine(1)
		r := NewResource(e, 1)
		completions := 0
		for i := 0; i < n; i++ {
			r.Use(svc, func() { completions++ })
		}
		e.Run()
		return completions == n && math.Abs(e.Now()-Time(n)*svc) < 1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: with capacity c, no more than c units are ever in use.
func TestResourceCapacityInvariantProperty(t *testing.T) {
	prop := func(capRaw, jobsRaw uint8, seed int64) bool {
		c := int(capRaw%8) + 1
		jobs := int(jobsRaw%60) + 1
		e := NewEngine(seed)
		r := NewResource(e, c)
		ok := true
		for i := 0; i < jobs; i++ {
			e.At(e.Rand().Float64()*10, func() {
				r.Use(e.Rand().Float64()+0.1, func() {
					if r.InUse() > c {
						ok = false
					}
				})
				if r.InUse() > c {
					ok = false
				}
			})
		}
		e.Run()
		return ok && r.InUse() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
