package geo

// CellIndex is the static device→cell assignment a sharded simulation
// is cut along: the field is partitioned into cells (Partition computes
// the equal-area cut, exactly as it does for per-drone regions), each
// device is bound at time zero to the cell containing its position, and
// the index answers both directions — which cell owns a device, and
// which devices a cell owns — in O(1). The assignment is deliberately
// static: shard ownership must not migrate mid-run, or the conservative
// window protocol's "cells interact only through the declared-lookahead
// medium" invariant would silently break.
type CellIndex struct {
	cells  []Rect
	cellOf []int   // device -> cell
	byCell [][]int // cell -> device ids, ascending
}

// BuildCellIndex assigns every position to the cell containing it.
// Positions on the field's far edges (or outside every cell — mobile
// devices may start slightly off-grid) fall back to the nearest cell by
// center distance, so the assignment is total.
func BuildCellIndex(cells []Rect, pts []Point) *CellIndex {
	ix := &CellIndex{
		cells:  cells,
		cellOf: make([]int, len(pts)),
		byCell: make([][]int, len(cells)),
	}
	for d, p := range pts {
		c := -1
		for i, r := range cells {
			if r.Contains(p) {
				c = i
				break
			}
		}
		if c < 0 {
			best := -1.0
			for i, r := range cells {
				if dd := r.Center().Dist(p); best < 0 || dd < best {
					best, c = dd, i
				}
			}
		}
		ix.cellOf[d] = c
		ix.byCell[c] = append(ix.byCell[c], d)
	}
	return ix
}

// NumCells returns the number of cells in the cut.
func (ix *CellIndex) NumCells() int { return len(ix.cells) }

// Cell returns cell c's rectangle.
func (ix *CellIndex) Cell(c int) Rect { return ix.cells[c] }

// CellOf returns the cell owning device d.
func (ix *CellIndex) CellOf(d int) int { return ix.cellOf[d] }

// CellOwners returns the full device→cell slice (read-only; shared).
func (ix *CellIndex) CellOwners() []int { return ix.cellOf }

// Devices returns the ids owned by cell c, ascending (read-only;
// shared).
func (ix *CellIndex) Devices(c int) []int { return ix.byCell[c] }
