package chaos_test

import (
	"context"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"hivemind/internal/chaos"
	"hivemind/internal/controller"
	"hivemind/internal/rpc"
	"hivemind/internal/runtime"
	"hivemind/internal/store"
)

// These tests are the live §4.7 acceptance suite: a replica set of
// controller+gateway "processes" over real TCP, a chaos-scheduled kill
// of the primary mid-chain, and proof that the chain completes with
// exactly-once step effects within the failover + respawn budget —
// whether recovery comes from the new primary's orphan re-dispatch or
// from a leader-following client retrying through redirects.

// failNode is one controller+gateway process in the replica set.
type failNode struct {
	id      int
	replica *controller.Replica
	rt      *runtime.Runtime
	gw      *runtime.Gateway
	gwAddr  string
}

// fastCtrlConfig shrinks election timescales for test speed.
func fastCtrlConfig(id, replicas int, seed int64) controller.ReplicaConfig {
	cfg := controller.DefaultReplicaConfig(id, replicas, seed)
	cfg.ElectionTimeoutMin = 40 * time.Millisecond
	cfg.ElectionTimeoutMax = 80 * time.Millisecond
	cfg.LeaseInterval = 15 * time.Millisecond
	cfg.VoteTimeout = 50 * time.Millisecond
	return cfg
}

// gwRespawnDelay is the chain respawn pause used by the suite's bound
// assertions.
const gwRespawnDelay = 20 * time.Millisecond

// startFailoverCluster boots n controller replicas, each fronting a
// gateway that serves `chain` over a shared durable store (the
// replicated CouchDB stand-in). The injector is wired as each replica's
// kill switch and every replica reports into mon. denyRecover, when
// non-nil, suppresses orphan re-dispatch on one node (-1: on all): the
// initial primary's promotion-time recovery scan may otherwise race the
// client's brand-new task and complete the chain before the crash the
// test is choreographing (safe thanks to create-only commits, but it
// bypasses the failover under test). Tests store the doomed primary's
// id once known; a node is denied whether its recovery goroutine reads
// the gate before or after that store, so the race is closed.
func startFailoverCluster(t *testing.T, n int, seed int64, mon *controller.Monitor,
	inj *chaos.Injector, db *store.DB, chain []string, fns map[string]runtime.Function,
	denyRecover *atomic.Int64) []*failNode {
	t.Helper()
	log := store.NewCheckpointLog(db)

	ctrlLns := make([]net.Listener, n)
	ctrlAddrs := make([]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ctrlLns[i] = ln
		ctrlAddrs[i] = ln.Addr().String()
	}

	nodes := make([]*failNode, n)
	for i := 0; i < n; i++ {
		rcfg := runtime.DefaultConfig()
		rcfg.Retries = 0
		rt := runtime.New(rcfg, db)
		for name, fn := range fns {
			rt.Register(name, fn)
		}

		// Recover resolves through an atomic pointer because the gateway
		// needs the replica (admission, task tracking) and the replica
		// needs the gateway (orphan re-dispatch).
		var gwPtr atomic.Pointer[runtime.Gateway]
		ccfg := fastCtrlConfig(i, n, seed)
		ccfg.Fault = inj
		ccfg.Recover = func(ctx context.Context) (int, error) {
			if denyRecover != nil {
				if d := denyRecover.Load(); d == -1 || int(d) == i {
					return 0, nil
				}
			}
			if g := gwPtr.Load(); g != nil {
				return g.Recover(ctx)
			}
			return 0, nil
		}
		peers := make(map[int]func() (net.Conn, error), n-1)
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			addr := ctrlAddrs[j]
			peers[j] = func() (net.Conn, error) { return net.Dial("tcp", addr) }
		}
		rep := controller.NewReplica(ccfg, peers, mon)

		gcfg := runtime.DefaultGatewayConfig()
		gcfg.Timeout = 10 * time.Second
		gcfg.RespawnDelay = gwRespawnDelay
		gcfg.Checkpoints = log
		gcfg.Admission = rep.Admission()
		gcfg.Tracker = rep
		g := runtime.NewGatewayConfig(rt, gcfg)
		g.ExposeChain("pipeline", chain)
		gwPtr.Store(g)

		gln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go g.Server().Serve(gln)
		go rep.Server().Serve(ctrlLns[i])

		// A dead replica takes its whole process down: gateway included.
		go func() {
			for rep.State() != controller.Dead {
				time.Sleep(2 * time.Millisecond)
			}
			g.Close()
		}()

		nodes[i] = &failNode{id: i, replica: rep, rt: rt, gw: g, gwAddr: gln.Addr().String()}
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.replica.Kill()
			nd.gw.Close()
			nd.rt.Close()
		}
	})
	for _, nd := range nodes {
		nd.replica.Start()
	}
	return nodes
}

// waitPrimary polls until one live replica leads.
func waitPrimary(t *testing.T, nodes []*failNode, timeout time.Duration) *failNode {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		for _, nd := range nodes {
			if nd.replica.State() == controller.Leader {
				return nd
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("no primary elected")
	return nil
}

// blockingMid builds the standard 3-tier chain whose middle tier blocks
// on its very first execution (the one the primary crash interrupts)
// and runs normally afterwards.
func blockingMid(midEntered chan<- struct{}) (chain []string, fns map[string]runtime.Function) {
	var first atomic.Bool
	first.Store(true)
	fns = map[string]runtime.Function{
		"head": func(ctx context.Context, in []byte) ([]byte, error) {
			return append(append([]byte{}, in...), ".h"...), nil
		},
		"mid": func(ctx context.Context, in []byte) ([]byte, error) {
			if first.CompareAndSwap(true, false) {
				select {
				case midEntered <- struct{}{}:
				default:
				}
				<-ctx.Done() // held hostage until the primary dies
				return nil, ctx.Err()
			}
			return append(append([]byte{}, in...), ".m"...), nil
		},
		"tail": func(ctx context.Context, in []byte) ([]byte, error) {
			return append(append([]byte{}, in...), ".t"...), nil
		},
	}
	return []string{"head", "mid", "tail"}, fns
}

// Acceptance: a chaos-scheduled controller kill mid-chain, 2 hot
// standbys. The new primary's orphan re-dispatch completes the chain
// with exactly-once step effects, and the measured failover latency is
// exposed via the Monitor and bounded by election timeout + respawn
// delay.
func TestFailoverE2EOrphanRedispatchAfterPrimaryKill(t *testing.T) {
	mon := controller.NewMonitor()
	inj := chaos.NewInjector(42, chaos.Config{})
	db := store.NewDB()
	midEntered := make(chan struct{}, 1)
	chain, fns := blockingMid(midEntered)
	var denyRecover atomic.Int64
	denyRecover.Store(-1) // deny everywhere until the doomed primary is known
	nodes := startFailoverCluster(t, 3, 42, mon, inj, db, chain, fns, &denyRecover)
	primary := waitPrimary(t, nodes, 3*time.Second)

	// Fire the chain at the primary's gateway with an explicit task id.
	// The call itself will die with the primary; recovery must come from
	// the standby takeover.
	conn, err := net.Dial("tcp", primary.gwAddr)
	if err != nil {
		t.Fatal(err)
	}
	cl := rpc.NewClient(conn, 4)
	defer cl.Close()
	callDone := make(chan error, 1)
	go func() {
		_, cerr := cl.Call(context.Background(), "pipeline", runtime.EncodeTask("task-e2e", []byte("x")))
		callDone <- cerr
	}()

	select {
	case <-midEntered:
	case <-time.After(5 * time.Second):
		t.Fatal("chain never reached the mid tier")
	}

	// Kill the primary mid-"mid" via the scheduled chaos fault — the
	// next lease round crosses the deadline and crashes the process.
	// Recovery stays denied on the doomed node only, so even a late
	// promotion-time scan there cannot complete the chain; the standby
	// that takes over recovers freely.
	killAt := time.Now()
	denyRecover.Store(int64(primary.id))
	inj.At(controller.KillControllerOp(primary.id), 0)

	select {
	case cerr := <-callDone:
		if cerr == nil {
			t.Fatal("call to the killed primary reported success")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("client call never failed after the primary died")
	}

	// The chain completes through the new primary's Recover.
	log := store.NewCheckpointLog(db)
	deadline := time.Now().Add(5 * time.Second)
	for {
		orphans, oerr := log.Orphans()
		if oerr == nil && len(orphans) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("orphan task never completed; remaining: %v", orphans)
		}
		time.Sleep(10 * time.Millisecond)
	}
	completedIn := time.Since(killAt)

	// Exactly-once step effects: every output committed at generation 1
	// with the expected lineage.
	want := []string{"x.h", "x.h.m", "x.h.m.t"}
	for step := 0; step < 3; step++ {
		doc, gerr := db.Get(store.StepOutputKey("task-e2e", step))
		if gerr != nil {
			t.Fatalf("step %d output missing: %v", step, gerr)
		}
		if g := store.RevGen(doc.Rev); g != 1 {
			t.Fatalf("step %d committed %d times, want exactly once", step, g)
		}
		if string(doc.Body) != want[step] {
			t.Fatalf("step %d output = %q, want %q", step, doc.Body, want[step])
		}
	}

	// The shared monitor saw the whole story.
	fo := mon.Failover()
	if fo.Failovers < 1 {
		for _, nd := range nodes {
			lid, term := nd.replica.Leader()
			t.Logf("node %d: state=%v leader=%d term=%d", nd.id, nd.replica.State(), lid, term)
		}
		t.Fatalf("failovers = %d (elections %d), want >= 1", fo.Failovers, fo.Elections)
	}
	if fo.OrphansRedispatched < 1 {
		t.Fatalf("orphans redispatched = %d, want >= 1", fo.OrphansRedispatched)
	}
	if fo.FailoverLatency.N() < 1 {
		t.Fatal("no failover latency observation")
	}
	cfg := fastCtrlConfig(0, 3, 0)
	bound := (2*cfg.ElectionTimeoutMax + 4*cfg.VoteTimeout + gwRespawnDelay).Seconds()
	if fo.FailoverLatency.Max() > bound {
		t.Fatalf("failover latency %.3fs exceeds election+respawn bound %.3fs",
			fo.FailoverLatency.Max(), bound)
	}
	// End-to-end wall clock: failover + recover + remaining two tiers,
	// with generous CI slack on top of the modelled budget.
	if wall := bound + 2.0; completedIn.Seconds() > wall {
		t.Fatalf("orphan completed in %v, want under %.1fs", completedIn, wall)
	}
	if inj.FaultCount(controller.KillControllerOp(primary.id)) != 1 {
		t.Fatalf("kill fault fired %d times, want 1", inj.FaultCount(controller.KillControllerOp(primary.id)))
	}
}

// A leader-following client retrying the same task id across the
// failover joins the checkpointed chain instead of forking it: the
// retry and the new primary's orphan re-dispatch race, yet every step
// commits exactly once and the client gets the chain's real output.
func TestFailoverE2EClientRetryDeduplicatesAgainstRecovery(t *testing.T) {
	mon := controller.NewMonitor()
	inj := chaos.NewInjector(7, chaos.Config{})
	db := store.NewDB()
	midEntered := make(chan struct{}, 1)
	chain, fns := blockingMid(midEntered)
	nodes := startFailoverCluster(t, 3, 7, mon, inj, db, chain, fns, nil)
	primary := waitPrimary(t, nodes, 3*time.Second)

	addrs := make([]string, len(nodes))
	for i, nd := range nodes {
		addrs[i] = nd.gwAddr
	}
	fc := rpc.DialFailover(addrs, rpc.FailoverOptions{
		Attempts:     60,
		RetryBackoff: 15 * time.Millisecond,
		CallTimeout:  3 * time.Second,
	})
	defer fc.Close()

	callDone := make(chan struct{})
	var out []byte
	var callErr error
	go func() {
		defer close(callDone)
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		out, callErr = fc.Call(ctx, "pipeline", runtime.EncodeTask("task-retry", []byte("x")))
	}()

	select {
	case <-midEntered:
	case <-time.After(5 * time.Second):
		t.Fatal("chain never reached the mid tier")
	}
	inj.At(controller.KillControllerOp(primary.id), 0)

	select {
	case <-callDone:
	case <-time.After(15 * time.Second):
		t.Fatal("client call never finished across the failover")
	}
	if callErr != nil {
		t.Fatalf("client call failed across failover: %v", callErr)
	}
	if string(out) != "x.h.m.t" {
		t.Fatalf("client output = %q, want x.h.m.t", out)
	}
	for step := 0; step < 3; step++ {
		doc, err := db.Get(store.StepOutputKey("task-retry", step))
		if err != nil {
			t.Fatalf("step %d output missing: %v", step, err)
		}
		if g := store.RevGen(doc.Rev); g != 1 {
			t.Fatalf("step %d committed %d times, want exactly once", step, g)
		}
	}
	if mon.Count(controller.EventFailover) < 1 {
		t.Fatal("monitor recorded no failover")
	}
}
