package store

import (
	"fmt"
	"path/filepath"
	"testing"
)

// BenchmarkPut measures document creation throughput.
func BenchmarkPut(b *testing.B) {
	db := NewDB()
	body := make([]byte, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Put(fmt.Sprintf("doc-%d", i), "", body); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGet measures read throughput (includes the defensive copy).
func BenchmarkGet(b *testing.B) {
	db := NewDB()
	body := make([]byte, 1024)
	db.Put("doc", "", body)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Get("doc"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUpdateChain measures revisioned update throughput.
func BenchmarkUpdateChain(b *testing.B) {
	db := NewDB()
	rev, _ := db.Put("doc", "", []byte("v"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		rev, err = db.Put("doc", rev, []byte("v"))
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConcurrentReaders measures RWMutex read scaling.
func BenchmarkConcurrentReaders(b *testing.B) {
	db := NewDB()
	db.Put("doc", "", make([]byte, 256))
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			db.Get("doc")
		}
	})
}

// BenchmarkDurablePutFsyncNever measures the WAL framing+append
// overhead on the write path with fsync off — the pure logging cost
// over the in-memory BenchmarkPut baseline.
func BenchmarkDurablePutFsyncNever(b *testing.B) {
	db, _, err := OpenDurable(b.TempDir(), DurableOptions{Fsync: FsyncNever, CompactEvery: NoAutoCompact})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	body := make([]byte, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Force("doc", body); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDurablePutFsyncBatch adds group-commit fsync every 64
// appends — the durability policy a live deployment would run.
func BenchmarkDurablePutFsyncBatch(b *testing.B) {
	db, _, err := OpenDurable(b.TempDir(), DurableOptions{
		Fsync: FsyncBatch, SyncEvery: 64, CompactEvery: NoAutoCompact,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	body := make([]byte, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Force("doc", body); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWALAppend isolates the raw framed-append path.
func BenchmarkWALAppend(b *testing.B) {
	w, _, err := OpenWAL(filepath.Join(b.TempDir(), "wal.log"), WALOptions{Fsync: FsyncNever}, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	rec := make([]byte, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
}

// benchRecoveryDir builds a store directory with `updates` writes over
// 100 live keys, compacted or not.
func benchRecoveryDir(b *testing.B, updates int, compact bool) string {
	b.Helper()
	dir := b.TempDir()
	db, _, err := OpenDurable(dir, DurableOptions{Fsync: FsyncNever, CompactEvery: NoAutoCompact})
	if err != nil {
		b.Fatal(err)
	}
	body := make([]byte, 256)
	for i := 0; i < updates; i++ {
		if _, err := db.Force(fmt.Sprintf("key-%d", i%100), body); err != nil {
			b.Fatal(err)
		}
	}
	if compact {
		if err := db.CompactNow(); err != nil {
			b.Fatal(err)
		}
	}
	db.Close()
	return dir
}

// BenchmarkRecoverHistory10kUncompacted replays the full 10k-record
// WAL on every open — recovery cost grows with history.
func BenchmarkRecoverHistory10kUncompacted(b *testing.B) {
	dir := benchRecoveryDir(b, 10000, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db, _, err := OpenDurable(dir, DurableOptions{Fsync: FsyncNever, CompactEvery: NoAutoCompact})
		if err != nil {
			b.Fatal(err)
		}
		db.Close()
	}
}

// BenchmarkRecoverHistory10kCompacted loads the 100-doc snapshot
// instead — recovery cost is bounded by live state, the property the
// compaction exists to buy.
func BenchmarkRecoverHistory10kCompacted(b *testing.B) {
	dir := benchRecoveryDir(b, 10000, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db, _, err := OpenDurable(dir, DurableOptions{Fsync: FsyncNever, CompactEvery: NoAutoCompact})
		if err != nil {
			b.Fatal(err)
		}
		db.Close()
	}
}
