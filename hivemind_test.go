package hivemind

import (
	"strings"
	"testing"

	"hivemind/internal/platform"
)

func TestNewSwarmDefaults(t *testing.T) {
	sw := NewSwarm(SwarmSpec{System: SystemHiveMind})
	if got := len(sw.System().Fleet); got != 16 {
		t.Fatalf("default fleet = %d", got)
	}
	if sw.Options().Seed != 1 {
		t.Fatalf("default seed = %d", sw.Options().Seed)
	}
}

func TestRunJobFacade(t *testing.T) {
	sw := NewSwarm(SwarmSpec{Devices: 8, System: SystemHiveMind, Seed: 3})
	res, err := sw.RunJob(JobWeather, 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 || res.Latency.N() == 0 {
		t.Fatalf("no completions: %+v", res)
	}
	if _, err := sw.RunJob("S99", 20); err == nil {
		t.Fatal("unknown job accepted")
	}
}

func TestRunMissionFacade(t *testing.T) {
	sw := NewSwarm(SwarmSpec{Devices: 8, System: SystemHiveMind, Seed: 3})
	r := sw.RunMission(MissionStationaryItems)
	if r.Found == 0 {
		t.Fatalf("mission found nothing: %s", r)
	}
}

func TestRoverSwarm(t *testing.T) {
	sw := NewSwarm(SwarmSpec{Devices: 14, System: SystemHiveMind, Rovers: true, Seed: 5})
	if kind := sw.Options().DeviceCfg.Kind.String(); kind != "rover" {
		t.Fatalf("device kind = %s", kind)
	}
	r := sw.RunMission(MissionTreasureHunt)
	if !r.Completed {
		t.Fatalf("treasure hunt incomplete: %s", r)
	}
}

func TestJobsList(t *testing.T) {
	if len(Jobs()) != 10 {
		t.Fatalf("jobs = %d", len(Jobs()))
	}
}

func TestDSLAndSynthesisFacade(t *testing.T) {
	g, err := ParseDSL(`
TaskGraph(list=['collect','recognize'])
Task(collect, None, frames, 'code/collect', childTask=['recognize'])
Task(recognize, frames, stats, 'code/recognize')
`)
	if err != nil {
		t.Fatal(err)
	}
	cands, err := ExplorePlacements(g, map[string]TaskCost{
		"collect":   {CloudExecS: 0.01, EdgeExecS: 0.01, Parallelism: 1, OutputMB: 8, RatePerDev: 1, Sensor: true},
		"recognize": {CloudExecS: 0.8, EdgeExecS: 3.5, Parallelism: 8, InputMB: 8, OutputMB: 0.05, RatePerDev: 1},
	}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 2 { // collect pinned edge; recognize either side
		t.Fatalf("candidates = %d", len(cands))
	}
	files := GenerateAPIs(g, cands[0], "demo")
	if len(files) == 0 {
		t.Fatal("no API files generated")
	}
	if !strings.Contains(files["placement.go"], "recognize") {
		t.Fatal("placement file incomplete")
	}
}

func TestLearningFacade(t *testing.T) {
	none, traj := RunLearningTrial(LearnNone, 8, 9)
	swarm, _ := RunLearningTrial(LearnSwarm, 8, 9)
	if len(traj) == 0 {
		t.Fatal("no trajectory")
	}
	if swarm.Correct <= none.Correct {
		t.Fatalf("swarm %.3f not above none %.3f", swarm.Correct, none.Correct)
	}
}

func TestExperimentFacade(t *testing.T) {
	if len(Experiments()) < 20 {
		t.Fatalf("experiments = %d", len(Experiments()))
	}
	rep, err := RunExperiment("ubench-rpc", 1, true)
	if err != nil || rep == nil {
		t.Fatalf("run failed: %v", err)
	}
	if rep.Value("rtt64_us") == 0 {
		t.Fatal("missing finding")
	}
	if _, err := RunExperiment("nope", 1, true); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestAdapterFacade(t *testing.T) {
	sw := NewSwarm(SwarmSpec{Devices: 4, System: SystemHiveMind, Seed: 3})
	a, err := sw.NewAdapter(JobFaceRecognition, 5.0)
	if err != nil {
		t.Fatal(err)
	}
	done := false
	a.Submit(sw.System().Fleet[0], func(m platform.TaskMetrics) { done = true })
	sw.System().Eng.RunUntil(30)
	if !done {
		t.Fatal("adapted task did not complete")
	}
	if _, err := sw.NewAdapter("S99", 1); err == nil {
		t.Fatal("unknown job accepted")
	}
}
