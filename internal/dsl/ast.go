// Package dsl implements the HiveMind domain-specific language of §4.1:
// a declarative description of an application's task graph (Listing 1),
// optional management directives (Listing 2), and the scenario programs
// written in it (Listing 3). The paper embeds the DSL in Python; this
// implementation provides an equivalent standalone grammar — the same
// operations with the same semantics — parsed from text, plus a fluent
// Go builder that produces identical programs.
//
// Pipeline: Parse (lexer+parser) → Program (AST) → Validate →
// TaskGraph (analyzed, topologically ordered) → synth.Explore.
package dsl

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Program is a parsed DSL source: an ordered list of statements.
type Program struct {
	Statements []Statement
}

// Statement is one top-level call, e.g. Task(...), Parallel(a,b).
type Statement struct {
	Op   string
	Args []Arg
	Line int
}

// Arg is a positional or named (key=value) argument.
type Arg struct {
	Key   string // empty for positional
	Value Value
}

// ValueKind discriminates argument values.
type ValueKind int

const (
	ValString ValueKind = iota
	ValIdent
	ValNumber
	ValList
	ValNone
)

// Value is a literal: string, identifier, number, list, or None.
type Value struct {
	Kind   ValueKind
	Str    string  // ValString, ValIdent
	Num    float64 // ValNumber
	List   []Value // ValList
	IsNone bool
}

// Text returns the string content of a string/ident value.
func (v Value) Text() string { return v.Str }

// Strings flattens a list (or single string/ident) into string items.
func (v Value) Strings() []string {
	switch v.Kind {
	case ValList:
		out := make([]string, 0, len(v.List))
		for _, item := range v.List {
			out = append(out, item.Str)
		}
		return out
	case ValString, ValIdent:
		return []string{v.Str}
	default:
		return nil
	}
}

// Placement is where a task may run.
type Placement int

const (
	PlaceAny Placement = iota
	PlaceEdge
	PlaceCloud
)

// String implements fmt.Stringer.
func (p Placement) String() string {
	switch p {
	case PlaceEdge:
		return "edge"
	case PlaceCloud:
		return "cloud"
	default:
		return "any"
	}
}

// Task is one computation tier of the application.
type Task struct {
	Name     string
	DataIn   string
	DataOut  string
	CodePath string
	Params   map[string]string // free-form task arguments (speed=, algorithm=, ...)
	Parents  []string
	Children []string

	// Directives.
	Pin         Placement // Place(task, 'Edge'/'Cloud'); PlaceAny = free
	PinAll      bool      // 'Edge:all' — every device runs it
	Isolated    bool      // Isolate(task): dedicated container
	Persist     bool      // Persist(task): durable output
	Learn       string    // Learn(task, 'Global'|'Self'|'Off')
	Restore     string    // Restore(task): fault-tolerance policy
	Priority    int       // Schedule(task, priority=)
	SyncCond    string    // Synchronize(task, 'all'|'any')
	Colocatable bool      // same runtime deps as parent (API synthesis hint)
}

// Constraints are the user's performance/cost targets (§4.1: execution
// time, latency, throughput, and a cloud-cost ceiling).
type Constraints struct {
	ExecTimeS     float64
	LatencyS      float64
	ThroughputTps float64
	MaxCostUSD    float64
	MaxPowerW     float64
}

// Relation kinds between task pairs (Listing 1).
type RelationKind int

const (
	RelParallel RelationKind = iota // may run concurrently
	RelOverlap                      // may partially overlap
	RelSerial                       // must not overlap
)

// String implements fmt.Stringer.
func (r RelationKind) String() string {
	switch r {
	case RelParallel:
		return "parallel"
	case RelOverlap:
		return "overlap"
	default:
		return "serial"
	}
}

// Relation constrains a pair of tasks.
type Relation struct {
	Kind RelationKind
	A, B string
}

// Stream declares a continuous data source (§4.1 supports both
// individual objects and data streams): a named flow of items at a
// fixed rate, e.g. a camera producing 8 frames/s of 2 MB each. Tasks
// whose DataIn names a stream are driven at its rate.
type Stream struct {
	Name   string
	RateHz float64
	ItemMB float64
}

// TaskGraph is the analyzed application: validated tasks in declaration
// order, edges, relations and constraints.
type TaskGraph struct {
	Name        string
	Tasks       []*Task
	byName      map[string]*Task
	Relations   []Relation
	Constraints Constraints
	Streams     map[string]Stream
}

// StreamFor returns the stream feeding a task's DataIn, if declared.
func (g *TaskGraph) StreamFor(t *Task) (Stream, bool) {
	st, ok := g.Streams[t.DataIn]
	return st, ok
}

// Task returns a task by name.
func (g *TaskGraph) Task(name string) (*Task, bool) {
	t, ok := g.byName[name]
	return t, ok
}

// Names returns task names in declaration order.
func (g *TaskGraph) Names() []string {
	out := make([]string, len(g.Tasks))
	for i, t := range g.Tasks {
		out[i] = t.Name
	}
	return out
}

// Roots returns tasks with no parents.
func (g *TaskGraph) Roots() []*Task {
	var out []*Task
	for _, t := range g.Tasks {
		if len(t.Parents) == 0 {
			out = append(out, t)
		}
	}
	return out
}

// TopoOrder returns tasks in a topological order (parents first). The
// graph is guaranteed acyclic after Validate.
func (g *TaskGraph) TopoOrder() []*Task {
	indeg := make(map[string]int, len(g.Tasks))
	for _, t := range g.Tasks {
		indeg[t.Name] = len(t.Parents)
	}
	var queue []*Task
	for _, t := range g.Tasks { // declaration order keeps ties stable
		if indeg[t.Name] == 0 {
			queue = append(queue, t)
		}
	}
	var out []*Task
	for len(queue) > 0 {
		t := queue[0]
		queue = queue[1:]
		out = append(out, t)
		for _, c := range t.Children {
			indeg[c]--
			if indeg[c] == 0 {
				queue = append(queue, g.byName[c])
			}
		}
	}
	return out
}

// RelationBetween returns the declared relation for a pair, if any.
func (g *TaskGraph) RelationBetween(a, b string) (RelationKind, bool) {
	for _, r := range g.Relations {
		if (r.A == a && r.B == b) || (r.A == b && r.B == a) {
			return r.Kind, true
		}
	}
	return 0, false
}

// String renders a compact description.
func (g *TaskGraph) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "taskgraph %s: ", g.Name)
	for i, t := range g.Tasks {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(t.Name)
		if len(t.Children) > 0 {
			fmt.Fprintf(&sb, "->%s", strings.Join(t.Children, "/"))
		}
	}
	return sb.String()
}

// parseDuration accepts "10s", "1.5m", "250ms", or a bare number of
// seconds.
func parseDuration(s string) (float64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, fmt.Errorf("empty duration")
	}
	if n, err := strconv.ParseFloat(s, 64); err == nil {
		return n, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("bad duration %q: %w", s, err)
	}
	return d.Seconds(), nil
}
