// Command hivemind-dslc is the HiveMind DSL compiler: it parses and
// validates a task-graph program, runs the placement synthesizer over
// it, reports the explored execution models, and (optionally) emits the
// generated cross-tier API bindings.
//
// Usage:
//
//	hivemind-dslc -in app.hm [-devices 16] [-gen outdir] [-costs costs.json]
//
// Task cost profiles default to S1-like values for recognition-looking
// tasks and lightweight values otherwise; provide -costs for real
// profiles (JSON: {"task": {"cloudExecS":..., "edgeExecS":..., ...}}).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"hivemind/internal/dsl"
	"hivemind/internal/synth"
)

type costJSON struct {
	CloudExecS  float64 `json:"cloudExecS"`
	EdgeExecS   float64 `json:"edgeExecS"`
	Parallelism int     `json:"parallelism"`
	InputMB     float64 `json:"inputMB"`
	OutputMB    float64 `json:"outputMB"`
	RatePerDev  float64 `json:"ratePerDev"`
	Sensor      bool    `json:"sensor"`
}

func main() {
	var (
		in      = flag.String("in", "", "DSL source file (default: stdin)")
		devices = flag.Int("devices", 16, "swarm size for placement scoring")
		gen     = flag.String("gen", "", "directory to write generated API bindings into")
		costsFn = flag.String("costs", "", "JSON task cost profiles")
		top     = flag.Int("top", 8, "candidates to print")
	)
	flag.Parse()

	src, err := readSource(*in)
	if err != nil {
		fatal(err)
	}
	g, err := dsl.ParseAndAnalyze(src)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("parsed %d tasks: %s\n", len(g.Tasks), g)

	costs, err := loadCosts(*costsFn, g)
	if err != nil {
		fatal(err)
	}
	cands, err := synth.Explore(g, costs, synth.DefaultEnv(*devices))
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\nexplored %d meaningful execution models (best first):\n", len(cands))
	for i, c := range cands {
		if i >= *top {
			fmt.Printf("  ... and %d more\n", len(cands)-*top)
			break
		}
		m := c.Metrics
		fmt.Printf("  %2d. %-60s lat=%.3fs power=%.1fW net=%.1fMB/s cost=$%.4f/h feasible=%v\n",
			i+1, c.Name(), m.LatencyS, m.DevicePowerW, m.NetworkMBps, m.CloudUSDps*3600, m.Feasible)
	}

	best, ok := synth.Select(cands, g.Constraints, 0)
	fmt.Printf("\nselected: %s (meets constraints: %v)\n", best.Name(), ok)

	if *gen != "" {
		files := synth.GenerateAPIs(g, best, filepath.Base(*gen))
		if err := os.MkdirAll(*gen, 0o755); err != nil {
			fatal(err)
		}
		for name, content := range files {
			path := filepath.Join(*gen, name)
			if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s (%d bytes)\n", path, len(content))
		}
	}
}

func readSource(path string) (string, error) {
	if path == "" {
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := os.Stdin.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return sb.String(), nil
	}
	b, err := os.ReadFile(path)
	return string(b), err
}

func loadCosts(path string, g *dsl.TaskGraph) (map[string]synth.TaskCost, error) {
	costs := make(map[string]synth.TaskCost)
	if path != "" {
		b, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var raw map[string]costJSON
		if err := json.Unmarshal(b, &raw); err != nil {
			return nil, fmt.Errorf("parsing %s: %w", path, err)
		}
		for name, c := range raw {
			costs[name] = synth.TaskCost{
				CloudExecS: c.CloudExecS, EdgeExecS: c.EdgeExecS,
				Parallelism: c.Parallelism, InputMB: c.InputMB,
				OutputMB: c.OutputMB, RatePerDev: c.RatePerDev, Sensor: c.Sensor,
			}
		}
	}
	// Defaults for tasks without explicit profiles.
	for _, t := range g.Tasks {
		if _, ok := costs[t.Name]; ok {
			continue
		}
		lower := strings.ToLower(t.Name)
		switch {
		case strings.Contains(lower, "collect") || strings.Contains(lower, "sensor") || strings.Contains(lower, "image"):
			costs[t.Name] = synth.TaskCost{CloudExecS: 0.01, EdgeExecS: 0.01, Parallelism: 1, OutputMB: 8, RatePerDev: 1, Sensor: true}
		case strings.Contains(lower, "recogni") || strings.Contains(lower, "detect") || strings.Contains(lower, "slam"):
			costs[t.Name] = synth.TaskCost{CloudExecS: 0.8, EdgeExecS: 3.5, Parallelism: 8, InputMB: 8, OutputMB: 0.05, RatePerDev: 1}
		case strings.Contains(lower, "dedup"):
			costs[t.Name] = synth.TaskCost{CloudExecS: 1.0, EdgeExecS: 4.5, Parallelism: 8, InputMB: 0.2, OutputMB: 0.05, RatePerDev: 0.5}
		default:
			costs[t.Name] = synth.TaskCost{CloudExecS: 0.05, EdgeExecS: 0.15, Parallelism: 1, InputMB: 0.2, OutputMB: 0.02, RatePerDev: 1}
		}
	}
	return costs, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hivemind-dslc:", err)
	os.Exit(1)
}
