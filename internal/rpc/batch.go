package rpc

import (
	"context"
	"encoding/binary"
	"fmt"
)

// This file is the batch envelope the ingress front door uses to
// amortize per-RPC overhead for small tasks: N independent (method,
// payload) calls ride one frame to the gateway, execute through the
// ordinary per-method handlers (admission, deadline drops and shedding
// apply per entry), and N replies ride one frame back. The envelope is
// deliberately dumb — length-prefixed concatenation, no compression,
// no shared state between entries — so a batch is exactly as safe as
// its entries and a partial failure stays partial.

// BatchMethod is the reserved method name batch envelopes are
// dispatched under (Gateway.ExposeBatch registers its handler).
const BatchMethod = "_hm.batch"

// BatchEntry is one call riding a batch envelope.
type BatchEntry struct {
	Method  string
	Payload []byte
}

// BatchReply is one entry's outcome. Err is the wire form of the
// entry's error ("" on success), so typed errors (ShedError,
// DeadlineExceededError, NotLeaderError) stay parseable after the
// round trip exactly as they would on a dedicated call.
type BatchReply struct {
	Err  string
	Body []byte
}

// batchMagic guards against dispatching a non-envelope payload as a
// batch (a stray client calling BatchMethod with junk).
var batchMagic = []byte("HMB1")

// EncodeBatch packs entries into one envelope payload.
func EncodeBatch(entries []BatchEntry) []byte {
	n := len(batchMagic) + 4
	for _, e := range entries {
		n += 2 + len(e.Method) + 4 + len(e.Payload)
	}
	out := make([]byte, 0, n)
	out = append(out, batchMagic...)
	out = binary.BigEndian.AppendUint32(out, uint32(len(entries)))
	for _, e := range entries {
		out = binary.BigEndian.AppendUint16(out, uint16(len(e.Method)))
		out = append(out, e.Method...)
		out = binary.BigEndian.AppendUint32(out, uint32(len(e.Payload)))
		out = append(out, e.Payload...)
	}
	return out
}

// DecodeBatch unpacks an EncodeBatch envelope.
func DecodeBatch(raw []byte) ([]BatchEntry, error) {
	m := len(batchMagic)
	if len(raw) < m+4 || string(raw[:m]) != string(batchMagic) {
		return nil, fmt.Errorf("rpc: not a batch envelope")
	}
	count := int(binary.BigEndian.Uint32(raw[m : m+4]))
	off := m + 4
	entries := make([]BatchEntry, 0, count)
	for i := 0; i < count; i++ {
		if len(raw) < off+2 {
			return nil, fmt.Errorf("rpc: truncated batch envelope at entry %d", i)
		}
		ml := int(binary.BigEndian.Uint16(raw[off : off+2]))
		off += 2
		if len(raw) < off+ml+4 {
			return nil, fmt.Errorf("rpc: truncated batch envelope at entry %d", i)
		}
		method := string(raw[off : off+ml])
		off += ml
		pl := int(binary.BigEndian.Uint32(raw[off : off+4]))
		off += 4
		if len(raw) < off+pl {
			return nil, fmt.Errorf("rpc: truncated batch envelope at entry %d", i)
		}
		entries = append(entries, BatchEntry{Method: method, Payload: raw[off : off+pl]})
		off += pl
	}
	return entries, nil
}

// EncodeBatchReplies packs per-entry outcomes into one reply payload.
func EncodeBatchReplies(replies []BatchReply) []byte {
	n := len(batchMagic) + 4
	for _, r := range replies {
		n += 4 + len(r.Err) + 4 + len(r.Body)
	}
	out := make([]byte, 0, n)
	out = append(out, batchMagic...)
	out = binary.BigEndian.AppendUint32(out, uint32(len(replies)))
	for _, r := range replies {
		out = binary.BigEndian.AppendUint32(out, uint32(len(r.Err)))
		out = append(out, r.Err...)
		out = binary.BigEndian.AppendUint32(out, uint32(len(r.Body)))
		out = append(out, r.Body...)
	}
	return out
}

// DecodeBatchReplies unpacks an EncodeBatchReplies payload.
func DecodeBatchReplies(raw []byte) ([]BatchReply, error) {
	m := len(batchMagic)
	if len(raw) < m+4 || string(raw[:m]) != string(batchMagic) {
		return nil, fmt.Errorf("rpc: not a batch reply")
	}
	count := int(binary.BigEndian.Uint32(raw[m : m+4]))
	off := m + 4
	replies := make([]BatchReply, 0, count)
	for i := 0; i < count; i++ {
		if len(raw) < off+4 {
			return nil, fmt.Errorf("rpc: truncated batch reply at entry %d", i)
		}
		el := int(binary.BigEndian.Uint32(raw[off : off+4]))
		off += 4
		if len(raw) < off+el+4 {
			return nil, fmt.Errorf("rpc: truncated batch reply at entry %d", i)
		}
		errStr := string(raw[off : off+el])
		off += el
		bl := int(binary.BigEndian.Uint32(raw[off : off+4]))
		off += 4
		if len(raw) < off+bl {
			return nil, fmt.Errorf("rpc: truncated batch reply at entry %d", i)
		}
		replies = append(replies, BatchReply{Err: errStr, Body: raw[off : off+bl]})
		off += bl
	}
	return replies, nil
}

// ReplyError converts a BatchReply's wire error back into the error a
// dedicated call would have returned (nil for success). ServerError is
// the carrier, so IsShed/IsDeadlineExceeded/RedirectTarget all keep
// working on batch outcomes.
func (r BatchReply) ReplyError() error {
	if r.Err == "" {
		return nil
	}
	return ServerError(r.Err)
}

// Dispatch invokes a registered handler in-process, without a wire
// round trip — the batch handler and the in-process ring share this
// path. The interceptor, if installed, wraps the call exactly as it
// would a framed request.
func (s *Server) Dispatch(ctx context.Context, method string, payload []byte) ([]byte, error) {
	e, si, ok := s.handlerFor(method)
	if !ok {
		return nil, ServerError("rpc: unknown method: " + method)
	}
	if si != nil {
		return si(ctx, method, payload, e.fn)
	}
	return e.fn(ctx, payload)
}
