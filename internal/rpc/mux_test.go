package rpc

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func muxPair(t *testing.T, workers, callers int) (*Server, *Client) {
	t.Helper()
	srv := NewServer()
	if workers > 0 {
		srv.SetWorkers(workers)
	}
	srv.Register("echo", func(p []byte) ([]byte, error) { return p, nil })
	cc, sc := Pair()
	srv.ServeConn(sc)
	c := NewClient(cc, callers)
	t.Cleanup(func() { c.Close(); srv.Close() })
	return srv, c
}

// TestStreamBasicRoundTrip pins that calls on distinct streams of one
// connection route their replies back to the right stream's caller.
func TestStreamBasicRoundTrip(t *testing.T) {
	_, c := muxPair(t, 0, 4)
	s1 := c.Stream(4)
	s2 := c.Stream(4)
	if s1.ID() == s2.ID() || s1.ID() == 0 || s2.ID() == 0 {
		t.Fatalf("stream ids not distinct/nonzero: %d %d", s1.ID(), s2.ID())
	}
	for i := 0; i < 50; i++ {
		w1, w2 := fmt.Sprintf("s1-%d", i), fmt.Sprintf("s2-%d", i)
		g1, err1 := s1.CallSync("echo", []byte(w1))
		g2, err2 := s2.CallSync("echo", []byte(w2))
		if err1 != nil || err2 != nil {
			t.Fatalf("stream calls failed: %v %v", err1, err2)
		}
		if string(g1) != w1 || string(g2) != w2 {
			t.Fatalf("cross-wired stream replies: %q %q", g1, g2)
		}
	}
}

// TestMuxNoHeadOfLineBlocking is the tentpole fairness property: a
// stream that floods the connection's worker pool with slow calls must
// not starve a sibling stream's quick call. The dispatcher schedules
// queued streams round-robin, so the quick call waits for at most a
// handful of slow-handler turnarounds, not the flooded stream's whole
// backlog.
func TestMuxNoHeadOfLineBlocking(t *testing.T) {
	const slowDelay = 3 * time.Millisecond
	srv := NewServer()
	srv.SetWorkers(2)
	srv.Register("slow", func(p []byte) ([]byte, error) {
		time.Sleep(slowDelay)
		return p, nil
	})
	srv.Register("quick", func(p []byte) ([]byte, error) { return p, nil })
	cc, sc := Pair()
	srv.ServeConn(sc)
	c := NewClient(cc, 64)
	defer c.Close()
	defer srv.Close()

	flood := c.Stream(32)
	quick := c.Stream(2)

	// Sustained flood: 8 goroutines keep slow calls pouring into the
	// flood stream for the whole test (sheds are re-offered), so its
	// queue is never empty. With the old single shared FIFO this
	// saturates the pool's queue and blocks the read loop, making the
	// quick stream wait out the entire flood.
	stopFlood := make(chan struct{})
	var floodWG sync.WaitGroup
	for i := 0; i < 8; i++ {
		floodWG.Add(1)
		go func() {
			defer floodWG.Done()
			for {
				select {
				case <-stopFlood:
					return
				default:
				}
				flood.CallSync("slow", nil)
			}
		}()
	}
	time.Sleep(2 * slowDelay) // let the flood stream's queue build

	// Round-robin bound: each quick call queues behind at most the
	// currently-running handlers plus one round-robin turn, not the
	// flood's backlog. Allow generous CI slack (4 slow turnarounds).
	for i := 0; i < 3; i++ {
		start := time.Now()
		if _, err := quick.CallSync("quick", nil); err != nil {
			t.Fatalf("quick call %d failed under sibling flood: %v", i, err)
		}
		if elapsed, limit := time.Since(start), 4*slowDelay; elapsed > limit {
			t.Fatalf("quick call %d took %v under sibling flood (HoL blocking); want < %v", i, elapsed, limit)
		}
	}
	close(stopFlood)
	floodWG.Wait()
}

// TestMuxPerStreamDeadline pins the deadline-propagation satellite: an
// expired kindRequestDL on one stream is refused with the typed
// deadline error, while sibling streams on the same connection keep
// working — no teardown, no stall.
func TestMuxPerStreamDeadline(t *testing.T) {
	srv := NewServer()
	srv.SetWorkers(1)
	block := make(chan struct{})
	entered := make(chan struct{}, 1)
	srv.Register("hold", func(p []byte) ([]byte, error) {
		entered <- struct{}{}
		<-block
		return p, nil
	})
	srv.Register("echo", func(p []byte) ([]byte, error) { return p, nil })
	cc, sc := Pair()
	srv.ServeConn(sc)
	c := NewClient(cc, 16)
	defer c.Close()
	defer srv.Close()

	victim := c.Stream(4)
	sibling := c.Stream(4)

	// Occupy the single worker so the deadline call queues and expires
	// in the queue rather than being answered before its deadline.
	holdDone := make(chan *Call, 1)
	victim.Go("hold", nil, holdDone)
	<-entered

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err := victim.Call(ctx, "echo", nil)
	if err == nil {
		t.Fatal("expired-deadline call succeeded")
	}
	if !IsDeadlineExceeded(err) {
		t.Fatalf("expired call returned untyped error: %v", err)
	}

	// The sibling stream (and the shared connection) must be unharmed.
	close(block)
	<-holdDone
	got, err := sibling.CallSync("echo", []byte("alive"))
	if err != nil || string(got) != "alive" {
		t.Fatalf("sibling stream broken after victim's deadline expiry: %q %v", got, err)
	}
	if !c.Healthy() {
		t.Fatal("connection torn down by a per-stream deadline expiry")
	}
}

// TestMuxStreamOverflowSheds pins the no-blocking contract for mux
// streams: when one stream's queue exceeds the worker bound, the
// dispatcher sheds with the typed ShedError instead of blocking the
// shared read loop, and the excess never executes out of order or
// stalls siblings.
func TestMuxStreamOverflowSheds(t *testing.T) {
	srv := NewServer()
	srv.SetWorkers(2)
	release := make(chan struct{})
	srv.Register("gate", func(p []byte) ([]byte, error) {
		<-release
		return p, nil
	})
	srv.Register("echo", func(p []byte) ([]byte, error) { return p, nil })
	cc, sc := Pair()
	srv.ServeConn(sc)
	c := NewClient(cc, 64)
	defer c.Close()
	defer srv.Close()

	// One mux stream with far more in-flight calls than workers+queue:
	// 2 run, 2 queue, the rest must shed.
	s := c.Stream(32)
	const calls = 24
	results := make(chan error, calls)
	var wg sync.WaitGroup
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := s.CallSync("gate", nil)
			results <- err
		}()
	}

	// Wait for sheds to come back while the gate is still closed: shed
	// responses bypass the stuck workers by design.
	deadline := time.After(10 * time.Second)
	var shed int
	for shed == 0 {
		select {
		case err := <-results:
			if !IsShed(err) {
				t.Fatalf("overflow produced non-shed result while gated: %v", err)
			}
			shed++
		case <-deadline:
			t.Fatal("stream overflow never shed; the read loop may be blocked")
		}
	}

	// A sibling stream must still get service (the read loop is alive).
	sib := c.Stream(2)
	sibCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	go func() { time.Sleep(10 * time.Millisecond); close(release) }()
	if _, err := sib.Call(sibCtx, "echo", nil); err != nil {
		t.Fatalf("sibling starved during sibling overflow: %v", err)
	}

	wg.Wait()
	close(results)
	okCount := 0
	for err := range results {
		switch {
		case err == nil:
			okCount++
		case IsShed(err):
			shed++
		default:
			t.Fatalf("unexpected overflow result: %v", err)
		}
	}
	if okCount == 0 || shed == 0 {
		t.Fatalf("want a mix of served and shed calls, got ok=%d shed=%d", okCount, shed)
	}
	if okCount+shed != calls {
		t.Fatalf("lost calls: ok=%d shed=%d of %d", okCount, shed, calls)
	}
}

// TestMuxConcurrentStreams hammers many streams concurrently under the
// race detector: replies must route to the right stream and call.
func TestMuxConcurrentStreams(t *testing.T) {
	_, c := muxPair(t, 8, 256)
	const (
		streams = 8
		calls   = 100
	)
	var wg sync.WaitGroup
	var failed atomic.Int64
	for si := 0; si < streams; si++ {
		s := c.Stream(8)
		wg.Add(1)
		go func(s *Stream, si int) {
			defer wg.Done()
			for i := 0; i < calls; i++ {
				want := fmt.Sprintf("s%d-c%d", si, i)
				got, err := s.CallSync("echo", []byte(want))
				if err != nil || string(got) != want {
					failed.Add(1)
					return
				}
			}
		}(s, si)
	}
	wg.Wait()
	if failed.Load() != 0 {
		t.Fatalf("%d streams failed", failed.Load())
	}
}

// TestMuxTeardownFailsAllStreams pins that closing the shared
// connection fails in-flight calls on every stream with ErrClosed —
// multiplexing must not strand sibling streams' callers.
func TestMuxTeardownFailsAllStreams(t *testing.T) {
	srv := NewServer()
	block := make(chan struct{})
	defer close(block)
	srv.Register("hold", func(p []byte) ([]byte, error) { <-block; return p, nil })
	cc, sc := Pair()
	srv.ServeConn(sc)
	defer srv.Close()
	c := NewClient(cc, 16)

	const streams = 4
	errs := make(chan error, streams)
	for i := 0; i < streams; i++ {
		s := c.Stream(2)
		go func() {
			_, err := s.CallSync("hold", nil)
			errs <- err
		}()
	}
	time.Sleep(5 * time.Millisecond) // let the calls get in flight
	c.Close()
	for i := 0; i < streams; i++ {
		select {
		case err := <-errs:
			if !errors.Is(err, ErrClosed) {
				t.Fatalf("stream call after teardown: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("a stream's caller was stranded by connection teardown")
		}
	}
}
