package netsim

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"hivemind/internal/geo"
	"hivemind/internal/sim"
)

// randomLayout scatters n devices with mixed radio ranges (long-range
// drones down to short-range tiny robots).
func randomLayout(n int, fieldM float64, seed int64) ([]geo.Point, []float64) {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geo.Point, n)
	ranges := make([]float64, n)
	for i := range pts {
		pts[i] = geo.Point{X: rng.Float64() * fieldM, Y: rng.Float64() * fieldM}
		switch i % 10 {
		case 0:
			ranges[i] = 60 // drone
		case 1, 2, 3:
			ranges[i] = 35 // rover
		default:
			ranges[i] = 12 // tiny robot
		}
	}
	return pts, ranges
}

// TestNeighborIndexMatchesNaive: the binned build must produce exactly
// the sets the all-pairs scan produces, for mixed asymmetric ranges.
func TestNeighborIndexMatchesNaive(t *testing.T) {
	for _, n := range []int{1, 17, 400} {
		pts, ranges := randomLayout(n, 300, int64(n))
		ix := BuildNeighborIndex(pts, ranges)
		naive := buildNeighborsNaive(pts, ranges)
		for d := 0; d < n; d++ {
			got, want := ix.Neighbors(d), naive[d]
			if len(got) == 0 && len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("n=%d device %d: indexed %v != naive %v", n, d, got, want)
			}
		}
	}
}

// TestNeighborQueryAllocFree: the range query the broadcast hot path
// performs per transmission must not allocate — that is the point of
// replacing the per-transmission scan with the prebuilt index.
func TestNeighborQueryAllocFree(t *testing.T) {
	pts, ranges := randomLayout(500, 300, 7)
	ix := BuildNeighborIndex(pts, ranges)
	sink := 0
	allocs := testing.AllocsPerRun(1000, func() {
		for d := 0; d < 500; d++ {
			sink += len(ix.Neighbors(d))
		}
	})
	if allocs != 0 {
		t.Fatalf("Neighbors allocated %.1f per run, want 0", allocs)
	}
	_ = sink
}

// TestNeighborIndexBeatsNaiveScan: the ns ceiling for the index build.
// The binned build must beat the O(all-devices²) scan by a wide margin
// at mega-swarm densities; the margin is asserted loosely (3×) so CI
// noise cannot flake it, and skipped under the race detector where
// instrumentation distorts both sides.
func TestNeighborIndexBeatsNaiveScan(t *testing.T) {
	if raceEnabled {
		t.Skip("timing assertion not meaningful under -race")
	}
	if testing.Short() {
		t.Skip("timing comparison skipped in -short")
	}
	pts, ranges := randomLayout(8000, 1400, 11)
	timeIt := func(f func()) time.Duration {
		start := time.Now()
		f()
		return time.Since(start)
	}
	// Warm once to populate caches, then measure.
	BuildNeighborIndex(pts, ranges)
	indexed := timeIt(func() { BuildNeighborIndex(pts, ranges) })
	naive := timeIt(func() { buildNeighborsNaive(pts, ranges) })
	if naive < 3*indexed {
		t.Fatalf("indexed build %v not ≥3× faster than naive %v", indexed, naive)
	}
}

// buildRadio wires a 2×2-cell sharded world with a deterministic
// layout.
func buildRadio(t *testing.T, workers int, latency float64) (*sim.ShardedEngine, *Radio, *geo.CellIndex, []geo.Point) {
	t.Helper()
	pts, ranges := randomLayout(200, 120, 3)
	cells := geo.Partition(geo.NewField(120, 120), 4)
	cix := geo.BuildCellIndex(cells, pts)
	se, err := sim.NewSharded(3, len(cells), 0.004, workers)
	if err != nil {
		t.Fatal(err)
	}
	ix := BuildNeighborIndex(pts, ranges)
	radio, err := NewRadio(se, ix, cix.CellOwners(), latency)
	if err != nil {
		t.Fatal(err)
	}
	return se, radio, cix, pts
}

// TestRadioLatencyBelowLookaheadRejected: a medium faster than the
// declared lookahead would break the conservative windows.
func TestRadioLatencyBelowLookaheadRejected(t *testing.T) {
	pts, ranges := randomLayout(10, 50, 1)
	cells := geo.Partition(geo.NewField(50, 50), 2)
	cix := geo.BuildCellIndex(cells, pts)
	se, err := sim.NewSharded(1, 2, 0.004, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, err = NewRadio(se, BuildNeighborIndex(pts, ranges), cix.CellOwners(), 0.001)
	if err == nil {
		t.Fatal("expected error for latency < lookahead")
	}
	var le *sim.LookaheadError
	if !errors.As(err, &le) {
		t.Fatalf("error %v is not a *sim.LookaheadError", err)
	}
}

// TestRadioBroadcastDelivers: every neighbour — same cell or not —
// receives exactly one delivery at send time + latency.
func TestRadioBroadcastDelivers(t *testing.T) {
	const latency = 0.004
	se, radio, cix, _ := buildRadio(t, 2, latency)
	src := 0
	want := radio.Neighbors(src)
	if len(want) == 0 {
		t.Fatal("source has no neighbours; layout too sparse for the test")
	}
	got := map[int]int{}
	var at []float64
	srcCell := se.Cell(cix.CellOf(src))
	srcCell.Engine().DeferAt(1.0, func() {
		radio.Broadcast(src, func(dst int) {
			got[dst]++
			at = append(at, se.Cell(cix.CellOf(dst)).Engine().Now())
		})
	})
	se.Run(2)
	if len(got) != len(want) {
		t.Fatalf("delivered to %d receivers, want %d", len(got), len(want))
	}
	for _, n := range want {
		if got[int(n)] != 1 {
			t.Fatalf("neighbour %d received %d deliveries, want 1", n, got[int(n)])
		}
	}
	for _, ts := range at {
		if ts != 1.0+latency {
			t.Fatalf("delivery at %g, want %g", ts, 1.0+latency)
		}
	}
	st := radio.Stats()
	if st.Broadcasts != 1 || st.Deliveries != uint64(len(want)) {
		t.Fatalf("stats %+v inconsistent with one broadcast to %d receivers", st, len(want))
	}
}

// TestRadioParityAcrossWorkers: a gossip storm over the sharded radio
// must deliver identically at any worker count.
func TestRadioParityAcrossWorkers(t *testing.T) {
	run := func(workers int) ([]uint64, RadioStats) {
		se, radio, cix, _ := buildRadio(t, workers, 0.004)
		heard := make([]uint64, 200)
		for d := 0; d < 200; d++ {
			d := d
			cell := se.Cell(cix.CellOf(d))
			var loop func()
			loop = func() {
				radio.Broadcast(d, func(dst int) { heard[dst]++ })
				cell.Engine().Defer(0.05+cell.Engine().Rand().Float64()*0.01, loop)
			}
			cell.Engine().DeferAt(float64(d%7)*0.001, loop)
		}
		se.Run(1)
		return heard, radio.Stats()
	}
	baseHeard, baseStats := run(1)
	if baseStats.Deliveries == 0 || baseStats.CrossEvents == 0 {
		t.Fatalf("storm produced no cross-cell traffic: %+v", baseStats)
	}
	for _, w := range []int{2, 8} {
		heard, st := run(w)
		if !reflect.DeepEqual(heard, baseHeard) {
			t.Fatalf("workers=%d: delivery counts diverged", w)
		}
		if st != baseStats {
			t.Fatalf("workers=%d: stats %+v != %+v", w, st, baseStats)
		}
	}
}

// BenchmarkNeighborBuild records what the binned index buys over the
// per-transmission all-devices scan at 10⁴-device scale (the numbers
// land in BENCH_sim.json via make bench-sim).
func BenchmarkNeighborBuild(b *testing.B) {
	pts, ranges := randomLayout(10000, 1000, 5)
	b.Run("indexed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			BuildNeighborIndex(pts, ranges)
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			buildNeighborsNaive(pts, ranges)
		}
	})
}
