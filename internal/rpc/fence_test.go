package rpc

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"
)

func TestFencedErrorRoundTrip(t *testing.T) {
	err := FencedError(3, 7)
	if !IsFenced(err) {
		t.Fatal("FencedError not recognised by IsFenced")
	}
	token, fence, ok := FencedTerms(err)
	if !ok || token != 3 || fence != 7 {
		t.Fatalf("FencedTerms = (%d, %d, %v), want (3, 7, true)", token, fence, ok)
	}
	// The wire form survives re-wrapping as a plain ServerError (how it
	// arrives after crossing a connection).
	wire := ServerError(err.Error())
	if !IsFenced(wire) {
		t.Fatal("wire form not recognised")
	}
	if _, _, ok := FencedTerms(errors.New("rpc: fenced; term=x fence=y")); ok {
		t.Fatal("non-ServerError accepted")
	}
	if IsFenced(ServerError("rpc: not leader; leader=1")) {
		t.Fatal("redirect misclassified as fenced")
	}
	if _, _, ok := FencedTerms(ServerError(fencedPrefix + "12")); ok {
		t.Fatal("malformed fenced payload parsed")
	}
}

// A fenced response re-routes the failover client to another endpoint
// — like a leader redirect, and like a redirect it must not spend the
// retry budget.
func TestFailoverClientReroutesOnFenced(t *testing.T) {
	deposed, healthy := NewServer(), NewServer()
	deposed.Register("put", func([]byte) ([]byte, error) {
		return nil, FencedError(2, 5)
	})
	healthy.Register("put", func([]byte) ([]byte, error) {
		return []byte("committed"), nil
	})
	lns := make([]net.Listener, 2)
	for i, srv := range []*Server{deposed, healthy} {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		go srv.Serve(ln)
		defer srv.Close()
	}

	budget := NewRetryBudget(0.1, 1) // one token: a single real retry
	fc := DialFailover([]string{lns[0].Addr().String(), lns[1].Addr().String()}, FailoverOptions{
		RetryBackoff: time.Millisecond,
		Budget:       budget,
	})
	defer fc.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	out, err := fc.Call(ctx, "put", nil)
	if err != nil {
		t.Fatalf("call across fenced endpoint failed: %v", err)
	}
	if string(out) != "committed" {
		t.Fatalf("out = %q", out)
	}
	if fc.Leader() != 1 {
		t.Fatalf("client still routed at %d, want the healthy endpoint 1", fc.Leader())
	}
	// Routing around the fence was free: the budget still holds its
	// token (plus the success deposit, capped at max).
	if budget.Tokens() < 1 {
		t.Fatalf("fenced reroute spent the retry budget: %v tokens", budget.Tokens())
	}
}
