package rpc

import (
	"math/rand"
	"time"
)

// RetryPolicy is an exponential-backoff schedule with jitter. The zero
// value never retries. Only transport failures are retried — a
// ServerError proves the request reached the handler and executed, so
// replaying it is only safe for methods declared idempotent (see
// ReliableOptions.Idempotent*).
type RetryPolicy struct {
	// Max is the number of retries after the initial attempt.
	Max int
	// Base is the first backoff; each subsequent backoff multiplies by
	// Multiplier (default 2) and is capped at Cap.
	Base       time.Duration
	Cap        time.Duration
	Multiplier float64
	// Jitter in [0,1] randomises each backoff within ±Jitter·backoff,
	// decorrelating retry storms across a swarm of clients.
	Jitter float64
}

// DefaultRetryPolicy mirrors the faas model's respawn cadence
// (RespawnDelayS = 120 ms) with 3 respawns, the §3.2 attempt cap.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{Max: 3, Base: 120 * time.Millisecond, Cap: 2 * time.Second, Multiplier: 2, Jitter: 0.2}
}

// Backoff returns the pause before retry attempt (0-based), drawing
// jitter from rng (nil: no jitter, fully deterministic).
func (p RetryPolicy) Backoff(attempt int, rng *rand.Rand) time.Duration {
	if p.Base <= 0 {
		return 0
	}
	mult := p.Multiplier
	if mult <= 0 {
		mult = 2
	}
	d := float64(p.Base)
	for i := 0; i < attempt; i++ {
		d *= mult
		if p.Cap > 0 && d >= float64(p.Cap) {
			d = float64(p.Cap)
			break
		}
	}
	if p.Cap > 0 && d > float64(p.Cap) {
		d = float64(p.Cap)
	}
	if p.Jitter > 0 && rng != nil {
		d *= 1 + p.Jitter*(2*rng.Float64()-1)
	}
	return time.Duration(d)
}
