// Package experiments contains one driver per table/figure in the
// HiveMind evaluation (Figs. 1, 3–6, 11–18 plus the §4.5 and §4.7
// microbenchmarks). Each driver runs the relevant systems on the
// simulated swarm and renders the same rows/series the paper plots,
// along with named scalar findings that the tests and EXPERIMENTS.md
// assert against the paper's claims.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"hivemind/internal/stats"
)

// RunConfig tunes experiment execution.
type RunConfig struct {
	// Seed drives all randomness; the same seed reproduces the run.
	Seed int64
	// Quick shrinks durations/sweeps for tests and CI; full mode uses
	// paper-scale parameters.
	Quick bool
	// Parallelism bounds how many simulations run at once: 0 means
	// GOMAXPROCS, 1 forces a fully serial sweep. Reports are
	// byte-identical at every setting for the same seed — parallel runs
	// merge results in deterministic order.
	Parallelism int
	// Shards sets the sharded-executive worker count for drivers that
	// split one simulation across cores (mega01). 0 composes with the
	// sweep pool: the driver borrows idle worker tokens for the run's
	// duration instead of oversubscribing. The setting never changes
	// results — only how many threads execute them.
	Shards int

	// exec carries the run-wide worker pool and memoized run cache; it
	// is installed by RunAll (or lazily by Experiment.Run) so every
	// driver in one run shares them.
	exec *executor
}

// Report is an experiment's output.
type Report struct {
	ID     string
	Title  string
	Tables []*stats.Table
	// Values holds named scalar findings (e.g. "hivemind_speedup_mean")
	// for programmatic assertions.
	Values map[string]float64
	Notes  []string
}

// Value returns a named finding (0 if absent).
func (r *Report) Value(name string) float64 { return r.Values[name] }

// SetValue records a named finding.
func (r *Report) SetValue(name string, v float64) {
	if r.Values == nil {
		r.Values = map[string]float64{}
	}
	r.Values[name] = v
}

// AddNote appends a human-readable observation.
func (r *Report) AddNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// String renders the full report.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", r.ID, r.Title)
	for _, t := range r.Tables {
		sb.WriteString(t.String())
		sb.WriteByte('\n')
	}
	if len(r.Values) > 0 {
		keys := make([]string, 0, len(r.Values))
		for k := range r.Values {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		sb.WriteString("findings:\n")
		for _, k := range keys {
			fmt.Fprintf(&sb, "  %-40s %.4g\n", k, r.Values[k])
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// Experiment is a runnable paper figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(cfg RunConfig) *Report
}

var registry []Experiment

func register(id, title string, run func(RunConfig) *Report) {
	registry = append(registry, Experiment{ID: id, Title: title, Run: func(cfg RunConfig) *Report {
		// A directly-run experiment gets its own pool and cache; under
		// RunAll the shared executor arrives through cfg.
		return run(cfg.withExec())
	}})
}

// All returns every experiment in figure order.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
