package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// replayAll opens the WAL collecting every replayed record.
func replayAll(t *testing.T, path string, opts WALOptions) (*WAL, [][]byte, bool) {
	t.Helper()
	var recs [][]byte
	w, truncated, err := OpenWAL(path, opts, func(rec []byte) error {
		recs = append(recs, append([]byte(nil), rec...))
		return nil
	})
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	return w, recs, truncated
}

func TestWALAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, recs, truncated := replayAll(t, path, WALOptions{Fsync: FsyncNever})
	if len(recs) != 0 || truncated {
		t.Fatalf("fresh wal: %d records truncated=%v", len(recs), truncated)
	}
	want := [][]byte{[]byte("alpha"), []byte(""), bytes.Repeat([]byte{0xAB}, 4096)}
	for _, r := range want {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if w.Records() != 3 {
		t.Fatalf("records = %d, want 3", w.Records())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, got, truncated := replayAll(t, path, WALOptions{Fsync: FsyncNever})
	defer w2.Close()
	if truncated {
		t.Fatal("clean log reported a truncated tail")
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// A torn tail — a partial frame from a crash mid-write — is cut back
// to the longest valid prefix, and appending afterwards works.
func TestWALTornTailRecoversValidPrefix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _, _ := replayAll(t, path, WALOptions{Fsync: FsyncNever})
	for i := 0; i < 5; i++ {
		if err := w.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the tail: append half a frame's worth of garbage.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x00, 0x00, 0x00, 0x09, 0xDE, 0xAD}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	w2, recs, truncated := replayAll(t, path, WALOptions{Fsync: FsyncNever})
	if !truncated {
		t.Fatal("torn tail not reported")
	}
	if len(recs) != 5 {
		t.Fatalf("replayed %d records, want the 5 valid ones", len(recs))
	}
	if err := w2.Append([]byte("after-tear")); err != nil {
		t.Fatal(err)
	}
	w2.Close()

	w3, recs, truncated := replayAll(t, path, WALOptions{Fsync: FsyncNever})
	defer w3.Close()
	if truncated {
		t.Fatal("re-opened log reported truncation again")
	}
	if len(recs) != 6 || string(recs[5]) != "after-tear" {
		t.Fatalf("post-tear append lost: %d records, last %q", len(recs), recs[len(recs)-1])
	}
}

// A corrupted byte inside the tail record fails its CRC and the record
// is dropped; earlier records survive.
func TestWALCorruptTailChecksumTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _, _ := replayAll(t, path, WALOptions{Fsync: FsyncNever})
	w.Append([]byte("keep-me"))
	w.Append([]byte("corrupt-me"))
	w.Close()

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xFF // flip a payload byte in the last record
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	w2, recs, truncated := replayAll(t, path, WALOptions{Fsync: FsyncNever})
	defer w2.Close()
	if !truncated {
		t.Fatal("checksum-corrupt tail not reported")
	}
	if len(recs) != 1 || string(recs[0]) != "keep-me" {
		t.Fatalf("valid prefix = %q, want [keep-me]", recs)
	}
	if w2.Records() != 1 {
		t.Fatalf("records after truncation = %d, want 1", w2.Records())
	}
}

// An absurd length prefix (corrupt header) is treated as a torn tail,
// not an allocation request.
func TestWALAbsurdLengthTreatedAsTorn(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _, _ := replayAll(t, path, WALOptions{Fsync: FsyncNever})
	w.Append([]byte("ok"))
	w.Close()
	f, _ := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	f.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3, 4}) // 4 GiB "record"
	f.Close()

	w2, recs, truncated := replayAll(t, path, WALOptions{Fsync: FsyncNever})
	defer w2.Close()
	if !truncated || len(recs) != 1 {
		t.Fatalf("truncated=%v records=%d, want true/1", truncated, len(recs))
	}
}

func TestWALResetEmptiesLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _, _ := replayAll(t, path, WALOptions{Fsync: FsyncNever})
	w.Append([]byte("a"))
	w.Append([]byte("b"))
	if err := w.Reset(); err != nil {
		t.Fatal(err)
	}
	if w.Records() != 0 || w.Size() != 0 {
		t.Fatalf("after reset: records=%d size=%d", w.Records(), w.Size())
	}
	w.Append([]byte("c"))
	w.Close()
	w2, recs, truncated := replayAll(t, path, WALOptions{Fsync: FsyncNever})
	defer w2.Close()
	if truncated || len(recs) != 1 || string(recs[0]) != "c" {
		t.Fatalf("post-reset log = %q (truncated=%v), want [c]", recs, truncated)
	}
}

// FsyncBatch syncs every SyncEvery appends; the fsync counter proves
// the policy held.
func TestWALFsyncBatchPolicy(t *testing.T) {
	mon := newCountingMonitor()
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _, err := OpenWAL(path, WALOptions{Fsync: FsyncBatch, SyncEvery: 4, Monitor: mon}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := w.Append([]byte("r")); err != nil {
			t.Fatal(err)
		}
	}
	if got := mon.count(MetricWALFsync); got != 2 {
		t.Fatalf("fsyncs after 10 appends at batch 4 = %d, want 2", got)
	}
	w.Close() // flushes the remaining 2
	if got := mon.count(MetricWALFsync); got != 3 {
		t.Fatalf("fsyncs after close = %d, want 3", got)
	}
	if got := mon.count(MetricWALAppend); got != 10 {
		t.Fatalf("appends = %d, want 10", got)
	}
}
