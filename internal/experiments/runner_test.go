package experiments

import (
	"strings"
	"sync/atomic"
	"testing"
)

// sweepOutput renders the full quick sweep at the given parallelism the
// same way hivemind-bench writes its report file.
func sweepOutput(parallelism int) string {
	var sb strings.Builder
	for _, r := range RunAll(RunConfig{Seed: 1, Quick: true, Parallelism: parallelism}) {
		sb.WriteString(r.Report.String())
		sb.WriteString("\n")
	}
	return sb.String()
}

// TestParallelSweepByteIdentical is the contract the parallel runner
// must keep: a sweep at Parallelism 8 renders byte-for-byte the same
// reports as a serial sweep at the same seed.
func TestParallelSweepByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full quick sweep")
	}
	serial := sweepOutput(1)
	par := sweepOutput(8)
	if serial != par {
		a, b := strings.Split(serial, "\n"), strings.Split(par, "\n")
		for i := 0; i < len(a) && i < len(b); i++ {
			if a[i] != b[i] {
				t.Fatalf("parallel sweep diverges from serial at line %d:\n  serial:   %q\n  parallel: %q", i+1, a[i], b[i])
			}
		}
		t.Fatalf("parallel sweep output length differs: %d vs %d bytes", len(serial), len(par))
	}
}

func TestRunAllOrderAndElapsed(t *testing.T) {
	results := RunAll(RunConfig{Seed: 1, Quick: true, Parallelism: 4})
	all := All()
	if len(results) != len(all) {
		t.Fatalf("RunAll returned %d results, want %d", len(results), len(all))
	}
	for i, r := range results {
		if r.Experiment.ID != all[i].ID {
			t.Fatalf("results[%d] = %s, want %s (registry order)", i, r.Experiment.ID, all[i].ID)
		}
		if r.Report == nil {
			t.Fatalf("%s returned a nil report", r.Experiment.ID)
		}
		if r.Elapsed < 0 {
			t.Fatalf("%s has negative elapsed time", r.Experiment.ID)
		}
	}
}

func TestFanOutRunsEveryIndexOnce(t *testing.T) {
	for _, parallelism := range []int{0, 1, 3, 16} {
		cfg := RunConfig{Parallelism: parallelism}.withExec()
		const n = 100
		var hits [n]atomic.Int32
		fanOut(cfg, n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("parallelism %d: index %d ran %d times", parallelism, i, got)
			}
		}
	}
}

func TestFanOutZeroItems(t *testing.T) {
	cfg := RunConfig{Parallelism: 8}.withExec()
	fanOut(cfg, 0, func(int) { t.Fatal("work invoked for n=0") })
}

func TestMapParPreservesIndexOrder(t *testing.T) {
	cfg := RunConfig{Parallelism: 8}.withExec()
	got := mapPar(cfg, 50, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("mapPar[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMemoizedComputesOnce(t *testing.T) {
	cfg := RunConfig{Parallelism: 8}.withExec()
	var calls atomic.Int32
	vals := mapPar(cfg, 20, func(i int) int {
		return memoized(&cfg.exec.jobs, "same-key", func() int {
			calls.Add(1)
			return 42
		})
	})
	for _, v := range vals {
		if v != 42 {
			t.Fatalf("memoized value = %d, want 42", v)
		}
	}
	if calls.Load() != 1 {
		t.Fatalf("compute ran %d times, want 1", calls.Load())
	}
}
