// Mega-swarm scenario: a heterogeneous fleet (camera drones, robotic
// cars, BittyBuzz-class tiny robots) running the swarm-native workloads
// of §2.2 — hierarchical peer-to-peer localization (anchors propagate
// position confidence outward, Swarical-style) and rumor gossip — over
// the sharded simulation executive. Devices interact only through the
// wireless medium, so the whole mission partitions cleanly across
// per-geo-cell engines: every knob that affects results (cell count,
// seed, mix, field) is fixed by the scenario config, and the Shards
// knob only chooses how many OS threads execute it. RunSwarm therefore
// returns byte-identical results at -shards=1 and -shards=8, which the
// shard-parity CI lane asserts.
package scenario

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"hivemind/internal/chaos"
	"hivemind/internal/device"
	"hivemind/internal/geo"
	"hivemind/internal/netsim"
	"hivemind/internal/sim"
	"hivemind/internal/stats"
)

// SwarmClass describes one fleet class in the mix.
type SwarmClass struct {
	Name          string
	Cfg           device.Config
	Frac          float64 // fraction of the fleet
	RadioRangeM   float64 // broadcast reach
	BeaconMB      float64 // per-beacon payload (radio energy accounting)
	BeaconPeriodS float64 // gossip/localization beacon period
	SolvePeriodS  float64 // position re-solve period
	SolveIters    int     // gradient iterations per solve
}

// DefaultMix returns the mega-swarm fleet: a thin layer of long-range
// drones, a band of rovers, and a majority of tiny robots that can only
// hear nearby peers — so localization confidence must flow drone →
// rover → tinybot in hops.
func DefaultMix() []SwarmClass {
	return []SwarmClass{
		{Name: "drone", Cfg: device.DroneConfig(), Frac: 0.10, RadioRangeM: 60,
			BeaconMB: 0.01, BeaconPeriodS: 0.5, SolvePeriodS: 1.0, SolveIters: 6},
		{Name: "rover", Cfg: device.RoverConfig(), Frac: 0.30, RadioRangeM: 35,
			BeaconMB: 0.005, BeaconPeriodS: 1.0, SolvePeriodS: 2.0, SolveIters: 4},
		{Name: "tinybot", Cfg: device.TinyBotConfig(), Frac: 0.60, RadioRangeM: 14,
			BeaconMB: 0.0005, BeaconPeriodS: 2.0, SolvePeriodS: 4.0, SolveIters: 2},
	}
}

// SwarmConfig parameterises a mega-swarm run. Everything except Shards
// affects results; Shards only sets the executive's worker count and is
// guaranteed not to change a single output bit.
type SwarmConfig struct {
	Devices int     // fleet size (default 512)
	FieldM  float64 // square field side; 0 → sqrt(Devices)·10 (0.01 devices/m²)
	// Cells is the geo-cell decomposition the executive shards over.
	// It is part of the scenario (0 → Devices/128 clamped to [4,256]),
	// NOT derived from the machine — that is what makes results
	// independent of Shards.
	Cells int
	// Shards is the worker count executing the cells (0 → NumCPU).
	Shards int
	Seed   int64
	// DurationS is the simulated mission length (default 30).
	DurationS float64
	// RadioLatencyS is the medium's one-way MAC+propagation delay
	// (default 0.005). LookaheadS is the executive's declared cross-cell
	// lookahead (default = RadioLatencyS); it must not exceed the radio
	// latency or RunSwarm reports a *sim.LookaheadError.
	RadioLatencyS float64
	LookaheadS    float64
	// AnchorFrac is the fraction of devices with known positions
	// (GPS/surveyed; default 0.05).
	AnchorFrac float64
	// Rumors is how many gossip sources to seed (≤64; default 8).
	Rumors int
	// Mix is the fleet composition (default DefaultMix).
	Mix []SwarmClass
	// FailProb injects a per-beacon death probability via chaos
	// injectors (one per cell, seeded from (Seed, cell) so faults are
	// deterministic under sharding).
	FailProb float64
}

func (c SwarmConfig) withDefaults() SwarmConfig {
	if c.Devices <= 0 {
		c.Devices = 512
	}
	if c.FieldM <= 0 {
		c.FieldM = math.Sqrt(float64(c.Devices)) * 10
	}
	if c.Cells <= 0 {
		c.Cells = c.Devices / 128
		if c.Cells < 4 {
			c.Cells = 4
		}
		if c.Cells > 256 {
			c.Cells = 256
		}
	}
	if c.DurationS <= 0 {
		c.DurationS = 30
	}
	if c.RadioLatencyS <= 0 {
		c.RadioLatencyS = 0.005
	}
	if c.LookaheadS == 0 {
		c.LookaheadS = c.RadioLatencyS
	}
	if c.AnchorFrac <= 0 {
		c.AnchorFrac = 0.05
	}
	if c.Rumors <= 0 {
		c.Rumors = 8
	}
	if c.Mix == nil {
		c.Mix = DefaultMix()
	}
	return c
}

// ClassStats reports one fleet class's outcome.
type ClassStats struct {
	Name            string
	Count           int
	Failed          int
	CoveredFrac     float64 // heard every rumor
	LocErrMeanM     float64 // non-anchor final position error
	BatteryMeanFrac float64
}

// SwarmResult reports a mega-swarm run. It deliberately carries no
// worker count and no wall-clock measurement: two runs of the same
// SwarmConfig at different Shards values must produce DeepEqual (and
// byte-identical, once serialised) results.
type SwarmResult struct {
	Devices int
	Cells   int
	Anchors int
	Failed  int // devices dead at mission end (chaos or battery)

	CoveredFrac float64 // fraction of the fleet that heard every rumor
	SpreadP50S  float64 // median time to full rumor coverage
	SpreadP99S  float64 // tail time to full rumor coverage

	LocErrStartM float64 // mean non-anchor error before any solving
	LocErrMeanM  float64 // mean non-anchor error at mission end
	LocErrP95M   float64

	Classes []ClassStats
	Radio   netsim.RadioStats

	// Executive accounting (deterministic: window boundaries depend only
	// on event-queue minima, never on worker scheduling).
	Windows       uint64
	CrossMessages uint64
	Steps         uint64
}

// String summarises the result.
func (r SwarmResult) String() string {
	return fmt.Sprintf("swarm %d dev / %d cells: covered=%.1f%% (p99 %.1fs), locerr %.1fm→%.1fm, failed=%d, %d windows",
		r.Devices, r.Cells, r.CoveredFrac*100, r.SpreadP99S, r.LocErrStartM, r.LocErrMeanM, r.Failed, r.Windows)
}

// obs is a range observation a device holds about a neighbour: the
// neighbour's claimed position estimate and confidence, and the noisy
// measured distance to it.
type obs struct {
	est  geo.Point
	conf float64
	dist float64
}

const obsRing = 8

// swarmDev is one fleet member's mission state. It is owned by the
// device's geo cell: only events executing on that cell read or write
// it (broadcast payloads are snapshotted by value at send time).
type swarmDev struct {
	class  int
	dev    *device.Device
	anchor bool

	est  geo.Point
	conf float64
	obs  []obs
	next int // ring cursor

	rumors     uint64
	heardAllAt float64 // -1 until the full mask is assembled
}

func (s *swarmDev) pushObs(o obs) {
	if len(s.obs) < obsRing {
		s.obs = append(s.obs, o)
		return
	}
	s.obs[s.next] = o
	s.next = (s.next + 1) % obsRing
}

// solve runs iters gradient-descent steps on the range residuals,
// weighting each observation by the claimed confidence, then adopts a
// decayed confidence from the best neighbour heard — the hierarchical
// hop: anchors are 1.0, their neighbours 0.9, the next ring 0.81, …
func (s *swarmDev) solve(iters int) {
	if s.anchor || len(s.obs) == 0 {
		return
	}
	best := 0.0
	for _, o := range s.obs {
		if o.conf > best {
			best = o.conf
		}
	}
	if best <= 0 {
		return
	}
	for it := 0; it < iters; it++ {
		var gx, gy, wsum float64
		for _, o := range s.obs {
			if o.conf <= 0 {
				continue
			}
			dx, dy := s.est.X-o.est.X, s.est.Y-o.est.Y
			d := math.Hypot(dx, dy)
			if d < 1e-9 {
				continue
			}
			resid := d - o.dist
			gx += o.conf * resid * dx / d
			gy += o.conf * resid * dy / d
			wsum += o.conf
		}
		if wsum <= 0 {
			return
		}
		s.est.X -= 0.5 * gx / wsum
		s.est.Y -= 0.5 * gy / wsum
	}
	s.conf = 0.9 * best
}

// RunSwarm executes the mega-swarm mission on the sharded executive.
func RunSwarm(cfg SwarmConfig) (SwarmResult, error) {
	cfg = cfg.withDefaults()
	if cfg.Rumors > 64 {
		return SwarmResult{}, fmt.Errorf("scenario: %d rumors exceed the 64-bit gossip mask", cfg.Rumors)
	}
	if cfg.LookaheadS > cfg.RadioLatencyS {
		return SwarmResult{}, fmt.Errorf("scenario: lookahead %g exceeds radio latency %g: %w",
			cfg.LookaheadS, cfg.RadioLatencyS, &sim.LookaheadError{LookaheadS: cfg.LookaheadS})
	}

	// Layout: a single seeded stream, consumed in device-id order during
	// setup, fixes positions, classes and phases identically at every
	// worker count.
	layout := rand.New(rand.NewSource(cfg.Seed))
	field := geo.NewField(cfg.FieldM, cfg.FieldM)
	cellRects := geo.Partition(field, cfg.Cells)
	n := cfg.Devices

	pts := make([]geo.Point, n)
	classOf := make([]int, n)
	ranges := make([]float64, n)
	cum := make([]float64, len(cfg.Mix))
	total := 0.0
	for i, cl := range cfg.Mix {
		total += cl.Frac
		cum[i] = total
	}
	for d := 0; d < n; d++ {
		pts[d] = geo.Point{X: layout.Float64() * cfg.FieldM, Y: layout.Float64() * cfg.FieldM}
		u := layout.Float64() * total
		classOf[d] = len(cfg.Mix) - 1
		for i, c := range cum {
			if u <= c {
				classOf[d] = i
				break
			}
		}
		ranges[d] = cfg.Mix[classOf[d]].RadioRangeM
	}

	cix := geo.BuildCellIndex(cellRects, pts)
	se, err := sim.NewSharded(cfg.Seed, len(cellRects), cfg.LookaheadS, cfg.Shards)
	if err != nil {
		return SwarmResult{}, err
	}
	ix := netsim.BuildNeighborIndex(pts, ranges)
	radio, err := netsim.NewRadio(se, ix, cix.CellOwners(), cfg.RadioLatencyS)
	if err != nil {
		return SwarmResult{}, err
	}

	// One fault injector per cell, seeded from (root seed, cell id):
	// each is consumed only by its owning cell's events, in that cell's
	// deterministic event order, so injected deaths are identical under
	// any sharding.
	inj := make([]*chaos.Injector, len(cellRects))
	for c := range inj {
		inj[c] = chaos.NewInjector(sim.SeedFor(cfg.Seed, c)^0x63686165f5, chaos.Config{FailProb: cfg.FailProb})
	}

	anchorEvery := int(math.Max(1, math.Round(1/cfg.AnchorFrac)))
	full := uint64(1)<<uint(cfg.Rumors) - 1

	devs := make([]*swarmDev, n)
	cellOf := cix.CellOwners()
	anchors := 0
	for d := 0; d < n; d++ {
		cls := cfg.Mix[classOf[d]]
		eng := se.Cell(cellOf[d]).Engine()
		s := &swarmDev{class: classOf[d], heardAllAt: -1}
		s.dev = device.New(eng, d, cls.Cfg, nil)
		if d%anchorEvery == 0 {
			s.anchor = true
			s.est = pts[d]
			s.conf = 1
			anchors++
		} else {
			s.est = geo.Point{X: layout.Float64() * cfg.FieldM, Y: layout.Float64() * cfg.FieldM}
		}
		devs[d] = s
	}
	for r := 0; r < cfg.Rumors; r++ {
		devs[r*n/cfg.Rumors].rumors |= 1 << uint(r)
	}

	locErrStart := meanLocErr(devs, pts, -1)

	// Mission loops. Per-iteration jitter draws from the owning cell's
	// engine RNG: within a cell events execute in one deterministic
	// order, so the draws are reproducible at any worker count.
	for d := 0; d < n; d++ {
		d := d
		s := devs[d]
		cls := cfg.Mix[s.class]
		cell := se.Cell(cellOf[d])
		eng := cell.Engine()
		injector := inj[cellOf[d]]

		var beacon func()
		beacon = func() {
			if s.dev.Failed() {
				return
			}
			if cfg.FailProb > 0 && injector.Fault("beacon-death") != nil {
				s.dev.Fail()
				return
			}
			// Snapshot everything the receivers need by value: deliver
			// callbacks run later, on other cells.
			est, conf, rumors := s.est, s.conf, s.rumors
			srcPos := pts[d]
			payload := cls.BeaconMB
			s.dev.Transmit(payload)
			radio.Broadcast(d, func(dst int) {
				r := devs[dst]
				if r.dev.Failed() {
					return
				}
				r.dev.Receive(payload)
				if old := r.rumors; old != full {
					r.rumors |= rumors
					if r.rumors == full {
						r.heardAllAt = se.Cell(cellOf[dst]).Engine().Now()
					}
				}
				if conf > 0 {
					rEng := se.Cell(cellOf[dst]).Engine()
					noisy := srcPos.Dist(pts[dst]) * (1 + 0.02*rEng.Rand().NormFloat64())
					r.pushObs(obs{est: est, conf: conf, dist: noisy})
				}
			})
			eng.Defer(cls.BeaconPeriodS*(0.9+0.2*eng.Rand().Float64()), beacon)
		}
		eng.DeferAt(layout.Float64()*cls.BeaconPeriodS, beacon)

		if !s.anchor {
			var solve func()
			solve = func() {
				if s.dev.Failed() {
					return
				}
				s.solve(cls.SolveIters)
				eng.Defer(cls.SolvePeriodS*(0.9+0.2*eng.Rand().Float64()), solve)
			}
			eng.DeferAt(cls.BeaconPeriodS+layout.Float64()*cls.SolvePeriodS, solve)
		}
	}

	se.Run(cfg.DurationS)

	// Aggregate in device-id order — deterministic by construction.
	res := SwarmResult{
		Devices: n, Cells: len(cellRects), Anchors: anchors,
		LocErrStartM:  locErrStart,
		Radio:         radio.Stats(),
		Windows:       se.Windows(),
		CrossMessages: se.CrossMessages(),
		Steps:         se.Steps(),
	}
	var spread []float64
	errSample := &stats.Sample{}
	perClass := make([]ClassStats, len(cfg.Mix))
	perClassErr := make([]*stats.Sample, len(cfg.Mix))
	for i, cl := range cfg.Mix {
		perClass[i].Name = cl.Name
		perClassErr[i] = &stats.Sample{}
	}
	covered := 0
	for d, s := range devs {
		s.dev.Settle()
		c := &perClass[s.class]
		c.Count++
		c.BatteryMeanFrac += s.dev.Battery.ConsumedFraction()
		if s.dev.Failed() {
			res.Failed++
			c.Failed++
		}
		if s.rumors == full {
			covered++
			c.CoveredFrac++
			if s.heardAllAt >= 0 {
				spread = append(spread, s.heardAllAt)
			}
		}
		if !s.anchor {
			e := s.est.Dist(pts[d])
			errSample.Add(e)
			perClassErr[s.class].Add(e)
		}
	}
	res.CoveredFrac = float64(covered) / float64(n)
	for i := range perClass {
		c := &perClass[i]
		if c.Count > 0 {
			c.CoveredFrac /= float64(c.Count)
			c.BatteryMeanFrac /= float64(c.Count)
		}
		if perClassErr[i].N() > 0 {
			c.LocErrMeanM = perClassErr[i].Mean()
		}
	}
	res.Classes = perClass
	if errSample.N() > 0 {
		res.LocErrMeanM = errSample.Mean()
		res.LocErrP95M = errSample.Percentile(95)
	}
	if len(spread) > 0 {
		sort.Float64s(spread)
		res.SpreadP50S = spread[len(spread)/2]
		res.SpreadP99S = spread[(len(spread)*99)/100]
	}
	return res, nil
}

// meanLocErr averages non-anchor position error (class < 0 → all
// classes).
func meanLocErr(devs []*swarmDev, pts []geo.Point, class int) float64 {
	sum, n := 0.0, 0
	for d, s := range devs {
		if s.anchor || (class >= 0 && s.class != class) {
			continue
		}
		sum += s.est.Dist(pts[d])
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
