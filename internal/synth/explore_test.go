package synth

import (
	"reflect"
	"sync"
	"testing"

	"hivemind/internal/dsl"
)

func streamGraph(t *testing.T) (*dsl.TaskGraph, map[string]TaskCost) {
	t.Helper()
	g, err := dsl.NewGraph("s").
		Stream("cameraFeed", 8, 2).
		Task("collect", dsl.WithIO("", "cameraFeed")).
		Task("recognize", dsl.WithParents("collect"), dsl.WithIO("cameraFeed", "stats")).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	costs := map[string]TaskCost{
		"collect":   {CloudExecS: 0.001, EdgeExecS: 0.001, Parallelism: 1, OutputMB: 16, RatePerDev: 8, Sensor: true},
		"recognize": {CloudExecS: 0.1, EdgeExecS: 0.45, Parallelism: 2, OutputMB: 0.01},
	}
	return g, costs
}

// TestExploreDoesNotMutateCosts pins the fix for Explore patching
// stream-derived rates into the caller's map: the input must come back
// byte-for-byte untouched, even for tasks whose profile leaves
// RatePerDev/InputMB unset (the case Explore fills in internally).
func TestExploreDoesNotMutateCosts(t *testing.T) {
	g, costs := streamGraph(t)
	want := make(map[string]TaskCost, len(costs))
	for k, v := range costs {
		want[k] = v
	}
	if _, err := Explore(g, costs, DefaultEnv(16)); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(costs, want) {
		t.Fatalf("Explore mutated the caller's costs map:\n got %+v\nwant %+v", costs, want)
	}
}

// TestExploreConcurrentSharedCosts: two Explore calls sharing one costs
// map must be race-clean (run under -race) and agree on the ranking.
func TestExploreConcurrentSharedCosts(t *testing.T) {
	g, costs := streamGraph(t)
	env := DefaultEnv(16)
	results := make([][]Candidate, 4)
	var wg sync.WaitGroup
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cands, err := Explore(g, costs, env)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = cands
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(results); i++ {
		if !reflect.DeepEqual(results[i], results[0]) {
			t.Fatalf("concurrent Explore calls disagree:\n run0 %+v\n run%d %+v", results[0], i, results[i])
		}
	}
}

// TestEnumerateOrderMatchesMaskScan pins the candidate ordering contract
// the branch-and-bound enumerator must preserve: ascending full-mask
// order with bit i meaning "task i at the edge" in topo order, forced
// bits held constant.
func TestEnumerateOrderMatchesMaskScan(t *testing.T) {
	g := scenarioB(t)
	cands, err := Enumerate(g, scenarioBCosts())
	if err != nil {
		t.Fatal(err)
	}
	topo := g.TopoOrder()
	prev := -1
	for _, c := range cands {
		mask := 0
		for i, task := range topo {
			if c.Assignment[task.Name] == LocEdge {
				mask |= 1 << i
			}
		}
		if mask <= prev {
			t.Fatalf("candidate masks not strictly ascending: %b after %b", mask, prev)
		}
		prev = mask
	}
}

// TestExploreParallelEstimationDeterministic drives a graph wide enough
// to cross the parallel-estimation chunk threshold and checks the
// ranked output is identical run to run.
func TestExploreParallelEstimationDeterministic(t *testing.T) {
	b := dsl.NewGraph("wide").Task("src")
	costs := map[string]TaskCost{
		"src": {CloudExecS: 0.01, EdgeExecS: 0.02, Parallelism: 1, OutputMB: 0.5, RatePerDev: 1, Sensor: true},
	}
	mids := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j"}
	for k, name := range mids {
		b = b.Task(name, dsl.WithParents("src"))
		costs[name] = TaskCost{
			CloudExecS: 0.01 * float64(k+1), EdgeExecS: 0.03 * float64(k+1),
			Parallelism: 2, InputMB: 0.5, OutputMB: 0.1, RatePerDev: 0.5,
		}
	}
	b = b.Task("sink", dsl.WithParents(mids...))
	costs["sink"] = TaskCost{CloudExecS: 0.05, EdgeExecS: 0.2, Parallelism: 4, InputMB: 1, OutputMB: 0.01, RatePerDev: 0.5}
	g := b.MustBuild()

	env := DefaultEnv(16)
	first, err := Explore(g, costs, env)
	if err != nil {
		t.Fatal(err)
	}
	// src is sensor-forced to the edge; the 10 mids and the sink are free.
	if len(first) != 1<<(len(mids)+1) {
		t.Fatalf("candidates = %d, want %d", len(first), 1<<(len(mids)+1))
	}
	again, err := Explore(g, costs, env)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, again) {
		t.Fatal("Explore output differs across runs")
	}
}
